/**
 * @file
 * Batched structure-of-arrays collision kernel — the hot path of the
 * yield Monte Carlo.
 *
 * The scalar CollisionChecker walks pair/triple terms with early
 * exits: fast for one trial that dies on its first term, but branchy
 * and serial when millions of surviving trials each scan every term.
 * BatchCollisionChecker packs the term endpoints into flat index
 * arrays at construction and evaluates kLanes = 8 Monte Carlo trials
 * at once over a qubit-major frequency block: per term, the eight
 * lane comparisons are straight-line fabs/compare arithmetic with no
 * data-dependent branches, implemented with AVX2 intrinsics when the
 * translation unit is built with -mavx2 (the CMake probe runs an
 * AVX2 snippet on the build host before enabling it). Per-half
 * dead-lane skips and an all-lanes-dead early-out keep the batch
 * ahead of the short-circuiting scalar walk even on zero-yield
 * inputs; bench/bench_collision_batch.cc measures both kernels.
 *
 * Without AVX2 a portable lane loop is compiled instead. It is the
 * reference implementation the property tests and the bench compare
 * against, but it measures SLOWER than the scalar oracle, so
 * useBatchedKernel() steers the yield paths back to the oracle on
 * such builds — the batch is only the default where it wins.
 *
 * The lane arithmetic mirrors pairConditionMask /
 * tripleConditionMask expression-for-expression — same operand
 * order, no algebraic rearrangement — so the batch and scalar
 * kernels agree bit-for-bit on every trial (tests/test_yield.cc
 * asserts this trial-for-trial, including remainder batches).
 * Setting QPAD_SCALAR_KERNEL non-empty in the environment makes
 * every call site fall back to the scalar oracle.
 */

#ifndef QPAD_YIELD_COLLISION_BATCH_HH
#define QPAD_YIELD_COLLISION_BATCH_HH

#include <cstdint>
#include <vector>

#include "yield/collision.hh"

namespace qpad::yield
{

/** SoA collision predicate over blocks of kLanes trials. */
class BatchCollisionChecker
{
  public:
    /** Trials evaluated per block. */
    static constexpr std::size_t kLanes = 8;

    BatchCollisionChecker() = default;

    /** Pack explicit term lists (indices address the post block). */
    BatchCollisionChecker(
        const std::vector<CollisionChecker::PairTerm> &pairs,
        const std::vector<CollisionChecker::TripleTerm> &triples,
        const CollisionModel &model);

    /** Pack the terms of a prebuilt scalar checker. */
    explicit BatchCollisionChecker(const CollisionChecker &checker);

    std::size_t numPairs() const { return pair_a_.size(); }
    std::size_t numTriples() const { return tri_j_.size(); }

    /**
     * Flat index of trial t, qubit q in a sequence of kLanes-trial
     * qubit-major blocks over nq qubits — the layout survivorMask
     * reads (block bi starts at bi * nq * kLanes). Single source for
     * every packer of such blocks.
     */
    static constexpr std::size_t
    soaIndex(std::size_t t, std::size_t q, std::size_t nq)
    {
        return (t / kLanes) * nq * kLanes + q * kLanes + t % kLanes;
    }

    /**
     * Evaluate `active` (1..kLanes) trials over a qubit-major block:
     * lane l of qubit q lives at post[q * kLanes + l]. Returns a
     * bitmask with bit l set iff trial l survives all seven
     * conditions; bits >= active are zero. Lanes >= active must
     * still hold readable doubles (they are evaluated branch-free,
     * then masked off).
     */
    uint8_t survivorMask(const double *post,
                         std::size_t active = kLanes) const;

  private:
    CollisionModel model_;
    std::vector<uint32_t> pair_a_, pair_b_;
    std::vector<uint32_t> tri_j_, tri_k_, tri_i_;
};

/**
 * True when QPAD_SCALAR_KERNEL is set non-empty: the yield paths
 * then use the scalar oracle instead of the batched kernel. Queried
 * per simulation call, so tests can flip it at runtime.
 */
bool scalarKernelForced();

/**
 * True when the yield hot paths should run the batched kernel: it
 * was compiled with AVX2 lanes (the portable fallback loses to the
 * short-circuiting scalar oracle) and QPAD_SCALAR_KERNEL does not
 * force the oracle.
 */
bool useBatchedKernel();

} // namespace qpad::yield

#endif // QPAD_YIELD_COLLISION_BATCH_HH

#include "yield/yield_sim.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.hh"
#include "runtime/seed_seq.hh"

namespace qpad::yield
{

using arch::PhysQubit;

namespace
{

/**
 * Trials per RNG stream. Fixed (never derived from the thread
 * count) so the shard layout — and therefore every random draw —
 * is a pure function of (seed, trials).
 */
constexpr std::size_t kShardTrials = 1024;

/** Mergeable per-shard tallies. */
struct ShardCounts
{
    std::size_t successes = 0;
    ConditionCounts condition_trials{};
};

ShardCounts
mergeCounts(ShardCounts acc, const ShardCounts &other)
{
    acc.successes += other.successes;
    for (std::size_t c = 0; c < acc.condition_trials.size(); ++c)
        acc.condition_trials[c] += other.condition_trials[c];
    return acc;
}

} // namespace

double
YieldResult::stderrEstimate() const
{
    if (trials == 0)
        return 0.0;
    return std::sqrt(yield * (1.0 - yield) / double(trials));
}

YieldResult
estimateYield(const CollisionChecker &checker,
              const std::vector<double> &pre_fab_freqs,
              const YieldOptions &options)
{
    for (double f : pre_fab_freqs)
        qpad_assert(f > 0.0, "unassigned frequency in yield simulation");

    YieldResult result;
    result.trials = options.trials;
    // Zero-trial runs have nothing to tally; returning here keeps
    // yield at 0 instead of computing 0/0 below.
    if (options.trials == 0)
        return result;

    // The per-condition statistics need the scalar count walk; plain
    // success tallies go through the batched SoA kernel, which is
    // bit-identical (same conditions, same RNG draw order).
    const bool batched =
        !options.collect_condition_stats && useBatchedKernel();
    const BatchCollisionChecker batch =
        batched ? BatchCollisionChecker(checker)
                : BatchCollisionChecker();

    // Each kShardTrials-sized block draws from its own child stream
    // of options.seed; partials merge in shard order. Thread count
    // affects wall clock only, never the tallies.
    const runtime::SeedSequence seeds(options.seed);
    ShardCounts totals = runtime::parallel_reduce(
        options.exec, options.trials, kShardTrials, ShardCounts{},
        [&](std::size_t begin, std::size_t end, std::size_t shard) {
            Rng rng = seeds.childRng(shard);
            ShardCounts local;
            const std::size_t nq = pre_fab_freqs.size();
            if (batched) {
                constexpr std::size_t B = BatchCollisionChecker::kLanes;
                std::vector<double> block(nq * B, 0.0);
                for (std::size_t t = begin; t < end; t += B) {
                    const std::size_t active = std::min(B, end - t);
                    // Trial-major draw order: lane l consumes exactly
                    // the gaussians trial t+l consumes in the scalar
                    // loop, so the RNG stream is unchanged. Remainder
                    // lanes keep stale-but-readable values and are
                    // masked off by `active`.
                    for (std::size_t l = 0; l < active; ++l)
                        for (std::size_t q = 0; q < nq; ++q)
                            block[q * B + l] = rng.gaussian(
                                pre_fab_freqs[q], options.sigma_ghz);
                    local.successes += std::size_t(std::popcount(
                        batch.survivorMask(block.data(), active)));
                }
                return local;
            }
            std::vector<double> post(nq);
            for (std::size_t t = begin; t < end; ++t) {
                for (std::size_t q = 0; q < post.size(); ++q)
                    post[q] = rng.gaussian(pre_fab_freqs[q],
                                           options.sigma_ghz);
                if (options.collect_condition_stats) {
                    ConditionCounts counts =
                        checker.countCollisions(post);
                    bool failed = false;
                    for (int c = 1; c <= 7; ++c) {
                        if (counts[c] > 0) {
                            ++local.condition_trials[c];
                            failed = true;
                        }
                    }
                    if (!failed)
                        ++local.successes;
                } else {
                    if (!checker.anyCollision(post))
                        ++local.successes;
                }
            }
            return local;
        },
        mergeCounts);

    result.successes = totals.successes;
    result.condition_trials = totals.condition_trials;
    result.yield = double(result.successes) / double(options.trials);
    return result;
}

YieldResult
estimateYield(const arch::Architecture &arch, const YieldOptions &options)
{
    qpad_assert(arch.frequenciesAssigned(),
                "architecture '", arch.name(),
                "' has unassigned frequencies");
    CollisionChecker checker(arch, options.model);
    return estimateYield(checker, arch.frequencies(), options);
}

LocalYieldSimulator::LocalYieldSimulator(
    std::vector<CollisionChecker::PairTerm> pairs,
    std::vector<CollisionChecker::TripleTerm> triples,
    const CollisionModel &model, std::vector<PhysQubit> involved)
    : pairs_(std::move(pairs)), triples_(std::move(triples)),
      involved_(std::move(involved)), model_(model),
      batch_(pairs_, triples_, model_)
{
}

bool
LocalYieldSimulator::trialSucceeds(const std::vector<double> &freqs,
                                   double sigma_ghz, Rng &rng,
                                   std::vector<double> &post) const
{
    for (PhysQubit q : involved_)
        post[q] = rng.gaussian(freqs[q], sigma_ghz);
    for (const auto &p : pairs_)
        if (pairCollides(model_, post[p.a], post[p.b]))
            return false;
    for (const auto &tr : triples_)
        if (tripleCollides(model_, post[tr.j], post[tr.k], post[tr.i]))
            return false;
    return true;
}

std::size_t
LocalYieldSimulator::runTrials(const std::vector<double> &freqs,
                               double sigma_ghz, std::size_t count,
                               Rng &rng, bool batched) const
{
    std::size_t successes = 0;
    if (!batched) {
        std::vector<double> post(freqs);
        for (std::size_t t = 0; t < count; ++t)
            successes += trialSucceeds(freqs, sigma_ghz, rng, post);
        return successes;
    }

    constexpr std::size_t B = BatchCollisionChecker::kLanes;
    // All lanes start at the pre-fabrication frequencies; only the
    // involved qubits are redrawn per trial, exactly like the scalar
    // scratch buffer (uninvolved term endpoints keep freqs[q]).
    std::vector<double> block(freqs.size() * B);
    for (std::size_t q = 0; q < freqs.size(); ++q)
        for (std::size_t l = 0; l < B; ++l)
            block[q * B + l] = freqs[q];
    for (std::size_t t = 0; t < count; t += B) {
        const std::size_t active = std::min(B, count - t);
        for (std::size_t l = 0; l < active; ++l)
            for (PhysQubit q : involved_)
                block[q * B + l] = rng.gaussian(freqs[q], sigma_ghz);
        successes += std::size_t(
            std::popcount(batch_.survivorMask(block.data(), active)));
    }
    return successes;
}

double
LocalYieldSimulator::simulate(const std::vector<double> &freqs,
                              double sigma_ghz, std::size_t trials,
                              Rng &rng) const
{
    if (pairs_.empty() && triples_.empty())
        return 1.0;
    // Zero-trial call: no evidence of success, and 0/0 below would
    // poison the caller's argmax with NaN.
    if (trials == 0)
        return 0.0;

    const std::size_t successes =
        runTrials(freqs, sigma_ghz, trials, rng, useBatchedKernel());
    return double(successes) / double(trials);
}

double
LocalYieldSimulator::simulate(const std::vector<double> &freqs,
                              double sigma_ghz, std::size_t trials,
                              uint64_t seed,
                              const runtime::Options &exec) const
{
    if (pairs_.empty() && triples_.empty())
        return 1.0;
    if (trials == 0)
        return 0.0;

    const bool batched = useBatchedKernel();
    const runtime::SeedSequence seeds(seed);
    std::size_t successes = runtime::parallel_reduce(
        exec, trials, kShardTrials, std::size_t{0},
        [&](std::size_t begin, std::size_t end, std::size_t shard) {
            Rng rng = seeds.childRng(shard);
            return runTrials(freqs, sigma_ghz, end - begin, rng,
                             batched);
        },
        [](std::size_t acc, std::size_t x) { return acc + x; });
    return double(successes) / double(trials);
}

} // namespace qpad::yield

#include "yield/yield_sim.hh"

#include <cmath>

#include "common/logging.hh"

namespace qpad::yield
{

using arch::PhysQubit;

double
YieldResult::stderrEstimate() const
{
    if (trials == 0)
        return 0.0;
    return std::sqrt(yield * (1.0 - yield) / double(trials));
}

YieldResult
estimateYield(const CollisionChecker &checker,
              const std::vector<double> &pre_fab_freqs,
              const YieldOptions &options)
{
    for (double f : pre_fab_freqs)
        qpad_assert(f > 0.0, "unassigned frequency in yield simulation");

    Rng rng(options.seed);
    YieldResult result;
    result.trials = options.trials;

    std::vector<double> post(pre_fab_freqs.size());
    for (std::size_t t = 0; t < options.trials; ++t) {
        for (std::size_t q = 0; q < post.size(); ++q)
            post[q] = rng.gaussian(pre_fab_freqs[q], options.sigma_ghz);
        if (options.collect_condition_stats) {
            ConditionCounts counts = checker.countCollisions(post);
            bool failed = false;
            for (int c = 1; c <= 7; ++c) {
                if (counts[c] > 0) {
                    ++result.condition_trials[c];
                    failed = true;
                }
            }
            if (!failed)
                ++result.successes;
        } else {
            if (!checker.anyCollision(post))
                ++result.successes;
        }
    }
    result.yield = double(result.successes) / double(options.trials);
    return result;
}

YieldResult
estimateYield(const arch::Architecture &arch, const YieldOptions &options)
{
    qpad_assert(arch.frequenciesAssigned(),
                "architecture '", arch.name(),
                "' has unassigned frequencies");
    CollisionChecker checker(arch, options.model);
    return estimateYield(checker, arch.frequencies(), options);
}

LocalYieldSimulator::LocalYieldSimulator(
    std::vector<CollisionChecker::PairTerm> pairs,
    std::vector<CollisionChecker::TripleTerm> triples,
    const CollisionModel &model, std::vector<PhysQubit> involved)
    : pairs_(std::move(pairs)), triples_(std::move(triples)),
      involved_(std::move(involved)), model_(model)
{
}

double
LocalYieldSimulator::simulate(const std::vector<double> &freqs,
                              double sigma_ghz, std::size_t trials,
                              Rng &rng) const
{
    if (pairs_.empty() && triples_.empty())
        return 1.0;

    std::size_t successes = 0;
    std::vector<double> post(freqs);
    for (std::size_t t = 0; t < trials; ++t) {
        for (PhysQubit q : involved_)
            post[q] = rng.gaussian(freqs[q], sigma_ghz);
        bool failed = false;
        for (const auto &p : pairs_) {
            if (pairCollides(model_, post[p.a], post[p.b])) {
                failed = true;
                break;
            }
        }
        if (!failed) {
            for (const auto &tr : triples_) {
                if (tripleCollides(model_, post[tr.j], post[tr.k],
                                   post[tr.i])) {
                    failed = true;
                    break;
                }
            }
        }
        if (!failed)
            ++successes;
    }
    return double(successes) / double(trials);
}

} // namespace qpad::yield

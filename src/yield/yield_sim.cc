#include "yield/yield_sim.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "runtime/seed_seq.hh"

namespace qpad::yield
{

using arch::PhysQubit;

namespace
{

/**
 * Trials per RNG stream. Fixed (never derived from the thread
 * count) so the shard layout — and therefore every random draw —
 * is a pure function of (seed, trials). This MUST stay a fixed
 * grain, never guided (grain 0): the chunk index is the RNG shard,
 * so guided sizing would re-chunk the range and change every draw.
 * Trials are uniform-cost anyway — load balance comes from the
 * work-stealing runners, not from chunk sizing — and the fixed
 * 1024-trial blocks keep the SoA lane kernels (batched collision
 * checker, GaussianBlockSampler) walking whole 8-lane blocks.
 */
constexpr std::size_t kShardTrials = 1024;

// The v2 lane order identifies sampler lanes with SoA block lanes;
// a diverging lane count would silently re-pair trials and draws.
static_assert(GaussianBlockSampler::kLanes ==
              BatchCollisionChecker::kLanes);

/** Mergeable per-shard tallies. */
struct ShardCounts
{
    std::size_t successes = 0;
    ConditionCounts condition_trials{};
};

ShardCounts
mergeCounts(ShardCounts acc, const ShardCounts &other)
{
    acc.successes += other.successes;
    for (std::size_t c = 0; c < acc.condition_trials.size(); ++c)
        acc.condition_trials[c] += other.condition_trials[c];
    return acc;
}

} // namespace

double
YieldResult::stderrEstimate() const
{
    if (trials == 0)
        return 0.0;
    return std::sqrt(yield * (1.0 - yield) / double(trials));
}

YieldResult
estimateYield(const CollisionChecker &checker,
              const std::vector<double> &pre_fab_freqs,
              const YieldOptions &options, const exec::Context &ctx)
{
    for (double f : pre_fab_freqs)
        qpad_assert(f > 0.0, "unassigned frequency in yield simulation");

    YieldResult result;
    result.trials = options.trials;
    // Zero-trial runs have nothing to tally; returning here keeps
    // yield at 0 instead of computing 0/0 below.
    if (options.trials == 0)
        return result;

    // The per-condition statistics need the scalar count walk; plain
    // success tallies go through the batched SoA kernel, which is
    // bit-identical (same conditions, same RNG draw order).
    const bool batched =
        !options.collect_condition_stats && useBatchedKernel();

    // One span + a few counter bumps per *estimate* (never per
    // trial): the Monte Carlo loop itself stays untouched.
    QPAD_SPAN("yield.estimate");
    {
        static obs::Counter &estimates = obs::counter("yield.estimates");
        static obs::Counter &trials = obs::counter("yield.trials");
        static obs::Counter &batched_runs =
            obs::counter("yield.batched_estimates");
        static obs::Counter &scalar_runs =
            obs::counter("yield.scalar_estimates");
        estimates.add();
        trials.add(options.trials);
        (batched ? batched_runs : scalar_runs).add();
    }
    const BatchCollisionChecker batch =
        batched ? BatchCollisionChecker(checker)
                : BatchCollisionChecker();
    const RngScheme scheme = resolveRngScheme(options.rng_scheme);

    // Evaluate one trial of the scalar walk (count statistics or
    // oracle check) on the post-fabrication frequencies in `post`.
    auto scalarTrial = [&](const std::vector<double> &post,
                           ShardCounts &local) {
        if (options.collect_condition_stats) {
            ConditionCounts counts = checker.countCollisions(post);
            bool failed = false;
            for (int c = 1; c <= 7; ++c) {
                if (counts[c] > 0) {
                    ++local.condition_trials[c];
                    failed = true;
                }
            }
            if (!failed)
                ++local.successes;
        } else {
            if (!checker.anyCollision(post))
                ++local.successes;
        }
    };

    // Each kShardTrials-sized block draws from its own child stream
    // of options.seed; partials merge in shard order. Thread count
    // affects wall clock only, never the tallies.
    const runtime::SeedSequence seeds(options.seed);
    ShardCounts totals = runtime::parallel_reduce(
        ctx.apply(options.exec), options.trials, kShardTrials,
        ShardCounts{},
        [&](std::size_t begin, std::size_t end, std::size_t shard) {
            ShardCounts local;
            const std::size_t nq = pre_fab_freqs.size();
            constexpr std::size_t B = BatchCollisionChecker::kLanes;
            if (scheme == RngScheme::kV2) {
                // v2 lane order: the shard's sampler fills a whole
                // SoA block at once (trial t+l = lane l, qubits in
                // row order). All kLanes lanes advance even in a
                // remainder block — lanes are independent streams,
                // so discarding the inactive ones cannot disturb
                // draws elsewhere, which is what makes the tallies
                // remainder-independent. The scalar walk reads the
                // very same block, so kernel choice never changes
                // the stream.
                GaussianBlockSampler sampler(seeds.childSeed(shard));
                std::vector<double> block(nq * B);
                std::vector<double> post(nq);
                for (std::size_t t = begin; t < end; t += B) {
                    const std::size_t active = std::min(B, end - t);
                    sampler.fillAffine(block.data(),
                                       pre_fab_freqs.data(),
                                       options.sigma_ghz, nq);
                    if (batched) {
                        local.successes += std::size_t(std::popcount(
                            batch.survivorMask(block.data(), active)));
                        continue;
                    }
                    for (std::size_t l = 0; l < active; ++l) {
                        for (std::size_t q = 0; q < nq; ++q)
                            post[q] = block[q * B + l];
                        scalarTrial(post, local);
                    }
                }
                return local;
            }
            Rng rng = seeds.childRng(shard);
            if (batched) {
                std::vector<double> block(nq * B, 0.0);
                for (std::size_t t = begin; t < end; t += B) {
                    const std::size_t active = std::min(B, end - t);
                    // v1 trial-major draw order: lane l consumes
                    // exactly the gaussians trial t+l consumes in
                    // the scalar loop, so the RNG stream is
                    // unchanged. Remainder lanes keep
                    // stale-but-readable values and are masked off
                    // by `active`.
                    for (std::size_t l = 0; l < active; ++l)
                        for (std::size_t q = 0; q < nq; ++q)
                            block[q * B + l] = rng.gaussian(
                                pre_fab_freqs[q], options.sigma_ghz);
                    local.successes += std::size_t(std::popcount(
                        batch.survivorMask(block.data(), active)));
                }
                return local;
            }
            std::vector<double> post(nq);
            for (std::size_t t = begin; t < end; ++t) {
                for (std::size_t q = 0; q < post.size(); ++q)
                    post[q] = rng.gaussian(pre_fab_freqs[q],
                                           options.sigma_ghz);
                scalarTrial(post, local);
            }
            return local;
        },
        mergeCounts);

    result.successes = totals.successes;
    result.condition_trials = totals.condition_trials;
    result.yield = double(result.successes) / double(options.trials);
    return result;
}

YieldResult
estimateYield(const arch::Architecture &arch, const YieldOptions &options,
              const exec::Context &ctx)
{
    qpad_assert(arch.frequenciesAssigned(),
                "architecture '", arch.name(),
                "' has unassigned frequencies");
    CollisionChecker checker(arch, options.model);
    return estimateYield(checker, arch.frequencies(), options, ctx);
}

LocalYieldSimulator::LocalYieldSimulator(
    std::vector<CollisionChecker::PairTerm> pairs,
    std::vector<CollisionChecker::TripleTerm> triples,
    const CollisionModel &model, std::vector<PhysQubit> involved)
    : pairs_(std::move(pairs)), triples_(std::move(triples)),
      involved_(std::move(involved)), model_(model),
      batch_(pairs_, triples_, model_)
{
}

bool
LocalYieldSimulator::postSucceeds(const std::vector<double> &post) const
{
    for (const auto &p : pairs_)
        if (pairCollides(model_, post[p.a], post[p.b]))
            return false;
    for (const auto &tr : triples_)
        if (tripleCollides(model_, post[tr.j], post[tr.k], post[tr.i]))
            return false;
    return true;
}

bool
LocalYieldSimulator::trialSucceeds(const std::vector<double> &freqs,
                                   double sigma_ghz, Rng &rng,
                                   std::vector<double> &post) const
{
    for (PhysQubit q : involved_)
        post[q] = rng.gaussian(freqs[q], sigma_ghz);
    return postSucceeds(post);
}

std::size_t
LocalYieldSimulator::runTrialsV2(const std::vector<double> &freqs,
                                 double sigma_ghz, std::size_t count,
                                 GaussianBlockSampler &sampler,
                                 bool batched) const
{
    constexpr std::size_t B = BatchCollisionChecker::kLanes;
    const std::size_t n_inv = involved_.size();
    // The sampler fills a compact involved-major scratch (its rows
    // must be contiguous). The batched kernel reads a full SoA block
    // whose uninvolved rows keep the pre-fabrication value in every
    // lane; the scalar walk reads the same draws through a per-lane
    // post vector — exactly like the v1 scratch buffer — via the
    // shared postSucceeds term walk.
    std::vector<double> means(n_inv);
    for (std::size_t i = 0; i < n_inv; ++i)
        means[i] = freqs[involved_[i]];
    std::vector<double> scratch(n_inv * B);
    std::vector<double> block;
    if (batched) {
        block.resize(freqs.size() * B);
        for (std::size_t q = 0; q < freqs.size(); ++q)
            for (std::size_t l = 0; l < B; ++l)
                block[q * B + l] = freqs[q];
    }
    std::vector<double> post(freqs);

    std::size_t successes = 0;
    for (std::size_t t = 0; t < count; t += B) {
        const std::size_t active = std::min(B, count - t);
        sampler.fillAffine(scratch.data(), means.data(), sigma_ghz,
                           n_inv);
        if (batched) {
            for (std::size_t i = 0; i < n_inv; ++i)
                std::copy_n(&scratch[i * B], B,
                            &block[std::size_t(involved_[i]) * B]);
            successes += std::size_t(std::popcount(
                batch_.survivorMask(block.data(), active)));
            continue;
        }
        for (std::size_t l = 0; l < active; ++l) {
            for (std::size_t i = 0; i < n_inv; ++i)
                post[involved_[i]] = scratch[i * B + l];
            successes += postSucceeds(post);
        }
    }
    return successes;
}

std::size_t
LocalYieldSimulator::runTrials(const std::vector<double> &freqs,
                               double sigma_ghz, std::size_t count,
                               Rng &rng, bool batched) const
{
    std::size_t successes = 0;
    if (!batched) {
        std::vector<double> post(freqs);
        for (std::size_t t = 0; t < count; ++t)
            successes += trialSucceeds(freqs, sigma_ghz, rng, post);
        return successes;
    }

    constexpr std::size_t B = BatchCollisionChecker::kLanes;
    // All lanes start at the pre-fabrication frequencies; only the
    // involved qubits are redrawn per trial, exactly like the scalar
    // scratch buffer (uninvolved term endpoints keep freqs[q]).
    std::vector<double> block(freqs.size() * B);
    for (std::size_t q = 0; q < freqs.size(); ++q)
        for (std::size_t l = 0; l < B; ++l)
            block[q * B + l] = freqs[q];
    for (std::size_t t = 0; t < count; t += B) {
        const std::size_t active = std::min(B, count - t);
        for (std::size_t l = 0; l < active; ++l)
            for (PhysQubit q : involved_)
                block[q * B + l] = rng.gaussian(freqs[q], sigma_ghz);
        successes += std::size_t(
            std::popcount(batch_.survivorMask(block.data(), active)));
    }
    return successes;
}

double
LocalYieldSimulator::simulate(const std::vector<double> &freqs,
                              double sigma_ghz, std::size_t trials,
                              Rng &rng, RngScheme scheme) const
{
    if (pairs_.empty() && triples_.empty())
        return 1.0;
    // Zero-trial call: no evidence of success, and 0/0 below would
    // poison the caller's argmax with NaN.
    if (trials == 0)
        return 0.0;

    // Counters only — local sims run inside anneal chains, far too
    // hot for spans.
    static obs::Counter &sims = obs::counter("yield.local_sims");
    static obs::Counter &sim_trials = obs::counter("yield.local_trials");
    sims.add();
    sim_trials.add(trials);

    std::size_t successes;
    if (resolveRngScheme(scheme) == RngScheme::kV2) {
        // One draw of the caller's generator seeds the lane sampler:
        // repeated calls stay independent, and the caller's stream
        // advances deterministically regardless of `trials`.
        GaussianBlockSampler sampler(rng.next());
        successes = runTrialsV2(freqs, sigma_ghz, trials, sampler,
                                useBatchedKernel());
    } else {
        successes = runTrials(freqs, sigma_ghz, trials, rng,
                              useBatchedKernel());
    }
    return double(successes) / double(trials);
}

double
LocalYieldSimulator::simulate(const std::vector<double> &freqs,
                              double sigma_ghz, std::size_t trials,
                              uint64_t seed,
                              const runtime::Options &exec,
                              RngScheme scheme,
                              const qpad::exec::Context &ctx) const
{
    if (pairs_.empty() && triples_.empty())
        return 1.0;
    if (trials == 0)
        return 0.0;

    static obs::Counter &sims = obs::counter("yield.local_sims");
    static obs::Counter &sim_trials = obs::counter("yield.local_trials");
    sims.add();
    sim_trials.add(trials);

    const bool batched = useBatchedKernel();
    const RngScheme active = resolveRngScheme(scheme);
    const runtime::SeedSequence seeds(seed);
    std::size_t successes = runtime::parallel_reduce(
        ctx.apply(exec), trials, kShardTrials, std::size_t{0},
        [&](std::size_t begin, std::size_t end, std::size_t shard) {
            if (active == RngScheme::kV2) {
                GaussianBlockSampler sampler(seeds.childSeed(shard));
                return runTrialsV2(freqs, sigma_ghz, end - begin,
                                   sampler, batched);
            }
            Rng rng = seeds.childRng(shard);
            return runTrials(freqs, sigma_ghz, end - begin, rng,
                             batched);
        },
        [](std::size_t acc, std::size_t x) { return acc + x; });
    return double(successes) / double(trials);
}

} // namespace qpad::yield

/**
 * @file
 * IBM's seven frequency-collision conditions (paper Figure 3).
 *
 * Conditions 1-4 constrain the two post-fabrication frequencies of
 * every connected qubit pair; conditions 5-7 constrain every triple
 * (k, i both connected to j). The checker pre-extracts those terms
 * from an Architecture's coupling graph so the Monte Carlo loop is
 * a flat scan over primitive comparisons.
 */

#ifndef QPAD_YIELD_COLLISION_HH
#define QPAD_YIELD_COLLISION_HH

#include <array>
#include <cstdint>
#include <vector>

#include "arch/architecture.hh"

namespace qpad::yield
{

/** Thresholds of the seven collision conditions (GHz). */
struct CollisionModel
{
    double delta = arch::DeviceConstants::anharmonicity_ghz;
    double thr1 = 0.017; ///< f_j ~ f_k
    double thr2 = 0.004; ///< f_j ~ f_k - delta/2
    double thr3 = 0.025; ///< f_j ~ f_k - delta
    // Condition 4 (f_j > f_k - delta) has no threshold.
    double thr5 = 0.017; ///< f_i ~ f_k          (shared neighbour j)
    double thr6 = 0.025; ///< f_i ~ f_k - delta  (shared neighbour j)
    double thr7 = 0.017; ///< 2 f_j + delta ~ f_k + f_i
};

/** Per-condition hit counters (index 1..7; index 0 unused). */
using ConditionCounts = std::array<std::size_t, 8>;

/**
 * Bitmask of the pair conditions firing on a connected pair: bit c
 * is set iff condition c (1..4) fires, both orientations checked.
 * Single source of truth for the pair-condition arithmetic —
 * pairCollides and CollisionChecker::countCollisions both consume
 * this evaluator, so the any/count views cannot drift apart.
 */
unsigned pairConditionMask(const CollisionModel &model, double fa,
                           double fb);

/** Same for the triple conditions: bits 5..7, shared neighbour j. */
unsigned tripleConditionMask(const CollisionModel &model, double fj,
                             double fk, double fi);

/** Conditions 1-4 on a connected pair (both orientations checked). */
bool pairCollides(const CollisionModel &model, double fa, double fb);

/** Conditions 5-7 on a triple with shared neighbour j. */
bool tripleCollides(const CollisionModel &model, double fj, double fk,
                    double fi);

/**
 * Collision predicate specialized to one architecture's coupling
 * graph. Frequencies are passed per call so one checker serves the
 * whole Monte Carlo.
 */
class CollisionChecker
{
  public:
    CollisionChecker() = default;
    explicit CollisionChecker(const arch::Architecture &arch,
                              const CollisionModel &model = {});

    /** Connected pair terms (conditions 1-4). */
    struct PairTerm
    {
        arch::PhysQubit a, b;
    };

    /** Triple terms: k and i both neighbours of j (conditions 5-7). */
    struct TripleTerm
    {
        arch::PhysQubit j, k, i;
    };

    const std::vector<PairTerm> &pairs() const { return pairs_; }
    const std::vector<TripleTerm> &triples() const { return triples_; }
    const CollisionModel &model() const { return model_; }

    /** True if any condition fires for the given frequencies. */
    bool anyCollision(const std::vector<double> &freqs) const;

    /**
     * Count how often each condition fires (for diagnostics); more
     * expensive than anyCollision, which short-circuits.
     */
    ConditionCounts countCollisions(const std::vector<double> &freqs)
        const;

  private:
    CollisionModel model_;
    std::vector<PairTerm> pairs_;
    std::vector<TripleTerm> triples_;
};

} // namespace qpad::yield

#endif // QPAD_YIELD_COLLISION_HH

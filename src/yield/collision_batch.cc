#include "yield/collision_batch.hh"

#include <cmath>
#include <cstdlib>
#include <cstring>

#ifdef __AVX2__
#include <immintrin.h>
#endif

namespace qpad::yield
{

BatchCollisionChecker::BatchCollisionChecker(
    const std::vector<CollisionChecker::PairTerm> &pairs,
    const std::vector<CollisionChecker::TripleTerm> &triples,
    const CollisionModel &model)
    : model_(model)
{
    pair_a_.reserve(pairs.size());
    pair_b_.reserve(pairs.size());
    for (const auto &p : pairs) {
        pair_a_.push_back(p.a);
        pair_b_.push_back(p.b);
    }
    tri_j_.reserve(triples.size());
    tri_k_.reserve(triples.size());
    tri_i_.reserve(triples.size());
    for (const auto &t : triples) {
        tri_j_.push_back(t.j);
        tri_k_.push_back(t.k);
        tri_i_.push_back(t.i);
    }
}

BatchCollisionChecker::BatchCollisionChecker(
    const CollisionChecker &checker)
    : BatchCollisionChecker(checker.pairs(), checker.triples(),
                            checker.model())
{
}

namespace
{

constexpr std::size_t kLanes = BatchCollisionChecker::kLanes;

#ifndef __AVX2__

/** True once every lane has collided (each byte is 0 or 1). */
inline bool
allDead(const unsigned char (&collided)[kLanes])
{
    uint64_t word;
    static_assert(sizeof(word) == sizeof(collided));
    std::memcpy(&word, collided, sizeof(word));
    return word == 0x0101010101010101ull;
}

#else

/** |x| with the sign bit cleared — exactly std::fabs, lane-wise. */
inline __m256d
absPd(__m256d x)
{
    return _mm256_andnot_pd(_mm256_set1_pd(-0.0), x);
}

/** Lane-wise a < b (ordered quiet compare, like the scalar `<`). */
inline __m256d
ltPd(__m256d a, __m256d b)
{
    return _mm256_cmp_pd(a, b, _CMP_LT_OQ);
}

#endif

} // namespace

uint8_t
BatchCollisionChecker::survivorMask(const double *post,
                                    std::size_t active) const
{
    const double d = model_.delta;
    const double t1 = model_.thr1, t2 = model_.thr2, t3 = model_.thr3;
    const double t5 = model_.thr5, t6 = model_.thr6, t7 = model_.thr7;

    // Both implementations repeat the pairConditionMask /
    // tripleConditionMask expressions verbatim (operand order
    // included, no contraction-prone rearrangement): any algebraic
    // change could flip a trial sitting within one ulp of a
    // threshold and break the bit-identical batch/scalar contract.

#ifdef __AVX2__
    const __m256d vd = _mm256_set1_pd(d);
    const __m256d vdh = _mm256_set1_pd(d / 2);
    const __m256d vt1 = _mm256_set1_pd(t1);
    const __m256d vt2 = _mm256_set1_pd(t2);
    const __m256d vt3 = _mm256_set1_pd(t3);
    const __m256d vt5 = _mm256_set1_pd(t5);
    const __m256d vt6 = _mm256_set1_pd(t6);
    const __m256d vt7 = _mm256_set1_pd(t7);

    // Lanes 0-3 and 4-7; a lane's register is all-ones once the
    // trial collided.
    __m256d dead_lo = _mm256_setzero_pd();
    __m256d dead_hi = _mm256_setzero_pd();
    auto all_dead = [&] {
        return (_mm256_movemask_pd(dead_lo) &
                _mm256_movemask_pd(dead_hi)) == 0xF;
    };

    for (std::size_t term = 0; term < pair_a_.size(); ++term) {
        const double *fa = post + std::size_t(pair_a_[term]) * kLanes;
        const double *fb = post + std::size_t(pair_b_[term]) * kLanes;
        for (int h = 0; h < 2; ++h) {
            // A half whose four lanes already collided cannot change
            // the outcome; skipping it halves the work in the common
            // case where one stubborn lane keeps the batch alive.
            __m256d &dead = h == 0 ? dead_lo : dead_hi;
            if (_mm256_movemask_pd(dead) == 0xF)
                continue;
            const __m256d a = _mm256_loadu_pd(fa + 4 * h);
            const __m256d b = _mm256_loadu_pd(fb + 4 * h);
            // c1: |a - b| < t1
            __m256d c = ltPd(absPd(_mm256_sub_pd(a, b)), vt1);
            // c2: |a - (b - d/2)| < t2, both orientations.
            c = _mm256_or_pd(
                c, ltPd(absPd(_mm256_sub_pd(
                            a, _mm256_sub_pd(b, vdh))),
                        vt2));
            c = _mm256_or_pd(
                c, ltPd(absPd(_mm256_sub_pd(
                            b, _mm256_sub_pd(a, vdh))),
                        vt2));
            // c3: |a - (b - d)| < t3, both orientations.
            c = _mm256_or_pd(
                c, ltPd(absPd(_mm256_sub_pd(
                            a, _mm256_sub_pd(b, vd))),
                        vt3));
            c = _mm256_or_pd(
                c, ltPd(absPd(_mm256_sub_pd(
                            b, _mm256_sub_pd(a, vd))),
                        vt3));
            // c4: a > b - d or b > a - d.
            c = _mm256_or_pd(
                c, ltPd(_mm256_sub_pd(b, vd), a));
            c = _mm256_or_pd(
                c, ltPd(_mm256_sub_pd(a, vd), b));
            dead = _mm256_or_pd(dead, c);
        }
        if (all_dead())
            return 0;
    }
    for (std::size_t term = 0; term < tri_j_.size(); ++term) {
        const double *fj = post + std::size_t(tri_j_[term]) * kLanes;
        const double *fk = post + std::size_t(tri_k_[term]) * kLanes;
        const double *fi = post + std::size_t(tri_i_[term]) * kLanes;
        for (int h = 0; h < 2; ++h) {
            __m256d &dead = h == 0 ? dead_lo : dead_hi;
            if (_mm256_movemask_pd(dead) == 0xF)
                continue;
            const __m256d j = _mm256_loadu_pd(fj + 4 * h);
            const __m256d k = _mm256_loadu_pd(fk + 4 * h);
            const __m256d i = _mm256_loadu_pd(fi + 4 * h);
            // c5: |i - k| < t5
            __m256d c = ltPd(absPd(_mm256_sub_pd(i, k)), vt5);
            // c6: |i - (k - d)| < t6, both orientations.
            c = _mm256_or_pd(
                c, ltPd(absPd(_mm256_sub_pd(
                            i, _mm256_sub_pd(k, vd))),
                        vt6));
            c = _mm256_or_pd(
                c, ltPd(absPd(_mm256_sub_pd(
                            k, _mm256_sub_pd(i, vd))),
                        vt6));
            // c7: |2 j + d - (k + i)| < t7.
            const __m256d two_j = _mm256_add_pd(j, j);
            c = _mm256_or_pd(
                c, ltPd(absPd(_mm256_sub_pd(
                            _mm256_add_pd(two_j, vd),
                            _mm256_add_pd(k, i))),
                        vt7));
            dead = _mm256_or_pd(dead, c);
        }
        if (all_dead())
            return 0;
    }

    const unsigned dead_bits =
        unsigned(_mm256_movemask_pd(dead_lo)) |
        (unsigned(_mm256_movemask_pd(dead_hi)) << 4);
    return static_cast<uint8_t>(~dead_bits & ((1u << active) - 1u));
#else
    unsigned char collided[kLanes] = {};

    for (std::size_t term = 0; term < pair_a_.size(); ++term) {
        const double *fa = post + std::size_t(pair_a_[term]) * kLanes;
        const double *fb = post + std::size_t(pair_b_[term]) * kLanes;
        for (std::size_t l = 0; l < kLanes; ++l) {
            const double a = fa[l], b = fb[l];
            const bool c1 = std::fabs(a - b) < t1;
            const bool c2 = (std::fabs(a - (b - d / 2)) < t2) |
                            (std::fabs(b - (a - d / 2)) < t2);
            const bool c3 = (std::fabs(a - (b - d)) < t3) |
                            (std::fabs(b - (a - d)) < t3);
            const bool c4 = (a > b - d) | (b > a - d);
            collided[l] |=
                static_cast<unsigned char>(c1 | c2 | c3 | c4);
        }
        if (allDead(collided))
            return 0;
    }
    for (std::size_t term = 0; term < tri_j_.size(); ++term) {
        const double *fj = post + std::size_t(tri_j_[term]) * kLanes;
        const double *fk = post + std::size_t(tri_k_[term]) * kLanes;
        const double *fi = post + std::size_t(tri_i_[term]) * kLanes;
        for (std::size_t l = 0; l < kLanes; ++l) {
            const double j = fj[l], k = fk[l], i = fi[l];
            const bool c5 = std::fabs(i - k) < t5;
            const bool c6 = (std::fabs(i - (k - d)) < t6) |
                            (std::fabs(k - (i - d)) < t6);
            const bool c7 = std::fabs(2 * j + d - (k + i)) < t7;
            collided[l] |= static_cast<unsigned char>(c5 | c6 | c7);
        }
        if (allDead(collided))
            return 0;
    }

    uint8_t mask = 0;
    for (std::size_t l = 0; l < active; ++l)
        mask |= static_cast<uint8_t>((collided[l] ^ 1u) << l);
    return mask;
#endif
}

bool
scalarKernelForced()
{
    const char *env = std::getenv("QPAD_SCALAR_KERNEL");
    return env && *env;
}

bool
useBatchedKernel()
{
#ifdef __AVX2__
    return !scalarKernelForced();
#else
    // The portable lane loop measures ~2-3x slower than the scalar
    // oracle (see the file comment); it stays available for the
    // agreement tests but never as the default execution path.
    return false;
#endif
}

} // namespace qpad::yield

/**
 * @file
 * Monte Carlo yield simulation (paper Section 4.3.1).
 *
 * A fabrication attempt adds Gaussian noise N(0, sigma) to every
 * pre-fabrication frequency; the attempt succeeds iff no collision
 * condition fires on the post-fabrication frequencies. Yield rate =
 * successes / trials.
 */

#ifndef QPAD_YIELD_YIELD_SIM_HH
#define QPAD_YIELD_YIELD_SIM_HH

#include <cstdint>

#include "arch/architecture.hh"
#include "common/gauss_block.hh"
#include "common/rng.hh"
#include "exec/context.hh"
#include "runtime/parallel.hh"
#include "yield/collision.hh"
#include "yield/collision_batch.hh"

namespace qpad::yield
{

/** Simulation configuration. */
struct YieldOptions
{
    /** Monte Carlo fabrication attempts (paper: 10,000). */
    std::size_t trials = 10000;
    /** Fabrication precision sigma in GHz (paper: 30 MHz). */
    double sigma_ghz = arch::DeviceConstants::default_sigma_ghz;
    /** RNG seed; equal seeds reproduce results exactly. */
    uint64_t seed = 1;
    /** Also accumulate per-condition failure statistics (slower). */
    bool collect_condition_stats = false;
    /** Collision thresholds. */
    CollisionModel model = {};
    /**
     * Parallel execution. Trials are sharded into fixed-size blocks,
     * each drawing from its own seed-derived RNG stream, so the
     * result is bit-identical for every num_threads value (including
     * the sequential num_threads = 1).
     */
    runtime::Options exec = {};
    /**
     * Random draw order (see RngScheme in common/gauss_block.hh and
     * the scheme note in common/rng.hh): kV2 (default) fills each
     * shard's trial blocks from the lane-parallel
     * GaussianBlockSampler, kV1 reproduces the legacy per-call
     * Rng::gaussian() order — and therefore the exact tallies of
     * pre-sampler releases. QPAD_RNG_V1 in the environment
     * overrides this to kV1. Either scheme is bit-identical across
     * thread counts, batch remainders, and collision kernels.
     */
    RngScheme rng_scheme = RngScheme::kV2;
};

/** Simulation outcome. */
struct YieldResult
{
    double yield = 0.0;
    std::size_t successes = 0;
    std::size_t trials = 0;
    /** Trials in which condition c fired at least once (1..7). */
    ConditionCounts condition_trials{};

    /** Standard error of the yield estimate (binomial). */
    double stderrEstimate() const;
};

/**
 * Estimate the yield rate of an architecture. All frequencies must
 * be assigned. Trials are evaluated through the batched SoA kernel
 * (BatchCollisionChecker) unless condition statistics are requested
 * or QPAD_SCALAR_KERNEL forces the scalar oracle; both paths draw
 * the same RNG stream in the same order and return bit-identical
 * results. The stream itself follows options.rng_scheme: the v2
 * lane order by default, the legacy v1 scalar order under kV1 or
 * QPAD_RNG_V1. options.trials == 0 returns a zero-trial result
 * (yield 0, stderr 0) instead of dividing by zero.
 */
YieldResult
estimateYield(const arch::Architecture &arch,
              const YieldOptions &options = {},
              const exec::Context &ctx = exec::Context::none());

/** Same, reusing a prebuilt checker (hot path of Algorithm 3). */
YieldResult
estimateYield(const CollisionChecker &checker,
              const std::vector<double> &pre_fab_freqs,
              const YieldOptions &options = {},
              const exec::Context &ctx = exec::Context::none());

/**
 * Local yield estimator used by the frequency allocator: only the
 * supplied pair/triple terms are checked, and only the frequencies
 * of qubits appearing in those terms are perturbed.
 */
class LocalYieldSimulator
{
  public:
    LocalYieldSimulator(std::vector<CollisionChecker::PairTerm> pairs,
                        std::vector<CollisionChecker::TripleTerm> triples,
                        const CollisionModel &model,
                        std::vector<arch::PhysQubit> involved);

    /**
     * Fraction of trials with no local collision, given the current
     * pre-fabrication frequencies. Runs kLanes trials at a time
     * through the batched kernel (scalar under QPAD_SCALAR_KERNEL;
     * both paths are bit-identical and consume the same RNG draws).
     * Zero trials return 0.0 — except with no terms at all, where
     * nothing can collide and the result is 1.0.
     *
     * Draw scheme: under kV1 the deviates come straight from `rng`
     * in the legacy trial-major order; under kV2 (default) one
     * rng.next() draw seeds a GaussianBlockSampler whose lanes fill
     * the trial blocks (QPAD_RNG_V1 forces kV1; see
     * common/gauss_block.hh).
     */
    double simulate(const std::vector<double> &freqs, double sigma_ghz,
                    std::size_t trials, Rng &rng,
                    RngScheme scheme = RngScheme::kV2) const;

    /**
     * Sharded variant: trials split into fixed-size blocks seeded
     * from independent streams of `seed`, executed under `exec`.
     * The returned fraction is independent of the thread count.
     * Same zero-trial, batching, and draw-scheme semantics as
     * above (under kV2 each shard's sampler is seeded with the
     * shard's child seed directly). A cancelled/expired `ctx` stops
     * between shards (never mid-shard; see exec/context.hh).
     */
    // (Context fully qualified: the `exec` parameter name shadows
    // the qpad::exec namespace for the rest of the parameter list.)
    double simulate(const std::vector<double> &freqs, double sigma_ghz,
                    std::size_t trials, uint64_t seed,
                    const runtime::Options &exec,
                    RngScheme scheme = RngScheme::kV2,
                    const qpad::exec::Context &ctx =
                        qpad::exec::Context::none()) const;

  private:
    /** Walk the local terms over `post`; true iff none collides. */
    bool postSucceeds(const std::vector<double> &post) const;
    /** One trial on the scratch buffer `post`; true on success. */
    bool trialSucceeds(const std::vector<double> &freqs,
                       double sigma_ghz, Rng &rng,
                       std::vector<double> &post) const;
    /**
     * `count` consecutive trials drawn from `rng` in the legacy v1
     * order (batched when `batched`; the draw order is identical
     * either way), returning the number of successes.
     */
    std::size_t runTrials(const std::vector<double> &freqs,
                          double sigma_ghz, std::size_t count,
                          Rng &rng, bool batched) const;
    /**
     * `count` consecutive trials whose deviates come from the lane
     * streams of `sampler` (v2 order: trial t of each 8-trial block
     * reads lane t % 8 row by row). `batched` again only selects
     * the collision kernel, never the draws.
     */
    std::size_t runTrialsV2(const std::vector<double> &freqs,
                            double sigma_ghz, std::size_t count,
                            GaussianBlockSampler &sampler,
                            bool batched) const;
    std::vector<CollisionChecker::PairTerm> pairs_;
    std::vector<CollisionChecker::TripleTerm> triples_;
    std::vector<arch::PhysQubit> involved_;
    CollisionModel model_;
    BatchCollisionChecker batch_;
};

} // namespace qpad::yield

#endif // QPAD_YIELD_YIELD_SIM_HH

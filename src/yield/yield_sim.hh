/**
 * @file
 * Monte Carlo yield simulation (paper Section 4.3.1).
 *
 * A fabrication attempt adds Gaussian noise N(0, sigma) to every
 * pre-fabrication frequency; the attempt succeeds iff no collision
 * condition fires on the post-fabrication frequencies. Yield rate =
 * successes / trials.
 */

#ifndef QPAD_YIELD_YIELD_SIM_HH
#define QPAD_YIELD_YIELD_SIM_HH

#include <cstdint>

#include "arch/architecture.hh"
#include "common/rng.hh"
#include "runtime/parallel.hh"
#include "yield/collision.hh"

namespace qpad::yield
{

/** Simulation configuration. */
struct YieldOptions
{
    /** Monte Carlo fabrication attempts (paper: 10,000). */
    std::size_t trials = 10000;
    /** Fabrication precision sigma in GHz (paper: 30 MHz). */
    double sigma_ghz = arch::DeviceConstants::default_sigma_ghz;
    /** RNG seed; equal seeds reproduce results exactly. */
    uint64_t seed = 1;
    /** Also accumulate per-condition failure statistics (slower). */
    bool collect_condition_stats = false;
    /** Collision thresholds. */
    CollisionModel model = {};
    /**
     * Parallel execution. Trials are sharded into fixed-size blocks,
     * each drawing from its own seed-derived RNG stream, so the
     * result is bit-identical for every num_threads value (including
     * the sequential num_threads = 1).
     */
    runtime::Options exec = {};
};

/** Simulation outcome. */
struct YieldResult
{
    double yield = 0.0;
    std::size_t successes = 0;
    std::size_t trials = 0;
    /** Trials in which condition c fired at least once (1..7). */
    ConditionCounts condition_trials{};

    /** Standard error of the yield estimate (binomial). */
    double stderrEstimate() const;
};

/**
 * Estimate the yield rate of an architecture. All frequencies must
 * be assigned.
 */
YieldResult estimateYield(const arch::Architecture &arch,
                          const YieldOptions &options = {});

/** Same, reusing a prebuilt checker (hot path of Algorithm 3). */
YieldResult estimateYield(const CollisionChecker &checker,
                          const std::vector<double> &pre_fab_freqs,
                          const YieldOptions &options = {});

/**
 * Local yield estimator used by the frequency allocator: only the
 * supplied pair/triple terms are checked, and only the frequencies
 * of qubits appearing in those terms are perturbed.
 */
class LocalYieldSimulator
{
  public:
    LocalYieldSimulator(std::vector<CollisionChecker::PairTerm> pairs,
                        std::vector<CollisionChecker::TripleTerm> triples,
                        const CollisionModel &model,
                        std::vector<arch::PhysQubit> involved);

    /**
     * Fraction of trials with no local collision, given the current
     * pre-fabrication frequencies.
     */
    double simulate(const std::vector<double> &freqs, double sigma_ghz,
                    std::size_t trials, Rng &rng) const;

    /**
     * Sharded variant: trials split into fixed-size blocks seeded
     * from independent streams of `seed`, executed under `exec`.
     * The returned fraction is independent of the thread count.
     */
    double simulate(const std::vector<double> &freqs, double sigma_ghz,
                    std::size_t trials, uint64_t seed,
                    const runtime::Options &exec) const;

  private:
    /** One trial on the scratch buffer `post`; true on success. */
    bool trialSucceeds(const std::vector<double> &freqs,
                       double sigma_ghz, Rng &rng,
                       std::vector<double> &post) const;
    std::vector<CollisionChecker::PairTerm> pairs_;
    std::vector<CollisionChecker::TripleTerm> triples_;
    std::vector<arch::PhysQubit> involved_;
    CollisionModel model_;
};

} // namespace qpad::yield

#endif // QPAD_YIELD_YIELD_SIM_HH

#include "yield/collision.hh"

#include <cmath>

namespace qpad::yield
{

using arch::PhysQubit;

CollisionChecker::CollisionChecker(const arch::Architecture &arch,
                                   const CollisionModel &model)
    : model_(model)
{
    for (auto [a, b] : arch.edges())
        pairs_.push_back({a, b});
    const auto &adj = arch.adjacency();
    for (PhysQubit j = 0; j < arch.numQubits(); ++j) {
        const auto &neighbors = adj[j];
        for (std::size_t x = 0; x < neighbors.size(); ++x)
            for (std::size_t y = x + 1; y < neighbors.size(); ++y)
                triples_.push_back({j, neighbors[x], neighbors[y]});
    }
}

namespace
{

inline bool
near(double value, double target, double thr)
{
    return std::fabs(value - target) < thr;
}

/**
 * Single source of truth for the pair conditions 1-4. StopAtFirst
 * restores the predicate callers' intra-term short-circuit (the mask
 * is then only meaningful as zero/nonzero) without duplicating any
 * condition expression.
 */
template <bool StopAtFirst>
inline unsigned
pairMask(const CollisionModel &model, double fa, double fb)
{
    const double d = model.delta;
    unsigned mask = 0;
    // Condition 1 (symmetric).
    if (near(fa, fb, model.thr1)) {
        mask |= 1u << 1;
        if constexpr (StopAtFirst)
            return mask;
    }
    // Conditions 2/3 in both orientations (either qubit may act as
    // the cross-resonance control).
    if (near(fa, fb - d / 2, model.thr2) ||
        near(fb, fa - d / 2, model.thr2)) {
        mask |= 1u << 2;
        if constexpr (StopAtFirst)
            return mask;
    }
    if (near(fa, fb - d, model.thr3) || near(fb, fa - d, model.thr3)) {
        mask |= 1u << 3;
        if constexpr (StopAtFirst)
            return mask;
    }
    // Condition 4: delta < 0, so this fires when the detuning
    // exceeds the anharmonicity in either direction.
    if (fa > fb - d || fb > fa - d)
        mask |= 1u << 4;
    return mask;
}

/** Same for the triple conditions 5-7 (shared neighbour j). */
template <bool StopAtFirst>
inline unsigned
tripleMask(const CollisionModel &model, double fj, double fk, double fi)
{
    const double d = model.delta;
    unsigned mask = 0;
    // Condition 5 (symmetric in i, k).
    if (near(fi, fk, model.thr5)) {
        mask |= 1u << 5;
        if constexpr (StopAtFirst)
            return mask;
    }
    // Condition 6, both orientations.
    if (near(fi, fk - d, model.thr6) ||
        near(fk, fi - d, model.thr6)) {
        mask |= 1u << 6;
        if constexpr (StopAtFirst)
            return mask;
    }
    // Condition 7 (symmetric in i, k).
    if (near(2 * fj + d, fk + fi, model.thr7))
        mask |= 1u << 7;
    return mask;
}

} // namespace

unsigned
pairConditionMask(const CollisionModel &model, double fa, double fb)
{
    return pairMask<false>(model, fa, fb);
}

unsigned
tripleConditionMask(const CollisionModel &model, double fj, double fk,
                    double fi)
{
    return tripleMask<false>(model, fj, fk, fi);
}

bool
pairCollides(const CollisionModel &model, double fa, double fb)
{
    return pairMask<true>(model, fa, fb) != 0;
}

bool
tripleCollides(const CollisionModel &model, double fj, double fk,
               double fi)
{
    return tripleMask<true>(model, fj, fk, fi) != 0;
}

bool
CollisionChecker::anyCollision(const std::vector<double> &freqs) const
{
    for (const PairTerm &p : pairs_)
        if (pairCollides(model_, freqs[p.a], freqs[p.b]))
            return true;
    for (const TripleTerm &t : triples_)
        if (tripleCollides(model_, freqs[t.j], freqs[t.k], freqs[t.i]))
            return true;
    return false;
}

ConditionCounts
CollisionChecker::countCollisions(const std::vector<double> &freqs) const
{
    ConditionCounts counts{};
    for (const PairTerm &p : pairs_) {
        const unsigned mask =
            pairConditionMask(model_, freqs[p.a], freqs[p.b]);
        for (int c = 1; c <= 4; ++c)
            counts[c] += (mask >> c) & 1u;
    }
    for (const TripleTerm &t : triples_) {
        const unsigned mask = tripleConditionMask(
            model_, freqs[t.j], freqs[t.k], freqs[t.i]);
        for (int c = 5; c <= 7; ++c)
            counts[c] += (mask >> c) & 1u;
    }
    return counts;
}

} // namespace qpad::yield

#include "yield/collision.hh"

#include <cmath>

namespace qpad::yield
{

using arch::PhysQubit;

CollisionChecker::CollisionChecker(const arch::Architecture &arch,
                                   const CollisionModel &model)
    : model_(model)
{
    for (auto [a, b] : arch.edges())
        pairs_.push_back({a, b});
    const auto &adj = arch.adjacency();
    for (PhysQubit j = 0; j < arch.numQubits(); ++j) {
        const auto &neighbors = adj[j];
        for (std::size_t x = 0; x < neighbors.size(); ++x)
            for (std::size_t y = x + 1; y < neighbors.size(); ++y)
                triples_.push_back({j, neighbors[x], neighbors[y]});
    }
}

namespace
{

inline bool
near(double value, double target, double thr)
{
    return std::fabs(value - target) < thr;
}

} // namespace

bool
pairCollides(const CollisionModel &model, double fa, double fb)
{
    const double d = model.delta;
    // Condition 1 (symmetric).
    if (near(fa, fb, model.thr1))
        return true;
    // Conditions 2/3/4 in both orientations (either qubit may act as
    // the cross-resonance control).
    if (near(fa, fb - d / 2, model.thr2) ||
        near(fb, fa - d / 2, model.thr2))
        return true;
    if (near(fa, fb - d, model.thr3) || near(fb, fa - d, model.thr3))
        return true;
    if (fa > fb - d || fb > fa - d)
        return true;
    return false;
}

bool
tripleCollides(const CollisionModel &model, double fj, double fk,
               double fi)
{
    const double d = model.delta;
    // Condition 5 (symmetric in i, k).
    if (near(fi, fk, model.thr5))
        return true;
    // Condition 6, both orientations.
    if (near(fi, fk - d, model.thr6) || near(fk, fi - d, model.thr6))
        return true;
    // Condition 7 (symmetric in i, k).
    if (near(2 * fj + d, fk + fi, model.thr7))
        return true;
    return false;
}

bool
CollisionChecker::anyCollision(const std::vector<double> &freqs) const
{
    for (const PairTerm &p : pairs_)
        if (pairCollides(model_, freqs[p.a], freqs[p.b]))
            return true;
    for (const TripleTerm &t : triples_)
        if (tripleCollides(model_, freqs[t.j], freqs[t.k], freqs[t.i]))
            return true;
    return false;
}

ConditionCounts
CollisionChecker::countCollisions(const std::vector<double> &freqs) const
{
    ConditionCounts counts{};
    const CollisionModel &model = model_;
    const double d = model.delta;
    for (const PairTerm &p : pairs_) {
        double fa = freqs[p.a], fb = freqs[p.b];
        if (near(fa, fb, model.thr1))
            ++counts[1];
        if (near(fa, fb - d / 2, model.thr2) ||
            near(fb, fa - d / 2, model.thr2))
            ++counts[2];
        if (near(fa, fb - d, model.thr3) ||
            near(fb, fa - d, model.thr3))
            ++counts[3];
        if (fa > fb - d || fb > fa - d)
            ++counts[4];
    }
    for (const TripleTerm &t : triples_) {
        double fj = freqs[t.j], fk = freqs[t.k], fi = freqs[t.i];
        if (near(fi, fk, model.thr5))
            ++counts[5];
        if (near(fi, fk - d, model.thr6) ||
            near(fk, fi - d, model.thr6))
            ++counts[6];
        if (near(2 * fj + d, fk + fi, model.thr7))
            ++counts[7];
    }
    return counts;
}

} // namespace qpad::yield

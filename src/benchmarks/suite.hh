/**
 * @file
 * Registry of the twelve benchmark programs evaluated in the paper
 * (Section 5.1), with the paper's qubit counts.
 */

#ifndef QPAD_BENCHMARKS_SUITE_HH
#define QPAD_BENCHMARKS_SUITE_HH

#include <functional>
#include <string>
#include <vector>

#include "circuit/circuit.hh"

namespace qpad::benchmarks
{

/** One catalogued benchmark. */
struct BenchmarkInfo
{
    std::string name;       ///< paper name, e.g. "misex1_241"
    std::size_t num_qubits; ///< paper-reported width
    std::string domain;     ///< e.g. "arithmetic", "simulation"
    std::function<circuit::Circuit()> generate;
};

/** All twelve paper benchmarks, in the order of Figure 10. */
const std::vector<BenchmarkInfo> &paperSuite();

/** Look up one benchmark by name; fatal if unknown. */
const BenchmarkInfo &getBenchmark(const std::string &name);

/** True if a benchmark of that name exists. */
bool hasBenchmark(const std::string &name);

/**
 * Extended catalogue beyond the paper's twelve programs (classic
 * reversible-logic functions), for wider library coverage.
 */
const std::vector<BenchmarkInfo> &extendedSuite();

} // namespace qpad::benchmarks

#endif // QPAD_BENCHMARKS_SUITE_HH

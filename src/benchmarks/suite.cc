#include "benchmarks/suite.hh"

#include "benchmarks/functions.hh"
#include "benchmarks/generators.hh"
#include "common/logging.hh"
#include "revsynth/synth.hh"

namespace qpad::benchmarks
{

using circuit::Circuit;

namespace
{

Circuit
synthNamed(const revsynth::TruthTable &table, std::size_t width)
{
    revsynth::SynthOptions opts;
    opts.total_qubits = width;
    return revsynth::synthesize(table, opts).circuit;
}

std::vector<BenchmarkInfo>
buildSuite()
{
    std::vector<BenchmarkInfo> suite;

    suite.push_back({"qft_16", 16, "transform",
                     [] { return qft(16); }});
    suite.push_back({"ising_model_16", 16, "simulation",
                     [] { return isingModel(16, 10); }});
    suite.push_back({"UCCSD_ansatz_8", 8, "simulation",
                     [] { return uccsdAnsatz(8); }});
    suite.push_back({"sym6_145", 7, "logic",
                     [] { return synthNamed(sym6Table(), 7); }});
    suite.push_back({"dc1_220", 11, "logic",
                     [] { return synthNamed(dc1Table(), 11); }});
    suite.push_back({"z4_268", 11, "arithmetic",
                     [] { return synthNamed(z4Table(), 11); }});
    suite.push_back({"cm152a_212", 12, "logic",
                     [] { return synthNamed(cm152aTable(), 12); }});
    suite.push_back({"adr4_197", 13, "arithmetic",
                     [] { return synthNamed(adr4Table(), 13); }});
    suite.push_back({"radd_250", 13, "arithmetic",
                     [] { return cuccaroAdder(6); }});
    suite.push_back({"rd84_142", 15, "arithmetic",
                     [] { return synthNamed(rd84Table(), 15); }});
    suite.push_back({"misex1_241", 15, "logic",
                     [] { return synthNamed(misex1Table(), 15); }});
    suite.push_back({"square_root_7", 15, "arithmetic",
                     [] { return synthNamed(squareRootTable(), 15); }});

    return suite;
}

} // namespace

const std::vector<BenchmarkInfo> &
paperSuite()
{
    static const std::vector<BenchmarkInfo> suite = buildSuite();
    return suite;
}

const std::vector<BenchmarkInfo> &
extendedSuite()
{
    static const std::vector<BenchmarkInfo> suite = [] {
        std::vector<BenchmarkInfo> out;
        out.push_back({"hwb7", 15, "logic",
                       [] { return synthNamed(hwb7Table(), 15); }});
        out.push_back({"majority7", 8, "logic",
                       [] { return synthNamed(majority7Table(), 8); }});
        out.push_back({"graycode6", 12, "logic",
                       [] { return synthNamed(graycode6Table(), 12); }});
        out.push_back({"mod5adder", 10, "arithmetic",
                       [] { return synthNamed(mod5adderTable(), 10); }});
        out.push_back({"parity8", 9, "logic",
                       [] { return synthNamed(parity8Table(), 9); }});
        out.push_back({"ghz_12", 12, "state-prep",
                       [] { return ghz(12); }});
        out.push_back({"qft_8", 8, "transform",
                       [] { return qft(8); }});
        return out;
    }();
    return suite;
}

const BenchmarkInfo &
getBenchmark(const std::string &name)
{
    for (const auto &b : paperSuite())
        if (b.name == name)
            return b;
    for (const auto &b : extendedSuite())
        if (b.name == name)
            return b;
    qpad_fatal("unknown benchmark '", name, "'");
}

bool
hasBenchmark(const std::string &name)
{
    for (const auto &b : paperSuite())
        if (b.name == name)
            return true;
    for (const auto &b : extendedSuite())
        if (b.name == name)
            return true;
    return false;
}

} // namespace qpad::benchmarks

#include "benchmarks/functions.hh"

#include <bit>
#include <cstdint>

#include "benchmarks/pla.hh"

namespace qpad::benchmarks
{

using revsynth::TruthTable;

TruthTable
adr4Table()
{
    // Inputs: a = bits 0..3, b = bits 4..7; output = a + b (5 bits).
    return TruthTable::fromFunction(8, 5, [](uint64_t x) {
        uint64_t a = x & 0xf;
        uint64_t b = (x >> 4) & 0xf;
        return a + b;
    }, "adr4_197");
}

TruthTable
rd84Table()
{
    // Hamming weight of the 8 inputs; bit k of the result is the
    // elementary symmetric polynomial sigma_{2^k} mod 2 (Lucas).
    return TruthTable::fromFunction(8, 4, [](uint64_t x) {
        return uint64_t(std::popcount(x & 0xff));
    }, "rd84_142");
}

TruthTable
sym6Table()
{
    // Symmetric threshold band: 1 iff 2 <= weight <= 4. This choice
    // keeps the PPRM degree at 5 so the 7-line embedding (6 inputs +
    // 1 output, no ancilla) remains decomposable.
    return TruthTable::fromFunction(6, 1, [](uint64_t x) {
        int w = std::popcount(x & 0x3f);
        return uint64_t(w >= 2 && w <= 4);
    }, "sym6_145");
}

TruthTable
z4Table()
{
    // Sum of a 2-bit, a 2-bit and a 3-bit operand (4-bit result).
    return TruthTable::fromFunction(7, 4, [](uint64_t x) {
        uint64_t a = x & 0x3;
        uint64_t b = (x >> 2) & 0x3;
        uint64_t c = (x >> 4) & 0x7;
        return a + b + c;
    }, "z4_268");
}

TruthTable
squareRootTable()
{
    // floor(sqrt(x)) for an 8-bit x fits in 4 bits.
    return TruthTable::fromFunction(8, 4, [](uint64_t x) {
        uint64_t r = 0;
        while ((r + 1) * (r + 1) <= x)
            ++r;
        return r;
    }, "square_root_7");
}

TruthTable
cm152aTable()
{
    // 8-to-1 multiplexer: select = bits 0..2, data = bits 3..10.
    return TruthTable::fromFunction(11, 1, [](uint64_t x) {
        uint64_t sel = x & 0x7;
        return (x >> (3 + sel)) & 1;
    }, "cm152a_212");
}

TruthTable
dc1Table()
{
    // Decoder-like 4-input 7-output PLA in the spirit of the MCNC
    // "dc1" benchmark (the original cube list is not available
    // offline; see DESIGN.md substitutions).
    const std::string pla =
        ".i 4\n"
        ".o 7\n"
        "1-0- 1000000\n"
        "01-1 1100000\n"
        "-011 0110000\n"
        "110- 0010010\n"
        "0-10 0001000\n"
        "1111 0001100\n"
        "-00- 0000100\n"
        "0110 0000011\n"
        "10-1 0100001\n"
        ".e\n";
    return parsePla(pla, "dc1_220");
}

TruthTable
misex1Table()
{
    // Sum-of-products with the original misex1 profile: 8 inputs,
    // 7 outputs, a dozen moderately wide cubes sharing literals
    // across outputs (synthetic cube list, see DESIGN.md).
    const std::string pla =
        ".i 8\n"
        ".o 7\n"
        "1-0-1--- 1000001\n"
        "01--0-1- 1100000\n"
        "--11-0-- 0110000\n"
        "1-1--1-0 0011000\n"
        "-0-01--1 0001100\n"
        "0--1--01 0000110\n"
        "--0-11-- 0000011\n"
        "11---0-1 1000010\n"
        "-01-0--0 0100100\n"
        "0-0--11- 0010001\n"
        "1--10--1 0001001\n"
        "-1-0--10 0100010\n"
        ".e\n";
    return parsePla(pla, "misex1_241");
}

TruthTable
hwb7Table()
{
    // Hidden weighted bit: rotate the input left by its weight.
    return TruthTable::fromFunction(7, 7, [](uint64_t x) {
        int w = std::popcount(x & 0x7f);
        uint64_t rotated = ((x << w) | (x >> (7 - w))) & 0x7f;
        return w == 0 || w == 7 ? x & 0x7f : rotated;
    }, "hwb7");
}

TruthTable
majority7Table()
{
    return TruthTable::fromFunction(7, 1, [](uint64_t x) {
        return uint64_t(std::popcount(x & 0x7f) >= 4);
    }, "majority7");
}

TruthTable
graycode6Table()
{
    return TruthTable::fromFunction(6, 6, [](uint64_t x) {
        return (x ^ (x >> 1)) & 0x3f;
    }, "graycode6");
}

TruthTable
mod5adderTable()
{
    // Operands a = bits 0..2, b = bits 3..5.
    return TruthTable::fromFunction(6, 3, [](uint64_t x) {
        return ((x & 0x7) + ((x >> 3) & 0x7)) % 5;
    }, "mod5adder");
}

TruthTable
parity8Table()
{
    return TruthTable::fromFunction(8, 1, [](uint64_t x) {
        return uint64_t(std::popcount(x & 0xff) & 1);
    }, "parity8");
}

} // namespace qpad::benchmarks

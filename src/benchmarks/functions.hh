/**
 * @file
 * Boolean specifications of the paper's RevLib-style benchmarks.
 *
 * The original RevLib gate-level files are not available offline;
 * per DESIGN.md each function is rebuilt from its (documented or
 * closest plausible) Boolean semantics and synthesized with the
 * qpad reversible synthesizer to the paper's qubit counts.
 */

#ifndef QPAD_BENCHMARKS_FUNCTIONS_HH
#define QPAD_BENCHMARKS_FUNCTIONS_HH

#include "revsynth/truth_table.hh"

namespace qpad::benchmarks
{

/** adr4: 4-bit + 4-bit adder, 5-bit result (8 in, 5 out). */
revsynth::TruthTable adr4Table();

/** rd84: Hamming weight of 8 bits, 4-bit result (8 in, 4 out). */
revsynth::TruthTable rd84Table();

/** sym6: 1 iff the weight of 6 bits is in {2,3,4} (6 in, 1 out). */
revsynth::TruthTable sym6Table();

/** z4: sum of two 2-bit and one 3-bit number (7 in, 4 out). */
revsynth::TruthTable z4Table();

/** square_root: floor(sqrt(x)) of an 8-bit input (8 in, 4 out). */
revsynth::TruthTable squareRootTable();

/** cm152a: 8-to-1 multiplexer, 3 select + 8 data (11 in, 1 out). */
revsynth::TruthTable cm152aTable();

/** dc1: 4-input 7-output PLA (decoder-like cube list). */
revsynth::TruthTable dc1Table();

/** misex1: 8-input 7-output PLA (synthetic cube list). */
revsynth::TruthTable misex1Table();

/** @name Extended suite (beyond the paper's twelve benchmarks) */
/** @{ */

/** hwb7: hidden weighted bit, x rotated by weight(x) (7 in, 7 out). */
revsynth::TruthTable hwb7Table();

/** majority7: 1 iff weight of 7 bits >= 4 (7 in, 1 out). */
revsynth::TruthTable majority7Table();

/** graycode6: x XOR (x >> 1), a purely linear function (6 in, 6 out). */
revsynth::TruthTable graycode6Table();

/** mod5adder: (a + b) mod 5 for two 3-bit operands (6 in, 3 out). */
revsynth::TruthTable mod5adderTable();

/** parity8: XOR of 8 bits (8 in, 1 out). */
revsynth::TruthTable parity8Table();

/** @} */

} // namespace qpad::benchmarks

#endif // QPAD_BENCHMARKS_FUNCTIONS_HH

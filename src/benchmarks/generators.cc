#include "benchmarks/generators.hh"

#include <cmath>
#include <numbers>

#include "circuit/decompose.hh"
#include "common/logging.hh"

namespace qpad::benchmarks
{

using circuit::Circuit;
using circuit::Qubit;

Circuit
qft(std::size_t n, bool measure)
{
    qpad_assert(n >= 1, "qft needs at least one qubit");
    Circuit circ(n, n, "qft_" + std::to_string(n));
    for (std::size_t i = 0; i < n; ++i) {
        circ.h(static_cast<Qubit>(i));
        for (std::size_t j = i + 1; j < n; ++j) {
            double theta = std::numbers::pi / double(std::size_t{1} << (j - i));
            circ.cp(theta, static_cast<Qubit>(j), static_cast<Qubit>(i));
        }
    }
    Circuit lowered = circuit::decompose(circ);
    if (measure) {
        for (std::size_t i = 0; i < n; ++i)
            lowered.measure(static_cast<Qubit>(i),
                            static_cast<circuit::Clbit>(i));
    }
    return lowered;
}

Circuit
isingModel(std::size_t n, std::size_t steps, bool measure)
{
    qpad_assert(n >= 2, "ising model needs at least two sites");
    Circuit circ(n, n, "ising_model_" + std::to_string(n));
    // Initial transverse basis preparation.
    for (std::size_t i = 0; i < n; ++i)
        circ.h(static_cast<Qubit>(i));
    const double dt = 0.1;
    for (std::size_t s = 0; s < steps; ++s) {
        for (std::size_t i = 0; i + 1 < n; ++i)
            circ.rzz(2.0 * dt, static_cast<Qubit>(i),
                     static_cast<Qubit>(i + 1));
        for (std::size_t i = 0; i < n; ++i)
            circ.rx(2.0 * dt, static_cast<Qubit>(i));
    }
    Circuit lowered = circuit::decompose(circ);
    if (measure) {
        for (std::size_t i = 0; i < n; ++i)
            lowered.measure(static_cast<Qubit>(i),
                            static_cast<circuit::Clbit>(i));
    }
    return lowered;
}

namespace
{

/** exp(-i theta Z...Z) over a path of qubits via a CX ladder. */
void
pauliStringRotation(Circuit &circ, const std::vector<Qubit> &path,
                    double theta)
{
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
        circ.cx(path[i], path[i + 1]);
    circ.rz(2.0 * theta, path.back());
    for (std::size_t i = path.size() - 1; i >= 1; --i)
        circ.cx(path[i - 1], path[i]);
}

} // namespace

Circuit
uccsdAnsatz(std::size_t n, bool measure)
{
    qpad_assert(n >= 4 && n % 2 == 0,
                "uccsd ansatz needs an even orbital count >= 4");
    Circuit circ(n, n, "UCCSD_ansatz_" + std::to_string(n));
    const std::size_t occ = n / 2;

    // Hartree-Fock reference: occupied orbitals set to |1>.
    for (std::size_t i = 0; i < occ; ++i)
        circ.x(static_cast<Qubit>(i));

    double theta = 0.05;

    // Single excitations i -> a: Y_i Z... X_a strings, adjacent-index
    // CX staircase between i and a.
    for (std::size_t i = 0; i < occ; ++i) {
        for (std::size_t a = occ; a < n; ++a) {
            for (int term = 0; term < 2; ++term) {
                // Basis changes: RX(pi/2) realizes Y, H realizes X.
                if (term == 0) {
                    circ.rx((std::numbers::pi / 2), static_cast<Qubit>(i));
                    circ.h(static_cast<Qubit>(a));
                } else {
                    circ.h(static_cast<Qubit>(i));
                    circ.rx((std::numbers::pi / 2), static_cast<Qubit>(a));
                }
                std::vector<Qubit> path;
                for (std::size_t k = i; k <= a; ++k)
                    path.push_back(static_cast<Qubit>(k));
                pauliStringRotation(circ, path,
                                    term == 0 ? theta : -theta);
                if (term == 0) {
                    circ.rx(-(std::numbers::pi / 2), static_cast<Qubit>(i));
                    circ.h(static_cast<Qubit>(a));
                } else {
                    circ.h(static_cast<Qubit>(i));
                    circ.rx(-(std::numbers::pi / 2), static_cast<Qubit>(a));
                }
                theta += 0.01;
            }
        }
    }

    // Double excitations (i, i+1) -> (a, a+1): ladder through the
    // four endpoints only, giving the weak long-range couplings of
    // Figure 5 (left).
    for (std::size_t i = 0; i + 1 < occ; ++i) {
        for (std::size_t a = occ; a + 1 < n; ++a) {
            for (int term = 0; term < 2; ++term) {
                Qubit qi = static_cast<Qubit>(i);
                Qubit qj = static_cast<Qubit>(i + 1);
                Qubit qa = static_cast<Qubit>(a);
                Qubit qb = static_cast<Qubit>(a + 1);
                if (term == 0) {
                    circ.h(qi);
                    circ.h(qj);
                    circ.rx((std::numbers::pi / 2), qa);
                    circ.h(qb);
                } else {
                    circ.rx((std::numbers::pi / 2), qi);
                    circ.h(qj);
                    circ.h(qa);
                    circ.rx((std::numbers::pi / 2), qb);
                }
                pauliStringRotation(circ, {qi, qj, qa, qb},
                                    term == 0 ? theta : -theta);
                if (term == 0) {
                    circ.h(qi);
                    circ.h(qj);
                    circ.rx(-(std::numbers::pi / 2), qa);
                    circ.h(qb);
                } else {
                    circ.rx(-(std::numbers::pi / 2), qi);
                    circ.h(qj);
                    circ.h(qa);
                    circ.rx(-(std::numbers::pi / 2), qb);
                }
                theta += 0.01;
            }
        }
    }

    if (measure) {
        for (std::size_t i = 0; i < n; ++i)
            circ.measure(static_cast<Qubit>(i),
                         static_cast<circuit::Clbit>(i));
    }
    return circ;
}

Circuit
cuccaroAdder(std::size_t nbits, bool measure)
{
    qpad_assert(nbits >= 1, "adder needs at least one bit");
    // Lines: 0 = carry-in, then interleaved b_i, a_i pairs; the sum
    // replaces b. Width 2n + 1.
    const std::size_t width = 2 * nbits + 1;
    Circuit circ(width, width,
                 "radd_" + std::to_string(nbits) + "b");

    auto b = [&](std::size_t i) { return static_cast<Qubit>(1 + 2 * i); };
    auto a = [&](std::size_t i) { return static_cast<Qubit>(2 + 2 * i); };
    Qubit cin = 0;

    auto maj = [&](Qubit c, Qubit s, Qubit t) {
        circ.cx(t, s);
        circ.cx(t, c);
        circ.ccx(c, s, t);
    };
    auto uma = [&](Qubit c, Qubit s, Qubit t) {
        circ.ccx(c, s, t);
        circ.cx(t, c);
        circ.cx(c, s);
    };

    maj(cin, b(0), a(0));
    for (std::size_t i = 1; i < nbits; ++i)
        maj(a(i - 1), b(i), a(i));
    // Modular variant: no carry-out line; unwind immediately.
    for (std::size_t i = nbits; i-- > 1;)
        uma(a(i - 1), b(i), a(i));
    uma(cin, b(0), a(0));

    Circuit lowered = circuit::decompose(circ);
    if (measure) {
        for (std::size_t i = 0; i < nbits; ++i)
            lowered.measure(b(i), static_cast<circuit::Clbit>(i));
    }
    return lowered;
}

Circuit
ghz(std::size_t n, bool measure)
{
    qpad_assert(n >= 2, "ghz needs at least two qubits");
    Circuit circ(n, n, "ghz_" + std::to_string(n));
    circ.h(0);
    for (std::size_t i = 0; i + 1 < n; ++i)
        circ.cx(static_cast<Qubit>(i), static_cast<Qubit>(i + 1));
    if (measure) {
        for (std::size_t i = 0; i < n; ++i)
            circ.measure(static_cast<Qubit>(i),
                         static_cast<circuit::Clbit>(i));
    }
    return circ;
}

Circuit
profilingExample()
{
    Circuit circ(5, 5, "fig4_example");
    circ.h(0);
    circ.h(4);
    circ.cx(0, 4);
    circ.x(2);
    circ.cx(1, 4);
    circ.cx(0, 1);
    circ.h(3);
    circ.cx(2, 4);
    circ.cx(3, 4);
    circ.cx(0, 4);
    for (Qubit q = 0; q < 5; ++q)
        circ.measure(q, q);
    return circ;
}

} // namespace qpad::benchmarks

/**
 * @file
 * Structural quantum-circuit generators.
 *
 * These produce the non-RevLib benchmarks of the paper (QFT, the
 * Trotterized Ising model, the UCCSD VQE ansatz) plus generic
 * building blocks (GHZ, Cuccaro ripple-carry adder) used in tests
 * and examples. All generators emit circuits already lowered to the
 * {1q, CX} basis.
 */

#ifndef QPAD_BENCHMARKS_GENERATORS_HH
#define QPAD_BENCHMARKS_GENERATORS_HH

#include <cstddef>

#include "circuit/circuit.hh"

namespace qpad::benchmarks
{

/**
 * Quantum Fourier transform on n qubits, controlled phases lowered
 * to two CX each, no final reversal swaps (matching the benchmark
 * the paper uses: every qubit pair interacts exactly twice).
 */
circuit::Circuit qft(std::size_t n, bool measure = true);

/**
 * Trotterized 1-D transverse-field Ising model: per step, ZZ
 * interactions along the chain (two CX each) plus RX on every site.
 */
circuit::Circuit isingModel(std::size_t n, std::size_t steps = 10,
                            bool measure = true);

/**
 * UCCSD-style VQE ansatz over n spin orbitals (first n/2 occupied).
 * Single excitations use Jordan-Wigner CX staircases over adjacent
 * indices; double excitations ladder through the excitation's four
 * endpoints, producing the chain-dominant + weak long-range pattern
 * of the paper's Figure 5 (left).
 */
circuit::Circuit uccsdAnsatz(std::size_t n, bool measure = true);

/**
 * Cuccaro in-place ripple-carry modular adder |a,b> -> |a, a+b mod
 * 2^n> with a carry-in line: width 2n + 1.
 */
circuit::Circuit cuccaroAdder(std::size_t nbits, bool measure = true);

/** GHZ state preparation (H + CX fan-out chain). */
circuit::Circuit ghz(std::size_t n, bool measure = true);

/**
 * The 5-qubit profiling example of the paper's Figure 4: two CX on
 * (q0,q4) and one each on (q1,q4), (q2,q4), (q3,q4), (q0,q1), with
 * assorted single-qubit gates and final measurement.
 */
circuit::Circuit profilingExample();

} // namespace qpad::benchmarks

#endif // QPAD_BENCHMARKS_GENERATORS_HH

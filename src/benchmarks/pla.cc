#include "benchmarks/pla.hh"

#include <sstream>

#include "common/logging.hh"

namespace qpad::benchmarks
{

using revsynth::TruthTable;

TruthTable
tableFromPla(unsigned num_inputs, unsigned num_outputs,
             const std::vector<PlaCube> &cubes, std::string name)
{
    TruthTable tt(num_inputs, num_outputs, std::move(name));
    const uint64_t rows = uint64_t{1} << num_inputs;
    for (uint64_t x = 0; x < rows; ++x) {
        uint64_t out = 0;
        for (const PlaCube &cube : cubes)
            if ((x & cube.care) == (cube.value & cube.care))
                out |= cube.output_mask;
        tt.setRow(x, out);
    }
    return tt;
}

TruthTable
parsePla(const std::string &text, std::string name)
{
    std::istringstream in(text);
    std::string line;
    unsigned ni = 0, no = 0;
    std::vector<PlaCube> cubes;

    while (std::getline(in, line)) {
        // Strip comments and whitespace.
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream ls(line);
        std::string first;
        if (!(ls >> first))
            continue;
        if (first == ".i") {
            ls >> ni;
        } else if (first == ".o") {
            ls >> no;
        } else if (first == ".p" || first == ".ilb" || first == ".ob" ||
                   first == ".type") {
            continue; // cube count / labels: informational
        } else if (first == ".e" || first == ".end") {
            break;
        } else {
            // A cube line: "<inputs> <outputs>".
            std::string outs;
            if (!(ls >> outs))
                qpad_fatal("pla: cube line missing outputs: '", line, "'");
            if (first.size() != ni || outs.size() != no)
                qpad_fatal("pla: cube width mismatch in '", line, "'");
            PlaCube cube;
            for (unsigned i = 0; i < ni; ++i) {
                char c = first[i];
                if (c == '-')
                    continue;
                cube.care |= uint64_t{1} << i;
                if (c == '1')
                    cube.value |= uint64_t{1} << i;
                else if (c != '0')
                    qpad_fatal("pla: bad input literal '", c, "'");
            }
            for (unsigned j = 0; j < no; ++j) {
                char c = outs[j];
                if (c == '1')
                    cube.output_mask |= uint64_t{1} << j;
                else if (c != '0' && c != '-' && c != '~')
                    qpad_fatal("pla: bad output literal '", c, "'");
            }
            cubes.push_back(cube);
        }
    }
    if (ni == 0 || no == 0)
        qpad_fatal("pla: missing .i/.o header");
    return tableFromPla(ni, no, cubes, std::move(name));
}

} // namespace qpad::benchmarks

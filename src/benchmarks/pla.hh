/**
 * @file
 * PLA-style (cube list) specification of multi-output functions.
 *
 * Several of the paper's benchmarks originate from classical MCNC
 * PLA files (misex1, cm152a, dc1). A PLA is a sum-of-products: each
 * cube constrains some inputs to 0/1 (others are don't-cares) and
 * raises a subset of the outputs. This header turns a cube list into
 * a dense TruthTable for the reversible synthesizer.
 */

#ifndef QPAD_BENCHMARKS_PLA_HH
#define QPAD_BENCHMARKS_PLA_HH

#include <cstdint>
#include <string>
#include <vector>

#include "revsynth/truth_table.hh"

namespace qpad::benchmarks
{

/**
 * One product term: input bits where (care >> i) & 1 must equal
 * (value >> i) & 1; all outputs in output_mask become 1 when the
 * cube fires (OR semantics across cubes).
 */
struct PlaCube
{
    uint64_t care = 0;
    uint64_t value = 0;
    uint64_t output_mask = 0;
};

/** Materialize a cube list into a truth table. */
revsynth::TruthTable tableFromPla(unsigned num_inputs,
                                  unsigned num_outputs,
                                  const std::vector<PlaCube> &cubes,
                                  std::string name);

/**
 * Parse a (subset of the) Espresso .pla format: .i/.o/.p headers,
 * cube lines with 0/1/- inputs and 0/1 outputs, .e terminator.
 */
revsynth::TruthTable parsePla(const std::string &text, std::string name);

} // namespace qpad::benchmarks

#endif // QPAD_BENCHMARKS_PLA_HH

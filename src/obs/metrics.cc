#include "obs/metrics.hh"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/logging.hh"

namespace qpad::obs
{

namespace detail
{

void
addDouble(std::atomic<double> &target, double v)
{
    double cur = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed))
        ;
}

void
maxDouble(std::atomic<double> &target, double v)
{
    double cur = target.load(std::memory_order_relaxed);
    while (cur < v &&
           !target.compare_exchange_weak(cur, v,
                                         std::memory_order_relaxed))
        ;
}

} // namespace detail

// ---------------------------------------------------------------------
// Counter / Histogram
// ---------------------------------------------------------------------

uint64_t
Counter::value() const
{
    uint64_t total = 0;
    for (const detail::Cell &cell : cells_)
        total += cell.value.load(std::memory_order_relaxed);
    return total;
}

std::vector<double>
Histogram::defaultLatencyBounds()
{
    return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds))
{
    qpad_assert(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bounds must be ascending");
    stripes_ = std::vector<Stripe>(detail::kStripes);
    for (Stripe &s : stripes_)
        s.buckets =
            std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
}

void
Histogram::observe(double v)
{
    Stripe &s = stripes_[detail::threadStripe()];
    const std::size_t b =
        std::lower_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin();
    s.buckets[b].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    detail::addDouble(s.sum, v);
    detail::maxDouble(s.max, v);
}

uint64_t
Histogram::count() const
{
    uint64_t total = 0;
    for (const Stripe &s : stripes_)
        total += s.count.load(std::memory_order_relaxed);
    return total;
}

double
Histogram::sum() const
{
    double total = 0.0;
    for (const Stripe &s : stripes_)
        total += s.sum.load(std::memory_order_relaxed);
    return total;
}

double
Histogram::max() const
{
    double m = 0.0;
    for (const Stripe &s : stripes_)
        m = std::max(m, s.max.load(std::memory_order_relaxed));
    return m;
}

std::vector<uint64_t>
Histogram::bucketCounts() const
{
    std::vector<uint64_t> counts(bounds_.size() + 1, 0);
    for (const Stripe &s : stripes_)
        for (std::size_t b = 0; b < counts.size(); ++b)
            counts[b] += s.buckets[b].load(std::memory_order_relaxed);
    return counts;
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

namespace
{

class Registry
{
  public:
    /** Leaked on purpose: handles must stay valid through static
     * destruction (the global cache store publishes from its
     * destructor). Reachable via this pointer, so LeakSanitizer does
     * not report it. */
    static Registry &
    instance()
    {
        static Registry *registry = new Registry;
        return *registry;
    }

    Counter &
    counter(std::string_view name)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Entry &e = entryFor(name, Sample::Kind::Counter);
        if (!e.counter)
            e.counter = std::make_unique<Counter>();
        return *e.counter;
    }

    Gauge &
    gauge(std::string_view name)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Entry &e = entryFor(name, Sample::Kind::Gauge);
        if (!e.gauge)
            e.gauge = std::make_unique<Gauge>();
        return *e.gauge;
    }

    Histogram &
    histogram(std::string_view name, std::vector<double> bounds)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Entry &e = entryFor(name, Sample::Kind::Histogram);
        if (!e.histogram)
            e.histogram =
                std::make_unique<Histogram>(std::move(bounds));
        return *e.histogram;
    }

    Snapshot
    snapshot()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Snapshot snap;
        snap.reserve(entries_.size());
        // std::map iterates in key order, so the snapshot is
        // name-sorted by construction — deterministic regardless of
        // registration or thread interleaving.
        for (const auto &[name, e] : entries_) {
            Sample s;
            s.name = name;
            s.kind = e.kind;
            switch (e.kind) {
              case Sample::Kind::Counter:
                s.value = double(e.counter->value());
                break;
              case Sample::Kind::Gauge:
                s.value = double(e.gauge->value());
                break;
              case Sample::Kind::Histogram:
                s.count = e.histogram->count();
                s.sum = e.histogram->sum();
                s.max = e.histogram->max();
                s.bounds = e.histogram->bounds();
                s.buckets = e.histogram->bucketCounts();
                break;
            }
            snap.push_back(std::move(s));
        }
        return snap;
    }

  private:
    struct Entry
    {
        Sample::Kind kind = Sample::Kind::Counter;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry &
    entryFor(std::string_view name, Sample::Kind kind)
    {
        auto it = entries_.find(name);
        if (it == entries_.end())
            it = entries_
                     .emplace(std::string(name), Entry{kind, {}, {}, {}})
                     .first;
        qpad_assert(it->second.kind == kind, "metric '", name,
                    "' already registered as a different kind");
        return it->second;
    }

    std::mutex mutex_;
    std::map<std::string, Entry, std::less<>> entries_;
};

const char *
kindName(Sample::Kind kind)
{
    switch (kind) {
      case Sample::Kind::Counter: return "counter";
      case Sample::Kind::Gauge: return "gauge";
      case Sample::Kind::Histogram: return "histogram";
    }
    return "?";
}

/** QPAD_METRICS destination captured at startup ("" = disabled). */
std::string &
metricsDestination()
{
    static std::string destination;
    return destination;
}

void
dumpMetricsAtExit()
{
    const std::string &dest = metricsDestination();
    if (dest.empty())
        return;
    const Snapshot snap = snapshot();
    if (dest == "stderr") {
        // qpad-lint: allow(rawlog) "sanctioned exporter: the user
        // chose stderr as the QPAD_METRICS destination"
        std::cerr << "qpad metrics:\n";
        // qpad-lint: allow(rawlog) "sanctioned exporter, same
        // stderr destination as the header line above"
        writeTable(std::cerr, snap, {}, "  ");
        return;
    }
    std::ofstream out(dest, std::ios::trunc);
    if (!out) {
        qpad_warn("obs: cannot write QPAD_METRICS file '", dest, "'");
        return;
    }
    writeJson(out, snap);
}

/** Reads QPAD_METRICS once at static init (env is set before main)
 * and schedules the exit dump. */
struct MetricsEnvInit
{
    MetricsEnvInit()
    {
        const char *dest = std::getenv("QPAD_METRICS");
        if (!dest || !*dest)
            return;
        metricsDestination() = dest;
        std::atexit(dumpMetricsAtExit);
    }
} g_metrics_env_init;

} // namespace

Counter &
counter(std::string_view name)
{
    return Registry::instance().counter(name);
}

Gauge &
gauge(std::string_view name)
{
    return Registry::instance().gauge(name);
}

Histogram &
histogram(std::string_view name, std::vector<double> bounds)
{
    return Registry::instance().histogram(name, std::move(bounds));
}

Snapshot
snapshot()
{
    return Registry::instance().snapshot();
}

Snapshot
deltaSince(const Snapshot &before)
{
    Snapshot now = snapshot();
    for (Sample &s : now) {
        const Sample *prev = find(before, s.name);
        if (!prev || prev->kind != s.kind)
            continue;
        switch (s.kind) {
          case Sample::Kind::Counter:
            s.value -= prev->value;
            break;
          case Sample::Kind::Gauge:
            break; // levels do not delta
          case Sample::Kind::Histogram:
            s.count -= prev->count;
            s.sum -= prev->sum;
            // max stays absolute (a delta of a maximum is undefined)
            if (s.buckets.size() == prev->buckets.size())
                for (std::size_t b = 0; b < s.buckets.size(); ++b)
                    s.buckets[b] -= prev->buckets[b];
            break;
        }
    }
    return now;
}

double
samplePercentile(const Sample &s, double q)
{
    if (s.kind != Sample::Kind::Histogram || s.count == 0 ||
        s.buckets.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    uint64_t total = 0;
    for (uint64_t c : s.buckets)
        total += c;
    if (total == 0)
        return 0.0;
    const double target = q * double(total);
    double cumulative = 0.0;
    for (std::size_t b = 0; b < s.buckets.size(); ++b) {
        const double in_bucket = double(s.buckets[b]);
        if (in_bucket == 0.0)
            continue;
        if (cumulative + in_bucket >= target) {
            // Bucket b spans (lo, hi]: lo is the previous bound (0
            // for the first), hi the bucket's own bound — the +inf
            // bucket tops out at the observed max.
            const double lo = b == 0 ? 0.0 : s.bounds[b - 1];
            const double hi = b < s.bounds.size()
                                  ? s.bounds[b]
                                  : std::max(s.max, lo);
            const double frac =
                std::clamp((target - cumulative) / in_bucket, 0.0, 1.0);
            return std::min(lo + frac * (hi - lo), s.max);
        }
        cumulative += in_bucket;
    }
    return s.max;
}

const Sample *
find(const Snapshot &snap, std::string_view name)
{
    // Snapshots are name-sorted, so binary search applies.
    auto it = std::lower_bound(
        snap.begin(), snap.end(), name,
        [](const Sample &s, std::string_view n) { return s.name < n; });
    if (it == snap.end() || it->name != name)
        return nullptr;
    return &*it;
}

double
valueOf(const Snapshot &snap, std::string_view name)
{
    const Sample *s = find(snap, name);
    if (!s)
        return 0.0;
    return s->kind == Sample::Kind::Histogram ? s->sum : s->value;
}

void
writeTable(std::ostream &out, const Snapshot &snap,
           std::string_view prefix, std::string_view indent)
{
    std::size_t width = 0;
    for (const Sample &s : snap)
        if (s.name.starts_with(prefix))
            width = std::max(width, s.name.size());
    for (const Sample &s : snap) {
        if (!s.name.starts_with(prefix))
            continue;
        out << indent << std::left << std::setw(int(width) + 2)
            << s.name << std::right;
        switch (s.kind) {
          case Sample::Kind::Counter:
            out << uint64_t(s.value);
            break;
          case Sample::Kind::Gauge:
            out << int64_t(s.value);
            break;
          case Sample::Kind::Histogram: {
            std::ostringstream hist;
            hist << "count=" << s.count << " sum=" << std::scientific
                 << std::setprecision(3) << s.sum << " max=" << s.max
                 << " p50=" << samplePercentile(s, 0.50)
                 << " p95=" << samplePercentile(s, 0.95)
                 << " p99=" << samplePercentile(s, 0.99);
            out << hist.str();
            break;
          }
        }
        out << "\n";
    }
}

void
writeSampleJson(std::ostream &out, const Sample &s)
{
    // Metric names are code-controlled identifiers
    // ([a-z0-9._-]), so no JSON string escaping is needed.
    out << "{\"name\":\"" << s.name << "\",\"kind\":\""
        << kindName(s.kind) << "\"";
    std::ostringstream num;
    num << std::setprecision(17);
    switch (s.kind) {
      case Sample::Kind::Counter:
        out << ",\"value\":" << uint64_t(s.value);
        break;
      case Sample::Kind::Gauge:
        out << ",\"value\":" << int64_t(s.value);
        break;
      case Sample::Kind::Histogram:
        num << ",\"count\":" << s.count << ",\"sum\":" << s.sum
            << ",\"max\":" << s.max
            << ",\"p50\":" << samplePercentile(s, 0.50)
            << ",\"p95\":" << samplePercentile(s, 0.95)
            << ",\"p99\":" << samplePercentile(s, 0.99)
            << ",\"bounds\":[";
        for (std::size_t b = 0; b < s.bounds.size(); ++b)
            num << (b ? "," : "") << s.bounds[b];
        num << "],\"buckets\":[";
        for (std::size_t b = 0; b < s.buckets.size(); ++b)
            num << (b ? "," : "") << s.buckets[b];
        num << "]";
        out << num.str();
        break;
    }
    out << "}";
}

void
writeJson(std::ostream &out, const Snapshot &snap)
{
    out << "{\"metrics\":[";
    bool first = true;
    for (const Sample &s : snap) {
        out << (first ? "\n" : ",\n");
        first = false;
        writeSampleJson(out, s);
    }
    out << "\n]}\n";
}

} // namespace qpad::obs

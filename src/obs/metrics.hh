/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * fixed-bucket histograms.
 *
 * Hot-path contract: updating an existing metric is lock-free — a
 * relaxed atomic add on a per-thread-striped cache line — and never
 * allocates. Registration (`obs::counter("name")` etc.) takes a
 * mutex and allocates, so instrumentation sites cache the returned
 * reference in a function-local static:
 *
 *     static obs::Counter &steals = obs::counter("runtime.steals");
 *     steals.add(n);
 *
 * Handles are stable for the life of the process (the registry is
 * never destroyed), so references captured during static init or
 * held by worker threads stay valid through shutdown.
 *
 * Snapshots are deterministic: samples come back sorted by name, and
 * values are exact sums of everything recorded before the snapshot
 * (stripes are summed, never sampled). Set QPAD_METRICS=stderr for a
 * text table on stderr at process exit, or QPAD_METRICS=<path> for a
 * JSON file.
 *
 * Observability must never perturb results: nothing here feeds back
 * into any computation, so instrumented code is bit-identical with
 * metrics exported or not.
 */

#ifndef QPAD_OBS_METRICS_HH
#define QPAD_OBS_METRICS_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace qpad::obs
{

namespace detail
{

/** Update stripes per metric; threads hash onto one each. */
constexpr std::size_t kStripes = 16;

inline std::atomic<std::size_t> g_next_stripe{0};

/** Stable stripe index of the calling thread (assigned on first
 * use; round-robin, so pool workers spread over all stripes). */
inline std::size_t
threadStripe()
{
    thread_local const std::size_t stripe =
        g_next_stripe.fetch_add(1, std::memory_order_relaxed) %
        kStripes;
    return stripe;
}

/** One cache line per stripe so concurrent adds never false-share. */
struct alignas(64) Cell
{
    std::atomic<uint64_t> value{0};
};

/** Relaxed add on an atomic double (CAS loop: portable to standard
 * libraries without P0020 floating-point fetch_add). */
void addDouble(std::atomic<double> &target, double v);

/** Relaxed monotonic max on an atomic double. */
void maxDouble(std::atomic<double> &target, double v);

} // namespace detail

/** Monotonically increasing event count. */
class Counter
{
  public:
    Counter() = default;
    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    void add(uint64_t n = 1)
    {
        cells_[detail::threadStripe()].value.fetch_add(
            n, std::memory_order_relaxed);
    }

    /** Exact total of every add() that happened-before the call. */
    uint64_t value() const;

  private:
    detail::Cell cells_[detail::kStripes];
};

/** Signed level that can move both ways (resident bytes, entries). */
class Gauge
{
  public:
    Gauge() = default;
    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    void set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
    void add(int64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<int64_t> value_{0};
};

/**
 * Fixed-bucket histogram for nonnegative values (latencies in
 * seconds by convention). Bucket i counts observations <= bounds[i];
 * an implicit +inf bucket catches the rest. Bounds are fixed at
 * registration; observe() is striped relaxed atomics, no locks.
 */
class Histogram
{
  public:
    explicit Histogram(
        std::vector<double> bounds = defaultLatencyBounds());
    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    void observe(double v);

    const std::vector<double> &bounds() const { return bounds_; }
    uint64_t count() const;
    double sum() const;
    /** Largest value ever observed (0 when empty). */
    double max() const;
    /** Per-bucket counts, bounds().size() + 1 entries (last = +inf). */
    std::vector<uint64_t> bucketCounts() const;

    /** 1 µs .. 10 s decades — covers chunk waits through sweeps. */
    static std::vector<double> defaultLatencyBounds();

  private:
    struct Stripe
    {
        std::vector<std::atomic<uint64_t>> buckets;
        std::atomic<uint64_t> count{0};
        std::atomic<double> sum{0.0};
        std::atomic<double> max{0.0};
    };

    std::vector<double> bounds_;
    std::vector<Stripe> stripes_;
};

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

/**
 * Look up or create the named metric. Static-init-safe (the registry
 * is a function-local leaked singleton) and thread-safe; panics if
 * `name` is already registered as a different kind. For histograms,
 * the bounds of the first registration win.
 */
Counter &counter(std::string_view name);
Gauge &gauge(std::string_view name);
Histogram &histogram(
    std::string_view name,
    std::vector<double> bounds = Histogram::defaultLatencyBounds());

/** One metric's state at snapshot time. */
struct Sample
{
    enum class Kind { Counter, Gauge, Histogram };

    std::string name;
    Kind kind = Kind::Counter;
    /** Counter total or gauge level. */
    double value = 0.0;
    /** Histogram-only fields. */
    uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
    std::vector<double> bounds;
    std::vector<uint64_t> buckets;
};

/** Name-sorted snapshot of every registered metric. */
using Snapshot = std::vector<Sample>;
Snapshot snapshot();

/**
 * snapshot() minus `before`: counters and histogram counts/sums/
 * buckets subtract, gauges and histogram maxima keep their current
 * value (a delta of a level or a maximum is not meaningful). Metrics
 * registered since `before` appear with their full value.
 */
Snapshot deltaSince(const Snapshot &before);

/** Find a sample by exact name (nullptr when absent). */
const Sample *find(const Snapshot &snap, std::string_view name);

/**
 * Interpolated quantile of a histogram sample, q in [0, 1]: the
 * target rank's bucket is found from the cumulative counts and the
 * value interpolated linearly within the bucket's bounds (the +inf
 * bucket and the result are clamped to the observed max). 0 for an
 * empty histogram or a non-histogram sample.
 */
double samplePercentile(const Sample &s, double q);

/** Scalar view of a sample: counter/gauge value, histogram sum;
 * 0 when the name is absent. */
double valueOf(const Snapshot &snap, std::string_view name);

/**
 * Aligned text table of the samples whose name starts with `prefix`
 * (all of them when empty), one per line, prefixed with `indent`.
 */
void writeTable(std::ostream &out, const Snapshot &snap,
                std::string_view prefix = {},
                std::string_view indent = {});

/** The whole snapshot as JSON: {"metrics":[...]}, one per line. */
void writeJson(std::ostream &out, const Snapshot &snap);

/** One sample as a JSON object (the element writeJson emits; also
 * used by request reports). */
void writeSampleJson(std::ostream &out, const Sample &s);

} // namespace qpad::obs

#endif // QPAD_OBS_METRICS_HH

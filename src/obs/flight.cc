#include "obs/flight.hh"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <vector>

#include "obs/log.hh"

namespace qpad::obs::flight
{

namespace
{

/**
 * One ring slot. Every field is an individual relaxed atomic so the
 * dumper (possibly a signal handler on another thread) can read a
 * slot mid-overwrite without a data race; `seq` carries the event's
 * global per-thread sequence number (index + 1; 0 = never written or
 * being rewritten) and is published with a release store after the
 * fields, so a reader that observes it also observes the fields.
 */
struct Slot
{
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint64_t> rid{0};
    std::atomic<const char *> name{nullptr};
    std::atomic<uint8_t> phase{0};
    std::atomic<uint8_t> level{0};
};

struct Ring
{
    std::atomic<uint64_t> head{0}; // next sequence number to write
    uint32_t tid = 0;
    Slot slots[kRingEvents];
};

/** Upper bound on recording threads; later threads still run, their
 * events just stay out of dumps. */
constexpr std::size_t kMaxRings = 512;

std::atomic<Ring *> g_rings[kMaxRings];
std::atomic<uint32_t> g_ring_count{0};

/** Armed dump destination (fixed storage: read by the signal
 * handler, which cannot touch std::string). Empty = unarmed. */
char g_armed_path[4096] = {0};
std::atomic<bool> g_armed{false};
std::atomic<bool> g_dumped{false};

thread_local Ring *t_ring = nullptr;

/** First-use ring setup: the one allocation a thread ever pays.
 * Leaked deliberately — a crash handler must be able to walk rings
 * of threads that already exited. Reachable via g_rings, so
 * LeakSanitizer stays quiet. */
Ring *
initRing()
{
    Ring *ring = new Ring;
    const uint32_t i =
        g_ring_count.fetch_add(1, std::memory_order_relaxed);
    ring->tid = i;
    if (i < kMaxRings)
        g_rings[i].store(ring, std::memory_order_release);
    t_ring = ring;
    return ring;
}

/** A consistent copy of one published slot (false = empty slot or
 * torn by a concurrent overwrite). */
struct EventCopy
{
    uint64_t seq;
    uint64_t ts_ns;
    uint64_t rid;
    const char *name;
    char phase;
    uint8_t level;
    uint32_t tid;
};

bool
readSlot(const Slot &slot, uint32_t tid, EventCopy &out)
{
    const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 == 0)
        return false;
    out.seq = s1;
    out.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    out.rid = slot.rid.load(std::memory_order_relaxed);
    out.name = slot.name.load(std::memory_order_relaxed);
    out.phase = char(slot.phase.load(std::memory_order_relaxed));
    out.level = slot.level.load(std::memory_order_relaxed);
    out.tid = tid;
    const uint64_t s2 = slot.seq.load(std::memory_order_acquire);
    return s1 == s2 && out.name != nullptr;
}

void
appendEventJson(std::string &out, const EventCopy &e, uint64_t t0,
                bool first)
{
    char line[320];
    const double ts = double(e.ts_ns - t0) / 1000.0;
    // Span/event names are code-controlled literals ([a-z0-9._-]),
    // so no JSON escaping is needed.
    int n;
    if (e.phase == 'L') {
        n = std::snprintf(
            line, sizeof line,
            "%s{\"name\":\"%s\",\"cat\":\"flight\",\"ph\":\"i\","
            "\"s\":\"t\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
            "\"args\":{\"rid\":%llu,\"level\":\"%s\"}}",
            first ? "\n" : ",\n", e.name, e.tid, ts,
            (unsigned long long)e.rid,
            logLevelName(LogLevel(e.level)));
    } else if (e.rid != 0) {
        n = std::snprintf(
            line, sizeof line,
            "%s{\"name\":\"%s\",\"cat\":\"flight\",\"ph\":\"%c\","
            "\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
            "\"args\":{\"rid\":%llu}}",
            first ? "\n" : ",\n", e.name, e.phase, e.tid, ts,
            (unsigned long long)e.rid);
    } else {
        n = std::snprintf(
            line, sizeof line,
            "%s{\"name\":\"%s\",\"cat\":\"flight\",\"ph\":\"%c\","
            "\"pid\":1,\"tid\":%u,\"ts\":%.3f}",
            first ? "\n" : ",\n", e.name, e.phase, e.tid, ts);
    }
    out.append(line, std::size_t(std::max(n, 0)));
}

constexpr char kHeader[] =
    "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
constexpr char kFooter[] = "\n]}\n";

// -----------------------------------------------------------------
// Async-signal-safe path
// -----------------------------------------------------------------

void
writeAll(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::write(fd, data, len);
        if (n <= 0)
            return;
        data += n;
        len -= std::size_t(n);
    }
}

std::size_t
fmtU64(char *out, uint64_t v)
{
    char tmp[20];
    std::size_t n = 0;
    do {
        tmp[n++] = char('0' + v % 10);
        v /= 10;
    } while (v != 0);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = tmp[n - 1 - i];
    return n;
}

std::size_t
append(char *buf, std::size_t pos, const char *s)
{
    const std::size_t n = std::strlen(s);
    std::memcpy(buf + pos, s, n);
    return pos + n;
}

/** Install-once guard for the atexit hook. */
std::atomic<bool> g_exit_hook{false};

void
onFatalSignal(int sig)
{
    // At most one dump per process: an explicit tripwire dump (or a
    // first fatal signal) wins over the SIGABRT that follows it.
    if (!g_dumped.exchange(true, std::memory_order_seq_cst)) {
        const int fd = ::open(g_armed_path,
                              O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd >= 0) {
            dumpSignalSafe(fd);
            ::close(fd);
        }
    }
    // SA_RESETHAND restored the default disposition, so re-raising
    // terminates the process with the original signal.
    ::raise(sig);
}

} // namespace

uint64_t
nowNs()
{
    return uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
record(const char *name, char phase, uint8_t level)
{
    Ring *ring = t_ring;
    if (!ring)
        ring = initRing();
    const uint64_t i =
        ring->head.fetch_add(1, std::memory_order_relaxed);
    Slot &slot = ring->slots[i & (kRingEvents - 1)];
    slot.seq.store(0, std::memory_order_relaxed);
    slot.ts_ns.store(nowNs(), std::memory_order_relaxed);
    slot.rid.store(currentRequestId(), std::memory_order_relaxed);
    slot.name.store(name, std::memory_order_relaxed);
    slot.phase.store(uint8_t(phase), std::memory_order_relaxed);
    slot.level.store(level, std::memory_order_relaxed);
    slot.seq.store(i + 1, std::memory_order_release);
}

void
arm(const std::string &path)
{
    if (path.empty() || path.size() >= sizeof g_armed_path)
        return;
    std::memcpy(g_armed_path, path.c_str(), path.size() + 1);
    g_armed.store(true, std::memory_order_release);
    g_dumped.store(false, std::memory_order_relaxed);

    struct sigaction action = {};
    action.sa_handler = onFatalSignal;
    action.sa_flags = SA_RESETHAND;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGSEGV, &action, nullptr);
    ::sigaction(SIGABRT, &action, nullptr);

    if (!g_exit_hook.exchange(true, std::memory_order_seq_cst))
        std::atexit([] { dumpNow(); });
}

bool
armed()
{
    return g_armed.load(std::memory_order_acquire);
}

bool
dumpNow()
{
    if (!armed() || g_dumped.exchange(true, std::memory_order_seq_cst))
        return false;
    return dumpTo(g_armed_path);
}

bool
dumpTo(const std::string &path)
{
    // Collect a consistent copy of every ring, newest kRingEvents
    // per thread, ordered by each thread's sequence numbers.
    const uint32_t rings = std::min<uint32_t>(
        g_ring_count.load(std::memory_order_acquire), kMaxRings);
    std::vector<std::vector<EventCopy>> per_thread;
    per_thread.reserve(rings);
    for (uint32_t r = 0; r < rings; ++r) {
        const Ring *ring =
            g_rings[r].load(std::memory_order_acquire);
        if (!ring)
            continue;
        std::vector<EventCopy> events;
        events.reserve(kRingEvents);
        for (const Slot &slot : ring->slots) {
            EventCopy e;
            if (readSlot(slot, ring->tid, e))
                events.push_back(e);
        }
        std::sort(events.begin(), events.end(),
                  [](const EventCopy &a, const EventCopy &b) {
                      return a.seq < b.seq;
                  });
        if (!events.empty())
            per_thread.push_back(std::move(events));
    }

    uint64_t t0 = UINT64_MAX;
    for (const auto &events : per_thread)
        for (const EventCopy &e : events)
            t0 = std::min(t0, e.ts_ns);
    if (t0 == UINT64_MAX)
        t0 = 0;

    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        logWarn("obs.flight_write_failed", {{"path", path}});
        return false;
    }
    out << kHeader;
    bool first = true;
    std::string body;
    for (const auto &events : per_thread) {
        // Balanced replay: a ring that wrapped may retain an 'E'
        // whose 'B' was overwritten, or a 'B' whose span is still
        // open. Synthesize the missing edges (at the thread's first
        // and last retained timestamps) so the stream nests.
        body.clear();
        const uint64_t first_ts = events.front().ts_ns;
        const uint64_t last_ts = events.back().ts_ns;
        std::vector<EventCopy> opens;   // synthetic leading 'B's
        std::vector<EventCopy> stack;   // currently open spans
        std::vector<EventCopy> ordered; // events in final order
        for (const EventCopy &e : events) {
            if (e.phase == 'B') {
                stack.push_back(e);
            } else if (e.phase == 'E') {
                if (!stack.empty()) {
                    stack.pop_back();
                } else {
                    EventCopy open = e;
                    open.phase = 'B';
                    open.ts_ns = first_ts;
                    opens.push_back(open);
                }
            }
            ordered.push_back(e);
        }
        // Outermost synthetic open first: the last orphan close seen
        // is the outermost span.
        for (auto it = opens.rbegin(); it != opens.rend(); ++it) {
            appendEventJson(body, *it, t0, first);
            first = false;
        }
        for (const EventCopy &e : ordered) {
            appendEventJson(body, e, t0, first);
            first = false;
        }
        // Innermost unclosed span closes first (stack order).
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            EventCopy close = *it;
            close.phase = 'E';
            close.ts_ns = last_ts;
            appendEventJson(body, close, t0, first);
            first = false;
        }
        out << body;
    }
    out << kFooter;
    return bool(out);
}

void
dumpSignalSafe(int fd)
{
    writeAll(fd, kHeader, sizeof kHeader - 1);
    const uint32_t rings = std::min<uint32_t>(
        g_ring_count.load(std::memory_order_relaxed), kMaxRings);
    bool first = true;
    for (uint32_t r = 0; r < rings; ++r) {
        const Ring *ring =
            g_rings[r].load(std::memory_order_relaxed);
        if (!ring)
            continue;
        for (const Slot &slot : ring->slots) {
            const uint64_t seq =
                slot.seq.load(std::memory_order_acquire);
            const char *name =
                slot.name.load(std::memory_order_relaxed);
            if (seq == 0 || name == nullptr)
                continue;
            const char phase =
                char(slot.phase.load(std::memory_order_relaxed));
            char buf[384];
            std::size_t pos = 0;
            buf[pos++] = first ? '\n' : ',';
            if (!first)
                buf[pos++] = '\n';
            first = false;
            pos = append(buf, pos, "{\"name\":\"");
            // Names are literals; cap the copy so a corrupted
            // pointer cannot overrun the buffer.
            for (const char *c = name; *c && pos < 200; ++c)
                buf[pos++] = *c;
            pos = append(buf, pos, "\",\"cat\":\"flight\",\"ph\":\"");
            buf[pos++] = phase == 'L' ? 'i' : phase;
            pos = append(buf, pos, "\"");
            if (phase == 'L')
                pos = append(buf, pos, ",\"s\":\"t\"");
            pos = append(buf, pos, ",\"pid\":1,\"tid\":");
            pos += fmtU64(buf + pos, ring->tid);
            pos = append(buf, pos, ",\"ts\":");
            pos += fmtU64(
                buf + pos,
                slot.ts_ns.load(std::memory_order_relaxed) / 1000);
            const uint64_t rid =
                slot.rid.load(std::memory_order_relaxed);
            if (rid != 0) {
                pos = append(buf, pos, ",\"args\":{\"rid\":");
                pos += fmtU64(buf + pos, rid);
                pos = append(buf, pos, "}");
            }
            pos = append(buf, pos, "}");
            writeAll(fd, buf, pos);
        }
    }
    writeAll(fd, kFooter, sizeof kFooter - 1);
}

namespace
{

/** Reads QPAD_FLIGHT once at static init (env is set before main)
 * and arms the recorder. */
struct FlightEnvInit
{
    FlightEnvInit()
    {
        const char *path = std::getenv("QPAD_FLIGHT");
        if (path && *path)
            arm(path);
    }
} g_flight_env_init;

} // namespace

} // namespace qpad::obs::flight

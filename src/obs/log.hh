/**
 * @file
 * Structured, leveled logging with request-id tagging.
 *
 * An event is a literal name plus ordered key-value fields:
 *
 *     obs::logWarn("cache.open_failed",
 *                  {{"path", path}, {"errno", int64_t(err)}});
 *
 * Field order is preserved exactly as written, so two runs that emit
 * the same events produce byte-identical log bodies (timestamps are
 * confined to the JSON format). Inside an `exec::RequestScope` every
 * event carries that request's id; so do trace spans and flight-
 * recorder entries, which read the same thread-local.
 *
 * Destination: QPAD_LOG=off|stderr|<path> (default stderr), format
 * QPAD_LOG_FORMAT=text|json (default text), threshold
 * QPAD_LOG_LEVEL=debug|info|warn|error (default info). Tests
 * reconfigure programmatically via configureLog().
 *
 * Cost contract: a filtered-out event is one relaxed atomic load and
 * a branch — no allocation, no locks, no clock reads. LogValue holds
 * views, never copies, so building the field list allocates nothing;
 * guard genuinely hot debug events with logEnabled() anyway to skip
 * argument evaluation. Event names must be string literals in the
 * metric-name grammar ([a-z0-9._-]): the flight recorder stores the
 * pointer, never a copy.
 *
 * The legacy qpad_panic/fatal/warn/inform/assert macros
 * (common/logging.hh) forward here as `log.*` events; logging never
 * feeds back into any computation.
 */

#ifndef QPAD_OBS_LOG_HH
#define QPAD_OBS_LOG_HH

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

namespace qpad::obs
{

enum class LogLevel : uint8_t
{
    kDebug = 0,
    kInfo = 1,
    kWarn = 2,
    kError = 3,
};

/** "debug" / "info" / "warn" / "error". */
const char *logLevelName(LogLevel level);

/** Small tagged view of one field value; never owns memory. String
 * values must outlive the logEvent() call (they are formatted
 * synchronously, so temporaries at the call site are fine). */
class LogValue
{
  public:
    enum class Kind : uint8_t { kString, kInt, kUint, kDouble, kBool };

    LogValue(const char *v) : kind_(Kind::kString), str_(v) {}
    LogValue(std::string_view v) : kind_(Kind::kString), str_(v) {}
    LogValue(const std::string &v) : kind_(Kind::kString), str_(v) {}
    LogValue(double v) : kind_(Kind::kDouble) { num_.d = v; }
    LogValue(bool v) : kind_(Kind::kBool) { num_.b = v; }
    LogValue(long long v) : kind_(Kind::kInt) { num_.i = v; }
    LogValue(unsigned long long v) : kind_(Kind::kUint) { num_.u = v; }
    LogValue(int v) : LogValue((long long)v) {}
    LogValue(long v) : LogValue((long long)v) {}
    LogValue(unsigned v) : LogValue((unsigned long long)v) {}
    LogValue(unsigned long v) : LogValue((unsigned long long)v) {}

    Kind kind() const { return kind_; }
    std::string_view str() const { return str_; }
    int64_t asInt() const { return num_.i; }
    uint64_t asUint() const { return num_.u; }
    double asDouble() const { return num_.d; }
    bool asBool() const { return num_.b; }

  private:
    Kind kind_;
    std::string_view str_;
    union
    {
        int64_t i;
        uint64_t u;
        double d;
        bool b;
    } num_ = {};
};

/** One key-value pair; the key must be a string literal. */
struct LogField
{
    std::string_view key;
    LogValue value;
};

enum class LogFormat : uint8_t { kText, kJson };

/** Full sink configuration (tests swap it and restore). */
struct LogConfig
{
    /** false = QPAD_LOG=off: every event is dropped. */
    bool enabled = true;
    /** Empty = stderr, otherwise append to this file. */
    std::string path;
    LogFormat format = LogFormat::kText;
    LogLevel min_level = LogLevel::kInfo;
};

/** Replace the process log sink (thread-safe). */
void configureLog(const LogConfig &config);

/** The current sink configuration (for save/restore in tests). */
LogConfig currentLogConfig();

namespace detail
{

/** Effective threshold: min_level, or 4 (above kError) when the sink
 * is off. The one hot-path load for filtered events. */
inline std::atomic<uint8_t> g_log_threshold{
    uint8_t(LogLevel::kInfo)};

/**
 * Current request id of the calling thread (0 = none). Set by
 * exec::RequestScope on the request thread and by the scheduler on
 * workers while they run a request's chunks; read by log events,
 * trace spans, and the flight recorder.
 */
inline thread_local uint64_t t_request_id = 0;

} // namespace detail

/** Would an event at `level` be emitted right now? */
inline bool
logEnabled(LogLevel level)
{
    return uint8_t(level) >=
           detail::g_log_threshold.load(std::memory_order_relaxed);
}

/**
 * Emit one structured event. `event` must be a string literal
 * ([a-z0-9._-]); fields render in the order given. Also records the
 * event into the flight recorder ring when it passes the filter.
 */
void logEvent(LogLevel level, const char *event,
              std::initializer_list<LogField> fields = {});

inline void
logDebug(const char *event, std::initializer_list<LogField> fields = {})
{
    if (logEnabled(LogLevel::kDebug))
        logEvent(LogLevel::kDebug, event, fields);
}

inline void
logInfo(const char *event, std::initializer_list<LogField> fields = {})
{
    if (logEnabled(LogLevel::kInfo))
        logEvent(LogLevel::kInfo, event, fields);
}

inline void
logWarn(const char *event, std::initializer_list<LogField> fields = {})
{
    if (logEnabled(LogLevel::kWarn))
        logEvent(LogLevel::kWarn, event, fields);
}

inline void
logError(const char *event, std::initializer_list<LogField> fields = {})
{
    if (logEnabled(LogLevel::kError))
        logEvent(LogLevel::kError, event, fields);
}

/**
 * Emit a warn event at most once per `flag` (callers own the flag —
 * typically one per degradation condition per object, so "warn once,
 * keep serving" paths cannot flood the log under retry storms).
 * Returns true when this call was the one that emitted.
 */
inline bool
logWarnOnce(std::atomic<bool> &flag, const char *event,
            std::initializer_list<LogField> fields = {})
{
    if (flag.exchange(true, std::memory_order_relaxed))
        return false;
    logWarn(event, fields);
    return true;
}

/** The calling thread's request id (0 = outside any request). */
inline uint64_t
currentRequestId()
{
    return detail::t_request_id;
}

/**
 * RAII request-id tag for the calling thread. An id of 0 keeps the
 * current tag (so nested no-request scopes never erase an enclosing
 * request's id); the previous tag is always restored on exit.
 */
class ScopedRequestId
{
  public:
    explicit ScopedRequestId(uint64_t id) : prev_(detail::t_request_id)
    {
        if (id != 0)
            detail::t_request_id = id;
    }

    ~ScopedRequestId() { detail::t_request_id = prev_; }

    ScopedRequestId(const ScopedRequestId &) = delete;
    ScopedRequestId &operator=(const ScopedRequestId &) = delete;

  private:
    uint64_t prev_;
};

} // namespace qpad::obs

#endif // QPAD_OBS_LOG_HH

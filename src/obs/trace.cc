#include "obs/trace.hh"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <vector>

#include "common/logging.hh"
#include "obs/log.hh"

namespace qpad::obs
{

namespace
{

/** One span edge; 'B' on construction, 'E' on destruction. */
struct Event
{
    const char *name;
    uint64_t ts_ns;
    uint64_t rid;
    uint32_t tid;
    char phase;
};

uint64_t
nowNs()
{
    return uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

class ThreadBuffer;

/**
 * Process-wide event sink. Leaked on purpose (reachable through the
 * instance() pointer, so LeakSanitizer stays quiet): pool workers
 * retire their buffers during static destruction, which may run
 * after any destructor this object could have had.
 */
class Collector
{
  public:
    static Collector &
    instance()
    {
        static Collector *collector = new Collector;
        return *collector;
    }

    uint32_t registerBuffer(ThreadBuffer *buffer);
    void retireBuffer(ThreadBuffer *buffer);

    bool
    begin(const std::string &path)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (active_)
            return false;
        clearLocked();
        path_ = path;
        active_ = true;
        return true;
    }

    void end();

  private:
    void clearLocked();
    void writeFile(const std::vector<Event> &events);

    std::mutex mutex_;
    std::vector<ThreadBuffer *> live_;
    std::vector<Event> retired_;
    uint32_t next_tid_ = 0;
    std::string path_;
    bool active_ = false;
};

/**
 * Per-thread event buffer. The owner pushes under its own mutex —
 * uncontended except during a flush, which briefly locks each
 * buffer to copy it out. Destroyed at thread exit: events move to
 * the collector so a flush after a pool shutdown still sees them.
 */
class ThreadBuffer
{
  public:
    ThreadBuffer()
        : tid_(Collector::instance().registerBuffer(this))
    {
    }

    ~ThreadBuffer() { Collector::instance().retireBuffer(this); }

    void
    push(const char *name, char phase)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        events_.push_back(
            Event{name, nowNs(), currentRequestId(), tid_, phase});
    }

    void
    drainInto(std::vector<Event> &out)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out.insert(out.end(), events_.begin(), events_.end());
        events_.clear();
    }

    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        events_.clear();
    }

  private:
    std::mutex mutex_;
    std::vector<Event> events_;
    uint32_t tid_;
};

uint32_t
Collector::registerBuffer(ThreadBuffer *buffer)
{
    std::lock_guard<std::mutex> lock(mutex_);
    live_.push_back(buffer);
    return next_tid_++;
}

void
Collector::retireBuffer(ThreadBuffer *buffer)
{
    std::lock_guard<std::mutex> lock(mutex_);
    buffer->drainInto(retired_);
    live_.erase(std::remove(live_.begin(), live_.end(), buffer),
                live_.end());
}

void
Collector::clearLocked()
{
    retired_.clear();
    for (ThreadBuffer *buffer : live_)
        buffer->clear();
}

void
Collector::end()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!active_)
        return;
    active_ = false;
    std::vector<Event> events;
    std::swap(events, retired_);
    for (ThreadBuffer *buffer : live_)
        buffer->drainInto(events);
    writeFile(events);
    path_.clear();
}

void
Collector::writeFile(const std::vector<Event> &events)
{
    std::ofstream out(path_, std::ios::trunc);
    if (!out) {
        qpad_warn("obs: cannot write QPAD_TRACE file '", path_, "'");
        return;
    }
    uint64_t t0 = UINT64_MAX;
    for (const Event &e : events)
        t0 = std::min(t0, e.ts_ns);

    // Chrome trace-event JSON array format, one event per line (the
    // test suite parses it line-wise; json.tool validates the whole
    // file). Events stay in per-thread recording order — Perfetto
    // sorts by ts and only same-thread order matters for nesting —
    // and ts is microseconds with nanosecond precision.
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const Event &e : events) {
        out << (first ? "\n" : ",\n");
        first = false;
        char line[256];
        // Span names are code-controlled literals ([a-z0-9._-]), so
        // no JSON escaping is needed. Spans recorded inside a
        // request scope carry the request id as an argument.
        if (e.rid != 0)
            std::snprintf(
                line, sizeof line,
                "{\"name\":\"%s\",\"cat\":\"qpad\",\"ph\":\"%c\","
                "\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                "\"args\":{\"rid\":%llu}}",
                e.name, e.phase, e.tid,
                double(e.ts_ns - t0) / 1000.0,
                (unsigned long long)e.rid);
        else
            std::snprintf(
                line, sizeof line,
                "{\"name\":\"%s\",\"cat\":\"qpad\",\"ph\":\"%c\","
                "\"pid\":1,\"tid\":%u,\"ts\":%.3f}",
                e.name, e.phase, e.tid,
                double(e.ts_ns - t0) / 1000.0);
        out << line;
    }
    out << "\n]}\n";
}

/** Reads QPAD_TRACE once at static init (env is set before main)
 * and schedules the exit flush. Registered this early, the atexit
 * handler runs after the thread pool's static destructor has joined
 * its workers — whose buffers retire into the collector — so the
 * flushed file includes every worker's spans. */
struct TraceEnvInit
{
    TraceEnvInit()
    {
        const char *path = std::getenv("QPAD_TRACE");
        if (!path || !*path)
            return;
        startTracing(path);
        std::atexit([] { stopTracing(); });
    }
} g_trace_env_init;

} // namespace

namespace detail
{

void
recordEvent(const char *name, char phase)
{
    static thread_local ThreadBuffer t_buffer;
    t_buffer.push(name, phase);
}

} // namespace detail

bool
startTracing(const std::string &path)
{
    if (!Collector::instance().begin(path))
        return false;
    detail::g_tracing.store(true, std::memory_order_relaxed);
    return true;
}

void
stopTracing()
{
    detail::g_tracing.store(false, std::memory_order_relaxed);
    Collector::instance().end();
}

} // namespace qpad::obs

#include "obs/log.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "obs/flight.hh"

namespace qpad::obs
{

namespace
{

/**
 * Process log sink. Leaked on purpose (same pattern as the metrics
 * registry): events may be emitted from worker threads during static
 * destruction, after any destructor this object could have had.
 */
struct Sink
{
    std::mutex mutex;
    LogConfig config;
    std::ofstream file; // open iff config.path is nonempty
};

Sink &
sink()
{
    static Sink *s = new Sink;
    return *s;
}

/** Legacy quiet flag (common/logging.hh setQuiet): suppresses
 * everything below error without touching the configured level. */
std::atomic<bool> g_quiet{false};

/** Recompute the one hot-path threshold from config + quiet. */
void
publishThreshold(const LogConfig &config)
{
    uint8_t threshold = uint8_t(config.min_level);
    if (g_quiet.load(std::memory_order_relaxed) &&
        threshold < uint8_t(LogLevel::kError))
        threshold = uint8_t(LogLevel::kError);
    if (!config.enabled)
        threshold = uint8_t(LogLevel::kError) + 1;
    detail::g_log_threshold.store(threshold,
                                  std::memory_order_relaxed);
}

void
appendJsonEscaped(std::string &out, std::string_view s)
{
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              unsigned(static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void
appendValue(std::string &out, const LogValue &v, bool json)
{
    std::ostringstream num;
    switch (v.kind()) {
      case LogValue::Kind::kString:
        out += '"';
        appendJsonEscaped(out, v.str());
        out += '"';
        return;
      case LogValue::Kind::kInt: num << v.asInt(); break;
      case LogValue::Kind::kUint: num << v.asUint(); break;
      case LogValue::Kind::kDouble:
        if (json)
            num.precision(17);
        num << v.asDouble();
        break;
      case LogValue::Kind::kBool:
        out += v.asBool() ? "true" : "false";
        return;
    }
    out += num.str();
}

/** Reads QPAD_LOG / QPAD_LOG_FORMAT / QPAD_LOG_LEVEL once at static
 * init (env is set before main). Malformed values fall back to the
 * defaults rather than aborting: logging must never take the process
 * down. */
struct LogEnvInit
{
    LogEnvInit()
    {
        LogConfig config;
        if (const char *dest = std::getenv("QPAD_LOG");
            dest && *dest) {
            if (std::string_view(dest) == "off")
                config.enabled = false;
            else if (std::string_view(dest) != "stderr")
                config.path = dest;
        }
        if (const char *fmt = std::getenv("QPAD_LOG_FORMAT");
            fmt && std::string_view(fmt) == "json")
            config.format = LogFormat::kJson;
        if (const char *lvl = std::getenv("QPAD_LOG_LEVEL");
            lvl && *lvl) {
            const std::string_view v(lvl);
            if (v == "debug")
                config.min_level = LogLevel::kDebug;
            else if (v == "info")
                config.min_level = LogLevel::kInfo;
            else if (v == "warn")
                config.min_level = LogLevel::kWarn;
            else if (v == "error")
                config.min_level = LogLevel::kError;
        }
        configureLog(config);
    }
} g_log_env_init;

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kError: return "error";
    }
    return "?";
}

void
configureLog(const LogConfig &config)
{
    Sink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.file.is_open())
        s.file.close();
    s.config = config;
    if (!config.path.empty()) {
        s.file.open(config.path, std::ios::app);
        if (!s.file) {
            // Fall back to stderr so the events are not lost.
            s.config.path.clear();
        }
    }
    publishThreshold(s.config);
}

LogConfig
currentLogConfig()
{
    Sink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.config;
}

void
logEvent(LogLevel level, const char *event,
         std::initializer_list<LogField> fields)
{
    if (!logEnabled(level))
        return;
    // The ring keeps crash forensics even when the sink drops or
    // redirects the formatted line.
    flight::record(event, 'L', uint8_t(level));

    const uint64_t rid = currentRequestId();
    std::string line;
    line.reserve(96);
    Sink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    const bool json = s.config.format == LogFormat::kJson;
    if (json) {
        line += "{\"ts_ns\":";
        line += std::to_string(flight::nowNs());
        line += ",\"level\":\"";
        line += logLevelName(level);
        line += "\",\"event\":\"";
        line += event;
        line += '"';
        if (rid != 0) {
            line += ",\"rid\":";
            line += std::to_string(rid);
        }
        for (const LogField &f : fields) {
            line += ",\"";
            line += f.key;
            line += "\":";
            appendValue(line, f.value, true);
        }
        line += "}\n";
    } else {
        line += '[';
        line += logLevelName(level);
        line += "] ";
        line += event;
        if (rid != 0) {
            line += " rid=";
            line += std::to_string(rid);
        }
        for (const LogField &f : fields) {
            line += ' ';
            line += f.key;
            line += '=';
            appendValue(line, f.value, false);
        }
        line += '\n';
    }
    if (s.file.is_open()) {
        s.file << line;
        s.file.flush();
    } else {
        // qpad-lint: allow(rawlog) "the structured-log sink itself:
        // QPAD_LOG's default/stderr destination writes here"
        std::cerr << line;
    }
}

} // namespace qpad::obs

// ---------------------------------------------------------------------
// Legacy common/logging.hh entry points, forwarded to obs::log.
// ---------------------------------------------------------------------

namespace qpad::detail
{

namespace
{

std::string
sourceAt(const char *file, int line)
{
    return std::string(file) + ":" + std::to_string(line);
}

} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    obs::logEvent(obs::LogLevel::kError, "log.panic",
                  {{"msg", msg}, {"at", sourceAt(file, line)}});
    // Throwing (instead of abort()) keeps panics testable; the type is
    // logic_error because a panic always indicates a qpad bug.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    obs::logEvent(obs::LogLevel::kError, "log.fatal",
                  {{"msg", msg}, {"at", sourceAt(file, line)}});
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    obs::logWarn("log.warn", {{"msg", msg}});
}

void
informImpl(const std::string &msg)
{
    obs::logInfo("log.info", {{"msg", msg}});
}

void
setQuiet(bool quiet)
{
    qpad::obs::g_quiet.store(quiet, std::memory_order_relaxed);
    // Republish the threshold under the sink lock so a concurrent
    // configureLog cannot interleave a stale value.
    obs::configureLog(obs::currentLogConfig());
}

bool
isQuiet()
{
    return qpad::obs::g_quiet.load(std::memory_order_relaxed);
}

} // namespace qpad::detail

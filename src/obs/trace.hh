/**
 * @file
 * RAII span tracer with Chrome trace-event JSON output.
 *
 * Usage: `QPAD_SPAN("yield.estimate");` opens a span that closes at
 * scope exit. Spans nest naturally (they are stack objects) and
 * carry the recording thread's id, so the flushed file renders as a
 * per-thread flame graph in chrome://tracing or Perfetto
 * (https://ui.perfetto.dev, "Open trace file").
 *
 * Cost contract: every span edge lands in the always-on flight
 * recorder ring (obs/flight.hh: one clock read plus relaxed stores
 * into a preallocated per-thread slot — no locks, no allocation);
 * with tracing disabled — the default — that is ALL a span costs
 * beyond one relaxed load and a branch. Enabled spans additionally
 * push an event into a per-thread trace buffer (one uncontended
 * mutex each). Inside an exec::RequestScope both records carry the
 * request id. Tracing never feeds back into any computation: results
 * are bit-identical with tracing on or off, and the test suite pins
 * that invariant.
 *
 * Enable with QPAD_TRACE=<path> (flushed at process exit) or
 * programmatically with startTracing()/stopTracing(). Span names
 * must be string literals (or otherwise outlive the trace session):
 * the tracer stores the pointer, never a copy.
 */

#ifndef QPAD_OBS_TRACE_HH
#define QPAD_OBS_TRACE_HH

#include <atomic>
#include <string>

#include "obs/flight.hh"

namespace qpad::obs
{

namespace detail
{

/** The one hot-path flag: set only by start/stopTracing. */
inline std::atomic<bool> g_tracing{false};

/** Append a begin ('B') or end ('E') event for the calling thread.
 * `name` must outlive the trace session (string literal). */
void recordEvent(const char *name, char phase);

} // namespace detail

inline bool
tracingEnabled()
{
    return detail::g_tracing.load(std::memory_order_relaxed);
}

/** RAII scope; prefer the QPAD_SPAN macro. */
class Span
{
  public:
    explicit Span(const char *name) : name_(name)
    {
        flight::record(name, 'B');
        if (tracingEnabled()) {
            traced_ = true;
            detail::recordEvent(name, 'B');
        }
    }

    ~Span()
    {
        flight::record(name_, 'E');
        // A span that began traced is always closed, even if tracing
        // was toggled meanwhile, so flushed streams stay balanced.
        if (traced_)
            detail::recordEvent(name_, 'E');
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *name_;
    bool traced_ = false;
};

/**
 * Begin a trace session writing to `path` on stopTracing(). Clears
 * any events buffered from a previous session. Returns false (and
 * changes nothing) if a session is already active.
 */
bool startTracing(const std::string &path);

/**
 * End the session: disable recording, gather every thread's buffer,
 * and write the Chrome trace-event JSON file. No-op when no session
 * is active. Close all spans before calling (an open span's end
 * event would be dropped, unbalancing the next session's file).
 */
void stopTracing();

} // namespace qpad::obs

#define QPAD_OBS_CONCAT2(a, b) a##b
#define QPAD_OBS_CONCAT(a, b) QPAD_OBS_CONCAT2(a, b)

/** Open a trace span for the rest of the enclosing scope. */
#define QPAD_SPAN(name)                                                 \
    ::qpad::obs::Span QPAD_OBS_CONCAT(qpad_obs_span_, __LINE__)(name)

#endif // QPAD_OBS_TRACE_HH

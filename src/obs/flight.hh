/**
 * @file
 * Always-on flight recorder: a fixed-size per-thread ring of recent
 * span edges and log events, dumpable as Chrome trace-event JSON
 * when something goes wrong.
 *
 * Unlike the opt-in tracer (obs/trace.hh), the recorder never turns
 * off: every QPAD_SPAN begin/end and every emitted log event lands
 * in the calling thread's ring, overwriting the oldest entry once
 * the ring is full. The hot path is relaxed atomic stores plus one
 * release publish into preallocated slots — no locks, no allocation
 * (the 32 KiB ring itself is allocated once per thread on first use
 * and leaked so a crash handler can still read it after thread
 * exit). Recording never feeds back into any computation: results
 * are byte-identical with the recorder armed or not.
 *
 * Dump triggers:
 *   - QPAD_FLIGHT=<path> arms the recorder: the rings are dumped to
 *     `path` at normal process exit (covering deadline-exceeded
 *     bench exits) and from an async-signal-safe SIGSEGV/SIGABRT
 *     handler (covering crashes and the ThreadPool tripwire abort,
 *     which also dumps explicitly before raising).
 *   - dumpTo() / dumpNow() for tests and embedders.
 *
 * The normal dump replays each thread's events into balanced B/E
 * pairs (synthesizing opens for entries whose begin was overwritten
 * and closes for spans still running), so the file loads in
 * chrome://tracing / Perfetto. The signal-path dump writes the same
 * JSON shape with write(2) and hand-rolled formatting only — headers
 * are pre-serialized when the recorder is armed — and skips the
 * balancing pass; it is still valid JSON (json.tool-parseable).
 *
 * Event names must be string literals: the ring stores pointers.
 */

#ifndef QPAD_OBS_FLIGHT_HH
#define QPAD_OBS_FLIGHT_HH

#include <cstdint>
#include <string>

namespace qpad::obs::flight
{

/** Events retained per thread (power of two; 32 KiB of slots). */
constexpr std::size_t kRingEvents = 1024;

/** Monotonic nanoseconds (steady clock); shared by log timestamps. */
uint64_t nowNs();

/**
 * Record one event into the calling thread's ring. `phase` is 'B' /
 * 'E' for span edges, 'L' for a log event (with `level` carrying its
 * obs::LogLevel). `name` must be a string literal. Zero-alloc and
 * lock-free after the thread's first call.
 */
void record(const char *name, char phase, uint8_t level = 0);

/**
 * Arm crash dumping to `path`: pre-serializes the signal-path JSON
 * header, installs SIGSEGV/SIGABRT handlers, and registers the
 * at-exit dump. Called automatically when QPAD_FLIGHT is set; tests
 * call it directly (idempotent; the latest path wins).
 */
void arm(const std::string &path);

/** Is a dump path armed? */
bool armed();

/** Balanced-replay dump of every thread's ring to `path`. */
bool dumpTo(const std::string &path);

/**
 * Dump to the armed path, at most once per process (so the explicit
 * tripwire dump and the SIGABRT handler it triggers do not race each
 * other). Returns false when unarmed or already dumped.
 */
bool dumpNow();

/**
 * Async-signal-safe dump to an open file descriptor: write(2) and
 * integer formatting only, no allocation, no locks, no stdio. Used
 * by the fatal-signal handler; exposed for tests.
 */
void dumpSignalSafe(int fd);

} // namespace qpad::obs::flight

#endif // QPAD_OBS_FLIGHT_HH

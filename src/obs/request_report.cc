#include "obs/request_report.hh"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

#include "obs/log.hh"

namespace qpad::obs
{

namespace
{

const char *
stopName(exec::StopReason reason)
{
    switch (reason) {
      case exec::StopReason::kNone: return "none";
      case exec::StopReason::kCancelled: return "cancelled";
      case exec::StopReason::kDeadlineExceeded: return "deadline";
    }
    return "?";
}

} // namespace

void
writeRequestReportJson(std::ostream &out, const RequestReport &report)
{
    std::ostringstream num;
    num << std::setprecision(17) << report.wall_seconds;
    out << "{\"request\":{\"id\":" << report.id << ",\"name\":\""
        << report.name << "\",\"wall_seconds\":" << num.str()
        << ",\"stop\":\"" << stopName(report.stop)
        << "\",\"metrics\":[";
    bool first = true;
    for (const Sample &s : report.metrics) {
        out << (first ? "" : ",");
        first = false;
        writeSampleJson(out, s);
    }
    out << "]}}";
}

std::string
requestReportJson(const RequestReport &report)
{
    std::ostringstream out;
    writeRequestReportJson(out, report);
    return out.str();
}

void
exportRequestReport(const RequestReport &report)
{
    // Read lazily (not at static init): reports are produced during
    // the run, and tests may setenv before creating a scope.
    const char *dest = std::getenv("QPAD_REQUEST_REPORT");
    if (!dest || !*dest)
        return;
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    if (std::string_view(dest) == "stderr") {
        // qpad-lint: allow(rawlog) "sanctioned exporter: the user
        // chose stderr as the QPAD_REQUEST_REPORT destination"
        std::cerr << requestReportJson(report) << "\n";
        return;
    }
    std::ofstream out(dest, std::ios::app);
    if (!out) {
        logWarn("obs.report_write_failed", {{"path", dest}});
        return;
    }
    out << requestReportJson(report) << "\n";
}

} // namespace qpad::obs

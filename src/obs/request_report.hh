/**
 * @file
 * Per-request telemetry summary.
 *
 * An `exec::RequestScope` produces one `RequestReport` when it
 * closes: the request's id and name, wall latency, how it stopped,
 * and the name-sorted metric deltas attributed to the request
 * (Snapshot::deltaSince between scope entry and exit, filtered to
 * the series that actually moved). `requestReportJson` renders the
 * report as one JSON object — the payload a serving front end
 * (`qpadd`) logs per connection and streams back to clients.
 *
 * QPAD_REQUEST_REPORT=stderr|<path> exports every report as one JSON
 * line (appended, so a multi-request process accumulates a JSONL
 * stream). Purely observational: reports never feed back into any
 * computation.
 */

#ifndef QPAD_OBS_REQUEST_REPORT_HH
#define QPAD_OBS_REQUEST_REPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "exec/cancel.hh"
#include "obs/metrics.hh"

namespace qpad::obs
{

struct RequestReport
{
    /** Stable per-process request id (1-based; 0 = the shared
     * no-limit context). */
    uint64_t id = 0;
    /** Caller-supplied scope name ("request" by default). */
    std::string name;
    /** Wall latency of the scope, via exec::now(). */
    double wall_seconds = 0.0;
    /** How the request ended (kNone = ran to completion). */
    exec::StopReason stop = exec::StopReason::kNone;
    /** Name-sorted metric deltas that moved during the request. */
    Snapshot metrics;
};

/** The report as one JSON object (no trailing newline). */
void writeRequestReportJson(std::ostream &out,
                            const RequestReport &report);
std::string requestReportJson(const RequestReport &report);

/**
 * Append the report to the QPAD_REQUEST_REPORT destination (one JSON
 * line); no-op when the variable is unset or empty.
 */
void exportRequestReport(const RequestReport &report);

} // namespace qpad::obs

#endif // QPAD_OBS_REQUEST_REPORT_HH

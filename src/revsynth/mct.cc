#include "revsynth/mct.hh"

#include <algorithm>

#include "common/logging.hh"

namespace qpad::revsynth
{

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using circuit::Qubit;

namespace
{

/**
 * Barenco Lemma 7.2: k-control NOT with k-2 dirty work wires.
 * Emits 4(k-2) CCX gates for k >= 3 (and handles k == 2 directly).
 */
void
emitLemma72(const std::vector<Qubit> &controls, Qubit target,
            const std::vector<Qubit> &dirty, Circuit &out)
{
    const std::size_t k = controls.size();
    if (k == 2) {
        out.ccx(controls[0], controls[1], target);
        return;
    }
    qpad_assert(k >= 3, "lemma 7.2 needs >= 2 controls");
    qpad_assert(dirty.size() >= k - 2,
                "lemma 7.2 needs ", k - 2, " dirty wires, got ",
                dirty.size());

    // Gate A couples the last control and work wire into the target;
    // gates B_i ladder through the work wires; gate C feeds the first
    // two controls into the bottom work wire. The sequence
    //   A Bdown C Bup A Bdown C Bup
    // flips the target by the product of all controls and restores
    // every work wire.
    auto emit_a = [&] { out.ccx(controls[k - 1], dirty[k - 3], target); };
    auto emit_bdown = [&] {
        for (std::size_t i = k - 2; i >= 2; --i)
            out.ccx(controls[i], dirty[i - 2], dirty[i - 1]);
    };
    auto emit_bup = [&] {
        for (std::size_t i = 2; i <= k - 2; ++i)
            out.ccx(controls[i], dirty[i - 2], dirty[i - 1]);
    };
    auto emit_c = [&] { out.ccx(controls[0], controls[1], dirty[0]); };

    for (int half = 0; half < 2; ++half) {
        emit_a();
        emit_bdown();
        emit_c();
        emit_bup();
    }
}

void
emitRec(const std::vector<Qubit> &controls, Qubit target,
        const std::vector<Qubit> &free_wires, Circuit &out)
{
    const std::size_t k = controls.size();
    switch (k) {
      case 0:
        out.x(target);
        return;
      case 1:
        out.cx(controls[0], target);
        return;
      case 2:
        out.ccx(controls[0], controls[1], target);
        return;
      default:
        break;
    }

    if (free_wires.size() >= k - 2) {
        emitLemma72(controls, target,
                    {free_wires.begin(), free_wires.begin() + (k - 2)},
                    out);
        return;
    }

    // Lemma 7.3: route through one spare wire b. The split gates each
    // see at least half the original controls as extra dirty wires,
    // which is always enough for lemma 7.2 when k >= 3.
    qpad_assert(!free_wires.empty(),
                "MCT with ", k, " controls needs at least one free wire");
    const Qubit b = free_wires[0];

    const std::size_t m = (k + 1) / 2; // ceil(k/2)
    std::vector<Qubit> first(controls.begin(), controls.begin() + m);
    std::vector<Qubit> second(controls.begin() + m, controls.end());
    second.push_back(b);

    // Dirty pools: everything the sub-gate does not touch.
    std::vector<Qubit> dirty_first(controls.begin() + m, controls.end());
    dirty_first.push_back(target);
    for (std::size_t i = 1; i < free_wires.size(); ++i)
        dirty_first.push_back(free_wires[i]);

    std::vector<Qubit> dirty_second(controls.begin(),
                                    controls.begin() + m);
    for (std::size_t i = 1; i < free_wires.size(); ++i)
        dirty_second.push_back(free_wires[i]);

    qpad_assert(dirty_first.size() >= first.size() - 2 &&
                    dirty_second.size() >= second.size() - 2,
                "lemma 7.3 split left too few dirty wires");

    for (int half = 0; half < 2; ++half) {
        emitLemma72(first, b, dirty_first, out);
        emitLemma72(second, target, dirty_second, out);
    }
}

} // namespace

void
emitMct(const MctGate &gate, const std::vector<Qubit> &free_wires,
        Circuit &out)
{
#ifndef NDEBUG
    for (Qubit w : free_wires) {
        qpad_assert(w != gate.target, "free wire equals target");
        qpad_assert(std::find(gate.controls.begin(), gate.controls.end(),
                              w) == gate.controls.end(),
                    "free wire collides with control");
    }
#endif
    emitRec(gate.controls, gate.target, free_wires, out);
}

Circuit
lowerMctNetwork(const MctNetwork &network, const std::string &name)
{
    Circuit out(network.num_qubits, network.num_qubits, name);
    for (const MctGate &g : network.gates) {
        std::vector<Qubit> free_wires;
        for (Qubit q = 0; q < network.num_qubits; ++q) {
            if (q == g.target)
                continue;
            if (std::find(g.controls.begin(), g.controls.end(), q) !=
                g.controls.end())
                continue;
            free_wires.push_back(q);
        }
        emitMct(g, free_wires, out);
    }
    return out;
}

uint64_t
simulateClassical(const Circuit &circuit, uint64_t input)
{
    uint64_t state = input;
    for (const Gate &g : circuit.gates()) {
        switch (g.kind) {
          case GateKind::X:
            state ^= uint64_t{1} << g.qubits[0];
            break;
          case GateKind::CX:
            if (state >> g.qubits[0] & 1)
                state ^= uint64_t{1} << g.qubits[1];
            break;
          case GateKind::CCX:
            if ((state >> g.qubits[0] & 1) && (state >> g.qubits[1] & 1))
                state ^= uint64_t{1} << g.qubits[2];
            break;
          case GateKind::SWAP: {
            uint64_t a = state >> g.qubits[0] & 1;
            uint64_t b = state >> g.qubits[1] & 1;
            if (a != b)
                state ^= (uint64_t{1} << g.qubits[0]) |
                         (uint64_t{1} << g.qubits[1]);
            break;
          }
          case GateKind::Barrier:
            break;
          default:
            qpad_panic("simulateClassical: non-classical gate ",
                       g.str());
        }
    }
    return state;
}

uint64_t
simulateMctNetwork(const MctNetwork &network, uint64_t input)
{
    uint64_t state = input;
    for (const MctGate &g : network.gates) {
        bool all = true;
        for (Qubit c : g.controls)
            all = all && (state >> c & 1);
        if (all)
            state ^= uint64_t{1} << g.target;
    }
    return state;
}

} // namespace qpad::revsynth

/**
 * @file
 * Boolean multi-output truth tables.
 *
 * A TruthTable describes an n-input, m-output Boolean function; it is
 * the specification format the reversible synthesizer consumes. The
 * paper's RevLib benchmarks are reversible embeddings of such
 * functions (inputs preserved, outputs XOR-ed onto ancilla lines).
 */

#ifndef QPAD_REVSYNTH_TRUTH_TABLE_HH
#define QPAD_REVSYNTH_TRUTH_TABLE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace qpad::revsynth
{

/**
 * Dense truth table: one 64-bit output word per input assignment.
 * Supports up to 24 inputs and 64 outputs.
 */
class TruthTable
{
  public:
    TruthTable() = default;

    /** All-zero function with the given arity. */
    TruthTable(unsigned num_inputs, unsigned num_outputs,
               std::string name = "");

    /** Build row-by-row from a function of the input assignment. */
    static TruthTable
    fromFunction(unsigned num_inputs, unsigned num_outputs,
                 const std::function<uint64_t(uint64_t)> &fn,
                 std::string name = "");

    unsigned numInputs() const { return num_inputs_; }
    unsigned numOutputs() const { return num_outputs_; }
    const std::string &name() const { return name_; }
    std::size_t numRows() const { return rows_.size(); }

    /** Full output word for input assignment x. */
    uint64_t row(uint64_t x) const;
    void setRow(uint64_t x, uint64_t outputs);

    /** Single output bit j for input assignment x. */
    bool output(uint64_t x, unsigned j) const;
    void setOutput(uint64_t x, unsigned j, bool value);

    /** Count of input rows where output j is one. */
    std::size_t onSetSize(unsigned j) const;

  private:
    unsigned num_inputs_ = 0;
    unsigned num_outputs_ = 0;
    std::string name_;
    std::vector<uint64_t> rows_;
};

} // namespace qpad::revsynth

#endif // QPAD_REVSYNTH_TRUTH_TABLE_HH

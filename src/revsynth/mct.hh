/**
 * @file
 * Multi-controlled Toffoli (MCT) gates and their decomposition into
 * the {X, CX, CCX} set using Barenco-style constructions.
 *
 * Two constructions are used, following Barenco et al.,
 * "Elementary gates for quantum computation" (1995):
 *  - Lemma 7.2: a k-control NOT with k-2 *borrowed* (dirty) work
 *    wires costs 4(k-2) Toffolis and restores the work wires.
 *  - Lemma 7.3: with only one spare wire, split the k controls into
 *    two overlapping MCTs through that wire and recurse with 7.2.
 */

#ifndef QPAD_REVSYNTH_MCT_HH
#define QPAD_REVSYNTH_MCT_HH

#include <cstdint>
#include <vector>

#include "circuit/circuit.hh"

namespace qpad::revsynth
{

/** A NOT on `target` controlled on all qubits in `controls`. */
struct MctGate
{
    std::vector<circuit::Qubit> controls;
    circuit::Qubit target;
};

/** A width-annotated list of MCT gates (plus implicit X for k=0). */
struct MctNetwork
{
    std::size_t num_qubits = 0;
    std::vector<MctGate> gates;
};

/**
 * Emit gate's decomposition into `out` using only X/CX/CCX.
 *
 * @param free_wires wires guaranteed distinct from controls/target;
 *        they may be in arbitrary states and are restored (dirty
 *        ancilla semantics). At least one is required when the gate
 *        has three or more controls and fewer than k-2 free wires
 *        would otherwise be available.
 */
void emitMct(const MctGate &gate,
             const std::vector<circuit::Qubit> &free_wires,
             circuit::Circuit &out);

/**
 * Decompose a whole network into X/CX/CCX. Free wires for each gate
 * are derived automatically from the network width.
 */
circuit::Circuit lowerMctNetwork(const MctNetwork &network,
                                 const std::string &name = "");

/**
 * Classical (permutation) simulation of a circuit containing only
 * X / CX / CCX / SWAP gates: maps an input basis state bitmask to
 * the output bitmask. Used to verify decompositions exhaustively.
 */
uint64_t simulateClassical(const circuit::Circuit &circuit,
                           uint64_t input);

/** Classical simulation of an MCT network (reference semantics). */
uint64_t simulateMctNetwork(const MctNetwork &network, uint64_t input);

} // namespace qpad::revsynth

#endif // QPAD_REVSYNTH_MCT_HH

#include "revsynth/synth.hh"

#include <algorithm>
#include <bit>

#include "circuit/decompose.hh"
#include "common/logging.hh"
#include "revsynth/pprm.hh"

namespace qpad::revsynth
{

using circuit::Circuit;
using circuit::Qubit;

SynthResult
synthesize(const TruthTable &table, const SynthOptions &options)
{
    const unsigned n = table.numInputs();
    const unsigned m = table.numOutputs();

    std::size_t width = options.total_qubits;
    if (width == 0)
        width = n + m;
    if (width < n + m)
        qpad_fatal("synthesize: width ", width, " cannot hold ", n,
                   " inputs + ", m, " outputs");

    SynthResult result;
    result.num_inputs = n;
    result.num_outputs = m;
    result.network.num_qubits = width;

    // One MCT per PPRM monomial, targeting the output's line. Gates
    // are ordered by ascending degree so that cheap CX/CCX terms come
    // first; order is semantically irrelevant because targets are
    // never controls.
    std::vector<MctGate> gates;
    unsigned max_degree = 0;
    for (unsigned j = 0; j < m; ++j) {
        Pprm pprm = computePprm(table, j);
        max_degree = std::max(max_degree, pprm.maxDegree());
        for (uint64_t mono : pprm.monomials) {
            MctGate g;
            g.target = static_cast<Qubit>(n + j);
            for (unsigned v = 0; v < n; ++v)
                if (mono >> v & 1)
                    g.controls.push_back(static_cast<Qubit>(v));
            gates.push_back(std::move(g));
        }
    }
    std::stable_sort(gates.begin(), gates.end(),
                     [](const MctGate &a, const MctGate &b) {
                         return a.controls.size() < b.controls.size();
                     });
    result.network.gates = std::move(gates);

    if (max_degree >= 3 && width < std::size_t{max_degree} + 2)
        qpad_fatal("synthesize: width ", width, " too small for a ",
                   "degree-", max_degree, " monomial (needs ",
                   max_degree + 2, " lines)");

    Circuit lowered = lowerMctNetwork(result.network, table.name());
    if (options.lower_to_basis)
        lowered = circuit::decompose(lowered);

    Circuit circ(width, m, table.name());
    circ.append(lowered);
    if (options.add_measurements) {
        for (unsigned j = 0; j < m; ++j)
            circ.measure(static_cast<Qubit>(n + j), j);
    }
    result.circuit = std::move(circ);
    return result;
}

} // namespace qpad::revsynth

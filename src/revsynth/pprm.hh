/**
 * @file
 * Positive-polarity Reed-Muller (PPRM / ANF) expansion.
 *
 * Every Boolean function has a unique representation as an XOR of
 * positive-literal product terms (its algebraic normal form). Each
 * product term maps directly onto one multi-controlled Toffoli gate
 * during synthesis, which is why the PPRM is the natural front end
 * of the reversible synthesizer.
 */

#ifndef QPAD_REVSYNTH_PPRM_HH
#define QPAD_REVSYNTH_PPRM_HH

#include <cstdint>
#include <vector>

#include "revsynth/truth_table.hh"

namespace qpad::revsynth
{

/**
 * The PPRM of one output: a list of monomials, each a bit mask of
 * the input variables it multiplies. Mask 0 is the constant-1 term.
 */
struct Pprm
{
    unsigned num_inputs = 0;
    std::vector<uint64_t> monomials;

    /** Largest monomial degree (popcount), 0 if empty. */
    unsigned maxDegree() const;

    /** Evaluate the XOR-of-products at input assignment x. */
    bool eval(uint64_t x) const;
};

/**
 * Compute the ANF coefficients of output j of a truth table via the
 * GF(2) Moebius transform (in-place butterfly, O(n 2^n)).
 */
Pprm computePprm(const TruthTable &table, unsigned output);

/** PPRMs of all outputs. */
std::vector<Pprm> computeAllPprms(const TruthTable &table);

} // namespace qpad::revsynth

#endif // QPAD_REVSYNTH_PPRM_HH

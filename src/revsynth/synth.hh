/**
 * @file
 * PPRM-based reversible synthesis.
 *
 * Given an n-input m-output truth table, build the reversible
 * embedding used throughout the reversible-logic literature (and by
 * the RevLib benchmarks the paper evaluates): input lines pass
 * through unchanged, and each output line y_j (initialized |0>)
 * accumulates f_j(x) as an XOR of multi-controlled Toffolis, one per
 * PPRM monomial. Extra ancilla lines widen the circuit (matching
 * published benchmark widths) and serve as borrowed work wires for
 * the Toffoli decomposition.
 */

#ifndef QPAD_REVSYNTH_SYNTH_HH
#define QPAD_REVSYNTH_SYNTH_HH

#include "circuit/circuit.hh"
#include "revsynth/mct.hh"
#include "revsynth/truth_table.hh"

namespace qpad::revsynth
{

/** Options controlling the synthesized embedding. */
struct SynthOptions
{
    /** Total circuit width; 0 means inputs + outputs exactly. */
    std::size_t total_qubits = 0;
    /** Append measurement of the output lines. */
    bool add_measurements = true;
    /** Lower all the way to the {1q, CX} basis. */
    bool lower_to_basis = true;
};

/** Synthesis outcome: the abstract MCT network and its circuit. */
struct SynthResult
{
    MctNetwork network;
    circuit::Circuit circuit;
    std::size_t num_inputs = 0;
    std::size_t num_outputs = 0;

    /** Line index carrying output j. */
    circuit::Qubit outputLine(unsigned j) const
    {
        return static_cast<circuit::Qubit>(num_inputs + j);
    }
};

/**
 * Synthesize the reversible embedding of a truth table.
 *
 * @throws via qpad_fatal when total_qubits is too small to hold
 *         inputs + outputs, or too small for the required Toffoli
 *         decompositions (a full-degree monomial needs one spare
 *         wire beyond its controls and target).
 */
SynthResult synthesize(const TruthTable &table,
                       const SynthOptions &options = {});

} // namespace qpad::revsynth

#endif // QPAD_REVSYNTH_SYNTH_HH

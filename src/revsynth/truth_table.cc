#include "revsynth/truth_table.hh"

#include "common/logging.hh"

namespace qpad::revsynth
{

TruthTable::TruthTable(unsigned num_inputs, unsigned num_outputs,
                       std::string name)
    : num_inputs_(num_inputs), num_outputs_(num_outputs),
      name_(std::move(name)),
      rows_(std::size_t{1} << num_inputs, 0)
{
    qpad_assert(num_inputs <= 24, "truth table too wide: ", num_inputs);
    qpad_assert(num_outputs >= 1 && num_outputs <= 64,
                "bad output count: ", num_outputs);
}

TruthTable
TruthTable::fromFunction(unsigned num_inputs, unsigned num_outputs,
                         const std::function<uint64_t(uint64_t)> &fn,
                         std::string name)
{
    TruthTable tt(num_inputs, num_outputs, std::move(name));
    const uint64_t mask = num_outputs == 64
        ? ~uint64_t{0}
        : (uint64_t{1} << num_outputs) - 1;
    for (uint64_t x = 0; x < tt.rows_.size(); ++x)
        tt.rows_[x] = fn(x) & mask;
    return tt;
}

uint64_t
TruthTable::row(uint64_t x) const
{
    qpad_assert(x < rows_.size(), "row out of range");
    return rows_[x];
}

void
TruthTable::setRow(uint64_t x, uint64_t outputs)
{
    qpad_assert(x < rows_.size(), "row out of range");
    rows_[x] = outputs;
}

bool
TruthTable::output(uint64_t x, unsigned j) const
{
    qpad_assert(j < num_outputs_, "output index out of range");
    return (row(x) >> j) & 1;
}

void
TruthTable::setOutput(uint64_t x, unsigned j, bool value)
{
    qpad_assert(j < num_outputs_, "output index out of range");
    if (value)
        rows_[x] |= uint64_t{1} << j;
    else
        rows_[x] &= ~(uint64_t{1} << j);
}

std::size_t
TruthTable::onSetSize(unsigned j) const
{
    std::size_t count = 0;
    for (uint64_t x = 0; x < rows_.size(); ++x)
        if (output(x, j))
            ++count;
    return count;
}

} // namespace qpad::revsynth

#include "revsynth/pprm.hh"

#include <bit>

#include "common/logging.hh"

namespace qpad::revsynth
{

unsigned
Pprm::maxDegree() const
{
    unsigned deg = 0;
    for (uint64_t m : monomials)
        deg = std::max(deg, unsigned(std::popcount(m)));
    return deg;
}

bool
Pprm::eval(uint64_t x) const
{
    bool acc = false;
    for (uint64_t m : monomials) {
        // The monomial fires iff all its variables are set in x.
        if ((x & m) == m)
            acc = !acc;
    }
    return acc;
}

Pprm
computePprm(const TruthTable &table, unsigned output)
{
    const unsigned n = table.numInputs();
    const std::size_t rows = std::size_t{1} << n;

    std::vector<uint8_t> coeff(rows);
    for (uint64_t x = 0; x < rows; ++x)
        coeff[x] = table.output(x, output) ? 1 : 0;

    // Moebius transform over GF(2): after processing bit i,
    // coeff[mask] accumulates the XOR over all sub-assignments in
    // dimension i. The fixed point is the ANF coefficient vector.
    for (unsigned i = 0; i < n; ++i) {
        const uint64_t bit = uint64_t{1} << i;
        for (uint64_t mask = 0; mask < rows; ++mask)
            if (mask & bit)
                coeff[mask] ^= coeff[mask ^ bit];
    }

    Pprm result;
    result.num_inputs = n;
    for (uint64_t mask = 0; mask < rows; ++mask)
        if (coeff[mask])
            result.monomials.push_back(mask);
    return result;
}

std::vector<Pprm>
computeAllPprms(const TruthTable &table)
{
    std::vector<Pprm> out;
    out.reserve(table.numOutputs());
    for (unsigned j = 0; j < table.numOutputs(); ++j)
        out.push_back(computePprm(table, j));
    return out;
}

} // namespace qpad::revsynth

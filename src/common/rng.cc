#include "common/rng.hh"

#include <numbers>

#include "common/logging.hh"

namespace qpad
{

uint64_t
Rng::splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
Rng::rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

void
Rng::expandState(uint64_t seed, uint64_t (&state)[4])
{
    uint64_t sm = seed;
    for (auto &s : state)
        s = splitMix64(sm);
}

Rng::Rng(uint64_t seed)
    : cached_gauss_(0.0), has_cached_gauss_(false)
{
    expandState(seed, s_);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 mantissa bits -> uniform in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    const double u = uniform();
    const double span = hi - lo;
    // When the span overflows (hi and lo near opposite ends of the
    // double range), lo + inf * u would collapse every draw onto the
    // clamp below; the two-sided interpolation stays finite and
    // uniform there. Finite spans keep the legacy expression so
    // existing seeded draw sequences are unchanged.
    const double v = std::isinf(span) ? lo * (1.0 - u) + hi * u
                                      : lo + span * u;
    // Either form can round up to exactly hi; callers rely on the
    // half-open interval, so clamp to the largest double below hi.
    // nextafter(hi, lo) is hi itself in the degenerate lo == hi case.
    return v < hi ? v : std::nextafter(hi, lo);
}

uint64_t
Rng::below(uint64_t n)
{
    qpad_assert(n > 0, "Rng::below(0)");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - n) % n;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    qpad_assert(lo <= hi, "Rng::range with lo > hi");
    return lo + static_cast<int64_t>(
        below(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::gaussian()
{
    if (has_cached_gauss_) {
        has_cached_gauss_ = false;
        return cached_gauss_;
    }
    // Box-Muller transform; u1 in (0, 1] so log() is finite.
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * std::numbers::pi * u2;
    cached_gauss_ = r * std::sin(theta);
    has_cached_gauss_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xd2b74407b1ce6e93ull);
}

uint64_t
Rng::childSeed(uint64_t seed, uint64_t stream)
{
    uint64_t state = seed;
    uint64_t diffused = splitMix64(state);
    state = diffused ^ ((stream + 1) * 0xd2b74407b1ce6e93ull);
    return splitMix64(state);
}

Rng
Rng::forStream(uint64_t seed, uint64_t stream)
{
    return Rng(childSeed(seed, stream));
}

} // namespace qpad

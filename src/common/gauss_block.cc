#include "common/gauss_block.hh"

#include <cstdlib>

#include "common/rng.hh"

#ifdef __AVX2__
#include <immintrin.h>
#else
#include <bit>
#include <cmath>
#endif

namespace qpad
{

namespace
{

constexpr std::size_t kL = GaussianBlockSampler::kLanes;

// --------------------------------------------------------------------
// 8-wide vector backend. Exactly one implementation of every
// arithmetic op per build: AVX2 intrinsics with -mavx2, a portable
// lane loop otherwise. Every op is an IEEE-754 correctly-rounded
// primitive (or an exact bit/integer operation), and the shared
// transform bodies below apply them in one fixed order, so the two
// backends produce bit-identical streams. This file is compiled
// with -ffp-contract=off (see CMakeLists.txt): a fused
// multiply-add would round differently and break the cross-build
// contract.
// --------------------------------------------------------------------

#ifdef __AVX2__

struct VecD
{
    __m256d lo, hi;
};

struct VecU
{
    __m256i lo, hi;
};

inline VecD
splat(double x)
{
    return {_mm256_set1_pd(x), _mm256_set1_pd(x)};
}

inline VecU
splatU(uint64_t x)
{
    const __m256i v = _mm256_set1_epi64x(int64_t(x));
    return {v, v};
}

inline VecD
vadd(VecD a, VecD b)
{
    return {_mm256_add_pd(a.lo, b.lo), _mm256_add_pd(a.hi, b.hi)};
}

inline VecD
vsub(VecD a, VecD b)
{
    return {_mm256_sub_pd(a.lo, b.lo), _mm256_sub_pd(a.hi, b.hi)};
}

inline VecD
vmul(VecD a, VecD b)
{
    return {_mm256_mul_pd(a.lo, b.lo), _mm256_mul_pd(a.hi, b.hi)};
}

inline VecD
vdiv(VecD a, VecD b)
{
    return {_mm256_div_pd(a.lo, b.lo), _mm256_div_pd(a.hi, b.hi)};
}

inline VecD
vsqrt(VecD a)
{
    return {_mm256_sqrt_pd(a.lo), _mm256_sqrt_pd(a.hi)};
}

inline VecD
vfloor(VecD a)
{
    return {_mm256_floor_pd(a.lo), _mm256_floor_pd(a.hi)};
}

/** Lane mask, all-ones where a < b (ordered quiet compare). */
inline VecD
vlt(VecD a, VecD b)
{
    return {_mm256_cmp_pd(a.lo, b.lo, _CMP_LT_OQ),
            _mm256_cmp_pd(a.hi, b.hi, _CMP_LT_OQ)};
}

/** mask-sign-bit ? a : b (masks here are all-ones or all-zero). */
inline VecD
vblend(VecD mask, VecD a, VecD b)
{
    return {_mm256_blendv_pd(b.lo, a.lo, mask.lo),
            _mm256_blendv_pd(b.hi, a.hi, mask.hi)};
}

inline VecD
vand(VecD a, VecD b)
{
    return {_mm256_and_pd(a.lo, b.lo), _mm256_and_pd(a.hi, b.hi)};
}

inline VecD
vxor(VecD a, VecD b)
{
    return {_mm256_xor_pd(a.lo, b.lo), _mm256_xor_pd(a.hi, b.hi)};
}

inline VecU
toBits(VecD a)
{
    return {_mm256_castpd_si256(a.lo), _mm256_castpd_si256(a.hi)};
}

inline VecD
fromBits(VecU a)
{
    return {_mm256_castsi256_pd(a.lo), _mm256_castsi256_pd(a.hi)};
}

inline VecU
uxor(VecU a, VecU b)
{
    return {_mm256_xor_si256(a.lo, b.lo), _mm256_xor_si256(a.hi, b.hi)};
}

inline VecU
uor(VecU a, VecU b)
{
    return {_mm256_or_si256(a.lo, b.lo), _mm256_or_si256(a.hi, b.hi)};
}

inline VecU
uand(VecU a, VecU b)
{
    return {_mm256_and_si256(a.lo, b.lo), _mm256_and_si256(a.hi, b.hi)};
}

inline VecU
uadd(VecU a, VecU b)
{
    return {_mm256_add_epi64(a.lo, b.lo), _mm256_add_epi64(a.hi, b.hi)};
}

template <int K>
inline VecU
ushl(VecU a)
{
    return {_mm256_slli_epi64(a.lo, K), _mm256_slli_epi64(a.hi, K)};
}

template <int K>
inline VecU
ushr(VecU a)
{
    return {_mm256_srli_epi64(a.lo, K), _mm256_srli_epi64(a.hi, K)};
}

/** Exact double(x) for unsigned lanes x < 2^52 (magic-number add). */
inline VecD
smallU64ToDouble(VecU x)
{
    const VecU magic = splatU(0x4330000000000000ull); // bits of 2^52
    return vsub(fromBits(uor(x, magic)), splat(4503599627370496.0));
}

/**
 * (raw >> 11) * 2^-53 in [0, 1) — the Rng::uniform conversion. The
 * 53-bit integer is split into exactly-convertible halves; the
 * recombination hi * 2^32 + lo is exact, so the value matches the
 * scalar backend's direct double() conversion bit for bit.
 */
inline VecD
unitFromBits(VecU raw)
{
    const VecU m = ushr<11>(raw);
    const VecD hi = smallU64ToDouble(ushr<32>(m));
    const VecD lo = smallU64ToDouble(uand(m, splatU(0xFFFFFFFFull)));
    const VecD d = vadd(vmul(hi, splat(4294967296.0)), lo);
    return vmul(d, splat(0x1.0p-53));
}

inline VecU
loadU(const uint64_t *p)
{
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i *>(p)),
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(p + 4))};
}

inline void
storeU(uint64_t *p, VecU a)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), a.lo);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p + 4), a.hi);
}

inline VecD
loadD(const double *p)
{
    return {_mm256_loadu_pd(p), _mm256_loadu_pd(p + 4)};
}

inline void
storeD(double *p, VecD a)
{
    _mm256_storeu_pd(p, a.lo);
    _mm256_storeu_pd(p + 4, a.hi);
}

#else // portable fallback: same ops, one double per lane

struct VecD
{
    double v[kL];
};

struct VecU
{
    uint64_t v[kL];
};

inline VecD
splat(double x)
{
    VecD r;
    for (std::size_t l = 0; l < kL; ++l)
        r.v[l] = x;
    return r;
}

inline VecU
splatU(uint64_t x)
{
    VecU r;
    for (std::size_t l = 0; l < kL; ++l)
        r.v[l] = x;
    return r;
}

inline VecD
vadd(VecD a, VecD b)
{
    VecD r;
    for (std::size_t l = 0; l < kL; ++l)
        r.v[l] = a.v[l] + b.v[l];
    return r;
}

inline VecD
vsub(VecD a, VecD b)
{
    VecD r;
    for (std::size_t l = 0; l < kL; ++l)
        r.v[l] = a.v[l] - b.v[l];
    return r;
}

inline VecD
vmul(VecD a, VecD b)
{
    VecD r;
    for (std::size_t l = 0; l < kL; ++l)
        r.v[l] = a.v[l] * b.v[l];
    return r;
}

inline VecD
vdiv(VecD a, VecD b)
{
    VecD r;
    for (std::size_t l = 0; l < kL; ++l)
        r.v[l] = a.v[l] / b.v[l];
    return r;
}

inline VecD
vsqrt(VecD a)
{
    VecD r;
    for (std::size_t l = 0; l < kL; ++l)
        r.v[l] = std::sqrt(a.v[l]);
    return r;
}

inline VecD
vfloor(VecD a)
{
    VecD r;
    for (std::size_t l = 0; l < kL; ++l)
        r.v[l] = std::floor(a.v[l]);
    return r;
}

inline VecD
vlt(VecD a, VecD b)
{
    VecD r;
    for (std::size_t l = 0; l < kL; ++l)
        r.v[l] = a.v[l] < b.v[l]
                     ? std::bit_cast<double>(~uint64_t{0})
                     : 0.0;
    return r;
}

inline VecD
vblend(VecD mask, VecD a, VecD b)
{
    VecD r;
    for (std::size_t l = 0; l < kL; ++l)
        r.v[l] = (std::bit_cast<uint64_t>(mask.v[l]) >> 63) ? a.v[l]
                                                            : b.v[l];
    return r;
}

inline VecD
vand(VecD a, VecD b)
{
    VecD r;
    for (std::size_t l = 0; l < kL; ++l)
        r.v[l] = std::bit_cast<double>(std::bit_cast<uint64_t>(a.v[l]) &
                                       std::bit_cast<uint64_t>(b.v[l]));
    return r;
}

inline VecD
vxor(VecD a, VecD b)
{
    VecD r;
    for (std::size_t l = 0; l < kL; ++l)
        r.v[l] = std::bit_cast<double>(std::bit_cast<uint64_t>(a.v[l]) ^
                                       std::bit_cast<uint64_t>(b.v[l]));
    return r;
}

inline VecU
toBits(VecD a)
{
    VecU r;
    for (std::size_t l = 0; l < kL; ++l)
        r.v[l] = std::bit_cast<uint64_t>(a.v[l]);
    return r;
}

inline VecD
fromBits(VecU a)
{
    VecD r;
    for (std::size_t l = 0; l < kL; ++l)
        r.v[l] = std::bit_cast<double>(a.v[l]);
    return r;
}

inline VecU
uxor(VecU a, VecU b)
{
    VecU r;
    for (std::size_t l = 0; l < kL; ++l)
        r.v[l] = a.v[l] ^ b.v[l];
    return r;
}

inline VecU
uor(VecU a, VecU b)
{
    VecU r;
    for (std::size_t l = 0; l < kL; ++l)
        r.v[l] = a.v[l] | b.v[l];
    return r;
}

inline VecU
uand(VecU a, VecU b)
{
    VecU r;
    for (std::size_t l = 0; l < kL; ++l)
        r.v[l] = a.v[l] & b.v[l];
    return r;
}

inline VecU
uadd(VecU a, VecU b)
{
    VecU r;
    for (std::size_t l = 0; l < kL; ++l)
        r.v[l] = a.v[l] + b.v[l];
    return r;
}

template <int K>
inline VecU
ushl(VecU a)
{
    VecU r;
    for (std::size_t l = 0; l < kL; ++l)
        r.v[l] = a.v[l] << K;
    return r;
}

template <int K>
inline VecU
ushr(VecU a)
{
    VecU r;
    for (std::size_t l = 0; l < kL; ++l)
        r.v[l] = a.v[l] >> K;
    return r;
}

inline VecD
smallU64ToDouble(VecU x)
{
    // double() is exact below 2^53, a fortiori below 2^52.
    VecD r;
    for (std::size_t l = 0; l < kL; ++l)
        r.v[l] = double(x.v[l]);
    return r;
}

inline VecD
unitFromBits(VecU raw)
{
    // double(m) is exact for the 53-bit m, which equals the AVX2
    // backend's hi * 2^32 + lo recombination bit for bit.
    VecD r;
    for (std::size_t l = 0; l < kL; ++l)
        r.v[l] = double(raw.v[l] >> 11) * 0x1.0p-53;
    return r;
}

inline VecU
loadU(const uint64_t *p)
{
    VecU r;
    for (std::size_t l = 0; l < kL; ++l)
        r.v[l] = p[l];
    return r;
}

inline void
storeU(uint64_t *p, VecU a)
{
    for (std::size_t l = 0; l < kL; ++l)
        p[l] = a.v[l];
}

inline VecD
loadD(const double *p)
{
    VecD r;
    for (std::size_t l = 0; l < kL; ++l)
        r.v[l] = p[l];
    return r;
}

inline void
storeD(double *p, VecD a)
{
    for (std::size_t l = 0; l < kL; ++l)
        p[l] = a.v[l];
}

#endif

// --------------------------------------------------------------------
// Shared transform bodies (backend-independent op sequences)
// --------------------------------------------------------------------

/** One xoshiro256** step for all lanes (interleaved state words). */
inline VecU
xoshiroNext(VecU s[4])
{
    // result = rotl(s1 * 5, 7) * 9; the multiplications by 5 and 9
    // are shift-adds (AVX2 has no 64-bit mullo), identical mod 2^64.
    const VecU x5 = uadd(s[1], ushl<2>(s[1]));
    const VecU rot = uor(ushl<7>(x5), ushr<57>(x5));
    const VecU result = uadd(rot, ushl<3>(rot));

    const VecU t = ushl<17>(s[1]);
    s[2] = uxor(s[2], s[0]);
    s[3] = uxor(s[3], s[1]);
    s[1] = uxor(s[1], s[2]);
    s[0] = uxor(s[0], s[3]);
    s[2] = uxor(s[2], t);
    s[3] = uor(ushl<45>(s[3]), ushr<19>(s[3]));
    return result;
}

/**
 * ln(x) for x in (0, 1] (normal doubles; the Box-Muller u1 is at
 * least 2^-53, so no zero/denormal/negative handling is needed).
 *
 * The mantissa is scaled into m in [sqrt(1/2), sqrt(2)) and
 * ln(m) = 2 atanh(z) with z = (m - 1)/(m + 1), |z| <= 0.1716, is
 * evaluated as the plain odd Taylor series through z^21 (truncation
 * error below 1e-17 relative on this range; the coefficients are
 * the exact rationals 1/(2k+1), so there is nothing to
 * mistranscribe). The exponent is recombined through the fdlibm
 * hi/lo split of ln 2: e * ln2_hi is exact because ln2_hi carries
 * 20 trailing zero bits and |e| <= 1074.
 */
inline VecD
vlogUnit(VecD x)
{
    const VecU bits = toBits(x);
    VecD e = vsub(smallU64ToDouble(ushr<52>(bits)), splat(1022.0));
    // f in [0.5, 1): exponent bits replaced with 2^-1.
    const VecD f =
        fromBits(uor(uand(bits, splatU(0x000FFFFFFFFFFFFFull)),
                     splatU(0x3FE0000000000000ull)));
    const VecD below = vlt(f, splat(0.70710678118654752440));
    e = vsub(e, vand(below, splat(1.0)));
    const VecD m = vblend(below, vadd(f, f), f);

    const VecD z =
        vdiv(vsub(m, splat(1.0)), vadd(m, splat(1.0)));
    const VecD z2 = vmul(z, z);
    VecD p = splat(1.0 / 21.0);
    p = vadd(vmul(p, z2), splat(1.0 / 19.0));
    p = vadd(vmul(p, z2), splat(1.0 / 17.0));
    p = vadd(vmul(p, z2), splat(1.0 / 15.0));
    p = vadd(vmul(p, z2), splat(1.0 / 13.0));
    p = vadd(vmul(p, z2), splat(1.0 / 11.0));
    p = vadd(vmul(p, z2), splat(1.0 / 9.0));
    p = vadd(vmul(p, z2), splat(1.0 / 7.0));
    p = vadd(vmul(p, z2), splat(1.0 / 5.0));
    p = vadd(vmul(p, z2), splat(1.0 / 3.0));
    p = vadd(vmul(p, z2), splat(1.0));
    const VecD mant = vmul(vadd(z, z), p); // 2 atanh(z)

    const VecD ln2_hi = splat(6.93147180369123816490e-1);
    const VecD ln2_lo = splat(1.90821492927058770002e-10);
    return vadd(vadd(mant, vmul(e, ln2_lo)), vmul(e, ln2_hi));
}

/**
 * sin(2 pi u) and cos(2 pi u) for u in [0, 1). Octant reduction in
 * the exact unit domain (a = 4u and the quadrant arithmetic are
 * exact), then the Cephes sin/cos minimax polynomials on
 * |x| <= pi/4.
 */
inline void
vsincos2pi(VecD u, VecD &sin_out, VecD &cos_out)
{
    const VecD a = vmul(u, splat(4.0)); // exact: power-of-two scale
    const VecD k = vfloor(vadd(a, splat(0.5))); // quadrant, 0..4
    const VecD r = vsub(a, k);                  // [-0.5, 0.5]

    // Quadrant bits, as exact small-integer arithmetic: swap when k
    // is odd, negate sin when k mod 4 is 2 or 3 (k = 4 aliases 0).
    const VecD m2 =
        vsub(k, vmul(splat(2.0), vfloor(vmul(k, splat(0.5)))));
    const VecD m4 =
        vsub(k, vmul(splat(4.0), vfloor(vmul(k, splat(0.25)))));
    const VecD swap = vlt(splat(0.5), m2);
    const VecD neg_sin = vlt(splat(1.5), m4);
    const VecD neg_cos = vxor(swap, neg_sin);

    const VecD x = vmul(r, splat(1.5707963267948966)); // r * pi/2
    const VecD z = vmul(x, x);

    VecD sp = splat(1.58962301576546568060e-10);
    sp = vadd(vmul(sp, z), splat(-2.50507477628578072866e-8));
    sp = vadd(vmul(sp, z), splat(2.75573136213857245213e-6));
    sp = vadd(vmul(sp, z), splat(-1.98412698295895385996e-4));
    sp = vadd(vmul(sp, z), splat(8.33333333332211858878e-3));
    sp = vadd(vmul(sp, z), splat(-1.66666666666666307295e-1));
    const VecD sin_x = vadd(x, vmul(vmul(x, z), sp));

    VecD cp = splat(-1.13585365213876817300e-11);
    cp = vadd(vmul(cp, z), splat(2.08757008419747316778e-9));
    cp = vadd(vmul(cp, z), splat(-2.75573141792967388112e-7));
    cp = vadd(vmul(cp, z), splat(2.48015872888517179954e-5));
    cp = vadd(vmul(cp, z), splat(-1.38888888888730564116e-3));
    cp = vadd(vmul(cp, z), splat(4.16666666666665929218e-2));
    const VecD cos_x = vadd(vsub(splat(1.0), vmul(z, splat(0.5))),
                            vmul(vmul(z, z), cp));

    const VecD sign = splat(-0.0);
    sin_out = vxor(vblend(swap, cos_x, sin_x), vand(neg_sin, sign));
    cos_out = vxor(vblend(swap, sin_x, cos_x), vand(neg_cos, sign));
}

/**
 * Next Box-Muller pair of every lane: z0 = r cos(theta),
 * z1 = r sin(theta) — the same convention as Rng::gaussian(), which
 * returns the cosine deviate first and caches the sine one.
 */
inline void
gaussPair(VecU s[4], VecD &z0, VecD &z1)
{
    const VecD u1 = vsub(splat(1.0), unitFromBits(xoshiroNext(s)));
    const VecD u2 = unitFromBits(xoshiroNext(s));
    const VecD r = vsqrt(vmul(splat(-2.0), vlogUnit(u1)));
    VecD sn, cs;
    vsincos2pi(u2, sn, cs);
    z0 = vmul(r, cs);
    z1 = vmul(r, sn);
}

/**
 * Shared fill driver: `store(row, z)` commits one row of lane
 * deviates. The carry keeps the pending sine partner of an odd
 * trailing row so fills compose (fill(a); fill(b) == fill(a+b)).
 */
template <typename StoreRow>
inline void
fillRows(uint64_t (&state)[4][kL], double (&carry)[kL],
         bool &has_carry, std::size_t rows, StoreRow &&store)
{
    if (rows == 0)
        return;
    std::size_t r = 0;
    if (has_carry) {
        store(r++, loadD(carry));
        has_carry = false;
        if (r == rows)
            return;
    }
    VecU s[4] = {loadU(state[0]), loadU(state[1]), loadU(state[2]),
                 loadU(state[3])};
    for (; r + 1 < rows; r += 2) {
        VecD z0, z1;
        gaussPair(s, z0, z1);
        store(r, z0);
        store(r + 1, z1);
    }
    if (r < rows) {
        VecD z0, z1;
        gaussPair(s, z0, z1);
        store(r, z0);
        storeD(carry, z1);
        has_carry = true;
    }
    storeU(state[0], s[0]);
    storeU(state[1], s[1]);
    storeU(state[2], s[2]);
    storeU(state[3], s[3]);
}

} // namespace

GaussianBlockSampler::GaussianBlockSampler(uint64_t seed)
{
    for (std::size_t l = 0; l < kLanes; ++l) {
        uint64_t lane_state[4];
        Rng::expandState(Rng::childSeed(seed, l), lane_state);
        for (std::size_t w = 0; w < 4; ++w)
            state_[w][l] = lane_state[w];
    }
    for (std::size_t l = 0; l < kLanes; ++l)
        carry_[l] = 0.0;
}

void
GaussianBlockSampler::fillStandard(double *out, std::size_t rows)
{
    fillRows(state_, carry_, has_carry_, rows,
             [&](std::size_t r, VecD z) {
                 storeD(out + r * kLanes, z);
             });
}

void
GaussianBlockSampler::fillAffine(double *out, const double *means,
                                 double sigma, std::size_t rows)
{
    const VecD vs = splat(sigma);
    fillRows(state_, carry_, has_carry_, rows,
             [&](std::size_t r, VecD z) {
                 storeD(out + r * kLanes,
                        vadd(splat(means[r]), vmul(vs, z)));
             });
}

RngScheme
resolveRngScheme(RngScheme requested)
{
    const char *env = std::getenv("QPAD_RNG_V1");
    return env && *env ? RngScheme::kV1 : requested;
}

} // namespace qpad

/**
 * @file
 * Lane-parallel Gaussian block sampler — the vectorized counterpart
 * of Rng::gaussian() for the Monte Carlo hot paths.
 *
 * GaussianBlockSampler runs kLanes = 8 independent xoshiro256**
 * generators with interleaved state (lane l is child stream l of the
 * sampler seed, see Rng::childSeed) and converts their output to
 * standard normal deviates with a batched Box-Muller transform. The
 * log/sin/cos evaluations use fixed polynomial kernels (Cephes
 * minimax coefficients) written against a small 8-wide vector
 * abstraction with exactly one implementation of each arithmetic op
 * per backend: AVX2 intrinsics when the translation unit is built
 * with -mavx2 (the same run-on-host CMake probe as the batched
 * collision kernel), a portable scalar loop otherwise. Every op in
 * the pipeline is an IEEE-754 correctly-rounded primitive (add, sub,
 * mul, div, sqrt, floor, integer bit ops) applied in an identical
 * order by both backends, and the file is compiled with
 * -ffp-contract=off, so the sampled bits are identical on AVX2 and
 * non-AVX2 builds. tests/test_gauss_block.cc pins golden bit
 * patterns to keep both backends honest.
 *
 * Draw-order contract ("v2 scheme", see also common/rng.hh): lane l
 * produces an autonomous stream of deviates; a fill of n rows
 * appends n deviates to every lane at out[row * kLanes + lane]. The
 * per-lane streams are pure functions of the sampler seed — they do
 * not depend on how fills are sized or batched (an odd row count
 * carries the pending Box-Muller pair partner into the next fill),
 * which is what makes v2 results independent of batch remainders.
 */

#ifndef QPAD_COMMON_GAUSS_BLOCK_HH
#define QPAD_COMMON_GAUSS_BLOCK_HH

#include <cstddef>
#include <cstdint>

namespace qpad
{

/**
 * Version of the random draw order used by the Monte Carlo
 * consumers (yield simulation, frequency allocation).
 *
 *  - kV1: the legacy scalar order — every trial draws its deviates
 *    one after another from a single Rng via Rng::gaussian(), whose
 *    Box-Muller cache pairs draws across consecutive calls.
 *  - kV2 (default): the lane order — trials are grouped in blocks of
 *    GaussianBlockSampler::kLanes, trial t of a block consumes lane
 *    t % kLanes of a GaussianBlockSampler, qubits in row order.
 *
 * Both schemes are deterministic, thread-count independent, and
 * batch-remainder independent; they simply draw different (equally
 * distributed) numbers for the same seed. kV1 reproduces the exact
 * tallies of the pre-sampler releases.
 */
enum class RngScheme
{
    kV1 = 1,
    kV2 = 2,
};

/**
 * The scheme a simulation should actually run: `requested` unless
 * the QPAD_RNG_V1 environment variable is set non-empty, which
 * forces kV1 everywhere (mirroring QPAD_SCALAR_KERNEL). Queried per
 * simulation call so tests can flip it at runtime.
 */
RngScheme resolveRngScheme(RngScheme requested);

/** 8-lane xoshiro256** + batched Box-Muller standard normals. */
class GaussianBlockSampler
{
  public:
    /** Independent generator lanes per block (= one SoA block). */
    static constexpr std::size_t kLanes = 8;

    /**
     * Seed the eight lanes as child streams 0..kLanes-1 of `seed`
     * (lane l state = Rng(Rng::childSeed(seed, l))).
     */
    explicit GaussianBlockSampler(uint64_t seed);

    /**
     * Append the next standard normal of every lane to each of
     * `rows` rows: out[r * kLanes + l] = lane l's deviate for row r.
     * Fills are composable: fill(a) then fill(b) writes the same
     * deviates as one fill(a + b).
     */
    void fillStandard(double *out, std::size_t rows);

    /**
     * Same draws as fillStandard, stored as
     * out[r * kLanes + l] = means[r] + sigma * z, computed in that
     * exact expression order on both backends. The underlying
     * standard normals (and the carried odd-row partner) are
     * unaffected by `means`/`sigma`, so mixed-parameter fills stay
     * composable.
     */
    void fillAffine(double *out, const double *means, double sigma,
                    std::size_t rows);

  private:
    /** Interleaved xoshiro256** state: word w of lane l. */
    alignas(32) uint64_t state_[4][kLanes];
    /** Pending Box-Muller partner per lane (valid iff has_carry_). */
    alignas(32) double carry_[kLanes];
    bool has_carry_ = false;
};

} // namespace qpad

#endif // QPAD_COMMON_GAUSS_BLOCK_HH

#include "common/logging.hh"

#include <stdexcept>

namespace qpad
{
namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    // Throwing (instead of abort()) keeps panics testable; the type is
    // logic_error because a panic always indicates a qpad bug.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line
              << std::endl;
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (!isQuiet())
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (!isQuiet())
        std::cerr << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace qpad

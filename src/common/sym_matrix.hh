/**
 * @file
 * Dense symmetric matrix with packed triangular storage.
 *
 * Used for coupling strength matrices (qubit-pair gate counts) and
 * all-pairs distance tables. Only the upper triangle (including the
 * diagonal) is stored; (i, j) and (j, i) alias the same element.
 */

#ifndef QPAD_COMMON_SYM_MATRIX_HH
#define QPAD_COMMON_SYM_MATRIX_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace qpad
{

/**
 * Symmetric n-by-n matrix of T with O(n^2 / 2) storage.
 */
template <typename T>
class SymMatrix
{
  public:
    SymMatrix() : n_(0) {}

    /** n-by-n matrix, all elements initialized to fill. */
    explicit SymMatrix(std::size_t n, T fill = T{})
        : n_(n), data_(n * (n + 1) / 2, fill)
    {}

    /** Matrix dimension. */
    std::size_t size() const { return n_; }

    /** Element access; (i, j) and (j, i) are the same element. */
    T &
    at(std::size_t i, std::size_t j)
    {
        return data_[index(i, j)];
    }

    const T &
    at(std::size_t i, std::size_t j) const
    {
        return data_[index(i, j)];
    }

    T operator()(std::size_t i, std::size_t j) const { return at(i, j); }

    /** Sum of row i over all columns (diagonal included once). */
    T
    rowSum(std::size_t i) const
    {
        T sum{};
        for (std::size_t j = 0; j < n_; ++j)
            sum += at(i, j);
        return sum;
    }

    /** Sum over the strict upper triangle (each pair counted once). */
    T
    offDiagonalSum() const
    {
        T sum{};
        for (std::size_t i = 0; i < n_; ++i)
            for (std::size_t j = i + 1; j < n_; ++j)
                sum += at(i, j);
        return sum;
    }

    bool
    operator==(const SymMatrix &other) const
    {
        return n_ == other.n_ && data_ == other.data_;
    }

  private:
    std::size_t n_;
    std::vector<T> data_;

    std::size_t
    index(std::size_t i, std::size_t j) const
    {
        qpad_assert(i < n_ && j < n_,
                    "SymMatrix index (", i, ",", j, ") out of range ", n_);
        if (i > j)
            std::swap(i, j);
        // Row-major packed upper triangle.
        return i * n_ - i * (i + 1) / 2 + j;
    }
};

} // namespace qpad

#endif // QPAD_COMMON_SYM_MATRIX_HH

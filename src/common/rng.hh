/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of qpad (yield Monte Carlo, random bus
 * selection, mapper tie-breaking) draws from an explicitly seeded Rng
 * so that experiments are reproducible across platforms. The core
 * generator is xoshiro256**, seeded through SplitMix64.
 */

#ifndef QPAD_COMMON_RNG_HH
#define QPAD_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

namespace qpad
{

/**
 * Small, fast, deterministic random number generator
 * (xoshiro256** with SplitMix64 seeding).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /**
     * Uniform double in [lo, hi). @pre lo <= hi. The naive
     * lo + (hi - lo) * u can round up to exactly hi (e.g. when
     * hi - lo is a power-of-two multiple of the ulp at hi); the
     * result is clamped to the largest double below hi so the
     * half-open contract holds at every magnitude.
     */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    uint64_t below(uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    int64_t range(int64_t lo, int64_t hi);

    /** Standard normal deviate (Box-Muller, cached pair). */
    double gaussian();

    /** Normal deviate with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /** Split off an independent child stream (for parallel phases). */
    Rng split();

    /**
     * Stateless seed splitting, the basis of deterministic parallel
     * Monte Carlo (see runtime/seed_seq.hh).
     *
     * Scheme: the base seed is first diffused through one SplitMix64
     * step, then XOR-combined with the stream index scaled by an odd
     * 64-bit constant (so distinct streams differ in many bits), and
     * finally passed through SplitMix64 again:
     *
     *   child(seed, stream) =
     *       SplitMix64(SplitMix64(seed) ^ ((stream + 1) * C))
     *
     * with C = 0xd2b74407b1ce6e93. Each child seed then goes through
     * Rng's normal SplitMix64 state expansion. The child is a pure
     * function of (seed, stream): parallel shards that draw from
     * stream = chunk index reproduce the sequential run exactly,
     * independent of thread count and scheduling order. Note that
     * child(seed, s) is unrelated to Rng(seed).split() — the two
     * mechanisms serve different call sites and must not be mixed
     * within one workload.
     *
     * Draw-order schemes built on this splitting (see RngScheme in
     * common/gauss_block.hh): a Monte Carlo shard with child seed s
     * draws its Gaussians either
     *
     *  - v1 (legacy): from Rng(s) trial-major — trial t draws its
     *    deviates qubit after qubit through gaussian(), whose
     *    Box-Muller cache pairs consecutive calls; or
     *  - v2 (default): from GaussianBlockSampler(s) lane-major —
     *    trials are grouped in blocks of 8, lane t % 8 is the child
     *    stream Rng::childSeed(s, t % 8), and each trial reads its
     *    deviates from its own lane row by row.
     *
     * Both orders are pure functions of (seed, shard layout), so
     * both are bit-identical across thread counts, batch remainders,
     * and collision-kernel choices; they draw different numbers for
     * the same seed. QPAD_RNG_V1 in the environment forces v1
     * globally; v1 reproduces the tallies of the releases that
     * predate the block sampler.
     */
    static uint64_t childSeed(uint64_t seed, uint64_t stream);

    /** Generator for child stream `stream` of `seed` (see above). */
    static Rng forStream(uint64_t seed, uint64_t stream);

    /**
     * The constructor's SplitMix64 expansion of `seed` into
     * xoshiro256** state, exposed so the lane-parallel
     * GaussianBlockSampler seeds its interleaved lanes exactly like
     * Rng(seed) would.
     */
    static void expandState(uint64_t seed, uint64_t (&state)[4]);

    /**
     * One SplitMix64 step: advance `state` and return the mixed
     * output. The single definition of the generator the seeding
     * scheme builds on, exposed for callers that need a tiny
     * standalone deterministic stream (scheduler victim
     * randomization, bench busywork) without duplicating the
     * constants.
     */
    static uint64_t splitMix64(uint64_t &state);

  private:
    uint64_t s_[4];
    double cached_gauss_;
    bool has_cached_gauss_;

    static uint64_t rotl(uint64_t x, int k);
};

} // namespace qpad

#endif // QPAD_COMMON_RNG_HH

/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant
 * violations (library bugs), fatal() for user errors that make
 * continuing impossible, warn()/inform() for non-fatal diagnostics.
 */

#ifndef QPAD_COMMON_LOGGING_HH
#define QPAD_COMMON_LOGGING_HH

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace qpad
{

namespace detail
{

/** Stream a pack of arguments into a single string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/**
 * Quiet flag for inform()/warn() (used by quiet benches). An atomic
 * so benches may toggle it while worker threads log; relaxed is
 * enough — it gates diagnostics only and orders nothing else.
 */
inline std::atomic<bool> g_quiet_flag{false};

/** Globally silence inform()/warn() (used by quiet benches). */
inline void
setQuiet(bool quiet)
{
    g_quiet_flag.store(quiet, std::memory_order_relaxed);
}

inline bool
isQuiet()
{
    return g_quiet_flag.load(std::memory_order_relaxed);
}

} // namespace detail

/**
 * Abort with a message. Use for conditions that indicate a bug in
 * qpad itself, never for bad user input.
 */
#define qpad_panic(...)                                                 \
    ::qpad::detail::panicImpl(__FILE__, __LINE__,                       \
                              ::qpad::detail::concat(__VA_ARGS__))

/**
 * Exit with an error message. Use for conditions caused by the
 * caller (bad configuration, malformed input files, ...).
 */
#define qpad_fatal(...)                                                 \
    ::qpad::detail::fatalImpl(__FILE__, __LINE__,                       \
                              ::qpad::detail::concat(__VA_ARGS__))

/** Non-fatal warning on stderr. */
#define qpad_warn(...)                                                  \
    ::qpad::detail::warnImpl(::qpad::detail::concat(__VA_ARGS__))

/** Informational message on stderr. */
#define qpad_inform(...)                                                \
    ::qpad::detail::informImpl(::qpad::detail::concat(__VA_ARGS__))

/** panic() unless the condition holds. */
#define qpad_assert(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::qpad::detail::panicImpl(__FILE__, __LINE__,               \
                ::qpad::detail::concat("assertion '" #cond "' failed: ",\
                                       ##__VA_ARGS__));                 \
        }                                                               \
    } while (0)

} // namespace qpad

#endif // QPAD_COMMON_LOGGING_HH

/**
 * @file
 * Legacy status-message and error-reporting macros.
 *
 * Follows the gem5 convention: panic() for internal invariant
 * violations (library bugs), fatal() for user errors that make
 * continuing impossible, warn()/inform() for non-fatal diagnostics.
 *
 * These are now thin shims over the structured logger (obs/log.hh):
 * every macro forwards to obs::log as a `log.*` event (honouring
 * QPAD_LOG destination/format/level and carrying the current request
 * id), and panic/fatal still throw std::logic_error /
 * std::runtime_error after logging. New code should emit structured
 * events directly — obs::logWarn("cache.open_failed", {...}) beats
 * qpad_warn("cache: cannot open ...") — these macros exist for the
 * concat-style call sites and for the assert/panic/fatal throw
 * semantics the tests pin.
 */

#ifndef QPAD_COMMON_LOGGING_HH
#define QPAD_COMMON_LOGGING_HH

#include <sstream>
#include <string>
#include <utility>

namespace qpad
{

namespace detail
{

/** Stream a pack of arguments into a single string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

// Implemented in obs/log.cc: each forwards to the structured logger.
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Globally silence everything below error (used by quiet benches);
 * maps onto the obs::log threshold without touching the configured
 * minimum level. */
void setQuiet(bool quiet);
bool isQuiet();

} // namespace detail

/**
 * Abort with a message. Use for conditions that indicate a bug in
 * qpad itself, never for bad user input.
 */
#define qpad_panic(...)                                                 \
    ::qpad::detail::panicImpl(__FILE__, __LINE__,                       \
                              ::qpad::detail::concat(__VA_ARGS__))

/**
 * Exit with an error message. Use for conditions caused by the
 * caller (bad configuration, malformed input files, ...).
 */
#define qpad_fatal(...)                                                 \
    ::qpad::detail::fatalImpl(__FILE__, __LINE__,                       \
                              ::qpad::detail::concat(__VA_ARGS__))

/** Non-fatal warning (a `log.warn` structured event). */
#define qpad_warn(...)                                                  \
    ::qpad::detail::warnImpl(::qpad::detail::concat(__VA_ARGS__))

/** Informational message (a `log.info` structured event). */
#define qpad_inform(...)                                                \
    ::qpad::detail::informImpl(::qpad::detail::concat(__VA_ARGS__))

/** panic() unless the condition holds. */
#define qpad_assert(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::qpad::detail::panicImpl(__FILE__, __LINE__,               \
                ::qpad::detail::concat("assertion '" #cond "' failed: ",\
                                       ##__VA_ARGS__));                 \
        }                                                               \
    } while (0)

} // namespace qpad

#endif // QPAD_COMMON_LOGGING_HH

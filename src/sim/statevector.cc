#include "sim/statevector.hh"

#include <cmath>
#include <numbers>

#include "common/logging.hh"
#include "common/rng.hh"

namespace qpad::sim
{

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using circuit::Qubit;

namespace
{

constexpr Amplitude kI{0.0, 1.0};

/** 2x2 matrix for a single-qubit gate kind. */
void
matrixFor(const Gate &g, Amplitude m[2][2])
{
    auto set = [&](Amplitude a, Amplitude b, Amplitude c, Amplitude d) {
        m[0][0] = a;
        m[0][1] = b;
        m[1][0] = c;
        m[1][1] = d;
    };
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    switch (g.kind) {
      case GateKind::I:
        set(1, 0, 0, 1);
        return;
      case GateKind::X:
        set(0, 1, 1, 0);
        return;
      case GateKind::Y:
        set(0, -kI, kI, 0);
        return;
      case GateKind::Z:
        set(1, 0, 0, -1);
        return;
      case GateKind::H:
        set(inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2);
        return;
      case GateKind::S:
        set(1, 0, 0, kI);
        return;
      case GateKind::Sdg:
        set(1, 0, 0, -kI);
        return;
      case GateKind::T:
        set(1, 0, 0, std::exp(kI * (std::numbers::pi / 4)));
        return;
      case GateKind::Tdg:
        set(1, 0, 0, std::exp(-kI * (std::numbers::pi / 4)));
        return;
      case GateKind::SX:
        set(Amplitude(0.5, 0.5), Amplitude(0.5, -0.5),
            Amplitude(0.5, -0.5), Amplitude(0.5, 0.5));
        return;
      case GateKind::SXdg:
        set(Amplitude(0.5, -0.5), Amplitude(0.5, 0.5),
            Amplitude(0.5, 0.5), Amplitude(0.5, -0.5));
        return;
      case GateKind::RX: {
        double t = g.params[0] / 2;
        set(std::cos(t), -kI * std::sin(t), -kI * std::sin(t),
            std::cos(t));
        return;
      }
      case GateKind::RY: {
        double t = g.params[0] / 2;
        set(std::cos(t), -std::sin(t), std::sin(t), std::cos(t));
        return;
      }
      case GateKind::RZ: {
        double t = g.params[0] / 2;
        set(std::exp(-kI * t), 0, 0, std::exp(kI * t));
        return;
      }
      case GateKind::P:
      case GateKind::U1:
        set(1, 0, 0, std::exp(kI * g.params[0]));
        return;
      case GateKind::U2: {
        double phi = g.params[0], lam = g.params[1];
        set(inv_sqrt2, -std::exp(kI * lam) * inv_sqrt2,
            std::exp(kI * phi) * inv_sqrt2,
            std::exp(kI * (phi + lam)) * inv_sqrt2);
        return;
      }
      case GateKind::U3: {
        double theta = g.params[0] / 2;
        double phi = g.params[1], lam = g.params[2];
        set(std::cos(theta), -std::exp(kI * lam) * std::sin(theta),
            std::exp(kI * phi) * std::sin(theta),
            std::exp(kI * (phi + lam)) * std::cos(theta));
        return;
      }
      default:
        qpad_panic("matrixFor: not a single-qubit unitary: ",
                   g.str());
    }
}

} // namespace

StateVector::StateVector(std::size_t num_qubits)
    : num_qubits_(num_qubits),
      amps_(std::size_t{1} << num_qubits, Amplitude{0.0, 0.0})
{
    qpad_assert(num_qubits <= 26, "state vector too large");
    amps_[0] = 1.0;
}

StateVector
StateVector::basis(std::size_t num_qubits, uint64_t bits)
{
    StateVector sv(num_qubits);
    sv.amps_[0] = 0.0;
    qpad_assert(bits < sv.amps_.size(), "basis state out of range");
    sv.amps_[bits] = 1.0;
    return sv;
}

StateVector
StateVector::random(std::size_t num_qubits, uint64_t seed)
{
    StateVector sv(num_qubits);
    Rng rng(seed);
    double norm2 = 0.0;
    for (auto &a : sv.amps_) {
        a = Amplitude(rng.gaussian(), rng.gaussian());
        norm2 += std::norm(a);
    }
    double scale = 1.0 / std::sqrt(norm2);
    for (auto &a : sv.amps_)
        a *= scale;
    return sv;
}

Amplitude
StateVector::amp(uint64_t basis_state) const
{
    qpad_assert(basis_state < amps_.size(), "basis state out of range");
    return amps_[basis_state];
}

void
StateVector::apply1q(Qubit q, const Amplitude m[2][2])
{
    const uint64_t bit = uint64_t{1} << q;
    for (uint64_t s = 0; s < amps_.size(); ++s) {
        if (s & bit)
            continue;
        Amplitude a0 = amps_[s];
        Amplitude a1 = amps_[s | bit];
        amps_[s] = m[0][0] * a0 + m[0][1] * a1;
        amps_[s | bit] = m[1][0] * a0 + m[1][1] * a1;
    }
}

void
StateVector::applyControlled1q(const std::vector<Qubit> &controls,
                               Qubit target, const Amplitude m[2][2])
{
    uint64_t cmask = 0;
    for (Qubit c : controls)
        cmask |= uint64_t{1} << c;
    const uint64_t bit = uint64_t{1} << target;
    for (uint64_t s = 0; s < amps_.size(); ++s) {
        if ((s & bit) || (s & cmask) != cmask)
            continue;
        Amplitude a0 = amps_[s];
        Amplitude a1 = amps_[s | bit];
        amps_[s] = m[0][0] * a0 + m[0][1] * a1;
        amps_[s | bit] = m[1][0] * a0 + m[1][1] * a1;
    }
}

void
StateVector::applySwap(Qubit a, Qubit b)
{
    const uint64_t ba = uint64_t{1} << a;
    const uint64_t bb = uint64_t{1} << b;
    for (uint64_t s = 0; s < amps_.size(); ++s)
        if ((s & ba) && !(s & bb))
            std::swap(amps_[s], amps_[(s ^ ba) | bb]);
}

void
StateVector::apply(const Gate &g)
{
    static const Amplitude x_matrix[2][2] = {{0, 1}, {1, 0}};
    switch (g.kind) {
      case GateKind::Barrier:
        return;
      case GateKind::Measure:
      case GateKind::Reset:
        qpad_panic("StateVector::apply: non-unitary gate ", g.str());
      case GateKind::CX:
        applyControlled1q({g.qubits[0]}, g.qubits[1], x_matrix);
        return;
      case GateKind::CZ: {
        const Amplitude z_matrix[2][2] = {{1, 0}, {0, -1}};
        applyControlled1q({g.qubits[0]}, g.qubits[1], z_matrix);
        return;
      }
      case GateKind::CP: {
        const Amplitude p_matrix[2][2] = {
            {1, 0}, {0, std::exp(kI * g.params[0])}};
        applyControlled1q({g.qubits[0]}, g.qubits[1], p_matrix);
        return;
      }
      case GateKind::CRZ: {
        double t = g.params[0] / 2;
        const Amplitude rz_matrix[2][2] = {
            {std::exp(-kI * t), 0}, {0, std::exp(kI * t)}};
        applyControlled1q({g.qubits[0]}, g.qubits[1], rz_matrix);
        return;
      }
      case GateKind::SWAP:
        applySwap(g.qubits[0], g.qubits[1]);
        return;
      case GateKind::RZZ: {
        // diag(e^{-it/2}, e^{it/2}, e^{it/2}, e^{-it/2}).
        double t = g.params[0] / 2;
        const uint64_t ba = uint64_t{1} << g.qubits[0];
        const uint64_t bb = uint64_t{1} << g.qubits[1];
        for (uint64_t s = 0; s < amps_.size(); ++s) {
            bool parity = bool(s & ba) != bool(s & bb);
            amps_[s] *= std::exp((parity ? kI : -kI) * t);
        }
        return;
      }
      case GateKind::CCX:
        applyControlled1q({g.qubits[0], g.qubits[1]}, g.qubits[2],
                          x_matrix);
        return;
      case GateKind::CSWAP: {
        // Swap targets iff the control is set.
        const uint64_t bc = uint64_t{1} << g.qubits[0];
        const uint64_t ba = uint64_t{1} << g.qubits[1];
        const uint64_t bb = uint64_t{1} << g.qubits[2];
        for (uint64_t s = 0; s < amps_.size(); ++s)
            if ((s & bc) && (s & ba) && !(s & bb))
                std::swap(amps_[s], amps_[(s ^ ba) | bb]);
        return;
      }
      default: {
        Amplitude m[2][2];
        matrixFor(g, m);
        apply1q(g.qubits[0], m);
        return;
      }
    }
}

void
StateVector::applyCircuit(const Circuit &circuit,
                          bool skip_measurements)
{
    qpad_assert(circuit.numQubits() <= num_qubits_,
                "circuit wider than state vector");
    for (const Gate &g : circuit.gates()) {
        if (g.kind == GateKind::Measure && skip_measurements)
            continue;
        apply(g);
    }
}

double
StateVector::probabilityOne(Qubit q) const
{
    const uint64_t bit = uint64_t{1} << q;
    double p = 0.0;
    for (uint64_t s = 0; s < amps_.size(); ++s)
        if (s & bit)
            p += std::norm(amps_[s]);
    return p;
}

double
StateVector::fidelity(const StateVector &other) const
{
    qpad_assert(other.amps_.size() == amps_.size(),
                "fidelity of mismatched widths");
    Amplitude overlap{0.0, 0.0};
    for (uint64_t s = 0; s < amps_.size(); ++s)
        overlap += std::conj(amps_[s]) * other.amps_[s];
    return std::norm(overlap);
}

double
StateVector::norm() const
{
    double n = 0.0;
    for (const auto &a : amps_)
        n += std::norm(a);
    return n;
}

StateVector
StateVector::permuted(const std::vector<uint32_t> &perm) const
{
    qpad_assert(perm.size() == num_qubits_, "bad permutation size");
    StateVector out(num_qubits_);
    out.amps_.assign(amps_.size(), Amplitude{0.0, 0.0});
    for (uint64_t s = 0; s < amps_.size(); ++s) {
        uint64_t t = 0;
        for (std::size_t q = 0; q < num_qubits_; ++q)
            if (s >> q & 1)
                t |= uint64_t{1} << perm[q];
        out.amps_[t] = amps_[s];
    }
    return out;
}

} // namespace qpad::sim

/**
 * @file
 * Dense state-vector simulator.
 *
 * Used as the ground-truth oracle in the test suite: composite-gate
 * lowering, the reversible synthesizer's T-gate Toffoli networks and
 * the SABRE mapper are all checked for *quantum* equivalence (up to
 * global phase and the mapper's qubit relabeling), not just for the
 * classical permutation semantics. Practical up to ~20 qubits.
 */

#ifndef QPAD_SIM_STATEVECTOR_HH
#define QPAD_SIM_STATEVECTOR_HH

#include <complex>
#include <cstdint>
#include <vector>

#include "circuit/circuit.hh"

namespace qpad::sim
{

using Amplitude = std::complex<double>;

/** 2^n complex amplitudes over n qubits (qubit 0 = LSB). */
class StateVector
{
  public:
    /** |0...0> over n qubits. */
    explicit StateVector(std::size_t num_qubits);

    /** Computational basis state |bits>. */
    static StateVector basis(std::size_t num_qubits, uint64_t bits);

    /** Haar-ish random normalized state (deterministic by seed). */
    static StateVector random(std::size_t num_qubits, uint64_t seed);

    std::size_t numQubits() const { return num_qubits_; }
    std::size_t size() const { return amps_.size(); }

    Amplitude amp(uint64_t basis_state) const;

    /** Apply one unitary gate (Measure/Reset are fatal; Barrier is
     * a no-op). */
    void apply(const circuit::Gate &gate);

    /**
     * Apply a circuit's unitary part. Measurements are skipped when
     * skip_measurements is true and fatal otherwise.
     */
    void applyCircuit(const circuit::Circuit &circuit,
                      bool skip_measurements = true);

    /** Probability of measuring qubit q as 1. */
    double probabilityOne(circuit::Qubit q) const;

    /** |<this|other>|^2 — 1.0 means equal up to global phase. */
    double fidelity(const StateVector &other) const;

    /** Squared norm (should stay 1 within numerical error). */
    double norm() const;

    /**
     * Relabeled copy: qubit q of *this* becomes qubit perm[q] of the
     * result. perm must be a permutation of [0, numQubits).
     */
    StateVector permuted(const std::vector<uint32_t> &perm) const;

  private:
    std::size_t num_qubits_;
    std::vector<Amplitude> amps_;

    void apply1q(circuit::Qubit q, const Amplitude m[2][2]);
    void applyControlled1q(const std::vector<circuit::Qubit> &controls,
                           circuit::Qubit target,
                           const Amplitude m[2][2]);
    void applySwap(circuit::Qubit a, circuit::Qubit b);
};

} // namespace qpad::sim

#endif // QPAD_SIM_STATEVECTOR_HH

/**
 * @file
 * Temporal program profiling (paper Section 6, "Improving Profiling
 * Method"): the plain coupling strength matrix discards *when* two
 * qubits interact. This extension slices the circuit into windows
 * and keeps one strength matrix per window, enabling
 *  - time-weighted aggregate profiles (early interactions matter
 *    more to the initial mapping, so they get a higher weight), and
 *  - interaction-locality statistics.
 */

#ifndef QPAD_PROFILE_TEMPORAL_HH
#define QPAD_PROFILE_TEMPORAL_HH

#include "profile/coupling.hh"

namespace qpad::profile
{

/** Per-window coupling data. */
struct TemporalWindow
{
    /** First and one-past-last gate index of the window. */
    std::size_t begin = 0;
    std::size_t end = 0;
    /** Two-qubit gate counts within the window. */
    SymMatrix<uint32_t> strength;
    std::size_t two_qubit_gates = 0;
};

/** Time-sliced profile. */
struct TemporalProfile
{
    std::size_t num_qubits = 0;
    std::vector<TemporalWindow> windows;

    /**
     * Collapse to a standard CouplingProfile where window w's gates
     * are scaled by round(scale * decay^w): decay < 1 emphasizes
     * early program phases; decay = 1 reproduces plain profiling
     * (up to the integer scale factor).
     */
    CouplingProfile weighted(double decay, uint32_t scale = 16) const;

    /**
     * Fraction of two-qubit gates whose qubit pair already appeared
     * in an earlier window (temporal re-use; 1.0 means the coupling
     * set is static over time).
     */
    double pairReuse() const;
};

/**
 * Profile a circuit into `num_windows` equal gate-count slices.
 */
TemporalProfile profileTemporal(const circuit::Circuit &circuit,
                                std::size_t num_windows = 8);

} // namespace qpad::profile

#endif // QPAD_PROFILE_TEMPORAL_HH

#include "profile/coupling.hh"

#include <algorithm>
#include <functional>
#include <iomanip>
#include <numeric>
#include <sstream>

#include "common/logging.hh"

namespace qpad::profile
{

using circuit::Qubit;

std::vector<std::pair<Qubit, Qubit>>
CouplingProfile::edges() const
{
    std::vector<std::pair<Qubit, Qubit>> out;
    for (std::size_t i = 0; i < num_qubits; ++i)
        for (std::size_t j = i + 1; j < num_qubits; ++j)
            if (strength(i, j) > 0)
                out.emplace_back(static_cast<Qubit>(i),
                                 static_cast<Qubit>(j));
    return out;
}

bool
CouplingProfile::isChain() const
{
    // A union of simple paths: every vertex has <= 2 neighbours and
    // there are no cycles (checked with union-find).
    std::vector<std::size_t> parent(num_qubits);
    std::iota(parent.begin(), parent.end(), 0);
    std::function<std::size_t(std::size_t)> find =
        [&](std::size_t x) {
            while (parent[x] != x)
                x = parent[x] = parent[parent[x]];
            return x;
        };

    std::vector<unsigned> neighbor_count(num_qubits, 0);
    for (auto [i, j] : edges()) {
        if (++neighbor_count[i] > 2 || ++neighbor_count[j] > 2)
            return false;
        std::size_t ri = find(i), rj = find(j);
        if (ri == rj)
            return false; // cycle
        parent[ri] = rj;
    }
    return true;
}

std::string
CouplingProfile::strengthTable() const
{
    std::ostringstream out;
    unsigned width = 1;
    for (std::size_t i = 0; i < num_qubits; ++i)
        for (std::size_t j = 0; j < num_qubits; ++j)
            width = std::max(width, unsigned(
                std::to_string(strength(i, j)).size()));
    out << std::setw(width + 3) << " ";
    for (std::size_t j = 0; j < num_qubits; ++j)
        out << std::setw(width + 1) << j;
    out << "\n";
    for (std::size_t i = 0; i < num_qubits; ++i) {
        out << "q" << std::setw(width + 1) << std::left << i
            << std::right << " ";
        for (std::size_t j = 0; j < num_qubits; ++j)
            out << std::setw(width + 1) << strength(i, j);
        out << "\n";
    }
    return out.str();
}

CouplingProfile
profileCircuit(const circuit::Circuit &circuit)
{
    CouplingProfile prof;
    prof.num_qubits = circuit.numQubits();
    prof.strength = SymMatrix<uint32_t>(prof.num_qubits, 0);
    prof.degrees.assign(prof.num_qubits, 0);

    for (const auto &g : circuit.gates()) {
        if (!g.isTwoQubit())
            continue; // single-qubit gates, measure, etc. are ignored
        Qubit a = g.qubits[0], b = g.qubits[1];
        ++prof.strength.at(a, b);
        ++prof.degrees[a];
        ++prof.degrees[b];
        ++prof.total_two_qubit_gates;
    }

    prof.degree_list.resize(prof.num_qubits);
    std::iota(prof.degree_list.begin(), prof.degree_list.end(), 0);
    std::stable_sort(prof.degree_list.begin(), prof.degree_list.end(),
                     [&](Qubit a, Qubit b) {
                         return prof.degrees[a] > prof.degrees[b];
                     });
    return prof;
}

} // namespace qpad::profile

#include "profile/temporal.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "common/logging.hh"

namespace qpad::profile
{

using circuit::Qubit;

CouplingProfile
TemporalProfile::weighted(double decay, uint32_t scale) const
{
    qpad_assert(decay > 0.0 && decay <= 1.0,
                "decay must be in (0, 1]");
    CouplingProfile prof;
    prof.num_qubits = num_qubits;
    prof.strength = SymMatrix<uint32_t>(num_qubits, 0);
    prof.degrees.assign(num_qubits, 0);

    double window_weight = double(scale);
    for (const TemporalWindow &w : windows) {
        uint32_t factor =
            std::max<uint32_t>(1, uint32_t(std::lround(window_weight)));
        for (std::size_t i = 0; i < num_qubits; ++i) {
            for (std::size_t j = i + 1; j < num_qubits; ++j) {
                uint32_t gates = w.strength(i, j);
                if (gates == 0)
                    continue;
                uint32_t add = gates * factor;
                prof.strength.at(i, j) += add;
                prof.degrees[i] += add;
                prof.degrees[j] += add;
                prof.total_two_qubit_gates += gates;
            }
        }
        window_weight *= decay;
    }

    prof.degree_list.resize(num_qubits);
    std::iota(prof.degree_list.begin(), prof.degree_list.end(), 0);
    std::stable_sort(prof.degree_list.begin(), prof.degree_list.end(),
                     [&](Qubit a, Qubit b) {
                         return prof.degrees[a] > prof.degrees[b];
                     });
    return prof;
}

double
TemporalProfile::pairReuse() const
{
    std::set<std::pair<std::size_t, std::size_t>> seen;
    std::size_t reused = 0, total = 0;
    for (const TemporalWindow &w : windows) {
        std::set<std::pair<std::size_t, std::size_t>> fresh;
        for (std::size_t i = 0; i < num_qubits; ++i) {
            for (std::size_t j = i + 1; j < num_qubits; ++j) {
                std::size_t gates = w.strength(i, j);
                if (gates == 0)
                    continue;
                total += gates;
                if (seen.count({i, j}))
                    reused += gates;
                else
                    fresh.insert({i, j});
            }
        }
        seen.insert(fresh.begin(), fresh.end());
    }
    return total == 0 ? 0.0 : double(reused) / double(total);
}

TemporalProfile
profileTemporal(const circuit::Circuit &circuit,
                std::size_t num_windows)
{
    qpad_assert(num_windows >= 1, "need at least one window");
    TemporalProfile prof;
    prof.num_qubits = circuit.numQubits();

    // Collect the two-qubit gates in program order.
    std::vector<std::pair<Qubit, Qubit>> pairs;
    for (const auto &g : circuit.gates())
        if (g.isTwoQubit())
            pairs.emplace_back(g.qubits[0], g.qubits[1]);

    const std::size_t per_window =
        std::max<std::size_t>(1, (pairs.size() + num_windows - 1) /
                                     num_windows);
    for (std::size_t start = 0; start < pairs.size();
         start += per_window) {
        TemporalWindow window;
        window.begin = start;
        window.end = std::min(pairs.size(), start + per_window);
        window.strength = SymMatrix<uint32_t>(prof.num_qubits, 0);
        for (std::size_t k = start; k < window.end; ++k) {
            ++window.strength.at(pairs[k].first, pairs[k].second);
            ++window.two_qubit_gates;
        }
        prof.windows.push_back(std::move(window));
    }
    if (prof.windows.empty()) {
        TemporalWindow empty;
        empty.strength = SymMatrix<uint32_t>(prof.num_qubits, 0);
        prof.windows.push_back(std::move(empty));
    }
    return prof;
}

} // namespace qpad::profile

/**
 * @file
 * Architecture-design-oriented program profiling (paper Section 3).
 *
 * The profiler ignores single-qubit gates, initialization and
 * measurement (they do not interact with qubit connections) and
 * summarizes the two-qubit gates of a program into:
 *  - the coupling strength matrix: entry (i, j) counts the two-qubit
 *    gates applied to logical qubits i and j, and
 *  - the coupling degree list: qubits sorted by the total number of
 *    two-qubit gates they participate in, descending.
 */

#ifndef QPAD_PROFILE_COUPLING_HH
#define QPAD_PROFILE_COUPLING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.hh"
#include "common/sym_matrix.hh"

namespace qpad::profile
{

/** Profiling result for one program. */
struct CouplingProfile
{
    std::size_t num_qubits = 0;

    /** Symmetric matrix of two-qubit gate counts per qubit pair. */
    SymMatrix<uint32_t> strength;

    /** Coupling degree per qubit (sum of incident edge weights). */
    std::vector<uint32_t> degrees;

    /** Qubits sorted by degree, descending (ties: smaller id first). */
    std::vector<circuit::Qubit> degree_list;

    /** Total number of two-qubit gates in the program. */
    std::size_t total_two_qubit_gates = 0;

    /** Logical coupling-graph edges (i < j with strength > 0). */
    std::vector<std::pair<circuit::Qubit, circuit::Qubit>> edges() const;

    /** True if the coupling graph is a disjoint union of paths. */
    bool isChain() const;

    /** Render the strength matrix as an aligned text table. */
    std::string strengthTable() const;
};

/** Profile a circuit (Figure 4's procedure). */
CouplingProfile profileCircuit(const circuit::Circuit &circuit);

} // namespace qpad::profile

#endif // QPAD_PROFILE_COUPLING_HH

#include "mapping/schedule.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"

namespace qpad::mapping
{

using arch::Architecture;
using arch::PhysQubit;
using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

std::vector<std::size_t>
busOfEdge(const Architecture &arch)
{
    const auto &edges = arch.edges();
    std::map<std::pair<PhysQubit, PhysQubit>, std::size_t> edge_index;
    for (std::size_t i = 0; i < edges.size(); ++i)
        edge_index[edges[i]] = i;

    std::vector<std::size_t> bus(edges.size(), SIZE_MAX);
    std::size_t next_bus = 0;

    // 4-qubit buses first: every coupled pair among a square's
    // corners shares the square's resonator.
    for (const auto &origin : arch.fourQubitBuses()) {
        std::vector<PhysQubit> corners;
        for (int dr = 0; dr <= 1; ++dr)
            for (int dc = 0; dc <= 1; ++dc)
                if (auto q =
                        arch.layout().qubitAt(origin.offset(dr, dc)))
                    corners.push_back(*q);
        std::size_t bus_id = next_bus++;
        for (std::size_t x = 0; x < corners.size(); ++x) {
            for (std::size_t y = x + 1; y < corners.size(); ++y) {
                auto key = std::minmax(corners[x], corners[y]);
                auto it = edge_index.find(
                    {key.first, key.second});
                if (it != edge_index.end())
                    bus[it->second] = bus_id;
            }
        }
    }
    // Remaining edges are plain 2-qubit buses.
    for (auto &b : bus)
        if (b == SIZE_MAX)
            b = next_bus++;
    return bus;
}

ScheduleResult
scheduleCircuit(const Circuit &mapped, const Architecture &arch,
                const ScheduleOptions &options)
{
    const auto &edges = arch.edges();
    std::map<std::pair<PhysQubit, PhysQubit>, std::size_t> edge_index;
    for (std::size_t i = 0; i < edges.size(); ++i)
        edge_index[edges[i]] = i;
    std::vector<std::size_t> bus = busOfEdge(arch);

    std::size_t num_buses = 0;
    for (auto b : bus)
        num_buses = std::max(num_buses, b + 1);

    std::vector<std::size_t> qubit_free(arch.numQubits(), 0);
    std::vector<std::size_t> bus_free(num_buses, 0);

    ScheduleResult result;
    result.start.resize(mapped.size(), 0);

    std::size_t busy_cycles_weighted = 0; // sum of gate durations

    for (std::size_t id = 0; id < mapped.size(); ++id) {
        const Gate &g = mapped.gate(id);
        if (g.kind == GateKind::Barrier) {
            std::size_t level = 0;
            for (auto f : qubit_free)
                level = std::max(level, f);
            std::fill(qubit_free.begin(), qubit_free.end(), level);
            result.start[id] = level;
            continue;
        }

        unsigned duration = options.cycles_1q;
        if (g.isTwoQubit())
            duration = options.cycles_2q;
        else if (g.kind == GateKind::Measure)
            duration = options.cycles_measure;

        std::size_t earliest = 0;
        for (auto q : g.qubits)
            earliest = std::max(earliest, qubit_free[q]);

        std::size_t bus_id = SIZE_MAX;
        if (g.isTwoQubit()) {
            auto key = std::minmax(g.qubits[0], g.qubits[1]);
            auto it = edge_index.find({key.first, key.second});
            qpad_assert(it != edge_index.end(),
                        "schedule: gate ", g.str(),
                        " does not respect the coupling graph");
            bus_id = bus[it->second];
            if (bus_free[bus_id] > earliest) {
                result.bus_stall_cycles +=
                    bus_free[bus_id] - earliest;
                earliest = bus_free[bus_id];
            }
        }

        result.start[id] = earliest;
        std::size_t done = earliest + duration;
        for (auto q : g.qubits)
            qubit_free[q] = done;
        if (bus_id != SIZE_MAX)
            bus_free[bus_id] = done;
        result.makespan = std::max(result.makespan, done);
        busy_cycles_weighted += duration;
    }

    // Parallelism statistics via a sweep over the schedule.
    if (result.makespan > 0) {
        std::vector<int> in_flight(result.makespan + 1, 0);
        for (std::size_t id = 0; id < mapped.size(); ++id) {
            const Gate &g = mapped.gate(id);
            if (g.kind == GateKind::Barrier)
                continue;
            unsigned duration = options.cycles_1q;
            if (g.isTwoQubit())
                duration = options.cycles_2q;
            else if (g.kind == GateKind::Measure)
                duration = options.cycles_measure;
            for (std::size_t t = result.start[id];
                 t < result.start[id] + duration; ++t)
                ++in_flight[t];
        }
        std::size_t busy = 0;
        for (std::size_t t = 0; t < result.makespan; ++t) {
            if (in_flight[t] >= 2)
                ++result.parallel_cycles;
            if (in_flight[t] >= 1)
                ++busy;
        }
        if (busy > 0)
            result.parallelism =
                double(busy_cycles_weighted) / double(busy);
    }
    return result;
}

} // namespace qpad::mapping

/**
 * @file
 * SABRE-style qubit mapping (Li, Ding, Xie, ASPLOS 2019 — reference
 * [18] of the reproduced paper, the mapper its evaluation uses).
 *
 * The mapper consists of
 *  - a swap-based heuristic router: gates whose operands are mapped
 *    to connected physical qubits execute immediately; otherwise the
 *    SWAP minimizing a distance + lookahead + decay cost is inserted
 *    (each SWAP lowers to three CX in the gate-count metric), and
 *  - an initial-mapping search: forward and backward routing passes
 *    over the circuit refine the initial layout (the "reverse
 *    traversal" trick of the SABRE paper).
 */

#ifndef QPAD_MAPPING_SABRE_HH
#define QPAD_MAPPING_SABRE_HH

#include <cstdint>
#include <vector>

#include "arch/architecture.hh"
#include "circuit/circuit.hh"

namespace qpad::mapping
{

/** Heuristic knobs (defaults follow the SABRE paper). */
struct MappingOptions
{
    /** Weight of the lookahead (extended) set in the cost. */
    double extended_weight = 0.5;
    /** Max two-qubit gates collected into the extended set. */
    std::size_t extended_set_size = 20;
    /** Additive decay applied to recently swapped qubits. */
    double decay_delta = 0.001;
    /** Forward-backward refinement rounds for the initial mapping. */
    unsigned initial_mapping_rounds = 3;
    /** Use the SABRE reverse-traversal initial mapping search. */
    bool sabre_initial_mapping = true;
    /** Seed for the randomized starting permutation. */
    uint64_t seed = 7;
};

/** Outcome of mapping one circuit onto one architecture. */
struct MappingResult
{
    /** Physical-level circuit (CX respect the coupling graph). */
    circuit::Circuit mapped;
    /** logical -> physical assignment before the first gate. */
    std::vector<arch::PhysQubit> initial_mapping;
    /** logical -> physical assignment after the last gate. */
    std::vector<arch::PhysQubit> final_mapping;
    /** SWAPs inserted by routing. */
    std::size_t swaps = 0;
    /** Post-mapping gate count: unitary gates incl. 3 CX per SWAP. */
    std::size_t total_gates = 0;
    /** Post-mapping two-qubit gate count. */
    std::size_t two_qubit_gates = 0;
};

/**
 * Map a {1q, CX} circuit onto an architecture.
 *
 * @pre circuit.numQubits() <= arch.numQubits() and the architecture
 *      coupling graph is connected.
 */
MappingResult mapCircuit(const circuit::Circuit &circuit,
                         const arch::Architecture &arch,
                         const MappingOptions &options = {});

/**
 * Check that every CX of a mapped circuit respects the coupling
 * graph (verification helper for tests).
 */
bool respectsCoupling(const circuit::Circuit &mapped,
                      const arch::Architecture &arch);

} // namespace qpad::mapping

#endif // QPAD_MAPPING_SABRE_HH

/**
 * @file
 * Cycle-accurate-ish ASAP scheduling of mapped circuits with bus
 * contention.
 *
 * The post-mapping gate count (the paper's performance metric)
 * ignores parallelism. This module adds an execution-time view: a
 * greedy ASAP list scheduler where every gate occupies its qubits
 * for a configurable duration and every two-qubit gate additionally
 * occupies its *bus* (resonator). All qubit pairs served by one
 * 4-qubit bus share a single resonator, so gates inside one square
 * serialize even on disjoint qubit pairs — the microarchitectural
 * cost of 4-qubit buses that the gate-count metric cannot see.
 */

#ifndef QPAD_MAPPING_SCHEDULE_HH
#define QPAD_MAPPING_SCHEDULE_HH

#include <cstdint>
#include <vector>

#include "arch/architecture.hh"
#include "circuit/circuit.hh"

namespace qpad::mapping
{

/** Gate durations in cycles. */
struct ScheduleOptions
{
    unsigned cycles_1q = 1;
    unsigned cycles_2q = 2;
    unsigned cycles_measure = 5;
};

/** Scheduling outcome. */
struct ScheduleResult
{
    /** Total execution time in cycles (makespan). */
    std::size_t makespan = 0;
    /** Start cycle per gate (index-aligned with the circuit). */
    std::vector<std::size_t> start;
    /** Cycles during which >= 2 gates were in flight. */
    std::size_t parallel_cycles = 0;
    /** Extra start-delay cycles attributable to bus contention. */
    std::size_t bus_stall_cycles = 0;

    /** Average in-flight gates per busy cycle. */
    double parallelism = 0.0;
};

/**
 * Schedule a mapped circuit on its architecture.
 *
 * @pre every two-qubit gate of the circuit respects the coupling
 *      graph (i.e. the circuit came out of mapCircuit).
 */
ScheduleResult scheduleCircuit(const circuit::Circuit &mapped,
                               const arch::Architecture &arch,
                               const ScheduleOptions &options = {});

/**
 * Bus id for each coupling-graph edge: edges served by a 4-qubit
 * bus share that square's id; every other edge gets its own id.
 * Returned map is keyed by edge index into arch.edges().
 */
std::vector<std::size_t> busOfEdge(const arch::Architecture &arch);

} // namespace qpad::mapping

#endif // QPAD_MAPPING_SCHEDULE_HH

#include "mapping/sabre.hh"

#include <algorithm>
#include <limits>
#include <numeric>

#include "circuit/dag.hh"
#include "circuit/decompose.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace qpad::mapping
{

using arch::PhysQubit;
using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using circuit::Qubit;

namespace
{

/**
 * One routing pass. Works over an "extended" logical space the size
 * of the chip: logical ids >= circuit width are dummies occupying
 * the spare physical qubits so SWAPs stay a permutation.
 */
class Router
{
  public:
    Router(const arch::Architecture &arch, const MappingOptions &options)
        : arch_(arch), options_(options), dist_(arch.distances())
    {
    }

    struct PassResult
    {
        std::vector<PhysQubit> final_l2p;
        std::size_t swaps = 0;
        std::vector<Gate> gates; // only filled when recording
    };

    /**
     * Route `circ` starting from logical->physical map l2p
     * (size = chip size; entries past circ.numQubits() are dummies).
     */
    PassResult
    route(const Circuit &circ, std::vector<PhysQubit> l2p, bool record)
    {
        const std::size_t n_phys = arch_.numQubits();
        qpad_assert(l2p.size() == n_phys, "l2p must cover the chip");

        std::vector<Qubit> p2l(n_phys);
        for (Qubit l = 0; l < l2p.size(); ++l)
            p2l[l2p[l]] = l;

        circuit::DependencyDag dag(circ);
        std::vector<std::size_t> indeg = dag.indegrees();
        std::vector<std::size_t> front = dag.roots();

        PassResult result;
        std::vector<double> decay(n_phys, 1.0);

        auto release = [&](std::size_t id) {
            for (std::size_t succ : dag.successors(id))
                if (--indeg[succ] == 0)
                    front.push_back(succ);
        };

        auto emit = [&](const Gate &g) {
            if (record)
                result.gates.push_back(g);
        };

        std::size_t executed = 0;
        std::size_t stall_guard = 0;
        const std::size_t max_swaps =
            1000 + 20 * circ.size() * (n_phys + 1);

        while (!front.empty()) {
            // Execute everything executable in the current front.
            bool progress = true;
            while (progress) {
                progress = false;
                std::vector<std::size_t> still_blocked;
                // Index loop: release() appends newly ready gates to
                // `front`, and they are picked up in the same sweep.
                for (std::size_t idx = 0; idx < front.size(); ++idx) {
                    std::size_t id = front[idx];
                    const Gate &g = circ.gate(id);
                    if (executable(g, l2p)) {
                        Gate phys = g;
                        for (auto &q : phys.qubits)
                            q = l2p[q];
                        emit(phys);
                        release(id);
                        ++executed;
                        progress = true;
                        // Executing a gate resets the decay window.
                        std::fill(decay.begin(), decay.end(), 1.0);
                    } else {
                        still_blocked.push_back(id);
                    }
                }
                front = std::move(still_blocked);
            }
            if (front.empty())
                break;

            // All remaining front gates are blocked two-qubit gates:
            // pick the best SWAP.
            auto [pa, pb] = bestSwap(circ, dag, front, indeg, l2p, decay);
            applySwap(pa, pb, l2p, p2l);
            decay[pa] += options_.decay_delta;
            decay[pb] += options_.decay_delta;
            ++result.swaps;
            if (record) {
                result.gates.push_back(
                    Gate(GateKind::SWAP,
                         {static_cast<Qubit>(pa), static_cast<Qubit>(pb)}));
            }
            if (++stall_guard > max_swaps)
                qpad_panic("router stalled after ", result.swaps,
                           " swaps on '", circ.name(), "'");
        }
        qpad_assert(executed == circ.size(), "router dropped gates");
        result.final_l2p = std::move(l2p);
        return result;
    }

  private:
    const arch::Architecture &arch_;
    const MappingOptions &options_;
    const SymMatrix<uint16_t> &dist_;

    bool
    executable(const Gate &g, const std::vector<PhysQubit> &l2p) const
    {
        if (!g.isTwoQubit())
            return true; // 1q / measure / reset / barrier
        return dist_(l2p[g.qubits[0]], l2p[g.qubits[1]]) == 1;
    }

    static void
    applySwap(PhysQubit pa, PhysQubit pb, std::vector<PhysQubit> &l2p,
              std::vector<Qubit> &p2l)
    {
        Qubit la = p2l[pa], lb = p2l[pb];
        std::swap(p2l[pa], p2l[pb]);
        l2p[la] = pb;
        l2p[lb] = pa;
    }

    /** Two-qubit gates reachable from the front (lookahead window). */
    std::vector<std::size_t>
    extendedSet(const Circuit &circ, const circuit::DependencyDag &dag,
                const std::vector<std::size_t> &front) const
    {
        std::vector<std::size_t> extended;
        std::vector<std::size_t> frontier = front;
        std::size_t cursor = 0;
        while (cursor < frontier.size() &&
               extended.size() < options_.extended_set_size) {
            std::size_t id = frontier[cursor++];
            for (std::size_t succ : dag.successors(id)) {
                if (circ.gate(succ).isTwoQubit()) {
                    extended.push_back(succ);
                    if (extended.size() >= options_.extended_set_size)
                        break;
                }
                frontier.push_back(succ);
            }
        }
        return extended;
    }

    std::pair<PhysQubit, PhysQubit>
    bestSwap(const Circuit &circ, const circuit::DependencyDag &dag,
             const std::vector<std::size_t> &front,
             const std::vector<std::size_t> &indeg,
             const std::vector<PhysQubit> &l2p,
             const std::vector<double> &decay) const
    {
        (void)indeg;
        // Candidate swaps: edges touching any physical qubit that
        // hosts an operand of a blocked front gate.
        std::vector<std::pair<PhysQubit, PhysQubit>> candidates;
        std::vector<bool> seen_phys(arch_.numQubits(), false);
        for (std::size_t id : front) {
            const Gate &g = circ.gate(id);
            for (Qubit lq : g.qubits) {
                PhysQubit pq = l2p[lq];
                if (seen_phys[pq])
                    continue;
                seen_phys[pq] = true;
                for (PhysQubit nb : arch_.adjacency()[pq])
                    candidates.emplace_back(std::min(pq, nb),
                                            std::max(pq, nb));
            }
        }
        std::sort(candidates.begin(), candidates.end());
        candidates.erase(
            std::unique(candidates.begin(), candidates.end()),
            candidates.end());
        qpad_assert(!candidates.empty(), "no candidate swaps");

        std::vector<std::size_t> extended =
            extendedSet(circ, dag, front);

        double best_score = std::numeric_limits<double>::infinity();
        std::pair<PhysQubit, PhysQubit> best = candidates.front();
        for (auto [pa, pb] : candidates) {
            double score = swapScore(circ, front, extended, l2p, decay,
                                     pa, pb);
            if (score < best_score) {
                best_score = score;
                best = {pa, pb};
            }
        }
        return best;
    }

    double
    swapScore(const Circuit &circ, const std::vector<std::size_t> &front,
              const std::vector<std::size_t> &extended,
              const std::vector<PhysQubit> &l2p,
              const std::vector<double> &decay, PhysQubit pa,
              PhysQubit pb) const
    {
        auto mapped = [&](Qubit lq) {
            PhysQubit pq = l2p[lq];
            if (pq == pa)
                return pb;
            if (pq == pb)
                return pa;
            return pq;
        };

        double front_cost = 0.0;
        std::size_t front_terms = 0;
        for (std::size_t id : front) {
            const Gate &g = circ.gate(id);
            if (!g.isTwoQubit())
                continue;
            front_cost +=
                dist_(mapped(g.qubits[0]), mapped(g.qubits[1]));
            ++front_terms;
        }
        if (front_terms)
            front_cost /= double(front_terms);

        double ext_cost = 0.0;
        if (!extended.empty()) {
            for (std::size_t id : extended) {
                const Gate &g = circ.gate(id);
                ext_cost +=
                    dist_(mapped(g.qubits[0]), mapped(g.qubits[1]));
            }
            ext_cost =
                options_.extended_weight * ext_cost / extended.size();
        }

        double decay_factor = std::max(decay[pa], decay[pb]);
        return decay_factor * (front_cost + ext_cost);
    }
};

/** Unitary-only reversed copy of a circuit (for reverse traversal). */
Circuit
reversedUnitary(const Circuit &circ)
{
    Circuit out(circ.numQubits(), circ.numClbits(),
                circ.name() + "_rev");
    for (auto it = circ.gates().rbegin(); it != circ.gates().rend();
         ++it) {
        if (it->kind == GateKind::Measure ||
            it->kind == GateKind::Reset ||
            it->kind == GateKind::Barrier)
            continue;
        out.add(*it);
    }
    return out;
}

/** Strip trailing measurements; they are re-appended after routing. */
Circuit
unitaryPart(const Circuit &circ,
            std::vector<std::pair<Qubit, circuit::Clbit>> &measures)
{
    Circuit out(circ.numQubits(), circ.numClbits(), circ.name());
    for (const Gate &g : circ.gates()) {
        if (g.kind == GateKind::Measure) {
            measures.emplace_back(g.qubits[0], g.clbit);
            continue;
        }
        out.add(g);
    }
    return out;
}

} // namespace

MappingResult
mapCircuit(const Circuit &circuit, const arch::Architecture &arch,
           const MappingOptions &options)
{
    qpad_assert(circuit.numQubits() <= arch.numQubits(),
                "circuit '", circuit.name(), "' needs ",
                circuit.numQubits(), " qubits but chip has ",
                arch.numQubits());
    qpad_assert(arch.isConnectedGraph(),
                "architecture coupling graph is disconnected");
    qpad_assert(circuit::isInBasis(circuit),
                "circuit must be lowered to the {1q, CX} basis");

    std::vector<std::pair<Qubit, circuit::Clbit>> measures;
    Circuit unitary = unitaryPart(circuit, measures);

    // Widen the logical space to chip size with dummy logicals.
    Circuit widened(arch.numQubits(), circuit.numClbits(),
                    unitary.name());
    widened.append(unitary);

    Router router(arch, options);

    // Candidate initial mappings: the identity (qpad layouts use an
    // identity pseudo-mapping, so this is often already perfect) and
    // the SABRE reverse-traversal refinement of a random start.
    std::vector<std::vector<PhysQubit>> candidates;
    std::vector<PhysQubit> identity(arch.numQubits());
    std::iota(identity.begin(), identity.end(), 0);
    candidates.push_back(identity);

    if (options.sabre_initial_mapping) {
        Rng rng(options.seed);
        std::vector<PhysQubit> l2p = identity;
        // Random starting permutation, then reverse-traversal
        // refinement: forward pass yields the initial mapping of the
        // reverse circuit and vice versa.
        for (std::size_t i = l2p.size(); i > 1; --i)
            std::swap(l2p[i - 1], l2p[rng.below(i)]);
        Circuit reversed = reversedUnitary(widened);
        for (unsigned round = 0; round < options.initial_mapping_rounds;
             ++round) {
            l2p = router.route(widened, std::move(l2p), false).final_l2p;
            l2p = router.route(reversed, std::move(l2p), false)
                      .final_l2p;
        }
        candidates.push_back(std::move(l2p));
    }

    // Route every candidate and keep the cheapest mapping.
    std::size_t best = 0;
    Router::PassResult pass;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        Router::PassResult attempt =
            router.route(widened, candidates[i], true);
        if (i == 0 || attempt.swaps < pass.swaps) {
            pass = std::move(attempt);
            best = i;
        }
    }

    MappingResult result;
    result.initial_mapping.assign(
        candidates[best].begin(),
        candidates[best].begin() + circuit.numQubits());
    result.swaps = pass.swaps;
    result.final_mapping.assign(
        pass.final_l2p.begin(),
        pass.final_l2p.begin() + circuit.numQubits());

    // Materialize the physical circuit: SWAP lowers to three CX.
    Circuit mapped(arch.numQubits(), circuit.numClbits(),
                   circuit.name() + "@" + arch.name());
    for (const Gate &g : pass.gates) {
        if (g.kind == GateKind::SWAP) {
            mapped.cx(g.qubits[0], g.qubits[1]);
            mapped.cx(g.qubits[1], g.qubits[0]);
            mapped.cx(g.qubits[0], g.qubits[1]);
        } else {
            mapped.add(g);
        }
    }
    for (auto [lq, cb] : measures)
        mapped.measure(pass.final_l2p[lq], cb);

    result.total_gates = mapped.unitaryGateCount();
    result.two_qubit_gates = mapped.twoQubitGateCount();
    result.mapped = std::move(mapped);
    return result;
}

bool
respectsCoupling(const Circuit &mapped, const arch::Architecture &arch)
{
    for (const Gate &g : mapped.gates()) {
        if (!g.isTwoQubit())
            continue;
        if (!arch.connected(g.qubits[0], g.qubits[1]))
            return false;
    }
    return true;
}

} // namespace qpad::mapping

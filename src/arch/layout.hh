/**
 * @file
 * Placement of physical qubits on a 2-D lattice.
 */

#ifndef QPAD_ARCH_LAYOUT_HH
#define QPAD_ARCH_LAYOUT_HH

#include <optional>
#include <unordered_map>
#include <vector>

#include "arch/coord.hh"

namespace qpad::arch
{

/**
 * A set of occupied lattice nodes, one physical qubit per node.
 * Physical qubit ids are dense [0, numQubits).
 */
class Layout
{
  public:
    Layout() = default;

    /** Fully occupied rows-by-cols grid (row-major qubit ids). */
    static Layout grid(int rows, int cols);

    /** Place a new qubit; fatal if the node is already occupied. */
    PhysQubit addQubit(const Coord &c);

    std::size_t numQubits() const { return coords_.size(); }

    /** Coordinate of qubit q. */
    const Coord &coord(PhysQubit q) const;

    /** Qubit at a node, if any. */
    std::optional<PhysQubit> qubitAt(const Coord &c) const;

    bool occupied(const Coord &c) const { return by_coord_.count(c); }

    const std::vector<Coord> &coords() const { return coords_; }

    /** @name Bounding box of the occupied nodes */
    /** @{ */
    int minRow() const;
    int maxRow() const;
    int minCol() const;
    int maxCol() const;
    /** @} */

    /** Same placement translated so the bounding box starts at 0,0. */
    Layout normalized() const;

    /**
     * Occupied-node lattice edges: all pairs of qubits on adjacent
     * nodes (these carry the implicit 2-qubit buses).
     */
    std::vector<std::pair<PhysQubit, PhysQubit>> latticeEdges() const;

    /** ASCII picture of the placement (qubit ids on a grid). */
    std::string str() const;

  private:
    std::vector<Coord> coords_;
    std::unordered_map<Coord, PhysQubit, CoordHash> by_coord_;
};

} // namespace qpad::arch

#endif // QPAD_ARCH_LAYOUT_HH

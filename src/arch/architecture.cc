#include "arch/architecture.hh"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>
#include <sstream>

#include "common/logging.hh"

namespace qpad::arch
{

Architecture::Architecture(Layout layout, std::string name)
    : name_(std::move(name)), layout_(std::move(layout)),
      freqs_(layout_.numQubits(), 0.0)
{
}

SquareInfo
Architecture::squareAt(const Coord &origin) const
{
    SquareInfo info;
    info.origin = origin;
    // Corner order: tl, tr, bl, br.
    const Coord tl = origin;
    const Coord tr = origin.offset(0, 1);
    const Coord bl = origin.offset(1, 0);
    const Coord br = origin.offset(1, 1);
    std::optional<PhysQubit> q_tl = layout_.qubitAt(tl);
    std::optional<PhysQubit> q_tr = layout_.qubitAt(tr);
    std::optional<PhysQubit> q_bl = layout_.qubitAt(bl);
    std::optional<PhysQubit> q_br = layout_.qubitAt(br);
    for (auto q : {q_tl, q_tr, q_bl, q_br})
        if (q)
            info.corners.push_back(*q);
    if (q_tl && q_br)
        info.diagonals.emplace_back(std::min(*q_tl, *q_br),
                                    std::max(*q_tl, *q_br));
    if (q_tr && q_bl)
        info.diagonals.emplace_back(std::min(*q_tr, *q_bl),
                                    std::max(*q_tr, *q_bl));
    return info;
}

std::vector<SquareInfo>
Architecture::eligibleSquares() const
{
    std::vector<SquareInfo> out;
    if (layout_.numQubits() == 0)
        return out;
    for (int r = layout_.minRow() - 1; r <= layout_.maxRow(); ++r) {
        for (int c = layout_.minCol() - 1; c <= layout_.maxCol(); ++c) {
            SquareInfo info = squareAt({r, c});
            if (info.corners.size() >= 3)
                out.push_back(std::move(info));
        }
    }
    return out;
}

bool
Architecture::canAddFourQubitBus(const Coord &origin) const
{
    SquareInfo info = squareAt(origin);
    if (info.corners.size() < 3)
        return false;
    for (const Coord &existing : buses_) {
        if (existing == origin)
            return false;
        // Prohibited condition: squares sharing an edge.
        int dr = std::abs(existing.row - origin.row);
        int dc = std::abs(existing.col - origin.col);
        if (dr + dc == 1)
            return false;
    }
    return true;
}

void
Architecture::addFourQubitBus(const Coord &origin)
{
    if (!canAddFourQubitBus(origin))
        qpad_fatal("cannot place 4-qubit bus at ", origin.str(),
                   ": square ineligible or adjacent to an existing bus");
    buses_.push_back(origin);
    graph_dirty_ = true;
}

std::size_t
Architecture::numEdges() const
{
    return edges().size();
}

void
Architecture::setFrequency(PhysQubit q, double ghz)
{
    qpad_assert(q < freqs_.size(), "qubit out of range");
    freqs_[q] = ghz;
}

void
Architecture::setAllFrequencies(const std::vector<double> &ghz)
{
    qpad_assert(ghz.size() == freqs_.size(),
                "frequency vector size mismatch");
    freqs_ = ghz;
}

double
Architecture::frequency(PhysQubit q) const
{
    qpad_assert(q < freqs_.size(), "qubit out of range");
    return freqs_[q];
}

bool
Architecture::frequenciesAssigned() const
{
    return std::all_of(freqs_.begin(), freqs_.end(),
                       [](double f) { return f > 0.0; });
}

void
Architecture::rebuildGraph() const
{
    std::set<std::pair<PhysQubit, PhysQubit>> edge_set;
    for (auto [a, b] : layout_.latticeEdges())
        edge_set.emplace(std::min(a, b), std::max(a, b));
    for (const Coord &origin : buses_) {
        SquareInfo info = squareAt(origin);
        for (auto &d : info.diagonals)
            edge_set.insert(d);
    }
    edges_.assign(edge_set.begin(), edge_set.end());

    adj_.assign(layout_.numQubits(), {});
    for (auto [a, b] : edges_) {
        adj_[a].push_back(b);
        adj_[b].push_back(a);
    }
    for (auto &neighbors : adj_)
        std::sort(neighbors.begin(), neighbors.end());

    // All-pairs BFS.
    const std::size_t n = layout_.numQubits();
    dist_ = SymMatrix<uint16_t>(n, 0xffff);
    for (PhysQubit s = 0; s < n; ++s) {
        dist_.at(s, s) = 0;
        std::queue<PhysQubit> fifo;
        fifo.push(s);
        std::vector<bool> seen(n, false);
        seen[s] = true;
        while (!fifo.empty()) {
            PhysQubit u = fifo.front();
            fifo.pop();
            for (PhysQubit v : adj_[u]) {
                if (!seen[v]) {
                    seen[v] = true;
                    dist_.at(s, v) = dist_(s, u) + 1;
                    fifo.push(v);
                }
            }
        }
    }
    graph_dirty_ = false;
}

const std::vector<std::pair<PhysQubit, PhysQubit>> &
Architecture::edges() const
{
    if (graph_dirty_)
        rebuildGraph();
    return edges_;
}

const std::vector<std::vector<PhysQubit>> &
Architecture::adjacency() const
{
    if (graph_dirty_)
        rebuildGraph();
    return adj_;
}

bool
Architecture::connected(PhysQubit a, PhysQubit b) const
{
    const auto &neighbors = adjacency()[a];
    return std::binary_search(neighbors.begin(), neighbors.end(), b);
}

const SymMatrix<uint16_t> &
Architecture::distances() const
{
    if (graph_dirty_)
        rebuildGraph();
    return dist_;
}

bool
Architecture::isConnectedGraph() const
{
    const auto &d = distances();
    for (std::size_t i = 0; i < numQubits(); ++i)
        for (std::size_t j = i + 1; j < numQubits(); ++j)
            if (d(i, j) == 0xffff)
                return false;
    return true;
}

std::string
Architecture::str() const
{
    std::ostringstream out;
    out << "architecture '" << name_ << "': " << numQubits()
        << " qubits, " << numEdges() << " connections, "
        << buses_.size() << " four-qubit buses\n";
    out << layout_.str();
    if (!buses_.empty()) {
        out << "4-qubit buses at:";
        for (const Coord &b : buses_)
            out << " " << b.str();
        out << "\n";
    }
    if (frequenciesAssigned()) {
        out << "frequencies (GHz):";
        for (PhysQubit q = 0; q < numQubits(); ++q) {
            out << (q % 8 == 0 ? "\n  " : "  ") << "q" << q << "="
                << freqs_[q];
        }
        out << "\n";
    }
    return out.str();
}

} // namespace qpad::arch

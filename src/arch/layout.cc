#include "arch/layout.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace qpad::arch
{

Layout
Layout::grid(int rows, int cols)
{
    qpad_assert(rows >= 1 && cols >= 1, "empty grid");
    Layout layout;
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            layout.addQubit({r, c});
    return layout;
}

PhysQubit
Layout::addQubit(const Coord &c)
{
    if (by_coord_.count(c))
        qpad_fatal("node ", c.str(), " already occupied");
    PhysQubit id = static_cast<PhysQubit>(coords_.size());
    coords_.push_back(c);
    by_coord_[c] = id;
    return id;
}

const Coord &
Layout::coord(PhysQubit q) const
{
    qpad_assert(q < coords_.size(), "qubit ", q, " out of range");
    return coords_[q];
}

std::optional<PhysQubit>
Layout::qubitAt(const Coord &c) const
{
    auto it = by_coord_.find(c);
    if (it == by_coord_.end())
        return std::nullopt;
    return it->second;
}

int
Layout::minRow() const
{
    qpad_assert(!coords_.empty(), "empty layout");
    return std::min_element(coords_.begin(), coords_.end(),
                            [](auto &a, auto &b) { return a.row < b.row; })
        ->row;
}

int
Layout::maxRow() const
{
    qpad_assert(!coords_.empty(), "empty layout");
    return std::max_element(coords_.begin(), coords_.end(),
                            [](auto &a, auto &b) { return a.row < b.row; })
        ->row;
}

int
Layout::minCol() const
{
    qpad_assert(!coords_.empty(), "empty layout");
    return std::min_element(coords_.begin(), coords_.end(),
                            [](auto &a, auto &b) { return a.col < b.col; })
        ->col;
}

int
Layout::maxCol() const
{
    qpad_assert(!coords_.empty(), "empty layout");
    return std::max_element(coords_.begin(), coords_.end(),
                            [](auto &a, auto &b) { return a.col < b.col; })
        ->col;
}

Layout
Layout::normalized() const
{
    Layout out;
    if (coords_.empty())
        return out;
    int r0 = minRow(), c0 = minCol();
    for (const Coord &c : coords_)
        out.addQubit({c.row - r0, c.col - c0});
    return out;
}

std::vector<std::pair<PhysQubit, PhysQubit>>
Layout::latticeEdges() const
{
    std::vector<std::pair<PhysQubit, PhysQubit>> out;
    for (PhysQubit q = 0; q < coords_.size(); ++q) {
        // South and east neighbours only, so each edge appears once.
        for (const Coord &n : {coords_[q].offset(1, 0),
                               coords_[q].offset(0, 1)}) {
            if (auto other = qubitAt(n))
                out.emplace_back(q, *other);
        }
    }
    return out;
}

std::string
Layout::str() const
{
    if (coords_.empty())
        return "(empty layout)\n";
    std::ostringstream out;
    int r0 = minRow(), r1 = maxRow(), c0 = minCol(), c1 = maxCol();
    for (int r = r0; r <= r1; ++r) {
        for (int c = c0; c <= c1; ++c) {
            auto q = qubitAt({r, c});
            if (q) {
                std::string id = std::to_string(*q);
                out << (id.size() < 2 ? " q" + id : "q" + id) << " ";
            } else {
                out << " .  ";
            }
        }
        out << "\n";
    }
    return out.str();
}

} // namespace qpad::arch

#include "arch/serialize.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "common/logging.hh"

namespace qpad::arch
{

std::string
toJson(const Architecture &arch)
{
    std::ostringstream out;
    out << std::setprecision(17);
    out << "{\n";
    out << "  \"name\": \"" << arch.name() << "\",\n";
    out << "  \"qubits\": [\n";
    for (PhysQubit q = 0; q < arch.numQubits(); ++q) {
        const Coord &c = arch.layout().coord(q);
        out << "    {\"id\": " << q << ", \"row\": " << c.row
            << ", \"col\": " << c.col << "}"
            << (q + 1 < arch.numQubits() ? ",\n" : "\n");
    }
    out << "  ],\n";
    out << "  \"four_qubit_buses\": [";
    const auto &buses = arch.fourQubitBuses();
    for (std::size_t i = 0; i < buses.size(); ++i) {
        out << (i ? ", " : "") << "{\"row\": " << buses[i].row
            << ", \"col\": " << buses[i].col << "}";
    }
    out << "]";
    if (arch.frequenciesAssigned()) {
        out << ",\n  \"frequencies_ghz\": [";
        for (PhysQubit q = 0; q < arch.numQubits(); ++q)
            out << (q ? ", " : "") << arch.frequency(q);
        out << "]";
    }
    out << "\n}\n";
    return out.str();
}

namespace
{

/**
 * Minimal JSON tokenizer/parser sufficient for the schema above.
 * Not a general-purpose JSON library by design.
 */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    void
    expect(char c)
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != c)
            qpad_fatal("arch json: expected '", std::string(1, c),
                       "' at offset ", pos_);
        ++pos_;
    }

    bool
    accept(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"')
            out += text_[pos_++];
        expect('"');
        return out;
    }

    double
    parseNumber()
    {
        skipSpace();
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (start == pos_)
            qpad_fatal("arch json: expected number at offset ", pos_);
        // Frequencies feed the cache fingerprint, so every accepted
        // number must be a well-defined finite double: reject
        // malformed tokens ("5..1"), half-parsed ones ("5.0e"),
        // overflow to infinity ("1e999"), and NaN outright.
        const std::string token = text_.substr(start, pos_ - start);
        std::size_t used = 0;
        double value = 0.0;
        try {
            value = std::stod(token, &used);
        } catch (const std::invalid_argument &) {
            qpad_fatal("arch json: malformed number '", token,
                       "' at offset ", start);
        } catch (const std::out_of_range &) {
            qpad_fatal("arch json: number '", token,
                       "' out of double range at offset ", start);
        }
        if (used != token.size())
            qpad_fatal("arch json: trailing garbage in number '",
                       token, "' at offset ", start);
        if (!std::isfinite(value))
            qpad_fatal("arch json: non-finite number '", token,
                       "' at offset ", start);
        return value;
    }

    bool
    atEnd()
    {
        skipSpace();
        return pos_ >= text_.size();
    }

  private:
    const std::string &text_;
    std::size_t pos_ = 0;

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }
};

} // namespace

Architecture
fromJson(const std::string &json)
{
    JsonParser p(json);
    p.expect('{');

    std::string name;
    std::vector<std::pair<int, Coord>> qubits;
    std::vector<Coord> buses;
    std::vector<double> freqs;

    bool first = true;
    while (!p.accept('}')) {
        if (!first)
            p.expect(',');
        first = false;
        std::string key = p.parseString();
        p.expect(':');
        if (key == "name") {
            name = p.parseString();
        } else if (key == "qubits") {
            p.expect('[');
            while (!p.accept(']')) {
                if (!qubits.empty())
                    p.expect(',');
                p.expect('{');
                int id = -1;
                Coord c;
                bool obj_first = true;
                while (!p.accept('}')) {
                    if (!obj_first)
                        p.expect(',');
                    obj_first = false;
                    std::string field = p.parseString();
                    p.expect(':');
                    double v = p.parseNumber();
                    if (field == "id")
                        id = int(v);
                    else if (field == "row")
                        c.row = int(v);
                    else if (field == "col")
                        c.col = int(v);
                    else
                        qpad_fatal("arch json: unknown qubit field '",
                                   field, "'");
                }
                qubits.emplace_back(id, c);
            }
        } else if (key == "four_qubit_buses") {
            p.expect('[');
            while (!p.accept(']')) {
                if (!buses.empty())
                    p.expect(',');
                p.expect('{');
                Coord c;
                bool obj_first = true;
                while (!p.accept('}')) {
                    if (!obj_first)
                        p.expect(',');
                    obj_first = false;
                    std::string field = p.parseString();
                    p.expect(':');
                    double v = p.parseNumber();
                    if (field == "row")
                        c.row = int(v);
                    else if (field == "col")
                        c.col = int(v);
                    else
                        qpad_fatal("arch json: unknown bus field '",
                                   field, "'");
                }
                buses.push_back(c);
            }
        } else if (key == "frequencies_ghz") {
            p.expect('[');
            while (!p.accept(']')) {
                if (!freqs.empty())
                    p.expect(',');
                freqs.push_back(p.parseNumber());
            }
        } else {
            qpad_fatal("arch json: unknown key '", key, "'");
        }
    }

    // Qubits must be dense 0..n-1; sort by id to rebuild the layout.
    std::sort(qubits.begin(), qubits.end());
    Layout layout;
    for (std::size_t i = 0; i < qubits.size(); ++i) {
        if (qubits[i].first != int(i))
            qpad_fatal("arch json: qubit ids must be dense 0..n-1");
        layout.addQubit(qubits[i].second);
    }
    Architecture arch(layout, name);
    for (const Coord &b : buses)
        arch.addFourQubitBus(b);
    if (!freqs.empty()) {
        if (freqs.size() != arch.numQubits())
            qpad_fatal("arch json: frequency count mismatch");
        arch.setAllFrequencies(freqs);
    }
    return arch;
}

void
saveArchitecture(const Architecture &arch, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        qpad_fatal("cannot write architecture file '", path, "'");
    out << toJson(arch);
}

Architecture
loadArchitecture(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        qpad_fatal("cannot open architecture file '", path, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return fromJson(buf.str());
}

} // namespace qpad::arch

/**
 * @file
 * Superconducting quantum processor architecture model.
 *
 * An Architecture is a qubit Layout plus a bus configuration plus a
 * pre-fabrication frequency per qubit. Every lattice edge between
 * two occupied nodes carries an implicit 2-qubit bus; lattice unit
 * squares may be promoted to 4-qubit buses, which additionally
 * couple the occupied diagonal pairs (a square with exactly three
 * occupied corners degenerates into a 3-qubit bus, paper Fig. 7b).
 * The *prohibited condition* (no two 4-qubit buses on adjacent
 * squares, paper Fig. 7a) is a hard physical constraint and is
 * enforced by this class.
 */

#ifndef QPAD_ARCH_ARCHITECTURE_HH
#define QPAD_ARCH_ARCHITECTURE_HH

#include <string>
#include <vector>

#include "arch/layout.hh"
#include "common/sym_matrix.hh"

namespace qpad::arch
{

/** Frequency band and device constants used throughout the paper. */
struct DeviceConstants
{
    /** Allowed pre-fabrication frequency interval (GHz). */
    static constexpr double freq_min_ghz = 5.00;
    static constexpr double freq_max_ghz = 5.34;
    /** Transmon anharmonicity delta = f12 - f01 (GHz). */
    static constexpr double anharmonicity_ghz = -0.340;
    /** Default fabrication precision sigma (GHz) = 30 MHz. */
    static constexpr double default_sigma_ghz = 0.030;
};

/** One lattice unit square eligible for a 4-qubit bus. */
struct SquareInfo
{
    /** Top-left corner node of the square. */
    Coord origin;
    /** The occupied corner qubits (3 or 4 of them). */
    std::vector<PhysQubit> corners;
    /** Occupied diagonal pairs the 4-qubit bus would couple. */
    std::vector<std::pair<PhysQubit, PhysQubit>> diagonals;
};

/**
 * Immutable-layout, mutable-bus/frequency chip model with a cached
 * coupling graph.
 */
class Architecture
{
  public:
    Architecture() = default;

    explicit Architecture(Layout layout, std::string name = "");

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    const Layout &layout() const { return layout_; }
    std::size_t numQubits() const { return layout_.numQubits(); }

    /** @name Bus configuration */
    /** @{ */
    /**
     * All squares of the layout that could host a 4-qubit bus
     * (>= 3 occupied corners), in row-major origin order.
     */
    std::vector<SquareInfo> eligibleSquares() const;

    /** True if a 4-qubit bus may be added at this square origin. */
    bool canAddFourQubitBus(const Coord &origin) const;

    /**
     * Promote the square at `origin` to a 4-qubit bus.
     * Fatal if the square is ineligible or violates the prohibited
     * condition against an existing 4-qubit bus.
     */
    void addFourQubitBus(const Coord &origin);

    const std::vector<Coord> &fourQubitBuses() const { return buses_; }

    /** Number of distinct qubit connections (coupling graph edges). */
    std::size_t numEdges() const;
    /** @} */

    /** @name Frequencies */
    /** @{ */
    void setFrequency(PhysQubit q, double ghz);
    void setAllFrequencies(const std::vector<double> &ghz);
    double frequency(PhysQubit q) const;
    const std::vector<double> &frequencies() const { return freqs_; }
    bool frequenciesAssigned() const;
    /** @} */

    /** @name Coupling graph */
    /** @{ */
    /** Undirected edges (a < b), lattice buses plus bus diagonals. */
    const std::vector<std::pair<PhysQubit, PhysQubit>> &edges() const;

    /** Neighbour lists. */
    const std::vector<std::vector<PhysQubit>> &adjacency() const;

    bool connected(PhysQubit a, PhysQubit b) const;

    /** All-pairs shortest path lengths (BFS); unreachable = 0xffff. */
    const SymMatrix<uint16_t> &distances() const;

    /** True if every qubit can reach every other qubit. */
    bool isConnectedGraph() const;
    /** @} */

    /** ASCII rendering with buses and frequencies. */
    std::string str() const;

  private:
    std::string name_;
    Layout layout_;
    std::vector<Coord> buses_;
    std::vector<double> freqs_;

    mutable bool graph_dirty_ = true;
    mutable std::vector<std::pair<PhysQubit, PhysQubit>> edges_;
    mutable std::vector<std::vector<PhysQubit>> adj_;
    mutable SymMatrix<uint16_t> dist_;

    void rebuildGraph() const;
    SquareInfo squareAt(const Coord &origin) const;
};

} // namespace qpad::arch

#endif // QPAD_ARCH_ARCHITECTURE_HH

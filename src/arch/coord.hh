/**
 * @file
 * Integer lattice coordinates for qubit placement.
 */

#ifndef QPAD_ARCH_COORD_HH
#define QPAD_ARCH_COORD_HH

#include <array>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>

namespace qpad::arch
{

/** Physical qubit index on a chip. */
using PhysQubit = uint32_t;

/** A node of the 2-D lattice (row, col), either axis may be negative. */
struct Coord
{
    int row = 0;
    int col = 0;

    bool operator==(const Coord &o) const
    {
        return row == o.row && col == o.col;
    }

    bool
    operator<(const Coord &o) const
    {
        return row != o.row ? row < o.row : col < o.col;
    }

    Coord
    offset(int dr, int dc) const
    {
        return {row + dr, col + dc};
    }

    /** Manhattan (L1) distance between lattice nodes. */
    static int
    manhattan(const Coord &a, const Coord &b)
    {
        return std::abs(a.row - b.row) + std::abs(a.col - b.col);
    }

    std::string
    str() const
    {
        // Built by append rather than operator+ chaining: GCC 12's
        // -Wrestrict misfires on the chained form (PR 105651), and
        // CI builds with -Werror.
        std::string s = "(";
        s += std::to_string(row);
        s += ',';
        s += std::to_string(col);
        s += ')';
        return s;
    }
};

/** The four lattice neighbours of a node (N, S, W, E). */
inline std::array<Coord, 4>
lattice4(const Coord &c)
{
    return {Coord{c.row - 1, c.col}, Coord{c.row + 1, c.col},
            Coord{c.row, c.col - 1}, Coord{c.row, c.col + 1}};
}

struct CoordHash
{
    std::size_t
    operator()(const Coord &c) const
    {
        return std::hash<int64_t>{}(
            (static_cast<int64_t>(c.row) << 32) ^
            static_cast<uint32_t>(c.col));
    }
};

} // namespace qpad::arch

#endif // QPAD_ARCH_COORD_HH

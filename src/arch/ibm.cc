#include "arch/ibm.hh"

#include "common/logging.hh"

namespace qpad::arch
{

const std::vector<double> &
fiveFrequencyValues()
{
    // Arithmetic progression from 5.00 to 5.27 GHz (Figure 9).
    static const std::vector<double> values = {5.00, 5.07, 5.13, 5.20,
                                               5.27};
    return values;
}

void
applyFiveFrequencyScheme(Architecture &arch)
{
    const auto &values = fiveFrequencyValues();
    for (PhysQubit q = 0; q < arch.numQubits(); ++q) {
        const Coord &c = arch.layout().coord(q);
        int idx = ((c.col + 2 * c.row) % 5 + 5) % 5;
        arch.setFrequency(q, values[idx]);
    }
}

std::size_t
addMaxFourQubitBuses(Architecture &arch)
{
    std::size_t added = 0;
    for (const SquareInfo &sq : arch.eligibleSquares()) {
        // Checkerboard parity keeps every pair of chosen squares
        // non-adjacent; canAdd re-checks against irregular layouts.
        if (((sq.origin.row + sq.origin.col) % 2 + 2) % 2 != 0)
            continue;
        if (arch.canAddFourQubitBus(sq.origin)) {
            arch.addFourQubitBus(sq.origin);
            ++added;
        }
    }
    return added;
}

Architecture
ibm16Q(bool with_four_qubit_buses)
{
    Architecture arch(Layout::grid(2, 8),
                      with_four_qubit_buses ? "ibm-16q-4qbus"
                                            : "ibm-16q-2qbus");
    // Figure 9 frequency tiling for the 2x8 chip:
    //   row 0: 3 4 5 1 2 3 4 5   row 1: 1 2 3 4 5 1 2 3
    const auto &values = fiveFrequencyValues();
    for (PhysQubit q = 0; q < arch.numQubits(); ++q) {
        const Coord &c = arch.layout().coord(q);
        int idx = (c.col + 2 + 3 * c.row) % 5;
        arch.setFrequency(q, values[idx]);
    }
    if (with_four_qubit_buses) {
        std::size_t added = addMaxFourQubitBuses(arch);
        qpad_assert(added == 4, "expected 4 buses on 2x8, got ", added);
    }
    return arch;
}

Architecture
ibm20Q(bool with_four_qubit_buses)
{
    Architecture arch(Layout::grid(4, 5),
                      with_four_qubit_buses ? "ibm-20q-4qbus"
                                            : "ibm-20q-2qbus");
    applyFiveFrequencyScheme(arch);
    if (with_four_qubit_buses) {
        std::size_t added = addMaxFourQubitBuses(arch);
        qpad_assert(added == 6, "expected 6 buses on 4x5, got ", added);
    }
    return arch;
}

std::vector<Architecture>
ibmBaselines()
{
    return {ibm16Q(false), ibm16Q(true), ibm20Q(false), ibm20Q(true)};
}

} // namespace qpad::arch

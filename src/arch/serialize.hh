/**
 * @file
 * JSON import/export of architectures, so generated designs can be
 * stored, versioned and consumed by external tooling (plotters,
 * fabrication pipelines).
 *
 * The format is intentionally small and self-describing:
 * {
 *   "name": "...",
 *   "qubits": [{"id": 0, "row": 0, "col": 1}, ...],
 *   "four_qubit_buses": [{"row": 0, "col": 0}, ...],
 *   "frequencies_ghz": [5.07, ...]   // omitted when unassigned
 * }
 */

#ifndef QPAD_ARCH_SERIALIZE_HH
#define QPAD_ARCH_SERIALIZE_HH

#include <string>

#include "arch/architecture.hh"

namespace qpad::arch
{

/** Serialize an architecture to a JSON string. */
std::string toJson(const Architecture &arch);

/**
 * Parse an architecture back from toJson() output (or compatible
 * hand-written JSON). Fatal on malformed input or constraint
 * violations (duplicate nodes, prohibited bus placement, ...).
 */
Architecture fromJson(const std::string &json);

/** Write / read helpers. */
void saveArchitecture(const Architecture &arch, const std::string &path);
Architecture loadArchitecture(const std::string &path);

} // namespace qpad::arch

#endif // QPAD_ARCH_SERIALIZE_HH

/**
 * @file
 * IBM's general-purpose baseline designs (paper Figure 9) and the
 * 5-frequency allocation scheme.
 */

#ifndef QPAD_ARCH_IBM_HH
#define QPAD_ARCH_IBM_HH

#include <string>
#include <vector>

#include "arch/architecture.hh"

namespace qpad::arch
{

/** The five baseline frequencies (GHz): 5.00, 5.07, 5.13, 5.20, 5.27. */
const std::vector<double> &fiveFrequencyValues();

/**
 * Apply the generic 5-frequency tiling `index = (col + 2*row) mod 5`
 * to any layout. This reproduces the paper's 4x5 arrangement exactly
 * and guarantees distinct frequencies on lattice-adjacent qubits.
 */
void applyFiveFrequencyScheme(Architecture &arch);

/**
 * Maximal set of 4-qubit buses under the prohibited condition: the
 * checkerboard of eligible squares with even (row + col) parity.
 * Returns the number of buses added.
 */
std::size_t addMaxFourQubitBuses(Architecture &arch);

/**
 * Baseline (1)/(2): 16 qubits on a 2x8 lattice, frequency tiling as
 * in Figure 9, optionally with the maximal four 4-qubit buses.
 */
Architecture ibm16Q(bool with_four_qubit_buses);

/**
 * Baseline (3)/(4): 20 qubits on a 4x5 lattice, optionally with the
 * maximal six 4-qubit buses.
 */
Architecture ibm20Q(bool with_four_qubit_buses);

/** The four baselines in Figure 9 order: (1) (2) (3) (4). */
std::vector<Architecture> ibmBaselines();

} // namespace qpad::arch

#endif // QPAD_ARCH_IBM_HH

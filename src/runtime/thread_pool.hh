/**
 * @file
 * Fixed-size worker pool behind qpad's parallel primitives.
 *
 * The pool is deliberately simple: a FIFO of type-erased tasks and N
 * workers that drain it. Determinism is NOT the pool's job — tasks
 * may run in any order on any worker — it is provided one level up
 * by parallel_for/parallel_reduce, which assign work to fixed chunk
 * indices and merge results in chunk order (see runtime/parallel.hh).
 */

#ifndef QPAD_RUNTIME_THREAD_POOL_HH
#define QPAD_RUNTIME_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace qpad::runtime
{

/** Fixed-size thread pool with a shared task queue. */
class ThreadPool
{
  public:
    /** Spawn `num_threads` workers (>= 1). */
    explicit ThreadPool(std::size_t num_threads);

    /** Drains nothing: pending tasks are completed before exit. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /**
     * Enqueue a task. The returned future observes completion and
     * rethrows any exception the task raised.
     */
    std::future<void> submit(std::function<void()> task);

    /**
     * Pop and run one queued task on the calling thread; false if
     * the queue was empty. Lets a thread that is waiting for its
     * own submissions make progress instead of blocking — the
     * ingredient that keeps nested parallel regions deadlock-free
     * (see runtime/parallel.hh).
     */
    bool tryRunOne();

    /**
     * Process-wide shared pool, lazily created with
     * hardware_concurrency() - 1 workers (the thread that calls a
     * parallel primitive participates in the work itself, so pool
     * workers plus caller saturate the machine). Never destroyed
     * before program exit.
     */
    static ThreadPool &global();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::packaged_task<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

} // namespace qpad::runtime

#endif // QPAD_RUNTIME_THREAD_POOL_HH

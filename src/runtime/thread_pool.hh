/**
 * @file
 * Worker pool behind qpad's parallel primitives: per-worker task
 * slots with condition-variable wakeups and pool-level stealing.
 *
 * Each worker owns a slot — a mutex, a condition variable, and a
 * small queue — instead of the single shared FIFO the pool started
 * with: a submission wakes exactly the worker it targets (preferring
 * an idle one), so nothing contends on a global lock and nothing
 * sleep-polls. A worker that drains its own slot steals the oldest
 * item from a sibling's slot before sleeping, so a backlog behind a
 * busy worker cannot idle the rest of the pool.
 *
 * The pool schedules two kinds of items: type-erased one-shot tasks
 * (submit(), observed through a future) and parallel-region helper
 * offers (dispatchRegion(), see runtime/region.hh). Determinism is
 * NOT the pool's job — items run in any order on any worker — it is
 * provided one level up by parallel_for/parallel_reduce, which fix
 * chunk identity and merge order (see runtime/parallel.hh).
 */

#ifndef QPAD_RUNTIME_THREAD_POOL_HH
#define QPAD_RUNTIME_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace qpad::runtime
{

namespace detail
{
class RegionState;
}

/** Fixed-size thread pool with per-worker task slots. */
class ThreadPool
{
  public:
    /** Spawn `num_threads` workers (>= 1). */
    explicit ThreadPool(std::size_t num_threads);

    /**
     * Pending one-shot tasks are completed before exit (each worker
     * drains its own slot once stopping is signalled), and helper
     * items whose region already finished retire during the join —
     * a region counts as active from dispatchRegion until its
     * caller's waitDone returns, not until the last helper retires.
     *
     * Destroying a pool while a region is still active (dispatched,
     * completion not yet observed) is a documented loud failure
     * (stderr message + std::abort), never a hang: the region's
     * caller is blocked in waitDone() fed by the helpers we would
     * stop, so joining the workers could deadlock against it, and
     * throwing from a destructor would terminate with no message.
     * Hitting this means a pool was torn down mid-region.
     */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t size() const { return threads_.size(); }

    /**
     * Enqueue a one-shot task on an idle worker's slot (round-robin
     * when all are busy) and wake that worker. The returned future
     * observes completion and rethrows any exception the task
     * raised.
     */
    std::future<void> submit(std::function<void()> task);

    /**
     * Offer up to `helpers` helper slots of a parallel region to the
     * workers (one queue item each, skipping the calling worker if
     * the caller is itself a pool worker — it is already runner 0 of
     * the region). Returns immediately; a worker that picks an offer
     * up late, after the region's caller already finished the range,
     * retires harmlessly (see runtime/region.hh lifetime notes).
     */
    void dispatchRegion(std::shared_ptr<detail::RegionState> region,
                        std::size_t helpers);

    /**
     * Process-wide shared pool, lazily created with
     * hardware_concurrency() - 1 workers (the thread that calls a
     * parallel primitive participates in the work itself, so pool
     * workers plus caller saturate the machine). Never destroyed
     * before program exit.
     */
    static ThreadPool &global();

    /** Region helper items queued or executing right now. Nonzero
     * after a region completed is normal (late helpers retire on
     * their own schedule) and safe to destruct through. */
    std::size_t activeRegionItems() const
    {
        return region_items_.load(std::memory_order_seq_cst);
    }

    /** Regions dispatched whose caller has not yet observed
     * completion through waitDone; nonzero at destruction is the
     * documented abort (see ~ThreadPool). */
    std::size_t activeRegions() const
    {
        return active_regions_.load(std::memory_order_seq_cst);
    }

  private:
    /** One queued work item: exactly one of the two is set. */
    struct Item
    {
        std::packaged_task<void()> task;
        std::shared_ptr<detail::RegionState> region;
    };

    /** Per-worker task slot. */
    struct Slot
    {
        std::mutex mutex;
        std::condition_variable cv;
        std::deque<Item> queue;
        /** Executing an item right now. Heuristic only (read without
         * the mutex for target preference); never used for
         * correctness decisions. */
        std::atomic<bool> busy{false};
        /** Worker is blocked in its CV wait. Guarded by `mutex`, so
         * enqueueOn's sleeper scan cannot race the wait entry/exit
         * (unlike `busy`, which flips outside the lock). */
        bool sleeping = false;
    };

    void workerLoop(std::size_t worker);
    bool popOwn(std::size_t worker, Item &out);
    bool stealOther(std::size_t worker, Item &out);
    void runItem(Item &item);

    /** Push to `worker`'s slot and wake it. */
    void enqueueOn(std::size_t worker, Item item);

    std::vector<std::thread> threads_;
    std::vector<std::unique_ptr<Slot>> slots_;
    std::atomic<bool> stopping_{false};
    std::atomic<std::size_t> round_robin_{0};
    /** Items queued (any slot) and not yet popped: lets an idle
     * worker's wait predicate see stealable work behind a busy
     * sibling instead of sleeping through it. */
    std::atomic<std::size_t> queued_{0};
    /** Region helper items queued or executing (enqueueOn increments,
     * runItem decrements after helperEntry returns). Observability
     * only — late retirees keep this nonzero past region completion,
     * so it cannot serve as the destructor tripwire. */
    std::atomic<std::size_t> region_items_{0};
    /** Regions dispatched whose caller has not yet returned from
     * waitDone (dispatchRegion increments and arms the region's
     * finished signal; RegionState::waitDone decrements); the
     * destructor's active-region tripwire. */
    std::atomic<std::size_t> active_regions_{0};
};

} // namespace qpad::runtime

#endif // QPAD_RUNTIME_THREAD_POOL_HH

#include "runtime/thread_pool.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "obs/flight.hh"
#include "runtime/region.hh"

namespace qpad::runtime
{

namespace
{

/** Which pool (and which worker index) the current thread is, so
 * dispatchRegion never offers a region back to the worker that is
 * opening it (that worker is already the region's runner 0). */
thread_local const ThreadPool *t_pool = nullptr;
thread_local std::size_t t_worker = 0;

} // namespace

ThreadPool::ThreadPool(std::size_t num_threads)
{
    qpad_assert(num_threads >= 1, "ThreadPool needs at least 1 worker");
    slots_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        slots_.push_back(std::make_unique<Slot>());
    threads_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    // Tearing the pool down mid-region can deadlock the join below
    // against the region's caller (blocked in waitDone, fed by the
    // helpers we are about to stop), and qpad_panic throws — which a
    // noexcept destructor turns into a bare std::terminate. Fail
    // loudly and unambiguously instead (see the ~ThreadPool doc).
    if (active_regions_.load(std::memory_order_seq_cst) != 0) {
        // Preserve the evidence before dying: a clean balanced dump
        // of the flight rings when QPAD_FLIGHT is armed (the SIGABRT
        // handler would otherwise produce the rawer signal-path
        // dump; dumpNow's once-flag makes the two not race).
        obs::flight::dumpNow();
        // qpad-lint: allow(rawlog) "abort path: the structured
        // logger may allocate or lock during teardown; raw stderr is
        // the only safe reporter here"
        std::fprintf(stderr,
                     "qpad: fatal: ThreadPool destroyed while a "
                     "parallel region is still active (%zu "
                     "region(s) dispatched without an observed "
                     "completion); a pool must outlive every "
                     "region dispatched to it\n",
                     activeRegions());
        std::fflush(stderr);
        std::abort();
    }
    stopping_.store(true, std::memory_order_seq_cst);
    for (auto &slot : slots_) {
        // Taking the lock pairs with the waiter's predicate check,
        // so no worker can miss the stop signal between its check
        // and its wait.
        std::lock_guard<std::mutex> lock(slot->mutex);
        slot->cv.notify_all();
    }
    for (auto &thread : threads_)
        thread.join();
}

void
ThreadPool::enqueueOn(std::size_t worker, Item item)
{
    Slot &slot = *slots_[worker];
    bool target_sleeping;
    {
        std::lock_guard<std::mutex> lock(slot.mutex);
        // qpad-lint: allow(atomic-relaxed) "assert-only read; the
        // destructor's seq_cst store makes a true value stick"
        qpad_assert(!stopping_.load(std::memory_order_relaxed),
                    "enqueue on a stopping ThreadPool");
        if (item.region)
            region_items_.fetch_add(1, std::memory_order_seq_cst);
        slot.queue.push_back(std::move(item));
        // qpad-lint: allow(atomic-relaxed) "counter is ordered by the
        // slot mutex held here; see the pairing note below"
        queued_.fetch_add(1, std::memory_order_relaxed);
        target_sleeping = slot.sleeping;
    }
    slot.cv.notify_one();
    // A target observed asleep under its own mutex is guaranteed to
    // wake and run the item itself — done. Otherwise it may be
    // mid-item, leaving the new item stealable, but a sibling that
    // is already asleep will not look: wake ONE sleeping sibling (at
    // most). `sleeping` is mutated only under the slot mutex, so for
    // every sibling either we lock first and it then sees
    // queued_ > 0 in its wait predicate (mutex release/acquire
    // orders the counter), or it locks first and is inside the wait
    // when our notify lands. (An earlier busy-flag variant raced the
    // flag update around popOwn/stealOther; an all-siblings
    // broadcast cost O(workers) lock/notify pairs per item.) One
    // wake per enqueued item keeps the no-stranding guarantee: a
    // woken sibling drains everything it can reach before sleeping
    // again.
    if (target_sleeping)
        return;
    for (std::size_t k = 1; k < slots_.size(); ++k) {
        Slot &sibling = *slots_[(worker + k) % slots_.size()];
        std::lock_guard<std::mutex> lock(sibling.mutex);
        if (sibling.sleeping) {
            sibling.cv.notify_one();
            return;
        }
    }
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    Item item;
    item.task = std::packaged_task<void()>(std::move(task));
    std::future<void> future = item.task.get_future();

    // Prefer a worker that is not currently executing anything: its
    // slot wakeup runs the task immediately instead of queueing it
    // behind someone's long-running item.
    const std::size_t n = slots_.size();
    // qpad-lint: allow(atomic-relaxed) "placement hint only; any
    // interleaving of tickets spreads load acceptably"
    const std::size_t start =
        round_robin_.fetch_add(1, std::memory_order_relaxed) % n;
    std::size_t target = start;
    for (std::size_t k = 0; k < n; ++k) {
        const std::size_t w = (start + k) % n;
        // qpad-lint: allow(atomic-relaxed) "placement hint only; a
        // stale busy flag just queues behind a running item"
        if (!slots_[w]->busy.load(std::memory_order_relaxed)) {
            target = w;
            break;
        }
    }
    enqueueOn(target, std::move(item));
    return future;
}

void
ThreadPool::dispatchRegion(std::shared_ptr<detail::RegionState> region,
                           std::size_t helpers)
{
    const std::size_t n = slots_.size();
    const bool on_worker = t_pool == this;
    // Count the region as active until its caller observes
    // completion: waitDone decrements through the armed signal, so
    // the destructor tripwire covers dispatch → observed-complete,
    // not the (longer, harmless) lifetime of late helper items.
    active_regions_.fetch_add(1, std::memory_order_seq_cst);
    region->armFinishedSignal(active_regions_);
    // qpad-lint: allow(atomic-relaxed) "placement hint only; any
    // interleaving of tickets spreads load acceptably"
    const std::size_t start =
        round_robin_.fetch_add(1, std::memory_order_relaxed) % n;
    // Build the target order from ONE snapshot of the busy flags —
    // idle workers first (they pick the offer up with one CV wakeup),
    // then busy ones, whose queued offer is either reached later or
    // stolen by whoever idles first. A single ordered list (rather
    // than re-reading the flags per preference pass) guarantees each
    // worker gets at most one offer and that min(helpers, n - self)
    // offers are always made, however the flags flip mid-scan.
    std::vector<std::size_t> targets;
    std::vector<std::size_t> busy_targets;
    targets.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
        const std::size_t w = (start + k) % n;
        if (on_worker && w == t_worker)
            continue;
        // qpad-lint: allow(atomic-relaxed) "placement hint only; a
        // stale busy flag just reorders the offer list"
        if (slots_[w]->busy.load(std::memory_order_relaxed))
            busy_targets.push_back(w);
        else
            targets.push_back(w);
    }
    targets.insert(targets.end(), busy_targets.begin(),
                   busy_targets.end());
    for (std::size_t i = 0; i < targets.size() && i < helpers; ++i) {
        Item item;
        item.region = region;
        enqueueOn(targets[i], std::move(item));
    }
}

bool
ThreadPool::popOwn(std::size_t worker, Item &out)
{
    Slot &slot = *slots_[worker];
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (slot.queue.empty())
        return false;
    out = std::move(slot.queue.front());
    slot.queue.pop_front();
    // qpad-lint: allow(atomic-relaxed) "counter is ordered by the
    // slot mutex held here; see enqueueOn's pairing note"
    queued_.fetch_sub(1, std::memory_order_relaxed);
    return true;
}

bool
ThreadPool::stealOther(std::size_t worker, Item &out)
{
    const std::size_t n = slots_.size();
    for (std::size_t k = 1; k < n; ++k) {
        Slot &victim = *slots_[(worker + k) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (victim.queue.empty())
            continue;
        // Oldest first: the victim's owner will get to the newer
        // items soonest, so the head has waited the longest.
        out = std::move(victim.queue.front());
        victim.queue.pop_front();
        // qpad-lint: allow(atomic-relaxed) "counter is ordered by the
        // victim's mutex held here; see enqueueOn's pairing note"
        queued_.fetch_sub(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

void
ThreadPool::runItem(Item &item)
{
    if (item.region) {
        item.region->helperEntry();
        region_items_.fetch_sub(1, std::memory_order_seq_cst);
    } else {
        item.task(); // exceptions land in the matching future
    }
}

void
ThreadPool::workerLoop(std::size_t worker)
{
    t_pool = this;
    t_worker = worker;
    Slot &own = *slots_[worker];
    for (;;) {
        Item item;
        if (popOwn(worker, item) || stealOther(worker, item)) {
            // qpad-lint: allow(atomic-relaxed) "busy is a placement
            // hint; readers tolerate any staleness"
            own.busy.store(true, std::memory_order_relaxed);
            runItem(item);
            // qpad-lint: allow(atomic-relaxed) "busy is a placement
            // hint; readers tolerate any staleness"
            own.busy.store(false, std::memory_order_relaxed);
            continue;
        }
        std::unique_lock<std::mutex> lock(own.mutex);
        // qpad-lint: allow(atomic-relaxed) "own.mutex is held; the
        // destructor stores stopping_ then notifies under it"
        if (stopping_.load(std::memory_order_relaxed) &&
            own.queue.empty())
            return; // own slot drained; siblings drain their own
        // queued_ > 0 covers items sitting in a *sibling's* queue:
        // the outer loop re-runs stealOther on wakeup, so an idle
        // worker never sleeps while stealable work exists (see
        // enqueueOn for the pairing).
        own.sleeping = true;
        own.cv.wait(lock, [this, &own] {
            // qpad-lint: allow(atomic-relaxed) "predicate runs under
            // own.mutex; notifiers store/notify under a slot mutex"
            return stopping_.load(std::memory_order_relaxed) ||
                   !own.queue.empty() ||
                   queued_.load(std::memory_order_relaxed) > 0;
        });
        own.sleeping = false;
    }
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(std::max<std::size_t>(
        1, std::thread::hardware_concurrency() == 0
               ? 1
               : std::thread::hardware_concurrency() - 1));
    return pool;
}

} // namespace qpad::runtime

#include "runtime/thread_pool.hh"

#include <algorithm>

#include "common/logging.hh"

namespace qpad::runtime
{

ThreadPool::ThreadPool(std::size_t num_threads)
{
    qpad_assert(num_threads >= 1, "ThreadPool needs at least 1 worker");
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    std::packaged_task<void()> wrapped(std::move(task));
    std::future<void> future = wrapped.get_future();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        qpad_assert(!stopping_, "submit() on a stopping ThreadPool");
        queue_.push_back(std::move(wrapped));
    }
    cv_.notify_one();
    return future;
}

bool
ThreadPool::tryRunOne()
{
    std::packaged_task<void()> task;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.empty())
            return false;
        task = std::move(queue_.front());
        queue_.pop_front();
    }
    task();
    return true;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(); // exceptions land in the matching future
    }
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(std::max<std::size_t>(
        1, std::thread::hardware_concurrency() == 0
               ? 1
               : std::thread::hardware_concurrency() - 1));
    return pool;
}

} // namespace qpad::runtime

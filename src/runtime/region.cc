#include "runtime/region.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"
#include "common/rng.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "runtime/thread_pool.hh"

namespace qpad::runtime::detail
{

namespace
{

using clock = std::chrono::steady_clock;

double
secondsSince(clock::time_point t0)
{
    // qpad-lint: allow(no-wallclock) "idle/duration accounting only;
    // feeds metrics and never steers scheduling or results"
    return std::chrono::duration<double>(clock::now() - t0).count();
}

/** Fold one completed region into the process metrics registry. */
void
publishRegion(const RegionStats &stats, double seconds)
{
    static obs::Counter &regions = obs::counter("runtime.regions");
    static obs::Counter &chunks = obs::counter("runtime.chunks");
    static obs::Counter &steals = obs::counter("runtime.steals");
    static obs::Histogram &duration =
        obs::histogram("runtime.region_seconds");
    static obs::Histogram &idle =
        obs::histogram("runtime.region_idle_seconds");
    regions.add();
    chunks.add(stats.chunks);
    steals.add(stats.steals);
    duration.observe(seconds);
    idle.observe(stats.max_idle_seconds);
}

} // namespace

RegionState::RegionState(std::size_t runners, std::size_t chunks,
                         std::function<void(std::size_t)> run_chunk,
                         const exec::CancelToken *cancel,
                         uint64_t request_id)
    : run_chunk_(std::move(run_chunk)), runners_(runners),
      cancel_(cancel), request_id_(request_id), pending_(chunks),
      claimed_(runners)
{
    qpad_assert(runners >= 1, "region needs at least one runner");
    deques_.reserve(runners);
    for (std::size_t i = 0; i < runners; ++i)
        deques_.push_back(std::make_unique<ChunkDeque>());
}

void
RegionState::loadDeque(std::size_t id, std::vector<std::size_t> items)
{
    deques_[id]->reset(std::move(items));
}

void
RegionState::helperEntry()
{
    // qpad-lint: allow(atomic-relaxed) "slot ticket only; the deque
    // contents were published before dispatch via the pool mutexes"
    const std::size_t id =
        next_runner_.fetch_add(1, std::memory_order_relaxed);
    if (id >= runners_)
        return; // every runner slot already claimed
    runAs(id);
}

void
RegionState::runAs(std::size_t id)
{
    // Tag this runner with the owning request for the duration of
    // the region, so spans and log/flight events recorded inside
    // (possibly stolen) chunks carry the request id — on helpers as
    // well as on the caller.
    obs::ScopedRequestId rid_scope(request_id_);
    uint64_t rng_state = 0x2545f4914f6cdd1dull * (id + 1);
    uint64_t idle_ns = 0;
    for (;;) {
        std::size_t c = deques_[id]->take();
        if (c == ChunkDeque::kEmpty) {
            // qpad-lint: allow(no-wallclock) "idle-time accounting
            // for runtime.region_idle_seconds; observability only"
            const auto idle_begin = clock::now();
            c = stealLoop(id, rng_state);
            idle_ns += uint64_t(secondsSince(idle_begin) * 1e9);
            if (c == ChunkDeque::kEmpty)
                break; // no unclaimed chunk anywhere
            // qpad-lint: allow(atomic-relaxed) "monotonic stat
            // counter; never synchronizes data"
            steals_.fetch_add(1, std::memory_order_relaxed);
        }
        // Cancellation poll at the chunk-claim boundary — strictly
        // AFTER the claim: the claimed chunk keeps pending_ > 0,
        // which pins the region's caller in waitDone and thereby
        // keeps the (caller-owned, often stack-resident) token
        // alive. A late helper that finds the deques drained breaks
        // out above without ever touching cancel_. A stop is
        // recorded through the first-error-wins path, so from here
        // on the remaining chunks are claimed-but-skipped: the
        // deques drain, pending_ reaches zero, and the caller wakes
        // holding a CancelledError. Never mid-chunk — a chunk that
        // started always finishes, which is what keeps completed
        // results bit-identical to uncancelled runs.
        // qpad-lint: allow(atomic-relaxed) "best-effort skip flag;
        // the error itself is published under error_mutex_"
        if (cancel_ != nullptr &&
            !failed_.load(std::memory_order_relaxed)) {
            const exec::StopReason reason = cancel_->stopReason();
            if (reason != exec::StopReason::kNone)
                recordStop(reason);
        }
        // After a failure the remaining chunks are claimed but
        // skipped, so pending_ still drains and waiters wake.
        // qpad-lint: allow(atomic-relaxed) "best-effort skip flag;
        // the error itself is published under error_mutex_"
        if (!failed_.load(std::memory_order_relaxed)) {
            try {
                run_chunk_(c);
            } catch (...) {
                recordError();
            }
        }
        // qpad-lint: allow(atomic-relaxed) "per-runner stat counter;
        // read only after pending_ acq/rel orders the region done"
        claimed_[id].fetch_add(1, std::memory_order_relaxed);
        finishChunk();
    }
    if (idle_ns > 0)
        recordIdle(double(idle_ns) * 1e-9);
}

std::size_t
RegionState::stealLoop(std::size_t self, uint64_t &rng_state)
{
    for (;;) {
        bool contended = false;
        // Victim-order randomization only; which runner steals which
        // chunk never affects results.
        const std::size_t offset =
            Rng::splitMix64(rng_state) % runners_;
        for (std::size_t k = 0; k < runners_; ++k) {
            const std::size_t victim = (offset + k) % runners_;
            if (victim == self)
                continue;
            const std::size_t c = deques_[victim]->steal();
            if (c == ChunkDeque::kAbort) {
                contended = true; // another thief won; re-sweep
                continue;
            }
            if (c != ChunkDeque::kEmpty)
                return c;
        }
        if (!contended)
            return ChunkDeque::kEmpty;
        // Every abort means some other runner claimed a chunk, so
        // re-sweeping makes global progress and terminates.
    }
}

void
RegionState::finishChunk()
{
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(done_mutex_);
        done_cv_.notify_all();
    }
}

void
RegionState::waitDone()
{
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock, [this] {
        return pending_.load(std::memory_order_acquire) == 0;
    });
    // Disarm before returning, not in finishChunk: the caller may
    // destroy the pool the instant this returns, and the decrement
    // must be ordered before that (a finishing runner decrementing
    // after our wakeup would race the pool's destructor tripwire).
    if (finished_signal_ != nullptr) {
        finished_signal_->fetch_sub(1, std::memory_order_seq_cst);
        finished_signal_ = nullptr;
    }
}

void
RegionState::armFinishedSignal(std::atomic<std::size_t> &counter)
{
    // Pre-dispatch only (single-threaded); the pool's enqueue mutexes
    // publish the pointer to whichever thread later runs waitDone.
    finished_signal_ = &counter;
}

void
RegionState::recordIdle(double seconds)
{
    const uint64_t ns = uint64_t(seconds * 1e9);
    // qpad-lint: allow(atomic-relaxed) "stat max; value is only a
    // metric and carries no payload"
    uint64_t seen = max_idle_ns_.load(std::memory_order_relaxed);
    // qpad-lint: allow(atomic-relaxed) "stat max CAS; same contract
    // as the load above"
    while (seen < ns &&
           !max_idle_ns_.compare_exchange_weak(
               seen, ns, std::memory_order_relaxed))
        ;
}

void
RegionState::recordError()
{
    {
        std::lock_guard<std::mutex> lock(error_mutex_);
        if (!error_)
            error_ = std::current_exception();
    }
    // qpad-lint: allow(atomic-relaxed) "best-effort skip hint; the
    // exception is published under error_mutex_ above"
    failed_.store(true, std::memory_order_relaxed);
}

void
RegionState::recordStop(exec::StopReason reason)
{
    {
        std::lock_guard<std::mutex> lock(error_mutex_);
        // First error wins: a stop that loses to an earlier chunk
        // exception (or an earlier stop) bumps no counter, so
        // exec.cancelled counts stopped regions, not polls.
        if (!error_) {
            error_ = std::make_exception_ptr(
                exec::CancelledError(reason));
            exec::noteStopped(reason);
        }
    }
    // qpad-lint: allow(atomic-relaxed) "best-effort skip hint; the
    // exception is published under error_mutex_ above"
    failed_.store(true, std::memory_order_relaxed);
}

void
RegionState::collectStats(RegionStats &out) const
{
    out.threads = runners_;
    out.chunks = 0;
    // qpad-lint: allow(atomic-relaxed) "stat read; waitDone's
    // acquire on pending_ already ordered all runner writes"
    out.steals = steals_.load(std::memory_order_relaxed);
    // qpad-lint: allow(atomic-relaxed) "stat read; same ordering
    // argument as steals_ above"
    out.max_idle_seconds =
        double(max_idle_ns_.load(std::memory_order_relaxed)) * 1e-9;
    out.chunks_per_runner.assign(runners_, 0);
    for (std::size_t i = 0; i < runners_; ++i) {
        // qpad-lint: allow(atomic-relaxed) "stat read; same ordering
        // argument as steals_ above"
        out.chunks_per_runner[i] =
            claimed_[i].load(std::memory_order_relaxed);
        out.chunks += out.chunks_per_runner[i];
    }
}

void
RegionState::rethrowIfFailed()
{
    // MOVE the exception out rather than copying it: the region can
    // outlive this call on a late-starting pool worker (shared_ptr
    // lifetime, see region.hh), and if the region still held a
    // reference, that worker would perform the final release of the
    // exception object the caller's catch block is reading.
    std::exception_ptr error;
    {
        std::lock_guard<std::mutex> lock(error_mutex_);
        std::swap(error, error_);
    }
    if (error)
        std::rethrow_exception(error);
}

void
runRegion(std::size_t chunks, std::size_t threads, bool guided,
          std::function<void(std::size_t)> run_chunk,
          const exec::CancelToken *cancel, RegionStats *stats,
          uint64_t request_id)
{
    qpad_assert(threads >= 2 && threads <= chunks,
                "runRegion caller must pre-clamp the runner count");
    obs::ScopedRequestId rid_scope(request_id);
    QPAD_SPAN("runtime.region");
    // qpad-lint: allow(no-wallclock) "region duration metric only;
    // never steers scheduling or results"
    const auto region_begin = clock::now();
    auto region = std::make_shared<RegionState>(
        threads, chunks, std::move(run_chunk), cancel, request_id);

    // Initial deal. Guided: strided, so every runner starts with a
    // mix of large (early) and small (late) chunks and the expensive
    // head blocks begin on distinct runners immediately. Fixed:
    // contiguous ranges, so a runner walks adjacent chunks (cache-
    // and prefetch-friendly for block-sized Monte Carlo bodies).
    // Each list is stored reversed: ChunkDeque owners pop from the
    // back, and the owner should run its chunks in ascending order.
    std::vector<std::vector<std::size_t>> lists(threads);
    if (guided) {
        for (std::size_t c = 0; c < chunks; ++c)
            lists[c % threads].push_back(c);
    } else {
        const std::size_t base = chunks / threads;
        const std::size_t extra = chunks % threads;
        std::size_t next = 0;
        for (std::size_t r = 0; r < threads; ++r) {
            const std::size_t count = base + (r < extra ? 1 : 0);
            for (std::size_t k = 0; k < count; ++k)
                lists[r].push_back(next++);
        }
    }
    for (std::size_t r = 0; r < threads; ++r) {
        std::vector<std::size_t> &list = lists[r];
        std::reverse(list.begin(), list.end());
        region->loadDeque(r, std::move(list));
    }

    // Offer helper slots to the pool (never to the calling worker
    // itself) and work the region as runner 0. If the pool is
    // saturated — e.g. a nested region on a busy machine — the
    // helpers simply start late or never, and the caller steals the
    // whole range itself: graceful degradation to sequential
    // execution instead of a blocked cycle.
    ThreadPool::global().dispatchRegion(region, threads - 1);
    region->runAs(0);
    // qpad-lint: allow(no-wallclock) "caller wait time feeds the
    // idle metric only"
    const auto wait_begin = std::chrono::steady_clock::now();
    region->waitDone();
    region->recordIdle(secondsSince(wait_begin));

    // Scheduler statistics always flow into the metrics registry
    // (the RegionStats sink is the per-region view, the registry the
    // process-wide one), and before the rethrow so failed regions
    // are counted too.
    RegionStats local;
    RegionStats &collected = stats ? *stats : local;
    region->collectStats(collected);
    publishRegion(collected, secondsSince(region_begin));
    region->rethrowIfFailed();
}

} // namespace qpad::runtime::detail

/**
 * @file
 * Deterministic seed splitting for parallel Monte Carlo.
 *
 * A SeedSequence turns one user-facing seed into an unbounded family
 * of statistically independent child streams, indexed by a stream
 * number. Parallel workloads pair one stream with one *chunk index*
 * (not one thread!), so the random numbers a chunk consumes are a
 * pure function of (seed, chunk) and results match the sequential
 * run bit for bit. The derivation scheme itself is documented with
 * Rng::childSeed in common/rng.hh.
 *
 * The splitting is applied at two levels. Shard level: chunk c of a
 * Monte Carlo run draws from child stream c of the user seed (both
 * draw schemes, see RngScheme in common/gauss_block.hh). Lane
 * level, v2 only: within a shard, the GaussianBlockSampler seeded
 * with childSeed(user_seed, c) derives its eight generator lanes as
 * child streams 0..7 of *that* child seed. The nesting keeps every
 * lane a pure function of (user seed, chunk, lane), so v2 inherits
 * the same thread-count independence the shard scheme provides —
 * the child seeds are hashed twice through SplitMix64, making
 * shard-stream/lane-stream collisions as unlikely as any other
 * 64-bit seed collision.
 */

#ifndef QPAD_RUNTIME_SEED_SEQ_HH
#define QPAD_RUNTIME_SEED_SEQ_HH

#include <cstdint>

#include "common/rng.hh"

namespace qpad::runtime
{

/** Splits a base seed into independent per-stream child seeds. */
class SeedSequence
{
  public:
    explicit SeedSequence(uint64_t base) : base_(base) {}

    /** Base seed this sequence derives from. */
    uint64_t base() const { return base_; }

    /** Child seed of stream `stream` (pure function of inputs). */
    uint64_t childSeed(uint64_t stream) const
    {
        return Rng::childSeed(base_, stream);
    }

    /** Generator seeded for stream `stream`. */
    Rng childRng(uint64_t stream) const
    {
        return Rng(childSeed(stream));
    }

  private:
    uint64_t base_;
};

} // namespace qpad::runtime

#endif // QPAD_RUNTIME_SEED_SEQ_HH

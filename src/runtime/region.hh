/**
 * @file
 * Parallel-region execution state for the work-stealing scheduler.
 *
 * One RegionState is the shared heart of one parallel_for /
 * parallel_reduce call: the type-erased chunk body, one ChunkDeque
 * per runner, the outstanding-chunk counter the caller's completion
 * wait hangs off, first-error-wins exception capture, and the
 * scheduler counters surfaced through RegionStats.
 *
 * Lifetime: regions are heap-allocated and shared_ptr-owned by the
 * caller *and* by every helper task queued on the ThreadPool. The
 * caller returns as soon as every chunk has finished executing
 * (pending == 0) — helpers that the pool only gets around to
 * starting later find the deques drained, touch nothing but the
 * region's own atomics, and retire. That is what makes the engine
 * deadlock-free without the old sleep-polling "helping wait": the
 * caller always participates as runner 0 and can steal every chunk
 * itself, so completion never depends on a helper actually starting.
 */

#ifndef QPAD_RUNTIME_REGION_HH
#define QPAD_RUNTIME_REGION_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "exec/cancel.hh"
#include "runtime/chunk_deque.hh"

namespace qpad::runtime
{

/**
 * Per-region scheduler statistics, filled into Options::stats when
 * the region completes. Point at most one live region at a stats
 * object at a time: each region overwrites the whole struct, and
 * nested regions run concurrently.
 */
struct RegionStats
{
    /**
     * Runner slots the region allocated (caller included). A slot
     * whose helper offer was never picked up — e.g. on a saturated
     * pool, where the caller steals the whole range — shows zero in
     * chunks_per_runner; count the nonzero entries for the runners
     * that actually executed work.
     */
    std::size_t threads = 0;
    /** Chunks the range was split into. */
    std::size_t chunks = 0;
    /** Chunks claimed by a runner other than their deque's owner. */
    std::size_t steals = 0;
    /**
     * Worst per-runner time spent hunting for work or waiting for
     * stragglers, in seconds. Best-effort: a helper still retiring
     * when the caller collects the stats (possible — the caller
     * does not wait for helpers, only for chunks) reports its idle
     * time too late to be counted.
     */
    double max_idle_seconds = 0.0;
    /** Chunks processed by each runner (index 0 = the caller). */
    std::vector<std::size_t> chunks_per_runner;
};

namespace detail
{

/**
 * Guided chunk-size divisor: guided chunk c covers
 * ceil(remaining / kGuidedDivisor) indices of what is left, so sizes
 * decay geometrically from n/8 toward single indices at the tail.
 * Fixed (never derived from the thread count) so guided boundaries
 * stay a pure function of n alone.
 */
constexpr std::size_t kGuidedDivisor = 8;

/**
 * Chunk identity for one region: boundaries as a pure function of
 * (n, grain). grain > 0 produces fixed grain-sized chunks; grain = 0
 * produces the guided decreasing-size sequence (large blocks first,
 * shrinking toward the tail) for skewed per-index costs.
 */
class ChunkPlan
{
  public:
    ChunkPlan(std::size_t n, std::size_t grain) : n_(n), grain_(grain)
    {
        if (grain_ != 0)
            return;
        offsets_.push_back(0);
        std::size_t remaining = n_;
        while (remaining > 0) {
            const std::size_t step =
                (remaining + kGuidedDivisor - 1) / kGuidedDivisor;
            offsets_.push_back(offsets_.back() + step);
            remaining -= step;
        }
    }

    bool guided() const { return grain_ == 0; }

    std::size_t chunks() const
    {
        return guided() ? offsets_.size() - 1
                        : (n_ + grain_ - 1) / grain_;
    }

    /** [begin, end) of chunk c. */
    std::pair<std::size_t, std::size_t> bounds(std::size_t c) const
    {
        if (guided())
            return {offsets_[c], offsets_[c + 1]};
        const std::size_t begin = c * grain_;
        return {begin, std::min(begin + grain_, n_)};
    }

  private:
    std::size_t n_;
    std::size_t grain_;
    std::vector<std::size_t> offsets_; // guided boundaries, chunks+1
};

/** Shared state of one in-flight parallel region. */
class RegionState
{
  public:
    /**
     * `cancel` (may be null = unlimited) is polled at every
     * chunk-claim boundary: once it reports a stop, the remaining
     * chunks are claimed-but-skipped — the deques still drain and
     * pending_ still reaches zero — and a CancelledError is captured
     * through the same first-error-wins path a throwing chunk uses.
     * The token only needs to outlive the caller's waitDone(): the
     * poll happens strictly after a successful claim (which pins the
     * caller), so a late helper that finds no work never reads it.
     *
     * `request_id` (0 = none) tags every runner's thread while it
     * works the region, so spans/log/flight events recorded inside
     * stolen chunks carry the owning request's id. Purely
     * observational — it never affects scheduling or results.
     */
    RegionState(std::size_t runners, std::size_t chunks,
                std::function<void(std::size_t)> run_chunk,
                const exec::CancelToken *cancel,
                uint64_t request_id);

    /** Runner count (deques); runner 0 is the caller. */
    std::size_t runners() const { return runners_; }

    /** Preload runner `id`'s deque (before dispatch only). */
    void loadDeque(std::size_t id, std::vector<std::size_t> items);

    /**
     * Pool-worker entry point: claim the next helper runner id and
     * work the region. Ids beyond runners() mean every runner slot
     * is claimed already (the pool queued more helper tasks than the
     * region ended up needing); such late arrivals retire at once.
     */
    void helperEntry();

    /** Run as runner `id`: drain the own deque, then steal until the
     * region is globally out of unclaimed chunks. */
    void runAs(std::size_t id);

    /** Block (condition variable, no polling) until every chunk has
     * finished executing. Also disarms the finished signal: by the
     * time this returns, the pool no longer counts the region as
     * active, so the caller may tear the pool down immediately. */
    void waitDone();

    /**
     * Arm a one-shot countdown that waitDone() decrements once every
     * chunk has finished. dispatchRegion points this at the pool's
     * active-region counter, so a region is "active" from dispatch
     * until its caller has observed completion — helper items that
     * outlive a finished region (by design; see the lifetime notes
     * above) keep the count at zero. Call before dispatch only.
     */
    void armFinishedSignal(std::atomic<std::size_t> &counter);

    /** Fold `seconds` into the max-idle statistic. */
    void recordIdle(double seconds);

    /**
     * Copy the scheduler counters out (call after waitDone). Chunk
     * counts are exact — every chunk has finished by then — but a
     * helper still retiring may add its idle time after the copy
     * (see RegionStats::max_idle_seconds).
     */
    void collectStats(RegionStats &out) const;

    /** Rethrow the first captured chunk exception, if any. */
    void rethrowIfFailed();

  private:
    /** Randomized sweep over the other deques; kEmpty only when no
     * unclaimed chunk exists anywhere. */
    std::size_t stealLoop(std::size_t self, uint64_t &rng_state);

    /** Chunk done (or skipped after a failure): decrement pending
     * and wake the caller on the last one. */
    void finishChunk();

    void recordError();

    /** Capture a CancelledError(reason) as the region's first error
     * (no-op if a chunk already failed) and set the skip flag. */
    void recordStop(exec::StopReason reason);

    std::function<void(std::size_t)> run_chunk_;
    std::vector<std::unique_ptr<ChunkDeque>> deques_;
    std::size_t runners_;
    const exec::CancelToken *cancel_;
    uint64_t request_id_;

    std::atomic<std::size_t> pending_;
    std::atomic<std::size_t> next_runner_{1};
    std::atomic<bool> failed_{false};

    std::mutex error_mutex_;
    std::exception_ptr error_;

    std::mutex done_mutex_;
    std::condition_variable done_cv_;
    /** Armed before dispatch, read/cleared under done_mutex_ in
     * waitDone (null = never dispatched or already disarmed). */
    std::atomic<std::size_t> *finished_signal_ = nullptr;

    // Scheduler statistics (relaxed counters; read after waitDone).
    std::atomic<std::size_t> steals_{0};
    std::atomic<std::uint64_t> max_idle_ns_{0};
    std::vector<std::atomic<std::size_t>> claimed_;
};

/**
 * Execute `run_chunk(c)` for every c in [0, chunks) on `threads`
 * work-stealing runners (calling thread included). `guided` selects
 * the initial chunk-to-runner deal (strided for guided sizing so
 * every runner starts with a mix of sizes, contiguous otherwise for
 * locality). The first exception thrown by any chunk is rethrown in
 * the caller after every chunk has finished or been skipped; a stop
 * signalled through `cancel` (null = unlimited) surfaces the same
 * way, as a CancelledError.
 */
void runRegion(std::size_t chunks, std::size_t threads, bool guided,
               std::function<void(std::size_t)> run_chunk,
               const exec::CancelToken *cancel, RegionStats *stats,
               uint64_t request_id);

} // namespace detail

} // namespace qpad::runtime

#endif // QPAD_RUNTIME_REGION_HH

/**
 * @file
 * Deterministic chunked-range parallelism.
 *
 * parallel_for / parallel_reduce split the index range [0, n) into
 * fixed-size chunks of `grain` indices. The chunking depends only on
 * (n, grain) — NEVER on the thread count — and reductions combine
 * partial results in ascending chunk order, so any stochastic
 * workload that derives its randomness from the chunk index (via
 * runtime::SeedSequence) produces bit-identical results whether it
 * runs on 1 thread or N. Threads only decide who executes a chunk,
 * not what the chunk computes.
 *
 * Scheduling: chunks are handed out through an atomic counter to the
 * calling thread plus workers borrowed from ThreadPool::global().
 * The caller always participates, and while waiting for its helpers
 * it drains other queued pool tasks (ThreadPool::tryRunOne) instead
 * of blocking. Nested parallel regions therefore cannot deadlock:
 * any thread stuck waiting keeps executing whatever work is queued
 * — including the helpers it is waiting for — so a saturated pool
 * degrades toward sequential execution, never toward a cycle of
 * blocked workers.
 */

#ifndef QPAD_RUNTIME_PARALLEL_HH
#define QPAD_RUNTIME_PARALLEL_HH

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <exception>
#include <future>
#include <mutex>
#include <utility>
#include <vector>

#include "runtime/thread_pool.hh"

namespace qpad::runtime
{

/** Execution configuration carried by subsystem option structs. */
struct Options
{
    /**
     * Worker threads for parallel regions: 0 = one per hardware
     * thread, 1 = legacy sequential execution (no pool involved),
     * N = at most N concurrent chunk runners.
     */
    std::size_t num_threads = 0;
};

/** Resolve Options::num_threads (0 -> hardware concurrency). */
std::size_t resolveThreads(const Options &options);

namespace detail
{

/** Number of `grain`-sized chunks covering [0, n). */
inline std::size_t
numChunks(std::size_t n, std::size_t grain)
{
    return grain == 0 ? 0 : (n + grain - 1) / grain;
}

/**
 * Run `run_chunk(chunk_index)` for every chunk in [0, chunks) on
 * `threads` concurrent runners (calling thread included). The first
 * exception thrown by any chunk is rethrown in the caller after all
 * runners finish; remaining chunks are skipped once a chunk failed.
 */
template <typename RunChunk>
void
runChunks(std::size_t chunks, std::size_t threads, RunChunk &&run_chunk)
{
    if (chunks == 0)
        return;
    if (threads > chunks)
        threads = chunks;
    if (threads <= 1) {
        for (std::size_t c = 0; c < chunks; ++c)
            run_chunk(c);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr error;

    auto runner = [&] {
        for (;;) {
            std::size_t c = next.fetch_add(1);
            if (c >= chunks || failed.load(std::memory_order_relaxed))
                return;
            try {
                run_chunk(c);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
        }
    };

    std::vector<std::future<void>> helpers;
    helpers.reserve(threads - 1);
    for (std::size_t i = 0; i + 1 < threads; ++i)
        helpers.push_back(ThreadPool::global().submit(runner));
    runner(); // the caller works too; never blocks on a full pool
    for (auto &h : helpers) {
        // Helping wait: run queued pool tasks (possibly the very
        // helpers we are waiting for) until this future resolves.
        while (h.wait_for(std::chrono::seconds(0)) !=
               std::future_status::ready) {
            if (!ThreadPool::global().tryRunOne())
                h.wait_for(std::chrono::milliseconds(1));
        }
        h.get();
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace detail

/**
 * Apply `body(begin, end, chunk_index)` to every chunk of [0, n).
 * Chunk boundaries depend only on (n, grain); see the file comment
 * for the determinism contract.
 */
template <typename Body>
void
parallel_for(const Options &options, std::size_t n, std::size_t grain,
             Body &&body)
{
    if (n == 0)
        return;
    if (grain == 0)
        grain = 1;
    const std::size_t chunks = detail::numChunks(n, grain);
    detail::runChunks(chunks, resolveThreads(options),
                      [&](std::size_t c) {
                          const std::size_t begin = c * grain;
                          const std::size_t end =
                              std::min(begin + grain, n);
                          body(begin, end, c);
                      });
}

/**
 * Map-reduce over [0, n): `map(begin, end, chunk_index)` produces one
 * partial result per chunk, folded left-to-right in chunk order with
 * `combine(accumulator, partial)`. The fold order is fixed, so the
 * result is independent of the thread count even for non-commutative
 * or floating-point combines.
 */
template <typename T, typename Map, typename Combine>
T
parallel_reduce(const Options &options, std::size_t n, std::size_t grain,
                T identity, Map &&map, Combine &&combine)
{
    if (n == 0)
        return identity;
    if (grain == 0)
        grain = 1;
    const std::size_t chunks = detail::numChunks(n, grain);
    std::vector<T> partials(chunks, identity);
    detail::runChunks(chunks, resolveThreads(options),
                      [&](std::size_t c) {
                          const std::size_t begin = c * grain;
                          const std::size_t end =
                              std::min(begin + grain, n);
                          partials[c] = map(begin, end, c);
                      });
    T result = std::move(identity);
    for (std::size_t c = 0; c < chunks; ++c)
        result = combine(std::move(result), partials[c]);
    return result;
}

} // namespace qpad::runtime

#endif // QPAD_RUNTIME_PARALLEL_HH

/**
 * @file
 * Deterministic chunked-range parallelism on a work-stealing
 * scheduler.
 *
 * parallel_for / parallel_reduce split the index range [0, n) into
 * chunks whose *identity* — the boundaries — is a pure function of
 * (n, grain) and NEVER of the thread count, and reductions combine
 * partial results in ascending chunk order. Any stochastic workload
 * that derives its randomness from the chunk index (via
 * runtime::SeedSequence) therefore produces bit-identical results
 * whether it runs on 1 thread or N. Threads only decide who executes
 * a chunk, not what the chunk computes.
 *
 * Grain modes:
 *   grain > 0  — fixed: chunk c covers [c*grain, min((c+1)*grain, n)).
 *                Use when per-index cost is uniform, when chunk
 *                bodies are sized around the grain (e.g. the yield
 *                Monte Carlo's SoA lane blocks), and ALWAYS when the
 *                chunk index seeds an RNG stream: guided chunking
 *                changes chunk identity, so it would change the
 *                draws.
 *   grain == 0 — guided: the scheduler picks a decreasing chunk-size
 *                sequence (ceil(remaining/8) per step: large blocks
 *                first, single indices at the tail), a pure function
 *                of n alone. Use for skewed per-index costs — e.g.
 *                data points under adaptive yield escalation, where
 *                one index can be ~100x dearer than its neighbour —
 *                so stragglers end in fine-grained chunks that
 *                spread across workers instead of pinning one.
 *
 * Scheduling (see runtime/region.hh and runtime/chunk_deque.hh):
 * chunks are dealt into per-runner Chase–Lev deques; each runner
 * drains its own deque and then steals from randomly-ordered
 * victims, so a runner that finishes early takes load off whoever is
 * stuck with expensive chunks. The caller always participates as
 * runner 0, helpers are borrowed from ThreadPool::global(), and the
 * caller's completion wait is a condition-variable handshake — no
 * sleep-polling anywhere. Nested parallel regions cannot deadlock:
 * a region's completion never depends on a helper starting, because
 * the caller can steal every chunk itself; a saturated pool degrades
 * toward sequential execution, never toward a cycle of blocked
 * workers.
 *
 * Per-region scheduler statistics (steals, chunks per runner, max
 * idle time) are reported through Options::stats.
 */

#ifndef QPAD_RUNTIME_PARALLEL_HH
#define QPAD_RUNTIME_PARALLEL_HH

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "exec/cancel.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "runtime/region.hh"
#include "runtime/thread_pool.hh"

namespace qpad::runtime
{

/**
 * Ceiling on Options::num_threads: anything larger is a corrupted
 * or misparsed configuration, not a plausible machine. The bench
 * drivers' QPAD_THREADS validation (bench_common.hh) rejects
 * against this same constant, so an env value that passes there can
 * never panic here.
 */
constexpr std::size_t kMaxThreads = 4096;

/** Execution configuration carried by subsystem option structs. */
struct Options
{
    /**
     * Worker threads for parallel regions: 0 = one per hardware
     * thread, 1 = legacy sequential execution (no pool involved),
     * N = at most N concurrent chunk runners (N > hardware is
     * honoured up to one runner per pool worker plus the caller).
     * Values above kMaxThreads are rejected.
     */
    std::size_t num_threads = 0;

    /**
     * Optional per-region statistics sink. Each completed region
     * overwrites the whole struct, so point at most one live region
     * at a given RegionStats at a time (nested regions run
     * concurrently — give them their own sink or none).
     */
    RegionStats *stats = nullptr;

    /**
     * Optional cooperative stop signal (null = unlimited), polled at
     * chunk-claim boundaries. A stop surfaces as exec::CancelledError
     * through the region's first-error-wins path; it never interrupts
     * a chunk mid-flight, so a region that completes is bit-identical
     * to an uncancelled one. Usually attached via
     * exec::Context::apply() rather than set by hand.
     */
    const exec::CancelToken *cancel = nullptr;

    /**
     * Observability only: the id of the request this work belongs to
     * (0 = none), stamped onto every runner thread for the duration
     * of the region so spans and log/flight events recorded inside
     * chunks — stolen ones included — carry it. Usually attached via
     * exec::Context::apply(); never affects scheduling or results.
     */
    uint64_t request_id = 0;
};

/** Resolve Options::num_threads (0 -> hardware concurrency);
 * rejects counts above kMaxThreads. */
std::size_t resolveThreads(const Options &options);

namespace detail
{

/** Runner count for a region: the resolved thread request, capped
 * at one runner per chunk and one per pool worker plus the caller.
 * Touches the global pool only when actually going parallel. */
inline std::size_t
clampRunners(std::size_t threads, std::size_t chunks)
{
    threads = std::min(threads, chunks);
    if (threads <= 1)
        return 1;
    return std::min(threads, ThreadPool::global().size() + 1);
}

/** Fill the stats sink for a sequentially-executed region, and fold
 * the region into the process metrics (parallel regions publish the
 * same series from runRegion). */
inline void
sequentialStats(RegionStats *stats, std::size_t chunks)
{
    static obs::Counter &regions = obs::counter("runtime.seq_regions");
    static obs::Counter &chunk_count = obs::counter("runtime.chunks");
    regions.add();
    chunk_count.add(chunks);
    if (!stats)
        return;
    stats->threads = 1;
    stats->chunks = chunks;
    stats->steals = 0;
    stats->max_idle_seconds = 0.0;
    stats->chunks_per_runner.assign(1, chunks);
}

} // namespace detail

/**
 * Apply `body(begin, end, chunk_index)` to every chunk of [0, n).
 * Chunk boundaries depend only on (n, grain) — grain = 0 selects
 * guided sizing; see the file comment for the determinism contract
 * and for when each grain mode is appropriate.
 */
template <typename Body>
void
parallel_for(const Options &options, std::size_t n, std::size_t grain,
             Body &&body)
{
    // Tag the caller's thread for the sequential path; the parallel
    // path re-tags every runner inside runRegion.
    obs::ScopedRequestId rid_scope(options.request_id);
    if (n == 0) {
        detail::sequentialStats(options.stats, 0);
        return;
    }
    const detail::ChunkPlan plan(n, grain);
    const std::size_t chunks = plan.chunks();
    const std::size_t threads =
        detail::clampRunners(resolveThreads(options), chunks);
    if (threads <= 1) {
        // Stats filled before the loop so a throwing chunk leaves
        // them populated, mirroring the parallel path (which
        // collects stats before rethrowing and counts failure-
        // skipped chunks as claimed — the reported chunk count is
        // the full region either way).
        detail::sequentialStats(options.stats, chunks);
        for (std::size_t c = 0; c < chunks; ++c) {
            exec::throwIfStopped(options.cancel);
            const auto [begin, end] = plan.bounds(c);
            body(begin, end, c);
        }
        return;
    }
    detail::runRegion(chunks, threads, plan.guided(),
                      [&plan, &body](std::size_t c) {
                          const auto [begin, end] = plan.bounds(c);
                          body(begin, end, c);
                      },
                      options.cancel, options.stats,
                      options.request_id);
}

/**
 * Map-reduce over [0, n): `map(begin, end, chunk_index)` produces one
 * partial result per chunk, folded left-to-right in chunk order with
 * `combine(accumulator, partial)`. The fold order is fixed, so the
 * result is independent of the thread count — and of who stole which
 * chunk — even for non-commutative or floating-point combines.
 */
template <typename T, typename Map, typename Combine>
T
parallel_reduce(const Options &options, std::size_t n, std::size_t grain,
                T identity, Map &&map, Combine &&combine)
{
    obs::ScopedRequestId rid_scope(options.request_id);
    if (n == 0) {
        detail::sequentialStats(options.stats, 0);
        return identity;
    }
    const detail::ChunkPlan plan(n, grain);
    const std::size_t chunks = plan.chunks();
    std::vector<T> partials(chunks, identity);
    const std::size_t threads =
        detail::clampRunners(resolveThreads(options), chunks);
    if (threads <= 1) {
        detail::sequentialStats(options.stats, chunks);
        for (std::size_t c = 0; c < chunks; ++c) {
            exec::throwIfStopped(options.cancel);
            const auto [begin, end] = plan.bounds(c);
            partials[c] = map(begin, end, c);
        }
    } else {
        detail::runRegion(chunks, threads, plan.guided(),
                          [&plan, &map, &partials](std::size_t c) {
                              const auto [begin, end] = plan.bounds(c);
                              partials[c] = map(begin, end, c);
                          },
                          options.cancel, options.stats,
                          options.request_id);
    }
    T result = std::move(identity);
    for (std::size_t c = 0; c < chunks; ++c)
        result = combine(std::move(result), partials[c]);
    return result;
}

} // namespace qpad::runtime

#endif // QPAD_RUNTIME_PARALLEL_HH

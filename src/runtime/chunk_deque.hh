/**
 * @file
 * Fixed-content Chase–Lev work-stealing deque of chunk indices.
 *
 * The scheduler preloads every deque with the chunk indices its
 * owning runner is responsible for, *before* any worker starts; no
 * pushes ever happen afterwards. That restriction removes the
 * hardest part of the classic Chase–Lev algorithm (a growing
 * circular buffer whose slots are recycled under concurrent reads):
 * the item array here is immutable while the deque is live, so slot
 * reads can never race a writer and the only synchronization left is
 * the top/bottom index handshake. Every operation uses seq_cst
 * atomics (no standalone fences), which keeps the algorithm exactly
 * analyzable by TSan — the scheduler-stress CI leg runs the whole
 * engine under -fsanitize=thread.
 *
 * Protocol: the owner pops from the *back* of the array (take), and
 * thieves race CAS on the *front* (steal). The scheduler stores each
 * runner's chunk list in reverse, so the owner executes its chunks
 * in ascending chunk-index order — under guided sizing that means
 * largest-first — while thieves strip the owner's latest (smallest)
 * chunks from the other end.
 *
 * Determinism note: which runner pops which chunk is intentionally
 * unspecified. Bit-identical results are guaranteed one level up by
 * the chunk *identity* contract (runtime/parallel.hh): boundaries
 * are a pure function of (n, grain) and reductions fold in ascending
 * chunk order, so assignment is free to race.
 */

#ifndef QPAD_RUNTIME_CHUNK_DEQUE_HH
#define QPAD_RUNTIME_CHUNK_DEQUE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace qpad::runtime::detail
{

/** Work-stealing deque over a preloaded, immutable chunk list. */
class ChunkDeque
{
  public:
    /** take()/steal(): no item available (deque drained). */
    static constexpr std::size_t kEmpty = SIZE_MAX;
    /** steal(): lost a CAS race with another thief; retry. */
    static constexpr std::size_t kAbort = SIZE_MAX - 1;

    ChunkDeque() = default;
    ChunkDeque(const ChunkDeque &) = delete;
    ChunkDeque &operator=(const ChunkDeque &) = delete;

    /**
     * Preload the deque. Must happen-before any take/steal (the
     * scheduler publishes deques through the pool's slot mutexes).
     * The owner's take() order is back-to-front, so pass the list
     * reversed if the owner should run it front-to-back.
     */
    void reset(std::vector<std::size_t> items)
    {
        items_ = std::move(items);
        // qpad-lint: allow(atomic-relaxed) "reset happens-before any
        // take/steal via the pool's slot mutexes (see contract above)"
        top_.store(0, std::memory_order_relaxed);
        // qpad-lint: allow(atomic-relaxed) "same publication contract
        // as the top_ reset store"
        bottom_.store(std::ptrdiff_t(items_.size()),
                      std::memory_order_relaxed);
    }

    /** Owner-only pop from the back; kEmpty when drained. */
    std::size_t take()
    {
        // qpad-lint: allow(atomic-relaxed) "owner-only read of the
        // owner-only index; the seq_cst store below publishes it"
        std::ptrdiff_t b =
            bottom_.load(std::memory_order_relaxed) - 1;
        // The seq_cst store/load pair replaces the classic
        // algorithm's standalone fence: the reservation of slot b
        // must be globally ordered before the top read, or owner and
        // thief could both claim the last item.
        bottom_.store(b, std::memory_order_seq_cst);
        std::ptrdiff_t t = top_.load(std::memory_order_seq_cst);
        if (t < b)
            return items_[std::size_t(b)];
        if (t == b) {
            // Last item: race the thieves for it.
            std::size_t item = items_[std::size_t(b)];
            // qpad-lint: allow(atomic-relaxed) "CAS failure order:
            // a lost race consumes no data, we only restore bottom_"
            if (!top_.compare_exchange_strong(
                    t, t + 1, std::memory_order_seq_cst,
                    std::memory_order_relaxed))
                item = kEmpty; // a thief got there first
            // qpad-lint: allow(atomic-relaxed) "owner-only undo
            // store; the seq_cst store above orders it for thieves"
            bottom_.store(b + 1, std::memory_order_relaxed);
            return item;
        }
        // Already empty; undo the reservation.
        // qpad-lint: allow(atomic-relaxed) "owner-only undo
        // store; the seq_cst store above orders it for thieves"
        bottom_.store(b + 1, std::memory_order_relaxed);
        return kEmpty;
    }

    /** Thief pop from the front; kEmpty when drained, kAbort on a
     * lost race (caller should retry the sweep). */
    std::size_t steal()
    {
        std::ptrdiff_t t = top_.load(std::memory_order_seq_cst);
        std::ptrdiff_t b = bottom_.load(std::memory_order_seq_cst);
        if (t >= b)
            return kEmpty;
        // Reading the slot before the CAS is safe precisely because
        // items_ is immutable: a stale read is simply discarded when
        // the CAS fails.
        std::size_t item = items_[std::size_t(t)];
        // qpad-lint: allow(atomic-relaxed) "CAS failure order: a
        // failed steal discards the slot read and returns kAbort"
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed))
            return kAbort;
        return item;
    }

  private:
    std::vector<std::size_t> items_;
    // Separate cache lines: top_ is hammered by thieves, bottom_ by
    // the owner; sharing a line would bounce it on every operation.
    alignas(64) std::atomic<std::ptrdiff_t> top_{0};
    alignas(64) std::atomic<std::ptrdiff_t> bottom_{0};
};

} // namespace qpad::runtime::detail

#endif // QPAD_RUNTIME_CHUNK_DEQUE_HH

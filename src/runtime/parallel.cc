#include "runtime/parallel.hh"

#include <thread>

#include "common/logging.hh"

namespace qpad::runtime
{

std::size_t
resolveThreads(const Options &options)
{
    qpad_assert(options.num_threads <= kMaxThreads,
                "Options::num_threads = ", options.num_threads,
                " exceeds the ", kMaxThreads,
                "-thread ceiling (malformed configuration?)");
    if (options.num_threads != 0)
        return options.num_threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

} // namespace qpad::runtime

#include "runtime/parallel.hh"

#include <thread>

namespace qpad::runtime
{

std::size_t
resolveThreads(const Options &options)
{
    if (options.num_threads != 0)
        return options.num_threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

} // namespace qpad::runtime

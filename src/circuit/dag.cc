#include "circuit/dag.hh"

#include <algorithm>
#include <queue>

namespace qpad::circuit
{

DependencyDag::DependencyDag(const Circuit &circuit)
    : succs_(circuit.size()), indeg_(circuit.size(), 0)
{
    // last_writer[q] = id of the latest gate touching qubit q.
    constexpr std::size_t none = static_cast<std::size_t>(-1);
    std::vector<std::size_t> last(circuit.numQubits(), none);

    auto link = [this](std::size_t from, std::size_t to) {
        succs_[from].push_back(to);
        ++indeg_[to];
    };

    for (std::size_t id = 0; id < circuit.size(); ++id) {
        const Gate &g = circuit.gate(id);
        if (g.kind == GateKind::Barrier) {
            // Depend on every live chain and restart all of them.
            for (auto &l : last) {
                if (l != none)
                    link(l, id);
                l = id;
            }
            continue;
        }
        for (Qubit q : g.qubits) {
            if (last[q] != none)
                link(last[q], id);
            last[q] = id;
        }
    }

    // Deduplicate edges from gates sharing both qubits with their
    // successor (e.g. back-to-back CX on the same pair).
    for (auto &s : succs_) {
        std::sort(s.begin(), s.end());
        auto last_unique = std::unique(s.begin(), s.end());
        for (auto it = last_unique; it != s.end(); ++it)
            --indeg_[*it];
        s.erase(last_unique, s.end());
    }
}

std::vector<std::size_t>
DependencyDag::roots() const
{
    std::vector<std::size_t> out;
    for (std::size_t id = 0; id < indeg_.size(); ++id)
        if (indeg_[id] == 0)
            out.push_back(id);
    return out;
}

std::size_t
DependencyDag::asapDepth() const
{
    std::vector<std::size_t> indeg = indeg_;
    std::vector<std::size_t> level(numGates(), 0);
    std::queue<std::size_t> ready;
    for (std::size_t id = 0; id < numGates(); ++id)
        if (indeg[id] == 0)
            ready.push(id);

    std::size_t depth = 0;
    while (!ready.empty()) {
        std::size_t id = ready.front();
        ready.pop();
        depth = std::max(depth, level[id] + 1);
        for (std::size_t succ : succs_[id]) {
            level[succ] = std::max(level[succ], level[id] + 1);
            if (--indeg[succ] == 0)
                ready.push(succ);
        }
    }
    return depth;
}

} // namespace qpad::circuit

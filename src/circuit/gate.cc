#include "circuit/gate.hh"

#include <sstream>
#include <unordered_map>

#include "common/logging.hh"

namespace qpad::circuit
{

namespace
{

struct KindInfo
{
    const char *name;
    int num_qubits; // -1 == variable
    int num_params;
};

const KindInfo &
info(GateKind kind)
{
    static const std::unordered_map<GateKind, KindInfo> table = {
        {GateKind::I,       {"id", 1, 0}},
        {GateKind::X,       {"x", 1, 0}},
        {GateKind::Y,       {"y", 1, 0}},
        {GateKind::Z,       {"z", 1, 0}},
        {GateKind::H,       {"h", 1, 0}},
        {GateKind::S,       {"s", 1, 0}},
        {GateKind::Sdg,     {"sdg", 1, 0}},
        {GateKind::T,       {"t", 1, 0}},
        {GateKind::Tdg,     {"tdg", 1, 0}},
        {GateKind::SX,      {"sx", 1, 0}},
        {GateKind::SXdg,    {"sxdg", 1, 0}},
        {GateKind::RX,      {"rx", 1, 1}},
        {GateKind::RY,      {"ry", 1, 1}},
        {GateKind::RZ,      {"rz", 1, 1}},
        {GateKind::P,       {"p", 1, 1}},
        {GateKind::U1,      {"u1", 1, 1}},
        {GateKind::U2,      {"u2", 1, 2}},
        {GateKind::U3,      {"u3", 1, 3}},
        {GateKind::CX,      {"cx", 2, 0}},
        {GateKind::CZ,      {"cz", 2, 0}},
        {GateKind::CP,      {"cp", 2, 1}},
        {GateKind::CRZ,     {"crz", 2, 1}},
        {GateKind::SWAP,    {"swap", 2, 0}},
        {GateKind::RZZ,     {"rzz", 2, 1}},
        {GateKind::CCX,     {"ccx", 3, 0}},
        {GateKind::CSWAP,   {"cswap", 3, 0}},
        {GateKind::Measure, {"measure", 1, 0}},
        {GateKind::Reset,   {"reset", 1, 0}},
        {GateKind::Barrier, {"barrier", -1, 0}},
    };
    auto it = table.find(kind);
    qpad_assert(it != table.end(), "unknown GateKind");
    return it->second;
}

} // namespace

int
gateKindNumParams(GateKind kind)
{
    return info(kind).num_params;
}

int
gateKindNumQubits(GateKind kind)
{
    return info(kind).num_qubits;
}

bool
gateKindIsTwoQubit(GateKind kind)
{
    switch (kind) {
      case GateKind::CX:
      case GateKind::CZ:
      case GateKind::CP:
      case GateKind::CRZ:
      case GateKind::SWAP:
      case GateKind::RZZ:
        return true;
      default:
        return false;
    }
}

bool
gateKindIsSingleQubit(GateKind kind)
{
    switch (kind) {
      case GateKind::Measure:
      case GateKind::Reset:
      case GateKind::Barrier:
        return false;
      default:
        return info(kind).num_qubits == 1;
    }
}

const char *
gateKindName(GateKind kind)
{
    return info(kind).name;
}

bool
gateKindFromName(const std::string &name, GateKind &kind)
{
    static const std::unordered_map<std::string, GateKind> table = {
        {"id", GateKind::I}, {"x", GateKind::X}, {"y", GateKind::Y},
        {"z", GateKind::Z}, {"h", GateKind::H}, {"s", GateKind::S},
        {"sdg", GateKind::Sdg}, {"t", GateKind::T},
        {"tdg", GateKind::Tdg}, {"sx", GateKind::SX},
        {"sxdg", GateKind::SXdg}, {"rx", GateKind::RX},
        {"ry", GateKind::RY}, {"rz", GateKind::RZ},
        {"p", GateKind::P}, {"u1", GateKind::U1}, {"u2", GateKind::U2},
        {"u3", GateKind::U3}, {"u", GateKind::U3},
        {"cx", GateKind::CX}, {"CX", GateKind::CX},
        {"cnot", GateKind::CX}, {"cz", GateKind::CZ},
        {"cp", GateKind::CP}, {"cu1", GateKind::CP},
        {"crz", GateKind::CRZ}, {"swap", GateKind::SWAP},
        {"rzz", GateKind::RZZ}, {"ccx", GateKind::CCX},
        {"toffoli", GateKind::CCX}, {"cswap", GateKind::CSWAP},
        {"measure", GateKind::Measure}, {"reset", GateKind::Reset},
        {"barrier", GateKind::Barrier},
    };
    auto it = table.find(name);
    if (it == table.end())
        return false;
    kind = it->second;
    return true;
}

Gate::Gate(GateKind k, std::vector<Qubit> qs, std::vector<double> ps)
    : kind(k), qubits(std::move(qs)), params(std::move(ps))
{
    int nq = gateKindNumQubits(k);
    qpad_assert(nq < 0 || qubits.size() == static_cast<size_t>(nq),
                "gate ", gateKindName(k), " expects ", nq, " qubits, got ",
                qubits.size());
    qpad_assert(params.size() ==
                    static_cast<size_t>(gateKindNumParams(k)),
                "gate ", gateKindName(k), " expects ",
                gateKindNumParams(k), " params, got ", params.size());
}

bool
Gate::isNonUnitary() const
{
    return kind == GateKind::Measure || kind == GateKind::Reset ||
           kind == GateKind::Barrier;
}

std::string
Gate::str() const
{
    std::ostringstream oss;
    oss << gateKindName(kind);
    if (!params.empty()) {
        oss << "(";
        for (size_t i = 0; i < params.size(); ++i)
            oss << (i ? "," : "") << params[i];
        oss << ")";
    }
    for (size_t i = 0; i < qubits.size(); ++i)
        oss << (i ? ", q" : " q") << qubits[i];
    if (kind == GateKind::Measure)
        oss << " -> c" << clbit;
    return oss.str();
}

bool
Gate::operator==(const Gate &other) const
{
    return kind == other.kind && qubits == other.qubits &&
           params == other.params &&
           (kind != GateKind::Measure || clbit == other.clbit);
}

} // namespace qpad::circuit

#include "circuit/qasm.hh"

#include <cctype>
#include <cmath>
#include <numbers>
#include <fstream>
#include <iomanip>
#include <map>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "common/logging.hh"

namespace qpad::circuit
{

namespace
{

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

enum class TokKind
{
    Ident, Number, String, Symbol, Arrow, End,
};

struct Token
{
    TokKind kind;
    std::string text;
    double value = 0.0;
    int line = 0;
};

class Lexer
{
  public:
    explicit Lexer(const std::string &src) : src_(src) { advance(); }

    const Token &peek() const { return tok_; }

    Token
    take()
    {
        Token t = tok_;
        advance();
        return t;
    }

    bool
    accept(const std::string &symbol)
    {
        if (tok_.kind == TokKind::Symbol && tok_.text == symbol) {
            advance();
            return true;
        }
        if (tok_.kind == TokKind::Arrow && symbol == "->") {
            advance();
            return true;
        }
        return false;
    }

    void
    expect(const std::string &symbol)
    {
        if (!accept(symbol))
            qpad_fatal("qasm line ", tok_.line, ": expected '", symbol,
                       "', got '", tok_.text, "'");
    }

    std::string
    expectIdent()
    {
        if (tok_.kind != TokKind::Ident)
            qpad_fatal("qasm line ", tok_.line, ": expected identifier, ",
                       "got '", tok_.text, "'");
        return take().text;
    }

    int line() const { return tok_.line; }

  private:
    const std::string &src_;
    std::size_t pos_ = 0;
    int line_ = 1;
    Token tok_;

    void
    skipSpace()
    {
        while (pos_ < src_.size()) {
            char c = src_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
            } else if (std::isspace(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '/' && pos_ + 1 < src_.size() &&
                       src_[pos_ + 1] == '/') {
                while (pos_ < src_.size() && src_[pos_] != '\n')
                    ++pos_;
            } else {
                break;
            }
        }
    }

    void
    advance()
    {
        skipSpace();
        tok_.line = line_;
        if (pos_ >= src_.size()) {
            tok_ = {TokKind::End, "<eof>", 0.0, line_};
            return;
        }
        char c = src_[pos_];
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t start = pos_;
            while (pos_ < src_.size() &&
                   (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                    src_[pos_] == '_'))
                ++pos_;
            tok_ = {TokKind::Ident, src_.substr(start, pos_ - start), 0.0,
                    line_};
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
            std::size_t start = pos_;
            while (pos_ < src_.size() &&
                   (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
                    src_[pos_] == '.' || src_[pos_] == 'e' ||
                    src_[pos_] == 'E' ||
                    ((src_[pos_] == '+' || src_[pos_] == '-') && pos_ > start &&
                     (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E'))))
                ++pos_;
            std::string text = src_.substr(start, pos_ - start);
            tok_ = {TokKind::Number, text, std::stod(text), line_};
            return;
        }
        if (c == '"') {
            std::size_t start = ++pos_;
            while (pos_ < src_.size() && src_[pos_] != '"')
                ++pos_;
            std::string text = src_.substr(start, pos_ - start);
            if (pos_ < src_.size())
                ++pos_; // closing quote
            tok_ = {TokKind::String, text, 0.0, line_};
            return;
        }
        if (c == '-' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '>') {
            pos_ += 2;
            tok_ = {TokKind::Arrow, "->", 0.0, line_};
            return;
        }
        ++pos_;
        tok_ = {TokKind::Symbol, std::string(1, c), 0.0, line_};
    }
};

// ---------------------------------------------------------------------
// Parameter expressions
// ---------------------------------------------------------------------

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

struct Expr
{
    enum class Op
    {
        Const, Param, Neg, Add, Sub, Mul, Div, Pow,
        Sin, Cos, Tan, Exp, Ln, Sqrt,
    };

    Op op;
    double value = 0.0;   // Const
    std::size_t param = 0; // Param: formal parameter index
    ExprPtr lhs, rhs;

    double
    eval(const std::vector<double> &env) const
    {
        switch (op) {
          case Op::Const: return value;
          case Op::Param:
            qpad_assert(param < env.size(), "qasm param index");
            return env[param];
          case Op::Neg: return -lhs->eval(env);
          case Op::Add: return lhs->eval(env) + rhs->eval(env);
          case Op::Sub: return lhs->eval(env) - rhs->eval(env);
          case Op::Mul: return lhs->eval(env) * rhs->eval(env);
          case Op::Div: return lhs->eval(env) / rhs->eval(env);
          case Op::Pow: return std::pow(lhs->eval(env), rhs->eval(env));
          case Op::Sin: return std::sin(lhs->eval(env));
          case Op::Cos: return std::cos(lhs->eval(env));
          case Op::Tan: return std::tan(lhs->eval(env));
          case Op::Exp: return std::exp(lhs->eval(env));
          case Op::Ln: return std::log(lhs->eval(env));
          case Op::Sqrt: return std::sqrt(lhs->eval(env));
        }
        qpad_panic("unreachable expr op");
    }

    static ExprPtr
    constant(double v)
    {
        auto e = std::make_shared<Expr>();
        e->op = Op::Const;
        e->value = v;
        return e;
    }
};

/** Recursive-descent expression parser over a Lexer. */
class ExprParser
{
  public:
    ExprParser(Lexer &lex, const std::vector<std::string> &params)
        : lex_(lex), params_(params)
    {}

    ExprPtr parse() { return parseAddSub(); }

  private:
    Lexer &lex_;
    const std::vector<std::string> &params_;

    ExprPtr
    parseAddSub()
    {
        ExprPtr lhs = parseMulDiv();
        for (;;) {
            if (lex_.accept("+"))
                lhs = binary(Expr::Op::Add, lhs, parseMulDiv());
            else if (lex_.accept("-"))
                lhs = binary(Expr::Op::Sub, lhs, parseMulDiv());
            else
                return lhs;
        }
    }

    ExprPtr
    parseMulDiv()
    {
        ExprPtr lhs = parseUnary();
        for (;;) {
            if (lex_.accept("*"))
                lhs = binary(Expr::Op::Mul, lhs, parseUnary());
            else if (lex_.accept("/"))
                lhs = binary(Expr::Op::Div, lhs, parseUnary());
            else
                return lhs;
        }
    }

    ExprPtr
    parseUnary()
    {
        if (lex_.accept("-")) {
            auto e = std::make_shared<Expr>();
            e->op = Expr::Op::Neg;
            e->lhs = parseUnary();
            return e;
        }
        if (lex_.accept("+"))
            return parseUnary();
        return parsePow();
    }

    ExprPtr
    parsePow()
    {
        ExprPtr base = parseAtom();
        if (lex_.accept("^"))
            return binary(Expr::Op::Pow, base, parseUnary());
        return base;
    }

    ExprPtr
    parseAtom()
    {
        const Token &t = lex_.peek();
        if (t.kind == TokKind::Number)
            return Expr::constant(lex_.take().value);
        if (t.kind == TokKind::Ident) {
            std::string name = lex_.take().text;
            if (name == "pi")
                return Expr::constant(std::numbers::pi);
            static const std::map<std::string, Expr::Op> funcs = {
                {"sin", Expr::Op::Sin}, {"cos", Expr::Op::Cos},
                {"tan", Expr::Op::Tan}, {"exp", Expr::Op::Exp},
                {"ln", Expr::Op::Ln}, {"sqrt", Expr::Op::Sqrt},
            };
            auto fit = funcs.find(name);
            if (fit != funcs.end()) {
                lex_.expect("(");
                auto e = std::make_shared<Expr>();
                e->op = fit->second;
                e->lhs = parse();
                lex_.expect(")");
                return e;
            }
            for (std::size_t i = 0; i < params_.size(); ++i) {
                if (params_[i] == name) {
                    auto e = std::make_shared<Expr>();
                    e->op = Expr::Op::Param;
                    e->param = i;
                    return e;
                }
            }
            qpad_fatal("qasm line ", t.line, ": unknown name '", name,
                       "' in expression");
        }
        if (lex_.accept("(")) {
            ExprPtr e = parse();
            lex_.expect(")");
            return e;
        }
        qpad_fatal("qasm line ", t.line, ": bad expression token '",
                   t.text, "'");
    }

    static ExprPtr
    binary(Expr::Op op, ExprPtr lhs, ExprPtr rhs)
    {
        auto e = std::make_shared<Expr>();
        e->op = op;
        e->lhs = std::move(lhs);
        e->rhs = std::move(rhs);
        return e;
    }
};

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct RegisterInfo
{
    std::size_t offset;
    std::size_t size;
};

/** One statement inside a user gate definition body. */
struct MacroCall
{
    std::string name;
    std::vector<ExprPtr> params;      // in terms of formal params
    std::vector<std::size_t> qargs;   // formal qubit-arg indices
};

struct GateMacro
{
    std::vector<std::string> params;
    std::vector<std::string> qargs;
    std::vector<MacroCall> body;
};

class Parser
{
  public:
    Parser(const std::string &src, const std::string &name)
        : lex_(src), name_(name)
    {}

    Circuit
    run()
    {
        parseHeader();
        while (lex_.peek().kind != TokKind::End)
            parseStatement();
        Circuit circ(num_qubits_, std::max<std::size_t>(num_clbits_, 1),
                     name_);
        for (auto &g : pending_)
            circ.add(std::move(g));
        return circ;
    }

  private:
    Lexer lex_;
    std::string name_;
    std::map<std::string, RegisterInfo> qregs_;
    std::map<std::string, RegisterInfo> cregs_;
    std::map<std::string, GateMacro> macros_;
    std::size_t num_qubits_ = 0;
    std::size_t num_clbits_ = 0;
    std::vector<Gate> pending_;

    void
    parseHeader()
    {
        if (lex_.peek().kind == TokKind::Ident &&
            lex_.peek().text == "OPENQASM") {
            lex_.take();
            lex_.take(); // version number
            lex_.expect(";");
        }
    }

    void
    parseStatement()
    {
        const Token &t = lex_.peek();
        if (t.kind != TokKind::Ident)
            qpad_fatal("qasm line ", t.line, ": unexpected token '",
                       t.text, "'");
        const std::string &kw = t.text;
        if (kw == "include") {
            lex_.take();
            lex_.take(); // filename string
            lex_.expect(";");
        } else if (kw == "qreg") {
            parseRegDecl(qregs_, num_qubits_);
        } else if (kw == "creg") {
            parseRegDecl(cregs_, num_clbits_);
        } else if (kw == "gate") {
            parseGateDef();
        } else if (kw == "opaque") {
            // Skip to end of statement.
            while (lex_.peek().kind != TokKind::End && !lex_.accept(";"))
                lex_.take();
        } else if (kw == "if") {
            qpad_fatal("qasm line ", t.line,
                       ": classical control is not supported");
        } else if (kw == "measure") {
            parseMeasure();
        } else if (kw == "barrier") {
            parseBarrier();
        } else if (kw == "reset") {
            lex_.take();
            auto targets = parseArg();
            lex_.expect(";");
            for (Qubit q : targets)
                pending_.push_back(Gate(GateKind::Reset, {q}));
        } else {
            parseGateCall();
        }
    }

    void
    parseRegDecl(std::map<std::string, RegisterInfo> &regs,
                 std::size_t &total)
    {
        lex_.take(); // qreg / creg
        std::string name = lex_.expectIdent();
        lex_.expect("[");
        Token size_tok = lex_.take();
        if (size_tok.kind != TokKind::Number)
            qpad_fatal("qasm line ", size_tok.line, ": bad register size");
        lex_.expect("]");
        lex_.expect(";");
        std::size_t size = static_cast<std::size_t>(size_tok.value);
        if (regs.count(name))
            qpad_fatal("qasm: duplicate register '", name, "'");
        regs[name] = {total, size};
        total += size;
    }

    void
    parseGateDef()
    {
        lex_.take(); // gate
        std::string name = lex_.expectIdent();
        GateMacro macro;
        if (lex_.accept("(")) {
            if (!lex_.accept(")")) {
                macro.params.push_back(lex_.expectIdent());
                while (lex_.accept(","))
                    macro.params.push_back(lex_.expectIdent());
                lex_.expect(")");
            }
        }
        macro.qargs.push_back(lex_.expectIdent());
        while (lex_.accept(","))
            macro.qargs.push_back(lex_.expectIdent());
        lex_.expect("{");
        while (!lex_.accept("}")) {
            if (lex_.peek().kind == TokKind::End)
                qpad_fatal("qasm: unterminated gate body for '", name, "'");
            if (lex_.peek().text == "barrier") {
                // Barriers inside macros are no-ops for our purposes.
                while (!lex_.accept(";"))
                    lex_.take();
                continue;
            }
            macro.body.push_back(parseMacroCall(macro));
        }
        macros_[name] = std::move(macro);
    }

    MacroCall
    parseMacroCall(const GateMacro &macro)
    {
        MacroCall call;
        call.name = lex_.expectIdent();
        if (lex_.accept("(")) {
            if (!lex_.accept(")")) {
                ExprParser ep(lex_, macro.params);
                call.params.push_back(ep.parse());
                while (lex_.accept(","))
                    call.params.push_back(ep.parse());
                lex_.expect(")");
            }
        }
        auto arg_index = [&](const std::string &id) {
            for (std::size_t i = 0; i < macro.qargs.size(); ++i)
                if (macro.qargs[i] == id)
                    return i;
            qpad_fatal("qasm line ", lex_.line(), ": unknown qubit arg '",
                       id, "' in gate body");
        };
        call.qargs.push_back(arg_index(lex_.expectIdent()));
        while (lex_.accept(","))
            call.qargs.push_back(arg_index(lex_.expectIdent()));
        lex_.expect(";");
        return call;
    }

    /** Parse `reg` or `reg[k]`; returns flattened qubit indices. */
    std::vector<Qubit>
    parseArg()
    {
        std::string name = lex_.expectIdent();
        auto it = qregs_.find(name);
        if (it == qregs_.end())
            qpad_fatal("qasm line ", lex_.line(), ": unknown qreg '",
                       name, "'");
        const RegisterInfo &reg = it->second;
        if (lex_.accept("[")) {
            Token idx = lex_.take();
            lex_.expect("]");
            std::size_t k = static_cast<std::size_t>(idx.value);
            if (k >= reg.size)
                qpad_fatal("qasm line ", idx.line, ": index ", k,
                           " out of range for qreg '", name, "'");
            return {static_cast<Qubit>(reg.offset + k)};
        }
        std::vector<Qubit> all(reg.size);
        for (std::size_t k = 0; k < reg.size; ++k)
            all[k] = static_cast<Qubit>(reg.offset + k);
        return all;
    }

    std::pair<std::size_t, bool> // (flat index or offset, is_whole_reg)
    parseCArg(std::size_t &size_out)
    {
        std::string name = lex_.expectIdent();
        auto it = cregs_.find(name);
        if (it == cregs_.end())
            qpad_fatal("qasm line ", lex_.line(), ": unknown creg '",
                       name, "'");
        const RegisterInfo &reg = it->second;
        if (lex_.accept("[")) {
            Token idx = lex_.take();
            lex_.expect("]");
            size_out = 1;
            return {reg.offset + static_cast<std::size_t>(idx.value),
                    false};
        }
        size_out = reg.size;
        return {reg.offset, true};
    }

    void
    parseMeasure()
    {
        lex_.take(); // measure
        auto qubits = parseArg();
        lex_.expect("->");
        std::size_t csize = 0;
        auto [coffset, whole] = parseCArg(csize);
        lex_.expect(";");
        if (whole && qubits.size() != csize)
            qpad_fatal("qasm: measure register size mismatch");
        for (std::size_t i = 0; i < qubits.size(); ++i) {
            Gate g(GateKind::Measure, {qubits[i]});
            g.clbit = static_cast<Clbit>(coffset + (whole ? i : 0));
            pending_.push_back(std::move(g));
        }
    }

    void
    parseBarrier()
    {
        lex_.take(); // barrier
        // Operands are parsed but a global barrier is recorded; the
        // mapper treats barriers as full synchronization anyway.
        parseArg();
        while (lex_.accept(","))
            parseArg();
        lex_.expect(";");
        Gate g;
        g.kind = GateKind::Barrier;
        pending_.push_back(std::move(g));
    }

    void
    parseGateCall()
    {
        Token name_tok = lex_.take();
        const std::string &name = name_tok.text;
        std::vector<double> params;
        if (lex_.accept("(")) {
            if (!lex_.accept(")")) {
                static const std::vector<std::string> no_formals;
                ExprParser ep(lex_, no_formals);
                params.push_back(ep.parse()->eval({}));
                while (lex_.accept(","))
                    params.push_back(ep.parse()->eval({}));
                lex_.expect(")");
            }
        }
        std::vector<std::vector<Qubit>> args;
        args.push_back(parseArg());
        while (lex_.accept(","))
            args.push_back(parseArg());
        lex_.expect(";");

        // Broadcast: whole registers expand element-wise.
        std::size_t reps = 1;
        for (const auto &a : args) {
            if (a.size() > 1) {
                if (reps != 1 && reps != a.size())
                    qpad_fatal("qasm line ", name_tok.line,
                               ": broadcast size mismatch");
                reps = a.size();
            }
        }
        for (std::size_t r = 0; r < reps; ++r) {
            std::vector<Qubit> operands;
            for (const auto &a : args)
                operands.push_back(a.size() == 1 ? a[0] : a[r]);
            emitCall(name, params, operands, name_tok.line);
        }
    }

    void
    emitCall(const std::string &name, const std::vector<double> &params,
             const std::vector<Qubit> &operands, int line, int depth = 0)
    {
        if (depth > 64)
            qpad_fatal("qasm: gate macro recursion too deep at '", name,
                       "'");
        auto mit = macros_.find(name);
        if (mit != macros_.end()) {
            const GateMacro &macro = mit->second;
            if (operands.size() != macro.qargs.size() ||
                params.size() != macro.params.size())
                qpad_fatal("qasm line ", line, ": arity mismatch calling ",
                           "gate '", name, "'");
            for (const MacroCall &call : macro.body) {
                std::vector<double> sub_params;
                sub_params.reserve(call.params.size());
                for (const auto &e : call.params)
                    sub_params.push_back(e->eval(params));
                std::vector<Qubit> sub_ops;
                sub_ops.reserve(call.qargs.size());
                for (std::size_t a : call.qargs)
                    sub_ops.push_back(operands[a]);
                emitCall(call.name, sub_params, sub_ops, line, depth + 1);
            }
            return;
        }
        GateKind kind;
        if (!gateKindFromName(name, kind))
            qpad_fatal("qasm line ", line, ": unknown gate '", name, "'");
        pending_.push_back(Gate(kind, operands, params));
    }
};

} // namespace

Circuit
parseQasm(const std::string &source, const std::string &name)
{
    Parser parser(source, name);
    return parser.run();
}

Circuit
parseQasmFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        qpad_fatal("cannot open qasm file '", path, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string base = path;
    auto slash = base.find_last_of('/');
    if (slash != std::string::npos)
        base = base.substr(slash + 1);
    return parseQasm(buf.str(), base);
}

std::string
toQasm(const Circuit &circuit)
{
    std::ostringstream out;
    out << std::setprecision(17); // round-trip exact doubles
    out << "OPENQASM 2.0;\n";
    out << "include \"qelib1.inc\";\n";
    out << "qreg q[" << circuit.numQubits() << "];\n";
    if (circuit.numClbits() > 0)
        out << "creg c[" << circuit.numClbits() << "];\n";
    for (const auto &g : circuit.gates()) {
        if (g.kind == GateKind::Barrier) {
            out << "barrier q;\n";
            continue;
        }
        if (g.kind == GateKind::Measure) {
            out << "measure q[" << g.qubits[0] << "] -> c[" << g.clbit
                << "];\n";
            continue;
        }
        // qelib1 spells the controlled phase "cu1" and the phase "u1".
        std::string name = gateKindName(g.kind);
        if (g.kind == GateKind::CP)
            name = "cu1";
        else if (g.kind == GateKind::P)
            name = "u1";
        out << name;
        if (!g.params.empty()) {
            out << "(";
            for (std::size_t i = 0; i < g.params.size(); ++i) {
                if (i)
                    out << ",";
                out << g.params[i];
            }
            out << ")";
        }
        for (std::size_t i = 0; i < g.qubits.size(); ++i)
            out << (i ? "," : " ") << "q[" << g.qubits[i] << "]";
        out << ";\n";
    }
    return out.str();
}

void
writeQasmFile(const Circuit &circuit, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        qpad_fatal("cannot write qasm file '", path, "'");
    out << toQasm(circuit);
}

} // namespace qpad::circuit

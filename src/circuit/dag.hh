/**
 * @file
 * Gate dependency DAG used by the mapper and for depth analyses.
 *
 * Two gates depend on each other iff they share a qubit; the DAG
 * keeps, for every gate, the immediate successors over each shared
 * qubit. Barriers synchronize all qubits.
 */

#ifndef QPAD_CIRCUIT_DAG_HH
#define QPAD_CIRCUIT_DAG_HH

#include <cstddef>
#include <vector>

#include "circuit/circuit.hh"

namespace qpad::circuit
{

/**
 * Immutable dependency DAG over the gates of a circuit. Gate ids are
 * indices into Circuit::gates().
 */
class DependencyDag
{
  public:
    explicit DependencyDag(const Circuit &circuit);

    std::size_t numGates() const { return succs_.size(); }

    /** Immediate successors of gate id. */
    const std::vector<std::size_t> &successors(std::size_t id) const
    {
        return succs_[id];
    }

    /** Number of immediate predecessors of gate id. */
    std::size_t indegree(std::size_t id) const { return indeg_[id]; }

    /** Copy of the indegree vector (consumed by traversals). */
    std::vector<std::size_t> indegrees() const { return indeg_; }

    /** Gate ids with no predecessors (the initial front layer). */
    std::vector<std::size_t> roots() const;

    /** Number of "layers" in an ASAP schedule of the DAG. */
    std::size_t asapDepth() const;

  private:
    std::vector<std::vector<std::size_t>> succs_;
    std::vector<std::size_t> indeg_;
};

} // namespace qpad::circuit

#endif // QPAD_CIRCUIT_DAG_HH

#include "circuit/circuit.hh"

#include <algorithm>

#include "common/logging.hh"

namespace qpad::circuit
{

Circuit::Circuit(std::size_t num_qubits, std::size_t num_clbits,
                 std::string name)
    : name_(std::move(name)), num_qubits_(num_qubits),
      num_clbits_(num_clbits)
{
}

void
Circuit::add(Gate gate)
{
    for (Qubit q : gate.qubits) {
        qpad_assert(q < num_qubits_, "gate ", gate.str(),
                    " touches qubit ", q, " outside circuit width ",
                    num_qubits_);
    }
    if (gate.kind == GateKind::Measure) {
        qpad_assert(gate.clbit < num_clbits_, "measure into clbit ",
                    gate.clbit, " outside ", num_clbits_);
    }
    if (gate.qubits.size() >= 2) {
        for (size_t i = 0; i < gate.qubits.size(); ++i)
            for (size_t j = i + 1; j < gate.qubits.size(); ++j)
                qpad_assert(gate.qubits[i] != gate.qubits[j],
                            "duplicate qubit operand in ", gate.str());
    }
    gates_.push_back(std::move(gate));
}

void
Circuit::measure(Qubit q, Clbit c)
{
    Gate g(GateKind::Measure, {q});
    g.clbit = c;
    add(std::move(g));
}

void
Circuit::barrier()
{
    Gate g;
    g.kind = GateKind::Barrier;
    g.qubits.clear();
    gates_.push_back(std::move(g));
}

void
Circuit::append(const Circuit &other)
{
    qpad_assert(other.numQubits() <= num_qubits_,
                "appending wider circuit (", other.numQubits(), " > ",
                num_qubits_, ")");
    for (const auto &g : other.gates())
        add(g);
}

void
Circuit::appendMapped(const Circuit &other,
                      const std::vector<Qubit> &layout)
{
    qpad_assert(layout.size() >= other.numQubits(),
                "layout smaller than appended circuit");
    for (const auto &g : other.gates()) {
        Gate mapped = g;
        for (auto &q : mapped.qubits)
            q = layout[q];
        add(std::move(mapped));
    }
}

std::size_t
Circuit::twoQubitGateCount() const
{
    return std::count_if(gates_.begin(), gates_.end(),
                         [](const Gate &g) { return g.isTwoQubit(); });
}

std::size_t
Circuit::singleQubitGateCount() const
{
    return std::count_if(gates_.begin(), gates_.end(),
                         [](const Gate &g) { return g.isSingleQubit(); });
}

std::size_t
Circuit::unitaryGateCount() const
{
    return std::count_if(gates_.begin(), gates_.end(), [](const Gate &g) {
        return !g.isNonUnitary();
    });
}

std::map<std::string, std::size_t>
Circuit::countByKind() const
{
    std::map<std::string, std::size_t> counts;
    for (const auto &g : gates_)
        ++counts[gateKindName(g.kind)];
    return counts;
}

std::size_t
Circuit::depth() const
{
    std::vector<std::size_t> ready(num_qubits_, 0);
    std::size_t depth = 0;
    for (const auto &g : gates_) {
        if (g.kind == GateKind::Barrier) {
            // A barrier synchronizes every qubit without occupying a
            // time step of its own.
            std::size_t level = 0;
            for (auto r : ready)
                level = std::max(level, r);
            std::fill(ready.begin(), ready.end(), level);
            continue;
        }
        std::size_t start = 0;
        for (Qubit q : g.qubits)
            start = std::max(start, ready[q]);
        for (Qubit q : g.qubits)
            ready[q] = start + 1;
        depth = std::max(depth, start + 1);
    }
    return depth;
}

std::size_t
Circuit::activeWidth() const
{
    std::size_t width = 0;
    for (const auto &g : gates_)
        for (Qubit q : g.qubits)
            width = std::max<std::size_t>(width, q + 1);
    return width;
}

bool
Circuit::operator==(const Circuit &other) const
{
    return num_qubits_ == other.num_qubits_ &&
           num_clbits_ == other.num_clbits_ && gates_ == other.gates_;
}

} // namespace qpad::circuit

/**
 * @file
 * Gate-level representation of quantum operations.
 *
 * qpad works on circuits already decomposed into the {1-qubit, CX}
 * basis (the IBM native set assumed by the paper), but the IR also
 * carries a few common composite gates (CZ, CP, SWAP, CCX) so that
 * benchmark generators can build circuits naturally and decompose
 * them in a separate, testable pass.
 */

#ifndef QPAD_CIRCUIT_GATE_HH
#define QPAD_CIRCUIT_GATE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace qpad::circuit
{

/** Logical qubit index within a circuit. */
using Qubit = uint32_t;

/** Classical bit index within a circuit. */
using Clbit = uint32_t;

/** Supported operation kinds. */
enum class GateKind : uint8_t
{
    // Single-qubit gates.
    I, X, Y, Z, H, S, Sdg, T, Tdg, SX, SXdg,
    RX, RY, RZ, P, U1, U2, U3,
    // Two-qubit gates.
    CX, CZ, CP, CRZ, SWAP, RZZ,
    // Three-qubit gates (pre-decomposition only).
    CCX, CSWAP,
    // Non-unitary operations.
    Measure, Reset, Barrier,
};

/** Number of parameters the kind carries (e.g. rotation angles). */
int gateKindNumParams(GateKind kind);

/** Number of qubit operands, or -1 for variable arity (Barrier). */
int gateKindNumQubits(GateKind kind);

/** True for unitary gates acting on exactly two qubits. */
bool gateKindIsTwoQubit(GateKind kind);

/** True for unitary gates acting on exactly one qubit. */
bool gateKindIsSingleQubit(GateKind kind);

/** Lower-case OpenQASM 2.0 mnemonic (e.g. "cx", "rz"). */
const char *gateKindName(GateKind kind);

/** Parse an OpenQASM mnemonic; returns false if unknown. */
bool gateKindFromName(const std::string &name, GateKind &kind);

/**
 * One operation instance in a circuit: a kind, its qubit operands,
 * optional rotation parameters, and (for Measure) a classical target.
 */
struct Gate
{
    GateKind kind = GateKind::I;
    std::vector<Qubit> qubits;
    std::vector<double> params;
    /** Valid only when kind == Measure. */
    Clbit clbit = 0;

    Gate() = default;
    Gate(GateKind k, std::vector<Qubit> qs, std::vector<double> ps = {});

    /** True for unitary two-qubit gates (the profiler's subject). */
    bool isTwoQubit() const { return gateKindIsTwoQubit(kind); }

    /** True for unitary single-qubit gates. */
    bool isSingleQubit() const { return gateKindIsSingleQubit(kind); }

    /** True for Measure/Reset/Barrier. */
    bool isNonUnitary() const;

    /** Human-readable one-line form, e.g. "cx q2, q5". */
    std::string str() const;

    bool operator==(const Gate &other) const;
};

} // namespace qpad::circuit

#endif // QPAD_CIRCUIT_GATE_HH

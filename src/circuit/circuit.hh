/**
 * @file
 * Quantum circuit container and statistics.
 */

#ifndef QPAD_CIRCUIT_CIRCUIT_HH
#define QPAD_CIRCUIT_CIRCUIT_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "circuit/gate.hh"

namespace qpad::circuit
{

/**
 * An ordered list of operations over a fixed set of logical qubits
 * and classical bits. This is the unit the profiler, the mapper and
 * the benchmark generators all exchange.
 */
class Circuit
{
  public:
    Circuit() = default;

    /** Create an empty circuit over n qubits and n_clbits bits. */
    explicit Circuit(std::size_t num_qubits, std::size_t num_clbits = 0,
                     std::string name = "");

    /** @name Structure */
    /** @{ */
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }
    std::size_t numQubits() const { return num_qubits_; }
    std::size_t numClbits() const { return num_clbits_; }
    std::size_t size() const { return gates_.size(); }
    bool empty() const { return gates_.empty(); }
    const std::vector<Gate> &gates() const { return gates_; }
    const Gate &gate(std::size_t i) const { return gates_[i]; }
    /** @} */

    /** Append a fully built gate (bounds-checked). */
    void add(Gate gate);

    /** @name Convenience builders for common gates */
    /** @{ */
    void i(Qubit q) { add({GateKind::I, {q}}); }
    void x(Qubit q) { add({GateKind::X, {q}}); }
    void y(Qubit q) { add({GateKind::Y, {q}}); }
    void z(Qubit q) { add({GateKind::Z, {q}}); }
    void h(Qubit q) { add({GateKind::H, {q}}); }
    void s(Qubit q) { add({GateKind::S, {q}}); }
    void sdg(Qubit q) { add({GateKind::Sdg, {q}}); }
    void t(Qubit q) { add({GateKind::T, {q}}); }
    void tdg(Qubit q) { add({GateKind::Tdg, {q}}); }
    void rx(double theta, Qubit q) { add({GateKind::RX, {q}, {theta}}); }
    void ry(double theta, Qubit q) { add({GateKind::RY, {q}, {theta}}); }
    void rz(double theta, Qubit q) { add({GateKind::RZ, {q}, {theta}}); }
    void p(double theta, Qubit q) { add({GateKind::P, {q}, {theta}}); }
    void cx(Qubit c, Qubit t) { add({GateKind::CX, {c, t}}); }
    void cz(Qubit a, Qubit b) { add({GateKind::CZ, {a, b}}); }
    void cp(double theta, Qubit c, Qubit t)
    {
        add({GateKind::CP, {c, t}, {theta}});
    }
    void swap(Qubit a, Qubit b) { add({GateKind::SWAP, {a, b}}); }
    void rzz(double theta, Qubit a, Qubit b)
    {
        add({GateKind::RZZ, {a, b}, {theta}});
    }
    void ccx(Qubit a, Qubit b, Qubit t) { add({GateKind::CCX, {a, b, t}}); }
    void measure(Qubit q, Clbit c);
    void barrier();
    /** @} */

    /** Append all gates of another circuit (same width required). */
    void append(const Circuit &other);

    /**
     * Append another circuit with its qubit i mapped to layout[i]
     * of this circuit (used to embed synthesized sub-blocks).
     */
    void appendMapped(const Circuit &other,
                      const std::vector<Qubit> &layout);

    /** @name Statistics */
    /** @{ */
    /** Number of unitary two-qubit gates. */
    std::size_t twoQubitGateCount() const;
    /** Number of unitary single-qubit gates. */
    std::size_t singleQubitGateCount() const;
    /** Unitary gates only (excludes measure/reset/barrier). */
    std::size_t unitaryGateCount() const;
    /** Histogram of gate kinds by mnemonic. */
    std::map<std::string, std::size_t> countByKind() const;
    /** Circuit depth counting every unitary gate as one time step. */
    std::size_t depth() const;
    /** Highest qubit index actually used, plus one (0 if empty). */
    std::size_t activeWidth() const;
    /** @} */

    bool operator==(const Circuit &other) const;

  private:
    std::string name_;
    std::size_t num_qubits_ = 0;
    std::size_t num_clbits_ = 0;
    std::vector<Gate> gates_;
};

} // namespace qpad::circuit

#endif // QPAD_CIRCUIT_CIRCUIT_HH

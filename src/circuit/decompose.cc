#include "circuit/decompose.hh"

#include "common/logging.hh"

namespace qpad::circuit
{

bool
isInBasis(const Circuit &circuit)
{
    for (const auto &g : circuit.gates()) {
        if (g.isNonUnitary() || g.isSingleQubit())
            continue;
        if (g.kind != GateKind::CX)
            return false;
    }
    return true;
}

void
decomposeGateInto(const Gate &gate, Circuit &out)
{
    switch (gate.kind) {
      case GateKind::CZ: {
        Qubit c = gate.qubits[0], t = gate.qubits[1];
        out.h(t);
        out.cx(c, t);
        out.h(t);
        return;
      }
      case GateKind::CP: {
        // Controlled phase: two CX plus three RZ-like rotations.
        Qubit c = gate.qubits[0], t = gate.qubits[1];
        double theta = gate.params[0];
        out.rz(theta / 2, c);
        out.cx(c, t);
        out.rz(-theta / 2, t);
        out.cx(c, t);
        out.rz(theta / 2, t);
        return;
      }
      case GateKind::CRZ: {
        Qubit c = gate.qubits[0], t = gate.qubits[1];
        double theta = gate.params[0];
        out.rz(theta / 2, t);
        out.cx(c, t);
        out.rz(-theta / 2, t);
        out.cx(c, t);
        return;
      }
      case GateKind::RZZ: {
        Qubit a = gate.qubits[0], b = gate.qubits[1];
        out.cx(a, b);
        out.rz(gate.params[0], b);
        out.cx(a, b);
        return;
      }
      case GateKind::SWAP: {
        Qubit a = gate.qubits[0], b = gate.qubits[1];
        out.cx(a, b);
        out.cx(b, a);
        out.cx(a, b);
        return;
      }
      case GateKind::CCX: {
        // Standard 6-CX Toffoli network (Nielsen & Chuang Fig. 4.9).
        Qubit a = gate.qubits[0], b = gate.qubits[1], t = gate.qubits[2];
        out.h(t);
        out.cx(b, t);
        out.tdg(t);
        out.cx(a, t);
        out.t(t);
        out.cx(b, t);
        out.tdg(t);
        out.cx(a, t);
        out.t(b);
        out.t(t);
        out.h(t);
        out.cx(a, b);
        out.t(a);
        out.tdg(b);
        out.cx(a, b);
        return;
      }
      case GateKind::CSWAP: {
        Qubit c = gate.qubits[0], a = gate.qubits[1], b = gate.qubits[2];
        out.cx(b, a);
        decomposeGateInto(Gate(GateKind::CCX, {c, a, b}), out);
        out.cx(b, a);
        return;
      }
      default:
        // Already basis / non-unitary: copy through.
        out.add(gate);
        return;
    }
}

Circuit
decompose(const Circuit &circuit)
{
    Circuit out(circuit.numQubits(), circuit.numClbits(),
                circuit.name());
    for (const auto &g : circuit.gates())
        decomposeGateInto(g, out);
    qpad_assert(isInBasis(out), "decompose() left composite gates");
    return out;
}

} // namespace qpad::circuit

/**
 * @file
 * OpenQASM 2.0 subset reader and writer.
 *
 * The reader supports the language subset used by the RevLib /
 * QISKit benchmark files the paper evaluates: version header,
 * include directives (ignored), qreg/creg declarations, the qelib1
 * gate set, user `gate` definitions (expanded inline), parameter
 * expressions with pi and arithmetic, register broadcast, measure
 * and barrier. Classical control (`if`) is rejected with a clear
 * error since the paper's circuits are purely unitary + measure.
 */

#ifndef QPAD_CIRCUIT_QASM_HH
#define QPAD_CIRCUIT_QASM_HH

#include <string>

#include "circuit/circuit.hh"

namespace qpad::circuit
{

/**
 * Parse OpenQASM 2.0 source into a Circuit. All quantum registers
 * are flattened into one qubit index space in declaration order
 * (likewise for classical registers).
 *
 * @param source OpenQASM program text.
 * @param name   Name recorded on the resulting circuit.
 * @throws std::runtime_error (via qpad_fatal) on malformed input.
 */
Circuit parseQasm(const std::string &source, const std::string &name = "");

/** Parse an OpenQASM 2.0 file from disk. */
Circuit parseQasmFile(const std::string &path);

/** Serialize a circuit as an OpenQASM 2.0 program. */
std::string toQasm(const Circuit &circuit);

/** Write a circuit to a .qasm file. */
void writeQasmFile(const Circuit &circuit, const std::string &path);

} // namespace qpad::circuit

#endif // QPAD_CIRCUIT_QASM_HH

/**
 * @file
 * Lowering of composite gates into the {single-qubit, CX} basis.
 *
 * The paper assumes every circuit is already decomposed into
 * single-qubit gates plus CNOT (the IBM native set); generators in
 * qpad may emit CZ/CP/SWAP/CCX for clarity and lower them with this
 * pass before profiling or mapping.
 */

#ifndef QPAD_CIRCUIT_DECOMPOSE_HH
#define QPAD_CIRCUIT_DECOMPOSE_HH

#include "circuit/circuit.hh"

namespace qpad::circuit
{

/** True if the circuit only contains 1q gates, CX and non-unitaries. */
bool isInBasis(const Circuit &circuit);

/**
 * Return an equivalent circuit in the {1q, CX} basis.
 *
 * Standard textbook identities are used: CZ via two Hadamards,
 * CP/CRZ/RZZ via two CXs and RZ rotations, SWAP via three CXs, CCX
 * via the 6-CX T-gate network, CSWAP via CCX conjugated with CXs.
 */
Circuit decompose(const Circuit &circuit);

/** Append the decomposition of one gate to an output circuit. */
void decomposeGateInto(const Gate &gate, Circuit &out);

} // namespace qpad::circuit

#endif // QPAD_CIRCUIT_DECOMPOSE_HH

#include "eval/report.hh"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "obs/metrics.hh"

namespace qpad::eval
{

std::string
formatYield(double yield)
{
    std::ostringstream oss;
    oss << std::scientific << std::setprecision(2) << yield;
    return oss.str();
}

std::string
formatFixed(double value, int decimals)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(decimals) << value;
    return oss.str();
}

double
geomean(const std::vector<double> &values, double floor)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(std::max(v, floor));
    return std::exp(log_sum / double(values.size()));
}

namespace
{

/** Yield cell: "< 5.0e-07" when nothing succeeded in N trials. */
std::string
yieldCell(const DataPoint &p)
{
    if (p.yield == 0.0 && p.yield_trials > 0) {
        // Append instead of "<" + ...: GCC 12's -Wrestrict misfires
        // on the operator+ form (PR 105651) under -Werror.
        std::string s = "<";
        s += formatYield(1.0 / double(p.yield_trials));
        return s;
    }
    return formatYield(p.yield);
}

} // namespace

void
printExperiment(std::ostream &out, const BenchmarkExperiment &experiment)
{
    out << experiment.benchmark << " (" << experiment.logical_qubits
        << " logical qubits, " << experiment.original_gates
        << " gates before mapping)\n";
    out << "  " << std::left << std::setw(16) << "config"
        << std::setw(22) << "architecture" << std::right << std::setw(3)
        << "Q" << std::setw(6) << "conn" << std::setw(6) << "bus"
        << std::setw(8) << "gates" << std::setw(7) << "swaps"
        << std::setw(9) << "1/gates*" << std::setw(11) << "yield"
        << "\n";
    for (const auto &p : experiment.points) {
        out << "  " << std::left << std::setw(16) << p.config
            << std::setw(22) << p.arch_name << std::right << std::setw(3)
            << p.num_qubits << std::setw(6) << p.num_edges
            << std::setw(6) << p.num_buses << std::setw(8)
            << p.gate_count << std::setw(7) << p.swaps << std::setw(9)
            << formatFixed(p.norm_recip_gates) << std::setw(11)
            << yieldCell(p) << "\n";
    }
    // Cache activity, straight from the run's metrics delta (the
    // same registry QPAD_METRICS dumps at exit).
    const double hits = obs::valueOf(experiment.metrics, "cache.hits");
    const double misses =
        obs::valueOf(experiment.metrics, "cache.misses");
    if (hits + misses > 0) {
        const double rate = 100.0 * hits / (hits + misses);
        out << "  cache (" << formatFixed(rate, 1) << "% hit rate):\n";
        obs::writeTable(out, experiment.metrics, "cache.", "    ");
    }
}

void
printExperimentCsv(std::ostream &out,
                   const BenchmarkExperiment &experiment, bool header)
{
    if (header)
        out << "benchmark,config,architecture,qubits,connections,"
            << "buses,gates,swaps,norm_recip_gates,yield\n";
    for (const auto &p : experiment.points) {
        out << experiment.benchmark << ',' << p.config << ','
            << p.arch_name << ',' << p.num_qubits << ',' << p.num_edges
            << ',' << p.num_buses << ',' << p.gate_count << ','
            << p.swaps << ',' << formatFixed(p.norm_recip_gates, 4)
            << ',' << formatYield(p.yield) << "\n";
    }
}

void
printHeader(std::ostream &out, const std::string &title)
{
    std::string bar(title.size() + 4, '=');
    out << bar << "\n= " << title << " =\n" << bar << "\n";
}

} // namespace qpad::eval

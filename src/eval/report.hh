/**
 * @file
 * Shared text reporting for benches and examples: aligned tables,
 * scientific-notation yields, per-benchmark Figure 10 series, and
 * small statistics helpers.
 */

#ifndef QPAD_EVAL_REPORT_HH
#define QPAD_EVAL_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "eval/experiment.hh"

namespace qpad::eval
{

/** "1.2e-03"-style yield formatting (matches the paper's axis). */
std::string formatYield(double yield);

/** Fixed-point with the given number of decimals. */
std::string formatFixed(double value, int decimals = 3);

/** Geometric mean (zeros clamped to `floor` to stay finite). */
double geomean(const std::vector<double> &values,
               double floor = 1e-12);

/**
 * Print one benchmark's Figure 10 series: a row per data point with
 * config, architecture, qubits, connections, buses, post-mapping
 * gates, normalized reciprocal gate count, and yield.
 */
void printExperiment(std::ostream &out,
                     const BenchmarkExperiment &experiment);

/** Same data as CSV (header + rows). */
void printExperimentCsv(std::ostream &out,
                        const BenchmarkExperiment &experiment,
                        bool header);

/** A boxed section header, to make bench output scannable. */
void printHeader(std::ostream &out, const std::string &title);

} // namespace qpad::eval

#endif // QPAD_EVAL_REPORT_HH

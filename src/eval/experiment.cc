#include "eval/experiment.hh"

#include <algorithm>
#include <functional>

#include "arch/ibm.hh"
#include "cache/yield_cache.hh"
#include "common/logging.hh"
#include "obs/trace.hh"
#include "profile/coupling.hh"

namespace qpad::eval
{

using arch::Architecture;
using circuit::Circuit;

namespace
{

/**
 * Everything measure() reads besides the architecture: benchmark
 * identity (generate() is deterministic per name; the counts are an
 * integrity check), the mapper knobs, and the yield-measurement
 * policy including adaptive escalation (which changes yield_trials).
 * options.exec and options.stream never affect the bytes of a
 * DataPoint (runtime contract) and are excluded.
 */
void
encodeMeasureInputs(cache::Encoder &enc,
                    const benchmarks::BenchmarkInfo &info,
                    const Circuit &circuit,
                    const ExperimentOptions &options)
{
    enc.str(info.name);
    enc.u64(circuit.numQubits());
    enc.u64(circuit.unitaryGateCount());
    const mapping::MappingOptions &mo = options.mapping_options;
    enc.f64(mo.extended_weight);
    enc.u64(mo.extended_set_size);
    enc.f64(mo.decay_delta);
    enc.u32(mo.initial_mapping_rounds);
    enc.u8(mo.sabre_initial_mapping ? 1 : 0);
    enc.u64(mo.seed);
    const yield::YieldOptions &yo = options.yield_options;
    enc.u64(yo.trials);
    enc.f64(yo.sigma_ghz);
    enc.u64(yo.seed);
    enc.u8(yo.collect_condition_stats ? 1 : 0);
    cache::encodeCollisionModel(enc, yo.model);
    // Resolved: QPAD_RNG_V1 changes the drawn numbers.
    enc.u8(uint8_t(resolveRngScheme(yo.rng_scheme)));
    enc.u8(options.adaptive_yield_trials ? 1 : 0);
    enc.u64(options.max_yield_trials);
}

/** Whole-point key of an ibm-baseline job: the fixed architecture
 * (coords, buses, frequencies) plus the measurement inputs. */
cache::Fingerprint
ibmPointKey(const benchmarks::BenchmarkInfo &info,
            const Circuit &circuit, const Architecture &baseline,
            const ExperimentOptions &options)
{
    cache::Encoder enc;
    enc.str("qpad.datapoint/v1");
    enc.str("ibm");
    cache::encodeArchitecture(enc, baseline);
    encodeMeasureInputs(enc, info, circuit, options);
    return enc.digest();
}

/**
 * Whole-point key of a design-flow job: the coupling profile (the
 * flow's only circuit-derived input), the full flow configuration,
 * and the measurement inputs. config/arch_name are encoded too so
 * two jobs that happen to share parameters still key separately —
 * their DataPoints differ in those strings.
 */
cache::Fingerprint
flowPointKey(const benchmarks::BenchmarkInfo &info,
             const Circuit &circuit,
             const profile::CouplingProfile &prof,
             const design::DesignFlowOptions &flow,
             const std::string &config, const std::string &arch_name,
             const ExperimentOptions &options)
{
    cache::Encoder enc;
    enc.str("qpad.datapoint/v1");
    enc.str("flow");
    enc.str(config);
    enc.str(arch_name);
    enc.u64(prof.num_qubits);
    for (std::size_t i = 0; i < prof.num_qubits; ++i)
        for (std::size_t j = i; j < prof.num_qubits; ++j)
            enc.u32(prof.strength(i, j));
    enc.u8(uint8_t(flow.bus_scheme));
    enc.u64(flow.max_buses);
    enc.u8(uint8_t(flow.freq_scheme));
    enc.u64(flow.bus_seed);
    const design::FreqAllocOptions &fo = flow.freq_options;
    enc.f64(fo.grid_step_ghz);
    enc.u64(fo.local_trials);
    enc.f64(fo.sigma_ghz);
    cache::encodeCollisionModel(enc, fo.model);
    enc.u64(fo.seed);
    enc.u32(fo.refine_sweeps);
    enc.u8(uint8_t(resolveRngScheme(fo.rng_scheme)));
    encodeMeasureInputs(enc, info, circuit, options);
    return enc.digest();
}

/** Payload: the numeric fields only. config/arch_name are key
 * inputs the caller already holds, and norm_recip_gates is a
 * whole-run derived value recomputed by normalize(). Integers are
 * exact and the yield is stored as its IEEE-754 bit pattern, so a
 * decoded point is bit-identical to the computed one. */
std::vector<uint8_t>
encodeDataPoint(const DataPoint &point)
{
    cache::Encoder enc;
    enc.u64(point.num_qubits);
    enc.u64(point.num_edges);
    enc.u64(point.num_buses);
    enc.u64(point.gate_count);
    enc.u64(point.swaps);
    enc.f64(point.yield);
    enc.u64(point.yield_trials);
    return enc.bytes();
}

bool
decodeDataPoint(const std::vector<uint8_t> &blob, std::string config,
                std::string arch_name, DataPoint &point)
{
    cache::Decoder in(blob);
    uint64_t nq, ne, nb, gates, swaps, ytrials;
    double y;
    if (!in.u64(nq) || !in.u64(ne) || !in.u64(nb) ||
        !in.u64(gates) || !in.u64(swaps) || !in.f64(y) ||
        !in.u64(ytrials) || !in.atEnd())
        return false;
    // A mapped circuit always has gates; 0 means corruption (and
    // would trip normalize()'s divide-by-zero assert downstream).
    if (gates == 0)
        return false;
    point.config = std::move(config);
    point.arch_name = std::move(arch_name);
    point.num_qubits = std::size_t(nq);
    point.num_edges = std::size_t(ne);
    point.num_buses = std::size_t(nb);
    point.gate_count = std::size_t(gates);
    point.swaps = std::size_t(swaps);
    point.yield = y;
    point.yield_trials = std::size_t(ytrials);
    point.norm_recip_gates = 0.0; // filled by normalize()
    return true;
}

/**
 * Run one data-point job through the global cache: a warm rerun
 * skips design, mapping, and yield entirely; concurrent identical
 * jobs (dedup via Store::getOrCompute) compute once. Disabled cache
 * falls straight through to `compute`.
 */
DataPoint
memoizedPoint(const cache::Fingerprint &key, const std::string &config,
              const std::string &arch_name, const exec::Context &ctx,
              const std::function<DataPoint()> &compute)
{
    cache::Store &store = cache::globalStore();
    if (!store.options().enabled)
        return compute();
    const std::vector<uint8_t> blob = store.getOrCompute(
        key, [&] { return encodeDataPoint(compute()); }, ctx.token());
    DataPoint point;
    if (decodeDataPoint(blob, config, arch_name, point))
        return point;
    qpad_warn("cache: dropping undecodable data-point record ",
              key.hex());
    point = compute();
    store.put(key, encodeDataPoint(point));
    return point;
}

} // namespace

std::vector<const DataPoint *>
BenchmarkExperiment::config(const std::string &name) const
{
    std::vector<const DataPoint *> out;
    for (const auto &p : points)
        if (p.config == name)
            out.push_back(&p);
    return out;
}

double
BenchmarkExperiment::bestYield(const std::string &config_name) const
{
    double best = 0.0;
    for (const auto *p : config(config_name))
        best = std::max(best, p->yield);
    return best;
}

std::size_t
BenchmarkExperiment::bestGates(const std::string &config_name) const
{
    std::size_t best = SIZE_MAX;
    for (const auto *p : config(config_name))
        best = std::min(best, p->gate_count);
    return best;
}

DataPoint
measure(const std::string &config, const Architecture &arch,
        const Circuit &circuit, const ExperimentOptions &options,
        const exec::Context &ctx)
{
    QPAD_SPAN("eval.measure");
    // An already-stopped request does no work: the mapper below has
    // no internal polls, and a warm yield cache would otherwise let
    // a cancelled measurement run to completion.
    ctx.throwIfStopped();
    static obs::Counter &measurements =
        obs::counter("eval.measurements");
    measurements.add();

    DataPoint point;
    point.config = config;
    point.arch_name = arch.name();
    point.num_qubits = arch.numQubits();
    point.num_edges = arch.numEdges();
    point.num_buses = arch.fourQubitBuses().size();

    mapping::MappingResult mapped =
        mapping::mapCircuit(circuit, arch, options.mapping_options);
    point.gate_count = mapped.total_gates;
    point.swaps = mapped.swaps;

    // Every estimate goes through the result cache — including each
    // adaptive-escalation step, whose (arch, trials) pair is its own
    // key, so a 2M-trial retry found once is never recomputed.
    yield::YieldOptions yopts = options.yield_options;
    yield::YieldResult yr =
        cache::cachedEstimateYield(arch, yopts, ctx);
    while (options.adaptive_yield_trials && yr.successes == 0 &&
           yopts.trials < options.max_yield_trials) {
        // Stop between escalation steps: each step multiplies the
        // trial budget tenfold, so this is the last cheap exit
        // before a much longer estimate.
        ctx.throwIfStopped();
        static obs::Counter &escalations =
            obs::counter("yield.escalations");
        escalations.add();
        yopts.trials = std::min(options.max_yield_trials,
                                yopts.trials * 10);
        yr = cache::cachedEstimateYield(arch, yopts, ctx);
    }
    point.yield = yr.yield;
    point.yield_trials = yr.trials;
    return point;
}

BenchmarkExperiment
runBenchmark(const benchmarks::BenchmarkInfo &info,
             const ExperimentOptions &options,
             const exec::Context &ctx)
{
    QPAD_SPAN("eval.run_benchmark");
    static obs::Counter &benchmarks = obs::counter("eval.benchmarks");
    benchmarks.add();

    // An already-cancelled or expired request does no work at all.
    ctx.throwIfStopped();

    BenchmarkExperiment experiment;
    experiment.benchmark = info.name;

    Circuit circuit = info.generate();
    experiment.logical_qubits = circuit.numQubits();
    experiment.original_gates = circuit.unitaryGateCount();

    profile::CouplingProfile prof = profile::profileCircuit(circuit);

    // Every data point (design + mapping + yield) is an independent,
    // fully seeded job. Jobs are enumerated in the legacy sequential
    // order, then evaluated under options.exec; slot i of the job
    // list is slot i of experiment.points, so the report is the same
    // for any thread count.
    std::vector<std::function<DataPoint()>> jobs;

    // --- ibm: the four general-purpose baselines -------------------
    if (options.run_ibm) {
        for (Architecture &baseline : arch::ibmBaselines()) {
            if (baseline.numQubits() < circuit.numQubits())
                continue;
            jobs.push_back([baseline, &circuit, &options, &info,
                            ctx] {
                const cache::Fingerprint key =
                    ibmPointKey(info, circuit, baseline, options);
                return memoizedPoint(
                    key, "ibm", baseline.name(), ctx, [&] {
                        return measure("ibm", baseline, circuit,
                                       options, ctx);
                    });
            });
        }
    }

    // Shared flow pieces.
    design::DesignFlowOptions flow;
    flow.freq_options = options.freq_options;

    // How many weighted buses are worth adding at all.
    design::LayoutResult layout = design::designLayout(prof);
    Architecture bare(layout.layout, "eff-bare");
    design::BusSelectionResult all_weighted =
        design::selectBuses(bare, prof, SIZE_MAX);
    const std::size_t beneficial = all_weighted.selected.size();

    // Each flow job captures its own copy of `flow` with the fields
    // of that configuration baked in.
    auto flowJob = [&](design::DesignFlowOptions job_flow,
                       std::string config, std::string arch_name) {
        jobs.push_back([job_flow, config = std::move(config),
                        arch_name = std::move(arch_name), &prof,
                        &circuit, &options, &info, ctx] {
            const cache::Fingerprint key =
                flowPointKey(info, circuit, prof, job_flow, config,
                             arch_name, options);
            return memoizedPoint(key, config, arch_name, ctx, [&] {
                auto outcome = design::designArchitecture(
                    prof, job_flow, arch_name, ctx);
                return measure(config, outcome.architecture, circuit,
                               options, ctx);
            });
        });
    };

    // --- eff-full: Algorithm 1 + 2 + 3, sweeping K -----------------
    if (options.run_eff_full) {
        for (std::size_t k = 0; k <= beneficial; ++k) {
            flow.bus_scheme = design::BusScheme::Weighted;
            flow.max_buses = k;
            flow.freq_scheme = design::FreqScheme::Optimized;
            flowJob(flow, "eff-full",
                    "eff-full-k" + std::to_string(k));
        }
    }

    // --- eff-5-freq: layout + buses, IBM frequency tiling ----------
    if (options.run_eff_5_freq) {
        for (std::size_t k = 0; k <= beneficial; ++k) {
            flow.bus_scheme = design::BusScheme::Weighted;
            flow.max_buses = k;
            flow.freq_scheme = design::FreqScheme::FiveFrequency;
            flowJob(flow, "eff-5-freq",
                    "eff-5-freq-k" + std::to_string(k));
        }
    }

    // --- eff-rd-bus: random bus placement samples ------------------
    if (options.run_eff_rd_bus) {
        const std::size_t max_any = design::maxPlaceableBuses(bare);
        for (std::size_t s = 0; s < options.random_bus_samples; ++s) {
            if (max_any == 0)
                break;
            flow.bus_scheme = design::BusScheme::Random;
            flow.max_buses = 1 + s % max_any;
            flow.freq_scheme = design::FreqScheme::Optimized;
            flow.bus_seed = options.seed * 7919 + s;
            flowJob(flow, "eff-rd-bus",
                    "eff-rd-bus-s" + std::to_string(s));
        }
    }

    // --- eff-layout-only: layout + {no, max} buses, 5-freq ---------
    if (options.run_eff_layout_only) {
        for (bool max_buses : {false, true}) {
            flow.bus_scheme = max_buses ? design::BusScheme::Max
                                        : design::BusScheme::None;
            flow.max_buses = SIZE_MAX;
            flow.freq_scheme = design::FreqScheme::FiveFrequency;
            flowJob(flow, "eff-layout-only",
                    max_buses ? "eff-layout-only-max"
                              : "eff-layout-only-2q");
        }
    }

    const obs::Snapshot before = obs::snapshot();

    experiment.points.resize(jobs.size());
    // Guided sizing (grain 0): adaptive yield escalation makes some
    // data points ~100x dearer than others, so fixed chunks would
    // park a worker on whichever chunk drew the expensive points.
    // Guided chunks shrink toward the tail and the work-stealing
    // runners rebalance the rest; safe here because each job derives
    // its seeds from the options alone, never from the chunk index.
    runtime::parallel_for(
        ctx.apply(options.exec), jobs.size(), 0,
        [&](std::size_t begin, std::size_t end, std::size_t) {
            static obs::Counter &data_points =
                obs::counter("eval.data_points");
            for (std::size_t i = begin; i < end; ++i) {
                QPAD_SPAN("eval.data_point");
                data_points.add();
                experiment.points[i] = jobs[i]();
                // Stream the point the moment it lands in its slot;
                // the emit is serialized inside the sink.
                options.stream.emit(i, experiment.points[i]);
            }
        });

    // Surface this run's activity in the report: the metrics delta
    // carries every series the run moved, and the legacy cache_stats
    // view is derived from its cache.* entries (counter deltas; the
    // gauges report residency, which deltaSince keeps absolute).
    experiment.metrics = obs::deltaSince(before);
    const obs::Snapshot &delta = experiment.metrics;
    experiment.cache_stats = cache::globalCacheStats();
    experiment.cache_stats.hits =
        uint64_t(obs::valueOf(delta, "cache.hits"));
    experiment.cache_stats.misses =
        uint64_t(obs::valueOf(delta, "cache.misses"));
    experiment.cache_stats.inserts =
        uint64_t(obs::valueOf(delta, "cache.inserts"));
    experiment.cache_stats.evictions =
        uint64_t(obs::valueOf(delta, "cache.evictions"));
    experiment.cache_stats.lock_waits =
        uint64_t(obs::valueOf(delta, "cache.lock_waits"));
    experiment.cache_stats.lock_timeouts =
        uint64_t(obs::valueOf(delta, "cache.lock_timeouts"));
    experiment.cache_stats.compactions =
        uint64_t(obs::valueOf(delta, "cache.compactions"));
    experiment.cache_stats.persistence_lost =
        uint64_t(obs::valueOf(delta, "cache.persistence_lost"));

    normalize(experiment);
    return experiment;
}

void
normalize(BenchmarkExperiment &experiment)
{
    std::size_t max_gates = 0;
    for (const auto &p : experiment.points)
        max_gates = std::max(max_gates, p.gate_count);
    for (auto &p : experiment.points) {
        qpad_assert(p.gate_count > 0, "zero post-mapping gate count");
        p.norm_recip_gates = double(max_gates) / double(p.gate_count);
    }
}

} // namespace qpad::eval

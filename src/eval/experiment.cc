#include "eval/experiment.hh"

#include <algorithm>
#include <functional>

#include "arch/ibm.hh"
#include "cache/yield_cache.hh"
#include "common/logging.hh"
#include "obs/trace.hh"
#include "profile/coupling.hh"

namespace qpad::eval
{

using arch::Architecture;
using circuit::Circuit;

std::vector<const DataPoint *>
BenchmarkExperiment::config(const std::string &name) const
{
    std::vector<const DataPoint *> out;
    for (const auto &p : points)
        if (p.config == name)
            out.push_back(&p);
    return out;
}

double
BenchmarkExperiment::bestYield(const std::string &config_name) const
{
    double best = 0.0;
    for (const auto *p : config(config_name))
        best = std::max(best, p->yield);
    return best;
}

std::size_t
BenchmarkExperiment::bestGates(const std::string &config_name) const
{
    std::size_t best = SIZE_MAX;
    for (const auto *p : config(config_name))
        best = std::min(best, p->gate_count);
    return best;
}

DataPoint
measure(const std::string &config, const Architecture &arch,
        const Circuit &circuit, const ExperimentOptions &options)
{
    QPAD_SPAN("eval.measure");
    static obs::Counter &measurements =
        obs::counter("eval.measurements");
    measurements.add();

    DataPoint point;
    point.config = config;
    point.arch_name = arch.name();
    point.num_qubits = arch.numQubits();
    point.num_edges = arch.numEdges();
    point.num_buses = arch.fourQubitBuses().size();

    mapping::MappingResult mapped =
        mapping::mapCircuit(circuit, arch, options.mapping_options);
    point.gate_count = mapped.total_gates;
    point.swaps = mapped.swaps;

    // Every estimate goes through the result cache — including each
    // adaptive-escalation step, whose (arch, trials) pair is its own
    // key, so a 2M-trial retry found once is never recomputed.
    yield::YieldOptions yopts = options.yield_options;
    yield::YieldResult yr = cache::cachedEstimateYield(arch, yopts);
    while (options.adaptive_yield_trials && yr.successes == 0 &&
           yopts.trials < options.max_yield_trials) {
        static obs::Counter &escalations =
            obs::counter("yield.escalations");
        escalations.add();
        yopts.trials = std::min(options.max_yield_trials,
                                yopts.trials * 10);
        yr = cache::cachedEstimateYield(arch, yopts);
    }
    point.yield = yr.yield;
    point.yield_trials = yr.trials;
    return point;
}

BenchmarkExperiment
runBenchmark(const benchmarks::BenchmarkInfo &info,
             const ExperimentOptions &options)
{
    QPAD_SPAN("eval.run_benchmark");
    static obs::Counter &benchmarks = obs::counter("eval.benchmarks");
    benchmarks.add();

    BenchmarkExperiment experiment;
    experiment.benchmark = info.name;

    Circuit circuit = info.generate();
    experiment.logical_qubits = circuit.numQubits();
    experiment.original_gates = circuit.unitaryGateCount();

    profile::CouplingProfile prof = profile::profileCircuit(circuit);

    // Every data point (design + mapping + yield) is an independent,
    // fully seeded job. Jobs are enumerated in the legacy sequential
    // order, then evaluated under options.exec; slot i of the job
    // list is slot i of experiment.points, so the report is the same
    // for any thread count.
    std::vector<std::function<DataPoint()>> jobs;

    // --- ibm: the four general-purpose baselines -------------------
    if (options.run_ibm) {
        for (Architecture &baseline : arch::ibmBaselines()) {
            if (baseline.numQubits() < circuit.numQubits())
                continue;
            jobs.push_back([baseline, &circuit, &options] {
                return measure("ibm", baseline, circuit, options);
            });
        }
    }

    // Shared flow pieces.
    design::DesignFlowOptions flow;
    flow.freq_options = options.freq_options;

    // How many weighted buses are worth adding at all.
    design::LayoutResult layout = design::designLayout(prof);
    Architecture bare(layout.layout, "eff-bare");
    design::BusSelectionResult all_weighted =
        design::selectBuses(bare, prof, SIZE_MAX);
    const std::size_t beneficial = all_weighted.selected.size();

    // Each flow job captures its own copy of `flow` with the fields
    // of that configuration baked in.
    auto flowJob = [&](design::DesignFlowOptions job_flow,
                       std::string config, std::string arch_name) {
        jobs.push_back([job_flow, config = std::move(config),
                        arch_name = std::move(arch_name), &prof,
                        &circuit, &options] {
            auto outcome =
                design::designArchitecture(prof, job_flow, arch_name);
            return measure(config, outcome.architecture, circuit,
                           options);
        });
    };

    // --- eff-full: Algorithm 1 + 2 + 3, sweeping K -----------------
    if (options.run_eff_full) {
        for (std::size_t k = 0; k <= beneficial; ++k) {
            flow.bus_scheme = design::BusScheme::Weighted;
            flow.max_buses = k;
            flow.freq_scheme = design::FreqScheme::Optimized;
            flowJob(flow, "eff-full",
                    "eff-full-k" + std::to_string(k));
        }
    }

    // --- eff-5-freq: layout + buses, IBM frequency tiling ----------
    if (options.run_eff_5_freq) {
        for (std::size_t k = 0; k <= beneficial; ++k) {
            flow.bus_scheme = design::BusScheme::Weighted;
            flow.max_buses = k;
            flow.freq_scheme = design::FreqScheme::FiveFrequency;
            flowJob(flow, "eff-5-freq",
                    "eff-5-freq-k" + std::to_string(k));
        }
    }

    // --- eff-rd-bus: random bus placement samples ------------------
    if (options.run_eff_rd_bus) {
        const std::size_t max_any = design::maxPlaceableBuses(bare);
        for (std::size_t s = 0; s < options.random_bus_samples; ++s) {
            if (max_any == 0)
                break;
            flow.bus_scheme = design::BusScheme::Random;
            flow.max_buses = 1 + s % max_any;
            flow.freq_scheme = design::FreqScheme::Optimized;
            flow.bus_seed = options.seed * 7919 + s;
            flowJob(flow, "eff-rd-bus",
                    "eff-rd-bus-s" + std::to_string(s));
        }
    }

    // --- eff-layout-only: layout + {no, max} buses, 5-freq ---------
    if (options.run_eff_layout_only) {
        for (bool max_buses : {false, true}) {
            flow.bus_scheme = max_buses ? design::BusScheme::Max
                                        : design::BusScheme::None;
            flow.max_buses = SIZE_MAX;
            flow.freq_scheme = design::FreqScheme::FiveFrequency;
            flowJob(flow, "eff-layout-only",
                    max_buses ? "eff-layout-only-max"
                              : "eff-layout-only-2q");
        }
    }

    const obs::Snapshot before = obs::snapshot();

    experiment.points.resize(jobs.size());
    // Guided sizing (grain 0): adaptive yield escalation makes some
    // data points ~100x dearer than others, so fixed chunks would
    // park a worker on whichever chunk drew the expensive points.
    // Guided chunks shrink toward the tail and the work-stealing
    // runners rebalance the rest; safe here because each job derives
    // its seeds from the options alone, never from the chunk index.
    runtime::parallel_for(
        options.exec, jobs.size(), 0,
        [&](std::size_t begin, std::size_t end, std::size_t) {
            static obs::Counter &data_points =
                obs::counter("eval.data_points");
            for (std::size_t i = begin; i < end; ++i) {
                QPAD_SPAN("eval.data_point");
                data_points.add();
                experiment.points[i] = jobs[i]();
            }
        });

    // Surface this run's activity in the report: the metrics delta
    // carries every series the run moved, and the legacy cache_stats
    // view is derived from its cache.* entries (counter deltas; the
    // gauges report residency, which deltaSince keeps absolute).
    experiment.metrics = obs::deltaSince(before);
    const obs::Snapshot &delta = experiment.metrics;
    experiment.cache_stats = cache::globalCacheStats();
    experiment.cache_stats.hits =
        uint64_t(obs::valueOf(delta, "cache.hits"));
    experiment.cache_stats.misses =
        uint64_t(obs::valueOf(delta, "cache.misses"));
    experiment.cache_stats.inserts =
        uint64_t(obs::valueOf(delta, "cache.inserts"));
    experiment.cache_stats.evictions =
        uint64_t(obs::valueOf(delta, "cache.evictions"));

    normalize(experiment);
    return experiment;
}

void
normalize(BenchmarkExperiment &experiment)
{
    std::size_t max_gates = 0;
    for (const auto &p : experiment.points)
        max_gates = std::max(max_gates, p.gate_count);
    for (auto &p : experiment.points) {
        qpad_assert(p.gate_count > 0, "zero post-mapping gate count");
        p.norm_recip_gates = double(max_gates) / double(p.gate_count);
    }
}

} // namespace qpad::eval

/**
 * @file
 * Experiment harness reproducing the paper's evaluation (Section 5):
 * the five configurations, the yield / post-mapping-gate-count
 * metrics, and the Pareto series of Figure 10.
 */

#ifndef QPAD_EVAL_EXPERIMENT_HH
#define QPAD_EVAL_EXPERIMENT_HH

#include <string>
#include <vector>

#include "arch/architecture.hh"
#include "benchmarks/suite.hh"
#include "cache/store.hh"
#include "design/design_flow.hh"
#include "exec/context.hh"
#include "exec/stream.hh"
#include "mapping/sabre.hh"
#include "obs/metrics.hh"
#include "runtime/parallel.hh"
#include "yield/yield_sim.hh"

namespace qpad::eval
{

/** One (architecture, benchmark) measurement: a dot in Figure 10. */
struct DataPoint
{
    std::string config;    ///< ibm / eff-full / eff-5-freq / ...
    std::string arch_name; ///< e.g. "ibm-16q-4qbus", "eff-full-k3"
    std::size_t num_qubits = 0;
    std::size_t num_edges = 0;
    std::size_t num_buses = 0;
    std::size_t gate_count = 0; ///< post-mapping total gate count
    std::size_t swaps = 0;
    double yield = 0.0;
    /** Trials actually used (grows under adaptive escalation). */
    std::size_t yield_trials = 0;
    /** max gate count across the benchmark / this gate count. */
    double norm_recip_gates = 0.0;
};

/** Harness configuration. */
struct ExperimentOptions
{
    yield::YieldOptions yield_options = {};
    /**
     * When a yield estimate comes back 0 (below the Monte Carlo
     * floor), retry with 10x the trials until a success is seen or
     * max_yield_trials is reached. Needed to resolve the ~1e-5..1e-6
     * yields of the densest baselines that the paper's ratio claims
     * divide by.
     */
    bool adaptive_yield_trials = true;
    std::size_t max_yield_trials = 2000000;
    mapping::MappingOptions mapping_options = {};
    design::FreqAllocOptions freq_options = {};
    /** Random bus-selection samples for eff-rd-bus. */
    std::size_t random_bus_samples = 5;
    /** Base seed feeding the per-sample random bus seeds. */
    uint64_t seed = 2020;
    /** Which configurations to run (all by default). */
    bool run_ibm = true;
    bool run_eff_full = true;
    bool run_eff_5_freq = true;
    bool run_eff_rd_bus = true;
    bool run_eff_layout_only = true;
    /**
     * Parallel evaluation of the per-configuration data points
     * (design + mapping + yield per point). Every point derives its
     * seeds from the options alone, so the report is identical for
     * any thread count; points keep their sequential order.
     */
    runtime::Options exec = {};
    /**
     * Optional streaming sink: when attached, every completed
     * DataPoint is emitted as (job index, point) the moment its job
     * finishes — completion order is scheduler-dependent, the index
     * is the point's deterministic slot in `points`. Emitted points
     * carry the raw measurement; norm_recip_gates is a whole-run
     * derived value and is only filled in the final blocking result
     * (0.0 in streamed items). Excluded from all cache keys.
     */
    exec::Sink<DataPoint> stream = {};
};

/** All points for one benchmark (one subplot of Figure 10). */
struct BenchmarkExperiment
{
    std::string benchmark;
    std::size_t logical_qubits = 0;
    std::size_t original_gates = 0;
    std::vector<DataPoint> points;

    /**
     * Result-cache activity attributable to this run: hit / miss /
     * insert / eviction counters are the delta over the run, bytes
     * and entries the global store's residency when it finished.
     * All zero when the cache is disabled. Purely informational —
     * the DataPoints themselves are bit-identical with and without
     * the cache.
     */
    cache::StoreStats cache_stats{};

    /**
     * Process-metrics delta over this run (obs::deltaSince of a
     * snapshot taken before the first job): every runtime.*, cache.*,
     * design.*, yield.* and eval.* series the run moved. cache_stats
     * above is derived from the cache.* entries of this delta.
     */
    obs::Snapshot metrics;

    /** Points of one configuration, in insertion order. */
    std::vector<const DataPoint *>
    config(const std::string &name) const;

    /** Best (max) yield among a configuration's points. */
    double bestYield(const std::string &config) const;

    /** Smallest gate count among a configuration's points. */
    std::size_t bestGates(const std::string &config) const;
};

/**
 * Evaluate one architecture against one circuit. A cancelled or
 * deadline-expired `ctx` raises exec::CancelledError between the
 * adaptive yield-escalation steps and inside the yield estimate's
 * parallel region; a completed measurement is bit-identical to one
 * without a context.
 */
DataPoint measure(const std::string &config,
                  const arch::Architecture &arch,
                  const circuit::Circuit &circuit,
                  const ExperimentOptions &options,
                  const exec::Context &ctx = exec::Context::none());

/**
 * Run the requested configurations for one benchmark. Each data
 * point (design + mapping + yield) is memoized whole under a
 * "qpad.datapoint/v1" key when the global cache is enabled, so a
 * warm rerun of a sweep skips the design flow and the mapper
 * entirely, not just the Monte Carlo. Cancellation via `ctx` stops
 * at job boundaries (plus the finer-grained polls inside design and
 * yield); a completed run is bit-identical at every thread count,
 * with or without a context or a warm cache.
 */
BenchmarkExperiment
runBenchmark(const benchmarks::BenchmarkInfo &info,
             const ExperimentOptions &options,
             const exec::Context &ctx = exec::Context::none());

/** Fill norm_recip_gates = max gate count / gate count. */
void normalize(BenchmarkExperiment &experiment);

} // namespace qpad::eval

#endif // QPAD_EVAL_EXPERIMENT_HH

#include "cache/fingerprint.hh"

#include <bit>
#include <cstring>

namespace qpad::cache
{

namespace
{

inline uint64_t
rotl64(uint64_t x, int r)
{
    return (x << r) | (x >> (64 - r));
}

inline uint64_t
fmix64(uint64_t k)
{
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdull;
    k ^= k >> 33;
    k *= 0xc4ceb9fe1a85ec53ull;
    k ^= k >> 33;
    return k;
}

/** Little-endian load of up to 8 tail bytes. */
inline uint64_t
loadTail(const uint8_t *p, std::size_t n)
{
    uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i)
        v |= uint64_t(p[i]) << (8 * i);
    return v;
}

} // namespace

std::string
Fingerprint::hex() const
{
    static const char digits[] = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i) {
        const uint64_t word = i < 8 ? hi : lo;
        const int shift = 60 - 8 * (i % 8) - 0;
        out[2 * i] = digits[(word >> shift) & 0xf];
        out[2 * i + 1] = digits[(word >> (shift - 4)) & 0xf];
    }
    return out;
}

Fingerprint
hashBytes(const uint8_t *data, std::size_t len)
{
    // MurmurHash3 x64/128 (public domain reference algorithm),
    // seed 0, restated with explicit little-endian block loads so
    // the digest is identical on any host.
    constexpr uint64_t c1 = 0x87c37b91114253d5ull;
    constexpr uint64_t c2 = 0x4cf5ad432745937full;

    uint64_t h1 = 0, h2 = 0;
    const std::size_t nblocks = len / 16;

    for (std::size_t i = 0; i < nblocks; ++i) {
        uint64_t k1 = loadTail(data + 16 * i, 8);
        uint64_t k2 = loadTail(data + 16 * i + 8, 8);

        k1 *= c1;
        k1 = rotl64(k1, 31);
        k1 *= c2;
        h1 ^= k1;
        h1 = rotl64(h1, 27);
        h1 += h2;
        h1 = h1 * 5 + 0x52dce729;

        k2 *= c2;
        k2 = rotl64(k2, 33);
        k2 *= c1;
        h2 ^= k2;
        h2 = rotl64(h2, 31);
        h2 += h1;
        h2 = h2 * 5 + 0x38495ab5;
    }

    const uint8_t *tail = data + 16 * nblocks;
    const std::size_t rem = len & 15;
    if (rem > 8) {
        uint64_t k2 = loadTail(tail + 8, rem - 8);
        k2 *= c2;
        k2 = rotl64(k2, 33);
        k2 *= c1;
        h2 ^= k2;
    }
    if (rem > 0) {
        uint64_t k1 = loadTail(tail, rem < 8 ? rem : 8);
        k1 *= c1;
        k1 = rotl64(k1, 31);
        k1 *= c2;
        h1 ^= k1;
    }

    h1 ^= uint64_t(len);
    h2 ^= uint64_t(len);
    h1 += h2;
    h2 += h1;
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 += h2;
    h2 += h1;
    return {h1, h2};
}

void
Encoder::u32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        bytes_.push_back(uint8_t(v >> (8 * i)));
}

void
Encoder::u64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        bytes_.push_back(uint8_t(v >> (8 * i)));
}

void
Encoder::f64(double v)
{
    u64(std::bit_cast<uint64_t>(v));
}

void
Encoder::str(std::string_view s)
{
    u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void
Encoder::raw(const uint8_t *data, std::size_t len)
{
    bytes_.insert(bytes_.end(), data, data + len);
}

Fingerprint
Encoder::digest() const
{
    return hashBytes(bytes_.data(), bytes_.size());
}

bool
Decoder::u8(uint8_t &out)
{
    if (pos_ + 1 > len_)
        return false;
    out = data_[pos_++];
    return true;
}

bool
Decoder::u32(uint32_t &out)
{
    if (pos_ + 4 > len_)
        return false;
    out = 0;
    for (int i = 0; i < 4; ++i)
        out |= uint32_t(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return true;
}

bool
Decoder::u64(uint64_t &out)
{
    if (pos_ + 8 > len_)
        return false;
    out = 0;
    for (int i = 0; i < 8; ++i)
        out |= uint64_t(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return true;
}

bool
Decoder::i32(int32_t &out)
{
    uint32_t v;
    if (!u32(v))
        return false;
    out = int32_t(v);
    return true;
}

bool
Decoder::i64(int64_t &out)
{
    uint64_t v;
    if (!u64(v))
        return false;
    out = int64_t(v);
    return true;
}

bool
Decoder::f64(double &out)
{
    uint64_t bits;
    if (!u64(bits))
        return false;
    out = std::bit_cast<double>(bits);
    return true;
}

void
encodeTopology(Encoder &enc, const arch::Architecture &arch)
{
    enc.u64(arch.numQubits());
    for (const arch::Coord &c : arch.layout().coords()) {
        enc.i32(c.row);
        enc.i32(c.col);
    }
    const auto &buses = arch.fourQubitBuses();
    enc.u64(buses.size());
    for (const arch::Coord &b : buses) {
        enc.i32(b.row);
        enc.i32(b.col);
    }
}

void
encodeArchitecture(Encoder &enc, const arch::Architecture &arch)
{
    encodeTopology(enc, arch);
    const bool assigned = arch.frequenciesAssigned();
    enc.u8(assigned ? 1 : 0);
    if (assigned)
        for (arch::PhysQubit q = 0; q < arch.numQubits(); ++q)
            enc.f64(arch.frequency(q));
}

void
encodeCollisionModel(Encoder &enc, const yield::CollisionModel &model)
{
    enc.f64(model.delta);
    enc.f64(model.thr1);
    enc.f64(model.thr2);
    enc.f64(model.thr3);
    enc.f64(model.thr5);
    enc.f64(model.thr6);
    enc.f64(model.thr7);
}

Fingerprint
fingerprintArchitecture(const arch::Architecture &arch)
{
    Encoder enc;
    enc.str("qpad.arch/v1");
    encodeArchitecture(enc, arch);
    return enc.digest();
}

} // namespace qpad::cache

#include "cache/yield_cache.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string_view>

#include "common/gauss_block.hh"
#include "common/logging.hh"

namespace qpad::cache
{

namespace
{

std::mutex g_store_mutex;
std::unique_ptr<Store> g_store;

/** Strict nonnegative-integer env parse (bench_common convention:
 * malformed values fail loudly instead of being coerced). */
uint64_t
parseEnvUint(const char *name, const char *value)
{
    for (const char *c = value; *c; ++c)
        if (!std::isdigit(static_cast<unsigned char>(*c)))
            qpad_fatal("invalid ", name, " value '", value,
                       "' (expected a nonnegative integer)");
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value, &end, 10);
    if (errno == ERANGE || *end != '\0')
        qpad_fatal("invalid ", name, " value '", value,
                   "' (out of range)");
    return v;
}

CacheOptions
optionsFromEnv()
{
    CacheOptions options;
    if (const char *flag = std::getenv("QPAD_CACHE");
        flag && *flag) {
        if (flag[0] == '0' && flag[1] == '\0')
            options.enabled = false;
        else if (!(flag[0] == '1' && flag[1] == '\0'))
            qpad_fatal("invalid QPAD_CACHE value '", flag,
                       "' (expected 0 or 1)");
    }
    if (const char *dir = std::getenv("QPAD_CACHE_DIR"); dir && *dir)
        options.dir = dir;
    if (const char *bytes = std::getenv("QPAD_CACHE_BYTES");
        bytes && *bytes)
        options.max_bytes =
            std::size_t(parseEnvUint("QPAD_CACHE_BYTES", bytes));
    if (const char *sync = std::getenv("QPAD_CACHE_SYNC");
        sync && *sync) {
        const std::string_view value(sync);
        if (value == "flush")
            options.sync = SyncPolicy::kFlush;
        else if (value == "full")
            options.sync = SyncPolicy::kFull;
        else
            qpad_fatal("invalid QPAD_CACHE_SYNC value '", sync,
                       "' (expected flush or full)");
    }
    if (const char *factor = std::getenv("QPAD_CACHE_COMPACT");
        factor && *factor)
        options.compact_factor =
            uint32_t(parseEnvUint("QPAD_CACHE_COMPACT", factor));
    if (const char *ms = std::getenv("QPAD_CACHE_LOCK_MS");
        ms && *ms)
        options.lock_timeout_ms =
            uint32_t(parseEnvUint("QPAD_CACHE_LOCK_MS", ms));
    return options;
}

std::vector<uint8_t>
encodeYieldResult(const yield::YieldResult &result)
{
    Encoder enc;
    enc.u64(result.successes);
    enc.u64(result.trials);
    for (std::size_t c : result.condition_trials)
        enc.u64(c);
    return enc.bytes();
}

bool
decodeYieldResult(const std::vector<uint8_t> &blob,
                  const yield::YieldOptions &options,
                  yield::YieldResult &result)
{
    Decoder in(blob);
    uint64_t successes, trials;
    if (!in.u64(successes) || !in.u64(trials))
        return false;
    for (std::size_t &c : result.condition_trials) {
        uint64_t v;
        if (!in.u64(v))
            return false;
        c = std::size_t(v);
    }
    // The trials field doubles as an integrity check against the
    // requested key (a mismatch means corruption or a 128-bit
    // collision; recompute rather than serve it).
    if (!in.atEnd() || trials != options.trials || successes > trials)
        return false;
    result.successes = std::size_t(successes);
    result.trials = std::size_t(trials);
    result.yield = double(successes) / double(trials);
    return true;
}

std::vector<uint8_t>
encodeFreqAllocResult(const design::FreqAllocResult &result)
{
    Encoder enc;
    enc.u64(result.freqs.size());
    for (double f : result.freqs)
        enc.f64(f);
    enc.u64(result.order.size());
    for (arch::PhysQubit q : result.order)
        enc.u32(q);
    enc.u64(result.local_scores.size());
    for (double s : result.local_scores)
        enc.f64(s);
    return enc.bytes();
}

bool
decodeFreqAllocResult(const std::vector<uint8_t> &blob,
                      std::size_t num_qubits,
                      design::FreqAllocResult &result)
{
    Decoder in(blob);
    uint64_t n;
    if (!in.u64(n) || n != num_qubits)
        return false;
    result.freqs.resize(n);
    for (double &f : result.freqs)
        if (!in.f64(f))
            return false;
    uint64_t m;
    if (!in.u64(m) || m > num_qubits)
        return false;
    result.order.resize(m);
    for (arch::PhysQubit &q : result.order) {
        uint32_t v;
        if (!in.u32(v) || v >= num_qubits)
            return false;
        q = v;
    }
    uint64_t k;
    if (!in.u64(k) || k != m)
        return false;
    result.local_scores.resize(k);
    for (double &s : result.local_scores)
        if (!in.f64(s))
            return false;
    return in.atEnd();
}

} // namespace

Store &
globalStore()
{
    std::lock_guard<std::mutex> lock(g_store_mutex);
    if (!g_store)
        g_store = std::make_unique<Store>(optionsFromEnv());
    return *g_store;
}

void
configureGlobalCache(const CacheOptions &options)
{
    std::lock_guard<std::mutex> lock(g_store_mutex);
    g_store = std::make_unique<Store>(options);
}

StoreStats
globalCacheStats()
{
    return globalStore().stats();
}

Fingerprint
yieldKey(const arch::Architecture &arch,
         const yield::YieldOptions &options)
{
    Encoder enc;
    enc.str("qpad.yield/v1");
    encodeArchitecture(enc, arch);
    enc.u64(options.trials);
    enc.f64(options.sigma_ghz);
    enc.u64(options.seed);
    enc.u8(options.collect_condition_stats ? 1 : 0);
    encodeCollisionModel(enc, options.model);
    // The *resolved* scheme: QPAD_RNG_V1 changes the drawn numbers,
    // so it must change the key. options.exec never does (the
    // runtime contract) and is excluded.
    enc.u8(uint8_t(resolveRngScheme(options.rng_scheme)));
    return enc.digest();
}

Fingerprint
freqAllocKey(const arch::Architecture &arch,
             const design::FreqAllocOptions &options)
{
    Encoder enc;
    enc.str("qpad.freqalloc/v1");
    // The allocator reads the topology (coords + buses via the
    // coupling graph) and never the pre-existing frequencies.
    encodeTopology(enc, arch);
    enc.f64(options.grid_step_ghz);
    enc.u64(options.local_trials);
    enc.f64(options.sigma_ghz);
    encodeCollisionModel(enc, options.model);
    enc.u64(options.seed);
    enc.u32(options.refine_sweeps);
    enc.u8(uint8_t(resolveRngScheme(options.rng_scheme)));
    return enc.digest();
}

yield::YieldResult
cachedEstimateYield(const arch::Architecture &arch,
                    const yield::YieldOptions &options,
                    const exec::Context &ctx)
{
    Store &store = globalStore();
    if (!store.options().enabled || options.trials == 0)
        return yield::estimateYield(arch, options, ctx);

    // getOrCompute deduplicates concurrent identical estimates: one
    // caller computes, the rest block on its result. The owner runs
    // under its own ctx; a waiter's ctx only governs its wait. The
    // encode/decode round trip is lossless (exact integers; the
    // yield ratio is recomputed from them), so the returned result
    // is bit-identical to the uncached call.
    const Fingerprint key = yieldKey(arch, options);
    const std::vector<uint8_t> blob = store.getOrCompute(
        key,
        [&] {
            return encodeYieldResult(
                yield::estimateYield(arch, options, ctx));
        },
        ctx.token());
    yield::YieldResult result;
    if (decodeYieldResult(blob, options, result))
        return result;
    // Undecodable bytes (corrupt disk record or a 128-bit key
    // collision): recompute and overwrite, exactly as a plain miss
    // would have.
    qpad_warn("cache: dropping undecodable yield record ", key.hex());
    result = yield::estimateYield(arch, options, ctx);
    store.put(key, encodeYieldResult(result));
    return result;
}

design::FreqAllocResult
cachedAllocateFrequencies(const arch::Architecture &arch,
                          const design::FreqAllocOptions &options,
                          const exec::Context &ctx)
{
    Store &store = globalStore();
    if (!store.options().enabled)
        return design::allocateFrequencies(arch, options, ctx);

    const Fingerprint key = freqAllocKey(arch, options);
    const std::vector<uint8_t> blob = store.getOrCompute(
        key,
        [&] {
            return encodeFreqAllocResult(
                design::allocateFrequencies(arch, options, ctx));
        },
        ctx.token());
    design::FreqAllocResult result;
    if (decodeFreqAllocResult(blob, arch.numQubits(), result))
        return result;
    qpad_warn("cache: dropping undecodable freq-alloc record ",
              key.hex());
    result = design::allocateFrequencies(arch, options, ctx);
    store.put(key, encodeFreqAllocResult(result));
    return result;
}

} // namespace qpad::cache

/**
 * @file
 * Content-addressed fingerprints for the persistent result cache.
 *
 * A Fingerprint is a 128-bit digest of a *canonical binary encoding*
 * of the cached computation's inputs. The encoding is explicit and
 * platform-independent — fixed-width little-endian integers, doubles
 * as their IEEE-754 bit patterns, length-prefixed byte strings — so
 * the same architecture and options hash to the same key on every
 * machine, which is what makes the on-disk cache shareable. The
 * digest itself is MurmurHash3 x64/128, chosen for speed and a fixed
 * public specification (no dependence on std::hash, whose values are
 * implementation-defined).
 *
 * Keys are *exact*: two inputs collide only if their canonical
 * encodings collide in the 128-bit hash (~2^-64 birthday risk over
 * astronomically more entries than any design sweep produces). Every
 * key starts with a domain tag string and a format version, so
 * distinct record kinds (yield results, frequency allocations,
 * annealing chains) can never alias and an encoding change
 * invalidates old records instead of corrupting them.
 */

#ifndef QPAD_CACHE_FINGERPRINT_HH
#define QPAD_CACHE_FINGERPRINT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "arch/architecture.hh"
#include "yield/collision.hh"

namespace qpad::cache
{

/** 128-bit content digest; equality-comparable and hashable. */
struct Fingerprint
{
    uint64_t hi = 0;
    uint64_t lo = 0;

    bool operator==(const Fingerprint &) const = default;

    /** 32-character lowercase hex rendering (hi then lo). */
    std::string hex() const;
};

/** Hash for unordered_map keys (the digest is already well mixed). */
struct FingerprintHash
{
    std::size_t
    operator()(const Fingerprint &f) const
    {
        return std::size_t(f.lo ^ f.hi);
    }
};

/** MurmurHash3 x64/128 of a byte buffer (seed 0). */
Fingerprint hashBytes(const uint8_t *data, std::size_t len);

/**
 * Builder for canonical encodings. Append order is significant; all
 * multi-byte values are written little-endian regardless of host
 * endianness.
 */
class Encoder
{
  public:
    void u8(uint8_t v) { bytes_.push_back(v); }
    void u32(uint32_t v);
    void u64(uint64_t v);
    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
    /** IEEE-754 bit pattern; -0.0 and 0.0 intentionally differ. */
    void f64(double v);
    /** Length-prefixed byte string (for domain tags). */
    void str(std::string_view s);
    /** Raw bytes, no length prefix. */
    void raw(const uint8_t *data, std::size_t len);

    const std::vector<uint8_t> &bytes() const { return bytes_; }

    /** Digest of everything appended so far. */
    Fingerprint digest() const;

  private:
    std::vector<uint8_t> bytes_;
};

/**
 * Bounds-checked reader for Encoder-produced byte sequences (cache
 * payloads, log records). Every accessor returns false instead of
 * reading past the end, so truncated or corrupt blobs decode to a
 * clean failure rather than garbage.
 */
class Decoder
{
  public:
    Decoder(const uint8_t *data, std::size_t len)
        : data_(data), len_(len)
    {}
    explicit Decoder(const std::vector<uint8_t> &bytes)
        : Decoder(bytes.data(), bytes.size())
    {}

    bool u8(uint8_t &out);
    bool u32(uint32_t &out);
    bool u64(uint64_t &out);
    bool i32(int32_t &out);
    bool i64(int64_t &out);
    bool f64(double &out);

    bool atEnd() const { return pos_ == len_; }

  private:
    const uint8_t *data_;
    std::size_t len_;
    std::size_t pos_ = 0;
};

/**
 * Canonical encoding of an architecture's yield-relevant content:
 * qubit coordinates (in physical-qubit order), 4-qubit bus origins,
 * and the assigned frequencies (with an explicit assigned flag).
 * The name is deliberately excluded — identically shaped chips are
 * the same content — as are derived caches (coupling graph,
 * distances), which are pure functions of the encoded fields.
 */
void encodeArchitecture(Encoder &enc, const arch::Architecture &arch);

/** Topology only (coords + buses, no frequencies): the input of the
 * frequency allocator, which never reads pre-existing assignments. */
void encodeTopology(Encoder &enc, const arch::Architecture &arch);

/** All seven collision thresholds plus the anharmonicity delta. */
void encodeCollisionModel(Encoder &enc,
                          const yield::CollisionModel &model);

/** Digest of encodeArchitecture alone (tagged, versioned). */
Fingerprint fingerprintArchitecture(const arch::Architecture &arch);

} // namespace qpad::cache

#endif // QPAD_CACHE_FINGERPRINT_HH

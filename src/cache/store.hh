/**
 * @file
 * Sharded in-memory result store with an LRU byte budget and a
 * crash-safe, multi-process append-only on-disk log.
 *
 * Concurrency: keys are distributed over independently locked shards
 * (mutex per shard), so concurrent lookups from the qpad::runtime
 * thread pool contend only when they hash to the same shard. Disk
 * appends serialize on their own mutex in-process and on an
 * exclusive flock (taken on `<dir>/qpad_cache.lock`, never on the
 * log itself — compaction replaces the log inode by rename, which
 * would orphan locks held on it) across processes, so any number of
 * workers may share one QPAD_CACHE_DIR.
 *
 * Persistence: when CacheOptions::dir is set, the store replays the
 * log `<dir>/qpad_cache.qpc` on construction and appends one record
 * per insertion. The file is a 16-byte header (magic + format
 * version) followed by checksummed records. The append handle is
 * unbuffered and opened O_APPEND, each record is one contiguous
 * write, and the flock is held from before the write until after the
 * sync policy (CacheOptions::sync) commits it — so concurrent
 * writers never interleave mid-record and a record is "committed"
 * exactly when put() returns.
 *
 * Crash safety: a torn or corrupted tail — the signature of a crash
 * mid-append — is detected by the per-record checksum on replay and
 * truncated away with a warning; a FAILED append (short write, I/O
 * error, flush/sync failure) truncates the log back to the
 * pre-record offset on the spot, so the file never retains a torn
 * record, and then degrades the store to memory-only mode: one
 * structured warning (`cache.persistence_lost`), counters keep
 * moving, and every get/put keeps serving from memory. Every I/O
 * site routes through the fault::fio shims, so the whole ladder is
 * provable under injected faults (QPAD_FAILPOINTS) — see
 * tests/test_fault.cc's crash-torture harness.
 *
 * Compaction: superseded records (a later append for the same key
 * wins on replay) accumulate; when the record count exceeds
 * CacheOptions::compact_factor times the distinct-key count the log
 * is rewritten — live records stream to a temp file, fsync, atomic
 * rename under the flock — and other processes detect the swapped
 * inode on their next locked append and reopen. compactLog() runs
 * the same rewrite on demand (the qpad-cache tool's offline mode).
 */

#ifndef QPAD_CACHE_STORE_HH
#define QPAD_CACHE_STORE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/fingerprint.hh"
#include "exec/cancel.hh"

namespace qpad::cache
{

/** When an append is durable enough to release the flock. */
enum class SyncPolicy : uint8_t
{
    kFlush, ///< flushed to the kernel (survives process death)
    kFull,  ///< + fsync (survives power loss); QPAD_CACHE_SYNC=full
};

/** Store configuration. */
struct CacheOptions
{
    /** Master switch consulted by the cached front ends. */
    bool enabled = true;
    /** In-memory LRU budget across all shards (bytes). */
    std::size_t max_bytes = 64ull << 20;
    /** Lock shards (rounded up to at least 1). */
    std::size_t shards = 16;
    /** Persistence directory; empty = memory only. */
    std::string dir;
    /** Durability point of one append (QPAD_CACHE_SYNC). */
    SyncPolicy sync = SyncPolicy::kFlush;
    /** Total bound on waiting for the inter-process lock, in
     * milliseconds; 0 = one try. Retries follow a deterministic
     * 1-2-4-...ms backoff schedule (QPAD_CACHE_LOCK_MS). */
    uint32_t lock_timeout_ms = 5000;
    /** Auto-compact when disk records exceed this many times the
     * distinct keys (0 disables; QPAD_CACHE_COMPACT). */
    uint32_t compact_factor = 4;
};

/** Counter snapshot; see Store::stats(). */
struct StoreStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    /** Resident payload bytes / entries at snapshot time. */
    uint64_t bytes = 0;
    uint64_t entries = 0;
    /** Records replayed / rejected from the on-disk log on open. */
    uint64_t disk_loaded = 0;
    uint64_t disk_dropped = 0;
    /** getOrCompute() calls that waited on a concurrent identical
     * computation instead of starting their own. */
    uint64_t dedup_waits = 0;
    /** Appends that had to retry for the inter-process flock, and
     * appends skipped because the bounded wait ran out. */
    uint64_t lock_waits = 0;
    uint64_t lock_timeouts = 0;
    /** Log rewrites (threshold-triggered or compactLog()). */
    uint64_t compactions = 0;
    /** 1 once the store degraded to memory-only after an I/O
     * failure (persistence never comes back for this instance). */
    uint64_t persistence_lost = 0;
};

/** Content-addressed blob store (thread-safe). */
class Store
{
  public:
    explicit Store(const CacheOptions &options = {});
    ~Store();

    Store(const Store &) = delete;
    Store &operator=(const Store &) = delete;

    const CacheOptions &options() const { return options_; }

    /**
     * Look up `key`; on a hit copies the payload into `value`,
     * refreshes its LRU position, and returns true.
     */
    bool get(const Fingerprint &key, std::vector<uint8_t> &value);

    /**
     * Insert (or overwrite) `key`. Evicts least-recently-used
     * entries of the same shard while over budget, then appends the
     * record to the on-disk log if persistence is enabled.
     */
    void put(const Fingerprint &key, const std::vector<uint8_t> &value);

    /** Drop every in-memory entry (the disk log is left alone). */
    void clear();

    /**
     * Look up `key`; on a miss run `compute` and insert its result.
     * Concurrent callers with the same key deduplicate: exactly one
     * (the owner) runs `compute` while the others block until it
     * finishes, then read the inserted value — the owner's path is
     * byte-identical (and counter-identical: one miss, one insert)
     * to get()+put(), so uncontended callers cannot tell the
     * difference.
     *
     * `cancel` applies to the CALLER only. A waiter whose token fires
     * raises exec::CancelledError without disturbing the owner's
     * computation (other waiters and the owner proceed normally);
     * the owner runs `compute` under its own context, if any. If the
     * owner's compute throws, the owner rethrows and one waiter is
     * promoted to owner and retries.
     *
     * Returns the cached or freshly computed payload.
     */
    std::vector<uint8_t>
    getOrCompute(const Fingerprint &key,
                 const std::function<std::vector<uint8_t>()> &compute,
                 const exec::CancelToken *cancel = nullptr);

    /**
     * Rewrite the log to live records only (latest per key, in order
     * of first appearance), under the inter-process lock. Returns
     * false when persistence is off/lost or the rewrite failed (the
     * old log stays; a failure mid-rewrite never corrupts it — the
     * swap is one atomic rename).
     */
    bool compactLog();

    /** True while the on-disk log is open and accepting appends. */
    bool persistent() const;

    StoreStats stats() const;

  private:
    struct Entry
    {
        Fingerprint key;
        std::vector<uint8_t> value;
    };
    using Lru = std::list<Entry>;

    struct Shard
    {
        mutable std::mutex mutex;
        Lru lru; ///< front = most recently used
        std::unordered_map<Fingerprint, Lru::iterator, FingerprintHash>
            map;
        std::size_t bytes = 0;
    };

    /** One in-flight getOrCompute computation; waiters block on cv
     * until the owner sets done (after put() and map erase). */
    struct InFlight
    {
        std::mutex mutex;
        std::condition_variable cv;
        bool done = false;
    };

    Shard &shardFor(const Fingerprint &key);
    /** Insert into memory only (shared by put() and log replay). */
    void putInMemory(const Fingerprint &key,
                     const std::vector<uint8_t> &value);

    // Log internals; all run with log_mutex_ held (or from the
    // constructor/destructor, where no other thread exists yet).
    void openLog();
    void appendRecord(const Fingerprint &key,
                      const std::vector<uint8_t> &value);
    /** Take the inter-process flock with bounded deterministic
     * backoff; false = contended past lock_timeout_ms or failed. */
    bool acquireFileLock();
    void releaseFileLock();
    void disablePersistence(const char *reason);
    bool compactLocked();
    void maybeCompactLocked();

    CacheOptions options_;
    std::vector<Shard> shards_;
    std::size_t shard_budget_;

    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> inserts_{0};
    std::atomic<uint64_t> evictions_{0};
    std::atomic<uint64_t> dedup_waits_{0};
    uint64_t disk_loaded_ = 0;  ///< written once, in the constructor
    uint64_t disk_dropped_ = 0; ///< ditto

    /** Guards inflight_ (never held while computing or waiting). */
    std::mutex inflight_mutex_;
    std::unordered_map<Fingerprint, std::shared_ptr<InFlight>,
                       FingerprintHash>
        inflight_;

    /** Guards everything below (one append at a time in-process). */
    mutable std::mutex log_mutex_;
    std::FILE *log_ = nullptr;  ///< unbuffered O_APPEND write handle
    std::FILE *lock_file_ = nullptr; ///< flock target; never renamed
    std::string log_path_;
    std::string dir_path_;
    bool persistence_lost_ = false;
    std::atomic<bool> lost_warned_{false}; ///< obs::logWarnOnce flag
    /** Disk census this process knows about (its own appends plus
     * whatever it replayed); drives the compaction threshold. */
    uint64_t disk_records_ = 0;
    std::unordered_set<Fingerprint, FingerprintHash> disk_keys_;
    uint64_t lock_waits_ = 0;
    uint64_t lock_timeouts_ = 0;
    uint64_t compactions_ = 0;
};

} // namespace qpad::cache

#endif // QPAD_CACHE_STORE_HH

/**
 * @file
 * Sharded in-memory result store with an LRU byte budget and an
 * optional append-only on-disk log.
 *
 * Concurrency: keys are distributed over independently locked shards
 * (mutex per shard), so concurrent lookups from the qpad::runtime
 * thread pool contend only when they hash to the same shard. Disk
 * appends serialize on their own mutex and never hold a shard lock.
 *
 * Persistence: when CacheOptions::dir is set, the store replays the
 * log `<dir>/qpad_cache.qpc` on construction and appends one record
 * per insertion. The file is a 16-byte header (magic + format
 * version) followed by checksummed records; a torn or corrupted tail
 * — the signature of a crash mid-append — is detected by the
 * per-record checksum, truncated away with a warning, and never
 * fatal. The log is append-only by design: in-memory eviction does
 * not rewrite it, and a later record for the same key supersedes an
 * earlier one on replay (compaction is a named follow-on in the
 * ROADMAP, as is cross-process file locking — one writer per
 * directory for now).
 */

#ifndef QPAD_CACHE_STORE_HH
#define QPAD_CACHE_STORE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/fingerprint.hh"
#include "exec/cancel.hh"

namespace qpad::cache
{

/** Store configuration. */
struct CacheOptions
{
    /** Master switch consulted by the cached front ends. */
    bool enabled = true;
    /** In-memory LRU budget across all shards (bytes). */
    std::size_t max_bytes = 64ull << 20;
    /** Lock shards (rounded up to at least 1). */
    std::size_t shards = 16;
    /** Persistence directory; empty = memory only. */
    std::string dir;
};

/** Counter snapshot; see Store::stats(). */
struct StoreStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    /** Resident payload bytes / entries at snapshot time. */
    uint64_t bytes = 0;
    uint64_t entries = 0;
    /** Records replayed / rejected from the on-disk log on open. */
    uint64_t disk_loaded = 0;
    uint64_t disk_dropped = 0;
    /** getOrCompute() calls that waited on a concurrent identical
     * computation instead of starting their own. */
    uint64_t dedup_waits = 0;
};

/** Content-addressed blob store (thread-safe). */
class Store
{
  public:
    explicit Store(const CacheOptions &options = {});
    ~Store();

    Store(const Store &) = delete;
    Store &operator=(const Store &) = delete;

    const CacheOptions &options() const { return options_; }

    /**
     * Look up `key`; on a hit copies the payload into `value`,
     * refreshes its LRU position, and returns true.
     */
    bool get(const Fingerprint &key, std::vector<uint8_t> &value);

    /**
     * Insert (or overwrite) `key`. Evicts least-recently-used
     * entries of the same shard while over budget, then appends the
     * record to the on-disk log if persistence is enabled.
     */
    void put(const Fingerprint &key, const std::vector<uint8_t> &value);

    /** Drop every in-memory entry (the disk log is left alone). */
    void clear();

    /**
     * Look up `key`; on a miss run `compute` and insert its result.
     * Concurrent callers with the same key deduplicate: exactly one
     * (the owner) runs `compute` while the others block until it
     * finishes, then read the inserted value — the owner's path is
     * byte-identical (and counter-identical: one miss, one insert)
     * to get()+put(), so uncontended callers cannot tell the
     * difference.
     *
     * `cancel` applies to the CALLER only. A waiter whose token fires
     * raises exec::CancelledError without disturbing the owner's
     * computation (other waiters and the owner proceed normally);
     * the owner runs `compute` under its own context, if any. If the
     * owner's compute throws, the owner rethrows and one waiter is
     * promoted to owner and retries.
     *
     * Returns the cached or freshly computed payload.
     */
    std::vector<uint8_t>
    getOrCompute(const Fingerprint &key,
                 const std::function<std::vector<uint8_t>()> &compute,
                 const exec::CancelToken *cancel = nullptr);

    StoreStats stats() const;

  private:
    struct Entry
    {
        Fingerprint key;
        std::vector<uint8_t> value;
    };
    using Lru = std::list<Entry>;

    struct Shard
    {
        mutable std::mutex mutex;
        Lru lru; ///< front = most recently used
        std::unordered_map<Fingerprint, Lru::iterator, FingerprintHash>
            map;
        std::size_t bytes = 0;
    };

    /** One in-flight getOrCompute computation; waiters block on cv
     * until the owner sets done (after put() and map erase). */
    struct InFlight
    {
        std::mutex mutex;
        std::condition_variable cv;
        bool done = false;
    };

    Shard &shardFor(const Fingerprint &key);
    /** Insert into memory only (shared by put() and log replay). */
    void putInMemory(const Fingerprint &key,
                     const std::vector<uint8_t> &value);

    void openLog();
    void appendRecord(const Fingerprint &key,
                      const std::vector<uint8_t> &value);

    CacheOptions options_;
    std::vector<Shard> shards_;
    std::size_t shard_budget_;

    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> inserts_{0};
    std::atomic<uint64_t> evictions_{0};
    std::atomic<uint64_t> dedup_waits_{0};
    uint64_t disk_loaded_ = 0;  ///< written once, in the constructor
    uint64_t disk_dropped_ = 0; ///< ditto

    /** Guards inflight_ (never held while computing or waiting). */
    std::mutex inflight_mutex_;
    std::unordered_map<Fingerprint, std::shared_ptr<InFlight>,
                       FingerprintHash>
        inflight_;

    std::mutex log_mutex_;
    std::FILE *log_ = nullptr;
};

} // namespace qpad::cache

#endif // QPAD_CACHE_STORE_HH

/**
 * @file
 * Cached front ends for the expensive deterministic computations of
 * the design flow, backed by one process-wide content-addressed
 * Store.
 *
 * Every cached result is a pure function of the fingerprinted inputs
 * (see cache/fingerprint.hh): estimateYield and allocateFrequencies
 * are bit-identical across thread counts by the qpad::runtime
 * contract, so runtime::Options is deliberately *excluded* from the
 * keys, while the resolved RngScheme (which does change the drawn
 * numbers) is included. Cache-on is therefore bit-identical to
 * cache-off by construction — a hit returns exactly the bytes a miss
 * would have computed.
 *
 * The global store is configured from the environment on first use:
 *   QPAD_CACHE=0       disable memoization entirely
 *   QPAD_CACHE_DIR     enable the persistent on-disk log
 *   QPAD_CACHE_BYTES   in-memory LRU budget (default 64 MiB)
 * configureGlobalCache() overrides this programmatically (tests,
 * benches). Reconfiguration is not thread-safe against concurrent
 * cached calls; do it before spawning parallel work.
 */

#ifndef QPAD_CACHE_YIELD_CACHE_HH
#define QPAD_CACHE_YIELD_CACHE_HH

#include "cache/store.hh"
#include "design/freq_alloc.hh"
#include "exec/context.hh"
#include "yield/yield_sim.hh"

namespace qpad::cache
{

/** The process-wide store (created from the environment on first
 * use; never null). */
Store &globalStore();

/** Replace the global store (tests/benches). */
void configureGlobalCache(const CacheOptions &options);

/** Counter snapshot of the global store. */
StoreStats globalCacheStats();

/** Cache key of one estimateYield invocation (tagged, versioned). */
Fingerprint yieldKey(const arch::Architecture &arch,
                     const yield::YieldOptions &options);

/** Cache key of one allocateFrequencies invocation. */
Fingerprint freqAllocKey(const arch::Architecture &arch,
                         const design::FreqAllocOptions &options);

/**
 * estimateYield through the global cache: exact-key memoization of
 * the deterministic result. Zero-trial calls and a disabled cache
 * pass straight through. Concurrent identical requests deduplicate
 * via Store::getOrCompute — exactly one computes, the rest wait
 * (each honouring its own `ctx`; a cancelled waiter never cancels
 * the computing owner).
 */
yield::YieldResult
cachedEstimateYield(const arch::Architecture &arch,
                    const yield::YieldOptions &options = {},
                    const exec::Context &ctx = exec::Context::none());

/** allocateFrequencies through the global cache (same dedup and
 * cancellation semantics as cachedEstimateYield). */
design::FreqAllocResult
cachedAllocateFrequencies(
    const arch::Architecture &arch,
    const design::FreqAllocOptions &options = {},
    const exec::Context &ctx = exec::Context::none());

} // namespace qpad::cache

#endif // QPAD_CACHE_YIELD_CACHE_HH

#include "cache/store.hh"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <thread>

#include "fault/fio.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"

namespace qpad::cache
{

namespace
{

// Process-wide cache metrics, aggregated over every Store instance
// (tests construct locals; production uses the one global store).
// Counters mirror the per-store StoreStats counters; the residency
// gauges move by delta on insert/evict/clear and a destructor
// returns a store's remaining residency, so the levels stay exact.
obs::Counter &
hitMetric()
{
    static obs::Counter &c = obs::counter("cache.hits");
    return c;
}

obs::Counter &
missMetric()
{
    static obs::Counter &c = obs::counter("cache.misses");
    return c;
}

obs::Counter &
insertMetric()
{
    static obs::Counter &c = obs::counter("cache.inserts");
    return c;
}

obs::Counter &
evictionMetric()
{
    static obs::Counter &c = obs::counter("cache.evictions");
    return c;
}

obs::Gauge &
bytesMetric()
{
    static obs::Gauge &g = obs::gauge("cache.bytes");
    return g;
}

obs::Gauge &
entriesMetric()
{
    static obs::Gauge &g = obs::gauge("cache.entries");
    return g;
}

obs::Counter &
dedupMetric()
{
    static obs::Counter &c = obs::counter("cache.dedup_waits");
    return c;
}

obs::Counter &
lockWaitMetric()
{
    static obs::Counter &c = obs::counter("cache.lock_waits");
    return c;
}

obs::Histogram &
lockWaitSecondsMetric()
{
    static obs::Histogram &h =
        obs::histogram("cache.lock_wait_seconds");
    return h;
}

obs::Counter &
lockTimeoutMetric()
{
    static obs::Counter &c = obs::counter("cache.lock_timeouts");
    return c;
}

obs::Counter &
compactionMetric()
{
    static obs::Counter &c = obs::counter("cache.compactions");
    return c;
}

obs::Counter &
compactDroppedMetric()
{
    static obs::Counter &c =
        obs::counter("cache.compact_dropped_records");
    return c;
}

obs::Counter &
persistenceLostMetric()
{
    static obs::Counter &c = obs::counter("cache.persistence_lost");
    return c;
}

/** Log / lock file names inside CacheOptions::dir. The lock file is
 * separate because compaction replaces the log inode by rename. */
constexpr const char *kLogName = "qpad_cache.qpc";
constexpr const char *kLockName = "qpad_cache.lock";

/** 8-byte magic + format version; bump on any layout change. */
constexpr char kMagic[8] = {'Q', 'P', 'A', 'D', 'C', 'A', 'C', '1'};
constexpr uint32_t kFormatVersion = 1;
constexpr std::size_t kHeaderBytes = 16;

/** Fixed prefix of one record: len u32 | hi u64 | lo u64 | cksum. */
constexpr std::size_t kFixedBytes = 28;

/** Upper bound on one record's payload (corruption tripwire). */
constexpr uint32_t kMaxRecordBytes = 1u << 28;

/** Compaction never considers a log smaller than this many records,
 * whatever the live ratio — rewriting a tiny file buys nothing. */
constexpr uint64_t kCompactMinRecords = 64;

/** Backoff cap for flock retries (the schedule is 1,2,4,...ms). */
constexpr uint32_t kMaxBackoffMs = 16;

/**
 * Fixed per-entry accounting overhead (key, list/map nodes) added to
 * the payload size when charging the LRU budget.
 */
constexpr std::size_t kEntryOverhead = 96;

std::size_t
entryBytes(const std::vector<uint8_t> &value)
{
    return value.size() + kEntryOverhead;
}

/** Checksum over (key, length, payload); detects torn/flipped tails. */
uint64_t
recordChecksum(const Fingerprint &key, uint32_t len,
               const uint8_t *payload)
{
    Encoder enc;
    enc.u64(key.hi);
    enc.u64(key.lo);
    enc.u32(len);
    enc.raw(payload, len);
    return enc.digest().lo;
}

/** The 16-byte header as written to a fresh log. */
std::vector<uint8_t>
headerBytes()
{
    Encoder enc;
    enc.raw(reinterpret_cast<const uint8_t *>(kMagic), 8);
    enc.u32(kFormatVersion);
    enc.u32(0); // reserved
    return enc.bytes();
}

/** One record as a single contiguous buffer, so the append is ONE
 * write call — a crash tears at most one record, never interleaves
 * a header with a stale payload. */
std::vector<uint8_t>
recordBytes(const Fingerprint &key, const std::vector<uint8_t> &value)
{
    Encoder enc;
    enc.u32(uint32_t(value.size()));
    enc.u64(key.hi);
    enc.u64(key.lo);
    enc.u64(recordChecksum(key, uint32_t(value.size()),
                           value.data()));
    enc.raw(value.data(), value.size());
    return enc.bytes();
}

/** Read `in`'s 16-byte header; false on short read / wrong magic /
 * wrong version. */
bool
readHeader(std::FILE *in)
{
    uint8_t header[kHeaderBytes];
    uint32_t version = 0;
    Decoder header_in(header + 8, 8);
    return fault::fioRead("cache.read", in, header, sizeof header) ==
               sizeof header &&
           std::equal(kMagic, kMagic + 8, header) &&
           header_in.u32(version) && version == kFormatVersion;
}

/**
 * Walk `in` (positioned just past the header), handing every
 * checksum-valid record to `sink`. Returns false when the walk ended
 * on a torn/corrupt record instead of clean EOF; either way
 * `good_end` is the offset just past the last valid record and
 * `records` the count of valid ones.
 */
template <typename Sink>
bool
scanRecords(std::FILE *in, Sink &&sink, long &good_end,
            uint64_t &records)
{
    good_end = std::ftell(in);
    records = 0;
    for (;;) {
        uint8_t fixed[kFixedBytes];
        const std::size_t got =
            fault::fioRead("cache.read", in, fixed, sizeof fixed);
        if (got == 0)
            return true; // clean EOF
        bool ok = got == sizeof fixed;
        uint32_t len = 0;
        Fingerprint key;
        uint64_t checksum = 0;
        std::vector<uint8_t> payload;
        if (ok) {
            Decoder fields(fixed, sizeof fixed);
            ok = fields.u32(len) && fields.u64(key.hi) &&
                 fields.u64(key.lo) && fields.u64(checksum) &&
                 len <= kMaxRecordBytes;
        }
        if (ok) {
            payload.resize(len);
            ok = fault::fioRead("cache.read", in, payload.data(),
                                len) == len &&
                 recordChecksum(key, len, payload.data()) == checksum;
        }
        if (!ok)
            return false; // torn tail
        sink(key, std::move(payload));
        ++records;
        good_end = std::ftell(in);
    }
}

} // namespace

Store::Store(const CacheOptions &options)
    : options_(options),
      shards_(std::max<std::size_t>(options.shards, 1)),
      shard_budget_(std::max<std::size_t>(
          options.max_bytes / std::max<std::size_t>(options.shards, 1),
          1))
{
    if (!options_.dir.empty())
        openLog();
    if (disk_loaded_ > 0) {
        static obs::Counter &loaded = obs::counter("cache.disk_loaded");
        loaded.add(disk_loaded_);
    }
    if (disk_dropped_ > 0) {
        static obs::Counter &dropped =
            obs::counter("cache.disk_dropped");
        dropped.add(disk_dropped_);
    }
}

Store::~Store()
{
    // Return this store's remaining residency so the process-wide
    // gauges track only live entries.
    std::int64_t bytes = 0;
    std::int64_t entries = 0;
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        bytes += std::int64_t(shard.bytes);
        entries += std::int64_t(shard.lru.size());
    }
    bytesMetric().add(-bytes);
    entriesMetric().add(-entries);
    fault::fioClose(log_);
    fault::fioClose(lock_file_);
}

Store::Shard &
Store::shardFor(const Fingerprint &key)
{
    return shards_[key.hi % shards_.size()];
}

bool
Store::get(const Fingerprint &key, std::vector<uint8_t> &value)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
        // qpad-lint: allow(atomic-relaxed) "monotonic stat counter;
        // never synchronizes data"
        misses_.fetch_add(1, std::memory_order_relaxed);
        missMetric().add();
        return false;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    value = it->second->value;
    // qpad-lint: allow(atomic-relaxed) "monotonic stat counter;
    // never synchronizes data"
    hits_.fetch_add(1, std::memory_order_relaxed);
    hitMetric().add();
    return true;
}

void
Store::putInMemory(const Fingerprint &key,
                   const std::vector<uint8_t> &value)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    // Gauge movement is accumulated locally and applied once: fewer
    // atomic RMWs, and the gauges see one consistent step per call.
    std::int64_t byte_delta = 0;
    std::int64_t entry_delta = 0;
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
        byte_delta -= std::int64_t(entryBytes(it->second->value));
        shard.bytes -= entryBytes(it->second->value);
        it->second->value = value;
        shard.bytes += entryBytes(value);
        byte_delta += std::int64_t(entryBytes(value));
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
        shard.lru.push_front(Entry{key, value});
        shard.map.emplace(key, shard.lru.begin());
        shard.bytes += entryBytes(value);
        byte_delta += std::int64_t(entryBytes(value));
        entry_delta += 1;
    }
    // Evict from the cold end while over budget; the entry just
    // touched is never evicted, so even an over-budget payload is
    // served back at least until the next insertion.
    uint64_t evicted = 0;
    while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
        const Entry &victim = shard.lru.back();
        byte_delta -= std::int64_t(entryBytes(victim.value));
        entry_delta -= 1;
        shard.bytes -= entryBytes(victim.value);
        shard.map.erase(victim.key);
        shard.lru.pop_back();
        // qpad-lint: allow(atomic-relaxed) "monotonic stat counter;
        // never synchronizes data"
        evictions_.fetch_add(1, std::memory_order_relaxed);
        ++evicted;
    }
    if (evicted > 0)
        evictionMetric().add(evicted);
    bytesMetric().add(byte_delta);
    entriesMetric().add(entry_delta);
}

void
Store::put(const Fingerprint &key, const std::vector<uint8_t> &value)
{
    putInMemory(key, value);
    // qpad-lint: allow(atomic-relaxed) "monotonic stat counter;
    // never synchronizes data"
    inserts_.fetch_add(1, std::memory_order_relaxed);
    insertMetric().add();
    appendRecord(key, value);
}

std::vector<uint8_t>
Store::getOrCompute(
    const Fingerprint &key,
    const std::function<std::vector<uint8_t>()> &compute,
    const exec::CancelToken *cancel)
{
    for (;;) {
        std::vector<uint8_t> value;
        if (get(key, value))
            return value;

        // Miss: claim ownership of the key's computation, or join an
        // existing one. The map lock covers only the claim — never
        // the compute or the wait.
        std::shared_ptr<InFlight> flight;
        bool owner = false;
        {
            std::lock_guard<std::mutex> lock(inflight_mutex_);
            auto it = inflight_.find(key);
            if (it == inflight_.end()) {
                flight = std::make_shared<InFlight>();
                inflight_.emplace(key, flight);
                owner = true;
            } else {
                flight = it->second;
            }
        }

        if (owner) {
            // The owner's path is get() + compute + put(): exactly
            // the counter trace of the classic read-through idiom,
            // so uncontended callers see identical stats.
            std::exception_ptr error;
            try {
                value = compute();
            } catch (...) {
                error = std::current_exception();
            }
            if (!error)
                put(key, value);
            // Erase BEFORE signalling done: on success a late
            // arrival now hits in get(); on failure it starts a
            // fresh computation instead of joining a dead one.
            {
                std::lock_guard<std::mutex> lock(inflight_mutex_);
                inflight_.erase(key);
            }
            {
                std::lock_guard<std::mutex> lock(flight->mutex);
                flight->done = true;
            }
            flight->cv.notify_all();
            if (error)
                std::rethrow_exception(error);
            return value;
        }

        // Waiter: block until the owner finishes, polling the
        // caller's OWN token — a cancelled waiter leaves without
        // touching the owner or the other waiters. On wakeup the
        // outer loop re-runs get(): a successful owner turns it into
        // a hit, a failed (or evicted) one promotes some waiter to
        // owner on the next claim.
        // qpad-lint: allow(atomic-relaxed) "monotonic stat counter;
        // never synchronizes data"
        dedup_waits_.fetch_add(1, std::memory_order_relaxed);
        dedupMetric().add();
        {
            std::unique_lock<std::mutex> lock(flight->mutex);
            while (!flight->done) {
                exec::throwIfStopped(cancel);
                flight->cv.wait_for(lock,
                                    std::chrono::milliseconds(10));
            }
        }
    }
}

void
Store::clear()
{
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        bytesMetric().add(-std::int64_t(shard.bytes));
        entriesMetric().add(-std::int64_t(shard.lru.size()));
        shard.lru.clear();
        shard.map.clear();
        shard.bytes = 0;
    }
}

bool
Store::persistent() const
{
    std::lock_guard<std::mutex> lock(log_mutex_);
    return log_ != nullptr;
}

StoreStats
Store::stats() const
{
    StoreStats s;
    // qpad-lint: allow(atomic-relaxed) "stat snapshot; approximate
    // reads are fine and no data is published through them"
    s.hits = hits_.load(std::memory_order_relaxed);
    // qpad-lint: allow(atomic-relaxed) "stat snapshot; approximate
    // reads are fine and no data is published through them"
    s.misses = misses_.load(std::memory_order_relaxed);
    // qpad-lint: allow(atomic-relaxed) "stat snapshot; approximate
    // reads are fine and no data is published through them"
    s.inserts = inserts_.load(std::memory_order_relaxed);
    // qpad-lint: allow(atomic-relaxed) "stat snapshot; approximate
    // reads are fine and no data is published through them"
    s.evictions = evictions_.load(std::memory_order_relaxed);
    // qpad-lint: allow(atomic-relaxed) "stat snapshot; approximate
    // reads are fine and no data is published through them"
    s.dedup_waits = dedup_waits_.load(std::memory_order_relaxed);
    s.disk_loaded = disk_loaded_;
    s.disk_dropped = disk_dropped_;
    {
        std::lock_guard<std::mutex> lock(log_mutex_);
        s.lock_waits = lock_waits_;
        s.lock_timeouts = lock_timeouts_;
        s.compactions = compactions_;
        s.persistence_lost = persistence_lost_ ? 1 : 0;
    }
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        s.bytes += shard.bytes;
        s.entries += shard.lru.size();
    }
    return s;
}

bool
Store::acquireFileLock()
{
    using fault::LockResult;
    if (!lock_file_)
        return false;
    LockResult r = fault::fioTryLock("cache.lock", lock_file_);
    if (r == LockResult::kLocked || r == LockResult::kUnsupported)
        return true;
    if (r == LockResult::kError)
        return false;

    // Contended: bounded deterministic backoff — 1,2,4,...ms capped
    // at kMaxBackoffMs, total bounded by lock_timeout_ms of wall
    // time measured on the sanctioned steady clock. No randomness:
    // two workers that collide repeatedly resolve by the O_APPEND
    // atomicity of the eventual writes, not by jitter.
    ++lock_waits_;
    lockWaitMetric().add();
    const exec::TimePoint start = exec::now();
    const exec::TimePoint deadline =
        start + std::chrono::milliseconds(options_.lock_timeout_ms);
    uint32_t backoff_ms = 1;
    bool locked = false;
    while (exec::now() < deadline) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(backoff_ms));
        backoff_ms = std::min(backoff_ms * 2, kMaxBackoffMs);
        r = fault::fioTryLock("cache.lock", lock_file_);
        if (r == LockResult::kLocked ||
            r == LockResult::kUnsupported) {
            locked = true;
            break;
        }
        if (r == LockResult::kError)
            break;
    }
    lockWaitSecondsMetric().observe(
        std::chrono::duration<double>(exec::now() - start).count());
    return locked;
}

void
Store::releaseFileLock()
{
    if (lock_file_)
        fault::fioUnlock(lock_file_);
}

void
Store::disablePersistence(const char *reason)
{
    // Memory-only from here on: every get/put keeps working, the log
    // handles are gone, and exactly one warning marks the downgrade.
    // Closing the lock file releases any flock we still hold.
    persistence_lost_ = true;
    fault::fioClose(log_);
    log_ = nullptr;
    fault::fioClose(lock_file_);
    lock_file_ = nullptr;
    if (obs::logWarnOnce(lost_warned_, "cache.persistence_lost",
                         {{"reason", reason}, {"path", log_path_}}))
        persistenceLostMetric().add();
}

void
Store::openLog()
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(options_.dir, ec);
    log_path_ = (fs::path(options_.dir) / kLogName).string();
    dir_path_ = options_.dir;
    if (ec) {
        obs::logWarn("cache.open_failed",
                     {{"path", options_.dir},
                      {"error", ec.message()}});
        disablePersistence("create_dir");
        return;
    }

    const std::string lock_path =
        (fs::path(options_.dir) / kLockName).string();
    lock_file_ = fault::fioOpen("cache.open", lock_path, "ab");
    if (!lock_file_) {
        disablePersistence("open_lock");
        return;
    }
    if (!acquireFileLock()) {
        disablePersistence("lock_timeout");
        return;
    }

    // The append handle is unbuffered and O_APPEND: every fioWrite
    // reaches the kernel before it returns (truncation repair is
    // exact) and concurrent writers cannot interleave a record.
    log_ = fault::fioOpen("cache.open", log_path_, "ab");
    if (!log_) {
        disablePersistence("open_log");
        return;
    }
    fault::fioUnbuffered(log_);
    std::fseek(log_, 0, SEEK_END);
    const long size = std::ftell(log_);

    auto writeFreshHeader = [&]() -> bool {
        const std::vector<uint8_t> header = headerBytes();
        return fault::fioWrite("cache.header", log_, header.data(),
                               header.size()) &&
               fault::fioFlush("cache.flush", log_);
    };

    if (size == 0) {
        if (!writeFreshHeader()) {
            releaseFileLock();
            disablePersistence("write_header");
        } else {
            releaseFileLock();
        }
        return;
    }

    // Replay through a separate buffered read handle (the append
    // handle never reads). We hold the flock, so no other process
    // can move the log mid-replay.
    std::FILE *in = fault::fioOpen("cache.open", log_path_, "rb");
    if (!in) {
        releaseFileLock();
        disablePersistence("open_replay");
        return;
    }
    if (!readHeader(in)) {
        fault::fioClose(in);
        obs::logWarn("cache.bad_header", {{"path", log_path_}});
        if (!fault::fioTruncate("cache.truncate", log_, 0) ||
            !writeFreshHeader()) {
            releaseFileLock();
            disablePersistence("reset_log");
            return;
        }
        releaseFileLock();
        return;
    }

    long good_end = 0;
    uint64_t records = 0;
    const bool clean = scanRecords(
        in,
        [&](const Fingerprint &key, std::vector<uint8_t> &&payload) {
            putInMemory(key, payload);
            disk_keys_.insert(key);
            ++disk_loaded_;
        },
        good_end, records);
    fault::fioClose(in);
    disk_records_ = records;
    if (!clean) {
        // The torn tail of a crashed append: cut it off so the file
        // is clean again and later appends extend a valid log.
        ++disk_dropped_;
        obs::logWarn("cache.torn_record",
                     {{"path", log_path_},
                      {"offset", std::int64_t(good_end)}});
        if (!fault::fioTruncate("cache.truncate", log_, good_end)) {
            releaseFileLock();
            disablePersistence("truncate");
            return;
        }
    }
    maybeCompactLocked();
    releaseFileLock();
}

void
Store::appendRecord(const Fingerprint &key,
                    const std::vector<uint8_t> &value)
{
    // log_ is checked and used under the same lock: a concurrent
    // append failure may disable persistence at any time.
    std::lock_guard<std::mutex> lock(log_mutex_);
    if (!log_ || value.size() > kMaxRecordBytes)
        return;
    if (!acquireFileLock()) {
        // Contention past the bound (or a lock fault): skip THIS
        // append — the entry lives in memory, persistence stays up,
        // and the miss is visible in cache.lock_timeouts.
        ++lock_timeouts_;
        lockTimeoutMetric().add();
        return;
    }

    // Another process may have compacted while we were unlocked; the
    // rename swapped the log inode, so our handle would append to an
    // orphaned file. Detect and reopen before writing.
    if (!fault::fioSameFile(log_, log_path_)) {
        std::FILE *fresh =
            fault::fioOpen("cache.open", log_path_, "ab");
        if (!fresh) {
            releaseFileLock();
            disablePersistence("reopen");
            return;
        }
        fault::fioUnbuffered(fresh);
        fault::fioClose(log_);
        log_ = fresh;
        // The compactor owns the accurate census now; restart ours
        // so our threshold re-arms only after fresh appends.
        disk_records_ = 0;
        disk_keys_.clear();
    }

    std::fseek(log_, 0, SEEK_END);
    const long start = std::ftell(log_);
    const std::vector<uint8_t> record = recordBytes(key, value);
    bool ok = fault::fioWrite("cache.append", log_, record.data(),
                              record.size());
    // Flush is unconditional (the handle is unbuffered, so this only
    // surfaces deferred errors); kFull adds the fsync that survives
    // power loss. Either failure means the record cannot be trusted.
    if (ok)
        ok = fault::fioFlush("cache.flush", log_);
    if (ok && options_.sync == SyncPolicy::kFull)
        ok = fault::fioSync("cache.fsync", log_);
    if (!ok) {
        // Repair before degrading: seek back and cut the torn record
        // off so the log never retains a half-written tail. If even
        // the truncate fails, the next opener's checksum replay does
        // the same cut.
        (void)fault::fioTruncate("cache.truncate", log_, start);
        releaseFileLock();
        disablePersistence("append");
        return;
    }
    ++disk_records_;
    disk_keys_.insert(key);
    maybeCompactLocked();
    releaseFileLock();
}

void
Store::maybeCompactLocked()
{
    if (options_.compact_factor == 0 || !log_)
        return;
    if (disk_records_ < kCompactMinRecords)
        return;
    const uint64_t keys =
        std::max<uint64_t>(disk_keys_.size(), 1);
    if (disk_records_ <= uint64_t(options_.compact_factor) * keys)
        return;
    (void)compactLocked();
}

bool
Store::compactLocked()
{
    namespace fs = std::filesystem;
    // Re-read the CURRENT log (other processes may have appended
    // records our census never saw) and keep the latest record per
    // key, in order of each key's first appearance — a deterministic
    // function of the log contents.
    std::FILE *in = fault::fioOpen("cache.open", log_path_, "rb");
    if (!in)
        return false;
    if (!readHeader(in)) {
        fault::fioClose(in);
        return false;
    }
    std::vector<Fingerprint> order;
    std::unordered_map<Fingerprint, std::vector<uint8_t>,
                       FingerprintHash>
        live;
    long good_end = 0;
    uint64_t records = 0;
    // A torn tail just drops out of the rewrite; no need to repair
    // the old file since it is about to be replaced.
    (void)scanRecords(
        in,
        [&](const Fingerprint &key, std::vector<uint8_t> &&payload) {
            auto it = live.find(key);
            if (it == live.end()) {
                order.push_back(key);
                live.emplace(key, std::move(payload));
            } else {
                it->second = std::move(payload);
            }
        },
        good_end, records);
    fault::fioClose(in);

    // Stream the live set to a temp file, make it durable, then
    // atomically swap it in. A failure at any step leaves the old
    // log untouched (a stale .tmp is overwritten next time).
    const std::string tmp_path = log_path_ + ".tmp";
    std::FILE *out =
        fault::fioOpen("cache.compact.write", tmp_path, "wb");
    if (!out)
        return false;
    const std::vector<uint8_t> header = headerBytes();
    bool ok = fault::fioWrite("cache.compact.write", out,
                              header.data(), header.size());
    for (const Fingerprint &key : order) {
        if (!ok)
            break;
        const std::vector<uint8_t> record =
            recordBytes(key, live.find(key)->second);
        ok = fault::fioWrite("cache.compact.write", out,
                             record.data(), record.size());
    }
    // The temp file is always fsynced regardless of SyncPolicy: the
    // rename is about to make it the ONLY copy of every record.
    if (ok)
        ok = fault::fioSync("cache.compact.sync", out);
    fault::fioClose(out);
    if (!ok)
        return false;
    if (!fault::fioRename("cache.compact.rename", tmp_path,
                          log_path_))
        return false;
    (void)fault::fioSyncDir("cache.compact.sync", dir_path_);

    // Point our append handle at the new inode. Failing here cannot
    // keep the old handle: it now names an orphaned file, so appends
    // through it would be silently lost.
    std::FILE *fresh = fault::fioOpen("cache.open", log_path_, "ab");
    if (!fresh) {
        disablePersistence("reopen_compacted");
        return false;
    }
    fault::fioUnbuffered(fresh);
    fault::fioClose(log_);
    log_ = fresh;

    ++compactions_;
    compactionMetric().add();
    const uint64_t dropped = records - uint64_t(order.size());
    if (dropped > 0)
        compactDroppedMetric().add(dropped);
    disk_records_ = order.size();
    disk_keys_.clear();
    for (const Fingerprint &key : order)
        disk_keys_.insert(key);
    obs::logInfo("cache.compacted",
                 {{"path", log_path_},
                  {"records", (unsigned long long)records},
                  {"live", (unsigned long long)order.size()}});
    return true;
}

bool
Store::compactLog()
{
    std::lock_guard<std::mutex> lock(log_mutex_);
    if (!log_)
        return false;
    if (!acquireFileLock()) {
        ++lock_timeouts_;
        lockTimeoutMetric().add();
        return false;
    }
    const bool ok = compactLocked();
    releaseFileLock();
    return ok;
}

} // namespace qpad::cache

#include "cache/store.hh"

#include <algorithm>
#include <cstdint>
#include <filesystem>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace qpad::cache
{

namespace
{

// Process-wide cache metrics, aggregated over every Store instance
// (tests construct locals; production uses the one global store).
// Counters mirror the per-store StoreStats counters; the residency
// gauges move by delta on insert/evict/clear and a destructor
// returns a store's remaining residency, so the levels stay exact.
obs::Counter &
hitMetric()
{
    static obs::Counter &c = obs::counter("cache.hits");
    return c;
}

obs::Counter &
missMetric()
{
    static obs::Counter &c = obs::counter("cache.misses");
    return c;
}

obs::Counter &
insertMetric()
{
    static obs::Counter &c = obs::counter("cache.inserts");
    return c;
}

obs::Counter &
evictionMetric()
{
    static obs::Counter &c = obs::counter("cache.evictions");
    return c;
}

obs::Gauge &
bytesMetric()
{
    static obs::Gauge &g = obs::gauge("cache.bytes");
    return g;
}

obs::Gauge &
entriesMetric()
{
    static obs::Gauge &g = obs::gauge("cache.entries");
    return g;
}

obs::Counter &
dedupMetric()
{
    static obs::Counter &c = obs::counter("cache.dedup_waits");
    return c;
}

/** Log file name inside CacheOptions::dir. */
constexpr const char *kLogName = "qpad_cache.qpc";

/** 8-byte magic + format version; bump on any layout change. */
constexpr char kMagic[8] = {'Q', 'P', 'A', 'D', 'C', 'A', 'C', '1'};
constexpr uint32_t kFormatVersion = 1;

/** Upper bound on one record's payload (corruption tripwire). */
constexpr uint32_t kMaxRecordBytes = 1u << 28;

/**
 * Fixed per-entry accounting overhead (key, list/map nodes) added to
 * the payload size when charging the LRU budget.
 */
constexpr std::size_t kEntryOverhead = 96;

std::size_t
entryBytes(const std::vector<uint8_t> &value)
{
    return value.size() + kEntryOverhead;
}

/** Checksum over (key, length, payload); detects torn/flipped tails. */
uint64_t
recordChecksum(const Fingerprint &key, uint32_t len,
               const uint8_t *payload)
{
    Encoder enc;
    enc.u64(key.hi);
    enc.u64(key.lo);
    enc.u32(len);
    enc.raw(payload, len);
    return enc.digest().lo;
}

} // namespace

Store::Store(const CacheOptions &options)
    : options_(options),
      shards_(std::max<std::size_t>(options.shards, 1)),
      shard_budget_(std::max<std::size_t>(
          options.max_bytes / std::max<std::size_t>(options.shards, 1),
          1))
{
    if (!options_.dir.empty())
        openLog();
    if (disk_loaded_ > 0) {
        static obs::Counter &loaded = obs::counter("cache.disk_loaded");
        loaded.add(disk_loaded_);
    }
    if (disk_dropped_ > 0) {
        static obs::Counter &dropped =
            obs::counter("cache.disk_dropped");
        dropped.add(disk_dropped_);
    }
}

Store::~Store()
{
    // Return this store's remaining residency so the process-wide
    // gauges track only live entries.
    std::int64_t bytes = 0;
    std::int64_t entries = 0;
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        bytes += std::int64_t(shard.bytes);
        entries += std::int64_t(shard.lru.size());
    }
    bytesMetric().add(-bytes);
    entriesMetric().add(-entries);
    if (log_)
        std::fclose(log_);
}

Store::Shard &
Store::shardFor(const Fingerprint &key)
{
    return shards_[key.hi % shards_.size()];
}

bool
Store::get(const Fingerprint &key, std::vector<uint8_t> &value)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
        // qpad-lint: allow(atomic-relaxed) "monotonic stat counter;
        // never synchronizes data"
        misses_.fetch_add(1, std::memory_order_relaxed);
        missMetric().add();
        return false;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    value = it->second->value;
    // qpad-lint: allow(atomic-relaxed) "monotonic stat counter;
    // never synchronizes data"
    hits_.fetch_add(1, std::memory_order_relaxed);
    hitMetric().add();
    return true;
}

void
Store::putInMemory(const Fingerprint &key,
                   const std::vector<uint8_t> &value)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    // Gauge movement is accumulated locally and applied once: fewer
    // atomic RMWs, and the gauges see one consistent step per call.
    std::int64_t byte_delta = 0;
    std::int64_t entry_delta = 0;
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
        byte_delta -= std::int64_t(entryBytes(it->second->value));
        shard.bytes -= entryBytes(it->second->value);
        it->second->value = value;
        shard.bytes += entryBytes(value);
        byte_delta += std::int64_t(entryBytes(value));
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
        shard.lru.push_front(Entry{key, value});
        shard.map.emplace(key, shard.lru.begin());
        shard.bytes += entryBytes(value);
        byte_delta += std::int64_t(entryBytes(value));
        entry_delta += 1;
    }
    // Evict from the cold end while over budget; the entry just
    // touched is never evicted, so even an over-budget payload is
    // served back at least until the next insertion.
    uint64_t evicted = 0;
    while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
        const Entry &victim = shard.lru.back();
        byte_delta -= std::int64_t(entryBytes(victim.value));
        entry_delta -= 1;
        shard.bytes -= entryBytes(victim.value);
        shard.map.erase(victim.key);
        shard.lru.pop_back();
        // qpad-lint: allow(atomic-relaxed) "monotonic stat counter;
        // never synchronizes data"
        evictions_.fetch_add(1, std::memory_order_relaxed);
        ++evicted;
    }
    if (evicted > 0)
        evictionMetric().add(evicted);
    bytesMetric().add(byte_delta);
    entriesMetric().add(entry_delta);
}

void
Store::put(const Fingerprint &key, const std::vector<uint8_t> &value)
{
    putInMemory(key, value);
    // qpad-lint: allow(atomic-relaxed) "monotonic stat counter;
    // never synchronizes data"
    inserts_.fetch_add(1, std::memory_order_relaxed);
    insertMetric().add();
    appendRecord(key, value);
}

std::vector<uint8_t>
Store::getOrCompute(
    const Fingerprint &key,
    const std::function<std::vector<uint8_t>()> &compute,
    const exec::CancelToken *cancel)
{
    for (;;) {
        std::vector<uint8_t> value;
        if (get(key, value))
            return value;

        // Miss: claim ownership of the key's computation, or join an
        // existing one. The map lock covers only the claim — never
        // the compute or the wait.
        std::shared_ptr<InFlight> flight;
        bool owner = false;
        {
            std::lock_guard<std::mutex> lock(inflight_mutex_);
            auto it = inflight_.find(key);
            if (it == inflight_.end()) {
                flight = std::make_shared<InFlight>();
                inflight_.emplace(key, flight);
                owner = true;
            } else {
                flight = it->second;
            }
        }

        if (owner) {
            // The owner's path is get() + compute + put(): exactly
            // the counter trace of the classic read-through idiom,
            // so uncontended callers see identical stats.
            std::exception_ptr error;
            try {
                value = compute();
            } catch (...) {
                error = std::current_exception();
            }
            if (!error)
                put(key, value);
            // Erase BEFORE signalling done: on success a late
            // arrival now hits in get(); on failure it starts a
            // fresh computation instead of joining a dead one.
            {
                std::lock_guard<std::mutex> lock(inflight_mutex_);
                inflight_.erase(key);
            }
            {
                std::lock_guard<std::mutex> lock(flight->mutex);
                flight->done = true;
            }
            flight->cv.notify_all();
            if (error)
                std::rethrow_exception(error);
            return value;
        }

        // Waiter: block until the owner finishes, polling the
        // caller's OWN token — a cancelled waiter leaves without
        // touching the owner or the other waiters. On wakeup the
        // outer loop re-runs get(): a successful owner turns it into
        // a hit, a failed (or evicted) one promotes some waiter to
        // owner on the next claim.
        // qpad-lint: allow(atomic-relaxed) "monotonic stat counter;
        // never synchronizes data"
        dedup_waits_.fetch_add(1, std::memory_order_relaxed);
        dedupMetric().add();
        {
            std::unique_lock<std::mutex> lock(flight->mutex);
            while (!flight->done) {
                exec::throwIfStopped(cancel);
                flight->cv.wait_for(lock,
                                    std::chrono::milliseconds(10));
            }
        }
    }
}

void
Store::clear()
{
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        bytesMetric().add(-std::int64_t(shard.bytes));
        entriesMetric().add(-std::int64_t(shard.lru.size()));
        shard.lru.clear();
        shard.map.clear();
        shard.bytes = 0;
    }
}

StoreStats
Store::stats() const
{
    StoreStats s;
    // qpad-lint: allow(atomic-relaxed) "stat snapshot; approximate
    // reads are fine and no data is published through them"
    s.hits = hits_.load(std::memory_order_relaxed);
    // qpad-lint: allow(atomic-relaxed) "stat snapshot; approximate
    // reads are fine and no data is published through them"
    s.misses = misses_.load(std::memory_order_relaxed);
    // qpad-lint: allow(atomic-relaxed) "stat snapshot; approximate
    // reads are fine and no data is published through them"
    s.inserts = inserts_.load(std::memory_order_relaxed);
    // qpad-lint: allow(atomic-relaxed) "stat snapshot; approximate
    // reads are fine and no data is published through them"
    s.evictions = evictions_.load(std::memory_order_relaxed);
    // qpad-lint: allow(atomic-relaxed) "stat snapshot; approximate
    // reads are fine and no data is published through them"
    s.dedup_waits = dedup_waits_.load(std::memory_order_relaxed);
    s.disk_loaded = disk_loaded_;
    s.disk_dropped = disk_dropped_;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        s.bytes += shard.bytes;
        s.entries += shard.lru.size();
    }
    return s;
}

void
Store::openLog()
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(options_.dir, ec);
    if (ec) {
        qpad_warn("cache: cannot create directory '", options_.dir,
                  "' (", ec.message(), "); persistence disabled");
        return;
    }
    const std::string path =
        (fs::path(options_.dir) / kLogName).string();

    auto writeHeader = [&] {
        Encoder enc;
        enc.raw(reinterpret_cast<const uint8_t *>(kMagic), 8);
        enc.u32(kFormatVersion);
        enc.u32(0); // reserved
        std::fwrite(enc.bytes().data(), 1, enc.bytes().size(), log_);
        std::fflush(log_);
    };
    // Reopen truncated-to-empty and write a fresh header ("w+b"
    // truncates; portable, unlike ftruncate on an open descriptor).
    auto startFresh = [&] {
        std::fclose(log_);
        log_ = std::fopen(path.c_str(), "w+b");
        if (!log_) {
            qpad_warn("cache: cannot reset '", path,
                      "'; persistence disabled");
            return;
        }
        writeHeader();
    };

    log_ = std::fopen(path.c_str(), "r+b");
    const bool existed = log_ != nullptr;
    if (!existed)
        log_ = std::fopen(path.c_str(), "w+b");
    if (!log_) {
        qpad_warn("cache: cannot open '", path,
                  "'; persistence disabled");
        return;
    }
    if (!existed) {
        writeHeader();
        return;
    }

    uint8_t header[16];
    uint32_t version = 0;
    Decoder header_in(header + 8, 8);
    if (std::fread(header, 1, sizeof header, log_) != sizeof header ||
        !std::equal(kMagic, kMagic + 8, header) ||
        !header_in.u32(version) || version != kFormatVersion) {
        qpad_warn("cache: '", path,
                  "' has an unknown header; starting fresh");
        startFresh();
        return;
    }

    // Replay records until EOF or the first invalid one. A record
    // that fails mid-read or checksum is the torn tail of a crashed
    // append: truncate it away so the file is clean again.
    long good_end = std::ftell(log_);
    for (;;) {
        const long record_start = std::ftell(log_);
        uint8_t fixed[28]; // len u32 | hi u64 | lo u64 | checksum u64
        const std::size_t got =
            std::fread(fixed, 1, sizeof fixed, log_);
        if (got == 0)
            break; // clean EOF
        bool ok = got == sizeof fixed;
        uint32_t len = 0;
        Fingerprint key;
        uint64_t checksum = 0;
        std::vector<uint8_t> payload;
        if (ok) {
            Decoder in(fixed, sizeof fixed);
            ok = in.u32(len) && in.u64(key.hi) && in.u64(key.lo) &&
                 in.u64(checksum) && len <= kMaxRecordBytes;
        }
        if (ok) {
            payload.resize(len);
            ok = std::fread(payload.data(), 1, len, log_) == len &&
                 recordChecksum(key, len, payload.data()) == checksum;
        }
        if (!ok) {
            qpad_warn("cache: '", path, "' has a torn/corrupt record",
                      " at offset ", record_start,
                      "; truncating the tail");
            ++disk_dropped_;
            // Truncate through the filesystem (not ftruncate, which
            // is POSIX-only): close, resize, reopen at the end.
            std::fclose(log_);
            log_ = nullptr;
            std::error_code trunc_ec;
            fs::resize_file(path, std::uintmax_t(record_start),
                            trunc_ec);
            if (trunc_ec) {
                qpad_warn("cache: truncation of '", path,
                          "' failed (", trunc_ec.message(),
                          "); persistence disabled");
                return;
            }
            log_ = std::fopen(path.c_str(), "r+b");
            if (!log_) {
                qpad_warn("cache: cannot reopen '", path,
                          "'; persistence disabled");
                return;
            }
            std::fseek(log_, 0, SEEK_END);
            return;
        }
        putInMemory(key, payload);
        ++disk_loaded_;
        good_end = std::ftell(log_);
    }
    std::fseek(log_, good_end, SEEK_SET);
}

void
Store::appendRecord(const Fingerprint &key,
                    const std::vector<uint8_t> &value)
{
    // log_ is checked and used under the same lock: a concurrent
    // append failure may disable persistence at any time.
    std::lock_guard<std::mutex> lock(log_mutex_);
    if (!log_ || value.size() > kMaxRecordBytes)
        return;
    Encoder fixed;
    fixed.u32(uint32_t(value.size()));
    fixed.u64(key.hi);
    fixed.u64(key.lo);
    fixed.u64(recordChecksum(key, uint32_t(value.size()),
                             value.data()));
    if (std::fwrite(fixed.bytes().data(), 1, fixed.bytes().size(),
                    log_) != fixed.bytes().size() ||
        std::fwrite(value.data(), 1, value.size(), log_) !=
            value.size()) {
        qpad_warn("cache: append failed; persistence disabled");
        std::fclose(log_);
        log_ = nullptr;
        return;
    }
    std::fflush(log_);
}

} // namespace qpad::cache

/**
 * @file
 * Cooperative cancellation for request-scoped execution.
 *
 * A `CancelToken` carries two sticky stop signals — an explicit
 * cancel() and an absolute steady-clock deadline — that long-running
 * work polls at chunk boundaries. Cancellation is *cooperative*:
 * nothing is interrupted mid-chunk, so any run that completes is
 * bit-identical to an uncancelled run; a token only decides whether
 * a result exists, never its bytes.
 *
 * Deadlines are read through `exec::now()`, the one sanctioned
 * steady-clock helper (see `[wallclock]` in
 * `tools/qpad-lint/qpad_lint.toml`): qpad-lint's no-wallclock rule
 * stays meaningful because every other clock read in a compute path
 * is still a finding.
 *
 * This header is dependency-free on purpose (only the standard
 * library) so `runtime/parallel.hh` can hold a token pointer without
 * an include cycle; `exec/context.hh` layers the request-facing
 * `Context` on top.
 */

#ifndef QPAD_EXEC_CANCEL_HH
#define QPAD_EXEC_CANCEL_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace qpad::exec
{

/** Steady (monotonic) time point; never wall-clock time-of-day. */
using TimePoint = std::chrono::steady_clock::time_point;

/**
 * The sanctioned steady-clock read. Every deadline comparison goes
 * through this helper; a direct `steady_clock::now()` anywhere else
 * in a compute path is a no-wallclock lint finding.
 */
TimePoint now();

/** Why a token asked the work to stop. */
enum class StopReason : uint8_t
{
    kNone = 0,
    kCancelled = 1,
    kDeadlineExceeded = 2,
};

/** Human-readable reason for error messages. */
const char *stopReasonName(StopReason reason);

/**
 * Sticky cancellation + deadline state, shared by one request.
 *
 * Thread-safe: any thread may cancel() or set a deadline while the
 * workers poll stopReason(). Signals are sticky — once a token has
 * stopped it stays stopped (clearing the deadline cannot un-expire
 * a request that already observed the expiry, because observers act
 * on the value they read).
 */
class CancelToken
{
  public:
    CancelToken() = default;
    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Request a stop; sticky. */
    void cancel()
    {
        cancelled_.store(true, std::memory_order_seq_cst);
    }

    bool cancelRequested() const
    {
        return cancelled_.load(std::memory_order_seq_cst);
    }

    /** Arm an absolute deadline (replaces any earlier one). */
    void setDeadline(TimePoint deadline);

    /** Disarm the deadline (an explicit cancel stays sticky). */
    void clearDeadline()
    {
        deadline_ns_.store(kNoDeadline, std::memory_order_seq_cst);
    }

    bool hasDeadline() const
    {
        return deadline_ns_.load(std::memory_order_seq_cst) !=
               kNoDeadline;
    }

    /**
     * The current stop state: kCancelled wins over
     * kDeadlineExceeded, which is reported once `exec::now()` passes
     * the armed deadline.
     */
    StopReason stopReason() const;

  private:
    /** Sentinel for "no deadline armed". */
    static constexpr std::int64_t kNoDeadline = INT64_MAX;

    std::atomic<bool> cancelled_{false};
    /** Nanoseconds since the steady epoch, or kNoDeadline. */
    std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
};

/**
 * Thrown when cancelled work unwinds. Propagates through the
 * region's first-error-wins path like any other exception, so a
 * cancelled parallel region drains its deques and rethrows this at
 * the caller.
 */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(StopReason reason);

    StopReason reason() const { return reason_; }

  private:
    StopReason reason_;
};

/**
 * Publish a stop to the `exec.cancelled` / `exec.deadline_exceeded`
 * counters. Called where a stop *wins* (first-error capture, or the
 * throw site), not on every poll, so the counters approximate
 * stopped requests rather than poll frequency.
 */
void noteStopped(StopReason reason);

/** noteStopped + throw CancelledError(reason). */
[[noreturn]] void raiseStopped(StopReason reason);

/**
 * Poll `token` (null = unlimited; no-op) and raise if it stopped.
 * This is the one-liner that sequential loops and chunk bodies call
 * at their boundaries.
 */
inline void
throwIfStopped(const CancelToken *token)
{
    if (token == nullptr)
        return;
    const StopReason reason = token->stopReason();
    if (reason != StopReason::kNone)
        raiseStopped(reason);
}

} // namespace qpad::exec

#endif // QPAD_EXEC_CANCEL_HH

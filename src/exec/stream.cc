#include "exec/stream.hh"

#include "obs/metrics.hh"

namespace qpad::exec::detail
{

void
noteStreamEmit()
{
    static obs::Counter &emits = obs::counter("exec.stream_emits");
    emits.add();
}

} // namespace qpad::exec::detail

#include "exec/cancel.hh"

#include <string>

#include "obs/metrics.hh"

namespace qpad::exec
{

namespace
{

/** Nanoseconds since the steady epoch for deadline arithmetic. */
std::int64_t
toNs(TimePoint t)
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               t.time_since_epoch())
        .count();
}

} // namespace

TimePoint
now()
{
    // The sanctioned steady-clock read: allowlisted as
    // "cancel.cc:now" under [wallclock] in qpad_lint.toml. Deadlines
    // decide only *whether* a result exists — a run that completes
    // is bit-identical regardless of when this was read.
    return std::chrono::steady_clock::now();
}

const char *
stopReasonName(StopReason reason)
{
    switch (reason) {
    case StopReason::kCancelled:
        return "cancelled";
    case StopReason::kDeadlineExceeded:
        return "deadline exceeded";
    case StopReason::kNone:
        break;
    }
    return "none";
}

void
CancelToken::setDeadline(TimePoint deadline)
{
    deadline_ns_.store(toNs(deadline), std::memory_order_seq_cst);
}

StopReason
CancelToken::stopReason() const
{
    if (cancelled_.load(std::memory_order_seq_cst))
        return StopReason::kCancelled;
    const std::int64_t armed =
        deadline_ns_.load(std::memory_order_seq_cst);
    if (armed != kNoDeadline && toNs(now()) >= armed)
        return StopReason::kDeadlineExceeded;
    return StopReason::kNone;
}

CancelledError::CancelledError(StopReason reason)
    : std::runtime_error(std::string("exec: request ") +
                         stopReasonName(reason)),
      reason_(reason)
{
}

void
noteStopped(StopReason reason)
{
    if (reason == StopReason::kCancelled) {
        static obs::Counter &c = obs::counter("exec.cancelled");
        c.add();
    } else if (reason == StopReason::kDeadlineExceeded) {
        static obs::Counter &c =
            obs::counter("exec.deadline_exceeded");
        c.add();
    }
}

void
raiseStopped(StopReason reason)
{
    noteStopped(reason);
    throw CancelledError(reason);
}

} // namespace qpad::exec

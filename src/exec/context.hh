/**
 * @file
 * Request-scoped execution context.
 *
 * A `Context` bundles what one request carries through every layer
 * of the system: a shared cancellation token (explicit cancel + an
 * absolute steady-clock deadline, see exec/cancel.hh), the
 * `runtime::Options` thread budget, and an observability scope
 * (`RequestScope`). The compute entry points — `estimateYield`,
 * `allocateFrequencies`, `annealLayout`, `designArchitecture`,
 * `eval::measure` / `runBenchmark`, and the cached front ends — all
 * take a trailing `const Context&` defaulting to `Context::none()`,
 * so existing call sites keep compiling and pay nothing.
 *
 * Determinism contract: a context decides only *whether* a result
 * exists, never its bytes. Any run that completes under a context is
 * bit-identical to the no-context run at every thread count;
 * cancellation unwinds as `exec::CancelledError` instead.
 */

#ifndef QPAD_EXEC_CONTEXT_HH
#define QPAD_EXEC_CONTEXT_HH

#include <chrono>
#include <memory>
#include <string>

#include "exec/cancel.hh"
#include "obs/log.hh"
#include "obs/request_report.hh"
#include "runtime/parallel.hh"

namespace qpad::exec
{

namespace detail
{

/** Allocate the next process-unique request id (1-based). */
uint64_t nextRequestId();

} // namespace detail

/** Copyable handle to one request's shared cancellation state. */
class Context
{
  public:
    /** A fresh, independent context: no deadline, not cancelled,
     * with a new process-unique request id. */
    Context()
        : state_(std::make_shared<CancelToken>()),
          id_(detail::nextRequestId())
    {
    }

    /**
     * The shared no-limit context used as the default argument of
     * every ctx-threaded entry point. Its token is never cancelled
     * and carries no deadline, so polling it is always a no-op.
     */
    static const Context &none();

    /**
     * Stable 64-bit request id: 1-based and unique within the
     * process; copies of a context share it. Context::none() is id 0
     * — "no request" — so its work is never tagged. Spans, log
     * events, and flight-recorder entries recorded while this
     * request's work runs carry the id (see RequestScope and
     * runtime::Options::request_id).
     */
    uint64_t id() const { return id_; }

    /**
     * Thread budget (and stats sink) this request runs under;
     * merged into callee options via apply().
     */
    runtime::Options options;

    /** The underlying token (never null); what Options::cancel
     * points at after apply(). */
    CancelToken *token() const { return state_.get(); }

    /** Request a stop; sticky, visible to every copy. */
    void cancel() const { state_->cancel(); }

    bool cancelRequested() const { return state_->cancelRequested(); }

    /** Arm an absolute deadline on the shared token. */
    void setDeadline(TimePoint deadline) const
    {
        state_->setDeadline(deadline);
    }

    /** Convenience: deadline = exec::now() + budget. */
    void setDeadlineAfter(std::chrono::nanoseconds budget) const
    {
        state_->setDeadline(now() + budget);
    }

    StopReason stopReason() const { return state_->stopReason(); }

    /** Raise CancelledError if this context has stopped. */
    void throwIfStopped() const
    {
        exec::throwIfStopped(state_.get());
    }

    /**
     * Attach this context's token (and request id) to a callee's
     * runtime options. An already-attached token (a nested call that
     * was handed explicit options) is left alone — innermost wins —
     * and so is an already-stamped request id.
     */
    runtime::Options apply(runtime::Options base) const
    {
        if (base.cancel == nullptr)
            base.cancel = state_.get();
        if (base.request_id == 0)
            base.request_id = id_;
        return base;
    }

  private:
    struct NoneTag
    {
    };

    /** Context::none() only: the shared no-limit context, id 0. */
    explicit Context(NoneTag)
        : state_(std::make_shared<CancelToken>()), id_(0)
    {
    }

    std::shared_ptr<CancelToken> state_;
    uint64_t id_;
};

/**
 * RAII observability scope for one request. On entry it counts
 * `exec.requests`, snapshots the metrics registry, and tags the
 * calling thread with the context's request id (worker threads pick
 * the id up per region via Options::request_id). On exit — or an
 * explicit finish() — it observes the wall time into the
 * `exec.request_seconds` histogram (via exec::now(), the sanctioned
 * clock) and produces an obs::RequestReport: id, name, latency,
 * StopReason, and the name-sorted metric deltas attributed to the
 * request; the report is appended to the QPAD_REQUEST_REPORT
 * destination when that is set, and a stopped request additionally
 * emits an `exec.request_stopped` warn event. Purely observational —
 * it never feeds back.
 */
class RequestScope
{
  public:
    /** Legacy form: scope over the shared no-limit context. */
    RequestScope() : RequestScope(Context::none()) {}

    explicit RequestScope(const Context &ctx,
                          std::string name = "request");
    ~RequestScope();

    /**
     * Close the scope now and return its report (id, name, wall
     * latency, stop reason, metric deltas). Callable once; the
     * destructor finishes implicitly — exporting but discarding the
     * report — when it was never called.
     */
    obs::RequestReport finish();

    uint64_t id() const { return ctx_.id(); }

    RequestScope(const RequestScope &) = delete;
    RequestScope &operator=(const RequestScope &) = delete;

  private:
    Context ctx_;
    std::string name_;
    TimePoint start_;
    obs::Snapshot before_;
    obs::ScopedRequestId rid_scope_;
    bool finished_ = false;
};

} // namespace qpad::exec

#endif // QPAD_EXEC_CONTEXT_HH

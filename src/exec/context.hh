/**
 * @file
 * Request-scoped execution context.
 *
 * A `Context` bundles what one request carries through every layer
 * of the system: a shared cancellation token (explicit cancel + an
 * absolute steady-clock deadline, see exec/cancel.hh), the
 * `runtime::Options` thread budget, and an observability scope
 * (`RequestScope`). The compute entry points — `estimateYield`,
 * `allocateFrequencies`, `annealLayout`, `designArchitecture`,
 * `eval::measure` / `runBenchmark`, and the cached front ends — all
 * take a trailing `const Context&` defaulting to `Context::none()`,
 * so existing call sites keep compiling and pay nothing.
 *
 * Determinism contract: a context decides only *whether* a result
 * exists, never its bytes. Any run that completes under a context is
 * bit-identical to the no-context run at every thread count;
 * cancellation unwinds as `exec::CancelledError` instead.
 */

#ifndef QPAD_EXEC_CONTEXT_HH
#define QPAD_EXEC_CONTEXT_HH

#include <chrono>
#include <memory>

#include "exec/cancel.hh"
#include "runtime/parallel.hh"

namespace qpad::exec
{

/** Copyable handle to one request's shared cancellation state. */
class Context
{
  public:
    /** A fresh, independent context: no deadline, not cancelled. */
    Context() : state_(std::make_shared<CancelToken>()) {}

    /**
     * The shared no-limit context used as the default argument of
     * every ctx-threaded entry point. Its token is never cancelled
     * and carries no deadline, so polling it is always a no-op.
     */
    static const Context &none();

    /**
     * Thread budget (and stats sink) this request runs under;
     * merged into callee options via apply().
     */
    runtime::Options options;

    /** The underlying token (never null); what Options::cancel
     * points at after apply(). */
    CancelToken *token() const { return state_.get(); }

    /** Request a stop; sticky, visible to every copy. */
    void cancel() const { state_->cancel(); }

    bool cancelRequested() const { return state_->cancelRequested(); }

    /** Arm an absolute deadline on the shared token. */
    void setDeadline(TimePoint deadline) const
    {
        state_->setDeadline(deadline);
    }

    /** Convenience: deadline = exec::now() + budget. */
    void setDeadlineAfter(std::chrono::nanoseconds budget) const
    {
        state_->setDeadline(now() + budget);
    }

    StopReason stopReason() const { return state_->stopReason(); }

    /** Raise CancelledError if this context has stopped. */
    void throwIfStopped() const
    {
        exec::throwIfStopped(state_.get());
    }

    /**
     * Attach this context's token to a callee's runtime options.
     * An already-attached token (a nested call that was handed
     * explicit options) is left alone — innermost wins.
     */
    runtime::Options apply(runtime::Options base) const
    {
        if (base.cancel == nullptr)
            base.cancel = state_.get();
        return base;
    }

  private:
    std::shared_ptr<CancelToken> state_;
};

/**
 * RAII observability scope for one request: counts
 * `exec.requests` on entry and observes the wall time into the
 * `exec.request_seconds` histogram on exit (via exec::now(), the
 * sanctioned clock). Purely observational — it never feeds back.
 */
class RequestScope
{
  public:
    RequestScope();
    ~RequestScope();

    RequestScope(const RequestScope &) = delete;
    RequestScope &operator=(const RequestScope &) = delete;

  private:
    TimePoint start_;
};

} // namespace qpad::exec

#endif // QPAD_EXEC_CONTEXT_HH

#include "exec/context.hh"

#include <atomic>

#include "obs/metrics.hh"

namespace qpad::exec
{

namespace detail
{

uint64_t
nextRequestId()
{
    // 1-based: id 0 is reserved for Context::none() ("no request").
    static std::atomic<uint64_t> next{1};
    // qpad-lint: allow(atomic-relaxed) "uniqueness needs only the
    // RMW's atomicity; ids never order anything"
    return next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace detail

const Context &
Context::none()
{
    // Leaked Meyers singleton (same pattern as the obs registry):
    // default arguments bind references to it from any thread at any
    // point of process teardown, so it must never be destroyed.
    static const Context &ctx = *new Context(NoneTag{});
    return ctx;
}

RequestScope::RequestScope(const Context &ctx, std::string name)
    : ctx_(ctx), name_(std::move(name)), start_(now()),
      before_(obs::snapshot()), rid_scope_(ctx_.id())
{
    static obs::Counter &requests = obs::counter("exec.requests");
    requests.add();
}

obs::RequestReport
RequestScope::finish()
{
    finished_ = true;
    static obs::Histogram &seconds =
        obs::histogram("exec.request_seconds");
    obs::RequestReport report;
    report.id = ctx_.id();
    report.name = name_;
    report.wall_seconds =
        std::chrono::duration<double>(now() - start_).count();
    report.stop = ctx_.stopReason();
    seconds.observe(report.wall_seconds);
    // Attribute to the request only the series that moved while the
    // scope was open (idle counters and foreign gauges would bury
    // the signal; deltaSince already name-sorts).
    for (obs::Sample &s : obs::deltaSince(before_)) {
        const bool moved =
            s.kind == obs::Sample::Kind::Histogram
                ? s.count != 0
                : s.value != 0.0;
        if (moved)
            report.metrics.push_back(std::move(s));
    }
    if (report.stop != StopReason::kNone)
        obs::logWarn("exec.request_stopped",
                     {{"reason", stopReasonName(report.stop)},
                      {"wall_seconds", report.wall_seconds}});
    obs::exportRequestReport(report);
    return report;
}

RequestScope::~RequestScope()
{
    if (finished_)
        return;
    try {
        finish();
    } catch (...) {
        // Reporting must never tear down an unwinding caller.
    }
}

} // namespace qpad::exec

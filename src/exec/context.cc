#include "exec/context.hh"

#include "obs/metrics.hh"

namespace qpad::exec
{

const Context &
Context::none()
{
    // Leaked Meyers singleton (same pattern as the obs registry):
    // default arguments bind references to it from any thread at any
    // point of process teardown, so it must never be destroyed.
    static const Context &ctx = *new Context();
    return ctx;
}

RequestScope::RequestScope() : start_(now())
{
    static obs::Counter &requests = obs::counter("exec.requests");
    requests.add();
}

RequestScope::~RequestScope()
{
    static obs::Histogram &seconds =
        obs::histogram("exec.request_seconds");
    seconds.observe(
        std::chrono::duration<double>(now() - start_).count());
}

} // namespace qpad::exec

/**
 * @file
 * Order-tagged streaming result sink.
 *
 * A `Sink<T>` wraps a user callback `(index, item)` that producers
 * fire as results complete — e.g. `eval::runBenchmark` emits each
 * `DataPoint` the moment its guided chunk finishes, so report
 * generation (or a daemon's response stream) overlaps the sweep.
 *
 * Contract:
 *   - *Order tags, not order*: items arrive in completion order,
 *     which is scheduler-dependent; `index` is the item's position
 *     in the final result, so a consumer can reassemble the
 *     deterministic sequence. The set of (index, item) pairs emitted
 *     by a completed run is bit-identical to the blocking result at
 *     every thread count.
 *   - *Serialized*: emits are delivered under an internal mutex, one
 *     at a time, from whichever worker finished the item. The
 *     callback needs no locking of its own but must not block for
 *     long (it stalls that worker) and must not re-enter the
 *     producer.
 *   - A default-constructed Sink is disabled: `emit` is a no-op and
 *     `operator bool` is false, so producers can thread one through
 *     unconditionally.
 *
 * Copies share state: the emitted() count and the serialization
 * mutex travel with the sink, so options structs can be copied
 * freely (as the experiment harness does per job).
 */

#ifndef QPAD_EXEC_STREAM_HH
#define QPAD_EXEC_STREAM_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>

namespace qpad::exec
{

namespace detail
{

/** Shared, non-template part of a Sink. */
struct SinkState
{
    std::mutex mutex;
    std::size_t emitted = 0;
};

/** Count one delivery in the exec.stream_emits metric. */
void noteStreamEmit();

} // namespace detail

template <typename T>
class Sink
{
  public:
    /** (index, item): index = the item's slot in the final result. */
    using Callback = std::function<void(std::size_t, const T &)>;

    /** Disabled sink; emit() is a no-op. */
    Sink() = default;

    explicit Sink(Callback callback)
        : state_(std::make_shared<detail::SinkState>()),
          callback_(
              std::make_shared<Callback>(std::move(callback)))
    {
    }

    /** True when a callback is attached. */
    explicit operator bool() const { return callback_ != nullptr; }

    /**
     * Deliver one completed item. Serialized across threads; safe to
     * call from any worker. No-op on a disabled sink.
     */
    void emit(std::size_t index, const T &item) const
    {
        if (!callback_)
            return;
        std::lock_guard<std::mutex> lock(state_->mutex);
        (*callback_)(index, item);
        ++state_->emitted;
        detail::noteStreamEmit();
    }

    /** Deliveries so far (0 for a disabled sink). */
    std::size_t emitted() const
    {
        if (!state_)
            return 0;
        std::lock_guard<std::mutex> lock(state_->mutex);
        return state_->emitted;
    }

  private:
    std::shared_ptr<detail::SinkState> state_;
    std::shared_ptr<Callback> callback_;
};

} // namespace qpad::exec

#endif // QPAD_EXEC_STREAM_HH

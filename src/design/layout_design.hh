/**
 * @file
 * Coupling-based qubit placement on a 2-D lattice
 * (paper Algorithm 1, Section 4.1).
 *
 * Qubits are placed in coupling-degree order; each new qubit goes to
 * the empty lattice node (adjacent to the occupied region) that
 * minimizes sum over its already-placed logical neighbours q' of
 *   strength(q, q') * manhattan(node, location(q')).
 */

#ifndef QPAD_DESIGN_LAYOUT_DESIGN_HH
#define QPAD_DESIGN_LAYOUT_DESIGN_HH

#include "arch/layout.hh"
#include "profile/coupling.hh"

namespace qpad::design
{

/** Placement outcome. */
struct LayoutResult
{
    /**
     * The generated placement; physical qubit id i hosts logical
     * qubit i (the paper's "pseudo mapping" is the identity).
     */
    arch::Layout layout;

    /** Coordinate chosen for each logical qubit. */
    std::vector<arch::Coord> coord_of_logical;

    /**
     * Heuristic cost of the final placement: sum over logical edges
     * of strength * manhattan distance (lower = better locality).
     */
    uint64_t placement_cost = 0;
};

/** Run Algorithm 1 on a profile. */
LayoutResult designLayout(const profile::CouplingProfile &profile);

/** The cost functional above for an arbitrary placement. */
uint64_t placementCost(const profile::CouplingProfile &profile,
                       const std::vector<arch::Coord> &coords);

} // namespace qpad::design

#endif // QPAD_DESIGN_LAYOUT_DESIGN_HH

/**
 * @file
 * End-to-end application-specific architecture design flow
 * (paper Figure 1): profiling -> layout design -> bus selection ->
 * frequency allocation.
 *
 * The bus and frequency subroutines are pluggable so the paper's
 * five experiment configurations (ibm, eff-full, eff-5-freq,
 * eff-rd-bus, eff-layout-only) can all be expressed through one
 * entry point.
 */

#ifndef QPAD_DESIGN_DESIGN_FLOW_HH
#define QPAD_DESIGN_DESIGN_FLOW_HH

#include <cstdint>
#include <string>

#include "arch/architecture.hh"
#include "design/bus_selection.hh"
#include "design/freq_alloc.hh"
#include "design/layout_design.hh"
#include "exec/context.hh"
#include "profile/coupling.hh"

namespace qpad::design
{

/** How 4-qubit buses are chosen. */
enum class BusScheme
{
    Weighted, ///< Algorithm 2 (filtered cross-coupling weight)
    Random,   ///< eff-rd-bus: random, prohibited condition honoured
    None,     ///< 2-qubit buses only
    Max,      ///< as many 4-qubit buses as physically possible
};

/** How frequencies are assigned. */
enum class FreqScheme
{
    Optimized,     ///< Algorithm 3 (centre-out local-yield search)
    FiveFrequency, ///< IBM's regular 5-frequency tiling
};

/** Flow configuration. */
struct DesignFlowOptions
{
    BusScheme bus_scheme = BusScheme::Weighted;
    /** Maximum number of 4-qubit buses (the paper's K). */
    std::size_t max_buses = SIZE_MAX;
    FreqScheme freq_scheme = FreqScheme::Optimized;
    FreqAllocOptions freq_options = {};
    /** Seed for BusScheme::Random. */
    uint64_t bus_seed = 99;
};

/** Everything the flow produced, for inspection and reporting. */
struct DesignOutcome
{
    arch::Architecture architecture;
    LayoutResult layout;
    BusSelectionResult buses;
    FreqAllocResult freq; ///< empty when FiveFrequency was used
};

/**
 * Run the flow on a profiled program and return a complete
 * architecture (layout + buses + frequencies). A cancelled or
 * deadline-expired `ctx` raises exec::CancelledError from the
 * frequency-allocation stage (the flow's dominant cost); a completed
 * flow is bit-identical to one run without a context.
 */
DesignOutcome
designArchitecture(const profile::CouplingProfile &profile,
                   const DesignFlowOptions &options = {},
                   const std::string &name = "eff",
                   const exec::Context &ctx = exec::Context::none());

} // namespace qpad::design

#endif // QPAD_DESIGN_DESIGN_FLOW_HH

#include "design/layout_design.hh"

#include <algorithm>
#include <limits>
#include <set>
#include <unordered_set>

#include "common/logging.hh"

namespace qpad::design
{

using arch::Coord;
using arch::CoordHash;
using circuit::Qubit;

uint64_t
placementCost(const profile::CouplingProfile &profile,
              const std::vector<Coord> &coords)
{
    qpad_assert(coords.size() == profile.num_qubits,
                "placement size mismatch");
    uint64_t cost = 0;
    for (auto [i, j] : profile.edges())
        cost += uint64_t(profile.strength(i, j)) *
                uint64_t(Coord::manhattan(coords[i], coords[j]));
    return cost;
}

LayoutResult
designLayout(const profile::CouplingProfile &profile)
{
    const std::size_t n = profile.num_qubits;
    qpad_assert(n >= 1, "cannot place zero qubits");

    std::vector<Coord> coord_of(n);
    std::vector<bool> placed(n, false);

    std::unordered_set<Coord, CoordHash> occupied;
    // Empty nodes adjacent to at least one occupied node, kept
    // ordered for deterministic tie-breaking.
    std::set<Coord> frontier;

    auto occupy = [&](Qubit q, const Coord &c) {
        coord_of[q] = c;
        placed[q] = true;
        occupied.insert(c);
        frontier.erase(c);
        for (const Coord &nb : lattice4(c))
            if (!occupied.count(nb))
                frontier.insert(nb);
    };

    // Step 1: the highest-degree qubit anchors the lattice at (0,0).
    occupy(profile.degree_list.front(), {0, 0});

    // degree_list is already sorted descending, so scanning it gives
    // the highest-degree candidate.
    auto next_candidate = [&]() -> Qubit {
        for (Qubit q : profile.degree_list) {
            if (placed[q])
                continue;
            for (std::size_t other = 0; other < n; ++other) {
                if (placed[other] &&
                    profile.strength(q, other) > 0)
                    return q;
            }
        }
        // Disconnected component (or isolated qubits): fall back to
        // the highest-degree unplaced qubit so placement terminates.
        for (Qubit q : profile.degree_list)
            if (!placed[q])
                return q;
        qpad_panic("no candidate qubit left");
    };

    for (std::size_t step = 1; step < n; ++step) {
        Qubit q = next_candidate();

        // Evaluate every frontier node with the heuristic cost
        // function (line 13 of Algorithm 1).
        uint64_t best_cost = std::numeric_limits<uint64_t>::max();
        Coord best{};
        bool found = false;
        for (const Coord &node : frontier) {
            uint64_t cost = 0;
            for (std::size_t other = 0; other < n; ++other) {
                if (!placed[other])
                    continue;
                uint32_t w = profile.strength(q, other);
                if (w == 0)
                    continue;
                cost += uint64_t(w) *
                        uint64_t(Coord::manhattan(node,
                                                  coord_of[other]));
            }
            // std::set iteration is row-major, so strict < keeps the
            // first (deterministic) minimum.
            if (!found || cost < best_cost) {
                best_cost = cost;
                best = node;
                found = true;
            }
        }
        qpad_assert(found, "empty frontier with qubits remaining");
        occupy(q, best);
    }

    LayoutResult result;
    result.coord_of_logical = coord_of;
    // Normalize so the bounding box starts at (0,0), then build the
    // Layout in logical order: physical id == logical id.
    int r0 = coord_of[0].row, c0 = coord_of[0].col;
    for (const Coord &c : coord_of) {
        r0 = std::min(r0, c.row);
        c0 = std::min(c0, c.col);
    }
    for (auto &c : result.coord_of_logical) {
        c.row -= r0;
        c.col -= c0;
    }
    for (std::size_t q = 0; q < n; ++q)
        result.layout.addQubit(result.coord_of_logical[q]);
    result.placement_cost =
        placementCost(profile, result.coord_of_logical);
    return result;
}

} // namespace qpad::design

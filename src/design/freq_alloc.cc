#include "design/freq_alloc.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <queue>

#include "common/logging.hh"
#include "common/rng.hh"
#include "yield/collision_batch.hh"

namespace qpad::design
{

using arch::Architecture;
using arch::DeviceConstants;
using arch::Layout;
using arch::PhysQubit;
using yield::CollisionChecker;

PhysQubit
centerQubit(const Layout &layout)
{
    qpad_assert(layout.numQubits() > 0, "empty layout");
    double mean_row = 0.0, mean_col = 0.0;
    for (const auto &c : layout.coords()) {
        mean_row += c.row;
        mean_col += c.col;
    }
    mean_row /= double(layout.numQubits());
    mean_col /= double(layout.numQubits());

    PhysQubit best = 0;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (PhysQubit q = 0; q < layout.numQubits(); ++q) {
        const auto &c = layout.coord(q);
        double dr = c.row - mean_row;
        double dc = c.col - mean_col;
        double d2 = dr * dr + dc * dc;
        if (d2 < best_d2) {
            best_d2 = d2;
            best = q;
        }
    }
    return best;
}

namespace
{

/** Collision terms whose value depends on f(q), among assigned. */
struct LocalTerms
{
    std::vector<CollisionChecker::PairTerm> pairs;
    std::vector<CollisionChecker::TripleTerm> triples;
    std::vector<PhysQubit> involved; // q itself plus its term partners
};

LocalTerms
buildLocalTerms(const Architecture &arch, PhysQubit q,
                const std::vector<bool> &assigned)
{
    LocalTerms terms;
    const auto &adj = arch.adjacency();
    std::vector<bool> involved_mask(arch.numQubits(), false);
    auto involve = [&](PhysQubit x) {
        if (!involved_mask[x]) {
            involved_mask[x] = true;
            terms.involved.push_back(x);
        }
    };
    involve(q);

    // Conditions 1-4: edges incident to q.
    for (PhysQubit nb : adj[q]) {
        if (!assigned[nb])
            continue;
        terms.pairs.push_back({q, nb});
        involve(nb);
    }
    // Conditions 5-7 with q as the shared neighbour j.
    for (std::size_t x = 0; x < adj[q].size(); ++x) {
        for (std::size_t y = x + 1; y < adj[q].size(); ++y) {
            PhysQubit k = adj[q][x], i = adj[q][y];
            if (!assigned[k] || !assigned[i])
                continue;
            terms.triples.push_back({q, k, i});
            involve(k);
            involve(i);
        }
    }
    // Conditions 5-7 with q as one of the outer qubits: the shared
    // neighbour j is any neighbour of q, the other outer qubit any
    // other neighbour of j.
    for (PhysQubit j : adj[q]) {
        if (!assigned[j])
            continue;
        for (PhysQubit other : adj[j]) {
            if (other == q || !assigned[other])
                continue;
            terms.triples.push_back({j, std::min(q, other),
                                     std::max(q, other)});
            involve(j);
            involve(other);
        }
    }
    return terms;
}

} // namespace

FreqAllocResult
allocateFrequencies(const Architecture &arch,
                    const FreqAllocOptions &options,
                    const exec::Context &ctx)
{
    const std::size_t n = arch.numQubits();
    qpad_assert(n > 0, "cannot allocate frequencies on an empty chip");

    // Effective execution options: the context's token rides along
    // into the candidate-scan regions, and the BFS/refine loops poll
    // it between qubit visits below.
    const runtime::Options run_exec = ctx.apply(options.exec);

    // Candidate grid 5.00, 5.01, ..., 5.34 GHz.
    std::vector<double> candidates;
    for (double f = DeviceConstants::freq_min_ghz;
         f <= DeviceConstants::freq_max_ghz + 1e-9;
         f += options.grid_step_ghz)
        candidates.push_back(f);

    FreqAllocResult result;
    result.freqs.assign(n, 0.0);
    std::vector<bool> assigned(n, false);

    const PhysQubit center = centerQubit(arch.layout());
    const double mid = 0.5 * (DeviceConstants::freq_min_ghz +
                              DeviceConstants::freq_max_ghz);
    result.freqs[center] = mid;
    assigned[center] = true;
    result.order.push_back(center);
    result.local_scores.push_back(1.0);

    Rng rng(options.seed);

    // Breadth-first traversal of the coupling graph from the centre;
    // disconnected leftovers (possible on degenerate layouts) are
    // seeded from their own centre-most unvisited qubit.
    std::queue<PhysQubit> fifo;
    std::vector<bool> enqueued(n, false);
    fifo.push(center);
    enqueued[center] = true;

    // Evaluate every candidate frequency for q against the collision
    // terms it participates in (among assigned qubits) and return the
    // best (frequency, local yield) pair.
    auto optimize = [&](PhysQubit q) -> std::pair<double, double> {
        // Zero trials give no evidence to rank candidates (and would
        // make every score 0/0 = NaN, breaking the argmax): keep the
        // band middle with the same zero score the yield simulators
        // report for zero-trial runs.
        if (options.local_trials == 0)
            return {mid, 0.0};
        LocalTerms terms = buildLocalTerms(arch, q, assigned);
        const std::size_t n_inv = terms.involved.size();

        // Translate terms into local indices once.
        std::vector<std::size_t> index_of(n, SIZE_MAX);
        for (std::size_t idx = 0; idx < n_inv; ++idx)
            index_of[terms.involved[idx]] = idx;
        const std::size_t qi = index_of[q];

        // Terms re-indexed into the local involved set; the same
        // lists drive the scalar oracle and the batched kernel.
        std::vector<CollisionChecker::PairTerm> pairs;
        pairs.reserve(terms.pairs.size());
        for (const auto &p : terms.pairs)
            pairs.push_back({PhysQubit(index_of[p.a]),
                             PhysQubit(index_of[p.b])});
        std::vector<CollisionChecker::TripleTerm> triples;
        triples.reserve(terms.triples.size());
        for (const auto &t : terms.triples)
            triples.push_back({PhysQubit(index_of[t.j]),
                               PhysQubit(index_of[t.k]),
                               PhysQubit(index_of[t.i])});

        // Common random numbers: one post-fabrication frequency table
        // shared by all candidates (only q's own entry varies), so the
        // argmax is not washed out by sampling variance. The table is
        // generated ahead of the scan from the allocator's single RNG
        // stream; candidate evaluation below only reads it, which is
        // what makes the candidate scan safely parallel.
        const std::size_t trials = options.local_trials;
        std::vector<double> post(trials * n_inv);
        std::vector<double> q_noise(trials);
        if (resolveRngScheme(options.rng_scheme) == RngScheme::kV2) {
            // v2 lane order: one rng.next() seeds a lane sampler;
            // trial t of each 8-trial block is lane t % 8, reading
            // its involved-qubit deviates and then its candidate
            // noise. The trailing block discards the unused lanes —
            // they are independent streams, so the kept draws are
            // the same for every `trials` remainder.
            constexpr std::size_t B = GaussianBlockSampler::kLanes;
            GaussianBlockSampler sampler(rng.next());
            std::vector<double> means(n_inv + 1);
            for (std::size_t idx = 0; idx < n_inv; ++idx)
                means[idx] = result.freqs[terms.involved[idx]];
            means[n_inv] = 0.0; // the q_noise row is pure noise
            std::vector<double> z((n_inv + 1) * B);
            for (std::size_t t0 = 0; t0 < trials; t0 += B) {
                const std::size_t active = std::min(B, trials - t0);
                sampler.fillAffine(z.data(), means.data(),
                                   options.sigma_ghz, n_inv + 1);
                for (std::size_t l = 0; l < active; ++l) {
                    double *row = &post[(t0 + l) * n_inv];
                    for (std::size_t idx = 0; idx < n_inv; ++idx)
                        row[idx] = z[idx * B + l];
                    q_noise[t0 + l] = z[n_inv * B + l];
                }
            }
        } else {
            for (std::size_t t = 0; t < trials; ++t) {
                double *row = &post[t * n_inv];
                for (std::size_t idx = 0; idx < n_inv; ++idx)
                    row[idx] = result.freqs[terms.involved[idx]] +
                               rng.gaussian(0.0, options.sigma_ghz);
                q_noise[t] = rng.gaussian(0.0, options.sigma_ghz);
            }
        }

        // Batched evaluation transposes the CRN table once into
        // qubit-major lane blocks; per candidate only q's lanes are
        // overwritten on a scratch copy, and the kernel sees exactly
        // the values the scalar oracle reads through at(), so the
        // scores — and the committed argmax — are identical.
        constexpr std::size_t B = yield::BatchCollisionChecker::kLanes;
        const bool batched = yield::useBatchedKernel();
        const std::size_t n_blocks = (trials + B - 1) / B;
        const std::size_t block_doubles = n_inv * B;
        yield::BatchCollisionChecker batch;
        std::vector<double> blocks;
        if (batched) {
            batch = yield::BatchCollisionChecker(pairs, triples,
                                                 options.model);
            blocks.assign(n_blocks * block_doubles, 0.0);
            for (std::size_t t = 0; t < trials; ++t)
                for (std::size_t idx = 0; idx < n_inv; ++idx)
                    blocks[yield::BatchCollisionChecker::soaIndex(
                        t, idx, n_inv)] = post[t * n_inv + idx];
        }

        // Every term involves q by construction; index qi is
        // substituted with the candidate value at read time (scalar)
        // or written into the scratch block's lanes (batched)
        // instead of being stored in the shared table.
        // One fixed chunk per worker: the batched branch streams the
        // CRN block table once per chunk, so finer chunks — and in
        // particular guided sizing (grain 0), whose tail degenerates
        // to single-candidate chunks — would re-stream the table per
        // candidate. Candidate costs are uniform (same table, same
        // term lists), so there is no skew for guided to fix. Note
        // the trade-off this grain accepts: with exactly one chunk
        // per runner nothing is stealable after the initial deal, so
        // if candidate costs ever became non-uniform this site would
        // need a finer grain before the work-stealing runners could
        // rebalance it. Scores depend only on the read-only table,
        // so the chunking (unlike the table generation above) is
        // free to vary with the thread count.
        const std::size_t workers =
            runtime::resolveThreads(run_exec);
        const std::size_t grain =
            (candidates.size() + workers - 1) / workers;
        std::vector<double> scores(candidates.size());
        runtime::parallel_for(
            run_exec, candidates.size(), grain,
            [&](std::size_t begin, std::size_t end, std::size_t) {
                if (batched) {
                    // Blocks outer, candidates inner: each block is
                    // copied into the scratch once and only qubit
                    // qi's lanes are rewritten per candidate, so the
                    // CRN table is streamed once per worker instead
                    // of once per candidate.
                    std::vector<double> scratch(block_doubles);
                    std::vector<std::size_t> ok(end - begin, 0);
                    for (std::size_t bi = 0; bi < n_blocks; ++bi) {
                        const std::size_t t0 = bi * B;
                        const std::size_t active =
                            std::min(B, trials - t0);
                        std::memcpy(scratch.data(),
                                    &blocks[bi * block_doubles],
                                    block_doubles * sizeof(double));
                        for (std::size_t ci = begin; ci < end; ++ci) {
                            for (std::size_t l = 0; l < active; ++l)
                                scratch[qi * B + l] =
                                    candidates[ci] + q_noise[t0 + l];
                            ok[ci - begin] += std::size_t(
                                std::popcount(batch.survivorMask(
                                    scratch.data(), active)));
                        }
                    }
                    for (std::size_t ci = begin; ci < end; ++ci)
                        scores[ci] =
                            double(ok[ci - begin]) / double(trials);
                    return;
                }
                for (std::size_t ci = begin; ci < end; ++ci) {
                    const double cand = candidates[ci];
                    std::size_t ok = 0;
                    for (std::size_t t = 0; t < trials; ++t) {
                        const double *row = &post[t * n_inv];
                        const double qv = cand + q_noise[t];
                        auto at = [&](std::size_t idx) {
                            return idx == qi ? qv : row[idx];
                        };
                        bool failed = false;
                        for (const auto &p : pairs) {
                            if (yield::pairCollides(options.model,
                                                    at(p.a), at(p.b))) {
                                failed = true;
                                break;
                            }
                        }
                        if (!failed) {
                            for (const auto &tr : triples) {
                                if (yield::tripleCollides(
                                        options.model, at(tr.j),
                                        at(tr.k), at(tr.i))) {
                                    failed = true;
                                    break;
                                }
                            }
                        }
                        if (!failed)
                            ++ok;
                    }
                    scores[ci] = double(ok) / double(trials);
                }
            });

        // First strict maximum, matching the sequential scan order.
        double best_score = -1.0;
        double best_freq = mid;
        for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
            if (scores[ci] > best_score) {
                best_score = scores[ci];
                best_freq = candidates[ci];
            }
        }
        return {best_freq, best_score};
    };

    auto process = [&](PhysQubit q) {
        // Stop between qubit visits, never mid-scan: an aborted
        // allocation leaves no partial result behind, and a completed
        // one never saw the poll affect its draws.
        exec::throwIfStopped(run_exec.cancel);
        auto [freq, score] = optimize(q);
        result.freqs[q] = freq;
        assigned[q] = true;
        result.order.push_back(q);
        result.local_scores.push_back(score);
    };

    while (true) {
        while (!fifo.empty()) {
            PhysQubit u = fifo.front();
            fifo.pop();
            for (PhysQubit v : arch.adjacency()[u]) {
                if (!enqueued[v]) {
                    enqueued[v] = true;
                    process(v);
                    fifo.push(v);
                }
            }
        }
        // Any disconnected component left?
        auto it = std::find(enqueued.begin(), enqueued.end(), false);
        if (it == enqueued.end())
            break;
        PhysQubit seed = PhysQubit(it - enqueued.begin());
        result.freqs[seed] = mid;
        assigned[seed] = true;
        enqueued[seed] = true;
        result.order.push_back(seed);
        result.local_scores.push_back(1.0);
        fifo.push(seed);
    }

    // Coordinate-descent polish: revisit every qubit with the full
    // neighbourhood assigned and keep the per-qubit argmax.
    for (unsigned sweep = 0; sweep < options.refine_sweeps; ++sweep) {
        for (std::size_t idx = 0; idx < result.order.size(); ++idx) {
            exec::throwIfStopped(run_exec.cancel);
            PhysQubit q = result.order[idx];
            auto [freq, score] = optimize(q);
            result.freqs[q] = freq;
            result.local_scores[idx] = score;
        }
    }

    return result;
}

void
applyOptimizedFrequencies(Architecture &arch,
                          const FreqAllocOptions &options,
                          const exec::Context &ctx)
{
    FreqAllocResult result = allocateFrequencies(arch, options, ctx);
    arch.setAllFrequencies(result.freqs);
}

} // namespace qpad::design

/**
 * @file
 * Center-out breadth-first frequency allocation
 * (paper Algorithm 3, Section 4.3).
 *
 * The qubit nearest the geometric centre of the placement receives
 * the middle of the allowed band (5.17 GHz). Remaining qubits are
 * visited in breadth-first order over the coupling graph; for each,
 * every candidate on a 10 MHz grid across 5.00-5.34 GHz is scored
 * by a Monte Carlo estimate of the yield of the qubit's local
 * region (the collision terms its frequency participates in, among
 * already-assigned qubits), and the argmax is committed.
 */

#ifndef QPAD_DESIGN_FREQ_ALLOC_HH
#define QPAD_DESIGN_FREQ_ALLOC_HH

#include <cstdint>
#include <vector>

#include "arch/architecture.hh"
#include "common/gauss_block.hh"
#include "exec/context.hh"
#include "runtime/parallel.hh"
#include "yield/collision.hh"

namespace qpad::design
{

/** Allocator configuration. */
struct FreqAllocOptions
{
    /** Candidate grid spacing in GHz (paper: 0.01). */
    double grid_step_ghz = 0.01;
    /** Monte Carlo trials per candidate evaluation. */
    std::size_t local_trials = 2000;
    /** Fabrication noise assumed during optimization. */
    double sigma_ghz = arch::DeviceConstants::default_sigma_ghz;
    /** Collision thresholds. */
    yield::CollisionModel model = {};
    /** RNG seed (common random numbers across candidates). */
    uint64_t seed = 11;
    /**
     * Coordinate-descent polish: after the centre-out pass, each
     * qubit is re-optimized this many times with *all* neighbours
     * assigned. Fixes the one-pass myopia the paper acknowledges in
     * Section 6 ("Optimizing Frequency Allocation"); 0 reproduces
     * the paper's plain Algorithm 3.
     */
    unsigned refine_sweeps = 2;
    /**
     * Parallel execution of the per-qubit candidate scan (the hot
     * path of Algorithm 3). Candidates share one common-random-
     * numbers table generated ahead of the scan, so the chosen
     * frequencies are identical for every thread count.
     */
    runtime::Options exec = {};
    /**
     * Draw order of the common-random-numbers table (see RngScheme
     * in common/gauss_block.hh): kV2 (default) fills it through the
     * lane-parallel GaussianBlockSampler, kV1 reproduces the legacy
     * sequential Rng::gaussian() order and therefore the exact
     * frequencies of pre-sampler releases. QPAD_RNG_V1 forces kV1.
     */
    RngScheme rng_scheme = RngScheme::kV2;
};

/** Allocation outcome. */
struct FreqAllocResult
{
    /** Chosen pre-fabrication frequency per qubit (GHz). */
    std::vector<double> freqs;
    /** BFS visit order used. */
    std::vector<arch::PhysQubit> order;
    /** Local-yield score accepted for each qubit (1.0 for the seed). */
    std::vector<double> local_scores;
};

/**
 * Run Algorithm 3; does not mutate the architecture. A cancelled or
 * deadline-expired `ctx` raises exec::CancelledError between qubit
 * visits and between refine steps (never mid-scan); a completed run
 * is bit-identical to one without a context.
 */
FreqAllocResult
allocateFrequencies(const arch::Architecture &arch,
                    const FreqAllocOptions &options = {},
                    const exec::Context &ctx = exec::Context::none());

/** Convenience: allocate and store into the architecture. */
void applyOptimizedFrequencies(
    arch::Architecture &arch, const FreqAllocOptions &options = {},
    const exec::Context &ctx = exec::Context::none());

/** The centre-most qubit (Euclidean distance to the centroid). */
arch::PhysQubit centerQubit(const arch::Layout &layout);

} // namespace qpad::design

#endif // QPAD_DESIGN_FREQ_ALLOC_HH

#include "design/bus_selection.hh"

#include <algorithm>

#include "common/logging.hh"

namespace qpad::design
{

using arch::Architecture;
using arch::Coord;
using arch::SquareInfo;

namespace
{

/** Cross-coupling weight: profiled strength of the diagonal pairs. */
uint64_t
crossCouplingWeight(const SquareInfo &square,
                    const profile::CouplingProfile &profile)
{
    uint64_t weight = 0;
    for (auto [a, b] : square.diagonals)
        weight += profile.strength(a, b);
    return weight;
}

bool
squaresAdjacent(const Coord &a, const Coord &b)
{
    return std::abs(a.row - b.row) + std::abs(a.col - b.col) == 1;
}

} // namespace

BusSelectionResult
selectBuses(const Architecture &arch,
            const profile::CouplingProfile &profile,
            std::size_t max_buses)
{
    qpad_assert(arch.numQubits() == profile.num_qubits,
                "bus selection expects the identity pseudo-mapping");

    std::vector<SquareInfo> squares = arch.eligibleSquares();
    const std::size_t s = squares.size();
    std::vector<int64_t> weight(s);
    for (std::size_t i = 0; i < s; ++i)
        weight[i] = int64_t(crossCouplingWeight(squares[i], profile));

    std::vector<std::vector<std::size_t>> neighbors(s);
    for (std::size_t i = 0; i < s; ++i)
        for (std::size_t j = i + 1; j < s; ++j)
            if (squaresAdjacent(squares[i].origin, squares[j].origin)) {
                neighbors[i].push_back(j);
                neighbors[j].push_back(i);
            }

    std::vector<bool> unavailable(s, false);

    BusSelectionResult result;
    std::size_t remaining = max_buses;
    while (remaining > 0) {
        // Filtered weight: own weight minus the (current) weights of
        // the edge-adjacent squares.
        std::size_t best = s;
        int64_t best_filtered = 0;
        for (std::size_t i = 0; i < s; ++i) {
            if (unavailable[i] || weight[i] == 0)
                continue;
            int64_t filtered = weight[i];
            for (std::size_t j : neighbors[i])
                filtered -= weight[j];
            if (best == s || filtered > best_filtered) {
                best = i;
                best_filtered = filtered;
            }
        }
        if (best == s)
            break; // no square available (or none with benefit)

        result.selected.push_back(squares[best].origin);
        result.weights.push_back(uint64_t(weight[best]));
        unavailable[best] = true;
        for (std::size_t j : neighbors[best]) {
            unavailable[j] = true;
            weight[j] = 0;
        }
        --remaining;
    }
    return result;
}

BusSelectionResult
selectBusesRandom(const Architecture &arch, std::size_t max_buses,
                  Rng &rng)
{
    std::vector<SquareInfo> squares = arch.eligibleSquares();
    // Fisher-Yates shuffle of the candidate order.
    for (std::size_t i = squares.size(); i > 1; --i)
        std::swap(squares[i - 1], squares[rng.below(i)]);

    BusSelectionResult result;
    Architecture scratch = arch;
    for (const SquareInfo &sq : squares) {
        if (result.selected.size() >= max_buses)
            break;
        if (scratch.canAddFourQubitBus(sq.origin)) {
            scratch.addFourQubitBus(sq.origin);
            result.selected.push_back(sq.origin);
            result.weights.push_back(0);
        }
    }
    return result;
}

void
applyBusSelection(Architecture &arch, const BusSelectionResult &selection)
{
    for (const Coord &origin : selection.selected)
        arch.addFourQubitBus(origin);
}

std::size_t
maxPlaceableBuses(const Architecture &arch)
{
    Architecture scratch = arch;
    std::size_t count = 0;
    for (const SquareInfo &sq : scratch.eligibleSquares()) {
        if (scratch.canAddFourQubitBus(sq.origin)) {
            scratch.addFourQubitBus(sq.origin);
            ++count;
        }
    }
    return count;
}

} // namespace qpad::design

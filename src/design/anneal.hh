/**
 * @file
 * Simulated-annealing layout refinement.
 *
 * The paper claims its greedy placement heuristic finds
 * "near-optimal" solutions in the reduced search space (Section 1).
 * This module provides the instrument to check that claim: an
 * annealer over qubit placements minimizing the same
 * strength-times-distance functional, usable either as a verifier
 * (how far is Algorithm 1 from a long anneal?) or as an optional
 * refinement stage of the flow.
 */

#ifndef QPAD_DESIGN_ANNEAL_HH
#define QPAD_DESIGN_ANNEAL_HH

#include "common/rng.hh"
#include "design/layout_design.hh"
#include "exec/context.hh"
#include "runtime/parallel.hh"

namespace qpad::design
{

/** Annealer configuration. */
struct AnnealOptions
{
    /** Proposed moves. */
    std::size_t iterations = 20000;
    /** Initial acceptance temperature (in cost units). */
    double t_start = 8.0;
    /** Final temperature. */
    double t_end = 0.05;
    uint64_t seed = 17;
    /**
     * Independent chains started from the same layout (parallel
     * restarts); the best final placement wins, ties by lowest
     * chain index. Chain 0 replays the legacy single-chain run
     * (seeded with `seed` itself); chain i > 0 draws from child
     * stream i of `seed`. 1 = classic single-chain annealing.
     */
    std::size_t restarts = 1;
    /** Parallel execution of the restart chains. */
    runtime::Options exec = {};
};

/** Refinement outcome. */
struct AnnealResult
{
    LayoutResult layout;
    uint64_t initial_cost = 0;
    uint64_t final_cost = 0;
    /** Accepted moves of the winning chain. */
    std::size_t accepted_moves = 0;
    /** Chain that produced the returned layout. */
    std::size_t winning_chain = 0;
};

/**
 * Anneal a placement, starting from `start` (typically Algorithm
 * 1's output). Moves are qubit relocations to free frontier nodes
 * and pairwise qubit swaps; the cost is placementCost(). The result
 * is never worse than the start (best-seen is returned).
 *
 * A cancelled or deadline-expired `ctx` raises exec::CancelledError;
 * chains poll every 1024 iterations, so even a single long chain
 * stops promptly. Completed runs are bit-identical to runs without
 * a context.
 */
AnnealResult
annealLayout(const profile::CouplingProfile &profile,
             const LayoutResult &start,
             const AnnealOptions &options = {},
             const exec::Context &ctx = exec::Context::none());

} // namespace qpad::design

#endif // QPAD_DESIGN_ANNEAL_HH

/**
 * @file
 * Filtered-weight 4-qubit bus selection
 * (paper Algorithm 2, Section 4.2).
 *
 * Each lattice square's cross-coupling weight is the profiled
 * coupling strength of its occupied diagonal pairs (one pair for a
 * 3-qubit square). In every iteration the square with the highest
 * *filtered* weight — its own weight minus the weights of its four
 * edge-adjacent squares — is promoted to a 4-qubit bus; its
 * neighbours are then blocked (prohibited condition) and zeroed.
 */

#ifndef QPAD_DESIGN_BUS_SELECTION_HH
#define QPAD_DESIGN_BUS_SELECTION_HH

#include <cstdint>
#include <vector>

#include "arch/architecture.hh"
#include "common/rng.hh"
#include "profile/coupling.hh"

namespace qpad::design
{

/** Selection outcome. */
struct BusSelectionResult
{
    /** Chosen square origins, in selection order. */
    std::vector<arch::Coord> selected;
    /** Cross-coupling weight of each chosen square. */
    std::vector<uint64_t> weights;
};

/**
 * Run Algorithm 2 against an architecture whose physical qubit ids
 * equal the profiled logical ids (the identity pseudo-mapping of
 * the layout designer).
 *
 * @param max_buses maximum number of 4-qubit buses (the paper's K).
 *        Selection also stops when no eligible square remains or
 *        when every remaining square has zero cross-coupling weight
 *        (adding a bus there could only hurt yield).
 */
BusSelectionResult selectBuses(const arch::Architecture &arch,
                               const profile::CouplingProfile &profile,
                               std::size_t max_buses);

/**
 * eff-rd-bus baseline: uniformly random selection of up to
 * max_buses squares honouring the prohibited condition.
 */
BusSelectionResult selectBusesRandom(const arch::Architecture &arch,
                                     std::size_t max_buses, Rng &rng);

/** Apply a selection to an architecture (adds the 4-qubit buses). */
void applyBusSelection(arch::Architecture &arch,
                       const BusSelectionResult &selection);

/**
 * Largest number of 4-qubit buses any selection could place on this
 * layout (greedy bound used to enumerate the eff-full sweep).
 */
std::size_t maxPlaceableBuses(const arch::Architecture &arch);

} // namespace qpad::design

#endif // QPAD_DESIGN_BUS_SELECTION_HH

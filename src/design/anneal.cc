#include "design/anneal.hh"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "cache/yield_cache.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "runtime/seed_seq.hh"

namespace qpad::design
{

using arch::Coord;
using arch::CoordHash;
using circuit::Qubit;

namespace
{

/** Incremental cost of one qubit's placement against all others. */
int64_t
qubitCost(const profile::CouplingProfile &profile,
          const std::vector<Coord> &coords, Qubit q, const Coord &at)
{
    int64_t cost = 0;
    for (std::size_t other = 0; other < coords.size(); ++other) {
        if (other == q)
            continue;
        uint32_t w = profile.strength(q, other);
        if (w)
            cost += int64_t(w) * Coord::manhattan(at, coords[other]);
    }
    return cost;
}

/** Connectivity check: occupied nodes form one 4-connected blob. */
bool
contiguous(const std::vector<Coord> &coords)
{
    if (coords.empty())
        return true;
    std::unordered_set<Coord, CoordHash> occupied(coords.begin(),
                                                  coords.end());
    std::vector<Coord> stack = {coords[0]};
    std::unordered_set<Coord, CoordHash> seen = {coords[0]};
    while (!stack.empty()) {
        Coord c = stack.back();
        stack.pop_back();
        for (const Coord &nb : lattice4(c)) {
            if (occupied.count(nb) && !seen.count(nb)) {
                seen.insert(nb);
                stack.push_back(nb);
            }
        }
    }
    return seen.size() == occupied.size();
}

/** Outcome of one independent annealing chain. */
struct ChainResult
{
    std::vector<Coord> best;
    int64_t best_cost = 0;
    std::size_t accepted_moves = 0;
};

/** One classic annealing run, seeded explicitly. `cancel` (may be
 * null) is polled every 1024 iterations — often enough to honour a
 * deadline mid-chain, rare enough to stay invisible in the move
 * loop's profile. The poll never perturbs the RNG stream. */
ChainResult
annealChain(const profile::CouplingProfile &profile,
            const LayoutResult &start, const AnnealOptions &options,
            uint64_t seed, const exec::CancelToken *cancel)
{
    const std::size_t n = profile.num_qubits;

    std::vector<Coord> coords = start.coord_of_logical;
    std::unordered_map<Coord, Qubit, CoordHash> occupied;
    for (Qubit q = 0; q < n; ++q)
        occupied[coords[q]] = q;

    Rng rng(seed);
    int64_t cost = int64_t(placementCost(profile, coords));

    ChainResult result;
    std::vector<Coord> &best = result.best;
    best = coords;
    int64_t &best_cost = result.best_cost;
    best_cost = cost;

    const double cooling =
        n <= 1 || options.iterations == 0
            ? 1.0
            : std::pow(options.t_end / options.t_start,
                       1.0 / double(options.iterations));
    double temperature = options.t_start;

    for (std::size_t it = 0; it < options.iterations && n > 1; ++it) {
        if ((it & 1023u) == 0)
            exec::throwIfStopped(cancel);
        temperature *= cooling;
        Qubit q = Qubit(rng.below(n));

        if (rng.chance(0.5)) {
            // Swap two qubits' nodes: always keeps contiguity.
            Qubit r = Qubit(rng.below(n));
            if (q == r)
                continue;
            int64_t before = qubitCost(profile, coords, q, coords[q]) +
                             qubitCost(profile, coords, r, coords[r]);
            std::swap(coords[q], coords[r]);
            int64_t after = qubitCost(profile, coords, q, coords[q]) +
                            qubitCost(profile, coords, r, coords[r]);
            // The q-r term is double-counted identically on both
            // sides, so the delta is exact.
            int64_t delta = after - before;
            if (delta <= 0 ||
                rng.chance(std::exp(-double(delta) / temperature))) {
                cost += delta;
                occupied[coords[q]] = q;
                occupied[coords[r]] = r;
                ++result.accepted_moves;
            } else {
                std::swap(coords[q], coords[r]); // revert
            }
        } else {
            // Relocate q to a random empty node adjacent to the
            // blob; reject moves that break contiguity. The frontier
            // is built from `coords` in qubit-index order, NOT by
            // iterating `occupied`: rng.below() indexes into it, so
            // its element order is part of the seeded draw contract
            // and must not depend on hash-bucket order. (Same
            // multiset either way — coords and occupied's keys are
            // the same nodes — so move probabilities are unchanged.)
            std::vector<Coord> frontier;
            for (const Coord &node : coords)
                for (const Coord &nb : lattice4(node))
                    if (!occupied.count(nb))
                        frontier.push_back(nb);
            if (frontier.empty())
                continue;
            Coord to = frontier[rng.below(frontier.size())];
            Coord from = coords[q];
            if (to == from)
                continue;

            int64_t before = qubitCost(profile, coords, q, from);
            int64_t after = qubitCost(profile, coords, q, to);
            int64_t delta = after - before;
            if (delta > 0 &&
                !rng.chance(std::exp(-double(delta) / temperature)))
                continue;

            occupied.erase(from);
            occupied[to] = q;
            coords[q] = to;
            if (!contiguous(coords)) {
                // Undo: the move split the chip.
                occupied.erase(to);
                occupied[from] = q;
                coords[q] = from;
                continue;
            }
            cost += delta;
            ++result.accepted_moves;
        }

        if (cost < best_cost) {
            best_cost = cost;
            best = coords;
        }
    }

    return result;
}

/**
 * Cache key of one annealing chain: everything annealChain reads —
 * the strength matrix (the only profile field the cost functional
 * uses), the start placement, the schedule, and the chain's own
 * seed. Keying per chain (not per annealLayout call) lets a rerun
 * with more restarts reuse every chain it already ran.
 */
cache::Fingerprint
chainKey(const profile::CouplingProfile &profile,
         const LayoutResult &start, const AnnealOptions &options,
         uint64_t seed)
{
    cache::Encoder enc;
    enc.str("qpad.anneal.chain/v1");
    enc.u64(profile.num_qubits);
    for (std::size_t i = 0; i < profile.num_qubits; ++i)
        for (std::size_t j = i; j < profile.num_qubits; ++j)
            enc.u32(profile.strength(i, j));
    for (const Coord &c : start.coord_of_logical) {
        enc.i32(c.row);
        enc.i32(c.col);
    }
    enc.u64(options.iterations);
    enc.f64(options.t_start);
    enc.f64(options.t_end);
    enc.u64(seed);
    return enc.digest();
}

std::vector<uint8_t>
encodeChain(const ChainResult &chain)
{
    cache::Encoder enc;
    enc.u64(chain.best.size());
    for (const Coord &c : chain.best) {
        enc.i32(c.row);
        enc.i32(c.col);
    }
    enc.i64(chain.best_cost);
    enc.u64(chain.accepted_moves);
    return enc.bytes();
}

bool
decodeChain(const std::vector<uint8_t> &blob, std::size_t num_qubits,
            ChainResult &chain)
{
    cache::Decoder in(blob);
    uint64_t n;
    if (!in.u64(n) || n != num_qubits)
        return false;
    chain.best.resize(num_qubits);
    for (Coord &c : chain.best)
        if (!in.i32(c.row) || !in.i32(c.col))
            return false;
    int64_t cost;
    uint64_t accepted;
    if (!in.i64(cost) || !in.u64(accepted) || !in.atEnd())
        return false;
    chain.best_cost = cost;
    chain.accepted_moves = std::size_t(accepted);
    return true;
}

} // namespace

AnnealResult
annealLayout(const profile::CouplingProfile &profile,
             const LayoutResult &start, const AnnealOptions &options,
             const exec::Context &ctx)
{
    const std::size_t n = profile.num_qubits;
    qpad_assert(start.coord_of_logical.size() == n,
                "start layout size mismatch");
    qpad_assert(options.restarts >= 1, "annealLayout needs >= 1 chain");

    QPAD_SPAN("design.anneal");
    static obs::Counter &anneals = obs::counter("design.anneals");
    anneals.add();

    // Run the K independent chains; chain 0 reproduces the legacy
    // single-chain behaviour exactly, so restarts = 1 is bit-for-bit
    // the classic annealer regardless of options.exec.
    const runtime::SeedSequence seeds(options.seed);
    std::vector<ChainResult> chains(options.restarts);
    cache::Store &store = cache::globalStore();
    const bool use_cache = store.options().enabled;
    // Guided sizing (grain 0): cache hits make finished chains ~free
    // while cold chains cost the full iteration budget, so restart
    // costs are heavily skewed on warm reruns; guided chunks plus
    // stealing keep the runners busy either way. Chain i's seed
    // depends only on i, never on the chunk index, so chunk identity
    // is free to follow the guided sequence.
    const runtime::Options run_exec = ctx.apply(options.exec);
    runtime::parallel_for(
        run_exec, options.restarts, 0,
        [&](std::size_t begin, std::size_t end, std::size_t) {
            for (std::size_t i = begin; i < end; ++i) {
                const uint64_t seed =
                    i == 0 ? options.seed : seeds.childSeed(i);
                // Each restart chain is memoized on its own key, so
                // a warm rerun — or one with a higher restart count
                // — replays finished chains from the cache.
                // Count (and span) only chains that actually anneal;
                // cache-served chains are already visible as
                // cache.hits.
                static obs::Counter &chain_runs =
                    obs::counter("design.anneal_chains");
                std::vector<uint8_t> blob;
                if (use_cache) {
                    const cache::Fingerprint key =
                        chainKey(profile, start, options, seed);
                    if (store.get(key, blob) &&
                        decodeChain(blob, n, chains[i]))
                        continue;
                    {
                        QPAD_SPAN("design.anneal_chain");
                        chain_runs.add();
                        chains[i] = annealChain(profile, start,
                                                options, seed,
                                                run_exec.cancel);
                    }
                    store.put(key, encodeChain(chains[i]));
                    continue;
                }
                QPAD_SPAN("design.anneal_chain");
                chain_runs.add();
                chains[i] = annealChain(profile, start, options, seed,
                                        run_exec.cancel);
            }
        });

    // Lowest best cost wins; ties resolve to the lowest chain index
    // so the outcome is independent of scheduling.
    std::size_t winner = 0;
    for (std::size_t i = 1; i < chains.size(); ++i)
        if (chains[i].best_cost < chains[winner].best_cost)
            winner = i;
    const std::vector<Coord> &best = chains[winner].best;

    AnnealResult result;
    // Computed from the coordinates, not read from the struct field:
    // a caller-built LayoutResult may carry a stale or unset
    // placement_cost, and the no-regression assert below must
    // compare like with like.
    result.initial_cost =
        placementCost(profile, start.coord_of_logical);
    result.accepted_moves = chains[winner].accepted_moves;
    result.winning_chain = winner;

    // Rebuild a normalized LayoutResult from the best placement.
    int r0 = best[0].row, c0 = best[0].col;
    for (const Coord &c : best) {
        r0 = std::min(r0, c.row);
        c0 = std::min(c0, c.col);
    }
    result.layout.coord_of_logical.resize(n);
    for (Qubit q = 0; q < n; ++q)
        result.layout.coord_of_logical[q] = {best[q].row - r0,
                                             best[q].col - c0};
    for (Qubit q = 0; q < n; ++q)
        result.layout.layout.addQubit(
            result.layout.coord_of_logical[q]);
    result.layout.placement_cost =
        placementCost(profile, result.layout.coord_of_logical);
    result.final_cost = result.layout.placement_cost;
    qpad_assert(result.final_cost <= result.initial_cost,
                "annealer must not regress past the start");
    return result;
}

} // namespace qpad::design

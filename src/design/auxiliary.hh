/**
 * @file
 * Auxiliary routing qubits (paper Section 6, "Exploring More Design
 * Space"): physical qubits with no logical counterpart added to the
 * generated layout. They cost yield (more connections) but give the
 * mapper extra freedom, trading yield for performance in the
 * opposite direction from bus removal.
 *
 * Heuristic: an empty lattice node adjacent to two or more placed
 * qubits is scored by the routing shortcut it creates — the summed
 * coupling strength of its neighbour pairs weighted by how much the
 * 2-hop path through the new qubit beats their current coupling
 * graph distance. Nodes are committed greedily, K times.
 */

#ifndef QPAD_DESIGN_AUXILIARY_HH
#define QPAD_DESIGN_AUXILIARY_HH

#include "arch/architecture.hh"
#include "design/layout_design.hh"
#include "profile/coupling.hh"

namespace qpad::design
{

/** Outcome of auxiliary-qubit insertion. */
struct AuxiliaryResult
{
    /** Extended layout: original ids preserved, auxiliaries appended. */
    arch::Layout layout;
    /** Coordinates chosen for the auxiliary qubits. */
    std::vector<arch::Coord> added;
    /** Heuristic score of each added node. */
    std::vector<uint64_t> scores;
};

/**
 * Add up to max_aux auxiliary qubits to a designed layout. Stops
 * early when no remaining node provides a positive shortcut.
 *
 * @param layout  the Algorithm 1 placement (identity pseudo-mapping)
 * @param profile the program profile that produced it
 */
AuxiliaryResult addAuxiliaryQubits(const arch::Layout &layout,
                                   const profile::CouplingProfile &profile,
                                   std::size_t max_aux);

} // namespace qpad::design

#endif // QPAD_DESIGN_AUXILIARY_HH

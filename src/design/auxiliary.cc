#include "design/auxiliary.hh"

#include <set>

#include "common/logging.hh"

namespace qpad::design
{

using arch::Architecture;
using arch::Coord;
using arch::Layout;
using arch::PhysQubit;

AuxiliaryResult
addAuxiliaryQubits(const Layout &layout,
                   const profile::CouplingProfile &profile,
                   std::size_t max_aux)
{
    qpad_assert(layout.numQubits() == profile.num_qubits,
                "auxiliary insertion expects the identity "
                "pseudo-mapping");

    AuxiliaryResult result;
    result.layout = layout;

    for (std::size_t round = 0; round < max_aux; ++round) {
        // Distances over the *current* coupling graph (2-qubit buses
        // only — auxiliaries are selected before bus configuration).
        Architecture probe(result.layout);
        const auto &dist = probe.distances();

        // Candidate nodes: empty, adjacent to >= 2 original qubits.
        std::set<Coord> candidates;
        for (PhysQubit q = 0; q < result.layout.numQubits(); ++q)
            for (const Coord &nb :
                 lattice4(result.layout.coord(q)))
                if (!result.layout.occupied(nb))
                    candidates.insert(nb);

        uint64_t best_score = 0;
        Coord best{};
        for (const Coord &node : candidates) {
            // Placed neighbours of this node that carry program
            // coupling (only original qubits have profile entries).
            std::vector<PhysQubit> neighbors;
            for (const Coord &nb : lattice4(node))
                if (auto q = result.layout.qubitAt(nb))
                    if (*q < profile.num_qubits)
                        neighbors.push_back(*q);
            if (neighbors.size() < 2)
                continue;
            uint64_t score = 0;
            for (std::size_t x = 0; x < neighbors.size(); ++x) {
                for (std::size_t y = x + 1; y < neighbors.size(); ++y) {
                    PhysQubit a = neighbors[x], b = neighbors[y];
                    uint32_t w = profile.strength(a, b);
                    if (w == 0)
                        continue;
                    uint16_t d = dist(a, b);
                    if (d > 2) {
                        // Genuine shortcut: the 2-hop path through
                        // the auxiliary beats the current distance.
                        score += 4 * uint64_t(w) * (d - 2);
                    } else if (d == 2) {
                        // Parallel alternative path: no distance win,
                        // but extra routing bandwidth for swaps.
                        score += w;
                    }
                }
            }
            if (score > best_score) {
                best_score = score;
                best = node;
            }
        }
        if (best_score == 0)
            break; // no remaining node shortens any coupled pair
        result.layout.addQubit(best);
        result.added.push_back(best);
        result.scores.push_back(best_score);
    }
    return result;
}

} // namespace qpad::design

#include "design/design_flow.hh"

#include "arch/ibm.hh"
#include "cache/yield_cache.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace qpad::design
{

using arch::Architecture;

DesignOutcome
designArchitecture(const profile::CouplingProfile &profile,
                   const DesignFlowOptions &options,
                   const std::string &name, const exec::Context &ctx)
{
    QPAD_SPAN("design.flow");
    static obs::Counter &flows = obs::counter("design.flows");
    flows.add();

    // A request that is already cancelled or expired should not even
    // start the layout stage.
    ctx.throwIfStopped();

    DesignOutcome outcome;

    // Subroutine 1: qubit layout (Algorithm 1).
    {
        QPAD_SPAN("design.layout");
        static obs::Counter &layouts = obs::counter("design.layouts");
        layouts.add();
        outcome.layout = designLayout(profile);
    }
    outcome.architecture = Architecture(outcome.layout.layout, name);

    // Subroutine 2: bus selection (Algorithm 2 or a baseline).
    {
    QPAD_SPAN("design.bus_select");
    static obs::Counter &bus_selects =
        obs::counter("design.bus_selections");
    bus_selects.add();
    switch (options.bus_scheme) {
      case BusScheme::Weighted:
        outcome.buses = selectBuses(outcome.architecture, profile,
                                    options.max_buses);
        applyBusSelection(outcome.architecture, outcome.buses);
        break;
      case BusScheme::Random: {
        Rng rng(options.bus_seed);
        outcome.buses = selectBusesRandom(outcome.architecture,
                                          options.max_buses, rng);
        applyBusSelection(outcome.architecture, outcome.buses);
        break;
      }
      case BusScheme::None:
        break;
      case BusScheme::Max: {
        Architecture &arch = outcome.architecture;
        for (const arch::SquareInfo &sq : arch.eligibleSquares()) {
            if (arch.canAddFourQubitBus(sq.origin)) {
                arch.addFourQubitBus(sq.origin);
                outcome.buses.selected.push_back(sq.origin);
                outcome.buses.weights.push_back(0);
            }
        }
        break;
      }
    }
    }

    // Subroutine 3: frequency allocation (Algorithm 3 or 5-freq).
    {
    QPAD_SPAN("design.freq_alloc");
    static obs::Counter &freq_allocs =
        obs::counter("design.freq_allocations");
    freq_allocs.add();
    switch (options.freq_scheme) {
      case FreqScheme::Optimized:
        // Algorithm 3's candidate scan dominates the flow's cost and
        // is a pure function of (topology, options): route it through
        // the result cache so repeated designs (sweeps, re-runs with
        // a warm on-disk cache) skip the Monte Carlo entirely.
        outcome.freq =
            cache::cachedAllocateFrequencies(outcome.architecture,
                                             options.freq_options,
                                             ctx);
        outcome.architecture.setAllFrequencies(outcome.freq.freqs);
        break;
      case FreqScheme::FiveFrequency:
        arch::applyFiveFrequencyScheme(outcome.architecture);
        break;
    }
    }

    return outcome;
}

} // namespace qpad::design

#include "fault/fio.hh"

#include <cerrno>

#include "fault/failpoint.hh"

#if defined(__unix__) || defined(__APPLE__)
#define QPAD_FIO_POSIX 1
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define QPAD_FIO_POSIX 0
#endif

namespace qpad::fault
{

namespace
{

/** Map a non-write site's injected action onto pass/fail. */
bool
injectedFailure(const char *site)
{
    const Action a = failpointHit(site);
    if (a == Action::kKill)
        failpointKillNow(site);
    if (a != Action::kNone) {
        errno = EIO;
        return true;
    }
    return false;
}

} // namespace

std::FILE *
fioOpen(const char *site, const std::string &path, const char *mode)
{
    if (injectedFailure(site))
        return nullptr;
    return std::fopen(path.c_str(), mode);
}

void
fioUnbuffered(std::FILE *f)
{
    std::setvbuf(f, nullptr, _IONBF, 0);
}

bool
fioWrite(const char *site, std::FILE *f, const void *buf,
         std::size_t n)
{
    const Action a = failpointHit(site);
    if (a == Action::kShortWrite || a == Action::kKill) {
        // Persist a strict prefix — the torn-record signature of a
        // crash mid-write. The stream is unbuffered (fioUnbuffered),
        // so the prefix reaches the kernel before the failure/death.
        const std::size_t cut = n / 2;
        if (cut > 0)
            (void)std::fwrite(buf, 1, cut, f);
        if (a == Action::kKill)
            failpointKillNow(site);
        errno = EIO;
        return false;
    }
    if (a == Action::kError) {
        errno = EIO;
        return false;
    }
    return std::fwrite(buf, 1, n, f) == n;
}

std::size_t
fioRead(const char *site, std::FILE *f, void *buf, std::size_t n)
{
    if (injectedFailure(site))
        return 0;
    return std::fread(buf, 1, n, f);
}

bool
fioFlush(const char *site, std::FILE *f)
{
    if (injectedFailure(site))
        return false;
    return std::fflush(f) == 0 && std::ferror(f) == 0;
}

bool
fioSync(const char *site, std::FILE *f)
{
    if (std::fflush(f) != 0)
        return false;
    if (injectedFailure(site))
        return false;
#if QPAD_FIO_POSIX
    return ::fsync(::fileno(f)) == 0;
#else
    return true; // fflush is the best this platform offers
#endif
}

bool
fioTruncate(const char *site, std::FILE *f, long length)
{
    if (injectedFailure(site))
        return false;
#if QPAD_FIO_POSIX
    if (::ftruncate(::fileno(f), off_t(length)) != 0)
        return false;
    return std::fseek(f, length, SEEK_SET) == 0;
#else
    (void)f;
    (void)length;
    return false; // no portable in-place truncate; caller degrades
#endif
}

bool
fioRename(const char *site, const std::string &from,
          const std::string &to)
{
    if (injectedFailure(site))
        return false;
    return std::rename(from.c_str(), to.c_str()) == 0;
}

bool
fioSyncDir(const char *site, const std::string &dir)
{
    if (injectedFailure(site))
        return false;
#if QPAD_FIO_POSIX
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd >= 0) {
        (void)::fsync(fd); // best effort: tmpfs et al. may refuse
        (void)::close(fd);
    }
#else
    (void)dir;
#endif
    return true;
}

void
fioClose(std::FILE *f)
{
    if (f)
        (void)std::fclose(f);
}

bool
fioSameFile(std::FILE *f, const std::string &path)
{
#if QPAD_FIO_POSIX
    struct stat by_fd, by_path;
    if (::fstat(::fileno(f), &by_fd) != 0 ||
        ::stat(path.c_str(), &by_path) != 0)
        return false;
    return by_fd.st_dev == by_path.st_dev &&
           by_fd.st_ino == by_path.st_ino;
#else
    (void)f;
    (void)path;
    return true; // single-writer platforms never swap the inode
#endif
}

LockResult
fioTryLock(const char *site, std::FILE *f)
{
    const Action a = failpointHit(site);
    if (a == Action::kKill)
        failpointKillNow(site);
    if (a != Action::kNone)
        return LockResult::kError;
#if QPAD_FIO_POSIX
    if (::flock(::fileno(f), LOCK_EX | LOCK_NB) == 0)
        return LockResult::kLocked;
    return (errno == EWOULDBLOCK || errno == EAGAIN)
               ? LockResult::kBusy
               : LockResult::kError;
#else
    (void)f;
    return LockResult::kUnsupported;
#endif
}

void
fioUnlock(std::FILE *f)
{
#if QPAD_FIO_POSIX
    (void)::flock(::fileno(f), LOCK_UN);
#else
    (void)f;
#endif
}

} // namespace qpad::fault

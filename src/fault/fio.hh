/**
 * @file
 * Failpoint-wrapped file I/O shims.
 *
 * Every I/O operation of the persistent cache goes through these
 * helpers instead of raw stdio/POSIX calls (enforced by the
 * qpad-lint `raw-io` rule over src/cache/), so a failpoint named
 * after the site can fail, tear, or kill the operation exactly where
 * a real disk or crash would:
 *
 *     if (!fault::fioWrite("cache.append", log, buf, n)) { ... }
 *
 * Semantics under injection (see fault/failpoint.hh):
 *   eio          the call returns failure without touching the file
 *   short_write  fioWrite writes a strict prefix, then returns
 *                failure (other call types treat it as eio)
 *   kill         write sites persist a strict prefix first, then the
 *                process dies via std::_Exit(kKillExitCode)
 *
 * The flock helpers arbitrate a shared cache directory between
 * processes. They operate on a dedicated lock FILE (never the log
 * itself: log compaction replaces the log inode by rename, which
 * would silently break locks held on the old inode). On platforms
 * without flock/fileno the lock helpers report kUnsupported and the
 * store falls back to single-process behavior.
 */

#ifndef QPAD_FAULT_FIO_HH
#define QPAD_FAULT_FIO_HH

#include <cstdio>
#include <string>

namespace qpad::fault
{

/** fopen through the `<site>.eio` failpoint (nullptr on injection
 * or real failure). */
std::FILE *fioOpen(const char *site, const std::string &path,
                   const char *mode);

/** Make `f` unbuffered: every fioWrite reaches the kernel before it
 * returns, so torn writes and truncation repair are exact and no
 * stale stdio buffer can flush at a wrong offset after flock
 * release. */
void fioUnbuffered(std::FILE *f);

/**
 * Write all `n` bytes. short_write/kill injections persist a strict
 * prefix (n/2 bytes) first; returns false on injection or when the
 * real fwrite comes up short.
 */
bool fioWrite(const char *site, std::FILE *f, const void *buf,
              std::size_t n);

/** fread, returning the byte count actually read (0 on eio). */
std::size_t fioRead(const char *site, std::FILE *f, void *buf,
                    std::size_t n);

/** fflush with its result checked (false on eio or real failure). */
bool fioFlush(const char *site, std::FILE *f);

/** fflush + fsync of the underlying descriptor. */
bool fioSync(const char *site, std::FILE *f);

/** Truncate the open file to `length` bytes and reposition at the
 * new end. Used to cut a torn record back off the log. */
bool fioTruncate(const char *site, std::FILE *f, long length);

/** rename(from, to), the atomic-replace step of compaction. */
bool fioRename(const char *site, const std::string &from,
               const std::string &to);

/** Best-effort fsync of a directory so a rename survives power
 * loss; returns false only on injection (real failures are
 * ignored — not every filesystem supports directory fsync). */
bool fioSyncDir(const char *site, const std::string &dir);

/** fclose (tolerates nullptr; the close itself has no failpoint —
 * nothing recoverable can be done about a failed close). */
void fioClose(std::FILE *f);

/** True when `f` still names the same inode as `path` (false after
 * another process compacted the log out from under us, or when the
 * platform cannot tell — callers then reopen, which is always
 * safe). */
bool fioSameFile(std::FILE *f, const std::string &path);

enum class LockResult
{
    kLocked,      ///< exclusive lock acquired
    kBusy,        ///< held by another process; retry
    kError,       ///< injection or real flock failure
    kUnsupported, ///< platform has no flock; proceed unlocked
};

/** Try to take the exclusive inter-process lock (non-blocking). */
LockResult fioTryLock(const char *site, std::FILE *f);

/** Release the lock taken by fioTryLock. */
void fioUnlock(std::FILE *f);

} // namespace qpad::fault

#endif // QPAD_FAULT_FIO_HH

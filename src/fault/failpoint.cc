#include "fault/failpoint.hh"

#include <cstdlib>
#include <mutex>
#include <vector>

#include "common/logging.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"

namespace qpad::fault
{

namespace
{

/** One configured `<site>.<action>@<trigger>` entry. */
struct Entry
{
    std::string site;
    Action action = Action::kNone;
    uint64_t nth = 0;    ///< 1-based trigger hit; 0 with every=true
    bool from_nth = false; ///< `N+`: the Nth and every later hit
    bool every = false;  ///< `*`: every hit
    uint64_t hits = 0;   ///< hits seen so far (per entry)
};

struct Registry
{
    std::mutex mutex;
    std::vector<Entry> entries;
    uint64_t triggered = 0;
};

Registry &
registry()
{
    static Registry *r = new Registry; // leaked: shims may run at exit
    return *r;
}

obs::Counter &
injectedMetric()
{
    static obs::Counter &c = obs::counter("fault.injected");
    return c;
}

const char *
actionName(Action a)
{
    switch (a) {
    case Action::kError: return "eio";
    case Action::kShortWrite: return "short_write";
    case Action::kKill: return "kill";
    case Action::kNone: break;
    }
    return "none";
}

/** Parse one entry; returns false with `why` set on bad syntax. */
bool
parseEntry(std::string_view text, Entry &out, std::string &why)
{
    const std::size_t at = text.rfind('@');
    if (at == std::string_view::npos || at == 0 ||
        at + 1 >= text.size()) {
        why = "expected '<site>.<action>@<trigger>'";
        return false;
    }
    const std::string_view name = text.substr(0, at);
    std::string_view trigger = text.substr(at + 1);

    const std::size_t dot = name.rfind('.');
    if (dot == std::string_view::npos || dot == 0 ||
        dot + 1 >= name.size()) {
        why = "name must be '<site>.<action>'";
        return false;
    }
    const std::string_view action = name.substr(dot + 1);
    out.site = std::string(name.substr(0, dot));
    for (char c : out.site)
        if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
              c == '.' || c == '_')) {
            why = "site may use only [a-z0-9._]";
            return false;
        }
    if (action == "eio")
        out.action = Action::kError;
    else if (action == "short_write")
        out.action = Action::kShortWrite;
    else if (action == "kill")
        out.action = Action::kKill;
    else {
        why = "unknown action '" + std::string(action) +
              "' (eio, short_write, kill)";
        return false;
    }

    if (trigger == "*") {
        out.every = true;
        return true;
    }
    if (trigger.size() > 1 && trigger.back() == '+') {
        out.from_nth = true;
        trigger.remove_suffix(1);
    }
    uint64_t n = 0;
    for (char c : trigger) {
        if (c < '0' || c > '9') {
            why = "trigger must be N, N+, or *";
            return false;
        }
        n = n * 10 + uint64_t(c - '0');
        if (n > (1ull << 32)) {
            why = "trigger out of range";
            return false;
        }
    }
    if (n == 0) {
        why = "trigger hit is 1-based";
        return false;
    }
    out.nth = n;
    return true;
}

bool
parseSpec(std::string_view spec, std::vector<Entry> &entries,
          std::string &why)
{
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string_view::npos)
            comma = spec.size();
        std::string_view item = spec.substr(pos, comma - pos);
        while (!item.empty() && (item.front() == ' '))
            item.remove_prefix(1);
        while (!item.empty() && (item.back() == ' '))
            item.remove_suffix(1);
        if (!item.empty()) {
            Entry e;
            std::string entry_why;
            if (!parseEntry(item, e, entry_why)) {
                why = "failpoint '" + std::string(item) +
                      "': " + entry_why;
                return false;
            }
            entries.push_back(std::move(e));
        }
        if (comma == spec.size())
            break;
        pos = comma + 1;
    }
    return true;
}

/** Publish `entries` as the active configuration (counters reset). */
void
install(std::vector<Entry> entries)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.entries = std::move(entries);
    r.triggered = 0;
    // qpad-lint: allow(atomic-relaxed) "the registry mutex above
    // publishes the table; the flag is only a fast-path hint"
    detail::g_fault_state.store(r.entries.empty() ? 1 : 2,
                                std::memory_order_relaxed);
}

/** Read QPAD_FAILPOINTS exactly once (malformed values fail loudly,
 * matching the strict env parsing convention elsewhere). */
void
loadFromEnvOnce()
{
    static std::once_flag flag;
    std::call_once(flag, [] {
        const char *spec = std::getenv("QPAD_FAILPOINTS");
        if (!spec || !*spec) {
            install({});
            return;
        }
        std::vector<Entry> entries;
        std::string why;
        if (!parseSpec(spec, entries, why))
            qpad_fatal("invalid QPAD_FAILPOINTS: ", why);
        install(std::move(entries));
    });
}

} // namespace

bool
configureFailpoints(std::string_view spec, std::string *error)
{
    loadFromEnvOnce(); // claim the once-flag so env never overrides
    std::vector<Entry> entries;
    std::string why;
    if (!parseSpec(spec, entries, why)) {
        if (error)
            *error = why;
        return false;
    }
    install(std::move(entries));
    return true;
}

void
clearFailpoints()
{
    loadFromEnvOnce();
    install({});
}

bool
failpointsArmed()
{
    loadFromEnvOnce();
    // qpad-lint: allow(atomic-relaxed) "hint read; the table is read
    // under the registry mutex"
    return detail::g_fault_state.load(std::memory_order_relaxed) == 2;
}

uint64_t
failpointTriggerCount()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.triggered;
}

void
failpointKillNow(const char *site)
{
    // A real crash flushes nothing and runs no atexit hooks;
    // std::_Exit is the closest a cooperative process can get.
    (void)site;
    std::_Exit(kKillExitCode);
}

namespace detail
{

Action
hitSlow(const char *site)
{
    loadFromEnvOnce();
    // qpad-lint: allow(atomic-relaxed) "hint only; disarmed state is
    // re-checked under the registry mutex below"
    if (g_fault_state.load(std::memory_order_relaxed) == 1)
        return Action::kNone;

    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    Action strongest = Action::kNone;
    for (Entry &e : r.entries) {
        if (e.site != site)
            continue;
        ++e.hits;
        const bool fires =
            e.every || (e.from_nth ? e.hits >= e.nth : e.hits == e.nth);
        if (fires && uint8_t(e.action) > uint8_t(strongest))
            strongest = e.action;
    }
    if (strongest != Action::kNone) {
        ++r.triggered;
        injectedMetric().add();
        obs::logDebug("fault.injected",
                      {{"site", site},
                       {"action", actionName(strongest)}});
    }
    return strongest;
}

} // namespace detail

} // namespace qpad::fault

/**
 * @file
 * Deterministic fault injection: named failpoints.
 *
 * A failpoint is a named I/O site (e.g. `cache.append`) that the
 * code consults through the fio shims (fault/fio.hh) before every
 * real operation. Configuration arms an *action* at a site on a
 * chosen hit:
 *
 *     QPAD_FAILPOINTS=cache.append.short_write@3,cache.fsync.eio@*
 *
 * grammar, comma-separated entries:
 *
 *     <site>.<action>@<trigger>
 *     action  := eio | short_write | kill
 *     trigger := N (fires on the Nth hit of the site, 1-based)
 *              | N+ (the Nth and every later hit)
 *              | *  (every hit)
 *
 * Actions:
 *   eio          the shim fails the operation (nothing touches disk)
 *   short_write  the shim writes a strict prefix, then fails — the
 *                torn-record signature of a crash mid-write
 *   kill         the process dies on the spot with std::_Exit
 *                (kKillExitCode); for write sites a strict prefix is
 *                written first, so the file is torn exactly as a
 *                real crash mid-append would leave it
 *
 * Hits are counted per configured entry, in program order; the cache
 * serializes its I/O under a lock, so a given workload hits a given
 * failpoint in a reproducible sequence — "randomized" torture comes
 * from seeding the *trigger*, never from the framework.
 *
 * Cost contract (same discipline as spans and logs): an unconfigured
 * process pays one relaxed atomic load per shim call — no locks, no
 * allocation, no string compares. Configuration comes from
 * QPAD_FAILPOINTS on first use or programmatically via
 * configureFailpoints() (tests; a torture child arms itself after
 * fork so the parent stays clean).
 *
 * Every triggered injection bumps the `fault.injected` counter and
 * emits a debug-level `fault.injected` log event, so an armed run is
 * visible in metrics exports and request reports.
 */

#ifndef QPAD_FAULT_FAILPOINT_HH
#define QPAD_FAULT_FAILPOINT_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace qpad::fault
{

enum class Action : uint8_t
{
    kNone = 0,
    kError,      ///< fail the operation (EIO-style)
    kShortWrite, ///< write a strict prefix, then fail
    kKill,       ///< die mid-operation via std::_Exit
};

/** Exit code of a kill-action death (distinct from every qpad exit
 * code in use, so a torture harness can assert the death was the
 * injected one and not a crash of its own). */
constexpr int kKillExitCode = 113;

/**
 * Replace the failpoint configuration with `spec` (the
 * QPAD_FAILPOINTS grammar; empty disarms). Returns false and fills
 * `error` on a malformed spec, leaving the previous configuration
 * in place. Hit counters restart from zero.
 */
bool configureFailpoints(std::string_view spec,
                         std::string *error = nullptr);

/** Disarm every failpoint and reset hit counters. */
void clearFailpoints();

/** Total injections triggered since the last (re)configuration. */
uint64_t failpointTriggerCount();

namespace detail
{

/** 0 = env not read yet, 1 = disarmed, 2 = armed. */
inline std::atomic<int> g_fault_state{0};

/** Slow path: consult the table (reads QPAD_FAILPOINTS first when
 * the state is still 0). */
Action hitSlow(const char *site);

} // namespace detail

/**
 * Count one hit of `site` and return the action to inject (kNone
 * almost always). The disarmed fast path is a single relaxed load.
 */
inline Action
failpointHit(const char *site)
{
    // qpad-lint: allow(atomic-relaxed) "arming flag only; the table
    // behind it is published under the registry mutex in hitSlow"
    if (detail::g_fault_state.load(std::memory_order_relaxed) == 1)
        return Action::kNone;
    return detail::hitSlow(site);
}

/** True once any failpoint configuration is armed. */
bool failpointsArmed();

/** Die the way a kill action does (used by the shims; exposed so
 * tests can pin the exit code path). */
[[noreturn]] void failpointKillNow(const char *site);

} // namespace qpad::fault

#endif // QPAD_FAULT_FAILPOINT_HH

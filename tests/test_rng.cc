/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"

namespace
{

using qpad::Rng;

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform(-2.5, 3.5);
        ASSERT_GE(u, -2.5);
        ASSERT_LT(u, 3.5);
    }
}

TEST(Rng, UniformRangeStaysBelowHiAtExtremeMagnitudes)
{
    // Regression: lo + (hi - lo) * u can round up to exactly hi.
    // With hi - lo = one ulp step, half the raw draws do; with the
    // interval straddling the whole double range, hi - lo overflows
    // to infinity. Every case must stay inside [lo, hi).
    Rng rng(33);
    struct Interval
    {
        double lo, hi;
    };
    const Interval cases[] = {
        // ulp(1e16) = 2, so 2 * u rounds to 2 for u > 0.5: without
        // the clamp this returns hi on roughly half the draws.
        {1e16, 1e16 + 2.0},
        // Denormal-width interval: the draw collapses to {lo, hi}.
        {0.0, 5e-324},
        // hi - lo overflows to +inf.
        {-1e308, 1e308},
        // Huge same-sign endpoints one ulp apart.
        {1e308, std::nextafter(1e308, HUGE_VAL)},
    };
    for (const auto &c : cases) {
        for (int i = 0; i < 20000; ++i) {
            double u = rng.uniform(c.lo, c.hi);
            ASSERT_GE(u, c.lo) << c.lo << " " << c.hi;
            ASSERT_LT(u, c.hi) << c.lo << " " << c.hi;
        }
    }
    // Degenerate zero-width interval: the only representable value.
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(rng.uniform(2.5, 2.5), 2.5);
}

TEST(Rng, UniformOverflowSpanStaysUniform)
{
    // hi - lo overflows to +inf here; the draw must still cover the
    // interval instead of collapsing onto a clamped constant.
    Rng rng(35);
    int negative = 0, positive = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform(-1e308, 1e308);
        ASSERT_GE(u, -1e308);
        ASSERT_LT(u, 1e308);
        ++(u < 0 ? negative : positive);
    }
    // ~50/50 split; a degenerate constant would put every draw on
    // one side.
    EXPECT_GT(negative, 3000);
    EXPECT_GT(positive, 3000);
}

TEST(Rng, BelowIsInRangeAndCoversAll)
{
    Rng rng(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 5000; ++i) {
        uint64_t v = rng.below(7);
        ASSERT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowOneAlwaysZero)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(15);
    std::set<int64_t> seen;
    for (int i = 0; i < 5000; ++i) {
        int64_t v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(17);
    const int n = 400000;
    double sum = 0.0, sum2 = 0.0;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian();
        sum += g;
        sum2 += g * g;
    }
    double mean = sum / n;
    double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.01);
    EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(19);
    const int n = 200000;
    double sum = 0.0, sum2 = 0.0;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian(5.17, 0.030);
        sum += g;
        sum2 += g * g;
    }
    double mean = sum / n;
    double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 5.17, 0.001);
    EXPECT_NEAR(std::sqrt(var), 0.030, 0.002);
}

TEST(Rng, ChanceProbability)
{
    Rng rng(21);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(double(hits) / n, 0.25, 0.01);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(23);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

} // namespace

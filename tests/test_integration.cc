/**
 * @file
 * Cross-module integration and property tests: full pipelines from
 * QASM text to fabricated-chip statistics, structural invariants of
 * generated architectures, and determinism of the whole flow.
 */

#include <gtest/gtest.h>

#include "arch/ibm.hh"
#include "benchmarks/suite.hh"
#include "circuit/decompose.hh"
#include "circuit/qasm.hh"
#include "design/design_flow.hh"
#include "eval/experiment.hh"
#include "mapping/sabre.hh"
#include "profile/coupling.hh"
#include "yield/yield_sim.hh"

namespace
{

using namespace qpad;

TEST(Integration, QasmTextToChip)
{
    // A hand-written program goes through parse -> decompose ->
    // profile -> design -> map -> yield without manual glue.
    const char *src = R"(OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
h q[0];
ccx q[0],q[1],q[2];
cu1(pi/4) q[2],q[3];
swap q[3],q[4];
cx q[4],q[0];
measure q -> c;
)";
    auto circ = circuit::decompose(circuit::parseQasm(src, "inline"));
    ASSERT_TRUE(circuit::isInBasis(circ));

    auto prof = profile::profileCircuit(circ);
    design::DesignFlowOptions opts;
    opts.freq_options.local_trials = 300;
    auto outcome = design::designArchitecture(prof, opts, "inline");

    auto mapped = mapping::mapCircuit(circ, outcome.architecture);
    EXPECT_TRUE(
        mapping::respectsCoupling(mapped.mapped, outcome.architecture));

    yield::YieldOptions yopts;
    yopts.trials = 500;
    auto y = yield::estimateYield(outcome.architecture, yopts);
    EXPECT_GT(y.yield, 0.0); // a 5-qubit chip fabricates often
}

TEST(Integration, MappedCircuitSurvivesQasmRoundTrip)
{
    auto circ = benchmarks::getBenchmark("UCCSD_ansatz_8").generate();
    auto arch = arch::ibm16Q(true);
    auto mapped = mapping::mapCircuit(circ, arch);
    auto reparsed = circuit::parseQasm(circuit::toQasm(mapped.mapped));
    EXPECT_EQ(reparsed.size(), mapped.mapped.size());
    EXPECT_EQ(reparsed.twoQubitGateCount(),
              mapped.mapped.twoQubitGateCount());
}

class FlowParam : public ::testing::TestWithParam<const char *>
{
};

TEST_P(FlowParam, DesignedChipInvariants)
{
    auto circ = benchmarks::getBenchmark(GetParam()).generate();
    auto prof = profile::profileCircuit(circ);
    design::DesignFlowOptions opts;
    opts.max_buses = 2;
    opts.freq_options.local_trials = 200;
    auto outcome = design::designArchitecture(prof, opts, GetParam());
    const auto &chip = outcome.architecture;

    // Structural invariants of every generated architecture.
    EXPECT_EQ(chip.numQubits(), circ.numQubits());
    EXPECT_TRUE(chip.isConnectedGraph());
    EXPECT_TRUE(chip.frequenciesAssigned());
    for (double f : chip.frequencies()) {
        EXPECT_GE(f, arch::DeviceConstants::freq_min_ghz - 1e-9);
        EXPECT_LE(f, arch::DeviceConstants::freq_max_ghz + 1e-9);
    }

    // Edge accounting: lattice edges + 2 per full square bus + 1 per
    // 3-corner square bus.
    std::size_t expected =
        chip.layout().latticeEdges().size();
    for (const auto &origin : chip.fourQubitBuses()) {
        std::size_t corners = 0;
        for (int dr = 0; dr <= 1; ++dr)
            for (int dc = 0; dc <= 1; ++dc)
                corners +=
                    chip.layout().occupied(origin.offset(dr, dc));
        expected += corners == 4 ? 2 : 1;
    }
    EXPECT_EQ(chip.numEdges(), expected);

    // The 4-qubit buses honour the prohibited condition pairwise.
    const auto &buses = chip.fourQubitBuses();
    for (std::size_t i = 0; i < buses.size(); ++i)
        for (std::size_t j = i + 1; j < buses.size(); ++j)
            EXPECT_GT(std::abs(buses[i].row - buses[j].row) +
                          std::abs(buses[i].col - buses[j].col),
                      1);

    // The circuit maps legally.
    auto mapped = mapping::mapCircuit(circ, chip);
    EXPECT_TRUE(mapping::respectsCoupling(mapped.mapped, chip));
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, FlowParam,
                         ::testing::Values("UCCSD_ansatz_8",
                                           "sym6_145", "dc1_220",
                                           "z4_268", "cm152a_212",
                                           "radd_250", "qft_16"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n)
                                 if (!isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             return n;
                         });

TEST(Integration, WholeFlowIsDeterministic)
{
    auto circ = benchmarks::getBenchmark("dc1_220").generate();
    auto prof = profile::profileCircuit(circ);
    design::DesignFlowOptions opts;
    opts.max_buses = 2;
    opts.freq_options.local_trials = 300;

    auto a = design::designArchitecture(prof, opts, "det");
    auto b = design::designArchitecture(prof, opts, "det");
    EXPECT_EQ(a.architecture.frequencies(),
              b.architecture.frequencies());
    EXPECT_EQ(a.architecture.fourQubitBuses().size(),
              b.architecture.fourQubitBuses().size());
    EXPECT_EQ(a.layout.coord_of_logical, b.layout.coord_of_logical);

    auto ma = mapping::mapCircuit(circ, a.architecture);
    auto mb = mapping::mapCircuit(circ, b.architecture);
    EXPECT_EQ(ma.total_gates, mb.total_gates);

    yield::YieldOptions yopts;
    yopts.trials = 1000;
    EXPECT_DOUBLE_EQ(
        yield::estimateYield(a.architecture, yopts).yield,
        yield::estimateYield(b.architecture, yopts).yield);
}

TEST(Integration, SmallerChipsFabricateMoreOften)
{
    // End-to-end restatement of the paper's premise: the 7-qubit
    // application-specific chip for sym6 beats every 16/20-qubit
    // general-purpose baseline on yield.
    auto circ = benchmarks::getBenchmark("sym6_145").generate();
    auto prof = profile::profileCircuit(circ);
    design::DesignFlowOptions opts;
    opts.max_buses = 1;
    auto outcome = design::designArchitecture(prof, opts, "sym6");

    yield::YieldOptions yopts;
    yopts.trials = 5000;
    double eff = yield::estimateYield(outcome.architecture, yopts).yield;
    for (const auto &baseline : arch::ibmBaselines())
        EXPECT_GT(eff, yield::estimateYield(baseline, yopts).yield);
}

TEST(Integration, BusesTradeYieldForPerformance)
{
    // Within one program's eff-full family: adding buses must not
    // increase the mapped gate count by much (performance lever) and
    // must not increase the yield (hardware-cost lever). Checked
    // with generous slack for heuristic/MC noise.
    auto circ = benchmarks::getBenchmark("cm152a_212").generate();
    auto prof = profile::profileCircuit(circ);

    design::DesignFlowOptions opts;
    opts.freq_options.local_trials = 2000;
    yield::YieldOptions yopts;
    yopts.trials = 20000;

    opts.max_buses = 0;
    auto k0 = design::designArchitecture(prof, opts, "k0");
    opts.max_buses = 3;
    auto k3 = design::designArchitecture(prof, opts, "k3");
    ASSERT_GT(k3.architecture.fourQubitBuses().size(), 0u);

    auto g0 = mapping::mapCircuit(circ, k0.architecture).total_gates;
    auto g3 = mapping::mapCircuit(circ, k3.architecture).total_gates;
    EXPECT_LT(double(g3), 1.05 * double(g0));

    double y0 = yield::estimateYield(k0.architecture, yopts).yield;
    double y3 = yield::estimateYield(k3.architecture, yopts).yield;
    EXPECT_GT(y0, y3);
}

} // namespace

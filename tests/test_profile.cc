/**
 * @file
 * Tests for the program profiler, anchored on the paper's Figure 4
 * worked example.
 */

#include <gtest/gtest.h>

#include "benchmarks/generators.hh"
#include "profile/coupling.hh"

namespace
{

using namespace qpad;
using profile::profileCircuit;

TEST(Profile, Figure4Example)
{
    auto prof = profileCircuit(benchmarks::profilingExample());
    ASSERT_EQ(prof.num_qubits, 5u);

    // Strength matrix of Figure 4 (c).
    EXPECT_EQ(prof.strength(0, 4), 2u);
    EXPECT_EQ(prof.strength(4, 0), 2u);
    EXPECT_EQ(prof.strength(0, 1), 1u);
    EXPECT_EQ(prof.strength(1, 4), 1u);
    EXPECT_EQ(prof.strength(2, 4), 1u);
    EXPECT_EQ(prof.strength(3, 4), 1u);
    EXPECT_EQ(prof.strength(0, 2), 0u);
    EXPECT_EQ(prof.strength(1, 2), 0u);

    // Coupling degrees of Figure 4 (d): q4=5, q0=3, q1=2, q2=1, q3=1.
    EXPECT_EQ(prof.degrees[4], 5u);
    EXPECT_EQ(prof.degrees[0], 3u);
    EXPECT_EQ(prof.degrees[1], 2u);
    EXPECT_EQ(prof.degrees[2], 1u);
    EXPECT_EQ(prof.degrees[3], 1u);

    // Degree list sorted descending, ties by id.
    ASSERT_EQ(prof.degree_list.size(), 5u);
    EXPECT_EQ(prof.degree_list[0], 4u);
    EXPECT_EQ(prof.degree_list[1], 0u);
    EXPECT_EQ(prof.degree_list[2], 1u);
    EXPECT_EQ(prof.degree_list[3], 2u);
    EXPECT_EQ(prof.degree_list[4], 3u);

    EXPECT_EQ(prof.total_two_qubit_gates, 6u);
}

TEST(Profile, IgnoresSingleQubitGatesAndMeasurement)
{
    circuit::Circuit c(2, 2);
    c.h(0);
    c.x(1);
    c.rz(0.3, 0);
    c.measure(0, 0);
    c.measure(1, 1);
    auto prof = profileCircuit(c);
    EXPECT_EQ(prof.total_two_qubit_gates, 0u);
    EXPECT_EQ(prof.degrees[0], 0u);
    EXPECT_EQ(prof.strength(0, 1), 0u);
}

TEST(Profile, SymmetricMatrix)
{
    auto prof = profileCircuit(benchmarks::qft(6));
    for (std::size_t i = 0; i < 6; ++i)
        for (std::size_t j = 0; j < 6; ++j)
            EXPECT_EQ(prof.strength(i, j), prof.strength(j, i));
}

TEST(Profile, DegreeIsRowSum)
{
    auto prof = profileCircuit(benchmarks::uccsdAnsatz(8));
    for (std::size_t q = 0; q < 8; ++q) {
        uint32_t sum = 0;
        for (std::size_t o = 0; o < 8; ++o)
            if (o != q)
                sum += prof.strength(q, o);
        EXPECT_EQ(prof.degrees[q], sum);
    }
}

TEST(Profile, DegreeSumIsTwiceGateCount)
{
    auto prof = profileCircuit(benchmarks::qft(8));
    uint64_t sum = 0;
    for (auto d : prof.degrees)
        sum += d;
    EXPECT_EQ(sum, 2 * prof.total_two_qubit_gates);
}

TEST(Profile, EdgesEnumeratesPositivePairs)
{
    auto prof = profileCircuit(benchmarks::profilingExample());
    auto edges = prof.edges();
    EXPECT_EQ(edges.size(), 5u); // 04, 01, 14, 24, 34
    for (auto [i, j] : edges) {
        EXPECT_LT(i, j);
        EXPECT_GT(prof.strength(i, j), 0u);
    }
}

TEST(Profile, ChainDetection)
{
    auto ising = profileCircuit(benchmarks::isingModel(10, 3));
    EXPECT_TRUE(ising.isChain());

    auto ghz = profileCircuit(benchmarks::ghz(6));
    EXPECT_TRUE(ghz.isChain());

    auto qft = profileCircuit(benchmarks::qft(4));
    EXPECT_FALSE(qft.isChain()); // complete graph

    auto star = profileCircuit(benchmarks::profilingExample());
    EXPECT_FALSE(star.isChain()); // q4 has degree 4
}

TEST(Profile, QftUniformPattern)
{
    // Every qubit pair in our QFT interacts exactly twice (the
    // controlled-phase lowering), the property Section 5.4.2 calls
    // out as the bus-selection worst case.
    auto prof = profileCircuit(benchmarks::qft(16));
    for (std::size_t i = 0; i < 16; ++i)
        for (std::size_t j = i + 1; j < 16; ++j)
            EXPECT_EQ(prof.strength(i, j), 2u);
}

TEST(Profile, UccsdChainDominantPattern)
{
    // Figure 5 (left): adjacent-index pairs dominate.
    auto prof = profileCircuit(benchmarks::uccsdAnsatz(8));
    uint64_t chain = 0, off_chain = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        for (std::size_t j = i + 1; j < 8; ++j) {
            if (j == i + 1)
                chain += prof.strength(i, j);
            else
                off_chain += prof.strength(i, j);
        }
    }
    EXPECT_GT(chain, 2 * off_chain);
}

TEST(Profile, StrengthTableRendersAllRows)
{
    auto prof = profileCircuit(benchmarks::ghz(3));
    std::string table = prof.strengthTable();
    EXPECT_NE(table.find("q0"), std::string::npos);
    EXPECT_NE(table.find("q2"), std::string::npos);
}

} // namespace

/**
 * @file
 * Cross-cutting property tests: structural invariants checked over
 * parameter sweeps (grid shapes, random circuits, random seeds)
 * rather than single examples.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "arch/architecture.hh"
#include "arch/ibm.hh"
#include "circuit/dag.hh"
#include "circuit/decompose.hh"
#include "common/rng.hh"
#include "design/design_flow.hh"
#include "mapping/sabre.hh"
#include "profile/coupling.hh"
#include "sim/statevector.hh"
#include "yield/yield_sim.hh"

namespace
{

using namespace qpad;
using arch::Architecture;
using arch::Layout;
using circuit::Circuit;
using circuit::Qubit;

// --------------------------------------------------------------------
// Architecture invariants over grid shapes
// --------------------------------------------------------------------

class GridParam
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(GridParam, EdgeCountFormula)
{
    auto [rows, cols] = GetParam();
    Architecture arch(Layout::grid(rows, cols));
    EXPECT_EQ(arch.numEdges(),
              std::size_t(rows * (cols - 1) + cols * (rows - 1)));
}

TEST_P(GridParam, DistancesAreAMetric)
{
    auto [rows, cols] = GetParam();
    Architecture arch(Layout::grid(rows, cols));
    const auto &d = arch.distances();
    const std::size_t n = arch.numQubits();
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(d(i, i), 0);
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            EXPECT_GE(d(i, j), 1);
            // On a lattice with unit edges, BFS distance equals
            // Manhattan distance.
            EXPECT_EQ(d(i, j),
                      arch::Coord::manhattan(arch.layout().coord(i),
                                             arch.layout().coord(j)));
            // Triangle inequality through a third vertex.
            for (std::size_t k = 0; k < n; k += 3)
                EXPECT_LE(d(i, j), d(i, k) + d(k, j));
        }
    }
}

TEST_P(GridParam, MaxBusesRespectProhibition)
{
    auto [rows, cols] = GetParam();
    Architecture arch(Layout::grid(rows, cols));
    arch::addMaxFourQubitBuses(arch);
    const auto &buses = arch.fourQubitBuses();
    for (std::size_t i = 0; i < buses.size(); ++i)
        for (std::size_t j = i + 1; j < buses.size(); ++j)
            EXPECT_GT(std::abs(buses[i].row - buses[j].row) +
                          std::abs(buses[i].col - buses[j].col),
                      1);
}

TEST_P(GridParam, BusesOnlyAddEdges)
{
    auto [rows, cols] = GetParam();
    Architecture plain(Layout::grid(rows, cols));
    Architecture bused(Layout::grid(rows, cols));
    arch::addMaxFourQubitBuses(bused);
    EXPECT_GE(bused.numEdges(), plain.numEdges());
    // Every lattice edge survives.
    for (auto [a, b] : plain.edges())
        EXPECT_TRUE(bused.connected(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GridParam,
    ::testing::Values(std::tuple{1, 2}, std::tuple{2, 2},
                      std::tuple{2, 8}, std::tuple{3, 3},
                      std::tuple{4, 5}, std::tuple{3, 7}),
    [](const auto &info) {
        return std::to_string(std::get<0>(info.param)) + "x" +
               std::to_string(std::get<1>(info.param));
    });

// --------------------------------------------------------------------
// Random-circuit invariants
// --------------------------------------------------------------------

Circuit
randomBasisCircuit(std::size_t n, std::size_t gates, uint64_t seed)
{
    Circuit c(n, n, "random");
    Rng rng(seed);
    for (std::size_t g = 0; g < gates; ++g) {
        if (rng.chance(0.4)) {
            c.rz(rng.uniform(0, 3.14), Qubit(rng.below(n)));
        } else {
            Qubit a = Qubit(rng.below(n));
            Qubit b = Qubit(rng.below(n));
            if (a != b)
                c.cx(a, b);
        }
    }
    return c;
}

class SeedParam : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SeedParam, ProfileDegreeSumInvariant)
{
    Circuit c = randomBasisCircuit(9, 150, GetParam());
    auto prof = profile::profileCircuit(c);
    uint64_t degree_sum = 0;
    for (auto d : prof.degrees)
        degree_sum += d;
    EXPECT_EQ(degree_sum, 2 * prof.total_two_qubit_gates);
    EXPECT_EQ(prof.total_two_qubit_gates, c.twoQubitGateCount());
    // Degree list is sorted descending.
    for (std::size_t i = 1; i < prof.degree_list.size(); ++i)
        EXPECT_GE(prof.degrees[prof.degree_list[i - 1]],
                  prof.degrees[prof.degree_list[i]]);
}

TEST_P(SeedParam, DagScheduleBoundsDepth)
{
    Circuit c = randomBasisCircuit(7, 120, GetParam() + 100);
    circuit::DependencyDag dag(c);
    // ASAP depth can never exceed the gate count and never be less
    // than the per-qubit serial bound.
    EXPECT_LE(dag.asapDepth(), c.size());
    std::vector<std::size_t> per_qubit(7, 0);
    for (const auto &g : c.gates())
        for (auto q : g.qubits)
            ++per_qubit[q];
    std::size_t serial = 0;
    for (auto p : per_qubit)
        serial = std::max(serial, p);
    EXPECT_GE(dag.asapDepth(), serial);
    EXPECT_EQ(dag.asapDepth(), c.depth());
}

TEST_P(SeedParam, MapperAccountingAndLegality)
{
    Circuit c = randomBasisCircuit(10, 200, GetParam() + 200);
    auto arch = arch::ibm16Q(GetParam() % 2 == 0);
    auto r = mapping::mapCircuit(c, arch);
    EXPECT_TRUE(mapping::respectsCoupling(r.mapped, arch));
    EXPECT_EQ(r.total_gates, c.unitaryGateCount() + 3 * r.swaps);
    // Initial and final mappings are injective.
    for (auto *m : {&r.initial_mapping, &r.final_mapping}) {
        std::vector<bool> seen(arch.numQubits(), false);
        for (auto p : *m) {
            EXPECT_FALSE(seen[p]);
            seen[p] = true;
        }
    }
}

TEST_P(SeedParam, MappedCircuitQuantumEquivalent)
{
    // Small widths so the state-vector check stays fast.
    Circuit c = randomBasisCircuit(5, 60, GetParam() + 300);
    Architecture arch(Layout::grid(2, 3), "grid2x3");
    auto r = mapping::mapCircuit(c, arch);

    auto extend = [&](const std::vector<arch::PhysQubit> &l2p) {
        std::vector<uint32_t> perm(arch.numQubits());
        std::vector<bool> used(arch.numQubits(), false);
        for (std::size_t l = 0; l < c.numQubits(); ++l) {
            perm[l] = l2p[l];
            used[l2p[l]] = true;
        }
        std::size_t next = 0;
        for (std::size_t l = c.numQubits(); l < arch.numQubits();
             ++l) {
            while (used[next])
                ++next;
            perm[l] = uint32_t(next);
            used[next] = true;
        }
        return perm;
    };

    sim::StateVector lhs(arch.numQubits());
    Circuit widened(arch.numQubits(), c.numClbits());
    widened.append(c);
    lhs.applyCircuit(widened);
    lhs = lhs.permuted(extend(r.final_mapping));

    sim::StateVector rhs(arch.numQubits());
    rhs = rhs.permuted(extend(r.initial_mapping)); // |0..0> invariant
    rhs.applyCircuit(r.mapped);

    EXPECT_NEAR(lhs.fidelity(rhs), 1.0, 1e-9);
}

TEST_P(SeedParam, YieldWithinBoundsAndSeedStable)
{
    auto arch = arch::ibm16Q(false);
    yield::YieldOptions opts;
    opts.trials = 800;
    opts.seed = GetParam();
    auto a = yield::estimateYield(arch, opts);
    auto b = yield::estimateYield(arch, opts);
    EXPECT_GE(a.yield, 0.0);
    EXPECT_LE(a.yield, 1.0);
    EXPECT_EQ(a.successes, b.successes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedParam,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --------------------------------------------------------------------
// Designed-architecture invariants over the paper suite knobs
// --------------------------------------------------------------------

class BusCountParam : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(BusCountParam, EffDesignRespectsBudget)
{
    auto circ = randomBasisCircuit(10, 250, 999);
    auto prof = profile::profileCircuit(circ);
    design::DesignFlowOptions opts;
    opts.max_buses = GetParam();
    opts.freq_scheme = design::FreqScheme::FiveFrequency;
    auto outcome = design::designArchitecture(prof, opts, "budget");
    EXPECT_LE(outcome.architecture.fourQubitBuses().size(),
              GetParam());
    EXPECT_TRUE(outcome.architecture.isConnectedGraph());
    auto mapped = mapping::mapCircuit(circ, outcome.architecture);
    EXPECT_TRUE(
        mapping::respectsCoupling(mapped.mapped, outcome.architecture));
}

INSTANTIATE_TEST_SUITE_P(Budgets, BusCountParam,
                         ::testing::Values(0u, 1u, 2u, 4u, 8u));

} // namespace

/**
 * @file
 * Tests for the simulated-annealing layout refiner (the instrument
 * behind the paper's "near-optimal heuristic" claim) and for the
 * extended benchmark suite.
 */

#include <gtest/gtest.h>

#include "arch/architecture.hh"
#include "benchmarks/functions.hh"
#include "benchmarks/suite.hh"
#include "circuit/decompose.hh"
#include "design/anneal.hh"
#include "profile/coupling.hh"
#include "revsynth/mct.hh"
#include "revsynth/synth.hh"

namespace
{

using namespace qpad;
using namespace qpad::design;

TEST(Anneal, NeverWorseThanStart)
{
    for (const char *name : {"UCCSD_ansatz_8", "dc1_220", "qft_16"}) {
        auto circ = benchmarks::getBenchmark(name).generate();
        auto prof = profile::profileCircuit(circ);
        auto start = designLayout(prof);
        AnnealOptions opts;
        opts.iterations = 5000;
        auto annealed = annealLayout(prof, start, opts);
        EXPECT_LE(annealed.final_cost, annealed.initial_cost) << name;
        EXPECT_EQ(annealed.initial_cost, start.placement_cost) << name;
    }
}

TEST(Anneal, ResultIsValidPlacement)
{
    auto circ = benchmarks::getBenchmark("cm152a_212").generate();
    auto prof = profile::profileCircuit(circ);
    auto start = designLayout(prof);
    auto annealed = annealLayout(prof, start, {});
    const auto &layout = annealed.layout.layout;
    ASSERT_EQ(layout.numQubits(), prof.num_qubits);
    // Consistent ids, normalized bounding box, contiguous chip.
    for (circuit::Qubit q = 0; q < prof.num_qubits; ++q)
        EXPECT_EQ(*layout.qubitAt(annealed.layout.coord_of_logical[q]),
                  q);
    EXPECT_EQ(layout.minRow(), 0);
    EXPECT_EQ(layout.minCol(), 0);
    arch::Architecture chip(layout);
    EXPECT_TRUE(chip.isConnectedGraph());
    // Reported cost must match the functional.
    EXPECT_EQ(annealed.final_cost,
              placementCost(prof, annealed.layout.coord_of_logical));
}

TEST(Anneal, DeterministicForEqualSeeds)
{
    auto circ = benchmarks::getBenchmark("z4_268").generate();
    auto prof = profile::profileCircuit(circ);
    auto start = designLayout(prof);
    AnnealOptions opts;
    opts.iterations = 3000;
    auto a = annealLayout(prof, start, opts);
    auto b = annealLayout(prof, start, opts);
    EXPECT_EQ(a.final_cost, b.final_cost);
    EXPECT_EQ(a.layout.coord_of_logical, b.layout.coord_of_logical);
}

TEST(Anneal, ChainPlacementIsAlreadyOptimal)
{
    // Algorithm 1 places chains perfectly; the annealer must not
    // find anything better.
    auto circ = benchmarks::getBenchmark("ising_model_16").generate();
    auto prof = profile::profileCircuit(circ);
    auto start = designLayout(prof);
    AnnealOptions opts;
    opts.iterations = 8000;
    auto annealed = annealLayout(prof, start, opts);
    EXPECT_EQ(annealed.final_cost, start.placement_cost);
}

TEST(ExtendedSuite, AllGenerateAtAdvertisedWidth)
{
    for (const auto &info : benchmarks::extendedSuite()) {
        auto circ = info.generate();
        EXPECT_EQ(circ.numQubits(), info.num_qubits) << info.name;
        EXPECT_TRUE(circuit::isInBasis(circ)) << info.name;
    }
}

TEST(ExtendedSuite, LookupIncludesExtended)
{
    EXPECT_TRUE(benchmarks::hasBenchmark("hwb7"));
    EXPECT_TRUE(benchmarks::hasBenchmark("mod5adder"));
    EXPECT_EQ(benchmarks::getBenchmark("majority7").num_qubits, 8u);
}

void
checkFunction(const revsynth::TruthTable &tt, std::size_t width)
{
    revsynth::SynthOptions opts;
    opts.total_qubits = width;
    opts.add_measurements = false;
    opts.lower_to_basis = false;
    auto result = revsynth::synthesize(tt, opts);
    const unsigned n = tt.numInputs();
    const unsigned m = tt.numOutputs();
    for (uint64_t x = 0; x < tt.numRows(); ++x) {
        uint64_t state =
            revsynth::simulateClassical(result.circuit, x);
        ASSERT_EQ(state & ((uint64_t{1} << n) - 1), x);
        ASSERT_EQ((state >> n) & ((uint64_t{1} << m) - 1), tt.row(x))
            << tt.name() << " x=" << x;
        ASSERT_EQ(state >> (n + m), 0u);
    }
}

TEST(ExtendedSuite, Hwb7Correct)
{
    checkFunction(qpad::benchmarks::hwb7Table(), 15);
}

TEST(ExtendedSuite, Majority7Correct)
{
    checkFunction(qpad::benchmarks::majority7Table(), 8);
}

TEST(ExtendedSuite, Graycode6Correct)
{
    checkFunction(qpad::benchmarks::graycode6Table(), 12);
}

TEST(ExtendedSuite, Mod5adderCorrect)
{
    checkFunction(qpad::benchmarks::mod5adderTable(), 10);
}

TEST(ExtendedSuite, Parity8IsPureCx)
{
    checkFunction(qpad::benchmarks::parity8Table(), 9);
    // Parity's PPRM is all degree-1 monomials: the circuit is CX
    // only (plus the measure when enabled).
    revsynth::SynthOptions opts;
    opts.total_qubits = 9;
    opts.add_measurements = false;
    auto r = revsynth::synthesize(qpad::benchmarks::parity8Table(),
                                  opts);
    EXPECT_EQ(r.circuit.twoQubitGateCount(), 8u);
    EXPECT_EQ(r.circuit.unitaryGateCount(), 8u);
}

} // namespace

/**
 * @file
 * qpad-lint self-tests: the lexer, the suppression parser, and every
 * rule, each driven on embedded good/bad snippets. The lint gate is
 * only trustworthy if each rule provably fires on known-bad code and
 * stays silent on known-good code — including the classic scanner
 * traps (violations quoted in comments, strings, and raw strings).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "config.hh"
#include "lexer.hh"
#include "rules.hh"

using qlint::Config;
using qlint::FileReport;
using qlint::Finding;
using qlint::LexResult;
using qlint::Tok;
using qlint::Token;

namespace
{

/** All rules on everywhere, with one sanctioned RNG helper. */
Config
testConfig()
{
    Config cfg = qlint::parseConfig(R"(
[lint]
roots = ["src"]
extensions = [".cc", ".hh"]

[rule.no-rand]
[rule.no-wallclock]
[rule.no-uninit]
[rule.rng-draw-site]
[rule.unordered-iter]
[rule.atomic-implicit-order]
[rule.atomic-relaxed]
[rule.metric-name]
[rule.rawlog]
[rule.raw-io]

[rng]
sanctioned = ["test.cc:sanctionedHelper"]

[wallclock]
sanctioned = ["test.cc:sanctionedNow"]
)");
    EXPECT_TRUE(cfg.ok) << cfg.error;
    return cfg;
}

FileReport
analyze(const std::string &src, const std::string &path = "test.cc")
{
    static const Config cfg = testConfig();
    return qlint::analyzeFile(path, src, cfg);
}

std::size_t
countRule(const FileReport &rep, const std::string &rule,
          bool suppressed_too = true)
{
    std::size_t n = 0;
    for (const Finding &f : rep.findings)
        if (f.rule == rule && (suppressed_too || !f.suppressed))
            ++n;
    return n;
}

std::size_t
unsuppressed(const FileReport &rep)
{
    std::size_t n = 0;
    for (const Finding &f : rep.findings)
        if (!f.suppressed)
            ++n;
    return n;
}

bool
hasIdent(const LexResult &lx, const std::string &text)
{
    return std::any_of(lx.tokens.begin(), lx.tokens.end(),
                       [&](const Token &t) {
                           return t.kind == Tok::kIdent &&
                                  t.text == text;
                       });
}

} // namespace

// --------------------------------------------------------------------
// Lexer
// --------------------------------------------------------------------

TEST(LintLexer, CommentsAreNotTokens)
{
    const LexResult lx =
        qlint::lex("int x = 0; // never call std::rand()\n"
                   "/* or time(nullptr) either */ int y = 1;\n");
    EXPECT_FALSE(hasIdent(lx, "rand"));
    EXPECT_FALSE(hasIdent(lx, "time"));
    EXPECT_TRUE(hasIdent(lx, "x"));
    EXPECT_TRUE(hasIdent(lx, "y"));
    ASSERT_EQ(lx.comments.size(), 2u);
    EXPECT_TRUE(lx.comments[0].code_before);
    EXPECT_NE(lx.comments[0].text.find("std::rand()"),
              std::string::npos);
}

TEST(LintLexer, BlockCommentSpansLines)
{
    const LexResult lx = qlint::lex("/* a\n b\n c */ int x;\n");
    ASSERT_EQ(lx.comments.size(), 1u);
    EXPECT_EQ(lx.comments[0].line, 1);
    EXPECT_EQ(lx.comments[0].end_line, 3);
    ASSERT_FALSE(lx.tokens.empty());
    EXPECT_EQ(lx.tokens[0].line, 3); // `int` starts on line 3
}

TEST(LintLexer, StringContentsAreOpaque)
{
    const LexResult lx =
        qlint::lex("const char *s = \"std::rand() \\\" time(0)\";\n");
    EXPECT_FALSE(hasIdent(lx, "rand"));
    EXPECT_FALSE(hasIdent(lx, "time"));
    const auto it = std::find_if(
        lx.tokens.begin(), lx.tokens.end(),
        [](const Token &t) { return t.kind == Tok::kString; });
    ASSERT_NE(it, lx.tokens.end());
    // Escapes are kept unprocessed; the escaped quote does not end
    // the literal.
    EXPECT_EQ(it->text, "std::rand() \\\" time(0)");
}

TEST(LintLexer, RawStringsWithCustomDelimiter)
{
    const LexResult lx = qlint::lex(
        "auto s = R\"xy(std::rand(); )\" still inside)xy\";\n"
        "auto t = u8R\"(time(nullptr))\";\n"
        "int z = 0;\n");
    EXPECT_FALSE(hasIdent(lx, "rand"));
    EXPECT_FALSE(hasIdent(lx, "time"));
    EXPECT_TRUE(hasIdent(lx, "z"));
    const auto it = std::find_if(
        lx.tokens.begin(), lx.tokens.end(),
        [](const Token &t) { return t.kind == Tok::kString; });
    ASSERT_NE(it, lx.tokens.end());
    // The fake `)"` inside does not terminate an R"xy( literal.
    EXPECT_EQ(it->text, "std::rand(); )\" still inside");
}

TEST(LintLexer, CharLiteralsAndCombinedPunct)
{
    const LexResult lx =
        qlint::lex("char c = '\\''; a->b; std::x;\n");
    const auto ch = std::find_if(
        lx.tokens.begin(), lx.tokens.end(),
        [](const Token &t) { return t.kind == Tok::kChar; });
    ASSERT_NE(ch, lx.tokens.end());
    EXPECT_EQ(ch->text, "\\'");
    const auto arrow = std::find_if(
        lx.tokens.begin(), lx.tokens.end(), [](const Token &t) {
            return t.kind == Tok::kPunct && t.text == "->";
        });
    EXPECT_NE(arrow, lx.tokens.end());
    const auto scope = std::find_if(
        lx.tokens.begin(), lx.tokens.end(), [](const Token &t) {
            return t.kind == Tok::kPunct && t.text == "::";
        });
    EXPECT_NE(scope, lx.tokens.end());
}

TEST(LintLexer, LineNumbersAreOneBased)
{
    const LexResult lx = qlint::lex("int a;\n\nint b;\n");
    ASSERT_GE(lx.tokens.size(), 6u);
    EXPECT_EQ(lx.tokens[0].line, 1);
    EXPECT_EQ(lx.tokens[3].line, 3); // `int` of b
}

// --------------------------------------------------------------------
// Config
// --------------------------------------------------------------------

TEST(LintConfig, ParsesSectionsAndMultiLineArrays)
{
    const Config cfg = qlint::parseConfig(R"(
[lint]
roots = ["src", "tests"]
extensions = [".cc",
              ".hh"]

[rule.no-rand]
include = ["src/"]
exclude = ["src/obs/"]

[rng]
sanctioned = ["a.cc:f",
              "b.cc:g"]
)");
    ASSERT_TRUE(cfg.ok) << cfg.error;
    EXPECT_EQ(cfg.roots, (std::vector<std::string>{"src", "tests"}));
    EXPECT_EQ(cfg.extensions,
              (std::vector<std::string>{".cc", ".hh"}));
    ASSERT_EQ(cfg.sanctioned.size(), 2u);
    EXPECT_TRUE(cfg.appliesTo("no-rand", "src/yield/x.cc"));
    EXPECT_FALSE(cfg.appliesTo("no-rand", "src/obs/trace.cc"));
    EXPECT_FALSE(cfg.appliesTo("no-rand", "bench/b.cc"));
    // No section for this rule: it runs nowhere.
    EXPECT_FALSE(cfg.appliesTo("no-wallclock", "src/yield/x.cc"));
}

TEST(LintConfig, EmptyRuleSectionAppliesEverywhere)
{
    const Config cfg = qlint::parseConfig(
        "[lint]\nroots = [\"src\"]\nextensions = [\".cc\"]\n"
        "[rule.no-rand]\n");
    ASSERT_TRUE(cfg.ok) << cfg.error;
    EXPECT_TRUE(cfg.appliesTo("no-rand", "src/a.cc"));
    EXPECT_TRUE(cfg.appliesTo("no-rand", "tests/t.cc"));
}

TEST(LintConfig, UnknownKeysFailLoudly)
{
    const Config cfg = qlint::parseConfig(
        "[lint]\nroots = [\"src\"]\nextensions = [\".cc\"]\n"
        "typo_key = [\"x\"]\n");
    EXPECT_FALSE(cfg.ok);
    EXPECT_FALSE(cfg.error.empty());
}

// --------------------------------------------------------------------
// Rules: determinism sources
// --------------------------------------------------------------------

TEST(LintNoRand, FiresOnAmbientEntropy)
{
    EXPECT_EQ(countRule(analyze("int x = std::rand();\n"), "no-rand"),
              1u);
    EXPECT_EQ(countRule(analyze("srand(42);\n"), "no-rand"), 1u);
    EXPECT_EQ(
        countRule(analyze("std::random_device rd;\n"), "no-rand"),
        1u);
}

TEST(LintNoRand, SilentOnMembersCommentsAndStrings)
{
    EXPECT_EQ(countRule(analyze("double v = dist.rand();\n"),
                        "no-rand"),
              0u);
    EXPECT_EQ(countRule(analyze("// std::rand() is banned\n"
                                "const char *s = \"rand()\";\n"),
                        "no-rand"),
              0u);
}

TEST(LintNoWallclock, FiresOnClockReads)
{
    EXPECT_EQ(countRule(analyze("auto t = steady_clock::now();\n"),
                        "no-wallclock"),
              1u);
    EXPECT_EQ(countRule(analyze("auto t = clock::now();\n"),
                        "no-wallclock"),
              1u);
    EXPECT_EQ(countRule(analyze("time_t t = time(nullptr);\n"),
                        "no-wallclock"),
              1u);
}

TEST(LintNoWallclock, SilentOnMembersAndOtherNames)
{
    EXPECT_EQ(countRule(analyze("double s = span.time();\n"),
                        "no-wallclock"),
              0u);
    EXPECT_EQ(countRule(analyze("auto x = timer();\n"),
                        "no-wallclock"),
              0u);
}

TEST(LintNoWallclock, SanctionedHelperIsSilent)
{
    // The [wallclock] allowlist mirrors the RNG one: clock reads in
    // "file:function" entries are policy, not findings. This is how
    // exec::now() (the deadline clock) passes the gate.
    const FileReport rep =
        analyze("std::int64_t sanctionedNow()\n"
                "{\n"
                "    return steady_clock::now().time_since_epoch()\n"
                "        .count();\n"
                "}\n");
    EXPECT_EQ(countRule(rep, "no-wallclock"), 0u);
}

TEST(LintNoWallclock, FiresOutsideSanctionedHelpers)
{
    // The identical read in any other function still fires — the
    // allowlist sanctions one helper, not the clock itself.
    const FileReport rep =
        analyze("std::int64_t rogueNow()\n"
                "{\n"
                "    return steady_clock::now().time_since_epoch()\n"
                "        .count();\n"
                "}\n");
    EXPECT_EQ(countRule(rep, "no-wallclock"), 1u);
}

TEST(LintNoWallclock, SanctionIsPerFileNotPerName)
{
    // Entries are "basename:function": the same function name in a
    // different file is NOT sanctioned.
    const FileReport rep = qlint::analyzeFile(
        "src/other.cc",
        "std::int64_t sanctionedNow()\n"
        "{\n"
        "    return steady_clock::now().time_since_epoch().count();\n"
        "}\n",
        testConfig());
    EXPECT_EQ(countRule(rep, "no-wallclock"), 1u);
}

TEST(LintNoUninit, FiresOnRawAllocations)
{
    EXPECT_EQ(countRule(analyze("void *p = malloc(16);\n"),
                        "no-uninit"),
              1u);
    EXPECT_EQ(countRule(analyze("double *a = new double[n];\n"),
                        "no-uninit"),
              1u);
    EXPECT_EQ(
        countRule(analyze("auto *a = new std::uint64_t[n];\n"),
                  "no-uninit"),
        1u);
}

TEST(LintNoUninit, SilentOnClassArraysAndContainers)
{
    EXPECT_EQ(countRule(analyze("auto *w = new Widget[n];\n"),
                        "no-uninit"),
              0u);
    EXPECT_EQ(countRule(analyze("std::vector<double> v(n);\n"),
                        "no-uninit"),
              0u);
    EXPECT_EQ(countRule(analyze("arena.malloc(16);\n"), "no-uninit"),
              0u);
}

// --------------------------------------------------------------------
// Rules: RNG discipline
// --------------------------------------------------------------------

TEST(LintRngDrawSite, SanctionedHelperIsSilent)
{
    const FileReport rep = analyze("double sanctionedHelper(Rng &r)\n"
                                   "{\n"
                                   "    return r.gaussian();\n"
                                   "}\n");
    EXPECT_EQ(countRule(rep, "rng-draw-site"), 0u);
}

TEST(LintRngDrawSite, FiresOutsideSanctionedHelpers)
{
    const FileReport rep = analyze("double rogue(Rng &r)\n"
                                   "{\n"
                                   "    return r.gaussian();\n"
                                   "}\n");
    ASSERT_EQ(countRule(rep, "rng-draw-site"), 1u);
    // The message names the offending enclosing function.
    for (const Finding &f : rep.findings)
        if (f.rule == "rng-draw-site") {
            EXPECT_NE(f.message.find("'rogue'"), std::string::npos);
        }
}

TEST(LintRngDrawSite, MemberFunctionsAndLambdasAttribute)
{
    // Out-of-line member definition: the key is the unqualified
    // name; a lambda inside it keeps the function's name.
    const FileReport rep =
        analyze("void Sim::sanctionedHelper(Rng &r)\n"
                "{\n"
                "    auto f = [&] { return r.next(); };\n"
                "    f();\n"
                "}\n");
    EXPECT_EQ(countRule(rep, "rng-draw-site"), 0u);
}

// --------------------------------------------------------------------
// Rules: iteration order
// --------------------------------------------------------------------

TEST(LintUnorderedIter, FiresOnRangeForAndBegin)
{
    const FileReport rep = analyze(
        "std::unordered_map<K, V> m;\n"
        "for (const auto &kv : m) use(kv);\n"
        "auto it = m.begin();\n");
    EXPECT_EQ(countRule(rep, "unordered-iter"), 2u);
}

TEST(LintUnorderedIter, SilentOnOrderedContainersAndLookups)
{
    const FileReport rep =
        analyze("std::map<K, V> m;\n"
                "std::unordered_set<K> s;\n"
                "for (const auto &kv : m) use(kv);\n"
                "if (s.count(k)) use(k);\n"
                "for (std::size_t i = 0; i < n; ++i) use(i);\n");
    EXPECT_EQ(countRule(rep, "unordered-iter"), 0u);
}

// --------------------------------------------------------------------
// Rules: atomics
// --------------------------------------------------------------------

TEST(LintAtomics, ImplicitOrderFires)
{
    EXPECT_EQ(countRule(analyze("auto v = flag.load();\n"),
                        "atomic-implicit-order"),
              1u);
    EXPECT_EQ(countRule(analyze("count.fetch_add(1);\n"),
                        "atomic-implicit-order"),
              1u);
}

TEST(LintAtomics, ExplicitOrderIsSilent)
{
    const FileReport rep = analyze(
        "auto v = flag.load(std::memory_order_acquire);\n"
        "count.fetch_add(1, std::memory_order_acq_rel);\n");
    EXPECT_EQ(countRule(rep, "atomic-implicit-order"), 0u);
    EXPECT_EQ(countRule(rep, "atomic-relaxed"), 0u);
}

TEST(LintAtomics, RelaxedNeedsJustification)
{
    EXPECT_EQ(
        countRule(
            analyze("n.fetch_add(1, std::memory_order_relaxed);\n"),
            "atomic-relaxed"),
        1u);
    // The C++20 scoped spelling counts too.
    EXPECT_EQ(
        countRule(
            analyze("n.fetch_add(1, std::memory_order::relaxed);\n"),
            "atomic-relaxed"),
        1u);
}

// --------------------------------------------------------------------
// Rules: metric names
// --------------------------------------------------------------------

TEST(LintMetricName, GrammarIsEnforced)
{
    EXPECT_TRUE(qlint::validMetricName("runtime.chunks"));
    EXPECT_TRUE(qlint::validMetricName("cache.disk.bytes_loaded"));
    EXPECT_FALSE(qlint::validMetricName("runtime"));   // no family dot
    EXPECT_FALSE(qlint::validMetricName("Runtime.c")); // upper case
    EXPECT_FALSE(qlint::validMetricName("a..b"));
    EXPECT_FALSE(qlint::validMetricName("a.b-c"));
}

TEST(LintMetricName, FiresOnBadRegistrations)
{
    EXPECT_EQ(countRule(analyze("QPAD_SPAN(\"noDotHere\");\n"),
                        "metric-name"),
              1u);
    EXPECT_EQ(countRule(analyze("obs::counter(dynamic_name);\n"),
                        "metric-name"),
              1u);
    EXPECT_EQ(
        countRule(analyze("obs::counter(\"design.anneals\");\n"),
                  "metric-name"),
        0u);
    // Unqualified counter() is someone else's function.
    EXPECT_EQ(countRule(analyze("counter(\"whatever\");\n"),
                        "metric-name"),
              0u);
}

// --------------------------------------------------------------------
// Rules: raw diagnostics
// --------------------------------------------------------------------

TEST(LintRawLog, FiresOnCerrAndStderrWriters)
{
    EXPECT_EQ(countRule(analyze("std::cerr << \"oops\\n\";\n"),
                        "rawlog"),
              1u);
    // Passing the stream into a writer is still a raw write.
    EXPECT_EQ(countRule(analyze("dump(std::cerr);\n"), "rawlog"), 1u);
    EXPECT_EQ(
        countRule(analyze("fprintf(stderr, \"x=%d\\n\", x);\n"),
                  "rawlog"),
        1u);
    EXPECT_EQ(countRule(analyze("std::fputs(\"msg\\n\", stderr);\n"),
                        "rawlog"),
              1u);
    EXPECT_EQ(countRule(
                  analyze("fwrite(buf, 1, len, stderr);\n"), "rawlog"),
              1u);
}

TEST(LintRawLog, SilentOnStdoutMembersCommentsAndStrings)
{
    EXPECT_EQ(
        countRule(analyze("std::fprintf(stdout, \"ok\\n\");\n"),
                  "rawlog"),
        0u);
    EXPECT_EQ(countRule(analyze("std::printf(\"ok\\n\");\n"),
                        "rawlog"),
              0u);
    EXPECT_EQ(countRule(analyze("fputs(\"msg\\n\", out);\n"),
                        "rawlog"),
              0u);
    // Member calls are someone else's fprintf.
    EXPECT_EQ(countRule(analyze("sink.fprintf(stderr_like);\n"),
                        "rawlog"),
              0u);
    EXPECT_EQ(
        countRule(analyze("// std::cerr << msg is banned here\n"
                          "const char *s = \"cerr\";\n"),
                  "rawlog"),
        0u);
}

TEST(LintRawLog, JustifiedSuppressionSilencesTheSite)
{
    const FileReport rep =
        analyze("std::cerr << line; // qpad-lint: allow(rawlog) "
                "\"the log sink itself\"\n");
    ASSERT_EQ(countRule(rep, "rawlog"), 1u);
    EXPECT_EQ(unsuppressed(rep), 0u);
}

// --------------------------------------------------------------------
// raw-io
// --------------------------------------------------------------------

TEST(LintRawIo, FiresOnRawFileCalls)
{
    EXPECT_EQ(countRule(analyze("FILE *f = fopen(p, \"ab\");\n"),
                        "raw-io"),
              1u);
    EXPECT_EQ(
        countRule(analyze("std::fwrite(buf, 1, n, f);\n"), "raw-io"),
        1u);
    EXPECT_EQ(countRule(analyze("std::fflush(f);\n"), "raw-io"), 1u);
    EXPECT_EQ(countRule(analyze("fsync(fileno(f));\n"), "raw-io"),
              1u);
    EXPECT_EQ(
        countRule(analyze("ftruncate(fd, off_t(end));\n"), "raw-io"),
        1u);
    EXPECT_EQ(countRule(analyze("flock(fd, LOCK_EX | LOCK_NB);\n"),
                        "raw-io"),
              1u);
    EXPECT_EQ(countRule(analyze("std::rename(from, to);\n"),
                        "raw-io"),
              1u);
    EXPECT_EQ(countRule(analyze("fs::resize_file(path, end, ec);\n"),
                        "raw-io"),
              1u);
}

TEST(LintRawIo, SilentOnShimsMembersCommentsAndStrings)
{
    // The fio shims themselves are differently named, so routing
    // through them is invisible to the rule.
    EXPECT_EQ(countRule(analyze("fault::fioWrite(\"cache.append\", "
                                "f, buf, n);\n"),
                        "raw-io"),
              0u);
    // Member calls are someone else's rename.
    EXPECT_EQ(countRule(analyze("registry.rename(a, b);\n"),
                        "raw-io"),
              0u);
    EXPECT_EQ(
        countRule(analyze("// fwrite is banned here\n"
                          "const char *s = \"fopen\";\n"),
                  "raw-io"),
        0u);
}

TEST(LintRawIo, JustifiedSuppressionSilencesTheSite)
{
    const FileReport rep =
        analyze("std::fflush(f); // qpad-lint: allow(raw-io) "
                "\"shutdown path outside the shim layer\"\n");
    ASSERT_EQ(countRule(rep, "raw-io"), 1u);
    EXPECT_EQ(unsuppressed(rep), 0u);
}

// --------------------------------------------------------------------
// Suppressions
// --------------------------------------------------------------------

TEST(LintSuppression, SameLineJustifiedSuppresses)
{
    const FileReport rep = analyze(
        "n.fetch_add(1, std::memory_order_relaxed); "
        "// qpad-lint: allow(atomic-relaxed) \"stat counter\"\n");
    ASSERT_EQ(countRule(rep, "atomic-relaxed"), 1u);
    EXPECT_EQ(unsuppressed(rep), 0u);
    for (const Finding &f : rep.findings)
        if (f.rule == "atomic-relaxed") {
            EXPECT_TRUE(f.suppressed);
            EXPECT_EQ(f.justification, "stat counter");
        }
}

TEST(LintSuppression, StandaloneCoversTheNextStatement)
{
    // The relaxed token sits on the statement's continuation line;
    // coverage must extend through the end of the statement.
    const FileReport rep = analyze(
        "// qpad-lint: allow(atomic-relaxed) \"stat counter\"\n"
        "n.fetch_add(1,\n"
        "            std::memory_order_relaxed);\n");
    ASSERT_EQ(countRule(rep, "atomic-relaxed"), 1u);
    EXPECT_EQ(unsuppressed(rep), 0u);
}

TEST(LintSuppression, WrappedJustificationMerges)
{
    const FileReport rep = analyze(
        "// qpad-lint: allow(atomic-relaxed) \"a justification\n"
        "// wrapped across comment lines\"\n"
        "n.fetch_add(1, std::memory_order_relaxed);\n");
    EXPECT_EQ(unsuppressed(rep), 0u);
    for (const Finding &f : rep.findings)
        if (f.rule == "atomic-relaxed") {
            EXPECT_EQ(f.justification,
                      "a justification wrapped across comment lines");
        }
}

TEST(LintSuppression, UnjustifiedDoesNotSuppress)
{
    const FileReport rep = analyze(
        "// qpad-lint: allow(atomic-relaxed)\n"
        "n.fetch_add(1, std::memory_order_relaxed);\n");
    // The original finding stays live AND the naked allow() is
    // itself a finding.
    EXPECT_EQ(countRule(rep, "atomic-relaxed", false), 1u);
    EXPECT_EQ(countRule(rep, "suppression-justification"), 1u);
}

TEST(LintSuppression, UnusedSuppressionIsAFinding)
{
    const FileReport rep = analyze(
        "// qpad-lint: allow(no-rand) \"stale\"\n"
        "int x = 0;\n");
    EXPECT_EQ(countRule(rep, "suppression-unused"), 1u);
}

TEST(LintSuppression, WrongRuleDoesNotSuppress)
{
    const FileReport rep = analyze(
        "// qpad-lint: allow(no-rand) \"wrong rule\"\n"
        "n.fetch_add(1, std::memory_order_relaxed);\n");
    EXPECT_EQ(countRule(rep, "atomic-relaxed", false), 1u);
    EXPECT_EQ(countRule(rep, "suppression-unused"), 1u);
}

// --------------------------------------------------------------------
// Per-path policy
// --------------------------------------------------------------------

TEST(LintPolicy, ExcludedPathsAreSilent)
{
    Config cfg = qlint::parseConfig(
        "[lint]\nroots = [\"src\"]\nextensions = [\".cc\"]\n"
        "[rule.no-rand]\ninclude = [\"src/\"]\n"
        "exclude = [\"src/legacy/\"]\n");
    ASSERT_TRUE(cfg.ok) << cfg.error;
    const std::string bad = "int x = std::rand();\n";
    EXPECT_EQ(qlint::analyzeFile("src/a.cc", bad, cfg)
                  .findings.size(),
              1u);
    EXPECT_TRUE(qlint::analyzeFile("src/legacy/a.cc", bad, cfg)
                    .findings.empty());
    EXPECT_TRUE(
        qlint::analyzeFile("bench/a.cc", bad, cfg).findings.empty());
}

// --------------------------------------------------------------------
// JSON output
// --------------------------------------------------------------------

TEST(LintJson, ShapeAndEscaping)
{
    std::vector<Finding> findings;
    findings.push_back(Finding{"src/a.cc", 3, "no-rand",
                               "say \"no\" to rand", false, ""});
    findings.push_back(Finding{"src/b.cc", 7, "atomic-relaxed",
                               "relaxed", true, "stat counter"});
    const std::string doc = qlint::renderJson(findings, 2, 1);

    EXPECT_NE(doc.find("\"findings\": ["), std::string::npos);
    EXPECT_NE(doc.find("\"file\":\"src/a.cc\""), std::string::npos);
    EXPECT_NE(doc.find("\"line\":3"), std::string::npos);
    // Quotes inside messages are escaped.
    EXPECT_NE(doc.find("say \\\"no\\\" to rand"), std::string::npos);
    EXPECT_NE(doc.find("\"suppressed\":false"), std::string::npos);
    EXPECT_NE(doc.find("\"justification\":\"stat counter\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"summary\": {\"files\":2,\"findings\":2,"
                       "\"unsuppressed\":1,\"suppressions\":1}"),
              std::string::npos);
}

// --------------------------------------------------------------------
// Enclosing-function tracking (directly)
// --------------------------------------------------------------------

TEST(LintScopes, TracksFunctionsInitListsAndLambdas)
{
    const LexResult lx = qlint::lex(
        "int g_marker0;\n"
        "void free_fn() { int marker1; }\n"
        "Foo::Foo(int x) : a_(x), b_{x} { int marker2; }\n"
        "void Foo::method()\n"
        "{\n"
        "    auto f = [] { int marker3; };\n"
        "}\n");
    const std::vector<std::string> fns =
        qlint::enclosingFunctions(lx.tokens);
    ASSERT_EQ(fns.size(), lx.tokens.size());
    for (std::size_t i = 0; i < lx.tokens.size(); ++i) {
        const std::string &t = lx.tokens[i].text;
        if (t == "g_marker0") {
            EXPECT_EQ(fns[i], "");
        } else if (t == "marker1") {
            EXPECT_EQ(fns[i], "free_fn");
        } else if (t == "marker2") {
            EXPECT_EQ(fns[i], "Foo");
        } else if (t == "marker3") {
            EXPECT_EQ(fns[i], "method");
        }
    }
}

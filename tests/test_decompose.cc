/**
 * @file
 * Tests for composite-gate lowering, including exhaustive classical
 * verification of the permutation gates (SWAP, CCX, CSWAP).
 */

#include <gtest/gtest.h>

#include "circuit/decompose.hh"
#include "revsynth/mct.hh"

namespace
{

using namespace qpad::circuit;
using qpad::revsynth::simulateClassical;

TEST(Decompose, IsInBasisDetectsComposites)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    EXPECT_TRUE(isInBasis(c));
    c.swap(1, 2);
    EXPECT_FALSE(isInBasis(c));
}

TEST(Decompose, OutputAlwaysInBasis)
{
    Circuit c(4, 4);
    c.cz(0, 1);
    c.cp(0.3, 1, 2);
    c.swap(2, 3);
    c.ccx(0, 1, 2);
    c.rzz(0.7, 0, 3);
    c.measure(0, 0);
    Circuit lowered = decompose(c);
    EXPECT_TRUE(isInBasis(lowered));
    // Measurement must survive lowering.
    EXPECT_EQ(lowered.countByKind()["measure"], 1u);
}

TEST(Decompose, CzUsesOneCx)
{
    Circuit c(2);
    c.cz(0, 1);
    Circuit lowered = decompose(c);
    EXPECT_EQ(lowered.twoQubitGateCount(), 1u);
    EXPECT_EQ(lowered.countByKind()["h"], 2u);
}

TEST(Decompose, CpUsesTwoCx)
{
    Circuit c(2);
    c.cp(0.5, 0, 1);
    Circuit lowered = decompose(c);
    EXPECT_EQ(lowered.twoQubitGateCount(), 2u);
}

TEST(Decompose, RzzUsesTwoCx)
{
    Circuit c(2);
    c.rzz(0.5, 0, 1);
    Circuit lowered = decompose(c);
    EXPECT_EQ(lowered.twoQubitGateCount(), 2u);
    EXPECT_EQ(lowered.countByKind()["rz"], 1u);
}

TEST(Decompose, SwapIsThreeCxAndCorrect)
{
    Circuit c(2);
    c.swap(0, 1);
    Circuit lowered = decompose(c);
    EXPECT_EQ(lowered.twoQubitGateCount(), 3u);
    EXPECT_EQ(lowered.unitaryGateCount(), 3u);
    for (uint64_t in = 0; in < 4; ++in) {
        uint64_t expect = ((in & 1) << 1) | ((in >> 1) & 1);
        EXPECT_EQ(simulateClassical(lowered, in), expect);
    }
}

TEST(Decompose, ToffoliCountsAndPhaseStructure)
{
    Circuit c(3);
    c.ccx(0, 1, 2);
    Circuit lowered = decompose(c);
    EXPECT_EQ(lowered.twoQubitGateCount(), 6u);
    auto by_kind = lowered.countByKind();
    EXPECT_EQ(by_kind["h"], 2u);
    EXPECT_EQ(by_kind["t"] + by_kind["tdg"], 7u);
}

// The T-gate Toffoli network is not classically simulable gate by
// gate, but the CCX gate itself is; verify the classical semantics
// at the pre-lowering level and the gate identity via a known
// algebraic check: CCX = H(t) CX.. network must map |110> -> |111>.
TEST(Decompose, ToffoliClassicalSemantics)
{
    Circuit c(3);
    c.ccx(0, 1, 2);
    for (uint64_t in = 0; in < 8; ++in) {
        uint64_t expect = in;
        if ((in & 3) == 3)
            expect ^= 4;
        EXPECT_EQ(simulateClassical(c, in), expect);
    }
}

TEST(Decompose, CswapClassicalSemanticsPreLowering)
{
    Circuit c(3);
    c.add(Gate(GateKind::CSWAP, {0, 1, 2}));
    Circuit partially(3);
    // Lower CSWAP only down to CCX (which simulateClassical knows).
    for (const auto &g : c.gates()) {
        if (g.kind == GateKind::CSWAP) {
            partially.cx(g.qubits[2], g.qubits[1]);
            partially.ccx(g.qubits[0], g.qubits[1], g.qubits[2]);
            partially.cx(g.qubits[2], g.qubits[1]);
        }
    }
    for (uint64_t in = 0; in < 8; ++in) {
        uint64_t expect = in;
        if (in & 1) {
            uint64_t b1 = (in >> 1) & 1, b2 = (in >> 2) & 1;
            expect = (in & 1) | (b2 << 1) | (b1 << 2);
        }
        EXPECT_EQ(simulateClassical(partially, in), expect);
    }
}

TEST(Decompose, SingleQubitGatesPassThrough)
{
    Circuit c(1);
    c.h(0);
    c.rz(1.25, 0);
    c.t(0);
    Circuit lowered = decompose(c);
    EXPECT_EQ(lowered.size(), 3u);
    EXPECT_TRUE(lowered == c);
}

TEST(Decompose, PreservesParameterValues)
{
    Circuit c(2);
    c.cp(0.75, 0, 1);
    Circuit lowered = decompose(c);
    double sum = 0.0;
    for (const auto &g : lowered.gates())
        if (g.kind == GateKind::RZ)
            sum += g.params[0];
    // cu1(theta) carries a total of theta/2 net rotation terms:
    // theta/2 + (-theta/2) + theta/2.
    EXPECT_NEAR(sum, 0.375, 1e-12);
}

} // namespace

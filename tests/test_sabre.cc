/**
 * @file
 * Tests for the SABRE mapper: coupling legality, gate-count
 * accounting, classical (permutation-level) semantic equivalence,
 * and behaviour on the paper's special cases.
 */

#include <gtest/gtest.h>

#include "arch/ibm.hh"
#include "benchmarks/generators.hh"
#include "benchmarks/suite.hh"
#include "common/rng.hh"
#include "design/design_flow.hh"
#include "mapping/sabre.hh"
#include "profile/coupling.hh"
#include "revsynth/mct.hh"

namespace
{

using namespace qpad;
using arch::Architecture;
using arch::Layout;
using circuit::Circuit;
using mapping::mapCircuit;
using mapping::MappingOptions;

TEST(Sabre, AdjacentGatesNeedNoSwaps)
{
    // A chain circuit on a path architecture with a perfect initial
    // mapping available: routing must find a zero-swap solution.
    Architecture path(Layout::grid(1, 4), "path4");
    Circuit c(4);
    c.cx(0, 1);
    c.cx(1, 2);
    c.cx(2, 3);
    auto r = mapCircuit(c, path);
    EXPECT_EQ(r.swaps, 0u);
    EXPECT_EQ(r.total_gates, 3u);
}

TEST(Sabre, DistantGateForcesSwaps)
{
    Architecture path(Layout::grid(1, 5), "path5");
    Circuit c(5);
    // Force interactions that no linear order satisfies: a 5-clique.
    for (circuit::Qubit i = 0; i < 5; ++i)
        for (circuit::Qubit j = i + 1; j < 5; ++j)
            c.cx(i, j);
    auto r = mapCircuit(c, path);
    EXPECT_GT(r.swaps, 0u);
    EXPECT_EQ(r.total_gates, 10u + 3 * r.swaps);
    EXPECT_TRUE(mapping::respectsCoupling(r.mapped, path));
}

TEST(Sabre, GateCountAccounting)
{
    auto circ = benchmarks::qft(8);
    auto arch = arch::ibm16Q(false);
    auto r = mapCircuit(circ, arch);
    EXPECT_EQ(r.total_gates,
              circ.unitaryGateCount() + 3 * r.swaps);
    EXPECT_EQ(r.two_qubit_gates,
              circ.twoQubitGateCount() + 3 * r.swaps);
}

TEST(Sabre, MeasurementsFollowFinalMapping)
{
    Circuit c(3, 3);
    c.cx(0, 2);
    c.measure(0, 0);
    c.measure(1, 1);
    c.measure(2, 2);
    Architecture path(Layout::grid(1, 3), "path3");
    auto r = mapCircuit(c, path);
    std::size_t measures = 0;
    for (const auto &g : r.mapped.gates()) {
        if (g.kind == circuit::GateKind::Measure) {
            EXPECT_EQ(g.qubits[0], r.final_mapping[g.clbit]);
            ++measures;
        }
    }
    EXPECT_EQ(measures, 3u);
}

TEST(Sabre, DeterministicForEqualSeeds)
{
    auto circ = benchmarks::qft(10);
    auto arch = arch::ibm16Q(true);
    auto a = mapCircuit(circ, arch);
    auto b = mapCircuit(circ, arch);
    EXPECT_EQ(a.swaps, b.swaps);
    EXPECT_EQ(a.initial_mapping, b.initial_mapping);
}

TEST(Sabre, SeedsProduceLegalAlternatives)
{
    auto circ = benchmarks::qft(10);
    auto arch = arch::ibm16Q(false);
    MappingOptions opts;
    opts.seed = 1;
    auto a = mapCircuit(circ, arch, opts);
    opts.seed = 2;
    auto b = mapCircuit(circ, arch, opts);
    // Different seeds explore different random starts; both must be
    // legal (they may or may not coincide after refinement).
    EXPECT_TRUE(mapping::respectsCoupling(a.mapped, arch));
    EXPECT_TRUE(mapping::respectsCoupling(b.mapped, arch));
}

TEST(Sabre, RejectsTooSmallChip)
{
    auto circ = benchmarks::qft(8);
    Architecture tiny(Layout::grid(2, 2), "tiny");
    EXPECT_THROW(mapCircuit(circ, tiny), std::logic_error);
}

TEST(Sabre, RejectsCompositeGates)
{
    Circuit c(3);
    c.swap(0, 1);
    Architecture path(Layout::grid(1, 3), "path3");
    EXPECT_THROW(mapCircuit(c, path), std::logic_error);
}

TEST(Sabre, RejectsDisconnectedArchitecture)
{
    Layout l;
    l.addQubit({0, 0});
    l.addQubit({0, 2});
    Architecture arch(l, "split");
    Circuit c(2);
    c.cx(0, 1);
    EXPECT_THROW(mapCircuit(c, arch), std::logic_error);
}

/**
 * Classical equivalence: for X/CX-only circuits the mapped circuit
 * must implement the same permutation of basis states, up to the
 * initial and final logical-to-physical relabelings.
 */
void
checkClassicalEquivalence(const Circuit &logical,
                          const Architecture &arch, uint64_t seed)
{
    auto r = mapCircuit(logical, arch);
    ASSERT_TRUE(mapping::respectsCoupling(r.mapped, arch));

    qpad::Rng rng(seed);
    for (int round = 0; round < 32; ++round) {
        uint64_t in = rng.next() &
                      ((uint64_t{1} << logical.numQubits()) - 1);
        uint64_t logical_out =
            revsynth::simulateClassical(logical, in);

        uint64_t phys_in = 0;
        for (std::size_t l = 0; l < logical.numQubits(); ++l)
            if (in >> l & 1)
                phys_in |= uint64_t{1} << r.initial_mapping[l];
        uint64_t phys_out =
            revsynth::simulateClassical(r.mapped, phys_in);

        for (std::size_t l = 0; l < logical.numQubits(); ++l)
            ASSERT_EQ((phys_out >> r.final_mapping[l]) & 1,
                      (logical_out >> l) & 1)
                << "round " << round << " logical qubit " << l;
    }
}

TEST(Sabre, ClassicalEquivalenceOnRandomCxCircuits)
{
    qpad::Rng rng(99);
    auto arch = arch::ibm16Q(true);
    for (int round = 0; round < 5; ++round) {
        Circuit c(12, 12, "random_cx");
        for (int g = 0; g < 150; ++g) {
            auto a = circuit::Qubit(rng.below(12));
            auto b = circuit::Qubit(rng.below(12));
            if (a == b)
                continue;
            if (rng.chance(0.2))
                c.x(a);
            c.cx(a, b);
        }
        checkClassicalEquivalence(c, arch, 1000 + round);
    }
}

TEST(Sabre, ClassicalEquivalenceOnCxFanout)
{
    // A pure X/CX fan-out circuit (classically simulable) routed on
    // a small grid.
    Circuit c(10, 10, "fanout");
    c.x(0);
    for (circuit::Qubit q = 0; q + 1 < 10; ++q)
        c.cx(q, q + 1);
    for (circuit::Qubit q = 0; q < 5; ++q)
        c.cx(q, 9 - q);
    Architecture arch(Layout::grid(2, 5), "grid2x5");
    checkClassicalEquivalence(c, arch, 7);
}

TEST(Sabre, MappedCircuitsOfAllBenchmarksAreLegal)
{
    auto arch = arch::ibm20Q(true);
    for (const auto &info : benchmarks::paperSuite()) {
        auto circ = info.generate();
        auto r = mapCircuit(circ, arch);
        EXPECT_TRUE(mapping::respectsCoupling(r.mapped, arch))
            << info.name;
        EXPECT_GE(r.total_gates, circ.unitaryGateCount()) << info.name;
    }
}

TEST(Sabre, DenserConnectivityNeedsFewerSwapsOnAverage)
{
    // Compare total swaps across the suite: the 20q chip with six
    // 4-qubit buses should not lose to the bare 20q chip in
    // aggregate (the headline hardware-design premise).
    auto plain = arch::ibm20Q(false);
    auto bused = arch::ibm20Q(true);
    std::size_t swaps_plain = 0, swaps_bused = 0;
    for (const char *name : {"qft_16", "misex1_241", "rd84_142"}) {
        auto circ = benchmarks::getBenchmark(name).generate();
        swaps_plain += mapCircuit(circ, plain).swaps;
        swaps_bused += mapCircuit(circ, bused).swaps;
    }
    EXPECT_LT(swaps_bused, swaps_plain);
}

TEST(Sabre, PerfectChainMappingForIsing)
{
    // Section 5.3.1: the chain program on its own designed layout
    // admits a perfect initial mapping with zero swaps.
    auto circ = benchmarks::isingModel(16, 3);
    auto prof = profile::profileCircuit(circ);
    design::DesignFlowOptions opts;
    opts.freq_scheme = design::FreqScheme::FiveFrequency;
    auto outcome = design::designArchitecture(prof, opts, "ising-chain");
    auto r = mapCircuit(circ, outcome.architecture);
    EXPECT_EQ(r.swaps, 0u);
}

} // namespace

/**
 * @file
 * Tests for the Section 6 extensions: auxiliary routing qubits,
 * temporal profiling, and architecture JSON serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "arch/ibm.hh"
#include "arch/serialize.hh"
#include "benchmarks/suite.hh"
#include "design/auxiliary.hh"
#include "design/design_flow.hh"
#include "mapping/sabre.hh"
#include "profile/temporal.hh"

namespace
{

using namespace qpad;

// --------------------------------------------------------------------
// Auxiliary qubits
// --------------------------------------------------------------------

TEST(Auxiliary, PreservesOriginalIds)
{
    auto circ = benchmarks::getBenchmark("misex1_241").generate();
    auto prof = profile::profileCircuit(circ);
    auto layout = design::designLayout(prof);
    auto aux = design::addAuxiliaryQubits(layout.layout, prof, 2);
    ASSERT_GE(aux.layout.numQubits(), layout.layout.numQubits());
    for (arch::PhysQubit q = 0; q < layout.layout.numQubits(); ++q)
        EXPECT_EQ(aux.layout.coord(q), layout.layout.coord(q));
    EXPECT_EQ(aux.layout.numQubits(),
              layout.layout.numQubits() + aux.added.size());
}

TEST(Auxiliary, StopsWhenNoShortcutExists)
{
    // A 2-qubit program: every coupled pair is already adjacent, so
    // no auxiliary qubit can shorten anything.
    circuit::Circuit c(2);
    c.cx(0, 1);
    auto prof = profile::profileCircuit(c);
    auto layout = design::designLayout(prof);
    auto aux = design::addAuxiliaryQubits(layout.layout, prof, 5);
    EXPECT_TRUE(aux.added.empty());
}

TEST(Auxiliary, ScoresAreDecreasingAndPositive)
{
    auto circ = benchmarks::getBenchmark("qft_16").generate();
    auto prof = profile::profileCircuit(circ);
    auto layout = design::designLayout(prof);
    auto aux = design::addAuxiliaryQubits(layout.layout, prof, 4);
    for (std::size_t i = 0; i < aux.scores.size(); ++i) {
        EXPECT_GT(aux.scores[i], 0u);
        if (i > 0) {
            EXPECT_LE(aux.scores[i], aux.scores[i - 1] * 2)
                << "scores should not explode between rounds";
        }
    }
}

TEST(Auxiliary, ExtendedChipStillMapsTheProgram)
{
    auto circ = benchmarks::getBenchmark("cm152a_212").generate();
    auto prof = profile::profileCircuit(circ);
    auto layout = design::designLayout(prof);
    auto aux = design::addAuxiliaryQubits(layout.layout, prof, 2);
    arch::Architecture chip(aux.layout, "with-aux");
    ASSERT_TRUE(chip.isConnectedGraph());
    auto mapped = mapping::mapCircuit(circ, chip);
    EXPECT_TRUE(mapping::respectsCoupling(mapped.mapped, chip));
}

// --------------------------------------------------------------------
// Temporal profiling
// --------------------------------------------------------------------

TEST(Temporal, WindowsPartitionTheGates)
{
    auto circ = benchmarks::getBenchmark("UCCSD_ansatz_8").generate();
    auto prof = profile::profileTemporal(circ, 8);
    std::size_t total = 0;
    for (const auto &w : prof.windows)
        total += w.two_qubit_gates;
    EXPECT_EQ(total, circ.twoQubitGateCount());
    EXPECT_LE(prof.windows.size(), 8u);
}

TEST(Temporal, DecayOneMatchesPlainProfileShape)
{
    auto circ = benchmarks::getBenchmark("sym6_145").generate();
    auto plain = profile::profileCircuit(circ);
    auto weighted = profile::profileTemporal(circ, 8).weighted(1.0, 1);
    ASSERT_EQ(weighted.num_qubits, plain.num_qubits);
    for (std::size_t i = 0; i < plain.num_qubits; ++i)
        for (std::size_t j = i + 1; j < plain.num_qubits; ++j)
            EXPECT_EQ(weighted.strength(i, j), plain.strength(i, j));
    EXPECT_EQ(weighted.degree_list, plain.degree_list);
}

TEST(Temporal, DecayEmphasizesEarlyWindows)
{
    // A circuit whose early half couples (0,1) and late half (2,3):
    // with strong decay the (0,1) pair must dominate the weighted
    // profile even though both pairs have equal raw counts.
    circuit::Circuit c(4);
    for (int k = 0; k < 10; ++k)
        c.cx(0, 1);
    for (int k = 0; k < 10; ++k)
        c.cx(2, 3);
    auto temporal = profile::profileTemporal(c, 4);
    auto weighted = temporal.weighted(0.25, 64);
    EXPECT_GT(weighted.strength(0, 1), weighted.strength(2, 3));
}

TEST(Temporal, PairReuseExtremes)
{
    // Static coupling: one pair used in every window -> high reuse.
    circuit::Circuit stat(2);
    for (int k = 0; k < 32; ++k)
        stat.cx(0, 1);
    EXPECT_GT(profile::profileTemporal(stat, 8).pairReuse(), 0.8);

    // Rotating coupling: a fresh pair per window -> zero reuse.
    circuit::Circuit rot(16);
    for (circuit::Qubit q = 0; q + 1 < 16; q += 2)
        rot.cx(q, q + 1);
    EXPECT_DOUBLE_EQ(profile::profileTemporal(rot, 8).pairReuse(), 0.0);
}

TEST(Temporal, EmptyCircuitIsHandled)
{
    circuit::Circuit c(3);
    auto prof = profile::profileTemporal(c, 4);
    EXPECT_EQ(prof.pairReuse(), 0.0);
    auto weighted = prof.weighted(0.5);
    EXPECT_EQ(weighted.total_two_qubit_gates, 0u);
}

// --------------------------------------------------------------------
// Serialization
// --------------------------------------------------------------------

TEST(Serialize, RoundTripPreservesEverything)
{
    auto original = arch::ibm20Q(true);
    auto restored = arch::fromJson(arch::toJson(original));
    EXPECT_EQ(restored.name(), original.name());
    ASSERT_EQ(restored.numQubits(), original.numQubits());
    for (arch::PhysQubit q = 0; q < original.numQubits(); ++q) {
        EXPECT_EQ(restored.layout().coord(q),
                  original.layout().coord(q));
        EXPECT_DOUBLE_EQ(restored.frequency(q), original.frequency(q));
    }
    EXPECT_EQ(restored.fourQubitBuses(), original.fourQubitBuses());
    EXPECT_EQ(restored.edges(), original.edges());
}

TEST(Serialize, RoundTripWithoutFrequencies)
{
    arch::Architecture original(arch::Layout::grid(2, 3), "bare");
    auto restored = arch::fromJson(arch::toJson(original));
    EXPECT_FALSE(restored.frequenciesAssigned());
    EXPECT_EQ(restored.numEdges(), original.numEdges());
}

TEST(Serialize, FileRoundTrip)
{
    auto original = arch::ibm16Q(true);
    const std::string path = "/tmp/qpad_test_arch.json";
    arch::saveArchitecture(original, path);
    auto restored = arch::loadArchitecture(path);
    EXPECT_EQ(restored.numEdges(), original.numEdges());
    std::remove(path.c_str());
}

TEST(Serialize, RejectsMalformedInput)
{
    EXPECT_THROW(arch::fromJson("{"), std::runtime_error);
    EXPECT_THROW(arch::fromJson("{\"zork\": 1}"), std::runtime_error);
    EXPECT_THROW(
        arch::fromJson(R"({"name":"x","qubits":[
            {"id":0,"row":0,"col":0},{"id":2,"row":0,"col":1}],
            "four_qubit_buses":[]})"),
        std::runtime_error); // non-dense ids
}

TEST(Serialize, RejectsNonFiniteAndGarbageNumbers)
{
    // Frequencies feed the cache fingerprint: every accepted number
    // must be a well-defined finite double.
    auto arch_json = [](const std::string &freqs) {
        return R"({"name":"x","qubits":[{"id":0,"row":0,"col":0}],
                   "four_qubit_buses":[],"frequencies_ghz":[)" +
               freqs + "]}";
    };
    // Overflow to +/-infinity.
    EXPECT_THROW(arch::fromJson(arch_json("1e999")),
                 std::runtime_error);
    EXPECT_THROW(arch::fromJson(arch_json("-1e999")),
                 std::runtime_error);
    // NaN / inf literals are not numbers in this schema.
    EXPECT_THROW(arch::fromJson(arch_json("nan")), std::runtime_error);
    EXPECT_THROW(arch::fromJson(arch_json("inf")), std::runtime_error);
    // Trailing garbage drawn from the numeric character set.
    EXPECT_THROW(arch::fromJson(arch_json("5.0.1")),
                 std::runtime_error);
    EXPECT_THROW(arch::fromJson(arch_json("5.0e")),
                 std::runtime_error);
    EXPECT_THROW(arch::fromJson(arch_json("--5")), std::runtime_error);
    // The error names the offending token and its offset.
    try {
        arch::fromJson(arch_json("1e999"));
        FAIL() << "expected fromJson to reject 1e999";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("1e999"), std::string::npos) << what;
        EXPECT_NE(what.find("offset"), std::string::npos) << what;
    }
}

TEST(Serialize, RejectsConstraintViolations)
{
    // Two buses on adjacent squares violate the prohibited condition
    // and must be rejected at load time.
    const char *bad = R"({
      "name": "bad",
      "qubits": [
        {"id":0,"row":0,"col":0},{"id":1,"row":0,"col":1},
        {"id":2,"row":0,"col":2},{"id":3,"row":1,"col":0},
        {"id":4,"row":1,"col":1},{"id":5,"row":1,"col":2}],
      "four_qubit_buses": [{"row":0,"col":0},{"row":0,"col":1}]
    })";
    EXPECT_THROW(arch::fromJson(bad), std::runtime_error);
}

TEST(Serialize, MissingFileFatal)
{
    EXPECT_THROW(arch::loadArchitecture("/nonexistent/a.json"),
                 std::runtime_error);
}

} // namespace

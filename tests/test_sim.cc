/**
 * @file
 * State-vector simulator tests, plus quantum-equivalence checks of
 * the composite-gate lowering, the synthesized Toffoli networks and
 * the SABRE mapper (up-to-permutation).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "arch/architecture.hh"
#include "benchmarks/generators.hh"
#include "circuit/decompose.hh"
#include "common/rng.hh"
#include "mapping/sabre.hh"
#include "revsynth/synth.hh"
#include "revsynth/truth_table.hh"
#include "sim/statevector.hh"

namespace
{

using namespace qpad;
using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using sim::StateVector;

constexpr double kTol = 1e-9;

TEST(StateVector, InitialStateIsZeroKet)
{
    StateVector sv(3);
    EXPECT_NEAR(std::abs(sv.amp(0)), 1.0, kTol);
    EXPECT_NEAR(sv.norm(), 1.0, kTol);
    EXPECT_NEAR(sv.probabilityOne(0), 0.0, kTol);
}

TEST(StateVector, XFlipsBasisState)
{
    StateVector sv(2);
    sv.apply(Gate(GateKind::X, {1}));
    EXPECT_NEAR(std::abs(sv.amp(0b10)), 1.0, kTol);
    EXPECT_NEAR(sv.probabilityOne(1), 1.0, kTol);
}

TEST(StateVector, HadamardSuperposesAndInverts)
{
    StateVector sv(1);
    sv.apply(Gate(GateKind::H, {0}));
    EXPECT_NEAR(std::abs(sv.amp(0)), 1.0 / std::sqrt(2.0), kTol);
    EXPECT_NEAR(sv.probabilityOne(0), 0.5, kTol);
    sv.apply(Gate(GateKind::H, {0}));
    EXPECT_NEAR(std::abs(sv.amp(0)), 1.0, kTol);
}

TEST(StateVector, BellStateFromHCx)
{
    StateVector sv(2);
    sv.apply(Gate(GateKind::H, {0}));
    sv.apply(Gate(GateKind::CX, {0, 1}));
    EXPECT_NEAR(std::norm(sv.amp(0b00)), 0.5, kTol);
    EXPECT_NEAR(std::norm(sv.amp(0b11)), 0.5, kTol);
    EXPECT_NEAR(std::norm(sv.amp(0b01)), 0.0, kTol);
}

TEST(StateVector, RandomStateIsNormalized)
{
    auto sv = StateVector::random(6, 42);
    EXPECT_NEAR(sv.norm(), 1.0, kTol);
    auto sv2 = StateVector::random(6, 42);
    EXPECT_NEAR(sv.fidelity(sv2), 1.0, kTol);
    auto sv3 = StateVector::random(6, 43);
    EXPECT_LT(sv.fidelity(sv3), 0.5);
}

TEST(StateVector, PermutationRelabelsQubits)
{
    StateVector sv = StateVector::basis(3, 0b001);
    auto moved = sv.permuted({2, 0, 1}); // qubit0 -> position2
    EXPECT_NEAR(std::abs(moved.amp(0b100)), 1.0, kTol);
}

TEST(StateVector, RejectsMeasurement)
{
    StateVector sv(1);
    Gate g(GateKind::Measure, {0});
    EXPECT_THROW(sv.apply(g), std::logic_error);
}

TEST(StateVector, UnitarityOfEveryOneQubitKind)
{
    using K = GateKind;
    for (K kind : {K::I, K::X, K::Y, K::Z, K::H, K::S, K::Sdg, K::T,
                   K::Tdg, K::SX, K::SXdg}) {
        auto sv = StateVector::random(3, 7);
        sv.apply(Gate(kind, {1}));
        EXPECT_NEAR(sv.norm(), 1.0, kTol) << gateKindName(kind);
    }
    for (K kind : {K::RX, K::RY, K::RZ, K::P}) {
        auto sv = StateVector::random(3, 8);
        sv.apply(Gate(kind, {2}, {0.731}));
        EXPECT_NEAR(sv.norm(), 1.0, kTol) << gateKindName(kind);
    }
}

// --------------------------------------------------------------------
// Quantum equivalence of the composite-gate lowering
// --------------------------------------------------------------------

void
checkLoweringEquivalence(const Gate &gate, std::size_t width,
                         uint64_t seed)
{
    Circuit composite(width);
    composite.add(gate);
    Circuit lowered = circuit::decompose(composite);

    auto a = StateVector::random(width, seed);
    auto b = a;
    a.applyCircuit(composite);
    b.applyCircuit(lowered);
    EXPECT_NEAR(a.fidelity(b), 1.0, 1e-9) << gate.str();
}

TEST(Lowering, CzEquivalent)
{
    checkLoweringEquivalence(Gate(GateKind::CZ, {0, 2}), 3, 11);
}

TEST(Lowering, CpEquivalent)
{
    checkLoweringEquivalence(Gate(GateKind::CP, {1, 0}, {0.413}), 3,
                             12);
}

TEST(Lowering, CrzEquivalent)
{
    checkLoweringEquivalence(Gate(GateKind::CRZ, {0, 1}, {1.17}), 2,
                             13);
}

TEST(Lowering, RzzEquivalent)
{
    checkLoweringEquivalence(Gate(GateKind::RZZ, {0, 1}, {0.77}), 2,
                             14);
}

TEST(Lowering, SwapEquivalent)
{
    checkLoweringEquivalence(Gate(GateKind::SWAP, {0, 2}), 3, 15);
}

TEST(Lowering, ToffoliEquivalent)
{
    checkLoweringEquivalence(Gate(GateKind::CCX, {0, 1, 2}), 3, 16);
}

TEST(Lowering, CswapEquivalent)
{
    checkLoweringEquivalence(Gate(GateKind::CSWAP, {0, 1, 2}), 3, 17);
}

// --------------------------------------------------------------------
// QFT correctness against the DFT definition
// --------------------------------------------------------------------

TEST(Qft, MatchesDiscreteFourierTransform)
{
    const std::size_t n = 4;
    const std::size_t dim = 1 << n;
    for (uint64_t x : {uint64_t(0), uint64_t(5), uint64_t(13)}) {
        auto sv = StateVector::basis(n, x);
        sv.applyCircuit(benchmarks::qft(n, false));
        // Our QFT omits the final reversal swaps (amplitude of basis
        // state k carries the phase of the bit-reversed index) and
        // the RZ-based CP lowering adds a global phase, so compare
        // via the overlap, not amplitude by amplitude.
        // The circuit treats qubit 0 as the textbook MSB, so with
        // our LSB-first indices the input enters bit-reversed.
        uint64_t x_rev = 0;
        for (std::size_t b = 0; b < n; ++b)
            if (x >> b & 1)
                x_rev |= uint64_t{1} << (n - 1 - b);
        std::complex<double> overlap{0.0, 0.0};
        for (uint64_t k = 0; k < dim; ++k) {
            double phase = 2.0 * std::numbers::pi * double(x_rev * k) / double(dim);
            std::complex<double> expect =
                std::exp(std::complex<double>(0, phase)) /
                std::sqrt(double(dim));
            overlap += std::conj(expect) * sv.amp(k);
        }
        EXPECT_NEAR(std::abs(overlap), 1.0, 1e-9) << "x=" << x;
    }
}

// --------------------------------------------------------------------
// Synthesized circuits: full quantum check of the T-gate networks
// --------------------------------------------------------------------

TEST(Synthesis, LoweredNetworkActsCorrectlyOnBasisStates)
{
    // 3-input majority: small enough to simulate the fully lowered
    // {1q, CX} circuit (T-gate Toffolis included) on every input.
    auto tt = revsynth::TruthTable::fromFunction(3, 1, [](uint64_t x) {
        int w = int(x & 1) + int(x >> 1 & 1) + int(x >> 2 & 1);
        return uint64_t(w >= 2);
    }, "maj3");
    revsynth::SynthOptions opts;
    opts.total_qubits = 5;
    opts.add_measurements = false;
    auto synth = revsynth::synthesize(tt, opts);

    for (uint64_t x = 0; x < 8; ++x) {
        auto sv = StateVector::basis(5, x);
        sv.applyCircuit(synth.circuit);
        uint64_t expect = x | (tt.output(x, 0) ? 8u : 0u);
        EXPECT_NEAR(std::norm(sv.amp(expect)), 1.0, 1e-9) << x;
    }
}

// --------------------------------------------------------------------
// Mapper: quantum equivalence up to the qubit relabeling
// --------------------------------------------------------------------

void
checkMappedEquivalence(const Circuit &logical,
                       const arch::Architecture &arch, uint64_t seed)
{
    auto result = mapping::mapCircuit(logical, arch);
    const std::size_t n_phys = arch.numQubits();
    const std::size_t n_logical = logical.numQubits();

    // Extend an l2p map over the logical qubits to a permutation of
    // the whole chip: spare (all-|0>) wires absorb the remaining
    // physical positions in id order.
    auto extend = [&](const std::vector<arch::PhysQubit> &map_l2p) {
        std::vector<uint32_t> perm(n_phys);
        std::vector<bool> used(n_phys, false);
        for (std::size_t l = 0; l < n_logical; ++l) {
            perm[l] = map_l2p[l];
            used[map_l2p[l]] = true;
        }
        std::size_t next = 0;
        for (std::size_t l = n_logical; l < n_phys; ++l) {
            while (used[next])
                ++next;
            perm[l] = uint32_t(next);
            used[next] = true;
        }
        return perm;
    };

    // Prepare a pseudo-random entangled state on the low n_logical
    // qubits of a chip-sized register (spare qubits stay |0>).
    StateVector prepared(n_phys);
    {
        Circuit stub(n_phys);
        Rng rng(seed);
        for (int layer = 0; layer < 3; ++layer) {
            for (std::size_t q = 0; q < n_logical; ++q) {
                stub.ry(rng.uniform(0, std::numbers::pi), circuit::Qubit(q));
                stub.rz(rng.uniform(0, std::numbers::pi), circuit::Qubit(q));
            }
            for (std::size_t q = 0; q + 1 < n_logical; q += 2)
                stub.cx(circuit::Qubit(q), circuit::Qubit(q + 1));
        }
        prepared.applyCircuit(stub);
    }

    // Left side: logical circuit on the prepared state, relabeled by
    // the final mapping afterwards.
    StateVector lhs = prepared;
    Circuit widened_logical(n_phys, logical.numClbits());
    widened_logical.append(logical);
    lhs.applyCircuit(widened_logical);
    lhs = lhs.permuted(extend(result.final_mapping));

    // Right side: relabel by the initial mapping first, then run the
    // physical (mapped) circuit.
    StateVector rhs = prepared.permuted(extend(result.initial_mapping));
    rhs.applyCircuit(result.mapped);

    EXPECT_NEAR(lhs.fidelity(rhs), 1.0, 1e-9);
}

TEST(MappedEquivalence, GhzOnGrid)
{
    arch::Architecture arch(arch::Layout::grid(2, 3), "grid2x3");
    checkMappedEquivalence(benchmarks::ghz(5, false), arch, 21);
}

TEST(MappedEquivalence, QftOnGrid)
{
    arch::Architecture arch(arch::Layout::grid(2, 4), "grid2x4");
    checkMappedEquivalence(benchmarks::qft(6, false), arch, 22);
}

TEST(MappedEquivalence, UccsdOnBusedChip)
{
    arch::Architecture arch(arch::Layout::grid(2, 4), "grid2x4b");
    arch.addFourQubitBus({0, 0});
    arch.addFourQubitBus({0, 2});
    checkMappedEquivalence(benchmarks::uccsdAnsatz(8, false), arch, 23);
}

} // namespace

/**
 * @file
 * Tests for the reversible-synthesis substrate: truth tables, PPRM
 * extraction, MCT decomposition (exhaustive classical equivalence),
 * and end-to-end synthesis of the named benchmark functions.
 */

#include <gtest/gtest.h>

#include <bit>

#include "benchmarks/functions.hh"
#include "circuit/decompose.hh"
#include "common/rng.hh"
#include "revsynth/mct.hh"
#include "revsynth/pprm.hh"
#include "revsynth/synth.hh"
#include "revsynth/truth_table.hh"

namespace
{

using namespace qpad;
using namespace qpad::revsynth;

// --------------------------------------------------------------------
// TruthTable
// --------------------------------------------------------------------

TEST(TruthTable, FromFunctionAndAccessors)
{
    auto tt = TruthTable::fromFunction(3, 2, [](uint64_t x) {
        return (x & 1) | ((x >> 1) & 2);
    }, "probe");
    EXPECT_EQ(tt.numInputs(), 3u);
    EXPECT_EQ(tt.numOutputs(), 2u);
    EXPECT_EQ(tt.numRows(), 8u);
    EXPECT_TRUE(tt.output(1, 0));
    EXPECT_FALSE(tt.output(0, 0));
    EXPECT_TRUE(tt.output(4, 1));
}

TEST(TruthTable, SetOutputTogglesBits)
{
    TruthTable tt(2, 3);
    tt.setOutput(2, 1, true);
    EXPECT_TRUE(tt.output(2, 1));
    EXPECT_FALSE(tt.output(2, 0));
    tt.setOutput(2, 1, false);
    EXPECT_FALSE(tt.output(2, 1));
}

TEST(TruthTable, OnSetSize)
{
    auto parity = TruthTable::fromFunction(4, 1, [](uint64_t x) {
        return uint64_t(std::popcount(x) & 1);
    });
    EXPECT_EQ(parity.onSetSize(0), 8u);
}

TEST(TruthTable, OutputMaskApplied)
{
    auto tt = TruthTable::fromFunction(2, 2,
                                       [](uint64_t) { return 0xffu; });
    EXPECT_EQ(tt.row(0), 3u);
}

// --------------------------------------------------------------------
// PPRM
// --------------------------------------------------------------------

TEST(Pprm, ConstantZeroHasNoMonomials)
{
    TruthTable tt(3, 1);
    Pprm p = computePprm(tt, 0);
    EXPECT_TRUE(p.monomials.empty());
    EXPECT_EQ(p.maxDegree(), 0u);
}

TEST(Pprm, ConstantOneIsEmptyMonomial)
{
    auto tt = TruthTable::fromFunction(2, 1,
                                       [](uint64_t) { return 1u; });
    Pprm p = computePprm(tt, 0);
    ASSERT_EQ(p.monomials.size(), 1u);
    EXPECT_EQ(p.monomials[0], 0u);
}

TEST(Pprm, ParityIsAllSingletons)
{
    auto tt = TruthTable::fromFunction(4, 1, [](uint64_t x) {
        return uint64_t(std::popcount(x) & 1);
    });
    Pprm p = computePprm(tt, 0);
    ASSERT_EQ(p.monomials.size(), 4u);
    for (uint64_t m : p.monomials)
        EXPECT_EQ(std::popcount(m), 1);
    EXPECT_EQ(p.maxDegree(), 1u);
}

TEST(Pprm, AndIsSingleFullMonomial)
{
    auto tt = TruthTable::fromFunction(3, 1, [](uint64_t x) {
        return uint64_t(x == 7);
    });
    Pprm p = computePprm(tt, 0);
    ASSERT_EQ(p.monomials.size(), 1u);
    EXPECT_EQ(p.monomials[0], 7u);
}

TEST(Pprm, EvalMatchesTableExhaustivelyOnRandomFunctions)
{
    Rng rng(2024);
    for (int round = 0; round < 20; ++round) {
        unsigned n = 2 + round % 5; // 2..6 inputs
        auto tt = TruthTable::fromFunction(n, 1, [&](uint64_t) {
            return uint64_t(rng.chance(0.5));
        });
        Pprm p = computePprm(tt, 0);
        for (uint64_t x = 0; x < (uint64_t{1} << n); ++x)
            ASSERT_EQ(p.eval(x), tt.output(x, 0))
                << "round " << round << " x=" << x;
    }
}

TEST(Pprm, AllOutputsComputed)
{
    auto tt = TruthTable::fromFunction(3, 3, [](uint64_t x) {
        return x ^ (x >> 1);
    });
    auto all = computeAllPprms(tt);
    ASSERT_EQ(all.size(), 3u);
    for (unsigned j = 0; j < 3; ++j)
        for (uint64_t x = 0; x < 8; ++x)
            ASSERT_EQ(all[j].eval(x), tt.output(x, j));
}

// --------------------------------------------------------------------
// MCT decomposition
// --------------------------------------------------------------------

/** Reference semantics of one MCT on a basis state. */
uint64_t
applyMctRef(const MctGate &g, uint64_t state)
{
    for (auto c : g.controls)
        if (!(state >> c & 1))
            return state;
    return state ^ (uint64_t{1} << g.target);
}

class MctParam : public ::testing::TestWithParam<int>
{
};

TEST_P(MctParam, ExhaustiveEquivalenceWithAllFreeWires)
{
    const int k = GetParam(); // number of controls
    const std::size_t width = k + 2; // controls + target + 1 spare
    MctGate gate;
    for (int i = 0; i < k; ++i)
        gate.controls.push_back(i);
    gate.target = k;

    std::vector<circuit::Qubit> free_wires;
    for (std::size_t q = k + 1; q < width; ++q)
        free_wires.push_back(q);

    circuit::Circuit out(width, width);
    emitMct(gate, free_wires, out);

    for (uint64_t in = 0; in < (uint64_t{1} << width); ++in)
        ASSERT_EQ(simulateClassical(out, in), applyMctRef(gate, in))
            << "k=" << k << " in=" << in;
}

TEST_P(MctParam, ExhaustiveEquivalenceWithManyDirtyWires)
{
    const int k = GetParam();
    // Plenty of dirty work wires (and at least target + one spare).
    const std::size_t width = std::max<std::size_t>(2 * k, k + 2);
    MctGate gate;
    for (int i = 0; i < k; ++i)
        gate.controls.push_back(i);
    gate.target = k;

    std::vector<circuit::Qubit> free_wires;
    for (std::size_t q = k + 1; q < width; ++q)
        free_wires.push_back(q);

    circuit::Circuit out(width, width);
    emitMct(gate, free_wires, out);

    for (uint64_t in = 0; in < (uint64_t{1} << width); ++in)
        ASSERT_EQ(simulateClassical(out, in), applyMctRef(gate, in));
}

INSTANTIATE_TEST_SUITE_P(Controls, MctParam,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6));

TEST(Mct, DirtyWiresAreRestored)
{
    // Covered implicitly by the exhaustive checks above (any change
    // to a work wire would show up in the full-state comparison);
    // here we additionally scramble the free wires explicitly.
    MctGate gate;
    gate.controls = {0, 1, 2, 3, 4};
    gate.target = 5;
    std::vector<circuit::Qubit> free_wires = {6, 7, 8};
    circuit::Circuit out(9, 9);
    emitMct(gate, free_wires, out);
    for (uint64_t scramble : {0b000u, 0b101u, 0b111u}) {
        uint64_t in = 0b11111u | (scramble << 6);
        uint64_t result = simulateClassical(out, in);
        EXPECT_EQ(result >> 6, scramble); // free wires untouched
        EXPECT_EQ((result >> 5) & 1, 1u); // target flipped
    }
}

TEST(Mct, RejectsThreePlusControlsWithNoFreeWire)
{
    MctGate gate;
    gate.controls = {0, 1, 2};
    gate.target = 3;
    circuit::Circuit out(4, 4);
    EXPECT_THROW(emitMct(gate, {}, out), std::logic_error);
}

TEST(Mct, NetworkSimulationMatchesGateList)
{
    MctNetwork net;
    net.num_qubits = 4;
    net.gates.push_back({{0, 1}, 2});
    net.gates.push_back({{2}, 3});
    net.gates.push_back({{}, 0});
    uint64_t s = simulateMctNetwork(net, 0b0011);
    // CCX fires (bits 0,1 set) -> bit 2 set; then CX from bit 2 sets
    // bit 3; then X flips bit 0 off.
    EXPECT_EQ(s, 0b1110u);
}

TEST(Mct, LoweredNetworkMatchesReference)
{
    MctNetwork net;
    net.num_qubits = 6;
    net.gates.push_back({{0, 1, 2, 3}, 4});
    net.gates.push_back({{4}, 5});
    net.gates.push_back({{0, 2, 4}, 1});
    circuit::Circuit lowered = lowerMctNetwork(net);
    for (uint64_t in = 0; in < 64; ++in)
        ASSERT_EQ(simulateClassical(lowered, in),
                  simulateMctNetwork(net, in));
}

// --------------------------------------------------------------------
// Synthesis
// --------------------------------------------------------------------

void
checkSynthesizedFunction(const TruthTable &tt, std::size_t width)
{
    SynthOptions opts;
    opts.total_qubits = width;
    opts.add_measurements = false;
    opts.lower_to_basis = false; // stay classically simulable
    SynthResult result = synthesize(tt, opts);

    const unsigned n = tt.numInputs();
    const unsigned m = tt.numOutputs();
    for (uint64_t x = 0; x < tt.numRows(); ++x) {
        uint64_t state = simulateClassical(result.circuit, x);
        // Inputs preserved.
        ASSERT_EQ(state & ((uint64_t{1} << n) - 1), x);
        // Outputs computed.
        uint64_t outs = (state >> n) & ((uint64_t{1} << m) - 1);
        ASSERT_EQ(outs, tt.row(x)) << tt.name() << " x=" << x;
        // Ancillas (if any) restored to zero.
        ASSERT_EQ(state >> (n + m), 0u);
    }
}

TEST(Synth, Adr4AdderCorrect)
{
    checkSynthesizedFunction(qpad::benchmarks::adr4Table(), 13);
}

TEST(Synth, Rd84WeightCorrect)
{
    checkSynthesizedFunction(qpad::benchmarks::rd84Table(), 15);
}

TEST(Synth, Sym6Correct)
{
    checkSynthesizedFunction(qpad::benchmarks::sym6Table(), 7);
}

TEST(Synth, Z4SumCorrect)
{
    checkSynthesizedFunction(qpad::benchmarks::z4Table(), 11);
}

TEST(Synth, SquareRootCorrect)
{
    checkSynthesizedFunction(qpad::benchmarks::squareRootTable(), 15);
}

TEST(Synth, Cm152aMuxCorrect)
{
    checkSynthesizedFunction(qpad::benchmarks::cm152aTable(), 12);
}

TEST(Synth, Dc1Correct)
{
    checkSynthesizedFunction(qpad::benchmarks::dc1Table(), 11);
}

TEST(Synth, Misex1Correct)
{
    checkSynthesizedFunction(qpad::benchmarks::misex1Table(), 15);
}

TEST(Synth, MeasurementsTargetOutputLines)
{
    SynthOptions opts;
    opts.total_qubits = 7;
    SynthResult result = synthesize(qpad::benchmarks::sym6Table(), opts);
    std::size_t measures = 0;
    for (const auto &g : result.circuit.gates())
        if (g.kind == circuit::GateKind::Measure) {
            EXPECT_EQ(g.qubits[0], result.outputLine(measures));
            ++measures;
        }
    EXPECT_EQ(measures, 1u);
}

TEST(Synth, LoweredToBasisByDefault)
{
    SynthOptions opts;
    opts.total_qubits = 7;
    SynthResult result = synthesize(qpad::benchmarks::sym6Table(), opts);
    EXPECT_TRUE(circuit::isInBasis(result.circuit));
}

TEST(Synth, WidthTooSmallIsFatal)
{
    EXPECT_THROW(
        synthesize(qpad::benchmarks::adr4Table(),
                   {.total_qubits = 9}),
        std::runtime_error);
}

TEST(Synth, SortsGatesByDegree)
{
    SynthOptions opts;
    opts.total_qubits = 12;
    opts.lower_to_basis = false;
    SynthResult r = synthesize(qpad::benchmarks::rd84Table(), opts);
    std::size_t prev = 0;
    for (const auto &g : r.network.gates) {
        ASSERT_GE(g.controls.size(), prev);
        prev = g.controls.size();
    }
}

} // namespace

/**
 * @file
 * Tests for the bus-contention-aware ASAP scheduler.
 */

#include <gtest/gtest.h>

#include "arch/ibm.hh"
#include "benchmarks/suite.hh"
#include "mapping/sabre.hh"
#include "mapping/schedule.hh"

namespace
{

using namespace qpad;
using arch::Architecture;
using arch::Layout;
using circuit::Circuit;
using mapping::ScheduleOptions;
using mapping::scheduleCircuit;

TEST(BusMap, TwoQubitBusesAreDistinct)
{
    Architecture arch(Layout::grid(1, 4));
    auto bus = mapping::busOfEdge(arch);
    ASSERT_EQ(bus.size(), 3u);
    EXPECT_NE(bus[0], bus[1]);
    EXPECT_NE(bus[1], bus[2]);
}

TEST(BusMap, FourQubitBusSharesOneResonator)
{
    Architecture arch(Layout::grid(2, 2));
    arch.addFourQubitBus({0, 0});
    auto bus = mapping::busOfEdge(arch);
    // 6 edges (4 lattice + 2 diagonals), all on one resonator.
    ASSERT_EQ(bus.size(), 6u);
    for (auto b : bus)
        EXPECT_EQ(b, bus[0]);
}

TEST(BusMap, MixedConfiguration)
{
    Architecture arch(Layout::grid(2, 4));
    arch.addFourQubitBus({0, 0});
    auto bus = mapping::busOfEdge(arch);
    std::set<std::size_t> distinct(bus.begin(), bus.end());
    // One shared square resonator + the remaining plain edges:
    // 2x4 grid has 10 lattice edges, 4 covered by the square, plus
    // 2 diagonals -> buses = 1 + 6.
    EXPECT_EQ(bus.size(), 12u);
    EXPECT_EQ(distinct.size(), 7u);
}

TEST(Schedule, SerialChainMakespan)
{
    Architecture arch(Layout::grid(1, 2));
    Circuit c(2);
    c.cx(0, 1);
    c.cx(0, 1);
    c.cx(0, 1);
    auto s = scheduleCircuit(c, arch);
    EXPECT_EQ(s.makespan, 6u); // 3 serial 2-cycle gates
    EXPECT_EQ(s.start[0], 0u);
    EXPECT_EQ(s.start[2], 4u);
}

TEST(Schedule, IndependentGatesOverlap)
{
    Architecture arch(Layout::grid(1, 4));
    Circuit c(4);
    c.cx(0, 1);
    c.cx(2, 3);
    auto s = scheduleCircuit(c, arch);
    EXPECT_EQ(s.makespan, 2u);
    EXPECT_EQ(s.start[1], 0u);
    EXPECT_GT(s.parallel_cycles, 0u);
}

TEST(Schedule, SharedBusSerializesDisjointPairs)
{
    // On a 4-qubit-bus square, (0,1) and (2,3) are disjoint qubit
    // pairs but share the resonator: they must serialize.
    Architecture arch(Layout::grid(2, 2));
    arch.addFourQubitBus({0, 0});
    Circuit c(4);
    c.cx(0, 1);
    c.cx(2, 3);
    auto s = scheduleCircuit(c, arch);
    EXPECT_EQ(s.makespan, 4u);
    EXPECT_EQ(s.bus_stall_cycles, 2u);

    // The same two gates on a plain 2x2 grid overlap freely.
    Architecture plain(Layout::grid(2, 2));
    auto sp = scheduleCircuit(c, plain);
    EXPECT_EQ(sp.makespan, 2u);
    EXPECT_EQ(sp.bus_stall_cycles, 0u);
}

TEST(Schedule, MeasureDuration)
{
    Architecture arch(Layout::grid(1, 2));
    Circuit c(2, 2);
    c.measure(0, 0);
    ScheduleOptions opts;
    opts.cycles_measure = 7;
    auto s = scheduleCircuit(c, arch, opts);
    EXPECT_EQ(s.makespan, 7u);
}

TEST(Schedule, BarrierSynchronizes)
{
    Architecture arch(Layout::grid(1, 3));
    Circuit c(3);
    c.h(0);
    c.barrier();
    c.h(1);
    auto s = scheduleCircuit(c, arch);
    EXPECT_EQ(s.start[2], 1u);
    EXPECT_EQ(s.makespan, 2u);
}

TEST(Schedule, RejectsIllegalGates)
{
    Architecture arch(Layout::grid(1, 3));
    Circuit c(3);
    c.cx(0, 2); // not coupled
    EXPECT_THROW(scheduleCircuit(c, arch), std::logic_error);
}

TEST(Schedule, MappedBenchmarkEndToEnd)
{
    auto circ = benchmarks::getBenchmark("UCCSD_ansatz_8").generate();
    auto arch = arch::ibm16Q(true);
    auto mapped = mapping::mapCircuit(circ, arch);
    auto s = scheduleCircuit(mapped.mapped, arch);
    EXPECT_GT(s.makespan, 0u);
    // Makespan is bounded by fully-serial execution.
    std::size_t serial = 0;
    for (const auto &g : mapped.mapped.gates()) {
        if (g.kind == circuit::GateKind::Barrier)
            continue;
        serial += g.isTwoQubit() ? 2 : (g.isSingleQubit() ? 1 : 5);
    }
    EXPECT_LE(s.makespan, serial);
    EXPECT_GE(s.parallelism, 1.0);
}

TEST(Schedule, BusContentionOnlyHurtsBusedChips)
{
    auto circ = benchmarks::getBenchmark("qft_16").generate();
    auto plain = arch::ibm16Q(false);
    auto mapped = mapping::mapCircuit(circ, plain);
    auto s = scheduleCircuit(mapped.mapped, plain);
    EXPECT_EQ(s.bus_stall_cycles, 0u);
}

} // namespace

/**
 * @file
 * Unit tests for logging and the symmetric matrix.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/logging.hh"
#include "common/sym_matrix.hh"

namespace
{

using qpad::SymMatrix;

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(qpad_panic("boom ", 42), std::logic_error);
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(qpad_fatal("bad input ", "x"), std::runtime_error);
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(qpad_assert(1 + 1 == 2, "math"));
}

TEST(Logging, AssertThrowsOnFalse)
{
    EXPECT_THROW(qpad_assert(1 + 1 == 3, "math"), std::logic_error);
}

TEST(Logging, QuietSuppressesWarn)
{
    qpad::detail::setQuiet(true);
    EXPECT_TRUE(qpad::detail::isQuiet());
    qpad_warn("should not appear");
    qpad::detail::setQuiet(false);
    EXPECT_FALSE(qpad::detail::isQuiet());
}

TEST(SymMatrix, StoresSymmetrically)
{
    SymMatrix<int> m(5, 0);
    m.at(1, 3) = 42;
    EXPECT_EQ(m(3, 1), 42);
    EXPECT_EQ(m(1, 3), 42);
    m.at(4, 2) = 7;
    EXPECT_EQ(m(2, 4), 7);
}

TEST(SymMatrix, DiagonalIsIndependent)
{
    SymMatrix<int> m(3, 0);
    m.at(0, 0) = 1;
    m.at(1, 1) = 2;
    m.at(2, 2) = 3;
    EXPECT_EQ(m(0, 0), 1);
    EXPECT_EQ(m(1, 1), 2);
    EXPECT_EQ(m(2, 2), 3);
    EXPECT_EQ(m(0, 1), 0);
}

TEST(SymMatrix, FillValue)
{
    SymMatrix<double> m(4, 1.5);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            EXPECT_DOUBLE_EQ(m(i, j), 1.5);
}

TEST(SymMatrix, RowSumCountsAllColumns)
{
    SymMatrix<int> m(3, 0);
    m.at(0, 1) = 2;
    m.at(0, 2) = 3;
    m.at(0, 0) = 1;
    EXPECT_EQ(m.rowSum(0), 6);
    EXPECT_EQ(m.rowSum(1), 2);
    EXPECT_EQ(m.rowSum(2), 3);
}

TEST(SymMatrix, OffDiagonalSumCountsPairsOnce)
{
    SymMatrix<int> m(3, 0);
    m.at(0, 1) = 2;
    m.at(1, 2) = 3;
    m.at(0, 0) = 100; // diagonal ignored
    EXPECT_EQ(m.offDiagonalSum(), 5);
}

TEST(SymMatrix, EqualityComparesContents)
{
    SymMatrix<int> a(3, 0), b(3, 0);
    EXPECT_TRUE(a == b);
    a.at(1, 2) = 1;
    EXPECT_FALSE(a == b);
    b.at(2, 1) = 1;
    EXPECT_TRUE(a == b);
}

TEST(SymMatrix, OutOfRangePanics)
{
    SymMatrix<int> m(3, 0);
    EXPECT_THROW(m.at(3, 0), std::logic_error);
    EXPECT_THROW(m.at(0, 5), std::logic_error);
}

TEST(SymMatrix, LargeMatrixIndexingConsistent)
{
    const std::size_t n = 50;
    SymMatrix<std::size_t> m(n, 0);
    // Write a unique value per unordered pair, verify nothing clashes.
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j)
            m.at(i, j) = i * n + j + 1;
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j)
            EXPECT_EQ(m(j, i), i * n + j + 1);
}

} // namespace

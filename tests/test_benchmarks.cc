/**
 * @file
 * Tests for the benchmark suite: paper qubit counts, basis
 * conformance, generator structure, and the PLA front end.
 */

#include <gtest/gtest.h>

#include <map>

#include "benchmarks/functions.hh"
#include "benchmarks/generators.hh"
#include "benchmarks/pla.hh"
#include "benchmarks/suite.hh"
#include "revsynth/synth.hh"
#include "circuit/decompose.hh"
#include "profile/coupling.hh"
#include "revsynth/mct.hh"

namespace
{

using namespace qpad;
using namespace qpad::benchmarks;

TEST(Suite, HasTheTwelvePaperBenchmarks)
{
    const auto &suite = paperSuite();
    ASSERT_EQ(suite.size(), 12u);
    // Paper Section 5.1 / Figure 10 qubit counts.
    const std::map<std::string, std::size_t> expected = {
        {"qft_16", 16},        {"ising_model_16", 16},
        {"UCCSD_ansatz_8", 8}, {"sym6_145", 7},
        {"dc1_220", 11},       {"z4_268", 11},
        {"cm152a_212", 12},    {"adr4_197", 13},
        {"radd_250", 13},      {"rd84_142", 15},
        {"misex1_241", 15},    {"square_root_7", 15},
    };
    for (const auto &b : suite) {
        auto it = expected.find(b.name);
        ASSERT_NE(it, expected.end()) << "unexpected " << b.name;
        EXPECT_EQ(b.num_qubits, it->second) << b.name;
    }
}

class SuiteParam
    : public ::testing::TestWithParam<const BenchmarkInfo *>
{
};

TEST_P(SuiteParam, GeneratesAdvertisedWidth)
{
    const auto &info = *GetParam();
    auto circ = info.generate();
    EXPECT_EQ(circ.numQubits(), info.num_qubits);
    EXPECT_EQ(circ.name().find(info.name.substr(0, 4)), 0u);
}

TEST_P(SuiteParam, CircuitsAreInNativeBasis)
{
    auto circ = GetParam()->generate();
    EXPECT_TRUE(circuit::isInBasis(circ));
}

TEST_P(SuiteParam, CircuitsContainTwoQubitGatesAndMeasure)
{
    auto circ = GetParam()->generate();
    EXPECT_GT(circ.twoQubitGateCount(), 0u);
    EXPECT_GT(circ.countByKind()["measure"], 0u);
}

TEST_P(SuiteParam, ProfileIsConsistent)
{
    auto circ = GetParam()->generate();
    auto prof = profile::profileCircuit(circ);
    uint64_t degree_sum = 0;
    for (auto d : prof.degrees)
        degree_sum += d;
    EXPECT_EQ(degree_sum, 2 * prof.total_two_qubit_gates);
    EXPECT_EQ(prof.total_two_qubit_gates, circ.twoQubitGateCount());
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteParam,
    ::testing::ValuesIn([] {
        std::vector<const BenchmarkInfo *> ptrs;
        for (const auto &b : paperSuite())
            ptrs.push_back(&b);
        return ptrs;
    }()),
    [](const ::testing::TestParamInfo<const BenchmarkInfo *> &info) {
        std::string name = info.param->name;
        for (auto &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(Suite, LookupByName)
{
    EXPECT_EQ(getBenchmark("qft_16").num_qubits, 16u);
    EXPECT_TRUE(hasBenchmark("misex1_241"));
    EXPECT_FALSE(hasBenchmark("nope"));
    EXPECT_THROW(getBenchmark("nope"), std::runtime_error);
}

TEST(Generators, QftGateStructure)
{
    auto circ = qft(5, false);
    // n H gates + n(n-1)/2 controlled phases, each lowered to 2 CX
    // and 3 RZ.
    EXPECT_EQ(circ.countByKind()["h"], 5u);
    EXPECT_EQ(circ.twoQubitGateCount(), 2u * 10u);
}

TEST(Generators, IsingChainStructure)
{
    auto circ = isingModel(8, 4, false);
    auto prof = profile::profileCircuit(circ);
    EXPECT_TRUE(prof.isChain());
    // Each of the 7 chain bonds sees 2 CX per step.
    EXPECT_EQ(prof.strength(3, 4), 8u);
    EXPECT_EQ(prof.strength(0, 2), 0u);
}

TEST(Generators, CuccaroAdderAddsCorrectly)
{
    // Lower the adder only to CCX level for classical simulation:
    // rebuild via the generator pieces: use the lowered {1q, CX}
    // circuit is not classically simulable, so check the adder via
    // its reversible semantics using a CCX-preserving copy.
    // The generator emits decomposed T-gate Toffolis, so instead we
    // validate the structural invariant: the adder touches 2n+1
    // wires and measures n sum bits.
    auto circ = cuccaroAdder(4);
    EXPECT_EQ(circ.numQubits(), 9u);
    EXPECT_EQ(circ.countByKind()["measure"], 4u);
    EXPECT_TRUE(circuit::isInBasis(circ));
}

TEST(Generators, GhzIsLinear)
{
    auto circ = ghz(7, false);
    EXPECT_EQ(circ.twoQubitGateCount(), 6u);
    auto prof = profile::profileCircuit(circ);
    EXPECT_TRUE(prof.isChain());
}

TEST(Generators, UccsdRequiresEvenOrbitals)
{
    EXPECT_THROW(uccsdAnsatz(7), std::logic_error);
    EXPECT_THROW(uccsdAnsatz(2), std::logic_error);
}

TEST(Pla, TableFromCubes)
{
    // f0 = x0 AND NOT x1; f1 = x2 (don't care others).
    std::vector<PlaCube> cubes = {
        {0b011, 0b001, 0b01},
        {0b100, 0b100, 0b10},
    };
    auto tt = tableFromPla(3, 2, cubes, "mini");
    EXPECT_TRUE(tt.output(0b001, 0));
    EXPECT_FALSE(tt.output(0b011, 0));
    EXPECT_TRUE(tt.output(0b101, 1));
    EXPECT_TRUE(tt.output(0b101, 0));
    EXPECT_FALSE(tt.output(0b010, 1));
}

TEST(Pla, ParseEspressoFormat)
{
    auto tt = parsePla(".i 2\n.o 1\n# comment\n11 1\n0- 1\n.e\n", "p");
    EXPECT_TRUE(tt.output(0b11, 0));
    EXPECT_TRUE(tt.output(0b00, 0));
    EXPECT_TRUE(tt.output(0b10, 0)); // cube "0-": x0 = 0
    EXPECT_FALSE(tt.output(0b01, 0));
}

TEST(Pla, ParseRejectsBadCubes)
{
    EXPECT_THROW(parsePla(".i 2\n.o 1\n111 1\n.e\n", "bad"),
                 std::runtime_error);
    EXPECT_THROW(parsePla("11 1\n.e\n", "noheader"),
                 std::runtime_error);
}

TEST(Misex1, InputsNeverTargeted)
{
    // The reversible embedding keeps inputs as controls only; no X
    // basis change should ever target an input line in the MCT
    // network form (before CCX lowering).
    revsynth::SynthOptions opts;
    opts.total_qubits = 15;
    opts.lower_to_basis = false;
    opts.add_measurements = false;
    auto result =
        revsynth::synthesize(qpad::benchmarks::misex1Table(), opts);
    for (const auto &g : result.network.gates)
        EXPECT_GE(g.target, 8u);
}

} // namespace

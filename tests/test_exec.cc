/**
 * @file
 * Tests for qpad::exec — cancellation tokens, deadlines, request
 * contexts, and the order-tagged streaming sink — plus the contract
 * that matters most: a context decides only WHETHER a result exists,
 * never its bytes, and a stopped context unwinds promptly as
 * exec::CancelledError from every ctx-threaded entry point.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "arch/architecture.hh"
#include "arch/ibm.hh"
#include "circuit/circuit.hh"
#include "design/anneal.hh"
#include "design/freq_alloc.hh"
#include "exec/cancel.hh"
#include "exec/context.hh"
#include "exec/stream.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/request_report.hh"
#include "profile/coupling.hh"
#include "yield/yield_sim.hh"

namespace
{

using namespace qpad;
using namespace std::chrono_literals;
using arch::Architecture;
using arch::Layout;
using exec::CancelledError;
using exec::CancelToken;
using exec::Context;
using exec::StopReason;

// --------------------------------------------------------------------
// CancelToken
// --------------------------------------------------------------------

TEST(CancelToken, FreshTokenIsClean)
{
    CancelToken tok;
    EXPECT_FALSE(tok.cancelRequested());
    EXPECT_FALSE(tok.hasDeadline());
    EXPECT_EQ(tok.stopReason(), StopReason::kNone);
    // Polling a clean token (or none at all) is a no-op.
    EXPECT_NO_THROW(exec::throwIfStopped(&tok));
    EXPECT_NO_THROW(exec::throwIfStopped(nullptr));
}

TEST(CancelToken, CancelIsSticky)
{
    CancelToken tok;
    tok.cancel();
    EXPECT_TRUE(tok.cancelRequested());
    EXPECT_EQ(tok.stopReason(), StopReason::kCancelled);
    // Still cancelled after deadline churn: cancel is sticky.
    tok.setDeadline(exec::now() + 1h);
    tok.clearDeadline();
    EXPECT_EQ(tok.stopReason(), StopReason::kCancelled);
}

TEST(CancelToken, DeadlineExpiryReportsAndThrows)
{
    CancelToken tok;
    tok.setDeadline(exec::now() - 1ns);
    EXPECT_TRUE(tok.hasDeadline());
    EXPECT_EQ(tok.stopReason(), StopReason::kDeadlineExceeded);
    try {
        exec::throwIfStopped(&tok);
        FAIL() << "expected CancelledError";
    } catch (const CancelledError &e) {
        EXPECT_EQ(e.reason(), StopReason::kDeadlineExceeded);
    }
}

TEST(CancelToken, FutureDeadlineDoesNotStop)
{
    CancelToken tok;
    tok.setDeadline(exec::now() + 1h);
    EXPECT_TRUE(tok.hasDeadline());
    EXPECT_EQ(tok.stopReason(), StopReason::kNone);
    tok.clearDeadline();
    EXPECT_FALSE(tok.hasDeadline());
}

TEST(CancelToken, CancelWinsOverDeadline)
{
    CancelToken tok;
    tok.setDeadline(exec::now() - 1ns);
    tok.cancel();
    EXPECT_EQ(tok.stopReason(), StopReason::kCancelled);
}

// --------------------------------------------------------------------
// Context
// --------------------------------------------------------------------

TEST(Context, NoneIsNeverStopped)
{
    const Context &none = Context::none();
    EXPECT_FALSE(none.cancelRequested());
    EXPECT_EQ(none.stopReason(), StopReason::kNone);
    EXPECT_NO_THROW(none.throwIfStopped());
}

TEST(Context, CopiesShareCancelState)
{
    Context ctx;
    Context copy = ctx;
    copy.cancel();
    EXPECT_TRUE(ctx.cancelRequested());
    EXPECT_THROW(ctx.throwIfStopped(), CancelledError);
}

TEST(Context, SetDeadlineAfterZeroBudgetExpires)
{
    Context ctx;
    ctx.setDeadlineAfter(0ns);
    EXPECT_EQ(ctx.stopReason(), StopReason::kDeadlineExceeded);
}

TEST(Context, ApplyAttachesTokenOnlyWhenUnset)
{
    Context ctx;
    runtime::Options base;
    base.num_threads = 3;
    const runtime::Options applied = ctx.apply(base);
    EXPECT_EQ(applied.cancel, ctx.token());
    EXPECT_EQ(applied.num_threads, 3u); // other fields pass through

    // Innermost wins: an already-attached token is left alone.
    CancelToken inner;
    runtime::Options preset;
    preset.cancel = &inner;
    EXPECT_EQ(ctx.apply(preset).cancel, &inner);
}

TEST(Context, RequestScopeCountsRequests)
{
    const uint64_t before = obs::counter("exec.requests").value();
    {
        exec::RequestScope scope;
    }
    EXPECT_EQ(obs::counter("exec.requests").value(), before + 1);
}

TEST(Context, RequestIdsAreUniqueAndStable)
{
    EXPECT_EQ(Context::none().id(), 0u);
    Context a;
    Context b;
    EXPECT_NE(a.id(), 0u);
    EXPECT_NE(b.id(), 0u);
    EXPECT_NE(a.id(), b.id());
    // Copies are the same request, not a new one.
    const Context copy = a;
    EXPECT_EQ(copy.id(), a.id());
}

TEST(Context, ApplyStampsRequestIdOnlyWhenUnset)
{
    Context ctx;
    runtime::Options base;
    EXPECT_EQ(ctx.apply(base).request_id, ctx.id());

    // Innermost wins, same as the cancel token: a pre-stamped id is
    // left alone.
    runtime::Options preset;
    preset.request_id = 7;
    EXPECT_EQ(ctx.apply(preset).request_id, 7u);

    // Context::none() never tags anything.
    EXPECT_EQ(Context::none().apply(base).request_id, 0u);
}

TEST(Context, RequestScopeTagsThreadAndRestores)
{
    const uint64_t prev = obs::currentRequestId();
    Context ctx;
    {
        exec::RequestScope scope(ctx, "tag_test");
        EXPECT_EQ(obs::currentRequestId(), ctx.id());
        EXPECT_EQ(scope.id(), ctx.id());
        // A nested no-request scope must not erase the tag.
        {
            obs::ScopedRequestId nested(0);
            EXPECT_EQ(obs::currentRequestId(), ctx.id());
        }
        EXPECT_EQ(obs::currentRequestId(), ctx.id());
    }
    EXPECT_EQ(obs::currentRequestId(), prev);
}

TEST(Context, FinishReportCarriesIdNameStopAndDeltas)
{
    Context ctx;
    ctx.setDeadlineAfter(0ns);
    exec::RequestScope scope(ctx, "unit_report");
    obs::counter("exec.test_report_series").add(3);
    const obs::RequestReport report = scope.finish();

    EXPECT_EQ(report.id, ctx.id());
    EXPECT_EQ(report.name, "unit_report");
    EXPECT_EQ(report.stop, StopReason::kDeadlineExceeded);
    EXPECT_GE(report.wall_seconds, 0.0);

    // The deltas hold exactly what moved during the scope: the series
    // above, and the scope's own exec.requests increment.
    const obs::Sample *series =
        obs::find(report.metrics, "exec.test_report_series");
    ASSERT_NE(series, nullptr);
    EXPECT_EQ(series->value, 3.0);
    const obs::Sample *requests =
        obs::find(report.metrics, "exec.requests");
    ASSERT_NE(requests, nullptr);
    EXPECT_EQ(requests->value, 1.0);
}

TEST(Context, RequestReportJsonIsWellFormed)
{
    Context ctx;
    ctx.cancel();
    exec::RequestScope scope(ctx, "json_report");
    const obs::RequestReport report = scope.finish();
    const std::string json = obs::requestReportJson(report);

    EXPECT_NE(json.find("\"id\":" + std::to_string(ctx.id())),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"name\":\"json_report\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"stop\":\"cancelled\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"metrics\":["), std::string::npos) << json;
    // Braces and brackets balance — the line is one JSON object.
    int depth = 0;
    for (char c : json) {
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

// --------------------------------------------------------------------
// Sink
// --------------------------------------------------------------------

TEST(Sink, DisabledSinkIsANoop)
{
    exec::Sink<int> sink;
    EXPECT_FALSE(static_cast<bool>(sink));
    EXPECT_NO_THROW(sink.emit(0, 42));
    EXPECT_EQ(sink.emitted(), 0u);
}

TEST(Sink, CollectsOrderTaggedItems)
{
    std::vector<std::pair<std::size_t, int>> got;
    exec::Sink<int> sink(
        [&](std::size_t index, const int &item) {
            got.emplace_back(index, item);
        });
    EXPECT_TRUE(static_cast<bool>(sink));
    sink.emit(2, 20);
    sink.emit(0, 0);
    sink.emit(1, 10);
    EXPECT_EQ(sink.emitted(), 3u);
    // Completion order is preserved as delivered; the tags carry the
    // deterministic position.
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0], (std::pair<std::size_t, int>{2, 20}));
    EXPECT_EQ(got[1], (std::pair<std::size_t, int>{0, 0}));
    EXPECT_EQ(got[2], (std::pair<std::size_t, int>{1, 10}));
}

TEST(Sink, CopiesShareStateAndEmitsSerialize)
{
    // Hammer one sink (through copies) from several threads; the
    // internal mutex must serialize deliveries so the unlocked
    // callback vector stays consistent. Run under TSan in CI.
    constexpr std::size_t kThreads = 4;
    constexpr std::size_t kPerThread = 250;
    std::vector<std::size_t> seen;
    exec::Sink<std::size_t> sink(
        [&](std::size_t index, const std::size_t &item) {
            EXPECT_EQ(index, item);
            seen.push_back(item);
        });
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t)
        threads.emplace_back([copy = sink, t]() {
            for (std::size_t i = 0; i < kPerThread; ++i) {
                const std::size_t tag = t * kPerThread + i;
                copy.emit(tag, tag);
            }
        });
    for (std::thread &th : threads)
        th.join();
    EXPECT_EQ(sink.emitted(), kThreads * kPerThread);
    const std::set<std::size_t> unique(seen.begin(), seen.end());
    EXPECT_EQ(unique.size(), kThreads * kPerThread);
}

// --------------------------------------------------------------------
// Cancellation through the compute entry points
// --------------------------------------------------------------------

profile::CouplingProfile
smallProfile()
{
    circuit::Circuit c(6);
    for (circuit::Qubit q = 0; q + 1 < 6; ++q)
        c.cx(q, q + 1);
    c.cx(0, 5);
    c.cx(2, 4);
    return profile::profileCircuit(c);
}

TEST(ExecCancel, ExpiredDeadlineStopsAnneal)
{
    auto prof = smallProfile();
    auto start = design::designLayout(prof);
    design::AnnealOptions opts;
    opts.iterations = 200000; // would take a while if not stopped
    Context ctx;
    ctx.setDeadlineAfter(0ns);
    try {
        design::annealLayout(prof, start, opts, ctx);
        FAIL() << "expected CancelledError";
    } catch (const CancelledError &e) {
        EXPECT_EQ(e.reason(), StopReason::kDeadlineExceeded);
    }
}

TEST(ExecCancel, BenignContextLeavesAnnealBitIdentical)
{
    // The determinism contract: attaching a context that never stops
    // must not change a single byte of the result.
    auto prof = smallProfile();
    auto start = design::designLayout(prof);
    design::AnnealOptions opts;
    opts.iterations = 4000;
    opts.restarts = 2;
    auto plain = design::annealLayout(prof, start, opts);
    Context ctx;
    ctx.setDeadline(exec::now() + 1h); // armed but never expires
    auto guarded = design::annealLayout(prof, start, opts, ctx);
    EXPECT_EQ(plain.final_cost, guarded.final_cost);
    EXPECT_EQ(plain.winning_chain, guarded.winning_chain);
    EXPECT_EQ(plain.layout.coord_of_logical,
              guarded.layout.coord_of_logical);
}

TEST(ExecCancel, CancelledContextStopsEstimateYield)
{
    auto arch = arch::ibm16Q(false);
    yield::YieldOptions opts;
    opts.trials = 4000;
    Context ctx;
    ctx.cancel();
    EXPECT_THROW(yield::estimateYield(arch, opts, ctx),
                 CancelledError);
}

TEST(ExecCancel, ExpiredDeadlineStopsFreqAlloc)
{
    Architecture arch(Layout::grid(3, 3));
    design::FreqAllocOptions opts;
    opts.local_trials = 200;
    Context ctx;
    ctx.setDeadlineAfter(0ns);
    EXPECT_THROW(design::allocateFrequencies(arch, opts, ctx),
                 CancelledError);
}

TEST(ExecCancel, StoppedRunsCountInMetrics)
{
    const uint64_t before = obs::counter("exec.cancelled").value();
    Context ctx;
    ctx.cancel();
    EXPECT_THROW(ctx.throwIfStopped(), CancelledError);
    EXPECT_GE(obs::counter("exec.cancelled").value(), before + 1);
}

} // namespace

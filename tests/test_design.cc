/**
 * @file
 * Tests for the three design subroutines (Algorithms 1-3) and the
 * end-to-end design flow.
 */

#include <gtest/gtest.h>

#include "benchmarks/generators.hh"
#include "scoped_scalar_kernel.hh"
#include "benchmarks/suite.hh"
#include "design/design_flow.hh"
#include "profile/coupling.hh"
#include "yield/yield_sim.hh"

namespace
{

using namespace qpad;
using namespace qpad::design;
using arch::Architecture;
using arch::Coord;
using arch::Layout;

// --------------------------------------------------------------------
// Algorithm 1: layout design
// --------------------------------------------------------------------

TEST(LayoutDesign, Figure6StarExample)
{
    auto prof = profile::profileCircuit(benchmarks::profilingExample());
    LayoutResult r = designLayout(prof);
    ASSERT_EQ(r.layout.numQubits(), 5u);

    // q4 is placed first (highest degree); the heavy q0-q4 pair must
    // be lattice-adjacent.
    EXPECT_EQ(Coord::manhattan(r.coord_of_logical[0],
                               r.coord_of_logical[4]), 1);
    // Star around q4: an optimal plus-shape costs 7
    // (edges to q4: 2+1+1+1, plus q0-q1 at distance 2).
    EXPECT_LE(r.placement_cost, 8u);
}

TEST(LayoutDesign, ChainProgramGetsPerfectChainPlacement)
{
    auto prof = profile::profileCircuit(benchmarks::isingModel(16, 5));
    ASSERT_TRUE(prof.isChain());
    LayoutResult r = designLayout(prof);
    // Every logical edge must land on lattice-adjacent nodes: the
    // cost equals the plain sum of edge strengths.
    uint64_t strength_sum = 0;
    for (auto [i, j] : prof.edges())
        strength_sum += prof.strength(i, j);
    EXPECT_EQ(r.placement_cost, strength_sum);
}

TEST(LayoutDesign, PlacesEveryQubitOnce)
{
    for (const char *name : {"qft_16", "misex1_241", "adr4_197"}) {
        auto circ = benchmarks::getBenchmark(name).generate();
        auto prof = profile::profileCircuit(circ);
        LayoutResult r = designLayout(prof);
        EXPECT_EQ(r.layout.numQubits(), prof.num_qubits) << name;
        // Layout::addQubit would have thrown on duplicate coords;
        // verify id <-> coordinate consistency instead.
        for (circuit::Qubit q = 0; q < prof.num_qubits; ++q)
            EXPECT_EQ(*r.layout.qubitAt(r.coord_of_logical[q]), q);
    }
}

TEST(LayoutDesign, LayoutIsContiguous)
{
    auto prof = profile::profileCircuit(benchmarks::uccsdAnsatz(8));
    LayoutResult r = designLayout(prof);
    Architecture arch(r.layout);
    EXPECT_TRUE(arch.isConnectedGraph());
}

TEST(LayoutDesign, NormalizedToOrigin)
{
    auto prof = profile::profileCircuit(benchmarks::qft(9));
    LayoutResult r = designLayout(prof);
    EXPECT_EQ(r.layout.minRow(), 0);
    EXPECT_EQ(r.layout.minCol(), 0);
}

TEST(LayoutDesign, CostBeatsRowMajorPackingOnStructuredPrograms)
{
    // The whole point of Algorithm 1: locality-aware placement must
    // not be worse than naive row-major packing into a near-square.
    for (const char *name : {"UCCSD_ansatz_8", "misex1_241"}) {
        auto circ = benchmarks::getBenchmark(name).generate();
        auto prof = profile::profileCircuit(circ);
        LayoutResult r = designLayout(prof);

        std::vector<Coord> naive(prof.num_qubits);
        int cols = 4;
        for (std::size_t q = 0; q < prof.num_qubits; ++q)
            naive[q] = {int(q) / cols, int(q) % cols};
        EXPECT_LE(r.placement_cost, placementCost(prof, naive))
            << name;
    }
}

TEST(LayoutDesign, HandlesIsolatedQubits)
{
    // A program whose qubit 2 never touches a two-qubit gate.
    circuit::Circuit c(3, 3);
    c.cx(0, 1);
    c.h(2);
    auto prof = profile::profileCircuit(c);
    LayoutResult r = designLayout(prof);
    EXPECT_EQ(r.layout.numQubits(), 3u);
}

// --------------------------------------------------------------------
// Algorithm 2: bus selection
// --------------------------------------------------------------------

profile::CouplingProfile
syntheticProfile(std::size_t n,
                 const std::vector<std::tuple<int, int, int>> &edges)
{
    circuit::Circuit c(n);
    for (auto [a, b, w] : edges)
        for (int k = 0; k < w; ++k)
            c.cx(a, b);
    return profile::profileCircuit(c);
}

TEST(BusSelection, PicksTheHeavyDiagonal)
{
    // 2x2 grid, logical ids = grid ids; diagonal (0,3) heavy.
    auto prof = syntheticProfile(
        4, {{0, 1, 1}, {2, 3, 1}, {0, 3, 10}});
    Architecture arch(Layout::grid(2, 2));
    auto sel = selectBuses(arch, prof, 5);
    ASSERT_EQ(sel.selected.size(), 1u);
    EXPECT_EQ(sel.selected[0], (Coord{0, 0}));
    EXPECT_EQ(sel.weights[0], 10u);
}

TEST(BusSelection, ZeroWeightSquaresNeverSelected)
{
    // Chain coupling on a 2x3 grid: no diagonal demand at all.
    auto prof = syntheticProfile(
        6, {{0, 1, 5}, {1, 2, 5}, {3, 4, 5}, {4, 5, 5}});
    Architecture arch(Layout::grid(2, 3));
    auto sel = selectBuses(arch, prof, 10);
    EXPECT_TRUE(sel.selected.empty());
}

TEST(BusSelection, ProhibitedConditionRespected)
{
    // All diagonals attractive on a 2x8 grid: selection must stay an
    // independent set of squares.
    std::vector<std::tuple<int, int, int>> edges;
    for (int c = 0; c < 7; ++c) {
        edges.push_back({c, 9 + c, 3});     // diag tl-br
        edges.push_back({c + 1, 8 + c, 3}); // diag tr-bl
    }
    auto prof = syntheticProfile(16, edges);
    Architecture arch(Layout::grid(2, 8));
    auto sel = selectBuses(arch, prof, 100);
    EXPECT_LE(sel.selected.size(), 4u);
    Architecture check(Layout::grid(2, 8));
    applyBusSelection(check, sel); // throws on violation
    EXPECT_EQ(check.fourQubitBuses().size(), sel.selected.size());
}

TEST(BusSelection, FilteredWeightPrefersIsolatedHeavySquare)
{
    // Squares at origins (0,0), (0,1), (0,2) on a 2x4 grid with
    // weights 6, 7, 6: raw greedy would take the middle (7) and
    // block both neighbours (total 7); the filter starts from an
    // edge square and achieves 6 + 6.
    auto prof = syntheticProfile(8, {{0, 5, 6},   // diag of square 0
                                     {1, 6, 7},   // diag of square 1
                                     {2, 7, 6}}); // diag of square 2
    Architecture arch(Layout::grid(2, 4));
    auto sel = selectBuses(arch, prof, 10);
    uint64_t total = 0;
    for (auto w : sel.weights)
        total += w;
    EXPECT_EQ(sel.selected.size(), 2u);
    EXPECT_EQ(total, 12u);
}

TEST(BusSelection, RespectsMaxBusesK)
{
    auto prof = profile::profileCircuit(benchmarks::qft(16));
    LayoutResult lay = designLayout(prof);
    Architecture arch(lay.layout);
    auto sel1 = selectBuses(arch, prof, 1);
    EXPECT_LE(sel1.selected.size(), 1u);
    auto sel3 = selectBuses(arch, prof, 3);
    EXPECT_LE(sel3.selected.size(), 3u);
    EXPECT_GE(sel3.selected.size(), sel1.selected.size());
}

TEST(BusSelection, RandomSelectionHonoursConstraints)
{
    Architecture arch(Layout::grid(4, 5));
    Rng rng(123);
    for (int round = 0; round < 10; ++round) {
        auto sel = selectBusesRandom(arch, 4, rng);
        EXPECT_LE(sel.selected.size(), 4u);
        Architecture check(Layout::grid(4, 5));
        applyBusSelection(check, sel);
    }
}

TEST(BusSelection, RandomSelectionVariesWithSeed)
{
    Architecture arch(Layout::grid(4, 5));
    Rng rng_a(1), rng_b(2);
    auto a = selectBusesRandom(arch, 6, rng_a);
    auto b = selectBusesRandom(arch, 6, rng_b);
    EXPECT_TRUE(a.selected != b.selected);
}

TEST(BusSelection, MaxPlaceableMatchesKnownGrids)
{
    Architecture a16(Layout::grid(2, 8));
    EXPECT_EQ(maxPlaceableBuses(a16), 4u);
    Architecture a20(Layout::grid(4, 5));
    EXPECT_EQ(maxPlaceableBuses(a20), 6u);
}

// --------------------------------------------------------------------
// Algorithm 3: frequency allocation
// --------------------------------------------------------------------

TEST(FreqAlloc, CenterQubitOfGrids)
{
    // 1x3 path: the middle qubit is the centroid.
    EXPECT_EQ(centerQubit(Layout::grid(1, 3)), 1u);
    // 3x3: the true centre.
    EXPECT_EQ(centerQubit(Layout::grid(3, 3)), 4u);
}

TEST(FreqAlloc, SeedQubitGetsBandMiddle)
{
    Architecture arch(Layout::grid(3, 3));
    FreqAllocOptions opts;
    opts.local_trials = 200;
    auto r = allocateFrequencies(arch, opts);
    EXPECT_EQ(r.order.front(), 4u);
    EXPECT_NEAR(r.freqs[4], 5.17, 0.051); // may move in refinement
}

TEST(FreqAlloc, AllFrequenciesInsideAllowedBand)
{
    Architecture arch(Layout::grid(2, 4));
    FreqAllocOptions opts;
    opts.local_trials = 300;
    auto r = allocateFrequencies(arch, opts);
    for (double f : r.freqs) {
        EXPECT_GE(f, arch::DeviceConstants::freq_min_ghz - 1e-9);
        EXPECT_LE(f, arch::DeviceConstants::freq_max_ghz + 1e-9);
    }
}

TEST(FreqAlloc, VisitsEveryQubitOnce)
{
    Architecture arch(Layout::grid(3, 4));
    FreqAllocOptions opts;
    opts.local_trials = 100;
    auto r = allocateFrequencies(arch, opts);
    ASSERT_EQ(r.order.size(), 12u);
    std::vector<bool> seen(12, false);
    for (auto q : r.order) {
        EXPECT_FALSE(seen[q]);
        seen[q] = true;
    }
}

TEST(FreqAlloc, OrderIsBreadthFirstFromCenter)
{
    Architecture arch(Layout::grid(3, 3));
    FreqAllocOptions opts;
    opts.local_trials = 100;
    auto r = allocateFrequencies(arch, opts);
    const auto &d = arch.distances();
    // BFS property: distances from the centre are non-decreasing
    // along the visit order.
    for (std::size_t i = 1; i < r.order.size(); ++i)
        EXPECT_LE(d(r.order.front(), r.order[i - 1]),
                  d(r.order.front(), r.order[i]) + 0);
}

TEST(FreqAlloc, DeterministicForEqualSeeds)
{
    Architecture arch(Layout::grid(2, 4));
    FreqAllocOptions opts;
    opts.local_trials = 300;
    auto a = allocateFrequencies(arch, opts);
    auto b = allocateFrequencies(arch, opts);
    EXPECT_EQ(a.freqs, b.freqs);
}

TEST(FreqAlloc, ScalarKernelEnvIsBitIdentical)
{
    // The batched candidate scan must commit the exact frequencies
    // the scalar oracle picks — any score divergence would surface
    // as a different argmax somewhere in the sweep. 301 trials also
    // exercises the remainder batch (301 % 8 == 5).
    Architecture arch(Layout::grid(2, 4));
    arch.addFourQubitBus({0, 1});
    FreqAllocOptions opts;
    opts.local_trials = 301;
    auto batched = allocateFrequencies(arch, opts);
    FreqAllocResult scalar;
    {
        qpad::test::ScopedScalarKernel forced;
        scalar = allocateFrequencies(arch, opts);
    }
    EXPECT_EQ(batched.freqs, scalar.freqs);
    EXPECT_EQ(batched.local_scores, scalar.local_scores);
}

TEST(FreqAlloc, BeatsFiveFrequencySchemeOnDesignedLayout)
{
    // The headline Section 5.4.3 property on one concrete design.
    auto prof = profile::profileCircuit(benchmarks::uccsdAnsatz(8));
    DesignFlowOptions flow;
    flow.max_buses = 2;

    flow.freq_scheme = FreqScheme::Optimized;
    auto optimized = designArchitecture(prof, flow, "opt");
    flow.freq_scheme = FreqScheme::FiveFrequency;
    auto five = designArchitecture(prof, flow, "five");

    yield::YieldOptions yo;
    yo.trials = 20000;
    double y_opt = yield::estimateYield(optimized.architecture, yo).yield;
    double y_five = yield::estimateYield(five.architecture, yo).yield;
    EXPECT_GT(y_opt, y_five);
}

TEST(FreqAlloc, RefinementSweepsHelpOrAreNeutral)
{
    auto prof = profile::profileCircuit(benchmarks::uccsdAnsatz(8));
    LayoutResult lay = designLayout(prof);
    Architecture arch(lay.layout);

    FreqAllocOptions plain;
    plain.refine_sweeps = 0;
    plain.local_trials = 2000;
    FreqAllocOptions refined = plain;
    refined.refine_sweeps = 2;

    Architecture a = arch, b = arch;
    a.setAllFrequencies(allocateFrequencies(arch, plain).freqs);
    b.setAllFrequencies(allocateFrequencies(arch, refined).freqs);

    yield::YieldOptions yo;
    yo.trials = 20000;
    double y_plain = yield::estimateYield(a, yo).yield;
    double y_refined = yield::estimateYield(b, yo).yield;
    // Refinement should not lose more than noise allows.
    EXPECT_GE(y_refined, 0.7 * y_plain);
}

// --------------------------------------------------------------------
// End-to-end flow
// --------------------------------------------------------------------

TEST(DesignFlow, ProducesCompleteArchitecture)
{
    auto prof = profile::profileCircuit(benchmarks::qft(8));
    DesignFlowOptions opts;
    opts.max_buses = 2;
    opts.freq_options.local_trials = 300;
    auto outcome = designArchitecture(prof, opts, "flow-test");
    EXPECT_EQ(outcome.architecture.name(), "flow-test");
    EXPECT_EQ(outcome.architecture.numQubits(), 8u);
    EXPECT_TRUE(outcome.architecture.frequenciesAssigned());
    EXPECT_TRUE(outcome.architecture.isConnectedGraph());
    EXPECT_LE(outcome.architecture.fourQubitBuses().size(), 2u);
}

TEST(DesignFlow, BusSchemesBehave)
{
    auto prof = profile::profileCircuit(benchmarks::qft(9));
    DesignFlowOptions opts;
    opts.freq_scheme = FreqScheme::FiveFrequency;

    opts.bus_scheme = BusScheme::None;
    auto none = designArchitecture(prof, opts, "none");
    EXPECT_TRUE(none.architecture.fourQubitBuses().empty());

    opts.bus_scheme = BusScheme::Max;
    auto max = designArchitecture(prof, opts, "max");
    EXPECT_GT(max.architecture.fourQubitBuses().size(), 0u);
    EXPECT_GT(max.architecture.numEdges(), none.architecture.numEdges());

    opts.bus_scheme = BusScheme::Weighted;
    opts.max_buses = 1;
    auto one = designArchitecture(prof, opts, "one");
    EXPECT_LE(one.architecture.fourQubitBuses().size(), 1u);
}

TEST(DesignFlow, IsingNeedsNoBuses)
{
    // Section 5.3.1: chain programs derive no benefit from 4-qubit
    // buses, so the weighted selector must pick none.
    auto prof = profile::profileCircuit(benchmarks::isingModel(16, 5));
    DesignFlowOptions opts;
    opts.freq_scheme = FreqScheme::FiveFrequency;
    opts.max_buses = 100;
    auto outcome = designArchitecture(prof, opts, "ising");
    EXPECT_TRUE(outcome.architecture.fourQubitBuses().empty());
}

TEST(DesignFlow, MoreBusesMoreEdges)
{
    auto prof = profile::profileCircuit(benchmarks::qft(12));
    DesignFlowOptions opts;
    opts.freq_scheme = FreqScheme::FiveFrequency;
    std::size_t prev_edges = 0;
    for (std::size_t k : {0u, 1u, 2u, 3u}) {
        opts.max_buses = k;
        auto outcome = designArchitecture(prof, opts, "sweep");
        if (k > 0) {
            EXPECT_GE(outcome.architecture.numEdges(), prev_edges);
        }
        prev_edges = outcome.architecture.numEdges();
    }
}

} // namespace

/**
 * @file
 * End-to-end smoke test: profile a small benchmark, design an
 * architecture, map the circuit onto it and simulate its yield.
 */

#include <gtest/gtest.h>

#include "benchmarks/generators.hh"
#include "design/design_flow.hh"
#include "mapping/sabre.hh"
#include "profile/coupling.hh"
#include "yield/yield_sim.hh"

namespace
{

using namespace qpad;

TEST(Smoke, EndToEndFlow)
{
    circuit::Circuit circ = benchmarks::uccsdAnsatz(8);
    ASSERT_GT(circ.twoQubitGateCount(), 0u);

    profile::CouplingProfile prof = profile::profileCircuit(circ);
    EXPECT_EQ(prof.num_qubits, 8u);

    design::DesignFlowOptions options;
    options.max_buses = 2;
    options.freq_options.local_trials = 500;
    design::DesignOutcome outcome =
        design::designArchitecture(prof, options, "smoke");

    ASSERT_EQ(outcome.architecture.numQubits(), 8u);
    EXPECT_TRUE(outcome.architecture.isConnectedGraph());
    EXPECT_TRUE(outcome.architecture.frequenciesAssigned());

    mapping::MappingResult mapped =
        mapping::mapCircuit(circ, outcome.architecture);
    EXPECT_TRUE(mapping::respectsCoupling(mapped.mapped,
                                          outcome.architecture));
    EXPECT_GE(mapped.total_gates, circ.unitaryGateCount());

    yield::YieldOptions yopts;
    yopts.trials = 500;
    yield::YieldResult yr =
        yield::estimateYield(outcome.architecture, yopts);
    EXPECT_GE(yr.yield, 0.0);
    EXPECT_LE(yr.yield, 1.0);
}

} // namespace

/**
 * @file
 * Tests for qpad::obs: the metrics registry (counters, gauges,
 * histograms, deterministic snapshots, deltas, exporters) and the
 * span tracer (balanced Chrome trace-event output, the zero-cost
 * disabled path, and the bit-identity of traced vs untraced runs).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <map>
#include <new>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "arch/ibm.hh"
#include "cache/fingerprint.hh"
#include "cache/store.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "runtime/parallel.hh"
#include "yield/yield_sim.hh"

// --------------------------------------------------------------------
// Counting global allocator, for the disabled-span zero-alloc test.
// The default operator new[] / delete[] forward here, so array
// allocations are counted too. GCC cannot see that the replacement
// operator new below is malloc-backed, so its new/free pairing
// heuristic misfires — suppress it for this file.
// --------------------------------------------------------------------

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace
{
std::atomic<uint64_t> g_allocs{0};
} // namespace

void *
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace qpad;

std::string
tracePath(const std::string &name)
{
    return testing::TempDir() + "qpad_trace_" + name + ".json";
}

// --------------------------------------------------------------------
// Metric primitives
// --------------------------------------------------------------------

TEST(Metrics, CounterAccumulates)
{
    obs::Counter &c = obs::counter("test.counter_accumulates");
    const uint64_t before = c.value();
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), before + 42);
}

TEST(Metrics, CounterSumsAcrossThreads)
{
    obs::Counter &c = obs::counter("test.counter_threads");
    const uint64_t before = c.value();
    constexpr int kThreads = 8;
    constexpr uint64_t kAdds = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&c] {
            for (uint64_t i = 0; i < kAdds; ++i)
                c.add();
        });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(), before + kThreads * kAdds);
}

TEST(Metrics, GaugeMovesBothWays)
{
    obs::Gauge &g = obs::gauge("test.gauge");
    g.set(10);
    g.add(-25);
    EXPECT_EQ(g.value(), -15);
    g.add(15);
    EXPECT_EQ(g.value(), 0);
}

TEST(Metrics, HistogramBucketsAndMoments)
{
    obs::Histogram &h =
        obs::histogram("test.histogram", {1.0, 10.0, 100.0});
    h.observe(0.5);   // bucket 0 (<= 1)
    h.observe(10.0);  // bucket 1 (<= 10, inclusive upper bound)
    h.observe(99.0);  // bucket 2
    h.observe(1000.0); // +inf bucket
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 10.0 + 99.0 + 1000.0);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
    const std::vector<uint64_t> buckets = h.bucketCounts();
    ASSERT_EQ(buckets.size(), 4u);
    EXPECT_EQ(buckets[0], 1u);
    EXPECT_EQ(buckets[1], 1u);
    EXPECT_EQ(buckets[2], 1u);
    EXPECT_EQ(buckets[3], 1u);
}

TEST(Metrics, RegistryReturnsSameInstance)
{
    obs::Counter &a = obs::counter("test.same_instance");
    obs::Counter &b = obs::counter("test.same_instance");
    EXPECT_EQ(&a, &b);
}

TEST(Metrics, KindMismatchPanics)
{
    obs::counter("test.kind_mismatch");
    EXPECT_THROW(obs::gauge("test.kind_mismatch"), std::logic_error);
    EXPECT_THROW(obs::histogram("test.kind_mismatch"),
                 std::logic_error);
}

// --------------------------------------------------------------------
// Snapshots
// --------------------------------------------------------------------

TEST(Metrics, SnapshotIsNameSorted)
{
    obs::counter("test.zzz_sorted");
    obs::counter("test.aaa_sorted");
    const obs::Snapshot snap = obs::snapshot();
    ASSERT_GE(snap.size(), 2u);
    for (std::size_t i = 1; i < snap.size(); ++i)
        EXPECT_LT(snap[i - 1].name, snap[i].name);
}

TEST(Metrics, SnapshotTotalsIndependentOfThreadCount)
{
    // The same instrumented workload must report identical totals at
    // every thread count: counts reflect work done, not scheduling.
    constexpr std::size_t kN = 1000;
    uint64_t totals[2];
    int slot = 0;
    for (std::size_t threads : {1u, 4u}) {
        obs::Counter &c = obs::counter("test.thread_independent");
        const uint64_t before = c.value();
        runtime::Options exec;
        exec.num_threads = threads;
        runtime::parallel_for(
            exec, kN, 8,
            [&c](std::size_t begin, std::size_t end, std::size_t) {
                c.add(end - begin);
            });
        totals[slot++] = c.value() - before;
    }
    EXPECT_EQ(totals[0], kN);
    EXPECT_EQ(totals[1], kN);
}

TEST(Metrics, DeltaSinceSubtractsCountersKeepsGauges)
{
    obs::Counter &c = obs::counter("test.delta_counter");
    obs::Gauge &g = obs::gauge("test.delta_gauge");
    obs::Histogram &h = obs::histogram("test.delta_hist");
    c.add(5);
    g.set(100);
    h.observe(1.0);
    const obs::Snapshot before = obs::snapshot();
    c.add(7);
    g.set(42);
    h.observe(2.0);
    const obs::Snapshot delta = obs::deltaSince(before);
    EXPECT_DOUBLE_EQ(obs::valueOf(delta, "test.delta_counter"), 7.0);
    // Gauges are levels: the delta keeps the current value.
    EXPECT_DOUBLE_EQ(obs::valueOf(delta, "test.delta_gauge"), 42.0);
    const obs::Sample *hist = obs::find(delta, "test.delta_hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count, 1u);
    EXPECT_DOUBLE_EQ(hist->sum, 2.0);
}

TEST(Metrics, FindAndValueOf)
{
    obs::counter("test.value_of").add(9);
    const obs::Snapshot snap = obs::snapshot();
    EXPECT_EQ(obs::find(snap, "test.no_such_metric"), nullptr);
    EXPECT_DOUBLE_EQ(obs::valueOf(snap, "test.no_such_metric"), 0.0);
    EXPECT_GE(obs::valueOf(snap, "test.value_of"), 9.0);
}

TEST(Metrics, WritersProduceOutput)
{
    obs::counter("test.writer_counter").add(3);
    const obs::Snapshot snap = obs::snapshot();

    std::ostringstream table;
    obs::writeTable(table, snap, "test.writer_", "  ");
    EXPECT_NE(table.str().find("test.writer_counter"),
              std::string::npos);

    std::ostringstream json;
    obs::writeJson(json, snap);
    const std::string text = json.str();
    EXPECT_EQ(text.rfind("{\"metrics\":[", 0), 0u);
    // Structurally balanced braces/brackets (names and kinds are
    // code-controlled, so no string literal ever contains either).
    int braces = 0, brackets = 0;
    for (char ch : text) {
        braces += ch == '{';
        braces -= ch == '}';
        brackets += ch == '[';
        brackets -= ch == ']';
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

// --------------------------------------------------------------------
// Instrumented subsystems publish into the registry
// --------------------------------------------------------------------

TEST(Metrics, RuntimeRegionsPublish)
{
    const obs::Snapshot before = obs::snapshot();
    runtime::Options exec;
    exec.num_threads = 4;
    std::atomic<std::size_t> sum{0};
    runtime::parallel_for(
        exec, 64, 1,
        [&sum](std::size_t begin, std::size_t, std::size_t) {
            sum.fetch_add(begin, std::memory_order_relaxed);
        });
    const obs::Snapshot delta = obs::deltaSince(before);
    // Grain 1 over 64 indices = 64 chunks, whether the region ran
    // parallel or degraded to sequential.
    EXPECT_DOUBLE_EQ(obs::valueOf(delta, "runtime.chunks"), 64.0);
    EXPECT_GE(obs::valueOf(delta, "runtime.regions") +
                  obs::valueOf(delta, "runtime.seq_regions"),
              1.0);
}

TEST(Metrics, CacheStorePublishesAndGaugesReturnToBaseline)
{
    const obs::Snapshot at_start = obs::snapshot();
    const double bytes0 = obs::valueOf(at_start, "cache.bytes");
    const double entries0 = obs::valueOf(at_start, "cache.entries");
    {
        cache::Store store;
        cache::Encoder enc;
        enc.str("obs.test.entry");
        const cache::Fingerprint key = enc.digest();
        store.put(key, std::vector<uint8_t>{1, 2, 3});
        std::vector<uint8_t> out;
        EXPECT_TRUE(store.get(key, out));
        enc.u64(99);
        EXPECT_FALSE(store.get(enc.digest(), out));

        const obs::Snapshot delta = obs::deltaSince(at_start);
        EXPECT_DOUBLE_EQ(obs::valueOf(delta, "cache.inserts"), 1.0);
        EXPECT_DOUBLE_EQ(obs::valueOf(delta, "cache.hits"), 1.0);
        EXPECT_DOUBLE_EQ(obs::valueOf(delta, "cache.misses"), 1.0);
        EXPECT_GT(obs::valueOf(delta, "cache.bytes"), bytes0);
        EXPECT_EQ(obs::valueOf(delta, "cache.entries"), entries0 + 1);
    }
    // The destroyed store returned its residency.
    const obs::Snapshot after = obs::snapshot();
    EXPECT_DOUBLE_EQ(obs::valueOf(after, "cache.bytes"), bytes0);
    EXPECT_DOUBLE_EQ(obs::valueOf(after, "cache.entries"), entries0);
}

// --------------------------------------------------------------------
// Span tracer
// --------------------------------------------------------------------

TEST(Trace, DisabledSpanDoesNotAllocate)
{
    if (obs::tracingEnabled())
        GTEST_SKIP() << "QPAD_TRACE is set; disabled path not active";
    const uint64_t before = g_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i) {
        QPAD_SPAN("obs.test_disabled");
    }
    EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), before);
}

TEST(Trace, StartIsExclusive)
{
    if (obs::tracingEnabled())
        GTEST_SKIP() << "QPAD_TRACE is set; session already active";
    const std::string path = tracePath("exclusive");
    ASSERT_TRUE(obs::startTracing(path));
    EXPECT_FALSE(obs::startTracing(path));
    obs::stopTracing();
}

/** Parse the one-event-per-line trace the writer emits. */
struct ParsedEvent
{
    std::string name;
    char phase = '?';
    int tid = -1;
};

std::vector<ParsedEvent>
parseTrace(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing trace file " << path;
    std::vector<ParsedEvent> events;
    std::string line;
    while (std::getline(in, line)) {
        const auto name_at = line.find("\"name\":\"");
        if (name_at == std::string::npos)
            continue;
        ParsedEvent e;
        const auto name_begin = name_at + 8;
        e.name = line.substr(name_begin,
                             line.find('"', name_begin) - name_begin);
        const auto ph_at = line.find("\"ph\":\"");
        EXPECT_NE(ph_at, std::string::npos);
        e.phase = line[ph_at + 6];
        const auto tid_at = line.find("\"tid\":");
        EXPECT_NE(tid_at, std::string::npos);
        e.tid = std::atoi(line.c_str() + tid_at + 6);
        events.push_back(e);
    }
    return events;
}

TEST(Trace, EventsBalanceAndNestPerThread)
{
    if (obs::tracingEnabled())
        GTEST_SKIP() << "QPAD_TRACE is set; session already active";
    const std::string path = tracePath("balance");
    ASSERT_TRUE(obs::startTracing(path));
    {
        QPAD_SPAN("obs.test_outer");
        {
            QPAD_SPAN("obs.test_inner");
        }
    }
    // Spans from several threads land in distinct tid streams.
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([] {
            QPAD_SPAN("obs.test_worker");
            QPAD_SPAN("obs.test_worker_inner");
        });
    for (auto &t : threads)
        t.join();
    obs::stopTracing();

    const std::vector<ParsedEvent> events = parseTrace(path);
    // 2 main-thread spans + 2 spans x 4 threads, a B and an E each.
    EXPECT_EQ(events.size(), 2u * (2u + 2u * 4u));

    // Replay each tid's stream against a stack: every E must close
    // the innermost open B of the same name, and every stream must
    // end empty — proper nesting, not just balanced counts.
    std::map<int, std::vector<std::string>> stacks;
    for (const ParsedEvent &e : events) {
        ASSERT_TRUE(e.phase == 'B' || e.phase == 'E') << e.phase;
        auto &stack = stacks[e.tid];
        if (e.phase == 'B') {
            stack.push_back(e.name);
        } else {
            ASSERT_FALSE(stack.empty());
            EXPECT_EQ(stack.back(), e.name);
            stack.pop_back();
        }
    }
    for (const auto &[tid, stack] : stacks)
        EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
}

TEST(Trace, FileIsStructurallyValidJson)
{
    if (obs::tracingEnabled())
        GTEST_SKIP() << "QPAD_TRACE is set; session already active";
    const std::string path = tracePath("valid_json");
    ASSERT_TRUE(obs::startTracing(path));
    {
        QPAD_SPAN("obs.test_json");
    }
    obs::stopTracing();

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    EXPECT_EQ(text.rfind("{\"displayTimeUnit\":\"ms\","
                         "\"traceEvents\":[",
                         0),
              0u);
    int braces = 0, brackets = 0;
    for (char ch : text) {
        braces += ch == '{';
        braces -= ch == '}';
        brackets += ch == '[';
        brackets -= ch == ']';
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST(Trace, SessionsDoNotLeakEventsIntoEachOther)
{
    if (obs::tracingEnabled())
        GTEST_SKIP() << "QPAD_TRACE is set; session already active";
    const std::string first = tracePath("first_session");
    ASSERT_TRUE(obs::startTracing(first));
    {
        QPAD_SPAN("obs.test_first");
    }
    obs::stopTracing();

    const std::string second = tracePath("second_session");
    ASSERT_TRUE(obs::startTracing(second));
    {
        QPAD_SPAN("obs.test_second");
    }
    obs::stopTracing();

    for (const ParsedEvent &e : parseTrace(second))
        EXPECT_EQ(e.name, "obs.test_second");
}

// --------------------------------------------------------------------
// Observability never perturbs results
// --------------------------------------------------------------------

TEST(Trace, YieldEstimateBitIdenticalTracedVsUntraced)
{
    if (obs::tracingEnabled())
        GTEST_SKIP() << "QPAD_TRACE is set; session already active";
    auto arch = arch::ibm16Q(true);
    yield::YieldOptions opts;
    opts.trials = 4000;
    opts.sigma_ghz = 0.030;
    opts.seed = 2020;
    opts.collect_condition_stats = true;

    const yield::YieldResult plain = yield::estimateYield(arch, opts);

    ASSERT_TRUE(obs::startTracing(tracePath("bit_identity")));
    const yield::YieldResult traced = yield::estimateYield(arch, opts);
    obs::stopTracing();

    EXPECT_EQ(traced.successes, plain.successes);
    EXPECT_EQ(traced.trials, plain.trials);
    EXPECT_EQ(traced.condition_trials, plain.condition_trials);
    EXPECT_DOUBLE_EQ(traced.yield, plain.yield);
}

} // namespace

/**
 * @file
 * Tests for qpad::obs: the metrics registry (counters, gauges,
 * histograms, deterministic snapshots, deltas, exporters) and the
 * span tracer (balanced Chrome trace-event output, the zero-cost
 * disabled path, and the bit-identity of traced vs untraced runs).
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <new>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "arch/ibm.hh"
#include "cache/fingerprint.hh"
#include "cache/store.hh"
#include "exec/context.hh"
#include "obs/flight.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "runtime/parallel.hh"
#include "runtime/region.hh"
#include "yield/yield_sim.hh"

// --------------------------------------------------------------------
// Counting global allocator, for the disabled-span zero-alloc test.
// The default operator new[] / delete[] forward here, so array
// allocations are counted too. GCC cannot see that the replacement
// operator new below is malloc-backed, so its new/free pairing
// heuristic misfires — suppress it for this file.
// --------------------------------------------------------------------

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace
{
std::atomic<uint64_t> g_allocs{0};
} // namespace

void *
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace qpad;

std::string
tracePath(const std::string &name)
{
    return testing::TempDir() + "qpad_trace_" + name + ".json";
}

// --------------------------------------------------------------------
// Metric primitives
// --------------------------------------------------------------------

TEST(Metrics, CounterAccumulates)
{
    obs::Counter &c = obs::counter("test.counter_accumulates");
    const uint64_t before = c.value();
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), before + 42);
}

TEST(Metrics, CounterSumsAcrossThreads)
{
    obs::Counter &c = obs::counter("test.counter_threads");
    const uint64_t before = c.value();
    constexpr int kThreads = 8;
    constexpr uint64_t kAdds = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&c] {
            for (uint64_t i = 0; i < kAdds; ++i)
                c.add();
        });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(), before + kThreads * kAdds);
}

TEST(Metrics, GaugeMovesBothWays)
{
    obs::Gauge &g = obs::gauge("test.gauge");
    g.set(10);
    g.add(-25);
    EXPECT_EQ(g.value(), -15);
    g.add(15);
    EXPECT_EQ(g.value(), 0);
}

TEST(Metrics, HistogramBucketsAndMoments)
{
    obs::Histogram &h =
        obs::histogram("test.histogram", {1.0, 10.0, 100.0});
    h.observe(0.5);   // bucket 0 (<= 1)
    h.observe(10.0);  // bucket 1 (<= 10, inclusive upper bound)
    h.observe(99.0);  // bucket 2
    h.observe(1000.0); // +inf bucket
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 10.0 + 99.0 + 1000.0);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
    const std::vector<uint64_t> buckets = h.bucketCounts();
    ASSERT_EQ(buckets.size(), 4u);
    EXPECT_EQ(buckets[0], 1u);
    EXPECT_EQ(buckets[1], 1u);
    EXPECT_EQ(buckets[2], 1u);
    EXPECT_EQ(buckets[3], 1u);
}

TEST(Metrics, RegistryReturnsSameInstance)
{
    obs::Counter &a = obs::counter("test.same_instance");
    obs::Counter &b = obs::counter("test.same_instance");
    EXPECT_EQ(&a, &b);
}

TEST(Metrics, KindMismatchPanics)
{
    obs::counter("test.kind_mismatch");
    EXPECT_THROW(obs::gauge("test.kind_mismatch"), std::logic_error);
    EXPECT_THROW(obs::histogram("test.kind_mismatch"),
                 std::logic_error);
}

// --------------------------------------------------------------------
// Snapshots
// --------------------------------------------------------------------

TEST(Metrics, SnapshotIsNameSorted)
{
    obs::counter("test.zzz_sorted");
    obs::counter("test.aaa_sorted");
    const obs::Snapshot snap = obs::snapshot();
    ASSERT_GE(snap.size(), 2u);
    for (std::size_t i = 1; i < snap.size(); ++i)
        EXPECT_LT(snap[i - 1].name, snap[i].name);
}

TEST(Metrics, SnapshotTotalsIndependentOfThreadCount)
{
    // The same instrumented workload must report identical totals at
    // every thread count: counts reflect work done, not scheduling.
    constexpr std::size_t kN = 1000;
    uint64_t totals[2];
    int slot = 0;
    for (std::size_t threads : {1u, 4u}) {
        obs::Counter &c = obs::counter("test.thread_independent");
        const uint64_t before = c.value();
        runtime::Options exec;
        exec.num_threads = threads;
        runtime::parallel_for(
            exec, kN, 8,
            [&c](std::size_t begin, std::size_t end, std::size_t) {
                c.add(end - begin);
            });
        totals[slot++] = c.value() - before;
    }
    EXPECT_EQ(totals[0], kN);
    EXPECT_EQ(totals[1], kN);
}

TEST(Metrics, DeltaSinceSubtractsCountersKeepsGauges)
{
    obs::Counter &c = obs::counter("test.delta_counter");
    obs::Gauge &g = obs::gauge("test.delta_gauge");
    obs::Histogram &h = obs::histogram("test.delta_hist");
    c.add(5);
    g.set(100);
    h.observe(1.0);
    const obs::Snapshot before = obs::snapshot();
    c.add(7);
    g.set(42);
    h.observe(2.0);
    const obs::Snapshot delta = obs::deltaSince(before);
    EXPECT_DOUBLE_EQ(obs::valueOf(delta, "test.delta_counter"), 7.0);
    // Gauges are levels: the delta keeps the current value.
    EXPECT_DOUBLE_EQ(obs::valueOf(delta, "test.delta_gauge"), 42.0);
    const obs::Sample *hist = obs::find(delta, "test.delta_hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count, 1u);
    EXPECT_DOUBLE_EQ(hist->sum, 2.0);
}

TEST(Metrics, FindAndValueOf)
{
    obs::counter("test.value_of").add(9);
    const obs::Snapshot snap = obs::snapshot();
    EXPECT_EQ(obs::find(snap, "test.no_such_metric"), nullptr);
    EXPECT_DOUBLE_EQ(obs::valueOf(snap, "test.no_such_metric"), 0.0);
    EXPECT_GE(obs::valueOf(snap, "test.value_of"), 9.0);
}

TEST(Metrics, WritersProduceOutput)
{
    obs::counter("test.writer_counter").add(3);
    const obs::Snapshot snap = obs::snapshot();

    std::ostringstream table;
    obs::writeTable(table, snap, "test.writer_", "  ");
    EXPECT_NE(table.str().find("test.writer_counter"),
              std::string::npos);

    std::ostringstream json;
    obs::writeJson(json, snap);
    const std::string text = json.str();
    EXPECT_EQ(text.rfind("{\"metrics\":[", 0), 0u);
    // Structurally balanced braces/brackets (names and kinds are
    // code-controlled, so no string literal ever contains either).
    int braces = 0, brackets = 0;
    for (char ch : text) {
        braces += ch == '{';
        braces -= ch == '}';
        brackets += ch == '[';
        brackets -= ch == ']';
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

// --------------------------------------------------------------------
// Percentiles
// --------------------------------------------------------------------

TEST(Metrics, SamplePercentilesInterpolateAndClampToMax)
{
    obs::Histogram &h =
        obs::histogram("test.percentile_hist", {1.0, 2.0, 4.0, 8.0});
    for (int i = 0; i < 50; ++i)
        h.observe(0.5); // bucket 0: (0, 1]
    for (int i = 0; i < 30; ++i)
        h.observe(1.5); // bucket 1: (1, 2]
    for (int i = 0; i < 15; ++i)
        h.observe(3.0); // bucket 2: (2, 4]
    for (int i = 0; i < 4; ++i)
        h.observe(6.0); // bucket 3: (4, 8]
    h.observe(100.0);   // +inf bucket, max = 100

    const obs::Snapshot snap = obs::snapshot();
    const obs::Sample *s = obs::find(snap, "test.percentile_hist");
    ASSERT_NE(s, nullptr);
    // Rank 25 of 100 lands halfway into bucket 0: 0 + 0.5 * (1 - 0).
    EXPECT_DOUBLE_EQ(obs::samplePercentile(*s, 0.25), 0.5);
    // Ranks 50 / 95 / 99 exhaust buckets 0 / 2 / 3 exactly, so the
    // interpolation returns each bucket's upper bound.
    EXPECT_DOUBLE_EQ(obs::samplePercentile(*s, 0.50), 1.0);
    EXPECT_DOUBLE_EQ(obs::samplePercentile(*s, 0.95), 4.0);
    EXPECT_DOUBLE_EQ(obs::samplePercentile(*s, 0.99), 8.0);
    // The +inf bucket (and the result) top out at the observed max.
    EXPECT_DOUBLE_EQ(obs::samplePercentile(*s, 1.0), 100.0);
}

TEST(Metrics, SamplePercentileEdgeCases)
{
    obs::histogram("test.percentile_empty");
    obs::counter("test.percentile_counter").add(5);
    const obs::Snapshot snap = obs::snapshot();

    const obs::Sample *empty =
        obs::find(snap, "test.percentile_empty");
    ASSERT_NE(empty, nullptr);
    EXPECT_DOUBLE_EQ(obs::samplePercentile(*empty, 0.5), 0.0);

    // Non-histogram samples report 0 rather than inventing a value.
    const obs::Sample *counter =
        obs::find(snap, "test.percentile_counter");
    ASSERT_NE(counter, nullptr);
    EXPECT_DOUBLE_EQ(obs::samplePercentile(*counter, 0.5), 0.0);
}

TEST(Metrics, WritersIncludePercentiles)
{
    obs::histogram("test.percentile_export").observe(0.5);
    const obs::Snapshot snap = obs::snapshot();

    std::ostringstream table;
    obs::writeTable(table, snap, "test.percentile_export");
    EXPECT_NE(table.str().find("p50="), std::string::npos);
    EXPECT_NE(table.str().find("p95="), std::string::npos);
    EXPECT_NE(table.str().find("p99="), std::string::npos);

    const obs::Sample *s = obs::find(snap, "test.percentile_export");
    ASSERT_NE(s, nullptr);
    std::ostringstream json;
    obs::writeSampleJson(json, *s);
    EXPECT_NE(json.str().find("\"p50\":"), std::string::npos);
    EXPECT_NE(json.str().find("\"p95\":"), std::string::npos);
    EXPECT_NE(json.str().find("\"p99\":"), std::string::npos);
}

// --------------------------------------------------------------------
// Instrumented subsystems publish into the registry
// --------------------------------------------------------------------

TEST(Metrics, RuntimeRegionsPublish)
{
    const obs::Snapshot before = obs::snapshot();
    runtime::Options exec;
    exec.num_threads = 4;
    std::atomic<std::size_t> sum{0};
    runtime::parallel_for(
        exec, 64, 1,
        [&sum](std::size_t begin, std::size_t, std::size_t) {
            sum.fetch_add(begin, std::memory_order_relaxed);
        });
    const obs::Snapshot delta = obs::deltaSince(before);
    // Grain 1 over 64 indices = 64 chunks, whether the region ran
    // parallel or degraded to sequential.
    EXPECT_DOUBLE_EQ(obs::valueOf(delta, "runtime.chunks"), 64.0);
    EXPECT_GE(obs::valueOf(delta, "runtime.regions") +
                  obs::valueOf(delta, "runtime.seq_regions"),
              1.0);
}

TEST(Metrics, CacheStorePublishesAndGaugesReturnToBaseline)
{
    const obs::Snapshot at_start = obs::snapshot();
    const double bytes0 = obs::valueOf(at_start, "cache.bytes");
    const double entries0 = obs::valueOf(at_start, "cache.entries");
    {
        cache::Store store;
        cache::Encoder enc;
        enc.str("obs.test.entry");
        const cache::Fingerprint key = enc.digest();
        store.put(key, std::vector<uint8_t>{1, 2, 3});
        std::vector<uint8_t> out;
        EXPECT_TRUE(store.get(key, out));
        enc.u64(99);
        EXPECT_FALSE(store.get(enc.digest(), out));

        const obs::Snapshot delta = obs::deltaSince(at_start);
        EXPECT_DOUBLE_EQ(obs::valueOf(delta, "cache.inserts"), 1.0);
        EXPECT_DOUBLE_EQ(obs::valueOf(delta, "cache.hits"), 1.0);
        EXPECT_DOUBLE_EQ(obs::valueOf(delta, "cache.misses"), 1.0);
        EXPECT_GT(obs::valueOf(delta, "cache.bytes"), bytes0);
        EXPECT_EQ(obs::valueOf(delta, "cache.entries"), entries0 + 1);
    }
    // The destroyed store returned its residency.
    const obs::Snapshot after = obs::snapshot();
    EXPECT_DOUBLE_EQ(obs::valueOf(after, "cache.bytes"), bytes0);
    EXPECT_DOUBLE_EQ(obs::valueOf(after, "cache.entries"), entries0);
}

// --------------------------------------------------------------------
// Span tracer
// --------------------------------------------------------------------

TEST(Trace, DisabledSpanDoesNotAllocate)
{
    if (obs::tracingEnabled())
        GTEST_SKIP() << "QPAD_TRACE is set; disabled path not active";
    const uint64_t before = g_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i) {
        QPAD_SPAN("obs.test_disabled");
    }
    EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), before);
}

TEST(Trace, StartIsExclusive)
{
    if (obs::tracingEnabled())
        GTEST_SKIP() << "QPAD_TRACE is set; session already active";
    const std::string path = tracePath("exclusive");
    ASSERT_TRUE(obs::startTracing(path));
    EXPECT_FALSE(obs::startTracing(path));
    obs::stopTracing();
}

/** Parse the one-event-per-line trace the writer emits. */
struct ParsedEvent
{
    std::string name;
    char phase = '?';
    int tid = -1;
};

std::vector<ParsedEvent>
parseTrace(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing trace file " << path;
    std::vector<ParsedEvent> events;
    std::string line;
    while (std::getline(in, line)) {
        const auto name_at = line.find("\"name\":\"");
        if (name_at == std::string::npos)
            continue;
        ParsedEvent e;
        const auto name_begin = name_at + 8;
        e.name = line.substr(name_begin,
                             line.find('"', name_begin) - name_begin);
        const auto ph_at = line.find("\"ph\":\"");
        EXPECT_NE(ph_at, std::string::npos);
        e.phase = line[ph_at + 6];
        const auto tid_at = line.find("\"tid\":");
        EXPECT_NE(tid_at, std::string::npos);
        e.tid = std::atoi(line.c_str() + tid_at + 6);
        events.push_back(e);
    }
    return events;
}

TEST(Trace, EventsBalanceAndNestPerThread)
{
    if (obs::tracingEnabled())
        GTEST_SKIP() << "QPAD_TRACE is set; session already active";
    const std::string path = tracePath("balance");
    ASSERT_TRUE(obs::startTracing(path));
    {
        QPAD_SPAN("obs.test_outer");
        {
            QPAD_SPAN("obs.test_inner");
        }
    }
    // Spans from several threads land in distinct tid streams.
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([] {
            QPAD_SPAN("obs.test_worker");
            QPAD_SPAN("obs.test_worker_inner");
        });
    for (auto &t : threads)
        t.join();
    obs::stopTracing();

    const std::vector<ParsedEvent> events = parseTrace(path);
    // 2 main-thread spans + 2 spans x 4 threads, a B and an E each.
    EXPECT_EQ(events.size(), 2u * (2u + 2u * 4u));

    // Replay each tid's stream against a stack: every E must close
    // the innermost open B of the same name, and every stream must
    // end empty — proper nesting, not just balanced counts.
    std::map<int, std::vector<std::string>> stacks;
    for (const ParsedEvent &e : events) {
        ASSERT_TRUE(e.phase == 'B' || e.phase == 'E') << e.phase;
        auto &stack = stacks[e.tid];
        if (e.phase == 'B') {
            stack.push_back(e.name);
        } else {
            ASSERT_FALSE(stack.empty());
            EXPECT_EQ(stack.back(), e.name);
            stack.pop_back();
        }
    }
    for (const auto &[tid, stack] : stacks)
        EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
}

TEST(Trace, FileIsStructurallyValidJson)
{
    if (obs::tracingEnabled())
        GTEST_SKIP() << "QPAD_TRACE is set; session already active";
    const std::string path = tracePath("valid_json");
    ASSERT_TRUE(obs::startTracing(path));
    {
        QPAD_SPAN("obs.test_json");
    }
    obs::stopTracing();

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    EXPECT_EQ(text.rfind("{\"displayTimeUnit\":\"ms\","
                         "\"traceEvents\":[",
                         0),
              0u);
    int braces = 0, brackets = 0;
    for (char ch : text) {
        braces += ch == '{';
        braces -= ch == '}';
        brackets += ch == '[';
        brackets -= ch == ']';
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST(Trace, SessionsDoNotLeakEventsIntoEachOther)
{
    if (obs::tracingEnabled())
        GTEST_SKIP() << "QPAD_TRACE is set; session already active";
    const std::string first = tracePath("first_session");
    ASSERT_TRUE(obs::startTracing(first));
    {
        QPAD_SPAN("obs.test_first");
    }
    obs::stopTracing();

    const std::string second = tracePath("second_session");
    ASSERT_TRUE(obs::startTracing(second));
    {
        QPAD_SPAN("obs.test_second");
    }
    obs::stopTracing();

    for (const ParsedEvent &e : parseTrace(second))
        EXPECT_EQ(e.name, "obs.test_second");
}

// --------------------------------------------------------------------
// Observability never perturbs results
// --------------------------------------------------------------------

TEST(Trace, YieldEstimateBitIdenticalTracedVsUntraced)
{
    if (obs::tracingEnabled())
        GTEST_SKIP() << "QPAD_TRACE is set; session already active";
    auto arch = arch::ibm16Q(true);
    yield::YieldOptions opts;
    opts.trials = 4000;
    opts.sigma_ghz = 0.030;
    opts.seed = 2020;
    opts.collect_condition_stats = true;

    const yield::YieldResult plain = yield::estimateYield(arch, opts);

    ASSERT_TRUE(obs::startTracing(tracePath("bit_identity")));
    const yield::YieldResult traced = yield::estimateYield(arch, opts);
    obs::stopTracing();

    EXPECT_EQ(traced.successes, plain.successes);
    EXPECT_EQ(traced.trials, plain.trials);
    EXPECT_EQ(traced.condition_trials, plain.condition_trials);
    EXPECT_DOUBLE_EQ(traced.yield, plain.yield);
}

// --------------------------------------------------------------------
// Structured logging
// --------------------------------------------------------------------

/** Swap the log sink for a test; restores the previous one. */
class LogConfigGuard
{
  public:
    LogConfigGuard() : saved_(obs::currentLogConfig()) {}
    ~LogConfigGuard() { obs::configureLog(saved_); }

  private:
    obs::LogConfig saved_;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::string
logPath(const std::string &name)
{
    const std::string path =
        testing::TempDir() + "qpad_log_" + name + ".txt";
    std::remove(path.c_str()); // the sink appends
    return path;
}

TEST(Log, ThresholdFiltersAndTextFormatIsDeterministic)
{
    LogConfigGuard guard;
    obs::LogConfig cfg;
    cfg.path = logPath("filter");
    cfg.min_level = obs::LogLevel::kWarn;
    obs::configureLog(cfg);

    EXPECT_FALSE(obs::logEnabled(obs::LogLevel::kDebug));
    EXPECT_FALSE(obs::logEnabled(obs::LogLevel::kInfo));
    EXPECT_TRUE(obs::logEnabled(obs::LogLevel::kWarn));
    EXPECT_TRUE(obs::logEnabled(obs::LogLevel::kError));

    obs::logInfo("obs.test_log_dropped");
    obs::logWarn("obs.test_log_kept", {{"answer", 42},
                                       {"ratio", 3.5},
                                       {"ok", true},
                                       {"who", "qpad"}});

    const std::string text = readFile(cfg.path);
    EXPECT_EQ(text.find("obs.test_log_dropped"), std::string::npos);
    // Fields render in the order written, with no timestamp in the
    // text format — the body is byte-stable across runs.
    EXPECT_NE(text.find("[warn] obs.test_log_kept answer=42 "
                        "ratio=3.5 ok=true who=\"qpad\""),
              std::string::npos)
        << text;
}

TEST(Log, OffDropsEverything)
{
    LogConfigGuard guard;
    obs::LogConfig cfg;
    cfg.enabled = false;
    cfg.path = logPath("off");
    obs::configureLog(cfg);

    EXPECT_FALSE(obs::logEnabled(obs::LogLevel::kError));
    obs::logError("obs.test_log_off");
    EXPECT_EQ(readFile(cfg.path).find("obs.test_log_off"),
              std::string::npos);
}

TEST(Log, JsonFormatCarriesRequestId)
{
    LogConfigGuard guard;
    obs::LogConfig cfg;
    cfg.path = logPath("json");
    cfg.format = obs::LogFormat::kJson;
    obs::configureLog(cfg);

    exec::Context ctx;
    {
        exec::RequestScope scope(ctx, "log_json");
        obs::logInfo("obs.test_log_json", {{"k", "v"}});
    }
    obs::logInfo("obs.test_log_untagged");

    const std::string text = readFile(cfg.path);
    EXPECT_EQ(text.rfind("{\"ts_ns\":", 0), 0u) << text;
    EXPECT_NE(text.find("\"event\":\"obs.test_log_json\",\"rid\":" +
                        std::to_string(ctx.id()) + ",\"k\":\"v\""),
              std::string::npos)
        << text;
    // Outside the scope the thread is untagged again: no rid field.
    const auto untagged = text.find("obs.test_log_untagged");
    ASSERT_NE(untagged, std::string::npos);
    EXPECT_EQ(text.find("\"rid\":", untagged), std::string::npos);
}

TEST(Log, ConfigRoundTripsThroughCurrentLogConfig)
{
    LogConfigGuard guard;
    obs::LogConfig cfg;
    cfg.path = logPath("roundtrip");
    cfg.format = obs::LogFormat::kJson;
    cfg.min_level = obs::LogLevel::kError;
    obs::configureLog(cfg);

    const obs::LogConfig got = obs::currentLogConfig();
    EXPECT_TRUE(got.enabled);
    EXPECT_EQ(got.path, cfg.path);
    EXPECT_EQ(got.format, obs::LogFormat::kJson);
    EXPECT_EQ(got.min_level, obs::LogLevel::kError);
}

// --------------------------------------------------------------------
// Flight recorder
// --------------------------------------------------------------------

TEST(Flight, RecordIsZeroAllocOnceWarm)
{
    // First call pays the thread's one-time ring allocation.
    obs::flight::record("obs.test_flight_warmup", 'B');
    obs::flight::record("obs.test_flight_warmup", 'E');
    const uint64_t before = g_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 5000; ++i) {
        obs::flight::record("obs.test_flight_hot", 'B');
        obs::flight::record("obs.test_flight_hot", 'E');
    }
    EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), before);
}

TEST(Flight, WrappedRingDumpsBalancedNewestEvents)
{
    // A dedicated thread overfills its ring (2x capacity) and exits;
    // the leaked ring must still be dumpable, retaining the newest
    // events as a properly nested stream.
    std::thread recorder([] {
        obs::flight::record("obs.test_wrap_outer", 'B');
        for (std::size_t i = 0; i < obs::flight::kRingEvents; ++i) {
            obs::flight::record("obs.test_wrap_span", 'B');
            obs::flight::record("obs.test_wrap_span", 'E');
        }
        // obs.test_wrap_outer's 'B' has been overwritten by now and
        // its 'E' never recorded — the dump must stay balanced anyway.
    });
    recorder.join();

    const std::string path = tracePath("flight_wrap");
    ASSERT_TRUE(obs::flight::dumpTo(path));

    // Stack-replay every thread's stream (the dump covers all rings,
    // including other tests' residue — balanced replay must hold for
    // each). Log events render as instant events; skip them.
    std::map<int, std::vector<std::string>> stacks;
    std::size_t wrap_events = 0;
    for (const ParsedEvent &e : parseTrace(path)) {
        if (e.phase == 'i')
            continue;
        ASSERT_TRUE(e.phase == 'B' || e.phase == 'E') << e.phase;
        auto &stack = stacks[e.tid];
        if (e.phase == 'B') {
            stack.push_back(e.name);
        } else {
            ASSERT_FALSE(stack.empty()) << e.name;
            EXPECT_EQ(stack.back(), e.name);
            stack.pop_back();
        }
        if (e.name.rfind("obs.test_wrap", 0) == 0)
            ++wrap_events;
    }
    for (const auto &[tid, stack] : stacks)
        EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;

    // The ring holds kRingEvents slots; the recorder wrote twice
    // that, so the newest ring-full survives (+2 for any synthetic
    // balancing edges).
    EXPECT_GE(wrap_events, obs::flight::kRingEvents / 2);
    EXPECT_LE(wrap_events, obs::flight::kRingEvents + 2);
}

TEST(Flight, SignalSafeDumpIsStructurallyValidJson)
{
    obs::flight::record("obs.test_sigsafe", 'B');
    obs::flight::record("obs.test_sigsafe", 'E');
    const std::string path = tracePath("flight_sigsafe");
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    ASSERT_GE(fd, 0);
    obs::flight::dumpSignalSafe(fd);
    ::close(fd);

    const std::string text = readFile(path);
    EXPECT_EQ(text.rfind("{\"displayTimeUnit\":\"ms\","
                         "\"traceEvents\":[",
                         0),
              0u);
    EXPECT_NE(text.find("\"name\":\"obs.test_sigsafe\""),
              std::string::npos);
    int braces = 0, brackets = 0;
    for (char ch : text) {
        braces += ch == '{';
        braces -= ch == '}';
        brackets += ch == '[';
        brackets -= ch == ']';
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST(FlightDeathTest, FatalSignalDumpsTheArmedPath)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const std::string path = tracePath("flight_crash");
    std::remove(path.c_str());
    EXPECT_EXIT(
        {
            obs::flight::record("obs.test_crash", 'B');
            obs::flight::arm(path);
            std::raise(SIGSEGV);
        },
        ::testing::KilledBySignal(SIGSEGV), "");

    // The handler dumped before re-raising the signal; the file must
    // exist, parse, and contain the pre-crash event.
    const std::string text = readFile(path);
    ASSERT_FALSE(text.empty()) << "no crash dump at " << path;
    EXPECT_NE(text.find("\"name\":\"obs.test_crash\""),
              std::string::npos);
    int braces = 0, brackets = 0;
    for (char ch : text) {
        braces += ch == '{';
        braces -= ch == '}';
        brackets += ch == '[';
        brackets -= ch == ']';
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

// --------------------------------------------------------------------
// Request-id propagation into runner threads
// --------------------------------------------------------------------

TEST(Flight, RunnerThreadsCarryTheRegionRequestId)
{
    // Deterministic single-runner region on a fresh (untagged)
    // thread: runAs must tag the thread with the region's request id
    // for the duration of the chunk. Helpers and stealers go through
    // the same entry point, so this covers every runner kind.
    uint64_t seen = 999;
    auto state = std::make_shared<runtime::detail::RegionState>(
        1, 1,
        [&](std::size_t) { seen = obs::currentRequestId(); },
        nullptr, 42);
    state->loadDeque(0, {0});
    std::thread t([&] {
        EXPECT_EQ(obs::currentRequestId(), 0u);
        state->runAs(0);
        // The tag is scoped to the region: restored on exit.
        EXPECT_EQ(obs::currentRequestId(), 0u);
    });
    t.join();
    state->waitDone();
    EXPECT_EQ(seen, 42u);
}

TEST(Trace, SpansInsideARequestCarryItsId)
{
    if (obs::tracingEnabled())
        GTEST_SKIP() << "QPAD_TRACE is set; session already active";
    exec::Context ctx;
    const std::string path = tracePath("rid_spans");
    ASSERT_TRUE(obs::startTracing(path));
    {
        exec::RequestScope scope(ctx, "rid_spans");
        runtime::Options exec = ctx.apply(runtime::Options{});
        exec.num_threads = 2;
        runtime::parallel_for(
            exec, 16, 1,
            [](std::size_t, std::size_t, std::size_t) {
                QPAD_SPAN("obs.test_rid_chunk");
            });
    }
    obs::stopTracing();

    // Every chunk span — whichever runner executed it — carries the
    // request's id in its args.
    const std::string rid_arg =
        "\"rid\":" + std::to_string(ctx.id());
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::size_t chunk_spans = 0;
    while (std::getline(in, line)) {
        if (line.find("\"name\":\"obs.test_rid_chunk\"") ==
            std::string::npos)
            continue;
        ++chunk_spans;
        EXPECT_NE(line.find(rid_arg), std::string::npos) << line;
    }
    EXPECT_EQ(chunk_spans, 2u * 16u); // a B and an E per chunk
}

} // namespace

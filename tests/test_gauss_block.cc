/**
 * @file
 * Tests for the lane-parallel Gaussian block sampler and the
 * versioned v1/v2 draw schemes of the Monte Carlo consumers.
 *
 * The golden-bit tests pin the sampler output for a fixed seed; the
 * same constants must hold on AVX2 and non-AVX2 builds (the CI
 * matrix runs both), which is the cross-build half of the v2
 * bit-identity contract. The yield-level tests check the other
 * halves: thread counts, batch remainders, collision kernels, and
 * the QPAD_RNG_V1 environment override — plus the legacy golden
 * tallies that scheme v1 must keep reproducing.
 */

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "arch/ibm.hh"
#include "common/gauss_block.hh"
#include "common/rng.hh"
#include "design/freq_alloc.hh"
#include "scoped_scalar_kernel.hh"
#include "yield/yield_sim.hh"

namespace
{

using namespace qpad;
using arch::Architecture;
using test::ScopedRngV1;
using test::ScopedScalarKernel;

constexpr std::size_t B = GaussianBlockSampler::kLanes;

// --------------------------------------------------------------------
// Sampler-level: bit exactness, composition, moments
// --------------------------------------------------------------------

TEST(GaussBlock, GoldenBitsIdenticalOnEveryBackend)
{
    // Captured from the AVX2 build and verified identical on the
    // portable build; any drift (FMA contraction, reordered
    // polynomial ops, changed lane seeding) breaks cross-build v2
    // reproducibility and must fail here.
    const uint64_t golden_row0[B] = {
        0xbfab60409c23520eull, 0x3ff1ff61818fa3feull,
        0x4000def7d202eda1ull, 0xc0007c3259ce2f21ull,
        0xbfd0e9a5c60fd530ull, 0xbfd302dc4224fc99ull,
        0xbfc4b524fb23c37eull, 0xbfe1af3376eeea39ull,
    };
    const uint64_t golden_row57[B] = {
        0x3fe61aff820cc212ull, 0xbfc10032bd7f588aull,
        0xbfc8d687d3ca22bdull, 0xbfe28ab894f847faull,
        0xbfdd6a8c6fb6d411ull, 0xbffde60dd8aaaef5ull,
        0x3ff02907c0cf0845ull, 0x3ff29cfe3acc1711ull,
    };
    GaussianBlockSampler sampler(12345);
    std::vector<double> out(64 * B);
    sampler.fillStandard(out.data(), 64);
    for (std::size_t l = 0; l < B; ++l) {
        EXPECT_EQ(std::bit_cast<uint64_t>(out[l]), golden_row0[l])
            << "lane " << l;
        EXPECT_EQ(std::bit_cast<uint64_t>(out[57 * B + l]),
                  golden_row57[l])
            << "lane " << l;
    }
}

TEST(GaussBlock, LanesAreChildStreamsNearLibmBoxMuller)
{
    // Lane l must draw from Rng::forStream(seed, l) and apply
    // Box-Muller in the documented order; the polynomial kernels may
    // differ from libm only by rounding noise.
    GaussianBlockSampler sampler(2718);
    constexpr std::size_t rows = 4096;
    std::vector<double> out(rows * B);
    sampler.fillStandard(out.data(), rows);
    for (std::size_t l = 0; l < B; ++l) {
        Rng lane = Rng::forStream(2718, l);
        for (std::size_t r = 0; r < rows; r += 2) {
            const double u1 = 1.0 - lane.uniform();
            const double u2 = lane.uniform();
            const double rad = std::sqrt(-2.0 * std::log(u1));
            const double theta = 2.0 * 3.14159265358979323846 * u2;
            ASSERT_NEAR(out[r * B + l], rad * std::cos(theta), 1e-13);
            if (r + 1 < rows) {
                ASSERT_NEAR(out[(r + 1) * B + l],
                            rad * std::sin(theta), 1e-13);
            }
        }
    }
}

TEST(GaussBlock, ChunkedFillsComposeBitExactly)
{
    // fill(a); fill(b) must equal fill(a + b): the odd-row carry is
    // what makes every batch-remainder pattern draw the same
    // numbers.
    constexpr std::size_t rows = 257;
    GaussianBlockSampler one(99), chunked(99);
    std::vector<double> a(rows * B), b(rows * B);
    one.fillStandard(a.data(), rows);
    std::size_t off = 0;
    for (std::size_t n : {std::size_t{1}, std::size_t{3},
                          std::size_t{2}, std::size_t{8},
                          std::size_t{115}, std::size_t{128}}) {
        chunked.fillStandard(b.data() + off * B, n);
        off += n;
    }
    ASSERT_EQ(off, rows);
    for (std::size_t i = 0; i < rows * B; ++i)
        ASSERT_EQ(std::bit_cast<uint64_t>(a[i]),
                  std::bit_cast<uint64_t>(b[i]))
            << "index " << i;
}

TEST(GaussBlock, AffineAppliesMeanAndSigmaToTheSameDraws)
{
    constexpr std::size_t rows = 33; // odd: exercises the carry
    std::vector<double> means(rows);
    for (std::size_t r = 0; r < rows; ++r)
        means[r] = 5.0 + 0.01 * double(r);
    const double sigma = 0.030;

    GaussianBlockSampler raw(7), affine(7);
    std::vector<double> z(rows * B), v(rows * B);
    raw.fillStandard(z.data(), rows);
    affine.fillAffine(v.data(), means.data(), sigma, rows);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t l = 0; l < B; ++l) {
            // Separate statements so the test itself cannot fuse
            // the multiply-add and diverge by an ulp.
            const double scaled = sigma * z[r * B + l];
            const double expect = means[r] + scaled;
            ASSERT_EQ(std::bit_cast<uint64_t>(v[r * B + l]),
                      std::bit_cast<uint64_t>(expect))
                << "row " << r << " lane " << l;
        }
    }
}

TEST(GaussBlock, MomentsMatchStandardNormalAndScalarSampler)
{
    constexpr std::size_t rows = 125000; // 1e6 deviates pooled
    GaussianBlockSampler sampler(31415);
    std::vector<double> out(rows * B);
    sampler.fillStandard(out.data(), rows);

    auto moments = [](const std::vector<double> &xs) {
        double m1 = 0, m2 = 0, m3 = 0;
        for (double x : xs) {
            m1 += x;
            m2 += x * x;
            m3 += x * x * x;
        }
        const double n = double(xs.size());
        return std::array<double, 3>{m1 / n, m2 / n, m3 / n};
    };
    const auto block = moments(out);
    EXPECT_NEAR(block[0], 0.0, 0.005);
    EXPECT_NEAR(block[1], 1.0, 0.01);
    EXPECT_NEAR(block[2], 0.0, 0.02); // odd moment ~ skew

    std::vector<double> scalar(out.size());
    Rng rng(31415);
    for (double &x : scalar)
        x = rng.gaussian();
    const auto legacy = moments(scalar);
    EXPECT_NEAR(block[0], legacy[0], 0.01);
    EXPECT_NEAR(block[1], legacy[1], 0.02);
    EXPECT_NEAR(block[2], legacy[2], 0.04);
}

TEST(GaussBlock, ResolveSchemeHonoursEnvOverride)
{
    EXPECT_EQ(resolveRngScheme(RngScheme::kV1), RngScheme::kV1);
    {
        ScopedRngV1 forced;
        EXPECT_EQ(resolveRngScheme(RngScheme::kV2), RngScheme::kV1);
        EXPECT_EQ(resolveRngScheme(RngScheme::kV1), RngScheme::kV1);
    }
}

// --------------------------------------------------------------------
// estimateYield: scheme goldens and the v2 identity contract
// --------------------------------------------------------------------

TEST(YieldScheme, V1ReproducesLegacyGoldenTallies)
{
    // Captured from the release that predates the block sampler
    // (plain ibm16Q, 4999 trials, seed 11 — full shards plus a
    // 903-trial tail with a 7-lane remainder batch). Scheme v1 is
    // the compatibility contract: these exact tallies, forever.
    auto arch = arch::ibm16Q(false);
    yield::YieldOptions opts;
    opts.trials = 4999;
    opts.seed = 11;
    opts.rng_scheme = RngScheme::kV1;
    EXPECT_EQ(estimateYield(arch, opts).successes, 109u);

    ScopedRngV1 forced; // env must force the same path from kV2
    opts.rng_scheme = RngScheme::kV2;
    EXPECT_EQ(estimateYield(arch, opts).successes, 109u);
}

TEST(YieldScheme, V1ReproducesLegacyConditionStats)
{
    auto arch = arch::ibm16Q(false);
    yield::YieldOptions opts;
    opts.trials = 10000;
    opts.seed = 2020;
    opts.collect_condition_stats = true;
    opts.rng_scheme = RngScheme::kV1;
    auto r = estimateYield(arch, opts);
    EXPECT_EQ(r.successes, 188u);
    EXPECT_EQ(r.condition_trials[1], 7228u);
    EXPECT_EQ(r.condition_trials[7], 6485u);
}

TEST(YieldScheme, V2BitIdenticalAcrossThreadCounts)
{
    auto arch = arch::ibm16Q(true);
    yield::YieldOptions opts;
    opts.trials = 4999;
    opts.seed = 2020;
    opts.exec.num_threads = 1;
    const auto seq = estimateYield(arch, opts);
    for (std::size_t threads : {2u, 4u, 7u}) {
        opts.exec.num_threads = threads;
        const auto par = estimateYield(arch, opts);
        EXPECT_EQ(par.successes, seq.successes) << threads;
        EXPECT_DOUBLE_EQ(par.yield, seq.yield) << threads;
    }
}

TEST(YieldScheme, V2KernelChoiceNeverChangesTallies)
{
    // Batched SoA kernel vs forced scalar oracle vs the
    // condition-stats walk (always scalar): all three read the same
    // sampler blocks, so successes must agree bit for bit at every
    // batch remainder, including sub-lane trial counts.
    auto arch = arch::ibm16Q(true);
    for (std::size_t trials :
         {std::size_t{1}, std::size_t{5}, std::size_t{8},
          std::size_t{9}, std::size_t{1024}, std::size_t{1031}}) {
        yield::YieldOptions opts;
        opts.trials = trials;
        opts.seed = 7;
        const auto batched = estimateYield(arch, opts);
        yield::YieldResult scalar;
        {
            ScopedScalarKernel forced;
            scalar = estimateYield(arch, opts);
        }
        opts.collect_condition_stats = true;
        const auto stats = estimateYield(arch, opts);
        EXPECT_EQ(batched.successes, scalar.successes) << trials;
        EXPECT_EQ(batched.successes, stats.successes) << trials;
    }
}

TEST(YieldScheme, EnvFlipRoundTripRestoresTheScheme)
{
    auto arch = arch::ibm16Q(false);
    yield::YieldOptions opts;
    opts.trials = 3000;
    opts.seed = 5;
    const auto before = estimateYield(arch, opts);
    yield::YieldResult forced_env;
    {
        ScopedRngV1 forced;
        forced_env = estimateYield(arch, opts);
    }
    const auto after = estimateYield(arch, opts);

    opts.rng_scheme = RngScheme::kV1;
    const auto v1 = estimateYield(arch, opts);
    EXPECT_EQ(forced_env.successes, v1.successes);
    EXPECT_EQ(before.successes, after.successes);
    EXPECT_DOUBLE_EQ(before.yield, after.yield);
}

TEST(YieldScheme, V2GoldenTalliesIdenticalOnEveryBuild)
{
    // The v2 counterpart of the legacy goldens, captured once on the
    // AVX2 build: the CI matrix re-runs this on the portable build
    // (where the yield path takes the scalar walk over the very
    // same sampler blocks), so any backend divergence — sampler or
    // kernel — fails here.
    if (resolveRngScheme(RngScheme::kV2) != RngScheme::kV2)
        GTEST_SKIP() << "QPAD_RNG_V1 forces v1 in this environment";
    auto arch = arch::ibm16Q(false);
    yield::YieldOptions opts;
    opts.trials = 4999;
    opts.seed = 11;
    EXPECT_EQ(estimateYield(arch, opts).successes, 81u);

    opts.trials = 10000;
    opts.seed = 2020;
    opts.collect_condition_stats = true;
    const auto stats = estimateYield(arch, opts);
    EXPECT_EQ(stats.successes, 178u);
    EXPECT_EQ(stats.condition_trials[1], 7246u);
    EXPECT_EQ(stats.condition_trials[7], 6469u);

    design::FreqAllocOptions fopts;
    fopts.local_trials = 300;
    fopts.refine_sweeps = 1;
    const auto fr = design::allocateFrequencies(arch, fopts);
    EXPECT_DOUBLE_EQ(fr.freqs[0], 5.1699999999999964);
    EXPECT_DOUBLE_EQ(fr.freqs[5], 5.2399999999999949);
    EXPECT_DOUBLE_EQ(fr.freqs[15], 5.2499999999999947);
}

TEST(YieldScheme, V2ActuallyDrawsADifferentStreamThanV1)
{
    if (resolveRngScheme(RngScheme::kV2) != RngScheme::kV2)
        GTEST_SKIP() << "QPAD_RNG_V1 forces v1 in this environment";
    auto arch = arch::ibm16Q(false);
    yield::YieldOptions opts;
    opts.trials = 4999;
    opts.seed = 11;
    const auto v2 = estimateYield(arch, opts);
    opts.rng_scheme = RngScheme::kV1;
    const auto v1 = estimateYield(arch, opts);
    // Deterministic for this (seed, trials): the lane order draws
    // different numbers, so the tallies differ.
    EXPECT_NE(v2.successes, v1.successes);
}

// --------------------------------------------------------------------
// LocalYieldSimulator under v2
// --------------------------------------------------------------------

TEST(LocalScheme, ShardedV2IdenticalAcrossThreadCounts)
{
    auto arch = arch::ibm16Q(false);
    yield::CollisionChecker checker(arch);
    std::vector<arch::PhysQubit> involved(arch.numQubits());
    std::iota(involved.begin(), involved.end(), 0u);
    yield::LocalYieldSimulator sim(checker.pairs(), checker.triples(),
                                   {}, involved);
    const double seq = sim.simulate(arch.frequencies(), 0.03, 20000,
                                    5, runtime::Options{1});
    const double par = sim.simulate(arch.frequencies(), 0.03, 20000,
                                    5, runtime::Options{4});
    EXPECT_DOUBLE_EQ(seq, par);
}

TEST(LocalScheme, V2KernelEnvIsBitIdentical)
{
    auto arch = arch::ibm16Q(false);
    yield::CollisionChecker checker(arch);
    std::vector<arch::PhysQubit> involved(arch.numQubits());
    std::iota(involved.begin(), involved.end(), 0u);
    yield::LocalYieldSimulator sim(checker.pairs(), checker.triples(),
                                   {}, involved);
    // 1003 trials: remainder batch of 3 under both kernels.
    Rng r1(3), r2(3);
    const double batched =
        sim.simulate(arch.frequencies(), 0.03, 1003, r1);
    double scalar;
    {
        ScopedScalarKernel forced;
        scalar = sim.simulate(arch.frequencies(), 0.03, 1003, r2);
    }
    EXPECT_DOUBLE_EQ(batched, scalar);
}

TEST(LocalScheme, RngOverloadIsDeterministicAndAdvancesParent)
{
    auto arch = arch::ibm16Q(false);
    yield::CollisionChecker checker(arch);
    std::vector<arch::PhysQubit> involved(arch.numQubits());
    std::iota(involved.begin(), involved.end(), 0u);
    yield::LocalYieldSimulator sim(checker.pairs(), checker.triples(),
                                   {}, involved);
    Rng r1(17), r2(17);
    const double a = sim.simulate(arch.frequencies(), 0.03, 800, r1);
    const double b = sim.simulate(arch.frequencies(), 0.03, 800, r2);
    EXPECT_DOUBLE_EQ(a, b);
    // The parent generators advanced identically, and a second call
    // draws a fresh (still equal) estimate.
    const double a2 = sim.simulate(arch.frequencies(), 0.03, 800, r1);
    const double b2 = sim.simulate(arch.frequencies(), 0.03, 800, r2);
    EXPECT_DOUBLE_EQ(a2, b2);
    EXPECT_EQ(r1.next(), r2.next());
}

// --------------------------------------------------------------------
// Frequency allocation under the schemes
// --------------------------------------------------------------------

TEST(FreqAllocScheme, V1ReproducesLegacyGoldenFrequencies)
{
    // Captured from the pre-sampler release (ibm16Q plain,
    // local_trials = 300, refine_sweeps = 1, default seed 11).
    auto arch = arch::ibm16Q(false);
    design::FreqAllocOptions opts;
    opts.local_trials = 300;
    opts.refine_sweeps = 1;
    opts.rng_scheme = RngScheme::kV1;
    const auto r = design::allocateFrequencies(arch, opts);
    EXPECT_DOUBLE_EQ(r.freqs[0], 5.2199999999999953);
    EXPECT_DOUBLE_EQ(r.freqs[5], 5.2899999999999938);
    EXPECT_DOUBLE_EQ(r.freqs[15], 5.2999999999999936);
}

TEST(FreqAllocScheme, EnvForcesV1AndRoundTrips)
{
    auto arch = arch::ibm16Q(false);
    design::FreqAllocOptions opts;
    opts.local_trials = 200;
    opts.refine_sweeps = 0;
    const auto before = design::allocateFrequencies(arch, opts);
    design::FreqAllocResult env_forced;
    {
        ScopedRngV1 forced;
        env_forced = design::allocateFrequencies(arch, opts);
    }
    const auto after = design::allocateFrequencies(arch, opts);
    opts.rng_scheme = RngScheme::kV1;
    const auto v1 = design::allocateFrequencies(arch, opts);
    EXPECT_EQ(env_forced.freqs, v1.freqs);
    EXPECT_EQ(before.freqs, after.freqs);
}

TEST(FreqAllocScheme, V2IdenticalAcrossThreadCountsAndKernels)
{
    auto arch = arch::ibm16Q(true);
    design::FreqAllocOptions opts;
    opts.local_trials = 300; // not a multiple of 8: remainder blocks
    opts.refine_sweeps = 1;
    opts.exec.num_threads = 1;
    const auto seq = design::allocateFrequencies(arch, opts);
    opts.exec.num_threads = 4;
    const auto par = design::allocateFrequencies(arch, opts);
    EXPECT_EQ(seq.freqs, par.freqs);
    EXPECT_EQ(seq.local_scores, par.local_scores);
    design::FreqAllocResult scalar;
    {
        ScopedScalarKernel forced;
        scalar = design::allocateFrequencies(arch, opts);
    }
    EXPECT_EQ(seq.freqs, scalar.freqs);
    EXPECT_EQ(seq.local_scores, scalar.local_scores);
}

} // namespace

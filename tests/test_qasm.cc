/**
 * @file
 * Tests for the OpenQASM 2.0 reader and writer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <cstdio>
#include <stdexcept>

#include "benchmarks/generators.hh"
#include "circuit/qasm.hh"

namespace
{

using namespace qpad::circuit;

TEST(Qasm, ParsesMinimalProgram)
{
    Circuit c = parseQasm(
        "OPENQASM 2.0;\n"
        "include \"qelib1.inc\";\n"
        "qreg q[2];\n"
        "creg c[2];\n"
        "h q[0];\n"
        "cx q[0],q[1];\n"
        "measure q[0] -> c[0];\n");
    EXPECT_EQ(c.numQubits(), 2u);
    EXPECT_EQ(c.size(), 3u);
    EXPECT_EQ(c.gate(0).kind, GateKind::H);
    EXPECT_EQ(c.gate(1).kind, GateKind::CX);
    EXPECT_EQ(c.gate(2).kind, GateKind::Measure);
}

TEST(Qasm, HeaderAndIncludeOptional)
{
    Circuit c = parseQasm("qreg q[1];\nx q[0];\n");
    EXPECT_EQ(c.size(), 1u);
}

TEST(Qasm, CommentsIgnored)
{
    Circuit c = parseQasm(
        "qreg q[1]; // register\n"
        "// a full-line comment\n"
        "x q[0]; // flip\n");
    EXPECT_EQ(c.size(), 1u);
}

TEST(Qasm, ParameterExpressions)
{
    Circuit c = parseQasm(
        "qreg q[1];\n"
        "rz(pi/2) q[0];\n"
        "rz(-pi/4) q[0];\n"
        "rz(2*pi/8+1) q[0];\n"
        "rz(cos(0)) q[0];\n"
        "rz(2^3) q[0];\n");
    EXPECT_NEAR(c.gate(0).params[0], std::numbers::pi / 2, 1e-12);
    EXPECT_NEAR(c.gate(1).params[0], -std::numbers::pi / 4, 1e-12);
    EXPECT_NEAR(c.gate(2).params[0], std::numbers::pi / 4 + 1, 1e-12);
    EXPECT_NEAR(c.gate(3).params[0], 1.0, 1e-12);
    EXPECT_NEAR(c.gate(4).params[0], 8.0, 1e-12);
}

TEST(Qasm, RegisterBroadcast)
{
    Circuit c = parseQasm(
        "qreg q[3];\n"
        "h q;\n");
    EXPECT_EQ(c.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(c.gate(i).qubits[0], i);
}

TEST(Qasm, BroadcastMeasure)
{
    Circuit c = parseQasm(
        "qreg q[3];\ncreg c[3];\n"
        "measure q -> c;\n");
    EXPECT_EQ(c.size(), 3u);
    EXPECT_EQ(c.gate(2).qubits[0], 2u);
    EXPECT_EQ(c.gate(2).clbit, 2u);
}

TEST(Qasm, MultipleRegistersFlatten)
{
    Circuit c = parseQasm(
        "qreg a[2];\nqreg b[2];\n"
        "cx a[1],b[0];\n");
    EXPECT_EQ(c.numQubits(), 4u);
    EXPECT_EQ(c.gate(0).qubits[0], 1u);
    EXPECT_EQ(c.gate(0).qubits[1], 2u);
}

TEST(Qasm, UserGateDefinitionExpands)
{
    Circuit c = parseQasm(
        "qreg q[2];\n"
        "gate bell a,b { h a; cx a,b; }\n"
        "bell q[0],q[1];\n");
    EXPECT_EQ(c.size(), 2u);
    EXPECT_EQ(c.gate(0).kind, GateKind::H);
    EXPECT_EQ(c.gate(1).kind, GateKind::CX);
}

TEST(Qasm, ParameterizedGateDefinition)
{
    Circuit c = parseQasm(
        "qreg q[1];\n"
        "gate wiggle(t) a { rz(t/2) a; rz(-t) a; }\n"
        "wiggle(pi) q[0];\n");
    EXPECT_EQ(c.size(), 2u);
    EXPECT_NEAR(c.gate(0).params[0], std::numbers::pi / 2, 1e-12);
    EXPECT_NEAR(c.gate(1).params[0], -std::numbers::pi, 1e-12);
}

TEST(Qasm, NestedGateDefinitions)
{
    Circuit c = parseQasm(
        "qreg q[2];\n"
        "gate inner a { x a; }\n"
        "gate outer a,b { inner a; cx a,b; inner b; }\n"
        "outer q[0],q[1];\n");
    EXPECT_EQ(c.size(), 3u);
    EXPECT_EQ(c.gate(0).kind, GateKind::X);
    EXPECT_EQ(c.gate(2).qubits[0], 1u);
}

TEST(Qasm, BarrierAccepted)
{
    Circuit c = parseQasm("qreg q[2];\nbarrier q;\nx q[0];\n");
    EXPECT_EQ(c.gate(0).kind, GateKind::Barrier);
}

TEST(Qasm, RejectsUnknownGate)
{
    EXPECT_THROW(parseQasm("qreg q[1];\nzork q[0];\n"),
                 std::runtime_error);
}

TEST(Qasm, RejectsOutOfRangeIndex)
{
    EXPECT_THROW(parseQasm("qreg q[2];\nx q[5];\n"),
                 std::runtime_error);
}

TEST(Qasm, RejectsUnknownRegister)
{
    EXPECT_THROW(parseQasm("qreg q[2];\nx r[0];\n"),
                 std::runtime_error);
}

TEST(Qasm, RejectsClassicalControl)
{
    EXPECT_THROW(
        parseQasm("qreg q[1];\ncreg c[1];\nif(c==1) x q[0];\n"),
        std::runtime_error);
}

TEST(Qasm, RejectsDuplicateRegister)
{
    EXPECT_THROW(parseQasm("qreg q[1];\nqreg q[2];\n"),
                 std::runtime_error);
}

TEST(Qasm, RoundTripPreservesCircuit)
{
    Circuit original = qpad::benchmarks::qft(5);
    Circuit reparsed = parseQasm(toQasm(original));
    ASSERT_EQ(reparsed.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(reparsed.gate(i).kind, original.gate(i).kind);
        EXPECT_EQ(reparsed.gate(i).qubits, original.gate(i).qubits);
        ASSERT_EQ(reparsed.gate(i).params.size(),
                  original.gate(i).params.size());
        for (std::size_t p = 0; p < original.gate(i).params.size(); ++p)
            EXPECT_NEAR(reparsed.gate(i).params[p],
                        original.gate(i).params[p], 1e-9);
    }
}

TEST(Qasm, FileRoundTrip)
{
    Circuit original = qpad::benchmarks::ghz(4);
    const std::string path = "/tmp/qpad_test_ghz.qasm";
    writeQasmFile(original, path);
    Circuit loaded = parseQasmFile(path);
    EXPECT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.numQubits(), original.numQubits());
    std::remove(path.c_str());
}

TEST(Qasm, MissingFileFatal)
{
    EXPECT_THROW(parseQasmFile("/nonexistent/nope.qasm"),
                 std::runtime_error);
}

} // namespace

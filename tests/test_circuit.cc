/**
 * @file
 * Unit tests for the gate/circuit IR.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "circuit/circuit.hh"

namespace
{

using namespace qpad::circuit;

TEST(Gate, KindMetadata)
{
    EXPECT_EQ(gateKindNumQubits(GateKind::H), 1);
    EXPECT_EQ(gateKindNumQubits(GateKind::CX), 2);
    EXPECT_EQ(gateKindNumQubits(GateKind::CCX), 3);
    EXPECT_EQ(gateKindNumParams(GateKind::RZ), 1);
    EXPECT_EQ(gateKindNumParams(GateKind::U3), 3);
    EXPECT_EQ(gateKindNumParams(GateKind::CX), 0);
    EXPECT_STREQ(gateKindName(GateKind::CX), "cx");
    EXPECT_STREQ(gateKindName(GateKind::Sdg), "sdg");
}

TEST(Gate, TwoQubitClassification)
{
    EXPECT_TRUE(gateKindIsTwoQubit(GateKind::CX));
    EXPECT_TRUE(gateKindIsTwoQubit(GateKind::SWAP));
    EXPECT_TRUE(gateKindIsTwoQubit(GateKind::RZZ));
    EXPECT_FALSE(gateKindIsTwoQubit(GateKind::H));
    EXPECT_FALSE(gateKindIsTwoQubit(GateKind::CCX));
    EXPECT_FALSE(gateKindIsTwoQubit(GateKind::Measure));
}

TEST(Gate, SingleQubitClassification)
{
    EXPECT_TRUE(gateKindIsSingleQubit(GateKind::H));
    EXPECT_TRUE(gateKindIsSingleQubit(GateKind::RZ));
    EXPECT_FALSE(gateKindIsSingleQubit(GateKind::Measure));
    EXPECT_FALSE(gateKindIsSingleQubit(GateKind::Barrier));
    EXPECT_FALSE(gateKindIsSingleQubit(GateKind::CX));
}

TEST(Gate, NameLookup)
{
    GateKind kind;
    EXPECT_TRUE(gateKindFromName("cx", kind));
    EXPECT_EQ(kind, GateKind::CX);
    EXPECT_TRUE(gateKindFromName("cnot", kind));
    EXPECT_EQ(kind, GateKind::CX);
    EXPECT_TRUE(gateKindFromName("u", kind));
    EXPECT_EQ(kind, GateKind::U3);
    EXPECT_FALSE(gateKindFromName("frobnicate", kind));
}

TEST(Gate, CtorValidatesArity)
{
    EXPECT_THROW(Gate(GateKind::CX, {0}), std::logic_error);
    EXPECT_THROW(Gate(GateKind::H, {0, 1}), std::logic_error);
    EXPECT_THROW(Gate(GateKind::RZ, {0}, {}), std::logic_error);
    EXPECT_THROW(Gate(GateKind::H, {0}, {0.5}), std::logic_error);
    EXPECT_NO_THROW(Gate(GateKind::RZ, {0}, {0.5}));
}

TEST(Gate, StrIsReadable)
{
    Gate g(GateKind::CX, {2, 5});
    EXPECT_EQ(g.str(), "cx q2, q5");
    Gate r(GateKind::RZ, {1}, {0.5});
    EXPECT_EQ(r.str(), "rz(0.5) q1");
}

TEST(Circuit, AddValidatesQubitRange)
{
    Circuit c(3, 1);
    EXPECT_NO_THROW(c.cx(0, 2));
    EXPECT_THROW(c.cx(0, 3), std::logic_error);
    EXPECT_THROW(c.h(5), std::logic_error);
}

TEST(Circuit, AddRejectsDuplicateOperands)
{
    Circuit c(3);
    EXPECT_THROW(c.cx(1, 1), std::logic_error);
}

TEST(Circuit, MeasureValidatesClbit)
{
    Circuit c(2, 1);
    EXPECT_NO_THROW(c.measure(0, 0));
    EXPECT_THROW(c.measure(1, 1), std::logic_error);
}

TEST(Circuit, GateCounts)
{
    Circuit c(3, 3);
    c.h(0);
    c.cx(0, 1);
    c.rz(0.1, 1);
    c.cx(1, 2);
    c.measure(2, 2);
    c.barrier();
    EXPECT_EQ(c.size(), 6u);
    EXPECT_EQ(c.twoQubitGateCount(), 2u);
    EXPECT_EQ(c.singleQubitGateCount(), 2u);
    EXPECT_EQ(c.unitaryGateCount(), 4u);
    auto by_kind = c.countByKind();
    EXPECT_EQ(by_kind["cx"], 2u);
    EXPECT_EQ(by_kind["h"], 1u);
    EXPECT_EQ(by_kind["measure"], 1u);
}

TEST(Circuit, DepthSerialChain)
{
    Circuit c(2);
    c.h(0);
    c.h(0);
    c.h(0);
    EXPECT_EQ(c.depth(), 3u);
}

TEST(Circuit, DepthParallelGates)
{
    Circuit c(4);
    c.h(0);
    c.h(1);
    c.h(2);
    c.h(3);
    EXPECT_EQ(c.depth(), 1u);
    c.cx(0, 1);
    c.cx(2, 3);
    EXPECT_EQ(c.depth(), 2u);
}

TEST(Circuit, BarrierSynchronizesDepth)
{
    Circuit c(2);
    c.h(0); // depth 1 on qubit 0
    c.barrier();
    c.h(1); // would be depth 1 without the barrier
    EXPECT_EQ(c.depth(), 2u);
}

TEST(Circuit, AppendCopiesGates)
{
    Circuit a(2);
    a.h(0);
    a.cx(0, 1);
    Circuit b(3);
    b.x(2);
    b.append(a);
    EXPECT_EQ(b.size(), 3u);
    EXPECT_EQ(b.gate(1).kind, GateKind::H);
}

TEST(Circuit, AppendRejectsWider)
{
    Circuit narrow(2), wide(5);
    wide.h(4);
    EXPECT_THROW(narrow.append(wide), std::logic_error);
}

TEST(Circuit, AppendMappedRelabelsQubits)
{
    Circuit inner(2);
    inner.cx(0, 1);
    Circuit outer(5);
    outer.appendMapped(inner, {3, 1});
    EXPECT_EQ(outer.gate(0).qubits[0], 3u);
    EXPECT_EQ(outer.gate(0).qubits[1], 1u);
}

TEST(Circuit, ActiveWidth)
{
    Circuit c(10);
    EXPECT_EQ(c.activeWidth(), 0u);
    c.h(3);
    EXPECT_EQ(c.activeWidth(), 4u);
    c.cx(7, 2);
    EXPECT_EQ(c.activeWidth(), 8u);
}

TEST(Circuit, EqualityIsStructural)
{
    Circuit a(2), b(2);
    a.h(0);
    b.h(0);
    EXPECT_TRUE(a == b);
    b.x(1);
    EXPECT_FALSE(a == b);
}

} // namespace

/**
 * @file
 * Tests for the lattice layout and architecture model, including the
 * IBM baselines of Figure 9.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "arch/architecture.hh"
#include "arch/ibm.hh"

namespace
{

using namespace qpad::arch;

// --------------------------------------------------------------------
// Coord
// --------------------------------------------------------------------

TEST(Coord, ManhattanDistance)
{
    EXPECT_EQ(Coord::manhattan({0, 0}, {0, 0}), 0);
    EXPECT_EQ(Coord::manhattan({0, 0}, {2, 3}), 5);
    EXPECT_EQ(Coord::manhattan({-1, -1}, {1, 1}), 4);
}

TEST(Coord, Lattice4Neighbours)
{
    auto nb = lattice4({2, 3});
    std::set<std::pair<int, int>> got;
    for (auto c : nb)
        got.insert({c.row, c.col});
    std::set<std::pair<int, int>> expect = {
        {1, 3}, {3, 3}, {2, 2}, {2, 4}};
    EXPECT_EQ(got, expect);
}

// --------------------------------------------------------------------
// Layout
// --------------------------------------------------------------------

TEST(Layout, GridHasRowMajorIds)
{
    Layout g = Layout::grid(2, 3);
    EXPECT_EQ(g.numQubits(), 6u);
    EXPECT_EQ(g.coord(0), (Coord{0, 0}));
    EXPECT_EQ(g.coord(4), (Coord{1, 1}));
    EXPECT_EQ(*g.qubitAt({1, 2}), 5u);
    EXPECT_FALSE(g.qubitAt({2, 0}).has_value());
}

TEST(Layout, AddDuplicateNodeFatal)
{
    Layout l;
    l.addQubit({0, 0});
    EXPECT_THROW(l.addQubit({0, 0}), std::runtime_error);
}

TEST(Layout, LatticeEdgeCounts)
{
    // R x C grid has R*(C-1) + C*(R-1) edges.
    EXPECT_EQ(Layout::grid(2, 8).latticeEdges().size(), 22u);
    EXPECT_EQ(Layout::grid(4, 5).latticeEdges().size(), 31u);
    EXPECT_EQ(Layout::grid(1, 5).latticeEdges().size(), 4u);
}

TEST(Layout, NormalizedShiftsToOrigin)
{
    Layout l;
    l.addQubit({3, -2});
    l.addQubit({4, -1});
    Layout n = l.normalized();
    EXPECT_EQ(n.coord(0), (Coord{0, 0}));
    EXPECT_EQ(n.coord(1), (Coord{1, 1}));
}

TEST(Layout, BoundingBox)
{
    Layout l;
    l.addQubit({1, 5});
    l.addQubit({-2, 7});
    EXPECT_EQ(l.minRow(), -2);
    EXPECT_EQ(l.maxRow(), 1);
    EXPECT_EQ(l.minCol(), 5);
    EXPECT_EQ(l.maxCol(), 7);
}

TEST(Layout, StrShowsQubitsAndHoles)
{
    Layout l;
    l.addQubit({0, 0});
    l.addQubit({0, 2});
    std::string s = l.str();
    EXPECT_NE(s.find("q0"), std::string::npos);
    EXPECT_NE(s.find("."), std::string::npos);
    EXPECT_NE(s.find("q1"), std::string::npos);
}

// --------------------------------------------------------------------
// Architecture: buses, coupling graph, distances
// --------------------------------------------------------------------

TEST(Architecture, EligibleSquareCounts)
{
    Architecture a16(Layout::grid(2, 8));
    EXPECT_EQ(a16.eligibleSquares().size(), 7u);
    Architecture a20(Layout::grid(4, 5));
    EXPECT_EQ(a20.eligibleSquares().size(), 12u);
}

TEST(Architecture, ThreeCornerSquareIsEligible)
{
    Layout l;
    l.addQubit({0, 0});
    l.addQubit({0, 1});
    l.addQubit({1, 0});
    Architecture arch(l);
    auto squares = arch.eligibleSquares();
    ASSERT_EQ(squares.size(), 1u);
    EXPECT_EQ(squares[0].corners.size(), 3u);
    // Only the diagonal with both endpoints present counts.
    ASSERT_EQ(squares[0].diagonals.size(), 1u);
    EXPECT_EQ(squares[0].diagonals[0],
              (std::pair<PhysQubit, PhysQubit>{1, 2}));
}

TEST(Architecture, TwoCornerSquareNotEligible)
{
    Layout l;
    l.addQubit({0, 0});
    l.addQubit({1, 1});
    Architecture arch(l);
    EXPECT_TRUE(arch.eligibleSquares().empty());
}

TEST(Architecture, FourQubitBusAddsDiagonals)
{
    Architecture arch(Layout::grid(2, 2));
    EXPECT_EQ(arch.numEdges(), 4u);
    arch.addFourQubitBus({0, 0});
    EXPECT_EQ(arch.numEdges(), 6u);
    EXPECT_TRUE(arch.connected(0, 3));
    EXPECT_TRUE(arch.connected(1, 2));
}

TEST(Architecture, ProhibitedConditionEnforced)
{
    Architecture arch(Layout::grid(2, 8));
    arch.addFourQubitBus({0, 2});
    EXPECT_FALSE(arch.canAddFourQubitBus({0, 1}));
    EXPECT_FALSE(arch.canAddFourQubitBus({0, 3}));
    EXPECT_TRUE(arch.canAddFourQubitBus({0, 0}));
    EXPECT_TRUE(arch.canAddFourQubitBus({0, 4}));
    EXPECT_THROW(arch.addFourQubitBus({0, 3}), std::runtime_error);
    EXPECT_THROW(arch.addFourQubitBus({0, 2}), std::runtime_error);
}

TEST(Architecture, DiagonallyAdjacentBusesAllowed)
{
    Architecture arch(Layout::grid(3, 3));
    arch.addFourQubitBus({0, 0});
    EXPECT_TRUE(arch.canAddFourQubitBus({1, 1}));
    arch.addFourQubitBus({1, 1});
    EXPECT_EQ(arch.fourQubitBuses().size(), 2u);
}

TEST(Architecture, DistancesAreBfsShortestPaths)
{
    Architecture arch(Layout::grid(2, 8));
    const auto &d = arch.distances();
    EXPECT_EQ(d(0, 0), 0);
    EXPECT_EQ(d(0, 1), 1);
    EXPECT_EQ(d(0, 8), 1);  // below
    EXPECT_EQ(d(0, 15), 8); // opposite corner: 7 cols + 1 row
    EXPECT_EQ(d(0, 7), 7);
}

TEST(Architecture, BusShortensDistances)
{
    Architecture arch(Layout::grid(2, 2));
    EXPECT_EQ(arch.distances()(0, 3), 2);
    arch.addFourQubitBus({0, 0});
    EXPECT_EQ(arch.distances()(0, 3), 1);
}

TEST(Architecture, ConnectivityCheck)
{
    Architecture grid(Layout::grid(2, 3));
    EXPECT_TRUE(grid.isConnectedGraph());

    Layout split;
    split.addQubit({0, 0});
    split.addQubit({0, 2}); // not adjacent
    Architecture disconnected(split);
    EXPECT_FALSE(disconnected.isConnectedGraph());
}

TEST(Architecture, FrequenciesRoundTrip)
{
    Architecture arch(Layout::grid(1, 3));
    EXPECT_FALSE(arch.frequenciesAssigned());
    arch.setFrequency(0, 5.1);
    arch.setFrequency(1, 5.2);
    EXPECT_FALSE(arch.frequenciesAssigned());
    arch.setFrequency(2, 5.3);
    EXPECT_TRUE(arch.frequenciesAssigned());
    EXPECT_DOUBLE_EQ(arch.frequency(1), 5.2);
    arch.setAllFrequencies({5.0, 5.0, 5.0});
    EXPECT_DOUBLE_EQ(arch.frequency(2), 5.0);
}

// --------------------------------------------------------------------
// IBM baselines (Figure 9)
// --------------------------------------------------------------------

TEST(Ibm, FiveFrequencyValues)
{
    const auto &v = fiveFrequencyValues();
    ASSERT_EQ(v.size(), 5u);
    EXPECT_DOUBLE_EQ(v.front(), 5.00);
    EXPECT_DOUBLE_EQ(v.back(), 5.27);
}

TEST(Ibm, BaselineShapes)
{
    auto baselines = ibmBaselines();
    ASSERT_EQ(baselines.size(), 4u);
    EXPECT_EQ(baselines[0].numQubits(), 16u);
    EXPECT_EQ(baselines[1].numQubits(), 16u);
    EXPECT_EQ(baselines[2].numQubits(), 20u);
    EXPECT_EQ(baselines[3].numQubits(), 20u);
    EXPECT_EQ(baselines[0].fourQubitBuses().size(), 0u);
    EXPECT_EQ(baselines[1].fourQubitBuses().size(), 4u);
    EXPECT_EQ(baselines[2].fourQubitBuses().size(), 0u);
    EXPECT_EQ(baselines[3].fourQubitBuses().size(), 6u);
}

TEST(Ibm, BaselineEdgeCounts)
{
    EXPECT_EQ(ibm16Q(false).numEdges(), 22u);
    EXPECT_EQ(ibm16Q(true).numEdges(), 22u + 8u);
    EXPECT_EQ(ibm20Q(false).numEdges(), 31u);
    EXPECT_EQ(ibm20Q(true).numEdges(), 31u + 12u);
}

TEST(Ibm, FrequenciesComeFromTheFiveValues)
{
    for (const auto &arch : ibmBaselines()) {
        ASSERT_TRUE(arch.frequenciesAssigned());
        for (PhysQubit q = 0; q < arch.numQubits(); ++q) {
            double f = arch.frequency(q);
            bool in_set = false;
            for (double v : fiveFrequencyValues())
                in_set = in_set || std::abs(f - v) < 1e-12;
            EXPECT_TRUE(in_set) << arch.name() << " q" << q;
        }
    }
}

TEST(Ibm, AdjacentQubitsGetDistinctFrequencies)
{
    for (const auto &arch : ibmBaselines()) {
        for (auto [a, b] : arch.layout().latticeEdges())
            EXPECT_NE(arch.frequency(a), arch.frequency(b))
                << arch.name() << " edge " << a << "-" << b;
    }
}

TEST(Ibm, SixteenQubitTilingMatchesFigure9)
{
    // Row 0: 3 4 5 1 2 3 4 5 / row 1: 1 2 3 4 5 1 2 3 (1-indexed).
    auto arch = ibm16Q(false);
    const auto &v = fiveFrequencyValues();
    int expect_row0[] = {3, 4, 5, 1, 2, 3, 4, 5};
    int expect_row1[] = {1, 2, 3, 4, 5, 1, 2, 3};
    for (int c = 0; c < 8; ++c) {
        EXPECT_DOUBLE_EQ(arch.frequency(*arch.layout().qubitAt({0, c})),
                         v[expect_row0[c] - 1]);
        EXPECT_DOUBLE_EQ(arch.frequency(*arch.layout().qubitAt({1, c})),
                         v[expect_row1[c] - 1]);
    }
}

TEST(Ibm, TwentyQubitTilingMatchesFigure9)
{
    auto arch = ibm20Q(false);
    const auto &v = fiveFrequencyValues();
    int expect[4][5] = {{1, 2, 3, 4, 5},
                        {3, 4, 5, 1, 2},
                        {5, 1, 2, 3, 4},
                        {2, 3, 4, 5, 1}};
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 5; ++c)
            EXPECT_DOUBLE_EQ(
                arch.frequency(*arch.layout().qubitAt({r, c})),
                v[expect[r][c] - 1]);
}

TEST(Ibm, MaxBusesHonoursProhibitedCondition)
{
    for (const auto &arch : {ibm16Q(true), ibm20Q(true)}) {
        const auto &buses = arch.fourQubitBuses();
        for (std::size_t i = 0; i < buses.size(); ++i)
            for (std::size_t j = i + 1; j < buses.size(); ++j) {
                int dist = std::abs(buses[i].row - buses[j].row) +
                           std::abs(buses[i].col - buses[j].col);
                EXPECT_GT(dist, 1);
            }
    }
}

} // namespace

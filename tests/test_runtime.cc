/**
 * @file
 * Tests for the qpad::runtime parallel execution engine: thread pool
 * lifecycle, exception propagation, chunk coverage, seed splitting,
 * and the thread-count independence of the stochastic subsystems
 * built on top of it.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "arch/ibm.hh"
#include "design/anneal.hh"
#include "design/freq_alloc.hh"
#include "design/layout_design.hh"
#include "eval/experiment.hh"
#include "profile/coupling.hh"
#include "runtime/parallel.hh"
#include "runtime/seed_seq.hh"
#include "runtime/thread_pool.hh"
#include "yield/yield_sim.hh"

namespace
{

using namespace qpad;
using runtime::Options;
using runtime::SeedSequence;
using runtime::ThreadPool;

// --------------------------------------------------------------------
// ThreadPool
// --------------------------------------------------------------------

TEST(ThreadPool, StartupAndShutdown)
{
    for (std::size_t n : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(n);
        EXPECT_EQ(pool.size(), n);
    }
}

TEST(ThreadPool, RunsSubmittedTasks)
{
    ThreadPool pool(3);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([&counter] { ++counter; }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DrainsPendingTasksOnDestruction)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&counter] { ++counter; });
    }
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SubmitFuturePropagatesException)
{
    ThreadPool pool(2);
    auto future = pool.submit(
        [] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(future.get(), std::runtime_error);
    // The pool survives a throwing task.
    auto ok = pool.submit([] {});
    EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPool, DestructionAfterRegionRetiresIsClean)
{
    // A locally-constructed pool may be destroyed the moment its
    // caller returns from waitDone: the region is no longer counted
    // active, even though a late helper item may still be queued or
    // retiring (the destructor's join lets it retire harmlessly).
    ThreadPool pool(2);
    std::atomic<std::size_t> hits{0};
    auto state = std::make_shared<runtime::detail::RegionState>(
        2, 4, [&](std::size_t) { ++hits; }, nullptr, 0);
    state->loadDeque(0, {0, 2});
    state->loadDeque(1, {1, 3});
    pool.dispatchRegion(state, 1);
    EXPECT_EQ(pool.activeRegions(), 1u);
    state->runAs(0);
    state->waitDone();
    state->rethrowIfFailed();
    EXPECT_EQ(hits.load(), 4u);
    EXPECT_EQ(pool.activeRegions(), 0u);
    // No wait on activeRegionItems(): destructing through a late
    // helper is exactly the case the active-region tripwire permits.
}

TEST(ThreadPoolDeathTest, DestructionDuringActiveRegionAborts)
{
    // Tearing a pool down while a region helper is mid-chunk must be
    // the documented loud failure — message on stderr, then abort —
    // never a silent hang (the old failure mode: the destructor
    // joins workers that are blocked feeding a region whose caller
    // waits forever).
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            ThreadPool pool(2);
            std::atomic<bool> started{false};
            auto state =
                std::make_shared<runtime::detail::RegionState>(
                    2, 2,
                    [&](std::size_t) {
                        started.store(true);
                        for (;;)
                            std::this_thread::sleep_for(
                                std::chrono::hours(1));
                    },
                    nullptr, 0);
            state->loadDeque(1, {0, 1});
            pool.dispatchRegion(state, 1);
            while (!started.load())
                std::this_thread::yield();
            // The pool destructor runs here, mid-chunk.
        },
        "ThreadPool destroyed while a parallel region");
}

// --------------------------------------------------------------------
// parallel_for / parallel_reduce
// --------------------------------------------------------------------

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    for (std::size_t threads : {1u, 2u, 5u}) {
        const std::size_t n = 1000;
        std::vector<std::atomic<int>> hits(n);
        Options exec{threads};
        runtime::parallel_for(
            exec, n, 7,
            [&](std::size_t begin, std::size_t end, std::size_t) {
                for (std::size_t i = begin; i < end; ++i)
                    ++hits[i];
            });
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ParallelFor, ChunkIndicesMatchBoundaries)
{
    const std::size_t n = 103, grain = 10;
    std::vector<std::pair<std::size_t, std::size_t>> ranges(11);
    runtime::parallel_for(
        Options{4}, n, grain,
        [&](std::size_t begin, std::size_t end, std::size_t chunk) {
            ranges[chunk] = {begin, end};
        });
    for (std::size_t c = 0; c < ranges.size(); ++c) {
        EXPECT_EQ(ranges[c].first, c * grain);
        EXPECT_EQ(ranges[c].second, std::min(c * grain + grain, n));
    }
}

TEST(ParallelFor, EmptyRangeIsANoop)
{
    bool called = false;
    runtime::parallel_for(Options{4}, 0, 8,
                          [&](std::size_t, std::size_t, std::size_t) {
                              called = true;
                          });
    EXPECT_FALSE(called);
}

TEST(ParallelFor, NestedRegionsDoNotDeadlock)
{
    // An outer multi-thread region whose chunks open inner
    // multi-thread regions: pool workers must keep draining queued
    // helper tasks while waiting (helping wait), or the pool
    // deadlocks as soon as it saturates.
    std::atomic<int> inner_hits{0};
    runtime::parallel_for(
        Options{4}, 4, 1,
        [&](std::size_t, std::size_t, std::size_t) {
            runtime::parallel_for(
                Options{4}, 100, 10,
                [&](std::size_t begin, std::size_t end, std::size_t) {
                    inner_hits += int(end - begin);
                });
        });
    EXPECT_EQ(inner_hits.load(), 400);
}

TEST(ParallelFor, PropagatesTaskException)
{
    for (std::size_t threads : {1u, 4u}) {
        EXPECT_THROW(
            runtime::parallel_for(
                Options{threads}, 100, 3,
                [](std::size_t begin, std::size_t, std::size_t) {
                    if (begin >= 30)
                        throw std::runtime_error("chunk failed");
                }),
            std::runtime_error);
    }
}

TEST(ParallelReduce, SumsMatchSequential)
{
    const std::size_t n = 12345;
    for (std::size_t threads : {1u, 3u, 8u}) {
        uint64_t sum = runtime::parallel_reduce(
            Options{threads}, n, 100, uint64_t{0},
            [](std::size_t begin, std::size_t end, std::size_t) {
                uint64_t s = 0;
                for (std::size_t i = begin; i < end; ++i)
                    s += i;
                return s;
            },
            [](uint64_t a, uint64_t b) { return a + b; });
        EXPECT_EQ(sum, uint64_t(n) * (n - 1) / 2);
    }
}

TEST(ParallelReduce, CombinesInChunkOrder)
{
    // A non-commutative combine (string concatenation) exposes any
    // scheduling-order dependence.
    auto run = [](std::size_t threads) {
        return runtime::parallel_reduce(
            Options{threads}, 26, 4, std::string{},
            [](std::size_t begin, std::size_t end, std::size_t) {
                std::string s;
                for (std::size_t i = begin; i < end; ++i)
                    s += char('a' + i);
                return s;
            },
            [](std::string acc, const std::string &x) {
                return acc + x;
            });
    };
    const std::string expect = "abcdefghijklmnopqrstuvwxyz";
    EXPECT_EQ(run(1), expect);
    EXPECT_EQ(run(4), expect);
    EXPECT_EQ(run(13), expect);
}

// --------------------------------------------------------------------
// Guided scheduling (grain = 0)
// --------------------------------------------------------------------

TEST(GuidedScheduling, CoversEveryIndexExactlyOnce)
{
    for (std::size_t threads : {1u, 2u, 5u}) {
        const std::size_t n = 1000;
        std::vector<std::atomic<int>> hits(n);
        runtime::parallel_for(
            Options{threads}, n, 0,
            [&](std::size_t begin, std::size_t end, std::size_t) {
                for (std::size_t i = begin; i < end; ++i)
                    ++hits[i];
            });
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(GuidedScheduling, BoundariesAreAPureFunctionOfN)
{
    // grain = 0 means guided: chunk boundaries must depend on n
    // alone — never on the thread count — and form a contiguous
    // non-increasing size sequence starting at ceil(n / 8).
    const std::size_t n = 1237;
    auto boundaries = [&](std::size_t threads) {
        std::mutex m;
        std::vector<std::pair<std::size_t, std::size_t>> ranges;
        runtime::parallel_for(
            Options{threads}, n, 0,
            [&](std::size_t begin, std::size_t end, std::size_t c) {
                std::lock_guard<std::mutex> lock(m);
                if (ranges.size() <= c)
                    ranges.resize(c + 1);
                ranges[c] = {begin, end};
            });
        return ranges;
    };
    const auto seq = boundaries(1);
    ASSERT_FALSE(seq.empty());
    EXPECT_EQ(seq.front().first, 0u);
    EXPECT_EQ(seq.front().second, (n + 7) / 8);
    EXPECT_EQ(seq.back().second, n);
    for (std::size_t c = 1; c < seq.size(); ++c) {
        EXPECT_EQ(seq[c].first, seq[c - 1].second) << c;
        EXPECT_LE(seq[c].second - seq[c].first,
                  seq[c - 1].second - seq[c - 1].first)
            << c;
    }
    EXPECT_EQ(seq.back().second - seq.back().first, 1u);
    for (std::size_t threads : {2u, 4u, 16u})
        EXPECT_EQ(boundaries(threads), seq) << threads;
}

TEST(GuidedScheduling, ReduceCombinesInChunkOrder)
{
    // Non-commutative combine under guided sizing: the decreasing
    // chunk sizes and the stealing runners must not disturb the
    // ascending fold.
    auto run = [](std::size_t threads) {
        return runtime::parallel_reduce(
            Options{threads}, 26, 0, std::string{},
            [](std::size_t begin, std::size_t end, std::size_t) {
                std::string s;
                for (std::size_t i = begin; i < end; ++i)
                    s += char('a' + i);
                return s;
            },
            [](std::string acc, const std::string &x) {
                return acc + x;
            });
    };
    const std::string expect = "abcdefghijklmnopqrstuvwxyz";
    EXPECT_EQ(run(1), expect);
    EXPECT_EQ(run(4), expect);
    EXPECT_EQ(run(13), expect);
}

TEST(GuidedScheduling, PropagatesTaskException)
{
    for (std::size_t threads : {1u, 4u}) {
        EXPECT_THROW(
            runtime::parallel_for(
                Options{threads}, 100, 0,
                [](std::size_t begin, std::size_t, std::size_t) {
                    if (begin >= 30)
                        throw std::runtime_error("guided chunk failed");
                }),
            std::runtime_error);
    }
}

// --------------------------------------------------------------------
// Thread-count validation and oversubscription
// --------------------------------------------------------------------

TEST(ThreadOptions, OversubscribedCountsMatchSequential)
{
    // num_threads far beyond the hardware must still cover the range
    // exactly once and reduce identically (runner count is clamped
    // to the pool, not rejected).
    const std::size_t n = 5000;
    const uint64_t expect = uint64_t(n) * (n - 1) / 2;
    for (std::size_t threads :
         {std::size_t(64), runtime::kMaxThreads}) {
        for (std::size_t grain : {std::size_t(7), std::size_t(0)}) {
            uint64_t sum = runtime::parallel_reduce(
                Options{threads}, n, grain, uint64_t{0},
                [](std::size_t begin, std::size_t end, std::size_t) {
                    uint64_t s = 0;
                    for (std::size_t i = begin; i < end; ++i)
                        s += i;
                    return s;
                },
                [](uint64_t a, uint64_t b) { return a + b; });
            EXPECT_EQ(sum, expect) << threads << "/" << grain;
        }
    }
}

TEST(ThreadOptions, RejectsCountsAboveCeiling)
{
    // Consistent with the bench drivers' QPAD_THREADS validation:
    // a count above kMaxThreads is a malformed configuration, not a
    // machine description, and must be rejected loudly.
    EXPECT_NO_THROW(
        runtime::resolveThreads(Options{runtime::kMaxThreads}));
    try {
        runtime::resolveThreads(Options{runtime::kMaxThreads + 1});
        FAIL() << "expected the thread ceiling to be enforced";
    } catch (const std::logic_error &e) {
        EXPECT_NE(std::string(e.what()).find("ceiling"),
                  std::string::npos)
            << e.what();
    }
}

// --------------------------------------------------------------------
// Exceptions under stealing
// --------------------------------------------------------------------

TEST(StealingExceptions, NestedRegionExceptionReachesOuterCaller)
{
    // A chunk of an outer multi-thread region opens an inner region
    // whose chunks throw: the inner region must rethrow in the outer
    // chunk, and the outer region must hand exactly that exception
    // (message intact) to the outermost caller — under stealing and
    // with oversubscribed runner counts.
    try {
        runtime::parallel_for(
            Options{8}, 8, 1,
            [&](std::size_t, std::size_t, std::size_t) {
                runtime::parallel_for(
                    Options{8}, 64, 0,
                    [&](std::size_t begin, std::size_t, std::size_t) {
                        if (begin >= 32)
                            throw std::runtime_error("inner boom");
                    });
            });
        FAIL() << "expected the nested exception to propagate";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "inner boom");
    }
}

TEST(StealingExceptions, FirstErrorWinsIsOneOfTheThrown)
{
    // Several chunks throw distinct exceptions; exactly one may
    // surface, and it must be one of the thrown ones — never a
    // mangled or default-constructed error.
    const std::set<std::string> thrown = {"err-10", "err-20",
                                          "err-30"};
    try {
        runtime::parallel_for(
            Options{4}, 40, 1,
            [&](std::size_t begin, std::size_t, std::size_t) {
                if (begin == 10 || begin == 20 || begin == 30)
                    throw std::runtime_error(
                        "err-" + std::to_string(begin));
            });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_TRUE(thrown.count(e.what())) << e.what();
    }
}

// --------------------------------------------------------------------
// Cooperative cancellation at chunk-claim boundaries
// --------------------------------------------------------------------

TEST(Cancellation, PreStoppedTokenRunsNoChunk)
{
    // A token that is already stopped fails the region before the
    // first chunk-claim, sequential and parallel alike.
    for (std::size_t threads : {1u, 4u}) {
        for (const bool deadline : {false, true}) {
            exec::CancelToken tok;
            if (deadline)
                tok.setDeadline(exec::now() -
                                std::chrono::nanoseconds(1));
            else
                tok.cancel();
            Options opts{threads};
            opts.cancel = &tok;
            std::atomic<std::size_t> executed{0};
            try {
                runtime::parallel_for(
                    opts, 100, 1,
                    [&](std::size_t, std::size_t, std::size_t) {
                        ++executed;
                    });
                FAIL() << "expected CancelledError";
            } catch (const exec::CancelledError &e) {
                EXPECT_EQ(e.reason(),
                          deadline
                              ? exec::StopReason::kDeadlineExceeded
                              : exec::StopReason::kCancelled);
            }
            EXPECT_EQ(executed.load(), 0u);
        }
    }
}

TEST(Cancellation, CancelFromInsideARegionSkipsTheRemainder)
{
    // The first executed chunk cancels the token; every later claim
    // observes the stop and is skipped, so the region unwinds with
    // CancelledError after a small fraction of the range.
    for (std::size_t threads : {1u, 4u}) {
        exec::CancelToken tok;
        Options opts{threads};
        opts.cancel = &tok;
        std::atomic<std::size_t> executed{0};
        try {
            runtime::parallel_for(
                opts, 1000, 1,
                [&](std::size_t, std::size_t, std::size_t) {
                    ++executed;
                    tok.cancel();
                });
            FAIL() << "expected CancelledError";
        } catch (const exec::CancelledError &e) {
            EXPECT_EQ(e.reason(), exec::StopReason::kCancelled);
        }
        // A chunk per runner can already be in flight when the stop
        // lands, but the bulk of the range must be skipped.
        EXPECT_LT(executed.load(), 1000u) << threads;
    }
}

TEST(Cancellation, ExternalCancelRace)
{
    // TSan-stressed: another thread cancels while workers claim
    // chunks. Either outcome (completed or cancelled) is legal; the
    // invariants are no torn state and a correctly-typed error.
    for (int round = 0; round < 8; ++round) {
        exec::CancelToken tok;
        Options opts{4};
        opts.cancel = &tok;
        std::atomic<std::size_t> executed{0};
        std::thread canceller([&tok] { tok.cancel(); });
        bool cancelled = false;
        try {
            runtime::parallel_for(
                opts, 400, 1,
                [&](std::size_t, std::size_t, std::size_t) {
                    ++executed;
                });
        } catch (const exec::CancelledError &e) {
            cancelled = true;
            EXPECT_EQ(e.reason(), exec::StopReason::kCancelled);
        }
        canceller.join();
        if (!cancelled)
            EXPECT_EQ(executed.load(), 400u);
        else
            EXPECT_LE(executed.load(), 400u);
    }
}

TEST(Cancellation, BenignTokenLeavesResultsBitIdentical)
{
    // The determinism contract: a token that never stops must not
    // change a byte of the result at any thread count — the
    // non-commutative fold exposes any scheduling disturbance.
    exec::CancelToken tok;
    tok.setDeadline(exec::now() + std::chrono::hours(1));
    auto run = [&tok](std::size_t threads) {
        Options opts{threads};
        opts.cancel = &tok;
        return runtime::parallel_reduce(
            opts, 26, 0, std::string{},
            [](std::size_t begin, std::size_t end, std::size_t) {
                std::string s;
                for (std::size_t i = begin; i < end; ++i)
                    s += char('a' + i);
                return s;
            },
            [](std::string acc, const std::string &x) {
                return acc + x;
            });
    };
    const std::string expect = "abcdefghijklmnopqrstuvwxyz";
    EXPECT_EQ(run(1), expect);
    EXPECT_EQ(run(4), expect);
    EXPECT_EQ(run(13), expect);
}

// --------------------------------------------------------------------
// Wakeup latency (regression for the old 1 ms sleep-poll wait)
// --------------------------------------------------------------------

namespace
{

// GCC defines __SANITIZE_*__; Clang reports via __has_feature.
// Folded into a project-local macro — defining the reserved
// double-underscore names ourselves would be undefined behavior.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define QPAD_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define QPAD_SANITIZED 1
#endif
#endif

/** Sanitizer builds run 10-20x slower; scale the latency budgets. */
constexpr int
timingSlack()
{
#if defined(QPAD_SANITIZED)
    return 20;
#else
    return 4; // headroom for loaded CI machines
#endif
}

} // namespace

TEST(WakeupLatency, SmallRegionsCompleteWithoutMillisecondStalls)
{
    // The old helping wait polled helper futures with a 1 ms sleep,
    // so a run of tiny two-runner regions accumulated millisecond-
    // scale stalls. The condition-variable handshake must keep a
    // region's completion in the microsecond range.
    const int regions = 300;
    std::atomic<std::size_t> sum{0};
    // qpad-lint: allow(no-wallclock) "wakeup-latency regression
    // bound; timing never affects computed results"
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < regions; ++r) {
        runtime::parallel_for(
            Options{2}, 2, 1,
            [&](std::size_t begin, std::size_t, std::size_t) {
                sum += begin;
            });
    }
    // qpad-lint: allow(no-wallclock) "wakeup-latency regression
    // bound; timing never affects computed results"
    const double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_EQ(sum.load(), std::size_t(regions));
    // 1 ms-scale stalls would put this at >= regions * 1e-3 seconds.
    EXPECT_LT(elapsed, 0.5e-3 * regions * timingSlack());
}

TEST(WakeupLatency, SingleSubmittedTaskCompletesPromptly)
{
    ThreadPool pool(2);
    const int tasks = 100;
    // qpad-lint: allow(no-wallclock) "wakeup-latency regression
    // bound; timing never affects computed results"
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < tasks; ++i)
        pool.submit([] {}).get();
    // qpad-lint: allow(no-wallclock) "wakeup-latency regression
    // bound; timing never affects computed results"
    const double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_LT(elapsed, 0.5e-3 * tasks * timingSlack());
}

// --------------------------------------------------------------------
// RegionStats
// --------------------------------------------------------------------

TEST(RegionStats, CountsChunksAndRunners)
{
    runtime::RegionStats stats;
    runtime::parallel_for(
        Options{4, &stats}, 1000, 10,
        [](std::size_t, std::size_t, std::size_t) {});
    EXPECT_EQ(stats.chunks, 100u);
    EXPECT_GE(stats.threads, 1u);
    EXPECT_LE(stats.threads, 4u);
    EXPECT_EQ(stats.chunks_per_runner.size(), stats.threads);
    std::size_t total = 0;
    for (std::size_t c : stats.chunks_per_runner)
        total += c;
    EXPECT_EQ(total, 100u);
    EXPECT_LE(stats.steals, 100u);
    EXPECT_GE(stats.max_idle_seconds, 0.0);
}

TEST(RegionStats, SequentialRegionReportsOneRunner)
{
    runtime::RegionStats stats;
    uint64_t sum = runtime::parallel_reduce(
        Options{1, &stats}, 100, 0, uint64_t{0},
        [](std::size_t begin, std::size_t end, std::size_t) {
            uint64_t s = 0;
            for (std::size_t i = begin; i < end; ++i)
                s += i;
            return s;
        },
        [](uint64_t a, uint64_t b) { return a + b; });
    EXPECT_EQ(sum, 4950u);
    EXPECT_EQ(stats.threads, 1u);
    EXPECT_GT(stats.chunks, 0u);
    EXPECT_EQ(stats.steals, 0u);
    ASSERT_EQ(stats.chunks_per_runner.size(), 1u);
    EXPECT_EQ(stats.chunks_per_runner[0], stats.chunks);
}

// --------------------------------------------------------------------
// SeedSequence
// --------------------------------------------------------------------

TEST(SeedSequence, ChildSeedsAreDeterministic)
{
    SeedSequence a(99), b(99);
    for (uint64_t s = 0; s < 64; ++s)
        EXPECT_EQ(a.childSeed(s), b.childSeed(s));
}

TEST(SeedSequence, ChildStreamsDiverge)
{
    SeedSequence seq(7);
    Rng r0 = seq.childRng(0);
    Rng r1 = seq.childRng(1);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += r0.next() == r1.next();
    EXPECT_LT(same, 3);
}

TEST(SeedSequence, DifferentBasesDiverge)
{
    SeedSequence a(1), b(2);
    int same = 0;
    for (uint64_t s = 0; s < 100; ++s)
        same += a.childSeed(s) == b.childSeed(s);
    EXPECT_LT(same, 3);
}

// --------------------------------------------------------------------
// Thread-count independence of the wired subsystems
// --------------------------------------------------------------------

TEST(Determinism, YieldBitIdenticalAcrossThreadCounts)
{
    auto arch = arch::ibm16Q(true);
    yield::YieldOptions opts;
    opts.trials = 10000;
    opts.seed = 2020;
    opts.collect_condition_stats = true;

    opts.exec.num_threads = 1;
    auto seq = yield::estimateYield(arch, opts);
    for (std::size_t threads : {2u, 4u, 7u}) {
        opts.exec.num_threads = threads;
        auto par = yield::estimateYield(arch, opts);
        EXPECT_EQ(par.successes, seq.successes) << threads;
        EXPECT_DOUBLE_EQ(par.yield, seq.yield) << threads;
        EXPECT_EQ(par.condition_trials, seq.condition_trials)
            << threads;
    }
}

TEST(Determinism, LocalSimulatorShardedMatchesAcrossThreadCounts)
{
    auto arch = arch::ibm16Q(false);
    design::FreqAllocOptions fopts;
    fopts.local_trials = 500;
    design::applyOptimizedFrequencies(arch, fopts);

    yield::CollisionChecker checker(arch);
    std::vector<arch::PhysQubit> involved(arch.numQubits());
    std::iota(involved.begin(), involved.end(), 0);
    yield::LocalYieldSimulator sim(checker.pairs(), checker.triples(),
                                   {}, involved);

    double seq = sim.simulate(arch.frequencies(), 0.03, 20000, 5,
                              Options{1});
    double par = sim.simulate(arch.frequencies(), 0.03, 20000, 5,
                              Options{4});
    EXPECT_DOUBLE_EQ(seq, par);
}

TEST(Determinism, FreqAllocIdenticalAcrossThreadCounts)
{
    auto arch = arch::ibm16Q(true);
    design::FreqAllocOptions opts;
    opts.local_trials = 400;
    opts.refine_sweeps = 1;

    opts.exec.num_threads = 1;
    auto seq = design::allocateFrequencies(arch, opts);
    opts.exec.num_threads = 4;
    auto par = design::allocateFrequencies(arch, opts);
    EXPECT_EQ(seq.freqs, par.freqs);
    EXPECT_EQ(seq.order, par.order);
    EXPECT_EQ(seq.local_scores, par.local_scores);
}

TEST(Determinism, AnnealRestartsIdenticalAcrossThreadCounts)
{
    auto circ = benchmarks::getBenchmark("z4_268").generate();
    auto prof = profile::profileCircuit(circ);
    auto start = design::designLayout(prof);

    design::AnnealOptions opts;
    opts.iterations = 2000;
    opts.restarts = 4;

    opts.exec.num_threads = 1;
    auto seq = design::annealLayout(prof, start, opts);
    opts.exec.num_threads = 4;
    auto par = design::annealLayout(prof, start, opts);
    EXPECT_EQ(seq.final_cost, par.final_cost);
    EXPECT_EQ(seq.winning_chain, par.winning_chain);
    EXPECT_EQ(seq.layout.coord_of_logical,
              par.layout.coord_of_logical);
    // More chains can only improve on the single-chain result.
    design::AnnealOptions single = opts;
    single.restarts = 1;
    auto one = design::annealLayout(prof, start, single);
    EXPECT_LE(seq.final_cost, one.final_cost);
}

TEST(Determinism, AnnealAcceptsStartWithUnsetCost)
{
    // initial_cost must be derived from the start coordinates, not
    // trusted from the struct field, or the internal no-regression
    // assert fires on caller-built layouts.
    auto circ = benchmarks::getBenchmark("cm152a_212").generate();
    auto prof = profile::profileCircuit(circ);
    auto designed = design::designLayout(prof);
    design::LayoutResult bare;
    bare.coord_of_logical = designed.coord_of_logical;
    bare.layout = designed.layout; // placement_cost left at 0
    design::AnnealOptions opts;
    opts.iterations = 500;
    auto annealed = design::annealLayout(prof, bare, opts);
    EXPECT_EQ(annealed.initial_cost, designed.placement_cost);
    EXPECT_LE(annealed.final_cost, annealed.initial_cost);
}

TEST(Determinism, ExperimentIdenticalAcrossThreadCounts)
{
    auto info = benchmarks::getBenchmark("sym6_145");
    eval::ExperimentOptions opts;
    opts.yield_options.trials = 1000;
    opts.max_yield_trials = 10000;
    opts.freq_options.local_trials = 200;
    opts.freq_options.refine_sweeps = 0;
    opts.random_bus_samples = 2;

    opts.exec.num_threads = 1;
    auto seq = eval::runBenchmark(info, opts);
    opts.exec.num_threads = 4;
    auto par = eval::runBenchmark(info, opts);

    ASSERT_EQ(seq.points.size(), par.points.size());
    for (std::size_t i = 0; i < seq.points.size(); ++i) {
        EXPECT_EQ(seq.points[i].config, par.points[i].config) << i;
        EXPECT_EQ(seq.points[i].arch_name, par.points[i].arch_name)
            << i;
        EXPECT_EQ(seq.points[i].gate_count, par.points[i].gate_count)
            << i;
        EXPECT_DOUBLE_EQ(seq.points[i].yield, par.points[i].yield)
            << i;
    }
}

} // namespace

/**
 * @file
 * Tests for the qpad::runtime parallel execution engine: thread pool
 * lifecycle, exception propagation, chunk coverage, seed splitting,
 * and the thread-count independence of the stochastic subsystems
 * built on top of it.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/ibm.hh"
#include "design/anneal.hh"
#include "design/freq_alloc.hh"
#include "design/layout_design.hh"
#include "eval/experiment.hh"
#include "profile/coupling.hh"
#include "runtime/parallel.hh"
#include "runtime/seed_seq.hh"
#include "runtime/thread_pool.hh"
#include "yield/yield_sim.hh"

namespace
{

using namespace qpad;
using runtime::Options;
using runtime::SeedSequence;
using runtime::ThreadPool;

// --------------------------------------------------------------------
// ThreadPool
// --------------------------------------------------------------------

TEST(ThreadPool, StartupAndShutdown)
{
    for (std::size_t n : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(n);
        EXPECT_EQ(pool.size(), n);
    }
}

TEST(ThreadPool, RunsSubmittedTasks)
{
    ThreadPool pool(3);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([&counter] { ++counter; }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DrainsPendingTasksOnDestruction)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&counter] { ++counter; });
    }
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SubmitFuturePropagatesException)
{
    ThreadPool pool(2);
    auto future = pool.submit(
        [] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(future.get(), std::runtime_error);
    // The pool survives a throwing task.
    auto ok = pool.submit([] {});
    EXPECT_NO_THROW(ok.get());
}

// --------------------------------------------------------------------
// parallel_for / parallel_reduce
// --------------------------------------------------------------------

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    for (std::size_t threads : {1u, 2u, 5u}) {
        const std::size_t n = 1000;
        std::vector<std::atomic<int>> hits(n);
        Options exec{threads};
        runtime::parallel_for(
            exec, n, 7,
            [&](std::size_t begin, std::size_t end, std::size_t) {
                for (std::size_t i = begin; i < end; ++i)
                    ++hits[i];
            });
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ParallelFor, ChunkIndicesMatchBoundaries)
{
    const std::size_t n = 103, grain = 10;
    std::vector<std::pair<std::size_t, std::size_t>> ranges(11);
    runtime::parallel_for(
        Options{4}, n, grain,
        [&](std::size_t begin, std::size_t end, std::size_t chunk) {
            ranges[chunk] = {begin, end};
        });
    for (std::size_t c = 0; c < ranges.size(); ++c) {
        EXPECT_EQ(ranges[c].first, c * grain);
        EXPECT_EQ(ranges[c].second, std::min(c * grain + grain, n));
    }
}

TEST(ParallelFor, EmptyRangeIsANoop)
{
    bool called = false;
    runtime::parallel_for(Options{4}, 0, 8,
                          [&](std::size_t, std::size_t, std::size_t) {
                              called = true;
                          });
    EXPECT_FALSE(called);
}

TEST(ParallelFor, NestedRegionsDoNotDeadlock)
{
    // An outer multi-thread region whose chunks open inner
    // multi-thread regions: pool workers must keep draining queued
    // helper tasks while waiting (helping wait), or the pool
    // deadlocks as soon as it saturates.
    std::atomic<int> inner_hits{0};
    runtime::parallel_for(
        Options{4}, 4, 1,
        [&](std::size_t, std::size_t, std::size_t) {
            runtime::parallel_for(
                Options{4}, 100, 10,
                [&](std::size_t begin, std::size_t end, std::size_t) {
                    inner_hits += int(end - begin);
                });
        });
    EXPECT_EQ(inner_hits.load(), 400);
}

TEST(ParallelFor, PropagatesTaskException)
{
    for (std::size_t threads : {1u, 4u}) {
        EXPECT_THROW(
            runtime::parallel_for(
                Options{threads}, 100, 3,
                [](std::size_t begin, std::size_t, std::size_t) {
                    if (begin >= 30)
                        throw std::runtime_error("chunk failed");
                }),
            std::runtime_error);
    }
}

TEST(ParallelReduce, SumsMatchSequential)
{
    const std::size_t n = 12345;
    for (std::size_t threads : {1u, 3u, 8u}) {
        uint64_t sum = runtime::parallel_reduce(
            Options{threads}, n, 100, uint64_t{0},
            [](std::size_t begin, std::size_t end, std::size_t) {
                uint64_t s = 0;
                for (std::size_t i = begin; i < end; ++i)
                    s += i;
                return s;
            },
            [](uint64_t a, uint64_t b) { return a + b; });
        EXPECT_EQ(sum, uint64_t(n) * (n - 1) / 2);
    }
}

TEST(ParallelReduce, CombinesInChunkOrder)
{
    // A non-commutative combine (string concatenation) exposes any
    // scheduling-order dependence.
    auto run = [](std::size_t threads) {
        return runtime::parallel_reduce(
            Options{threads}, 26, 4, std::string{},
            [](std::size_t begin, std::size_t end, std::size_t) {
                std::string s;
                for (std::size_t i = begin; i < end; ++i)
                    s += char('a' + i);
                return s;
            },
            [](std::string acc, const std::string &x) {
                return acc + x;
            });
    };
    const std::string expect = "abcdefghijklmnopqrstuvwxyz";
    EXPECT_EQ(run(1), expect);
    EXPECT_EQ(run(4), expect);
    EXPECT_EQ(run(13), expect);
}

// --------------------------------------------------------------------
// SeedSequence
// --------------------------------------------------------------------

TEST(SeedSequence, ChildSeedsAreDeterministic)
{
    SeedSequence a(99), b(99);
    for (uint64_t s = 0; s < 64; ++s)
        EXPECT_EQ(a.childSeed(s), b.childSeed(s));
}

TEST(SeedSequence, ChildStreamsDiverge)
{
    SeedSequence seq(7);
    Rng r0 = seq.childRng(0);
    Rng r1 = seq.childRng(1);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += r0.next() == r1.next();
    EXPECT_LT(same, 3);
}

TEST(SeedSequence, DifferentBasesDiverge)
{
    SeedSequence a(1), b(2);
    int same = 0;
    for (uint64_t s = 0; s < 100; ++s)
        same += a.childSeed(s) == b.childSeed(s);
    EXPECT_LT(same, 3);
}

// --------------------------------------------------------------------
// Thread-count independence of the wired subsystems
// --------------------------------------------------------------------

TEST(Determinism, YieldBitIdenticalAcrossThreadCounts)
{
    auto arch = arch::ibm16Q(true);
    yield::YieldOptions opts;
    opts.trials = 10000;
    opts.seed = 2020;
    opts.collect_condition_stats = true;

    opts.exec.num_threads = 1;
    auto seq = yield::estimateYield(arch, opts);
    for (std::size_t threads : {2u, 4u, 7u}) {
        opts.exec.num_threads = threads;
        auto par = yield::estimateYield(arch, opts);
        EXPECT_EQ(par.successes, seq.successes) << threads;
        EXPECT_DOUBLE_EQ(par.yield, seq.yield) << threads;
        EXPECT_EQ(par.condition_trials, seq.condition_trials)
            << threads;
    }
}

TEST(Determinism, LocalSimulatorShardedMatchesAcrossThreadCounts)
{
    auto arch = arch::ibm16Q(false);
    design::FreqAllocOptions fopts;
    fopts.local_trials = 500;
    design::applyOptimizedFrequencies(arch, fopts);

    yield::CollisionChecker checker(arch);
    std::vector<arch::PhysQubit> involved(arch.numQubits());
    std::iota(involved.begin(), involved.end(), 0);
    yield::LocalYieldSimulator sim(checker.pairs(), checker.triples(),
                                   {}, involved);

    double seq = sim.simulate(arch.frequencies(), 0.03, 20000, 5,
                              Options{1});
    double par = sim.simulate(arch.frequencies(), 0.03, 20000, 5,
                              Options{4});
    EXPECT_DOUBLE_EQ(seq, par);
}

TEST(Determinism, FreqAllocIdenticalAcrossThreadCounts)
{
    auto arch = arch::ibm16Q(true);
    design::FreqAllocOptions opts;
    opts.local_trials = 400;
    opts.refine_sweeps = 1;

    opts.exec.num_threads = 1;
    auto seq = design::allocateFrequencies(arch, opts);
    opts.exec.num_threads = 4;
    auto par = design::allocateFrequencies(arch, opts);
    EXPECT_EQ(seq.freqs, par.freqs);
    EXPECT_EQ(seq.order, par.order);
    EXPECT_EQ(seq.local_scores, par.local_scores);
}

TEST(Determinism, AnnealRestartsIdenticalAcrossThreadCounts)
{
    auto circ = benchmarks::getBenchmark("z4_268").generate();
    auto prof = profile::profileCircuit(circ);
    auto start = design::designLayout(prof);

    design::AnnealOptions opts;
    opts.iterations = 2000;
    opts.restarts = 4;

    opts.exec.num_threads = 1;
    auto seq = design::annealLayout(prof, start, opts);
    opts.exec.num_threads = 4;
    auto par = design::annealLayout(prof, start, opts);
    EXPECT_EQ(seq.final_cost, par.final_cost);
    EXPECT_EQ(seq.winning_chain, par.winning_chain);
    EXPECT_EQ(seq.layout.coord_of_logical,
              par.layout.coord_of_logical);
    // More chains can only improve on the single-chain result.
    design::AnnealOptions single = opts;
    single.restarts = 1;
    auto one = design::annealLayout(prof, start, single);
    EXPECT_LE(seq.final_cost, one.final_cost);
}

TEST(Determinism, AnnealAcceptsStartWithUnsetCost)
{
    // initial_cost must be derived from the start coordinates, not
    // trusted from the struct field, or the internal no-regression
    // assert fires on caller-built layouts.
    auto circ = benchmarks::getBenchmark("cm152a_212").generate();
    auto prof = profile::profileCircuit(circ);
    auto designed = design::designLayout(prof);
    design::LayoutResult bare;
    bare.coord_of_logical = designed.coord_of_logical;
    bare.layout = designed.layout; // placement_cost left at 0
    design::AnnealOptions opts;
    opts.iterations = 500;
    auto annealed = design::annealLayout(prof, bare, opts);
    EXPECT_EQ(annealed.initial_cost, designed.placement_cost);
    EXPECT_LE(annealed.final_cost, annealed.initial_cost);
}

TEST(Determinism, ExperimentIdenticalAcrossThreadCounts)
{
    auto info = benchmarks::getBenchmark("sym6_145");
    eval::ExperimentOptions opts;
    opts.yield_options.trials = 1000;
    opts.max_yield_trials = 10000;
    opts.freq_options.local_trials = 200;
    opts.freq_options.refine_sweeps = 0;
    opts.random_bus_samples = 2;

    opts.exec.num_threads = 1;
    auto seq = eval::runBenchmark(info, opts);
    opts.exec.num_threads = 4;
    auto par = eval::runBenchmark(info, opts);

    ASSERT_EQ(seq.points.size(), par.points.size());
    for (std::size_t i = 0; i < seq.points.size(); ++i) {
        EXPECT_EQ(seq.points[i].config, par.points[i].config) << i;
        EXPECT_EQ(seq.points[i].arch_name, par.points[i].arch_name)
            << i;
        EXPECT_EQ(seq.points[i].gate_count, par.points[i].gate_count)
            << i;
        EXPECT_DOUBLE_EQ(seq.points[i].yield, par.points[i].yield)
            << i;
    }
}

} // namespace

/**
 * @file
 * Tests for the gate dependency DAG.
 */

#include <gtest/gtest.h>

#include "circuit/dag.hh"

namespace
{

using namespace qpad::circuit;

TEST(Dag, IndependentGatesAreAllRoots)
{
    Circuit c(3);
    c.h(0);
    c.h(1);
    c.h(2);
    DependencyDag dag(c);
    EXPECT_EQ(dag.roots().size(), 3u);
    EXPECT_EQ(dag.asapDepth(), 1u);
}

TEST(Dag, SerialChainHasOneRoot)
{
    Circuit c(1);
    c.h(0);
    c.t(0);
    c.h(0);
    DependencyDag dag(c);
    EXPECT_EQ(dag.roots().size(), 1u);
    EXPECT_EQ(dag.asapDepth(), 3u);
    EXPECT_EQ(dag.successors(0).size(), 1u);
    EXPECT_EQ(dag.successors(0)[0], 1u);
}

TEST(Dag, TwoQubitGateJoinsChains)
{
    Circuit c(2);
    c.h(0);    // 0
    c.h(1);    // 1
    c.cx(0, 1); // 2 depends on 0 and 1
    DependencyDag dag(c);
    EXPECT_EQ(dag.indegree(2), 2u);
    EXPECT_EQ(dag.asapDepth(), 2u);
}

TEST(Dag, BackToBackCxSamePairSingleEdge)
{
    Circuit c(2);
    c.cx(0, 1); // 0
    c.cx(0, 1); // 1 shares both qubits with 0
    DependencyDag dag(c);
    // The duplicate edge must be coalesced.
    EXPECT_EQ(dag.successors(0).size(), 1u);
    EXPECT_EQ(dag.indegree(1), 1u);
    EXPECT_EQ(dag.asapDepth(), 2u);
}

TEST(Dag, BarrierSynchronizesEverything)
{
    Circuit c(3);
    c.h(0);     // 0
    c.barrier(); // 1
    c.h(1);     // 2: must depend on the barrier
    DependencyDag dag(c);
    EXPECT_EQ(dag.indegree(2), 1u);
    EXPECT_EQ(dag.successors(1).size(), 1u);
    EXPECT_EQ(dag.asapDepth(), 3u);
}

TEST(Dag, MeasureParticipatesInDependencies)
{
    Circuit c(1, 1);
    c.h(0);
    c.measure(0, 0);
    DependencyDag dag(c);
    EXPECT_EQ(dag.indegree(1), 1u);
}

TEST(Dag, RootsMatchIndegreeZero)
{
    Circuit c(4);
    c.cx(0, 1);
    c.cx(2, 3);
    c.cx(1, 2);
    DependencyDag dag(c);
    auto roots = dag.roots();
    ASSERT_EQ(roots.size(), 2u);
    EXPECT_EQ(roots[0], 0u);
    EXPECT_EQ(roots[1], 1u);
    EXPECT_EQ(dag.indegree(2), 2u);
}

TEST(Dag, AsapDepthMatchesCircuitDepthForUnitaries)
{
    Circuit c(5);
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    c.h(3);
    c.cx(3, 4);
    c.cx(2, 3);
    DependencyDag dag(c);
    EXPECT_EQ(dag.asapDepth(), c.depth());
}

TEST(Dag, EmptyCircuit)
{
    Circuit c(3);
    DependencyDag dag(c);
    EXPECT_EQ(dag.numGates(), 0u);
    EXPECT_TRUE(dag.roots().empty());
    EXPECT_EQ(dag.asapDepth(), 0u);
}

} // namespace

/**
 * @file
 * Tests for the experiment harness and reporting helpers.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <mutex>
#include <sstream>

#include "arch/ibm.hh"
#include "benchmarks/suite.hh"
#include "eval/experiment.hh"
#include "eval/report.hh"

namespace
{

using namespace qpad;
using namespace qpad::eval;

ExperimentOptions
fastOptions()
{
    ExperimentOptions opts;
    opts.yield_options.trials = 400;
    opts.freq_options.local_trials = 200;
    opts.freq_options.refine_sweeps = 1;
    opts.random_bus_samples = 2;
    return opts;
}

TEST(Experiment, AllConfigurationsPresent)
{
    auto exp = runBenchmark(benchmarks::getBenchmark("UCCSD_ansatz_8"),
                            fastOptions());
    EXPECT_EQ(exp.benchmark, "UCCSD_ansatz_8");
    EXPECT_EQ(exp.logical_qubits, 8u);
    EXPECT_FALSE(exp.config("ibm").empty());
    EXPECT_FALSE(exp.config("eff-full").empty());
    EXPECT_FALSE(exp.config("eff-5-freq").empty());
    EXPECT_FALSE(exp.config("eff-layout-only").empty());
    // ibm always contributes its four baselines for an 8q program.
    EXPECT_EQ(exp.config("ibm").size(), 4u);
    // eff-layout-only contributes the 2q-only and max-bus variants.
    EXPECT_EQ(exp.config("eff-layout-only").size(), 2u);
}

TEST(Experiment, NormalizationAnchorsWorstAtOne)
{
    auto exp = runBenchmark(benchmarks::getBenchmark("UCCSD_ansatz_8"),
                            fastOptions());
    double min_norm = 1e9;
    std::size_t max_gates = 0;
    for (const auto &p : exp.points) {
        min_norm = std::min(min_norm, p.norm_recip_gates);
        max_gates = std::max(max_gates, p.gate_count);
    }
    EXPECT_DOUBLE_EQ(min_norm, 1.0);
    for (const auto &p : exp.points)
        EXPECT_NEAR(p.norm_recip_gates,
                    double(max_gates) / p.gate_count, 1e-12);
}

TEST(Experiment, EffFullUsesProgramSizedChips)
{
    auto exp = runBenchmark(benchmarks::getBenchmark("sym6_145"),
                            fastOptions());
    for (const auto *p : exp.config("eff-full"))
        EXPECT_EQ(p->num_qubits, 7u);
    for (const auto *p : exp.config("ibm"))
        EXPECT_GE(p->num_qubits, 16u);
}

TEST(Experiment, IsingSpecialCaseSingleEffFullDesign)
{
    // Section 5.3.1: a chain program needs no 4-qubit buses, so the
    // eff-full sweep collapses to the single K = 0 design.
    auto exp = runBenchmark(benchmarks::getBenchmark("ising_model_16"),
                            fastOptions());
    auto eff = exp.config("eff-full");
    ASSERT_EQ(eff.size(), 1u);
    EXPECT_EQ(eff[0]->num_buses, 0u);
}

TEST(Experiment, ConfigFiltersWork)
{
    ExperimentOptions opts = fastOptions();
    opts.run_ibm = false;
    opts.run_eff_rd_bus = false;
    opts.run_eff_5_freq = false;
    auto exp = runBenchmark(benchmarks::getBenchmark("sym6_145"), opts);
    EXPECT_TRUE(exp.config("ibm").empty());
    EXPECT_TRUE(exp.config("eff-rd-bus").empty());
    EXPECT_FALSE(exp.config("eff-full").empty());
}

TEST(Experiment, BestAccessors)
{
    auto exp = runBenchmark(benchmarks::getBenchmark("sym6_145"),
                            fastOptions());
    double best_yield = exp.bestYield("eff-full");
    std::size_t best_gates = exp.bestGates("eff-full");
    for (const auto *p : exp.config("eff-full")) {
        EXPECT_LE(p->yield, best_yield);
        EXPECT_GE(p->gate_count, best_gates);
    }
}

TEST(Experiment, MeasureFillsAllFields)
{
    auto arch = arch::ibm16Q(false);
    auto circ = benchmarks::getBenchmark("UCCSD_ansatz_8").generate();
    auto p = measure("probe", arch, circ, fastOptions());
    EXPECT_EQ(p.config, "probe");
    EXPECT_EQ(p.arch_name, "ibm-16q-2qbus");
    EXPECT_EQ(p.num_qubits, 16u);
    EXPECT_EQ(p.num_edges, 22u);
    EXPECT_EQ(p.num_buses, 0u);
    EXPECT_GT(p.gate_count, 0u);
}

// --------------------------------------------------------------------
// Streaming sink and cancellation
// --------------------------------------------------------------------

/** Everything decodeDataPoint round-trips; norm_recip_gates is
 * excluded (streamed items carry 0.0 — normalization runs after the
 * parallel region). */
bool
samePoint(const DataPoint &a, const DataPoint &b)
{
    return a.config == b.config && a.arch_name == b.arch_name &&
           a.num_qubits == b.num_qubits &&
           a.num_edges == b.num_edges &&
           a.num_buses == b.num_buses &&
           a.gate_count == b.gate_count && a.swaps == b.swaps &&
           a.yield == b.yield && a.yield_trials == b.yield_trials;
}

TEST(Streaming, SinkReceivesEveryPointWithItsFinalIndex)
{
    // Run once blocking, once streaming, at several thread counts:
    // the set of (index, point) pairs emitted must reassemble the
    // blocking result exactly, and every index must arrive once.
    auto info = benchmarks::getBenchmark("sym6_145");
    const auto blocking = runBenchmark(info, fastOptions());
    for (std::size_t threads : {1u, 4u}) {
        std::mutex mutex;
        std::map<std::size_t, DataPoint> streamed;
        ExperimentOptions opts = fastOptions();
        opts.exec.num_threads = threads;
        opts.stream = exec::Sink<DataPoint>(
            [&](std::size_t index, const DataPoint &point) {
                std::lock_guard<std::mutex> lock(mutex);
                EXPECT_TRUE(streamed.emplace(index, point).second)
                    << "duplicate index " << index;
            });
        const auto exp = runBenchmark(info, opts);
        EXPECT_EQ(opts.stream.emitted(), exp.points.size());
        ASSERT_EQ(streamed.size(), blocking.points.size()) << threads;
        for (std::size_t i = 0; i < blocking.points.size(); ++i) {
            ASSERT_TRUE(streamed.count(i)) << "missing index " << i;
            EXPECT_TRUE(samePoint(streamed.at(i), blocking.points[i]))
                << "index " << i << " at " << threads << " threads";
        }
    }
}

TEST(Streaming, DisabledSinkChangesNothing)
{
    // The default (disabled) sink is the blocking path: results are
    // bit-identical with or without a Sink object in the options.
    auto info = benchmarks::getBenchmark("sym6_145");
    auto a = runBenchmark(info, fastOptions());
    ExperimentOptions opts = fastOptions();
    opts.stream = exec::Sink<DataPoint>();
    auto b = runBenchmark(info, opts);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_TRUE(samePoint(a.points[i], b.points[i])) << i;
        EXPECT_DOUBLE_EQ(a.points[i].norm_recip_gates,
                         b.points[i].norm_recip_gates)
            << i;
    }
}

TEST(ExecCancel, ExpiredDeadlineStopsRunBenchmark)
{
    exec::Context ctx;
    ctx.setDeadlineAfter(std::chrono::nanoseconds(0));
    try {
        runBenchmark(benchmarks::getBenchmark("sym6_145"),
                     fastOptions(), ctx);
        FAIL() << "expected CancelledError";
    } catch (const exec::CancelledError &e) {
        EXPECT_EQ(e.reason(), exec::StopReason::kDeadlineExceeded);
    }
}

TEST(ExecCancel, CancelledContextStopsMeasure)
{
    exec::Context ctx;
    ctx.cancel();
    auto arch = arch::ibm16Q(false);
    auto circ = benchmarks::getBenchmark("UCCSD_ansatz_8").generate();
    EXPECT_THROW(measure("probe", arch, circ, fastOptions(), ctx),
                 exec::CancelledError);
}

TEST(Report, FormatYieldScientific)
{
    EXPECT_EQ(formatYield(0.0123), "1.23e-02");
    EXPECT_EQ(formatYield(1.0), "1.00e+00");
    EXPECT_EQ(formatYield(0.0), "0.00e+00");
}

TEST(Report, FormatFixed)
{
    EXPECT_EQ(formatFixed(1.23456, 2), "1.23");
    EXPECT_EQ(formatFixed(2.0, 3), "2.000");
}

TEST(Report, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 9.0}, 1e-12), 6.0);
    EXPECT_DOUBLE_EQ(geomean({}, 1e-12), 0.0);
    // Zeros are clamped, not fatal.
    EXPECT_GT(geomean({0.0, 1.0}, 1e-12), 0.0);
}

TEST(Report, TableAndCsvRender)
{
    auto exp = runBenchmark(benchmarks::getBenchmark("sym6_145"),
                            fastOptions());
    std::ostringstream table;
    printExperiment(table, exp);
    EXPECT_NE(table.str().find("sym6_145"), std::string::npos);
    EXPECT_NE(table.str().find("eff-full"), std::string::npos);

    std::ostringstream csv;
    printExperimentCsv(csv, exp, true);
    std::string text = csv.str();
    EXPECT_NE(text.find("benchmark,config"), std::string::npos);
    // Row count = points + header.
    std::size_t rows = std::count(text.begin(), text.end(), '\n');
    EXPECT_EQ(rows, exp.points.size() + 1);
}

TEST(Report, HeaderBox)
{
    std::ostringstream out;
    printHeader(out, "Title");
    EXPECT_NE(out.str().find("= Title ="), std::string::npos);
}

} // namespace

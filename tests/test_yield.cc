/**
 * @file
 * Tests for the collision model (Figure 3) and the Monte Carlo yield
 * simulator.
 */

#include <gtest/gtest.h>

#include "arch/ibm.hh"
#include "yield/yield_sim.hh"

namespace
{

using namespace qpad;
using namespace qpad::yield;
using arch::Architecture;
using arch::Layout;

const CollisionModel kModel{};

// --------------------------------------------------------------------
// Pair conditions 1-4
// --------------------------------------------------------------------

TEST(Collision, Condition1EqualFrequencies)
{
    EXPECT_TRUE(pairCollides(kModel, 5.10, 5.10));
    EXPECT_TRUE(pairCollides(kModel, 5.10, 5.116)); // inside 17 MHz
    EXPECT_FALSE(pairCollides(kModel, 5.10, 5.118)); // outside
}

TEST(Collision, Condition2HalfAnharmonicity)
{
    // f_j ~ f_k - delta/2 = f_k + 0.17, threshold 4 MHz.
    EXPECT_TRUE(pairCollides(kModel, 5.27, 5.10));
    EXPECT_TRUE(pairCollides(kModel, 5.273, 5.10));
    EXPECT_FALSE(pairCollides(kModel, 5.275, 5.10));
    // Symmetric orientation.
    EXPECT_TRUE(pairCollides(kModel, 5.10, 5.27));
}

TEST(Collision, Condition3FullAnharmonicity)
{
    // f_j ~ f_k + 0.34, threshold 25 MHz. Frequencies out of the
    // normal band are legal inputs for the model.
    EXPECT_TRUE(pairCollides(kModel, 5.44, 5.10));
    EXPECT_TRUE(pairCollides(kModel, 5.42, 5.10));
    EXPECT_FALSE(pairCollides(kModel, 5.41, 5.10));
}

TEST(Collision, Condition4SlowGateRegion)
{
    // f_j > f_k + 0.34 in either orientation.
    EXPECT_TRUE(pairCollides(kModel, 5.50, 5.10));
    EXPECT_TRUE(pairCollides(kModel, 5.10, 5.50));
}

TEST(Collision, SafePairDoesNotCollide)
{
    EXPECT_FALSE(pairCollides(kModel, 5.10, 5.17));
    EXPECT_FALSE(pairCollides(kModel, 5.00, 5.10));
    EXPECT_FALSE(pairCollides(kModel, 5.05, 5.30));
}

// --------------------------------------------------------------------
// Triple conditions 5-7
// --------------------------------------------------------------------

TEST(Collision, Condition5SpectatorDegeneracy)
{
    EXPECT_TRUE(tripleCollides(kModel, 5.10, 5.20, 5.20));
    EXPECT_TRUE(tripleCollides(kModel, 5.10, 5.20, 5.21));
    EXPECT_FALSE(tripleCollides(kModel, 5.10, 5.20, 5.24));
}

TEST(Collision, Condition6SpectatorAnharmonicity)
{
    // f_i ~ f_k + 0.34 (threshold 25 MHz), either orientation.
    EXPECT_TRUE(tripleCollides(kModel, 5.10, 5.00, 5.34));
    EXPECT_TRUE(tripleCollides(kModel, 5.10, 5.34, 5.00));
    EXPECT_FALSE(tripleCollides(kModel, 5.10, 5.04, 5.30));
}

TEST(Collision, Condition7TwoPhoton)
{
    // 2 f_j + delta ~ f_k + f_i, threshold 17 MHz.
    // Pick f_j = 5.20: 2*5.20 - 0.34 = 10.06.
    EXPECT_TRUE(tripleCollides(kModel, 5.20, 5.00, 5.06));
    EXPECT_TRUE(tripleCollides(kModel, 5.20, 5.03, 5.04));
    EXPECT_FALSE(tripleCollides(kModel, 5.20, 5.00, 5.10));
}

TEST(Collision, SafeTripleDoesNotCollide)
{
    EXPECT_FALSE(tripleCollides(kModel, 5.17, 5.05, 5.29));
}

// --------------------------------------------------------------------
// Checker term extraction
// --------------------------------------------------------------------

TEST(Checker, ExtractsPairAndTripleTerms)
{
    // Path of three qubits: edges (0,1), (1,2); one triple (j=1).
    Architecture arch(Layout::grid(1, 3));
    CollisionChecker checker(arch);
    EXPECT_EQ(checker.pairs().size(), 2u);
    ASSERT_EQ(checker.triples().size(), 1u);
    EXPECT_EQ(checker.triples()[0].j, 1u);
}

TEST(Checker, TriplesGrowWithDegree)
{
    // 2x2 grid with a 4-qubit bus: every vertex has degree 3, so
    // each contributes C(3,2) = 3 triples.
    Architecture arch(Layout::grid(2, 2));
    arch.addFourQubitBus({0, 0});
    CollisionChecker checker(arch);
    EXPECT_EQ(checker.pairs().size(), 6u);
    EXPECT_EQ(checker.triples().size(), 12u);
}

TEST(Checker, AnyCollisionMatchesCounts)
{
    Architecture arch(Layout::grid(1, 3));
    CollisionChecker checker(arch);
    std::vector<double> safe = {5.05, 5.17, 5.29};
    EXPECT_FALSE(checker.anyCollision(safe));
    auto counts = checker.countCollisions(safe);
    for (int c = 1; c <= 7; ++c)
        EXPECT_EQ(counts[c], 0u) << "condition " << c;

    std::vector<double> bad = {5.05, 5.05, 5.29}; // condition 1
    EXPECT_TRUE(checker.anyCollision(bad));
    EXPECT_GT(checker.countCollisions(bad)[1], 0u);
}

// --------------------------------------------------------------------
// Monte Carlo yield
// --------------------------------------------------------------------

TEST(YieldSim, PerfectYieldWithTinyNoise)
{
    Architecture arch(Layout::grid(1, 3));
    arch.setAllFrequencies({5.05, 5.17, 5.29});
    YieldOptions opts;
    opts.trials = 2000;
    opts.sigma_ghz = 1e-6;
    auto r = estimateYield(arch, opts);
    EXPECT_DOUBLE_EQ(r.yield, 1.0);
    EXPECT_EQ(r.successes, r.trials);
}

TEST(YieldSim, ZeroYieldForDegenerateFrequencies)
{
    Architecture arch(Layout::grid(1, 2));
    arch.setAllFrequencies({5.17, 5.17});
    YieldOptions opts;
    opts.trials = 2000;
    opts.sigma_ghz = 1e-4; // noise too small to escape condition 1
    auto r = estimateYield(arch, opts);
    EXPECT_DOUBLE_EQ(r.yield, 0.0);
}

TEST(YieldSim, DeterministicForEqualSeeds)
{
    auto arch = arch::ibm16Q(false);
    YieldOptions opts;
    opts.trials = 3000;
    opts.seed = 77;
    auto a = estimateYield(arch, opts);
    auto b = estimateYield(arch, opts);
    EXPECT_DOUBLE_EQ(a.yield, b.yield);
    opts.seed = 78;
    auto c = estimateYield(arch, opts);
    EXPECT_NE(a.successes, c.successes);
}

TEST(YieldSim, MoreConnectionsLowerYield)
{
    // The same 16-qubit chip with 4-qubit buses must yield strictly
    // less under identical noise (statistically robust at 20k
    // trials: the bused chip adds 8 edges and many triples).
    YieldOptions opts;
    opts.trials = 20000;
    double plain = estimateYield(arch::ibm16Q(false), opts).yield;
    double bused = estimateYield(arch::ibm16Q(true), opts).yield;
    EXPECT_GT(plain, bused);
}

TEST(YieldSim, SmallerSigmaImprovesYield)
{
    auto arch = arch::ibm16Q(false);
    YieldOptions coarse, fine;
    coarse.trials = fine.trials = 20000;
    coarse.sigma_ghz = 0.030;
    fine.sigma_ghz = 0.010;
    EXPECT_GT(estimateYield(arch, fine).yield,
              estimateYield(arch, coarse).yield);
}

TEST(YieldSim, ConditionStatsAccumulate)
{
    auto arch = arch::ibm16Q(true);
    YieldOptions opts;
    opts.trials = 2000;
    opts.collect_condition_stats = true;
    auto r = estimateYield(arch, opts);
    std::size_t total = 0;
    for (int c = 1; c <= 7; ++c)
        total += r.condition_trials[c];
    EXPECT_GT(total, 0u);
    // Success + at-least-one-condition trials cover everything.
    EXPECT_GE(total + r.successes, r.trials);
}

TEST(YieldSim, StderrEstimateSane)
{
    YieldResult r;
    r.yield = 0.5;
    r.trials = 10000;
    EXPECT_NEAR(r.stderrEstimate(), 0.005, 1e-6);
    r.yield = 0.0;
    EXPECT_DOUBLE_EQ(r.stderrEstimate(), 0.0);
}

TEST(YieldSim, RequiresAssignedFrequencies)
{
    Architecture arch(Layout::grid(1, 2));
    EXPECT_THROW(estimateYield(arch, {}), std::logic_error);
}

TEST(LocalSim, EmptyTermsYieldOne)
{
    LocalYieldSimulator sim({}, {}, kModel, {});
    Rng rng(1);
    std::vector<double> freqs = {5.1};
    EXPECT_DOUBLE_EQ(sim.simulate(freqs, 0.03, 100, rng), 1.0);
}

TEST(LocalSim, MatchesGlobalOnTinyChip)
{
    // On a 2-qubit chip the local region of the pair IS the chip,
    // so local and global simulations must agree statistically.
    Architecture arch(Layout::grid(1, 2));
    arch.setAllFrequencies({5.08, 5.17});
    CollisionChecker checker(arch);

    YieldOptions opts;
    opts.trials = 40000;
    opts.seed = 5;
    double global = estimateYield(arch, opts).yield;

    LocalYieldSimulator sim(checker.pairs(), checker.triples(), kModel,
                            {0, 1});
    Rng rng(6);
    double local =
        sim.simulate(arch.frequencies(), opts.sigma_ghz, 40000, rng);
    EXPECT_NEAR(local, global, 0.01);
}

} // namespace

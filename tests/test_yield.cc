/**
 * @file
 * Tests for the collision model (Figure 3) and the Monte Carlo yield
 * simulator.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <numeric>

#include "arch/ibm.hh"
#include "scoped_scalar_kernel.hh"
#include "yield/yield_sim.hh"

namespace
{

using namespace qpad;
using namespace qpad::yield;
using arch::Architecture;
using arch::Layout;

const CollisionModel kModel{};

using qpad::test::ScopedScalarKernel;

// --------------------------------------------------------------------
// Pair conditions 1-4
// --------------------------------------------------------------------

TEST(Collision, Condition1EqualFrequencies)
{
    EXPECT_TRUE(pairCollides(kModel, 5.10, 5.10));
    EXPECT_TRUE(pairCollides(kModel, 5.10, 5.116)); // inside 17 MHz
    EXPECT_FALSE(pairCollides(kModel, 5.10, 5.118)); // outside
}

TEST(Collision, Condition2HalfAnharmonicity)
{
    // f_j ~ f_k - delta/2 = f_k + 0.17, threshold 4 MHz.
    EXPECT_TRUE(pairCollides(kModel, 5.27, 5.10));
    EXPECT_TRUE(pairCollides(kModel, 5.273, 5.10));
    EXPECT_FALSE(pairCollides(kModel, 5.275, 5.10));
    // Symmetric orientation.
    EXPECT_TRUE(pairCollides(kModel, 5.10, 5.27));
}

TEST(Collision, Condition3FullAnharmonicity)
{
    // f_j ~ f_k + 0.34, threshold 25 MHz. Frequencies out of the
    // normal band are legal inputs for the model.
    EXPECT_TRUE(pairCollides(kModel, 5.44, 5.10));
    EXPECT_TRUE(pairCollides(kModel, 5.42, 5.10));
    EXPECT_FALSE(pairCollides(kModel, 5.41, 5.10));
}

TEST(Collision, Condition4SlowGateRegion)
{
    // f_j > f_k + 0.34 in either orientation.
    EXPECT_TRUE(pairCollides(kModel, 5.50, 5.10));
    EXPECT_TRUE(pairCollides(kModel, 5.10, 5.50));
}

TEST(Collision, SafePairDoesNotCollide)
{
    EXPECT_FALSE(pairCollides(kModel, 5.10, 5.17));
    EXPECT_FALSE(pairCollides(kModel, 5.00, 5.10));
    EXPECT_FALSE(pairCollides(kModel, 5.05, 5.30));
}

// --------------------------------------------------------------------
// Triple conditions 5-7
// --------------------------------------------------------------------

TEST(Collision, Condition5SpectatorDegeneracy)
{
    EXPECT_TRUE(tripleCollides(kModel, 5.10, 5.20, 5.20));
    EXPECT_TRUE(tripleCollides(kModel, 5.10, 5.20, 5.21));
    EXPECT_FALSE(tripleCollides(kModel, 5.10, 5.20, 5.24));
}

TEST(Collision, Condition6SpectatorAnharmonicity)
{
    // f_i ~ f_k + 0.34 (threshold 25 MHz), either orientation.
    EXPECT_TRUE(tripleCollides(kModel, 5.10, 5.00, 5.34));
    EXPECT_TRUE(tripleCollides(kModel, 5.10, 5.34, 5.00));
    EXPECT_FALSE(tripleCollides(kModel, 5.10, 5.04, 5.30));
}

TEST(Collision, Condition7TwoPhoton)
{
    // 2 f_j + delta ~ f_k + f_i, threshold 17 MHz.
    // Pick f_j = 5.20: 2*5.20 - 0.34 = 10.06.
    EXPECT_TRUE(tripleCollides(kModel, 5.20, 5.00, 5.06));
    EXPECT_TRUE(tripleCollides(kModel, 5.20, 5.03, 5.04));
    EXPECT_FALSE(tripleCollides(kModel, 5.20, 5.00, 5.10));
}

TEST(Collision, SafeTripleDoesNotCollide)
{
    EXPECT_FALSE(tripleCollides(kModel, 5.17, 5.05, 5.29));
}

// --------------------------------------------------------------------
// Checker term extraction
// --------------------------------------------------------------------

TEST(Checker, ExtractsPairAndTripleTerms)
{
    // Path of three qubits: edges (0,1), (1,2); one triple (j=1).
    Architecture arch(Layout::grid(1, 3));
    CollisionChecker checker(arch);
    EXPECT_EQ(checker.pairs().size(), 2u);
    ASSERT_EQ(checker.triples().size(), 1u);
    EXPECT_EQ(checker.triples()[0].j, 1u);
}

TEST(Checker, TriplesGrowWithDegree)
{
    // 2x2 grid with a 4-qubit bus: every vertex has degree 3, so
    // each contributes C(3,2) = 3 triples.
    Architecture arch(Layout::grid(2, 2));
    arch.addFourQubitBus({0, 0});
    CollisionChecker checker(arch);
    EXPECT_EQ(checker.pairs().size(), 6u);
    EXPECT_EQ(checker.triples().size(), 12u);
}

TEST(Checker, AnyCollisionMatchesCounts)
{
    Architecture arch(Layout::grid(1, 3));
    CollisionChecker checker(arch);
    std::vector<double> safe = {5.05, 5.17, 5.29};
    EXPECT_FALSE(checker.anyCollision(safe));
    auto counts = checker.countCollisions(safe);
    for (int c = 1; c <= 7; ++c)
        EXPECT_EQ(counts[c], 0u) << "condition " << c;

    std::vector<double> bad = {5.05, 5.05, 5.29}; // condition 1
    EXPECT_TRUE(checker.anyCollision(bad));
    EXPECT_GT(checker.countCollisions(bad)[1], 0u);
}

// --------------------------------------------------------------------
// Monte Carlo yield
// --------------------------------------------------------------------

TEST(YieldSim, PerfectYieldWithTinyNoise)
{
    Architecture arch(Layout::grid(1, 3));
    arch.setAllFrequencies({5.05, 5.17, 5.29});
    YieldOptions opts;
    opts.trials = 2000;
    opts.sigma_ghz = 1e-6;
    auto r = estimateYield(arch, opts);
    EXPECT_DOUBLE_EQ(r.yield, 1.0);
    EXPECT_EQ(r.successes, r.trials);
}

TEST(YieldSim, ZeroYieldForDegenerateFrequencies)
{
    Architecture arch(Layout::grid(1, 2));
    arch.setAllFrequencies({5.17, 5.17});
    YieldOptions opts;
    opts.trials = 2000;
    opts.sigma_ghz = 1e-4; // noise too small to escape condition 1
    auto r = estimateYield(arch, opts);
    EXPECT_DOUBLE_EQ(r.yield, 0.0);
}

TEST(YieldSim, DeterministicForEqualSeeds)
{
    auto arch = arch::ibm16Q(false);
    YieldOptions opts;
    opts.trials = 3000;
    opts.seed = 77;
    auto a = estimateYield(arch, opts);
    auto b = estimateYield(arch, opts);
    EXPECT_DOUBLE_EQ(a.yield, b.yield);
    opts.seed = 78;
    auto c = estimateYield(arch, opts);
    EXPECT_NE(a.successes, c.successes);
}

TEST(YieldSim, MoreConnectionsLowerYield)
{
    // The same 16-qubit chip with 4-qubit buses must yield strictly
    // less under identical noise (statistically robust at 20k
    // trials: the bused chip adds 8 edges and many triples).
    YieldOptions opts;
    opts.trials = 20000;
    double plain = estimateYield(arch::ibm16Q(false), opts).yield;
    double bused = estimateYield(arch::ibm16Q(true), opts).yield;
    EXPECT_GT(plain, bused);
}

TEST(YieldSim, SmallerSigmaImprovesYield)
{
    auto arch = arch::ibm16Q(false);
    YieldOptions coarse, fine;
    coarse.trials = fine.trials = 20000;
    coarse.sigma_ghz = 0.030;
    fine.sigma_ghz = 0.010;
    EXPECT_GT(estimateYield(arch, fine).yield,
              estimateYield(arch, coarse).yield);
}

TEST(YieldSim, ConditionStatsAccumulate)
{
    auto arch = arch::ibm16Q(true);
    YieldOptions opts;
    opts.trials = 2000;
    opts.collect_condition_stats = true;
    auto r = estimateYield(arch, opts);
    std::size_t total = 0;
    for (int c = 1; c <= 7; ++c)
        total += r.condition_trials[c];
    EXPECT_GT(total, 0u);
    // Success + at-least-one-condition trials cover everything.
    EXPECT_GE(total + r.successes, r.trials);
}

TEST(YieldSim, StderrEstimateSane)
{
    YieldResult r;
    r.yield = 0.5;
    r.trials = 10000;
    EXPECT_NEAR(r.stderrEstimate(), 0.005, 1e-6);
    r.yield = 0.0;
    EXPECT_DOUBLE_EQ(r.stderrEstimate(), 0.0);
}

TEST(YieldSim, RequiresAssignedFrequencies)
{
    Architecture arch(Layout::grid(1, 2));
    EXPECT_THROW(estimateYield(arch, {}), std::logic_error);
}

TEST(LocalSim, EmptyTermsYieldOne)
{
    LocalYieldSimulator sim({}, {}, kModel, {});
    Rng rng(1);
    std::vector<double> freqs = {5.1};
    EXPECT_DOUBLE_EQ(sim.simulate(freqs, 0.03, 100, rng), 1.0);
}

TEST(YieldSim, ZeroTrialsReturnZeroTrialResult)
{
    Architecture arch(Layout::grid(1, 3));
    arch.setAllFrequencies({5.05, 5.17, 5.29});
    YieldOptions opts;
    opts.trials = 0;
    auto r = estimateYield(arch, opts);
    EXPECT_EQ(r.trials, 0u);
    EXPECT_EQ(r.successes, 0u);
    EXPECT_DOUBLE_EQ(r.yield, 0.0);
    EXPECT_FALSE(std::isnan(r.yield));
    EXPECT_DOUBLE_EQ(r.stderrEstimate(), 0.0);
}

TEST(YieldSim, ScalarKernelEnvIsBitIdentical)
{
    // 4999 trials: full 1024-trial shards plus a 903-trial tail whose
    // last batch has 7 active lanes, so the remainder path is on the
    // line too.
    auto arch = arch::ibm16Q(true);
    YieldOptions opts;
    opts.trials = 4999;
    opts.seed = 11;
    const auto batched = estimateYield(arch, opts);
    YieldResult scalar;
    {
        ScopedScalarKernel forced;
        scalar = estimateYield(arch, opts);
    }
    EXPECT_EQ(batched.successes, scalar.successes);
    EXPECT_DOUBLE_EQ(batched.yield, scalar.yield);
}

TEST(LocalSim, ZeroTrialsReturnZero)
{
    Architecture arch(Layout::grid(1, 2));
    CollisionChecker checker(arch);
    LocalYieldSimulator sim(checker.pairs(), checker.triples(), kModel,
                            {0, 1});
    Rng rng(9);
    std::vector<double> freqs = {5.08, 5.17};
    EXPECT_DOUBLE_EQ(sim.simulate(freqs, 0.03, 0, rng), 0.0);
    EXPECT_DOUBLE_EQ(sim.simulate(freqs, 0.03, 0, 42, {}), 0.0);
}

TEST(LocalSim, ScalarKernelEnvIsBitIdentical)
{
    auto arch = arch::ibm16Q(false);
    CollisionChecker checker(arch);
    std::vector<arch::PhysQubit> involved(arch.numQubits());
    std::iota(involved.begin(), involved.end(), 0u);
    LocalYieldSimulator sim(checker.pairs(), checker.triples(), kModel,
                            involved);
    // Equal fresh generators, 1003 trials (remainder batch of 3).
    Rng r1(3), r2(3);
    const double batched =
        sim.simulate(arch.frequencies(), 0.03, 1003, r1);
    double scalar;
    {
        ScopedScalarKernel forced;
        scalar = sim.simulate(arch.frequencies(), 0.03, 1003, r2);
    }
    EXPECT_DOUBLE_EQ(batched, scalar);
}

TEST(LocalSim, MatchesGlobalOnTinyChip)
{
    // On a 2-qubit chip the local region of the pair IS the chip,
    // so local and global simulations must agree statistically.
    Architecture arch(Layout::grid(1, 2));
    arch.setAllFrequencies({5.08, 5.17});
    CollisionChecker checker(arch);

    YieldOptions opts;
    opts.trials = 40000;
    opts.seed = 5;
    double global = estimateYield(arch, opts).yield;

    LocalYieldSimulator sim(checker.pairs(), checker.triples(), kModel,
                            {0, 1});
    Rng rng(6);
    double local =
        sim.simulate(arch.frequencies(), opts.sigma_ghz, 40000, rng);
    EXPECT_NEAR(local, global, 0.01);
}

// --------------------------------------------------------------------
// Property tests: any/count agreement, batch/scalar equivalence
// --------------------------------------------------------------------

/** Random grid, sometimes with a 4-qubit bus for triple-rich graphs. */
Architecture
randomArch(Rng &rng)
{
    const int rows = 1 + int(rng.below(3));
    const int cols = 2 + int(rng.below(4));
    Architecture arch(Layout::grid(rows, cols), "random");
    if (rows >= 2 && cols >= 2 && rng.chance(0.5))
        arch.addFourQubitBus({int(rng.below(uint64_t(rows - 1))),
                              int(rng.below(uint64_t(cols - 1)))});
    return arch;
}

/**
 * Frequencies that exercise both outcomes: half the draws are a
 * collision-free period-3 pattern plus small noise (survivors), half
 * are uniform in the allocation band (mostly colliding).
 */
std::vector<double>
randomFreqs(Rng &rng, std::size_t nq)
{
    std::vector<double> freqs(nq);
    if (rng.chance(0.5)) {
        const double pattern[3] = {5.00, 5.10, 5.20};
        for (std::size_t q = 0; q < nq; ++q)
            freqs[q] = pattern[q % 3] + rng.gaussian(0.0, 0.002);
    } else {
        for (std::size_t q = 0; q < nq; ++q)
            freqs[q] = rng.uniform(5.00, 5.40);
    }
    return freqs;
}

TEST(Property, AnyCollisionIffCountsNonzero)
{
    Rng rng(123);
    std::size_t colliding = 0, surviving = 0;
    for (int iter = 0; iter < 300; ++iter) {
        Architecture arch = randomArch(rng);
        CollisionChecker checker(arch);
        const auto freqs = randomFreqs(rng, arch.numQubits());
        const auto counts = checker.countCollisions(freqs);
        const std::size_t total =
            std::accumulate(counts.begin(), counts.end(),
                            std::size_t{0});
        EXPECT_EQ(checker.anyCollision(freqs), total > 0);
        ++(total > 0 ? colliding : surviving);
    }
    // The generator must have exercised both outcomes.
    EXPECT_GT(colliding, 0u);
    EXPECT_GT(surviving, 0u);
}

TEST(Property, BatchMatchesScalarTrialForTrial)
{
    constexpr std::size_t B = BatchCollisionChecker::kLanes;
    Rng rng(321);
    for (int iter = 0; iter < 60; ++iter) {
        Architecture arch = randomArch(rng);
        CollisionChecker checker(arch);
        BatchCollisionChecker batch(checker);
        const std::size_t nq = arch.numQubits();
        // 1..3*B trials, deliberately hitting every remainder size.
        const std::size_t trials = 1 + rng.below(3 * B);
        const std::size_t blocks = (trials + B - 1) / B;

        std::vector<std::vector<double>> rows(trials);
        std::vector<double> soa(blocks * nq * B, 5.0);
        for (std::size_t t = 0; t < trials; ++t) {
            rows[t] = randomFreqs(rng, nq);
            for (std::size_t q = 0; q < nq; ++q)
                soa[BatchCollisionChecker::soaIndex(t, q, nq)] =
                    rows[t][q];
        }

        for (std::size_t bi = 0; bi < blocks; ++bi) {
            const std::size_t active = std::min(B, trials - bi * B);
            const uint8_t mask =
                batch.survivorMask(&soa[bi * nq * B], active);
            // Bits at and above `active` must be clear.
            EXPECT_EQ(mask >> active, 0u);
            for (std::size_t l = 0; l < active; ++l) {
                const bool batch_survives = (mask >> l) & 1u;
                EXPECT_EQ(batch_survives,
                          !checker.anyCollision(rows[bi * B + l]))
                    << "iter " << iter << " trial " << bi * B + l;
            }
        }
    }
}

} // namespace

/**
 * @file
 * Tests for qpad::cache: fingerprint stability and sensitivity, the
 * sharded LRU store (memory and disk), and the cached front ends'
 * bit-identity and zero-recompute contracts.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "arch/ibm.hh"
#include "arch/serialize.hh"
#include "benchmarks/suite.hh"
#include "cache/fingerprint.hh"
#include "cache/store.hh"
#include "cache/yield_cache.hh"
#include "design/anneal.hh"
#include "design/design_flow.hh"
#include "eval/experiment.hh"
#include "profile/coupling.hh"
#include "runtime/parallel.hh"
#include "yield/yield_sim.hh"

namespace
{

using namespace qpad;
namespace fs = std::filesystem;

/** Fresh, memory-only global cache for one test. */
void
freshGlobalCache(std::size_t max_bytes = 64ull << 20)
{
    cache::CacheOptions options;
    options.max_bytes = max_bytes;
    cache::configureGlobalCache(options);
}

/** A unique scratch directory under the test temp dir. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + "qpad_cache_" + name;
    fs::remove_all(dir);
    return dir;
}

cache::Fingerprint
keyOf(uint64_t i)
{
    cache::Encoder enc;
    enc.str("test.key");
    enc.u64(i);
    return enc.digest();
}

// --------------------------------------------------------------------
// Fingerprint
// --------------------------------------------------------------------

TEST(Fingerprint, DigestIsStableAndHexRenders)
{
    cache::Encoder a;
    a.str("hello");
    a.u64(42);
    a.f64(1.5);
    cache::Encoder b;
    b.str("hello");
    b.u64(42);
    b.f64(1.5);
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_EQ(a.digest().hex().size(), 32u);
    EXPECT_EQ(a.digest().hex(), b.digest().hex());
}

TEST(Fingerprint, TailLengthsAllDistinct)
{
    // Exercise every MurmurHash3 tail length (1..17 spans two
    // blocks) and make sure nothing degenerates.
    std::set<std::string> seen;
    std::vector<uint8_t> data(17, 0xa5);
    for (std::size_t len = 0; len <= data.size(); ++len)
        seen.insert(cache::hashBytes(data.data(), len).hex());
    EXPECT_EQ(seen.size(), data.size() + 1);
}

TEST(Fingerprint, EncoderIsPositionSensitive)
{
    cache::Encoder a;
    a.u32(1);
    a.u32(2);
    cache::Encoder b;
    b.u32(2);
    b.u32(1);
    EXPECT_NE(a.digest(), b.digest());
}

TEST(Fingerprint, ArchitectureContentNotNameIsHashed)
{
    arch::Architecture a(arch::Layout::grid(2, 3), "first");
    arch::Architecture b(arch::Layout::grid(2, 3), "second");
    EXPECT_EQ(cache::fingerprintArchitecture(a),
              cache::fingerprintArchitecture(b));

    // Adding a bus, or assigning frequencies, changes the content.
    arch::Architecture bused(arch::Layout::grid(2, 3), "first");
    bused.addFourQubitBus({0, 0});
    EXPECT_NE(cache::fingerprintArchitecture(a),
              cache::fingerprintArchitecture(bused));

    arch::Architecture tuned(arch::Layout::grid(2, 3), "first");
    tuned.setAllFrequencies({5.0, 5.1, 5.2, 5.3, 5.0, 5.1});
    EXPECT_NE(cache::fingerprintArchitecture(a),
              cache::fingerprintArchitecture(tuned));

    arch::Architecture retuned(arch::Layout::grid(2, 3), "first");
    retuned.setAllFrequencies({5.0, 5.1, 5.2, 5.3, 5.0, 5.11});
    EXPECT_NE(cache::fingerprintArchitecture(tuned),
              cache::fingerprintArchitecture(retuned));
}

TEST(Fingerprint, YieldKeyTracksOptionsButNotExec)
{
    auto arch = arch::ibm16Q(false);
    yield::YieldOptions base;
    base.trials = 1000;

    const cache::Fingerprint k0 = cache::yieldKey(arch, base);

    yield::YieldOptions threaded = base;
    threaded.exec.num_threads = 7;
    EXPECT_EQ(k0, cache::yieldKey(arch, threaded))
        << "exec is bit-identical by contract and must not key";

    yield::YieldOptions more = base;
    more.trials = 10000;
    EXPECT_NE(k0, cache::yieldKey(arch, more));

    yield::YieldOptions reseeded = base;
    reseeded.seed = 2;
    EXPECT_NE(k0, cache::yieldKey(arch, reseeded));

    yield::YieldOptions noisier = base;
    noisier.sigma_ghz = 0.031;
    EXPECT_NE(k0, cache::yieldKey(arch, noisier));

    yield::YieldOptions stats = base;
    stats.collect_condition_stats = true;
    EXPECT_NE(k0, cache::yieldKey(arch, stats));

    yield::YieldOptions model = base;
    model.model.thr1 = 0.018;
    EXPECT_NE(k0, cache::yieldKey(arch, model));

    yield::YieldOptions v1 = base;
    v1.rng_scheme = RngScheme::kV1;
    if (resolveRngScheme(RngScheme::kV2) == RngScheme::kV2) {
        EXPECT_NE(k0, cache::yieldKey(arch, v1))
            << "the draw scheme changes the sampled numbers";
    } else {
        // Under QPAD_RNG_V1 both requests resolve to the same v1
        // stream, so they *must* share a key.
        EXPECT_EQ(k0, cache::yieldKey(arch, v1));
    }
}

TEST(Fingerprint, SerializeRoundTripPreservesFingerprint)
{
    // Generated architectures survive a JSON round trip with their
    // cache identity intact — the invariant that lets exported
    // designs re-enter a warm cache.
    std::vector<arch::Architecture> archs = arch::ibmBaselines();

    auto circuit = benchmarks::getBenchmark("sym6_145").generate();
    profile::CouplingProfile prof = profile::profileCircuit(circuit);
    design::DesignFlowOptions flow;
    flow.freq_options.local_trials = 100;
    flow.freq_options.refine_sweeps = 0;
    archs.push_back(
        design::designArchitecture(prof, flow, "eff-rt").architecture);

    for (const arch::Architecture &a : archs) {
        SCOPED_TRACE(a.name());
        const arch::Architecture restored =
            arch::fromJson(arch::toJson(a));
        EXPECT_EQ(cache::fingerprintArchitecture(a),
                  cache::fingerprintArchitecture(restored));
    }
}

// --------------------------------------------------------------------
// Store (memory)
// --------------------------------------------------------------------

TEST(Store, PutGetAndCounters)
{
    cache::Store store;
    std::vector<uint8_t> blob;
    EXPECT_FALSE(store.get(keyOf(1), blob));

    const std::vector<uint8_t> payload = {1, 2, 3, 4};
    store.put(keyOf(1), payload);
    ASSERT_TRUE(store.get(keyOf(1), blob));
    EXPECT_EQ(blob, payload);

    const cache::StoreStats s = store.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.inserts, 1u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_GE(s.bytes, payload.size());
}

TEST(Store, OverwriteKeepsOneEntry)
{
    cache::Store store;
    store.put(keyOf(9), std::vector<uint8_t>(10, 0xaa));
    store.put(keyOf(9), std::vector<uint8_t>(20, 0xbb));
    std::vector<uint8_t> blob;
    ASSERT_TRUE(store.get(keyOf(9), blob));
    EXPECT_EQ(blob, std::vector<uint8_t>(20, 0xbb));
    EXPECT_EQ(store.stats().entries, 1u);
}

TEST(Store, LruEvictionRespectsBudgetAndRecency)
{
    // One shard, ~10-entry budget of 100-byte payloads.
    cache::CacheOptions options;
    options.shards = 1;
    options.max_bytes = 2048;
    cache::Store store(options);

    const std::vector<uint8_t> payload(100, 0x11);
    for (uint64_t i = 0; i < 10; ++i)
        store.put(keyOf(i), payload);
    EXPECT_EQ(store.stats().evictions, 0u);

    // Touch key 0 so key 1 is now the coldest, then overflow.
    std::vector<uint8_t> blob;
    ASSERT_TRUE(store.get(keyOf(0), blob));
    store.put(keyOf(10), payload);

    EXPECT_GE(store.stats().evictions, 1u);
    EXPECT_TRUE(store.get(keyOf(0), blob)) << "recently used survives";
    EXPECT_FALSE(store.get(keyOf(1), blob)) << "coldest is evicted";
    EXPECT_TRUE(store.get(keyOf(10), blob));
    EXPECT_LE(store.stats().bytes, options.max_bytes);
}

TEST(Store, ClearDropsEntriesKeepsCounters)
{
    cache::Store store;
    store.put(keyOf(1), {1});
    store.clear();
    std::vector<uint8_t> blob;
    EXPECT_FALSE(store.get(keyOf(1), blob));
    EXPECT_EQ(store.stats().entries, 0u);
    EXPECT_EQ(store.stats().inserts, 1u);
}

TEST(Store, ConcurrentAccessUnderThreadPool)
{
    cache::CacheOptions options;
    options.shards = 8;
    cache::Store store(options);

    constexpr uint64_t kKeys = 64;
    runtime::Options exec; // one worker per hardware thread
    runtime::parallel_for(
        exec, 2048, 1, [&](std::size_t b, std::size_t e, std::size_t) {
            for (std::size_t i = b; i < e; ++i) {
                const uint64_t k = uint64_t(i) % kKeys;
                std::vector<uint8_t> blob;
                if (store.get(keyOf(k), blob)) {
                    // Payload is a pure function of the key.
                    ASSERT_EQ(blob.size(), 8 + k);
                    for (uint8_t byte : blob)
                        ASSERT_EQ(byte, uint8_t(k));
                } else {
                    store.put(keyOf(k),
                              std::vector<uint8_t>(8 + k, uint8_t(k)));
                }
            }
        });

    std::vector<uint8_t> blob;
    for (uint64_t k = 0; k < kKeys; ++k) {
        ASSERT_TRUE(store.get(keyOf(k), blob));
        EXPECT_EQ(blob, std::vector<uint8_t>(8 + k, uint8_t(k)));
    }
    const cache::StoreStats s = store.stats();
    EXPECT_EQ(s.entries, kKeys);
    EXPECT_GE(s.inserts, kKeys);
}

// --------------------------------------------------------------------
// Store: in-flight dedup (getOrCompute)
// --------------------------------------------------------------------

TEST(StoreDedup, UncontendedOwnerPathMatchesReadThrough)
{
    // Without contention, getOrCompute must be counter-identical to
    // the classic get-miss / compute / put sequence, so the exact-
    // count assertions of the cached front-end tests keep holding.
    cache::Store store;
    int computes = 0;
    const auto compute = [&] {
        ++computes;
        return std::vector<uint8_t>{1, 2, 3};
    };
    EXPECT_EQ(store.getOrCompute(keyOf(1), compute),
              (std::vector<uint8_t>{1, 2, 3}));
    EXPECT_EQ(computes, 1);
    cache::StoreStats s = store.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.inserts, 1u);
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.dedup_waits, 0u);

    EXPECT_EQ(store.getOrCompute(keyOf(1), compute),
              (std::vector<uint8_t>{1, 2, 3}));
    EXPECT_EQ(computes, 1) << "warm call must not recompute";
    s = store.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.inserts, 1u);
    EXPECT_EQ(s.dedup_waits, 0u);
}

TEST(StoreDedup, ConcurrentIdenticalRequestsComputeExactlyOnce)
{
    cache::Store store;
    constexpr std::size_t kWaiters = 3;
    std::atomic<int> computes{0};
    const auto key = keyOf(42);

    // The owner's computation stays open until every waiter has
    // registered on the in-flight entry (bounded at ~2 s so a
    // scheduling hiccup degrades the assertion, never hangs it).
    const auto compute = [&] {
        ++computes;
        for (int spin = 0;
             store.stats().dedup_waits < kWaiters && spin < 2000;
             ++spin)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return std::vector<uint8_t>{7, 7};
    };

    std::vector<std::vector<uint8_t>> results(kWaiters + 1);
    std::thread owner(
        [&] { results[0] = store.getOrCompute(key, compute); });
    while (computes.load() == 0)
        std::this_thread::yield();
    std::vector<std::thread> waiters;
    for (std::size_t i = 1; i <= kWaiters; ++i)
        waiters.emplace_back([&store, &results, &key, &compute, i] {
            results[i] = store.getOrCompute(key, compute);
        });
    for (std::thread &t : waiters)
        t.join();
    owner.join();

    EXPECT_EQ(computes.load(), 1)
        << "identical concurrent requests must share one computation";
    for (const auto &r : results)
        EXPECT_EQ(r, (std::vector<uint8_t>{7, 7}));
    const cache::StoreStats s = store.stats();
    EXPECT_EQ(s.inserts, 1u);
    EXPECT_EQ(s.dedup_waits, kWaiters);
}

TEST(StoreDedup, CancellingAWaiterNeverDisturbsTheOwner)
{
    cache::Store store;
    exec::CancelToken waiter_token;
    std::atomic<int> computes{0};
    const auto key = keyOf(9);

    std::thread owner([&] {
        const auto r = store.getOrCompute(key, [&] {
            ++computes;
            // Wait for the waiter to register, cancel it, and keep
            // computing: the waiter's stop is its own business.
            for (int spin = 0;
                 store.stats().dedup_waits < 1 && spin < 2000; ++spin)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            waiter_token.cancel();
            std::this_thread::sleep_for(
                std::chrono::milliseconds(30));
            return std::vector<uint8_t>{5};
        });
        EXPECT_EQ(r, (std::vector<uint8_t>{5}));
    });

    while (computes.load() == 0)
        std::this_thread::yield();
    bool waiter_cancelled = false;
    try {
        store.getOrCompute(
            key,
            [&]() -> std::vector<uint8_t> {
                ADD_FAILURE() << "the waiter must never compute";
                return {};
            },
            &waiter_token);
    } catch (const exec::CancelledError &) {
        waiter_cancelled = true;
    }
    owner.join();

    EXPECT_TRUE(waiter_cancelled);
    EXPECT_EQ(computes.load(), 1);
    std::vector<uint8_t> blob;
    EXPECT_TRUE(store.get(key, blob))
        << "the owner's result must land in the cache";
    EXPECT_EQ(blob, (std::vector<uint8_t>{5}));
}

TEST(StoreDedup, OwnerFailurePromotesAWaiter)
{
    cache::Store store;
    std::atomic<int> attempts{0};
    const auto key = keyOf(13);

    std::thread owner([&] {
        EXPECT_THROW(
            store.getOrCompute(
                key,
                [&]() -> std::vector<uint8_t> {
                    ++attempts;
                    for (int spin = 0; store.stats().dedup_waits < 1 &&
                                       spin < 2000;
                         ++spin)
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(1));
                    throw std::runtime_error("owner boom");
                },
                nullptr),
            std::runtime_error);
    });

    while (attempts.load() == 0)
        std::this_thread::yield();
    // The waiter outlives the owner's failure: it wakes, finds no
    // cached value, takes ownership, and computes.
    const auto r = store.getOrCompute(key, [&] {
        ++attempts;
        return std::vector<uint8_t>{8, 8};
    });
    owner.join();

    EXPECT_EQ(r, (std::vector<uint8_t>{8, 8}));
    EXPECT_EQ(attempts.load(), 2);
    std::vector<uint8_t> blob;
    EXPECT_TRUE(store.get(key, blob));
    EXPECT_EQ(blob, (std::vector<uint8_t>{8, 8}));
}

// --------------------------------------------------------------------
// Store (disk)
// --------------------------------------------------------------------

TEST(Store, DiskRoundTripAcrossInstances)
{
    const std::string dir = scratchDir("roundtrip");
    cache::CacheOptions options;
    options.dir = dir;

    {
        cache::Store writer(options);
        for (uint64_t i = 0; i < 6; ++i)
            writer.put(keyOf(i),
                       std::vector<uint8_t>(5 + 3 * i, uint8_t(i + 1)));
    } // writer closed: simulates the end of one process invocation

    cache::Store reader(options);
    const cache::StoreStats s = reader.stats();
    EXPECT_EQ(s.disk_loaded, 6u);
    EXPECT_EQ(s.disk_dropped, 0u);
    std::vector<uint8_t> blob;
    for (uint64_t i = 0; i < 6; ++i) {
        ASSERT_TRUE(reader.get(keyOf(i), blob)) << "record " << i;
        EXPECT_EQ(blob,
                  std::vector<uint8_t>(5 + 3 * i, uint8_t(i + 1)));
    }
    fs::remove_all(dir);
}

TEST(Store, TornTailIsTruncatedNotFatal)
{
    const std::string dir = scratchDir("torn");
    cache::CacheOptions options;
    options.dir = dir;
    const std::string path = dir + "/qpad_cache.qpc";

    {
        cache::Store writer(options);
        for (uint64_t i = 0; i < 4; ++i)
            writer.put(keyOf(i), std::vector<uint8_t>(32, uint8_t(i)));
    }

    // Rip 3 bytes off the last record, as a crash mid-append would.
    const auto full_size = fs::file_size(path);
    fs::resize_file(path, full_size - 3);

    {
        cache::Store reader(options);
        const cache::StoreStats s = reader.stats();
        EXPECT_EQ(s.disk_loaded, 3u);
        EXPECT_EQ(s.disk_dropped, 1u);
        std::vector<uint8_t> blob;
        EXPECT_FALSE(reader.get(keyOf(3), blob));
        ASSERT_TRUE(reader.get(keyOf(0), blob));
        // The torn tail is gone; appends land on a clean file again.
        reader.put(keyOf(7), std::vector<uint8_t>(16, 0x77));
    }

    cache::Store reopened(options);
    EXPECT_EQ(reopened.stats().disk_loaded, 4u);
    EXPECT_EQ(reopened.stats().disk_dropped, 0u);
    std::vector<uint8_t> blob;
    EXPECT_TRUE(reopened.get(keyOf(7), blob));
    fs::remove_all(dir);
}

TEST(Store, CorruptPayloadIsDetectedByChecksum)
{
    const std::string dir = scratchDir("checksum");
    cache::CacheOptions options;
    options.dir = dir;
    const std::string path = dir + "/qpad_cache.qpc";

    {
        cache::Store writer(options);
        writer.put(keyOf(0), std::vector<uint8_t>(64, 0x42));
    }

    // Flip one payload byte in place (header 16 + fixed fields 28).
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 16 + 28 + 10, SEEK_SET);
        std::fputc(0x43, f);
        std::fclose(f);
    }

    cache::Store reader(options);
    EXPECT_EQ(reader.stats().disk_loaded, 0u);
    EXPECT_EQ(reader.stats().disk_dropped, 1u);
    std::vector<uint8_t> blob;
    EXPECT_FALSE(reader.get(keyOf(0), blob));
    fs::remove_all(dir);
}

TEST(Store, UnknownHeaderStartsFresh)
{
    const std::string dir = scratchDir("header");
    cache::CacheOptions options;
    options.dir = dir;
    const std::string path = dir + "/qpad_cache.qpc";

    {
        cache::Store writer(options);
        writer.put(keyOf(1), {1, 2, 3});
    }
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fputc('X', f); // clobber the magic
        std::fclose(f);
    }

    cache::Store reader(options);
    EXPECT_EQ(reader.stats().disk_loaded, 0u);
    std::vector<uint8_t> blob;
    EXPECT_FALSE(reader.get(keyOf(1), blob));
    // And the store is usable/persistent again afterwards.
    reader.put(keyOf(2), {9});
    cache::Store reopened(options);
    EXPECT_EQ(reopened.stats().disk_loaded, 1u);
    fs::remove_all(dir);
}

// --------------------------------------------------------------------
// Cached front ends
// --------------------------------------------------------------------

void
expectSameYield(const yield::YieldResult &a, const yield::YieldResult &b)
{
    EXPECT_EQ(a.successes, b.successes);
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.yield, b.yield); // exact: same division of same ints
    EXPECT_EQ(a.condition_trials, b.condition_trials);
}

TEST(CachedYield, BitIdenticalToUncachedAndZeroRecompute)
{
    freshGlobalCache();
    auto arch = arch::ibm16Q(false);
    yield::YieldOptions options;
    options.trials = 3000;

    const yield::YieldResult direct = yield::estimateYield(arch, options);
    const yield::YieldResult miss =
        cache::cachedEstimateYield(arch, options);
    expectSameYield(direct, miss);

    cache::StoreStats s = cache::globalCacheStats();
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.inserts, 1u);

    const yield::YieldResult hit =
        cache::cachedEstimateYield(arch, options);
    expectSameYield(direct, hit);

    s = cache::globalCacheStats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u) << "warm lookup must not recompute";
    EXPECT_EQ(s.inserts, 1u);
}

TEST(CachedYield, ConditionStatsVariantIsItsOwnKey)
{
    freshGlobalCache();
    auto arch = arch::ibm16Q(true);
    yield::YieldOptions options;
    options.trials = 1500;

    yield::YieldOptions stats_options = options;
    stats_options.collect_condition_stats = true;

    const yield::YieldResult plain =
        cache::cachedEstimateYield(arch, options);
    const yield::YieldResult stats =
        cache::cachedEstimateYield(arch, stats_options);
    EXPECT_EQ(cache::globalCacheStats().misses, 2u);

    // Same stream, same successes; only the tallies differ.
    EXPECT_EQ(plain.successes, stats.successes);
    std::size_t tallied = 0;
    for (std::size_t c : stats.condition_trials)
        tallied += c;
    EXPECT_GT(tallied, 0u) << "a bused 16q chip collides at 30 MHz";

    // Both variants replay from the cache, tallies included.
    expectSameYield(stats, cache::cachedEstimateYield(arch, stats_options));
    expectSameYield(plain, cache::cachedEstimateYield(arch, options));
    EXPECT_EQ(cache::globalCacheStats().misses, 2u);
}

TEST(CachedYield, DisabledCachePassesThrough)
{
    cache::CacheOptions off;
    off.enabled = false;
    cache::configureGlobalCache(off);

    auto arch = arch::ibm16Q(false);
    yield::YieldOptions options;
    options.trials = 500;
    expectSameYield(yield::estimateYield(arch, options),
                    cache::cachedEstimateYield(arch, options));
    const cache::StoreStats s = cache::globalCacheStats();
    EXPECT_EQ(s.hits + s.misses + s.inserts, 0u);
    freshGlobalCache();
}

TEST(CachedFreqAlloc, BitIdenticalAndCached)
{
    freshGlobalCache();
    auto arch = arch::ibm16Q(true);
    design::FreqAllocOptions options;
    options.local_trials = 150;
    options.refine_sweeps = 1;

    const design::FreqAllocResult direct =
        design::allocateFrequencies(arch, options);
    const design::FreqAllocResult miss =
        cache::cachedAllocateFrequencies(arch, options);
    const design::FreqAllocResult hit =
        cache::cachedAllocateFrequencies(arch, options);

    EXPECT_EQ(direct.freqs, miss.freqs);
    EXPECT_EQ(direct.order, miss.order);
    EXPECT_EQ(direct.local_scores, miss.local_scores);
    EXPECT_EQ(direct.freqs, hit.freqs);
    EXPECT_EQ(direct.order, hit.order);
    EXPECT_EQ(direct.local_scores, hit.local_scores);

    const cache::StoreStats s = cache::globalCacheStats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);

    // The allocator ignores pre-assigned frequencies, so a re-tuned
    // copy of the same topology must share the key.
    auto retuned = arch;
    std::vector<double> flat(retuned.numQubits(), 5.2);
    retuned.setAllFrequencies(flat);
    EXPECT_EQ(cache::freqAllocKey(arch, options),
              cache::freqAllocKey(retuned, options));
}

TEST(CachedAnneal, RestartChainsReplayFromCache)
{
    freshGlobalCache();
    auto circuit = benchmarks::getBenchmark("sym6_145").generate();
    profile::CouplingProfile prof = profile::profileCircuit(circuit);
    design::LayoutResult start = design::designLayout(prof);

    design::AnnealOptions options;
    options.iterations = 2000;
    options.restarts = 3;

    const design::AnnealResult cold =
        design::annealLayout(prof, start, options);
    cache::StoreStats s = cache::globalCacheStats();
    EXPECT_EQ(s.misses, 3u) << "one key per chain";
    EXPECT_EQ(s.inserts, 3u);

    const design::AnnealResult warm =
        design::annealLayout(prof, start, options);
    s = cache::globalCacheStats();
    EXPECT_EQ(s.hits, 3u);
    EXPECT_EQ(s.misses, 3u) << "warm rerun computes no chain";
    EXPECT_EQ(warm.final_cost, cold.final_cost);
    EXPECT_EQ(warm.winning_chain, cold.winning_chain);
    EXPECT_EQ(warm.accepted_moves, cold.accepted_moves);
    EXPECT_EQ(warm.layout.coord_of_logical,
              cold.layout.coord_of_logical);

    // More restarts reuse the finished chains and only run the new
    // ones — and match a cold run of the same configuration.
    design::AnnealOptions more = options;
    more.restarts = 5;
    const design::AnnealResult extended =
        design::annealLayout(prof, start, more);
    s = cache::globalCacheStats();
    EXPECT_EQ(s.hits, 6u);
    EXPECT_EQ(s.misses, 5u) << "only the two new chains computed";

    freshGlobalCache();
    const design::AnnealResult cold5 =
        design::annealLayout(prof, start, more);
    EXPECT_EQ(extended.final_cost, cold5.final_cost);
    EXPECT_EQ(extended.winning_chain, cold5.winning_chain);
    EXPECT_EQ(extended.layout.coord_of_logical,
              cold5.layout.coord_of_logical);
}

// --------------------------------------------------------------------
// Experiment harness integration
// --------------------------------------------------------------------

eval::ExperimentOptions
smallExperiment()
{
    eval::ExperimentOptions options;
    options.yield_options.trials = 300;
    options.max_yield_trials = 3000;
    options.freq_options.local_trials = 120;
    options.freq_options.refine_sweeps = 1;
    options.random_bus_samples = 1;
    return options;
}

void
expectSamePoints(const eval::BenchmarkExperiment &a,
                 const eval::BenchmarkExperiment &b)
{
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        const eval::DataPoint &p = a.points[i];
        const eval::DataPoint &q = b.points[i];
        EXPECT_EQ(p.config, q.config);
        EXPECT_EQ(p.arch_name, q.arch_name);
        EXPECT_EQ(p.num_qubits, q.num_qubits);
        EXPECT_EQ(p.num_edges, q.num_edges);
        EXPECT_EQ(p.num_buses, q.num_buses);
        EXPECT_EQ(p.gate_count, q.gate_count);
        EXPECT_EQ(p.swaps, q.swaps);
        EXPECT_EQ(p.yield, q.yield) << "point " << i;
        EXPECT_EQ(p.yield_trials, q.yield_trials);
        EXPECT_EQ(p.norm_recip_gates, q.norm_recip_gates);
    }
}

TEST(CachedExperiment, WarmRunIsBitIdenticalWithZeroYieldWork)
{
    const auto &info = benchmarks::getBenchmark("sym6_145");

    // Reference run with the cache disabled entirely.
    cache::CacheOptions off;
    off.enabled = false;
    cache::configureGlobalCache(off);
    const eval::BenchmarkExperiment uncached =
        eval::runBenchmark(info, smallExperiment());

    freshGlobalCache();
    const eval::BenchmarkExperiment cold =
        eval::runBenchmark(info, smallExperiment());
    expectSamePoints(uncached, cold);
    EXPECT_GT(cold.cache_stats.misses, 0u);

    const eval::BenchmarkExperiment warm =
        eval::runBenchmark(info, smallExperiment());
    expectSamePoints(uncached, warm);
    EXPECT_EQ(warm.cache_stats.misses, 0u)
        << "a warm sweep performs zero estimateYield trial work";
    EXPECT_GT(warm.cache_stats.hits, 0u);
    EXPECT_EQ(warm.cache_stats.inserts, 0u);
    freshGlobalCache();
}

TEST(CachedExperiment, AdaptiveEscalationStepsAreCached)
{
    // The dense bused 20q baseline yields ~0 at 200 trials, forcing
    // escalation; every escalation step must be served from the
    // cache on the second measurement.
    freshGlobalCache();
    auto arch = arch::ibm20Q(true);
    auto circuit =
        benchmarks::getBenchmark("UCCSD_ansatz_8").generate();

    eval::ExperimentOptions options = smallExperiment();
    options.yield_options.trials = 200;
    options.max_yield_trials = 20000;

    const eval::DataPoint first =
        eval::measure("probe", arch, circuit, options);
    const cache::StoreStats after_first = cache::globalCacheStats();
    EXPECT_GT(after_first.misses, 1u) << "escalation ran and cached";

    const eval::DataPoint second =
        eval::measure("probe", arch, circuit, options);
    const cache::StoreStats after_second = cache::globalCacheStats();
    EXPECT_EQ(second.yield, first.yield);
    EXPECT_EQ(second.yield_trials, first.yield_trials);
    EXPECT_EQ(after_second.misses, after_first.misses);
    EXPECT_EQ(after_second.hits - after_first.hits,
              after_first.misses);
    freshGlobalCache();
}

} // namespace

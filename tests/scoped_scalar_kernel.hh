/**
 * @file
 * Test helpers: force an environment flag for one scope.
 *
 * The variables may be set externally (the CI sanitize job runs
 * whole test binaries under QPAD_SCALAR_KERNEL=1 and QPAD_RNG_V1=1);
 * clobbering one would silently change behaviour for the remaining
 * tests, so the destructor restores the exact prior value.
 */

#ifndef QPAD_TESTS_SCOPED_SCALAR_KERNEL_HH
#define QPAD_TESTS_SCOPED_SCALAR_KERNEL_HH

#include <cstdlib>
#include <string>

namespace qpad::test
{

/** Sets `name=value` for its lifetime, then restores the old state. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *prev = std::getenv(name);
        had_prev_ = prev != nullptr;
        if (had_prev_)
            prev_ = prev;
        setenv(name, value, 1);
    }
    ~ScopedEnv()
    {
        if (had_prev_)
            setenv(name_.c_str(), prev_.c_str(), 1);
        else
            unsetenv(name_.c_str());
    }
    ScopedEnv(const ScopedEnv &) = delete;
    ScopedEnv &operator=(const ScopedEnv &) = delete;

  private:
    std::string name_;
    bool had_prev_ = false;
    std::string prev_;
};

/** Forces the scalar collision kernel for one scope. */
class ScopedScalarKernel : public ScopedEnv
{
  public:
    ScopedScalarKernel() : ScopedEnv("QPAD_SCALAR_KERNEL", "1") {}
};

/** Forces the legacy v1 draw scheme for one scope. */
class ScopedRngV1 : public ScopedEnv
{
  public:
    ScopedRngV1() : ScopedEnv("QPAD_RNG_V1", "1") {}
};

} // namespace qpad::test

#endif // QPAD_TESTS_SCOPED_SCALAR_KERNEL_HH

/**
 * @file
 * Test helper: force the scalar collision kernel for one scope.
 *
 * The variable may be set externally (the CI sanitize job runs whole
 * test binaries under QPAD_SCALAR_KERNEL=1); clobbering it would
 * silently re-enable the batched kernel for the remaining tests, so
 * the destructor restores the exact prior value.
 */

#ifndef QPAD_TESTS_SCOPED_SCALAR_KERNEL_HH
#define QPAD_TESTS_SCOPED_SCALAR_KERNEL_HH

#include <cstdlib>
#include <string>

namespace qpad::test
{

class ScopedScalarKernel
{
  public:
    ScopedScalarKernel()
    {
        const char *prev = std::getenv("QPAD_SCALAR_KERNEL");
        had_prev_ = prev != nullptr;
        if (had_prev_)
            prev_ = prev;
        setenv("QPAD_SCALAR_KERNEL", "1", 1);
    }
    ~ScopedScalarKernel()
    {
        if (had_prev_)
            setenv("QPAD_SCALAR_KERNEL", prev_.c_str(), 1);
        else
            unsetenv("QPAD_SCALAR_KERNEL");
    }
    ScopedScalarKernel(const ScopedScalarKernel &) = delete;
    ScopedScalarKernel &operator=(const ScopedScalarKernel &) = delete;

  private:
    bool had_prev_ = false;
    std::string prev_;
};

} // namespace qpad::test

#endif // QPAD_TESTS_SCOPED_SCALAR_KERNEL_HH

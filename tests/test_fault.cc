/**
 * @file
 * Tests for qpad::fault and the crash-safe persistent cache built on
 * it: failpoint spec parsing and trigger schedules, the fio shims'
 * torn-write semantics, the Store's repair/degrade/compact ladder
 * under injected faults, and two fork-based proofs — a seeded
 * kill-cycle torture loop (no committed record is ever lost, torn
 * tails are truncated exactly once) and two concurrent writer
 * processes sharing one QPAD_CACHE_DIR through the flock.
 *
 * QPAD_TORTURE_CYCLES overrides the kill-cycle count (default 20;
 * CI raises it).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define QPAD_HAVE_FORK 1
#include <sys/wait.h>
#include <unistd.h>
#else
#define QPAD_HAVE_FORK 0
#endif

#include "cache/fingerprint.hh"
#include "cache/store.hh"
#include "fault/failpoint.hh"
#include "fault/fio.hh"

namespace
{

using namespace qpad;
namespace fs = std::filesystem;

/** A unique scratch directory under the test temp dir. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + "qpad_fault_" + name;
    fs::remove_all(dir);
    return dir;
}

cache::Fingerprint
keyOf(uint64_t i)
{
    cache::Encoder enc;
    enc.str("fault.key");
    enc.u64(i);
    return enc.digest();
}

/** Deterministic payload for key index `i` (length varies too, so
 * offsets differ between records). */
std::vector<uint8_t>
valueOf(uint64_t i)
{
    std::vector<uint8_t> v(48 + std::size_t(i % 17));
    for (std::size_t j = 0; j < v.size(); ++j)
        v[j] = uint8_t((i * 31 + j * 7 + 3) & 0xff);
    return v;
}

/** Arm a failpoint spec for one scope; disarms on exit so a failing
 * test cannot leak injections into the next one. */
class ScopedFailpoints
{
  public:
    explicit ScopedFailpoints(const std::string &spec)
    {
        std::string error;
        armed_ = fault::configureFailpoints(spec, &error);
        EXPECT_TRUE(armed_) << error;
    }
    ~ScopedFailpoints() { fault::clearFailpoints(); }
    ScopedFailpoints(const ScopedFailpoints &) = delete;
    ScopedFailpoints &operator=(const ScopedFailpoints &) = delete;

  private:
    bool armed_ = false;
};

cache::CacheOptions
diskOptions(const std::string &dir)
{
    cache::CacheOptions options;
    options.dir = dir;
    return options;
}

// --------------------------------------------------------------------
// Failpoint configuration & triggers
// --------------------------------------------------------------------

TEST(Failpoint, MalformedSpecsAreRejectedWithoutInstalling)
{
    std::string error;
    EXPECT_FALSE(fault::configureFailpoints("nonsense", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(fault::configureFailpoints("site.badaction@1", &error));
    EXPECT_NE(error.find("eio"), std::string::npos);
    EXPECT_FALSE(fault::configureFailpoints("a.b.eio@x", &error));
    EXPECT_FALSE(fault::configureFailpoints("a.b.eio@0", &error));
    EXPECT_FALSE(fault::configureFailpoints("Bad.Site.eio@1", &error));
    EXPECT_FALSE(fault::failpointsArmed());
}

TEST(Failpoint, NthTriggerFiresExactlyOnce)
{
    ScopedFailpoints fp("some.site.eio@2");
    EXPECT_TRUE(fault::failpointsArmed());
    EXPECT_EQ(fault::failpointHit("some.site"), fault::Action::kNone);
    EXPECT_EQ(fault::failpointHit("some.site"), fault::Action::kError);
    EXPECT_EQ(fault::failpointHit("some.site"), fault::Action::kNone);
    EXPECT_EQ(fault::failpointTriggerCount(), 1u);
}

TEST(Failpoint, FromNthAndEveryTriggers)
{
    {
        ScopedFailpoints fp("a.b.eio@2+");
        EXPECT_EQ(fault::failpointHit("a.b"), fault::Action::kNone);
        EXPECT_EQ(fault::failpointHit("a.b"), fault::Action::kError);
        EXPECT_EQ(fault::failpointHit("a.b"), fault::Action::kError);
    }
    {
        ScopedFailpoints fp("c.d.eio@*");
        EXPECT_EQ(fault::failpointHit("c.d"), fault::Action::kError);
        EXPECT_EQ(fault::failpointHit("c.d"), fault::Action::kError);
    }
}

TEST(Failpoint, SitesAreIndependentAndStrongestActionWins)
{
    ScopedFailpoints fp(
        "x.y.eio@1, x.y.short_write@1, other.site.eio@1");
    // Both x.y entries fire on the same hit; short_write outranks.
    EXPECT_EQ(fault::failpointHit("x.y"),
              fault::Action::kShortWrite);
    EXPECT_EQ(fault::failpointHit("unrelated"), fault::Action::kNone);
    EXPECT_EQ(fault::failpointHit("other.site"),
              fault::Action::kError);
}

TEST(Failpoint, ClearDisarmsAndResetsCounters)
{
    {
        ScopedFailpoints fp("p.q.eio@1");
        EXPECT_EQ(fault::failpointHit("p.q"), fault::Action::kError);
    }
    EXPECT_FALSE(fault::failpointsArmed());
    EXPECT_EQ(fault::failpointHit("p.q"), fault::Action::kNone);
    EXPECT_EQ(fault::failpointTriggerCount(), 0u);
}

// --------------------------------------------------------------------
// fio shims
// --------------------------------------------------------------------

TEST(Fio, ShortWritePersistsAStrictPrefix)
{
    const std::string dir = scratchDir("fio_short");
    fs::create_directories(dir);
    const std::string path = dir + "/file";
    std::FILE *f = fault::fioOpen("t.open", path, "wb");
    ASSERT_NE(f, nullptr);
    fault::fioUnbuffered(f);
    const std::vector<uint8_t> buf(100, 0xaa);
    {
        ScopedFailpoints fp("t.write.short_write@1");
        EXPECT_FALSE(
            fault::fioWrite("t.write", f, buf.data(), buf.size()));
    }
    fault::fioClose(f);
    EXPECT_EQ(fs::file_size(path), 50u); // exactly half, never all
}

TEST(Fio, EioFailsWithoutTouchingTheFile)
{
    const std::string dir = scratchDir("fio_eio");
    fs::create_directories(dir);
    const std::string path = dir + "/file";
    std::FILE *f = fault::fioOpen("t.open", path, "wb");
    ASSERT_NE(f, nullptr);
    const std::vector<uint8_t> buf(100, 0xbb);
    {
        ScopedFailpoints fp("t.write.eio@1");
        EXPECT_FALSE(
            fault::fioWrite("t.write", f, buf.data(), buf.size()));
    }
    fault::fioClose(f);
    EXPECT_EQ(fs::file_size(path), 0u);
}

TEST(Fio, TryLockExcludesASecondHandle)
{
    const std::string dir = scratchDir("fio_lock");
    fs::create_directories(dir);
    const std::string path = dir + "/lockfile";
    std::FILE *a = fault::fioOpen("t.open", path, "ab");
    std::FILE *b = fault::fioOpen("t.open", path, "ab");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    const fault::LockResult first = fault::fioTryLock("t.lock", a);
    if (first == fault::LockResult::kUnsupported) {
        fault::fioClose(a);
        fault::fioClose(b);
        GTEST_SKIP() << "no flock on this platform";
    }
    ASSERT_EQ(first, fault::LockResult::kLocked);
    // flock is per open-file-description: a second fopen of the same
    // path contends even inside one process.
    EXPECT_EQ(fault::fioTryLock("t.lock", b),
              fault::LockResult::kBusy);
    fault::fioUnlock(a);
    EXPECT_EQ(fault::fioTryLock("t.lock", b),
              fault::LockResult::kLocked);
    fault::fioUnlock(b);
    fault::fioClose(a);
    fault::fioClose(b);
}

// --------------------------------------------------------------------
// Store under injected faults: repair + graceful degradation
// --------------------------------------------------------------------

TEST(FaultStore, AppendEioDegradesToMemoryOnlyWithoutTornRecords)
{
    const std::string dir = scratchDir("append_eio");
    {
        cache::Store store(diskOptions(dir));
        for (uint64_t i = 0; i < 3; ++i)
            store.put(keyOf(i), valueOf(i));
        ASSERT_TRUE(store.persistent());

        ScopedFailpoints fp("cache.append.eio@1");
        store.put(keyOf(3), valueOf(3));
        EXPECT_FALSE(store.persistent());
        EXPECT_EQ(store.stats().persistence_lost, 1u);

        // Memory-only from here on: everything still serves.
        store.put(keyOf(4), valueOf(4));
        std::vector<uint8_t> out;
        EXPECT_TRUE(store.get(keyOf(3), out));
        EXPECT_EQ(out, valueOf(3));
        EXPECT_TRUE(store.get(keyOf(4), out));
    }
    // The log holds exactly the three pre-fault records, cleanly.
    cache::Store reopened(diskOptions(dir));
    const cache::StoreStats s = reopened.stats();
    EXPECT_EQ(s.disk_loaded, 3u);
    EXPECT_EQ(s.disk_dropped, 0u);
    EXPECT_EQ(s.persistence_lost, 0u);
}

TEST(FaultStore, ShortWriteIsTruncatedAwayBeforeDegrading)
{
    const std::string dir = scratchDir("append_short");
    {
        cache::Store store(diskOptions(dir));
        for (uint64_t i = 0; i < 5; ++i)
            store.put(keyOf(i), valueOf(i));

        ScopedFailpoints fp("cache.append.short_write@1");
        store.put(keyOf(5), valueOf(5));
        EXPECT_EQ(store.stats().persistence_lost, 1u);
    }
    // The half-written record was cut off on the spot: the reopened
    // log replays clean, nothing dropped.
    cache::Store reopened(diskOptions(dir));
    EXPECT_EQ(reopened.stats().disk_loaded, 5u);
    EXPECT_EQ(reopened.stats().disk_dropped, 0u);
}

TEST(FaultStore, FailedTruncateLeavesTornTailForReplayRepair)
{
    const std::string dir = scratchDir("truncate_fails");
    {
        cache::Store store(diskOptions(dir));
        for (uint64_t i = 0; i < 4; ++i)
            store.put(keyOf(i), valueOf(i));

        // Tear the append AND fail the on-the-spot repair: the torn
        // record stays on disk this time.
        ScopedFailpoints fp(
            "cache.append.short_write@1,cache.truncate.eio@1");
        store.put(keyOf(4), valueOf(4));
        EXPECT_EQ(store.stats().persistence_lost, 1u);
    }
    {
        // Replay detects the torn tail by checksum and truncates it.
        cache::Store reopened(diskOptions(dir));
        EXPECT_EQ(reopened.stats().disk_loaded, 4u);
        EXPECT_EQ(reopened.stats().disk_dropped, 1u);
    }
    // ... after which the file is clean for good.
    cache::Store again(diskOptions(dir));
    EXPECT_EQ(again.stats().disk_loaded, 4u);
    EXPECT_EQ(again.stats().disk_dropped, 0u);
}

TEST(FaultStore, SyncPolicyGatesTheFsyncSite)
{
    const std::string dir = scratchDir("sync_policy");
    {
        // Default flush policy never reaches cache.fsync: arming it
        // on every hit must inject nothing.
        ScopedFailpoints fp("cache.fsync.eio@*");
        cache::Store store(diskOptions(dir));
        store.put(keyOf(0), valueOf(0));
        EXPECT_TRUE(store.persistent());
        EXPECT_EQ(fault::failpointTriggerCount(), 0u);
    }
    {
        // kFull fsyncs every append; the same injection now degrades
        // (and the failed record is repaired away).
        ScopedFailpoints fp("cache.fsync.eio@1");
        cache::CacheOptions options = diskOptions(dir);
        options.sync = cache::SyncPolicy::kFull;
        cache::Store store(options);
        store.put(keyOf(1), valueOf(1));
        EXPECT_FALSE(store.persistent());
        EXPECT_EQ(store.stats().persistence_lost, 1u);
    }
    cache::Store reopened(diskOptions(dir));
    EXPECT_EQ(reopened.stats().disk_loaded, 1u);
    EXPECT_EQ(reopened.stats().disk_dropped, 0u);
}

TEST(FaultStore, OpenFaultFallsBackToMemoryOnly)
{
    const std::string dir = scratchDir("open_fault");
    ScopedFailpoints fp("cache.open.eio@1");
    cache::Store store(diskOptions(dir));
    EXPECT_FALSE(store.persistent());
    EXPECT_EQ(store.stats().persistence_lost, 1u);
    store.put(keyOf(0), valueOf(0));
    std::vector<uint8_t> out;
    EXPECT_TRUE(store.get(keyOf(0), out));
    EXPECT_EQ(out, valueOf(0));
}

TEST(FaultStore, LockFaultSkipsOneAppendKeepsPersistence)
{
    const std::string dir = scratchDir("lock_fault");
    {
        // Lock hit 1 is openLog; hit 2 is the first append.
        ScopedFailpoints fp("cache.lock.eio@2");
        cache::Store store(diskOptions(dir));
        ASSERT_TRUE(store.persistent());
        store.put(keyOf(0), valueOf(0)); // lock fault: append skipped
        store.put(keyOf(1), valueOf(1)); // persists normally
        EXPECT_TRUE(store.persistent());
        const cache::StoreStats s = store.stats();
        EXPECT_EQ(s.lock_timeouts, 1u);
        EXPECT_EQ(s.persistence_lost, 0u);
        std::vector<uint8_t> out;
        EXPECT_TRUE(store.get(keyOf(0), out)); // memory still serves
    }
    cache::Store reopened(diskOptions(dir));
    EXPECT_EQ(reopened.stats().disk_loaded, 1u); // only keyOf(1)
    std::vector<uint8_t> out;
    EXPECT_TRUE(reopened.get(keyOf(1), out));
    EXPECT_FALSE(reopened.get(keyOf(0), out));
}

TEST(FaultStore, ContendedLockTimesOutAndCountsWaits)
{
    const std::string dir = scratchDir("lock_contention");
    cache::CacheOptions options = diskOptions(dir);
    options.lock_timeout_ms = 40; // keep the bounded wait short
    cache::Store store(options);
    ASSERT_TRUE(store.persistent());

    // Hold the inter-process lock from a second handle, as another
    // process would.
    std::FILE *blocker = fault::fioOpen(
        "t.open", dir + "/qpad_cache.lock", "ab");
    ASSERT_NE(blocker, nullptr);
    if (fault::fioTryLock("t.lock", blocker) !=
        fault::LockResult::kLocked) {
        fault::fioClose(blocker);
        GTEST_SKIP() << "no flock on this platform";
    }

    store.put(keyOf(0), valueOf(0)); // waits, times out, skips
    cache::StoreStats s = store.stats();
    EXPECT_EQ(s.lock_waits, 1u);
    EXPECT_EQ(s.lock_timeouts, 1u);
    EXPECT_TRUE(store.persistent());

    fault::fioUnlock(blocker);
    fault::fioClose(blocker);
    store.put(keyOf(1), valueOf(1)); // lock free again: persists
    s = store.stats();
    EXPECT_EQ(s.lock_timeouts, 1u);
    EXPECT_EQ(s.persistence_lost, 0u);
}

// --------------------------------------------------------------------
// Compaction
// --------------------------------------------------------------------

TEST(FaultCompact, CompactLogKeepsLatestRecordPerKey)
{
    const std::string dir = scratchDir("compact_basic");
    cache::CacheOptions options = diskOptions(dir);
    options.compact_factor = 0; // manual only
    {
        cache::Store store(options);
        for (uint64_t round = 0; round < 6; ++round)
            for (uint64_t i = 0; i < 4; ++i)
                store.put(keyOf(i), valueOf(i + round));
        EXPECT_TRUE(store.compactLog());
        EXPECT_EQ(store.stats().compactions, 1u);
    }
    cache::Store reopened(options);
    const cache::StoreStats s = reopened.stats();
    EXPECT_EQ(s.disk_loaded, 4u); // 24 records → 4 live
    EXPECT_EQ(s.disk_dropped, 0u);
    std::vector<uint8_t> out;
    for (uint64_t i = 0; i < 4; ++i) {
        ASSERT_TRUE(reopened.get(keyOf(i), out));
        EXPECT_EQ(out, valueOf(i + 5)) << "latest round must win";
    }
}

TEST(FaultCompact, ThresholdTriggersDuringAppends)
{
    const std::string dir = scratchDir("compact_threshold");
    cache::CacheOptions options = diskOptions(dir);
    options.compact_factor = 2;
    {
        cache::Store store(options);
        // 8 keys rewritten over and over: once past the 64-record
        // floor the 2x threshold fires mid-append.
        for (uint64_t round = 0; round < 12; ++round)
            for (uint64_t i = 0; i < 8; ++i)
                store.put(keyOf(i), valueOf(i + round));
        EXPECT_GE(store.stats().compactions, 1u);
    }
    cache::Store reopened(options);
    EXPECT_LT(reopened.stats().disk_loaded, 96u); // far fewer than puts
    EXPECT_EQ(reopened.stats().disk_dropped, 0u);
    std::vector<uint8_t> out;
    for (uint64_t i = 0; i < 8; ++i) {
        ASSERT_TRUE(reopened.get(keyOf(i), out));
        EXPECT_EQ(out, valueOf(i + 11));
    }
}

TEST(FaultCompact, FaultsDuringCompactionLeaveTheOldLogIntact)
{
    const std::string dir = scratchDir("compact_fault");
    cache::CacheOptions options = diskOptions(dir);
    options.compact_factor = 0;
    {
        cache::Store store(options);
        for (uint64_t i = 0; i < 5; ++i)
            store.put(keyOf(i), valueOf(i));
        {
            ScopedFailpoints fp("cache.compact.write.eio@1");
            EXPECT_FALSE(store.compactLog());
        }
        {
            ScopedFailpoints fp("cache.compact.rename.eio@1");
            EXPECT_FALSE(store.compactLog());
        }
        EXPECT_TRUE(store.persistent());
        EXPECT_EQ(store.stats().compactions, 0u);
        // Third try, no faults: succeeds.
        EXPECT_TRUE(store.compactLog());
    }
    cache::Store reopened(options);
    EXPECT_EQ(reopened.stats().disk_loaded, 5u);
    EXPECT_EQ(reopened.stats().disk_dropped, 0u);
}

TEST(FaultCompact, ForeignCompactionIsDetectedByInodeCheck)
{
    const std::string dir = scratchDir("compact_foreign");
    cache::CacheOptions options = diskOptions(dir);
    options.compact_factor = 0;
    cache::Store writer(options);
    for (uint64_t round = 0; round < 3; ++round)
        for (uint64_t i = 0; i < 3; ++i)
            writer.put(keyOf(i), valueOf(i + round));

    {
        // A second instance — same dance another process would do —
        // compacts the log, swapping the inode under the writer.
        cache::Store other(options);
        EXPECT_TRUE(other.compactLog());
    }

    // The writer's next append must land in the NEW file, not the
    // orphaned old inode.
    writer.put(keyOf(99), valueOf(99));
    EXPECT_TRUE(writer.persistent());

    cache::Store reopened(options);
    EXPECT_EQ(reopened.stats().disk_loaded, 4u); // 3 live + 1 new
    std::vector<uint8_t> out;
    ASSERT_TRUE(reopened.get(keyOf(99), out));
    EXPECT_EQ(out, valueOf(99));
    ASSERT_TRUE(reopened.get(keyOf(1), out));
    EXPECT_EQ(out, valueOf(1 + 2));
}

#if QPAD_HAVE_FORK

// --------------------------------------------------------------------
// Fork-based crash torture
// --------------------------------------------------------------------

/** Child-side exit codes distinct from fault::kKillExitCode, so the
 * parent can tell an injected death from a child-side failure. */
constexpr int kChildNotPersistent = 80;
constexpr int kChildSurvived = 81;
constexpr int kChildOk = 0;

uint64_t
tortureCycles()
{
    if (const char *env = std::getenv("QPAD_TORTURE_CYCLES");
        env && *env) {
        const unsigned long long v = std::strtoull(env, nullptr, 10);
        if (v > 0)
            return v;
    }
    return 20;
}

/** Append one committed key index to the progress file, flushed so
 * it survives the child's upcoming death. */
void
recordProgress(std::FILE *progress, uint64_t index)
{
    std::fprintf(progress, "%llu\n", (unsigned long long)index);
    std::fflush(progress);
}

std::vector<uint64_t>
readProgress(const std::string &path)
{
    std::vector<uint64_t> committed;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return committed;
    unsigned long long v = 0;
    while (std::fscanf(f, "%llu", &v) == 1)
        committed.push_back(v);
    std::fclose(f);
    return committed;
}

TEST(FaultTorture, SeededKillCyclesLoseNoCommittedRecord)
{
    const std::string dir = scratchDir("torture");
    const std::string progress_path = dir + "/progress.txt";
    fs::create_directories(dir);

    const uint64_t cycles = tortureCycles();
    constexpr uint64_t kPutsPerCycle = 24;

    for (uint64_t cycle = 0; cycle < cycles; ++cycle) {
        // Deterministic per-cycle schedule: the kill site rotates
        // over append/flush/fsync and the trigger hit walks 1..13,
        // so the death lands everywhere from the first record of a
        // fresh log to deep inside a long replayed one.
        const uint64_t trigger = 1 + (cycle * 5) % 13;
        const bool full_sync = cycle % 3 == 2;
        const char *site = "cache.append";
        if (cycle % 4 == 1)
            site = "cache.flush";
        else if (full_sync && cycle % 4 == 3)
            site = "cache.fsync";
        const std::string spec = std::string(site) + ".kill@" +
                                 std::to_string(trigger);

        const pid_t pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            // ---- child: arm the kill, hammer the cache, die. ----
            if (!fault::configureFailpoints(spec))
                std::_Exit(kChildNotPersistent);
            cache::CacheOptions options = diskOptions(dir);
            options.sync = full_sync ? cache::SyncPolicy::kFull
                                     : cache::SyncPolicy::kFlush;
            cache::Store store(options);
            if (!store.persistent())
                std::_Exit(kChildNotPersistent);
            std::FILE *progress =
                std::fopen(progress_path.c_str(), "ab");
            if (!progress)
                std::_Exit(kChildNotPersistent);
            for (uint64_t j = 0; j < kPutsPerCycle; ++j) {
                const uint64_t index = cycle * 1000 + j;
                // put() returns only once the record is committed
                // (written + flushed under the flock), so recording
                // progress AFTER it gives the invariant the parent
                // checks: progress ⊆ disk.
                store.put(keyOf(index), valueOf(index));
                recordProgress(progress, index);
            }
            std::_Exit(kChildSurvived);
        }

        // ---- parent: the child must die by the injected kill. ----
        int status = 0;
        ASSERT_EQ(waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status))
            << "cycle " << cycle << ": child did not exit";
        ASSERT_EQ(WEXITSTATUS(status), fault::kKillExitCode)
            << "cycle " << cycle << " spec " << spec;

        // Recovery: every record the child committed must replay,
        // and at most the one record torn by the kill may drop.
        cache::Store verifier(diskOptions(dir));
        const cache::StoreStats s = verifier.stats();
        EXPECT_LE(s.disk_dropped, 1u) << "cycle " << cycle;
        // Cumulative over all cycles so far; a trigger of 1 kills
        // the child before its first commit, which is fine — the
        // invariant is committed ⊆ disk, not that commits happened.
        const std::vector<uint64_t> committed =
            readProgress(progress_path);
        std::vector<uint8_t> out;
        for (uint64_t index : committed) {
            ASSERT_TRUE(verifier.get(keyOf(index), out))
                << "cycle " << cycle << ": committed record "
                << index << " lost";
            EXPECT_EQ(out, valueOf(index)) << "cycle " << cycle;
        }
    }

    // Each cycle's verifier truncated that cycle's torn tail, so the
    // final log replays with nothing left to drop.
    cache::Store final_check(diskOptions(dir));
    EXPECT_EQ(final_check.stats().disk_dropped, 0u);
    const std::vector<uint64_t> all_committed =
        readProgress(progress_path);
    EXPECT_FALSE(all_committed.empty())
        << "no cycle ever committed a record; the schedule is "
           "degenerate";
    EXPECT_GE(final_check.stats().disk_loaded, all_committed.size());
}

// --------------------------------------------------------------------
// Two concurrent writer processes, one cache directory
// --------------------------------------------------------------------

TEST(FaultMultiProcess, TwoWritersProduceOneCleanMergedLog)
{
    const std::string dir = scratchDir("two_writers");
    constexpr uint64_t kPerWriter = 40;
    constexpr uint64_t kOverlap = 20; // writers share keys 20..39

    auto spawnWriter = [&](uint64_t base) -> pid_t {
        const pid_t pid = fork();
        if (pid != 0)
            return pid;
        // ---- child: overlapping getOrCompute against the dir ----
        cache::Store store(diskOptions(dir));
        if (!store.persistent())
            std::_Exit(kChildNotPersistent);
        for (uint64_t j = 0; j < kPerWriter; ++j) {
            const uint64_t index = base + j;
            const std::vector<uint8_t> got = store.getOrCompute(
                keyOf(index), [&] { return valueOf(index); });
            if (got != valueOf(index))
                std::_Exit(kChildNotPersistent);
        }
        std::_Exit(kChildOk);
    };

    const pid_t a = spawnWriter(0);
    ASSERT_GE(a, 0);
    const pid_t b = spawnWriter(kPerWriter - kOverlap);
    ASSERT_GE(b, 0);
    for (pid_t pid : {a, b}) {
        int status = 0;
        ASSERT_EQ(waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        ASSERT_EQ(WEXITSTATUS(status), kChildOk);
    }

    // The merged log replays clean: every key present with the right
    // bytes (overlap keys carry the same value from either writer),
    // nothing torn, nothing lost.
    cache::Store merged(diskOptions(dir));
    const cache::StoreStats s = merged.stats();
    EXPECT_EQ(s.disk_dropped, 0u);
    EXPECT_GE(s.disk_loaded, 2 * kPerWriter - kOverlap);
    std::vector<uint8_t> out;
    for (uint64_t i = 0; i < 2 * kPerWriter - kOverlap; ++i) {
        ASSERT_TRUE(merged.get(keyOf(i), out)) << "key " << i;
        EXPECT_EQ(out, valueOf(i)) << "key " << i;
    }
}

#endif // QPAD_HAVE_FORK

} // namespace

/**
 * @file
 * Quickstart: the full qpad pipeline on the paper's own worked
 * example (Figure 4 circuit -> Figure 6 placement), then on a real
 * benchmark. Demonstrates the five public API stages:
 *
 *   1. build or load a circuit            (qpad::benchmarks / qasm)
 *   2. profile it                         (qpad::profile)
 *   3. design an architecture             (qpad::design)
 *   4. map the circuit onto it            (qpad::mapping)
 *   5. estimate the fabrication yield     (qpad::yield)
 */

#include <iostream>

#include "arch/ibm.hh"
#include "benchmarks/generators.hh"
#include "design/design_flow.hh"
#include "eval/report.hh"
#include "mapping/sabre.hh"
#include "profile/coupling.hh"
#include "yield/yield_sim.hh"

using namespace qpad;

int
main()
{
    // ---- 1. the 5-qubit example circuit of the paper's Figure 4.
    circuit::Circuit circ = benchmarks::profilingExample();
    std::cout << "circuit '" << circ.name() << "': "
              << circ.numQubits() << " qubits, " << circ.size()
              << " operations, " << circ.twoQubitGateCount()
              << " two-qubit gates\n\n";

    // ---- 2. profile: coupling strength matrix + degree list.
    profile::CouplingProfile prof = profile::profileCircuit(circ);
    std::cout << "coupling strength matrix:\n"
              << prof.strengthTable() << "\ncoupling degree list:";
    for (auto q : prof.degree_list)
        std::cout << "  q" << q << "(" << prof.degrees[q] << ")";
    std::cout << "\n\n";

    // ---- 3. design: layout (Algorithm 1) + buses (Algorithm 2) +
    //          frequencies (Algorithm 3).
    design::DesignFlowOptions options;
    options.max_buses = 1;
    design::DesignOutcome outcome =
        design::designArchitecture(prof, options, "fig6-accelerator");
    std::cout << outcome.architecture.str() << "\n";

    // ---- 4. map the program onto the generated chip.
    mapping::MappingResult mapped =
        mapping::mapCircuit(circ, outcome.architecture);
    std::cout << "post-mapping gate count: " << mapped.total_gates
              << " (" << mapped.swaps << " swaps inserted)\n";

    // ---- 5. yield, compared against IBM's 16-qubit baseline.
    yield::YieldOptions yopts;
    auto eff = yield::estimateYield(outcome.architecture, yopts);
    auto ibm = yield::estimateYield(arch::ibm16Q(false), yopts);
    std::cout << "yield of the application-specific chip: "
              << eval::formatYield(eff.yield) << "\n";
    std::cout << "yield of ibm-16q-2qbus (general purpose): "
              << eval::formatYield(ibm.yield) << "\n";
    if (ibm.yield > 0)
        std::cout << "improvement: "
                  << eval::formatFixed(eff.yield / ibm.yield, 1)
                  << "x with a 3x smaller chip\n";
    return 0;
}

/**
 * @file
 * Domain example 1: a VQE accelerator. Designs the family of
 * application-specific chips for the 8-qubit UCCSD ansatz (the
 * paper's motivating chemistry workload, Figure 5 left) by sweeping
 * the 4-qubit bus budget K, and prints the yield/performance
 * trade-off curve next to IBM's general-purpose baselines.
 */

#include <iostream>

#include "benchmarks/suite.hh"
#include "eval/experiment.hh"
#include "eval/report.hh"

using namespace qpad;

int
main()
{
    eval::ExperimentOptions options;
    options.yield_options.trials = 10000;
    options.freq_options.local_trials = 2000;
    options.run_eff_rd_bus = false;
    options.run_eff_5_freq = false;

    const auto &info = benchmarks::getBenchmark("UCCSD_ansatz_8");
    std::cout << "Designing accelerators for " << info.name << " ("
              << info.domain << ", " << info.num_qubits
              << " logical qubits)...\n\n";

    auto experiment = eval::runBenchmark(info, options);
    eval::printExperiment(std::cout, experiment);

    std::cout
        << "\nReading the table: each eff-full row is one chip from "
           "the design flow\n(K = number of 4-qubit buses). Every "
           "additional bus buys gate count\n(performance) and costs "
           "yield — the Pareto knob of the paper.\n\n";

    // Recommend the design with the best yield x performance score.
    const eval::DataPoint *best = nullptr;
    double best_score = -1;
    for (const auto *p : experiment.config("eff-full")) {
        double score = p->yield * p->norm_recip_gates;
        if (score > best_score) {
            best_score = score;
            best = p;
        }
    }
    if (best) {
        std::cout << "suggested design: " << best->arch_name << " — "
                  << best->num_qubits << " qubits, "
                  << best->num_edges << " connections, yield "
                  << eval::formatYield(best->yield) << ", "
                  << best->gate_count << " post-mapping gates\n";
    }
    return 0;
}

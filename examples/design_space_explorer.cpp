/**
 * @file
 * Domain example 3: design-space exploration. For a benchmark named
 * on the command line (default: misex1_241), sweeps the 4-qubit bus
 * budget and the assumed fabrication precision, emitting a CSV an
 * architect can plot to pick an operating point.
 *
 * Usage: design_space_explorer [benchmark-name]
 */

#include <iostream>
#include <string>

#include "benchmarks/suite.hh"
#include "design/design_flow.hh"
#include "eval/report.hh"
#include "mapping/sabre.hh"
#include "profile/coupling.hh"
#include "yield/yield_sim.hh"

using namespace qpad;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "misex1_241";
    if (!benchmarks::hasBenchmark(name)) {
        std::cerr << "unknown benchmark '" << name << "'; options:\n";
        for (const auto &b : benchmarks::paperSuite())
            std::cerr << "  " << b.name << "\n";
        return 1;
    }

    const auto &info = benchmarks::getBenchmark(name);
    auto circ = info.generate();
    auto prof = profile::profileCircuit(circ);

    std::cerr << "exploring " << name << " (" << circ.numQubits()
              << " qubits, " << circ.twoQubitGateCount()
              << " two-qubit gates)\n";

    std::cout << "benchmark,buses,connections,gates,swaps,"
              << "sigma_mhz,yield\n";

    design::DesignFlowOptions flow;
    for (std::size_t k = 0; k <= 4; ++k) {
        flow.max_buses = k;
        auto outcome = design::designArchitecture(
            prof, flow, name + "-k" + std::to_string(k));
        // The sweep saturates once no more beneficial buses exist.
        if (outcome.architecture.fourQubitBuses().size() < k)
            break;

        auto mapped = mapping::mapCircuit(circ, outcome.architecture);
        for (double sigma_mhz : {15.0, 30.0, 60.0}) {
            yield::YieldOptions yopts;
            yopts.sigma_ghz = sigma_mhz / 1000.0;
            auto y = yield::estimateYield(outcome.architecture, yopts);
            std::cout << name << ',' << k << ','
                      << outcome.architecture.numEdges() << ','
                      << mapped.total_gates << ',' << mapped.swaps
                      << ',' << sigma_mhz << ','
                      << eval::formatYield(y.yield) << "\n";
        }
    }
    return 0;
}

/**
 * @file
 * Domain example 4: design a chip for an arbitrary OpenQASM 2.0
 * program. Reads the file given on the command line (or writes and
 * uses a small demo program when none is given), runs the full
 * design flow and prints the resulting architecture plus the mapped
 * program as OpenQASM.
 *
 * Usage: qasm_to_arch [program.qasm]
 */

#include <fstream>
#include <iostream>

#include "circuit/decompose.hh"
#include "circuit/qasm.hh"
#include "design/design_flow.hh"
#include "eval/report.hh"
#include "mapping/sabre.hh"
#include "profile/coupling.hh"
#include "yield/yield_sim.hh"

using namespace qpad;

namespace
{

const char *demo_program = R"(OPENQASM 2.0;
include "qelib1.inc";
// 6-qubit hidden-shift-style demo
qreg q[6];
creg c[6];
gate layer a,b { h a; cx a,b; rz(pi/8) b; cx a,b; }
h q;
layer q[0],q[1];
layer q[2],q[3];
layer q[4],q[5];
layer q[1],q[2];
layer q[3],q[4];
cx q[0],q[5];
h q;
measure q -> c;
)";

} // namespace

int
main(int argc, char **argv)
{
    circuit::Circuit circ;
    if (argc > 1) {
        circ = circuit::parseQasmFile(argv[1]);
    } else {
        std::cout << "(no file given; using built-in demo program)\n";
        circ = circuit::parseQasm(demo_program, "demo");
    }
    circ = circuit::decompose(circ);

    std::cout << "program '" << circ.name() << "': "
              << circ.numQubits() << " qubits, "
              << circ.unitaryGateCount() << " gates ("
              << circ.twoQubitGateCount() << " two-qubit)\n\n";

    auto prof = profile::profileCircuit(circ);
    design::DesignFlowOptions options;
    auto outcome =
        design::designArchitecture(prof, options, circ.name() + "-chip");
    std::cout << outcome.architecture.str() << "\n";

    auto mapped = mapping::mapCircuit(circ, outcome.architecture);
    yield::YieldOptions yopts;
    auto y = yield::estimateYield(outcome.architecture, yopts);
    std::cout << "post-mapping gates: " << mapped.total_gates << " ("
              << mapped.swaps << " swaps), yield "
              << eval::formatYield(y.yield) << "\n\n";

    std::cout << "mapped program (physical qubit indices):\n"
              << circuit::toQasm(mapped.mapped);
    return 0;
}

/**
 * @file
 * Domain example 2: a quantum-arithmetic accelerator. Synthesizes
 * the adr4 adder from its truth table with the qpad reversible
 * synthesizer, walks through each design-flow subroutine explicitly
 * (instead of the one-call designArchitecture wrapper) and reports
 * what every stage contributed.
 */

#include <iostream>

#include "benchmarks/functions.hh"
#include "design/bus_selection.hh"
#include "design/freq_alloc.hh"
#include "design/layout_design.hh"
#include "eval/report.hh"
#include "mapping/sabre.hh"
#include "profile/coupling.hh"
#include "revsynth/synth.hh"
#include "yield/yield_sim.hh"

using namespace qpad;

int
main()
{
    // Synthesize the 4-bit adder benchmark from its Boolean spec.
    revsynth::SynthOptions synth_opts;
    synth_opts.total_qubits = 13; // 8 inputs + 5 outputs
    auto synth =
        revsynth::synthesize(benchmarks::adr4Table(), synth_opts);
    const circuit::Circuit &circ = synth.circuit;
    std::cout << "synthesized " << circ.name() << ": "
              << circ.numQubits() << " qubits, "
              << circ.unitaryGateCount() << " gates ("
              << circ.twoQubitGateCount() << " two-qubit), "
              << synth.network.gates.size()
              << " multi-controlled Toffolis before lowering\n\n";

    // Subroutine 0: profiling.
    auto prof = profile::profileCircuit(circ);

    // Subroutine 1: layout (Algorithm 1).
    auto layout = design::designLayout(prof);
    std::cout << "Algorithm 1 placement (cost "
              << layout.placement_cost << "):\n"
              << layout.layout.str() << "\n";

    // Subroutine 2: bus selection (Algorithm 2).
    arch::Architecture chip(layout.layout, "adr4-accelerator");
    auto buses = design::selectBuses(chip, prof, 3);
    std::cout << "Algorithm 2 picked " << buses.selected.size()
              << " four-qubit buses:";
    for (std::size_t i = 0; i < buses.selected.size(); ++i)
        std::cout << "  " << buses.selected[i].str() << " (weight "
                  << buses.weights[i] << ")";
    std::cout << "\n";
    design::applyBusSelection(chip, buses);
    std::cout << "coupling graph now has " << chip.numEdges()
              << " connections\n\n";

    // Subroutine 3: frequency allocation (Algorithm 3).
    auto freq = design::allocateFrequencies(chip, {});
    chip.setAllFrequencies(freq.freqs);
    std::cout << "Algorithm 3 visit order (BFS from centre):";
    for (auto q : freq.order)
        std::cout << " q" << q;
    std::cout << "\n" << chip.str() << "\n";

    // Evaluate.
    auto mapped = mapping::mapCircuit(circ, chip);
    yield::YieldOptions yopts;
    auto y = yield::estimateYield(chip, yopts);
    std::cout << "post-mapping gates: " << mapped.total_gates << " ("
              << mapped.swaps << " swaps)\n"
              << "simulated yield:   " << eval::formatYield(y.yield)
              << " +- " << eval::formatYield(y.stderrEstimate())
              << "\n";
    return 0;
}

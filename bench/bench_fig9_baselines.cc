/**
 * @file
 * Experiment E4 (paper Figure 9): IBM's four general-purpose
 * baseline designs — layouts, 5-frequency tilings, bus placements —
 * and their simulated yields.
 */

#include <iostream>

#include "arch/ibm.hh"
#include "bench_common.hh"
#include "eval/report.hh"
#include "yield/yield_sim.hh"

using namespace qpad;

int
main()
{
    eval::printHeader(std::cout, "Figure 9: IBM baseline designs");
    auto yopts = bench::paperOptions().yield_options;

    int label = 1;
    for (const auto &arch : arch::ibmBaselines()) {
        std::cout << "(" << label++ << ") " << arch.str();
        // Frequency tiling as 1..5 indices, matching the figure.
        const auto &values = arch::fiveFrequencyValues();
        std::cout << "frequency tiling (1..5):\n";
        for (int r = arch.layout().minRow();
             r <= arch.layout().maxRow(); ++r) {
            std::cout << "  ";
            for (int c = arch.layout().minCol();
                 c <= arch.layout().maxCol(); ++c) {
                auto q = arch.layout().qubitAt({r, c});
                if (!q) {
                    std::cout << ". ";
                    continue;
                }
                for (std::size_t k = 0; k < values.size(); ++k)
                    if (std::abs(arch.frequency(*q) - values[k]) < 1e-9)
                        std::cout << (k + 1) << " ";
            }
            std::cout << "\n";
        }
        auto r = yield::estimateYield(arch, yopts);
        std::cout << "simulated yield (sigma = "
                  << yopts.sigma_ghz * 1000 << " MHz, " << yopts.trials
                  << " trials): " << eval::formatYield(r.yield)
                  << " +- " << eval::formatYield(r.stderrEstimate())
                  << "\n\n";
    }
    std::cout << "Expected shape: yield drops monotonically with "
              << "connection count\n(16q-2qbus > 16q-4qbus, "
              << "20q-2qbus > 20q-4qbus).\n";
    return 0;
}

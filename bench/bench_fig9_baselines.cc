/**
 * @file
 * Experiment E4 (paper Figure 9): IBM's four general-purpose
 * baseline designs — layouts, 5-frequency tilings, bus placements —
 * and their simulated yields.
 *
 * Yield estimates go through cache::cachedEstimateYield, so with
 * QPAD_CACHE_DIR set a repeated run is served warm and byte-
 * identical. --expect-warm exits nonzero unless the run was FULLY
 * warm — at least one hit and zero misses (a cold run necessarily
 * misses its first lookups, so intra-run reuse can never satisfy
 * this); it never changes stdout, so pass outputs stay comparable
 * with cmp. Used by the CI two-pass persistence check.
 */

#include <cstdio>
#include <cstring>
#include <iostream>

#include "arch/ibm.hh"
#include "bench_common.hh"
#include "cache/yield_cache.hh"
#include "eval/report.hh"
#include "yield/yield_sim.hh"

using namespace qpad;

int
main(int argc, char **argv)
{
    bool expect_warm = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--expect-warm") == 0) {
            expect_warm = true;
        } else {
            std::fprintf(stderr, "usage: %s [--expect-warm]\n",
                         argv[0]);
            return 2;
        }
    }
    eval::printHeader(std::cout, "Figure 9: IBM baseline designs");
    auto yopts = bench::paperOptions().yield_options;
    // Request-scoped telemetry: spans, log events, and flight-
    // recorder entries of the whole run carry this request's id, and
    // QPAD_REQUEST_REPORT gets one report on exit. Observability
    // only — stdout stays byte-identical with or without it.
    const exec::Context ctx = bench::requestContext();
    exec::RequestScope scope(ctx, "fig9_baselines");

    int label = 1;
    for (const auto &arch : arch::ibmBaselines()) {
        std::cout << "(" << label++ << ") " << arch.str();
        // Frequency tiling as 1..5 indices, matching the figure.
        const auto &values = arch::fiveFrequencyValues();
        std::cout << "frequency tiling (1..5):\n";
        for (int r = arch.layout().minRow();
             r <= arch.layout().maxRow(); ++r) {
            std::cout << "  ";
            for (int c = arch.layout().minCol();
                 c <= arch.layout().maxCol(); ++c) {
                auto q = arch.layout().qubitAt({r, c});
                if (!q) {
                    std::cout << ". ";
                    continue;
                }
                for (std::size_t k = 0; k < values.size(); ++k)
                    if (std::abs(arch.frequency(*q) - values[k]) < 1e-9)
                        std::cout << (k + 1) << " ";
            }
            std::cout << "\n";
        }
        auto r = cache::cachedEstimateYield(arch, yopts, ctx);
        std::cout << "simulated yield (sigma = "
                  << yopts.sigma_ghz * 1000 << " MHz, " << yopts.trials
                  << " trials): " << eval::formatYield(r.yield)
                  << " +- " << eval::formatYield(r.stderrEstimate())
                  << "\n\n";
    }
    std::cout << "Expected shape: yield drops monotonically with "
              << "connection count\n(16q-2qbus > 16q-4qbus, "
              << "20q-2qbus > 20q-4qbus).\n";
    if (expect_warm) {
        const cache::StoreStats stats = cache::globalCacheStats();
        if (stats.hits == 0 || stats.misses != 0) {
            std::cerr << "--expect-warm: run was not fully warm ("
                      << stats.hits << " hits, " << stats.misses
                      << " misses; is QPAD_CACHE_DIR set and "
                         "populated?)\n";
            return 3;
        }
    }
    return 0;
}
